package hpacml

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func saveF32TestModel(t *testing.T, path string) {
	t.Helper()
	net := nn.NewNetwork(7)
	net.Add(net.NewDense(5, 16), nn.NewActivation(nn.ActTanh), net.NewDense(16, 2))
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestLocalEngineFloat32 checks the engine-level f32 contract: opted-in
// engines compile the float32 program at load, batched inference stays
// within single-precision tolerance of the float64 engine, and
// Refresh/Invalidate drop the compiled program with the network.
func TestLocalEngineFloat32(t *testing.T) {
	ClearModelCache()
	path := filepath.Join(t.TempDir(), "m.gmod")
	saveF32TestModel(t, path)

	e32 := NewLocalEngine(path, WithFloat32Inference())
	e64 := NewLocalEngine(path)
	if !e32.Float32() || e64.Float32() {
		t.Fatal("Float32() must reflect the option")
	}
	ctx := context.Background()
	if err := e32.Warmup(ctx, []int{4, 5}); err != nil {
		t.Fatal(err)
	}
	if e32.fwd32 == nil {
		t.Fatal("f32 engine must compile the float32 program at load")
	}

	const rows = 9
	in := tensor.New(rows, 5)
	for i, d := 0, in.Data(); i < len(d); i++ {
		d[i] = float64((i*7)%13)/13 - 0.5
	}
	out32 := tensor.New(rows, 2)
	out64 := tensor.New(rows, 2)
	if err := e32.Infer(ctx, in, out32); err != nil {
		t.Fatal(err)
	}
	if err := e64.Infer(ctx, in, out64); err != nil {
		t.Fatal(err)
	}
	want := out64.Data()
	for i, got := range out32.Data() {
		if diff := math.Abs(got - want[i]); diff > 1e-5*math.Abs(want[i])+1e-6 {
			t.Fatalf("element %d: f32 %g vs f64 %g", i, got, want[i])
		}
	}

	// Refresh drops the compiled program alongside the network and the
	// next inference rebuilds both from the shared cache.
	e32.Refresh()
	if e32.fwd32 != nil {
		t.Fatal("Refresh must drop the f32 program")
	}
	if err := e32.Infer(ctx, in, out32); err != nil {
		t.Fatal(err)
	}
	if e32.fwd32 == nil {
		t.Fatal("inference after Refresh must recompile the f32 program")
	}
	e32.Invalidate()
	if e32.fwd32 != nil {
		t.Fatal("Invalidate must drop the f32 program")
	}
}

// TestLocalEngineFloat32ShapedConv: conv models compile to f32 lazily —
// the vector program stays nil at load (the sample shape is unknown),
// the first higher-rank batch compiles the shaped program, results stay
// within single-precision tolerance of the float64 engine, and
// Refresh drops the program with the network.
func TestLocalEngineFloat32ShapedConv(t *testing.T) {
	ClearModelCache()
	path := filepath.Join(t.TempDir(), "cnn.gmod")
	net := nn.NewNetwork(3)
	net.Add(net.NewConv1D(1, 2, 3, 1), nn.NewFlatten(), net.NewDense(12, 2))
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	e := NewLocalEngine(path, WithFloat32Inference())
	e64 := NewLocalEngine(path)
	ctx := context.Background()
	if err := e.Warmup(ctx, []int{2, 1, 8}); err != nil {
		t.Fatal(err)
	}
	if e.fwd32 != nil {
		t.Fatal("conv model must not compile to the vector f32 program")
	}
	if e.fwdShaped != nil {
		t.Fatal("shaped program must not compile before the first batch")
	}
	in := tensor.New(2, 1, 8)
	for i, d := 0, in.Data(); i < len(d); i++ {
		d[i] = float64((i*5)%11)/11 - 0.5
	}
	out := tensor.New(2, 2)
	out64 := tensor.New(2, 2)
	if err := e.Infer(ctx, in, out); err != nil {
		t.Fatal(err)
	}
	if e.fwdShaped == nil {
		t.Fatal("first conv batch must compile the shaped f32 program")
	}
	first := e.fwdShaped
	if err := e64.Infer(ctx, in, out64); err != nil {
		t.Fatal(err)
	}
	want := out64.Data()
	for i, got := range out.Data() {
		if diff := math.Abs(got - want[i]); diff > 1e-5*math.Abs(want[i])+1e-6 {
			t.Fatalf("element %d: shaped f32 %g vs f64 %g", i, got, want[i])
		}
	}
	// A repeat batch with the same sample shape reuses the program.
	if err := e.Infer(ctx, in, out); err != nil {
		t.Fatal(err)
	}
	if e.fwdShaped != first {
		t.Fatal("same-shape batch must reuse the compiled shaped program")
	}
	e.Refresh()
	if e.fwdShaped != nil {
		t.Fatal("Refresh must drop the shaped program")
	}
}

// TestLocalEngineFloat32Fallback: a model neither f32 compiler supports
// (a residual block) still serves through the float64 path, and the
// compile failure is latched instead of retried per batch.
func TestLocalEngineFloat32Fallback(t *testing.T) {
	ClearModelCache()
	path := filepath.Join(t.TempDir(), "res.gmod")
	body := nn.NewNetwork(5)
	body.Add(nn.NewActivation(nn.ActTanh))
	net := nn.NewNetwork(3)
	net.Add(nn.NewResidual(body), nn.NewFlatten(), net.NewDense(12, 2))
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	e := NewLocalEngine(path, WithFloat32Inference())
	ctx := context.Background()
	if err := e.Warmup(ctx, []int{2, 2, 6}); err != nil {
		t.Fatal(err)
	}
	if e.fwd32 != nil {
		t.Fatal("residual model must not compile to f32")
	}
	in := tensor.New(2, 2, 6)
	out := tensor.New(2, 2)
	if err := e.Infer(ctx, in, out); err != nil {
		t.Fatalf("float64 fallback inference: %v", err)
	}
	if e.fwdShaped != nil || !e.shapedFailed {
		t.Fatal("shaped compile failure must be latched")
	}
	if err := e.Infer(ctx, in, out); err != nil {
		t.Fatalf("float64 fallback inference after latch: %v", err)
	}
}

// TestRegionF32Precedence: the f32(on|off) clause configures the
// region's own engine, and WithFloat32 overrides the clause — the same
// option-beats-directive rule capture and trust follow.
func TestRegionF32Precedence(t *testing.T) {
	ClearModelCache()
	path := filepath.Join(t.TempDir(), "m.gmod")
	saveF32TestModel(t, path)

	mk := func(clause string, opts ...Option) *Region {
		t.Helper()
		in := make([]float64, 5)
		out := make([]float64, 2)
		all := append([]Option{
			Directives(`
tensor functor(ifn: [i, 0:5] = ([i*5:i*5+5]))
tensor functor(ofn: [i, 0:2] = ([i*2:i*2+2]))
tensor map(to: ifn(x[0:1]))
tensor map(from: ofn(y[0:1]))
ml(infer) in(x) out(y) model("` + path + `")` + clause),
			BindArray("x", in, 5),
			BindArray("y", out, 2),
		}, opts...)
		r, err := NewRegion("r", all...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}

	cases := []struct {
		name   string
		clause string
		opts   []Option
		want   bool
	}{
		{"default-off", "", nil, false},
		{"clause-on", " f32(on)", nil, true},
		{"clause-off", " f32(off)", nil, false},
		{"option-beats-clause", " f32(on)", []Option{WithFloat32(false)}, false},
		{"option-on", "", []Option{WithFloat32(true)}, true},
	}
	for _, tc := range cases {
		r := mk(tc.clause, tc.opts...)
		if err := r.ensureEngine(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		le, ok := r.Engine().(*LocalEngine)
		if !ok {
			t.Fatalf("%s: engine %T", tc.name, r.Engine())
		}
		if le.Float32() != tc.want {
			t.Fatalf("%s: Float32() = %v, want %v", tc.name, le.Float32(), tc.want)
		}
	}
}
