package hpacml

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/h5"
	"repro/internal/tensor"
)

// Guardrail is the input-domain gate of trust-routed execution: a
// per-feature envelope fitted from the training captures, answering
// "has the surrogate ever seen an input like this?" before its
// prediction is trusted. A row with any feature outside its envelope
// (or any non-finite feature) is out-of-domain and takes the accurate
// path regardless of how confident the ensemble looks — extrapolation
// confidence is exactly the failure mode the guardrail exists to stop.
//
// The envelope is deliberately simple — an axis-aligned box between
// per-feature quantiles — because it must be evaluated per row on the
// hot path and must be fittable from capture shards without labels.
// Fit it with FitGuardrail / FitGuardrailFromDB or the hpacml-guard
// CLI, and serialize it beside the model as a "<model>.gmod.guard"
// sidecar (GuardrailPath) so regions with trust(domain:on) find it.
type Guardrail struct {
	// Lo and Hi are the per-feature envelope bounds (len = feature
	// count of the model-layout input rows).
	Lo, Hi []float64
	// Margin widens the envelope at check time by this fraction of each
	// feature's span, so boundary-hugging inputs of a coarse training
	// set are not rejected: a row is in-domain when
	// Lo[f]-Margin*span <= v <= Hi[f]+Margin*span for every feature.
	Margin float64
}

// GuardrailPath is the sidecar naming convention: the guardrail of
// model "m.gmod" lives at "m.gmod.guard", beside the weights it gates.
func GuardrailPath(modelPath string) string { return modelPath + ".guard" }

// FitGuardrail fits a guardrail on x, the model-layout inputs of a
// capture set: rows along dim 0, features flattened from the rest.
// q is the tail fraction trimmed per side (0 fits the plain min/max
// envelope; 0.01 fits the 1%..99% quantile envelope, robust to capture
// outliers); it must lie in [0, 0.5).
func FitGuardrail(x *tensor.Tensor, q float64) (*Guardrail, error) {
	if x == nil || x.Rank() < 1 || x.Dim(0) == 0 {
		return nil, fmt.Errorf("hpacml: guardrail fit wants a non-empty [rows, features...] tensor")
	}
	if q < 0 || q >= 0.5 {
		return nil, fmt.Errorf("hpacml: guardrail quantile %g out of [0, 0.5)", q)
	}
	rows := x.Dim(0)
	features := x.Len() / rows
	if features == 0 {
		return nil, fmt.Errorf("hpacml: guardrail fit on zero-feature rows")
	}
	data := x.Contiguous().Data()
	g := &Guardrail{Lo: make([]float64, features), Hi: make([]float64, features)}
	col := make([]float64, 0, rows)
	for f := 0; f < features; f++ {
		col = col[:0]
		for r := 0; r < rows; r++ {
			if v := data[r*features+f]; !math.IsNaN(v) && !math.IsInf(v, 0) {
				col = append(col, v)
			}
		}
		if len(col) == 0 {
			return nil, fmt.Errorf("hpacml: guardrail feature %d has no finite values", f)
		}
		sort.Float64s(col)
		g.Lo[f] = quantile(col, q)
		g.Hi[f] = quantile(col, 1-q)
	}
	return g, nil
}

// FitGuardrailFromDB fits a guardrail from the "inputs" dataset of a
// region's capture database (all shards merged) — the offline fit step
// hpacml-guard runs after collection, mirroring how hpacml-train reads
// the same shards.
func FitGuardrailFromDB(dbPath, region string, q float64) (*Guardrail, error) {
	f, err := h5.OpenShards(dbPath)
	if err != nil {
		return nil, err
	}
	x, err := f.Read(region, "inputs")
	if err != nil {
		return nil, err
	}
	return FitGuardrail(x, q)
}

// quantile reads quantile q from sorted by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Features returns the envelope's feature count.
func (g *Guardrail) Features() int { return len(g.Lo) }

// CheckRow reports whether one model-layout input row is inside the
// (margin-widened) envelope. Non-finite features are always
// out-of-domain.
func (g *Guardrail) CheckRow(row []float64) bool {
	if len(row) != len(g.Lo) {
		return false
	}
	for f, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		span := g.Hi[f] - g.Lo[f]
		if v < g.Lo[f]-g.Margin*span || v > g.Hi[f]+g.Margin*span {
			return false
		}
	}
	return true
}

// Check evaluates every row of x (rows along dim 0, features flattened
// from the rest), setting ood[i] for each out-of-domain row, and
// returns how many rows were rejected. ood must have x.Dim(0) slots.
func (g *Guardrail) Check(x *tensor.Tensor, ood []bool) (int, error) {
	if x == nil || x.Rank() < 1 {
		return 0, fmt.Errorf("hpacml: guardrail check wants a [rows, features...] tensor")
	}
	rows := x.Dim(0)
	if len(ood) != rows {
		return 0, fmt.Errorf("hpacml: guardrail check: %d verdict slots for %d rows", len(ood), rows)
	}
	features := 0
	if rows > 0 {
		features = x.Len() / rows
	}
	if features != len(g.Lo) {
		return 0, fmt.Errorf("hpacml: guardrail fitted on %d features, input rows have %d", len(g.Lo), features)
	}
	data := x.Contiguous().Data()
	n := 0
	for r := 0; r < rows; r++ {
		in := g.CheckRow(data[r*features : (r+1)*features])
		ood[r] = !in
		if !in {
			n++
		}
	}
	return n, nil
}

// The sidecar format follows the .gmod idiom: little-endian, magic +
// version header, implausibility-guarded lengths, self-contained.
const (
	guardMagic    = 0x4752444c // "GRDL"
	guardVersion  = 1
	guardMaxFeats = 1 << 24
)

// Encode writes the guardrail in sidecar format.
func (g *Guardrail) Encode(w io.Writer) error {
	if len(g.Lo) == 0 || len(g.Lo) != len(g.Hi) {
		return fmt.Errorf("hpacml: encoding malformed guardrail (%d lo, %d hi bounds)", len(g.Lo), len(g.Hi))
	}
	var buf bytes.Buffer
	for _, v := range []uint32{guardMagic, guardVersion, uint32(len(g.Lo))} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	binary.Write(&buf, binary.LittleEndian, g.Margin)
	binary.Write(&buf, binary.LittleEndian, g.Lo)
	binary.Write(&buf, binary.LittleEndian, g.Hi)
	_, err := w.Write(buf.Bytes())
	return err
}

// Save writes the sidecar file at path (conventionally
// GuardrailPath(modelPath)).
func (g *Guardrail) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeGuardrail reads a sidecar-format guardrail.
func DecodeGuardrail(r io.Reader) (*Guardrail, error) {
	var hdr [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("hpacml: guardrail header: %w", err)
	}
	if hdr[0] != guardMagic {
		return nil, fmt.Errorf("hpacml: not a guardrail sidecar (magic %#x)", hdr[0])
	}
	if hdr[1] != guardVersion {
		return nil, fmt.Errorf("hpacml: unsupported guardrail version %d", hdr[1])
	}
	n := int(hdr[2])
	if n == 0 || n > guardMaxFeats {
		return nil, fmt.Errorf("hpacml: implausible guardrail feature count %d", n)
	}
	g := &Guardrail{Lo: make([]float64, n), Hi: make([]float64, n)}
	if err := binary.Read(r, binary.LittleEndian, &g.Margin); err != nil {
		return nil, fmt.Errorf("hpacml: guardrail margin: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, g.Lo); err != nil {
		return nil, fmt.Errorf("hpacml: guardrail bounds: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, g.Hi); err != nil {
		return nil, fmt.Errorf("hpacml: guardrail bounds: %w", err)
	}
	for f := 0; f < n; f++ {
		if g.Lo[f] > g.Hi[f] {
			return nil, fmt.Errorf("hpacml: guardrail feature %d has inverted bounds [%g, %g]", f, g.Lo[f], g.Hi[f])
		}
	}
	return g, nil
}

// LoadGuardrail reads the sidecar file at path.
func LoadGuardrail(path string) (*Guardrail, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := DecodeGuardrail(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return g, nil
}
