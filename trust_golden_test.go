// Golden round-trip tests for the files trust-routed deployment ships:
// the ensemble's .gmod member weights and the .guard input-domain
// sidecar. Both formats must survive save -> load -> save byte for
// byte, and the reloaded artifacts must behave bit-identically — a
// model that drifts across a round trip would silently change every
// counter this PR adds.
package hpacml_test

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	hpacml "repro"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// goldenBatch builds a deterministic [rows, inDim] probe batch.
func goldenBatch(t *testing.T, rows, inDim int) *tensor.Tensor {
	t.Helper()
	data := make([]float64, rows*inDim)
	for i := range data {
		data[i] = math.Sin(float64(i)*0.7) * 1.5
	}
	x, err := tensor.FromSlice(data, rows, inDim)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestEnsembleModelFilesGoldenRoundTrip saves three ensemble members,
// reloads each, re-stores it, and requires (a) the re-stored .gmod be
// byte-identical to the original and (b) the reloaded network's
// forward pass match bit for bit — then repeats the equivalence at the
// ensemble level, where mean and variance must also be unchanged.
func TestEnsembleModelFilesGoldenRoundTrip(t *testing.T) {
	const inDim, outDim, rows = 3, 2, 4
	dir := t.TempDir()
	x := goldenBatch(t, rows, inDim)

	var origPaths, resavedPaths []string
	for _, seed := range []int64{71, 72, 73} {
		path := saveVectorNet(t, dir, seed, inDim, outDim)
		origPaths = append(origPaths, path)
		origBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		net, err := nn.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		resaved := filepath.Join(dir, fmt.Sprintf("resaved_%d.gmod", seed))
		resavedPaths = append(resavedPaths, resaved)
		if err := net.Save(resaved); err != nil {
			t.Fatal(err)
		}
		resavedBytes, err := os.ReadFile(resaved)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(origBytes, resavedBytes) {
			t.Fatalf("seed %d: re-stored .gmod differs from the original (%d vs %d bytes)", seed, len(origBytes), len(resavedBytes))
		}

		reloaded, err := nn.Load(resaved)
		if err != nil {
			t.Fatal(err)
		}
		want, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reloaded.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range want.Data() {
			if got.Data()[i] != w {
				t.Fatalf("seed %d output %d: reloaded forward %v != original %v", seed, i, got.Data()[i], w)
			}
		}
	}

	// The whole ensemble, deployed from the re-stored files, must infer
	// the same mean AND report the same per-row variance — the variance
	// is what the trust gate routes on.
	infer := func(paths []string) ([]float64, []float64) {
		t.Helper()
		eng, err := hpacml.NewLocalEnsemble(paths...)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		out := tensor.New(rows, outDim)
		if err := eng.Infer(t.Context(), x, out); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), out.Data()...),
			append([]float64(nil), eng.RowVariance()...)
	}
	wantOut, wantVar := infer(origPaths)
	gotOut, gotVar := infer(resavedPaths)
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("ensemble output %d: %v != %v after round trip", i, gotOut[i], wantOut[i])
		}
	}
	for r := range wantVar {
		if gotVar[r] != wantVar[r] {
			t.Fatalf("ensemble row %d variance: %v != %v after round trip", r, gotVar[r], wantVar[r])
		}
	}
}

// TestGuardrailSidecarGoldenRoundTrip fits an envelope, saves the
// .guard sidecar, reloads it, and requires the re-stored file be
// byte-identical, the fields exact, and the in/out-of-domain verdicts
// unchanged — including on margin-boundary probes where any bound
// drift would flip the routing decision.
func TestGuardrailSidecarGoldenRoundTrip(t *testing.T) {
	const rows, features = 40, 3
	data := make([]float64, rows*features)
	for i := range data {
		data[i] = float64(i%17)/16 + float64(i%5)*0.01
	}
	x, err := tensor.FromSlice(data, rows, features)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hpacml.FitGuardrail(x, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	g.Margin = 0.015625 // exactly representable, exercises the margin field

	dir := t.TempDir()
	path := hpacml.GuardrailPath(filepath.Join(dir, "m.gmod"))
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	origBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := hpacml.LoadGuardrail(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Margin != g.Margin || loaded.Features() != g.Features() {
		t.Fatalf("reloaded guardrail margin/features = %g/%d, want %g/%d", loaded.Margin, loaded.Features(), g.Margin, g.Features())
	}
	for f := range g.Lo {
		if loaded.Lo[f] != g.Lo[f] || loaded.Hi[f] != g.Hi[f] {
			t.Fatalf("feature %d bounds drifted: [%v, %v] != [%v, %v]", f, loaded.Lo[f], loaded.Hi[f], g.Lo[f], g.Hi[f])
		}
	}

	resaved := path + ".resaved"
	if err := loaded.Save(resaved); err != nil {
		t.Fatal(err)
	}
	resavedBytes, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(origBytes, resavedBytes) {
		t.Fatalf("re-stored sidecar differs from the original (%d vs %d bytes)", len(origBytes), len(resavedBytes))
	}

	// Verdicts must agree everywhere, most importantly right at the
	// margin-widened boundary.
	span := g.Hi[0] - g.Lo[0]
	mid := func(f int) float64 { return (g.Lo[f] + g.Hi[f]) / 2 }
	probes := [][]float64{
		{mid(0), mid(1), mid(2)},                      // deep inside
		{g.Lo[0], g.Lo[1], g.Lo[2]},                   // exact lower bound
		{g.Hi[0] + g.Margin*span*0.5, mid(1), mid(2)}, // inside the margin
		{g.Hi[0] + g.Margin*span*2, mid(1), mid(2)},   // beyond the margin
		{g.Lo[0] - span, mid(1), mid(2)},              // far out
		{math.NaN(), mid(1), mid(2)},                  // non-finite
		{math.Inf(1), mid(1), mid(2)},                 // non-finite
		{mid(0), mid(1)},                              // wrong arity
	}
	for i, row := range probes {
		if got, want := loaded.CheckRow(row), g.CheckRow(row); got != want {
			t.Errorf("probe %d %v: reloaded verdict %v != original %v", i, row, got, want)
		}
	}
	if g.CheckRow(probes[0]) != true || g.CheckRow(probes[3]) != false {
		t.Fatal("probe set is degenerate: expected one in-domain and one out-of-domain row")
	}
}
