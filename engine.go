package hpacml

import (
	"context"
	"io"

	"repro/internal/tensor"
)

// Engine is the pluggable surrogate-execution backend of a Region. The
// annotation (the directives) stays fixed while the engine decides how
// inference actually runs — in-process on a loaded network
// (LocalEngine, the default), against a remote hpacml-serve instance
// (RemoteEngine, selected by an http(s):// model URI), or through a
// policy wrapper (FallbackEngine). Custom engines plug in with the
// WithEngine option.
//
// The Region drives an engine in a fixed sequence: Warmup once with the
// single-invocation input shape (resolve the model, probe the server,
// surface configuration errors before traffic), OutputShape whenever a
// staging buffer must be allocated for a new input shape, then Infer
// per invocation or batch. Like the Region itself, an engine is driven
// from one goroutine at a time; engines shared across regions must
// synchronize any mutable state of their own.
type Engine interface {
	// Infer applies the surrogate to in, writing the result into out.
	// Both tensors are pre-shaped by the Region (out according to
	// OutputShape) and contiguous. The context carries the caller's
	// deadline and cancellation — remote engines must thread it through
	// to the wire, local engines should honor it before heavy compute.
	Infer(ctx context.Context, in, out *tensor.Tensor) error

	// OutputShape maps a full input-tensor shape (leading dim is the
	// entry/batch dimension) to the output shape the engine will
	// produce, validating the input shape against the model.
	OutputShape(in []int) ([]int, error)

	// Warmup prepares the engine for the region's single-invocation
	// input shape: load the model, resolve the remote registry entry,
	// validate dimensions. The Region calls it before first use and
	// again after RefreshModel; it must be cheap when already warm.
	Warmup(ctx context.Context, inShape []int) error
}

// refresher is the optional hook RefreshModel forwards to: drop any
// resolved model state so the next Warmup re-resolves it (the local
// engine re-reads the shared cache; the remote engine re-queries the
// registry).
type refresher interface{ Refresh() }

// invalidator is the optional hook InvalidateModel forwards to: like
// Refresh, but also evict any shared cache entry so the next load
// reaches the source of truth (disk, for the local engine).
type invalidator interface{ Invalidate() }

// remoteExecutor marks engines whose inference leaves the process; the
// Region counts their successful invocations in Stats.RemoteInference.
type remoteExecutor interface{ RemoteExecution() bool }

// fallbackPolicy marks engines that ask the Region to run the accurate
// code path when inference fails (FallbackEngine).
type fallbackPolicy interface{ FallbackToAccurate() bool }

// isRemote reports whether e (unwrapping nothing — wrappers implement
// the marker themselves) executes remotely.
func isRemote(e Engine) bool {
	re, ok := e.(remoteExecutor)
	return ok && re.RemoteExecution()
}

// wantsFallback reports whether e engages the accurate-fallback policy.
func wantsFallback(e Engine) bool {
	fp, ok := e.(fallbackPolicy)
	return ok && fp.FallbackToAccurate()
}

// FallbackEngine wraps a primary engine with the paper's predicated
// conditional execution extended to distributed deployments: when the
// primary engine fails — the server is down, the model cannot load, or
// the caller's context deadline expired — the Region runs the accurate
// code path for that invocation instead of failing it, and counts the
// event in Stats.Fallbacks. Regions whose model() clause carries an
// http(s):// URI get this wrapper automatically; wrap any engine
// yourself (including a LocalEngine) to opt a custom engine in.
//
// The fallback needs the accurate closure, so it applies to Execute and
// ExecuteContext calls with a non-nil accurate function. ExecuteBatch
// has no accurate form (independent invocations only the surrogate can
// batch), so batched engine errors still propagate to the caller.
type FallbackEngine struct {
	// Primary executes inference when it can.
	Primary Engine
}

// NewFallbackEngine wraps primary with the accurate-fallback policy.
func NewFallbackEngine(primary Engine) *FallbackEngine {
	return &FallbackEngine{Primary: primary}
}

// Infer delegates to the primary engine; the Region applies the policy
// on error.
func (f *FallbackEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	return f.Primary.Infer(ctx, in, out)
}

// OutputShape delegates to the primary engine.
func (f *FallbackEngine) OutputShape(in []int) ([]int, error) {
	return f.Primary.OutputShape(in)
}

// Warmup delegates to the primary engine.
func (f *FallbackEngine) Warmup(ctx context.Context, inShape []int) error {
	return f.Primary.Warmup(ctx, inShape)
}

// FallbackToAccurate engages the Region's accurate-fallback policy.
func (f *FallbackEngine) FallbackToAccurate() bool { return true }

// RemoteExecution reports whether the wrapped engine executes remotely.
func (f *FallbackEngine) RemoteExecution() bool { return isRemote(f.Primary) }

// Refresh forwards to the primary engine's refresh hook, if any.
func (f *FallbackEngine) Refresh() {
	if r, ok := f.Primary.(refresher); ok {
		r.Refresh()
	}
}

// Invalidate forwards to the primary engine's invalidate hook, if any.
func (f *FallbackEngine) Invalidate() {
	if inv, ok := f.Primary.(invalidator); ok {
		inv.Invalidate()
	}
}

// Close releases the primary engine's resources, if it holds any.
func (f *FallbackEngine) Close() error {
	if c, ok := f.Primary.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// WithEngine injects a surrogate-execution engine, overriding the
// default the region would derive from its model() clause (LocalEngine
// for file paths, a fallback-wrapped RemoteEngine for http(s) URIs).
// The region does not take ownership: Close never closes an injected
// engine, so one engine may serve several regions — sequentially, or
// concurrently only if the engine itself is safe for that.
func WithEngine(e Engine) Option {
	return func(r *Region) error {
		r.setEngine(e, false)
		return nil
	}
}
