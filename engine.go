package hpacml

import (
	"context"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Engine is the pluggable surrogate-execution backend of a Region. The
// annotation (the directives) stays fixed while the engine decides how
// inference actually runs — in-process on a loaded network
// (LocalEngine, the default), against a remote hpacml-serve instance
// (RemoteEngine, selected by an http(s):// model URI), or through a
// policy wrapper (FallbackEngine). Custom engines plug in with the
// WithEngine option.
//
// The Region drives an engine in a fixed sequence: Warmup once with the
// single-invocation input shape (resolve the model, probe the server,
// surface configuration errors before traffic), OutputShape whenever a
// staging buffer must be allocated for a new input shape, then Infer
// per invocation or batch. Like the Region itself, an engine is driven
// from one goroutine at a time; engines shared across regions must
// synchronize any mutable state of their own.
type Engine interface {
	// Infer applies the surrogate to in, writing the result into out.
	// Both tensors are pre-shaped by the Region (out according to
	// OutputShape) and contiguous. The context carries the caller's
	// deadline and cancellation — remote engines must thread it through
	// to the wire, local engines should honor it before heavy compute.
	Infer(ctx context.Context, in, out *tensor.Tensor) error

	// OutputShape maps a full input-tensor shape (leading dim is the
	// entry/batch dimension) to the output shape the engine will
	// produce, validating the input shape against the model.
	OutputShape(in []int) ([]int, error)

	// Warmup prepares the engine for the region's single-invocation
	// input shape: load the model, resolve the remote registry entry,
	// validate dimensions. The Region calls it before first use and
	// again after RefreshModel; it must be cheap when already warm.
	Warmup(ctx context.Context, inShape []int) error
}

// refresher is the optional hook RefreshModel forwards to: drop any
// resolved model state so the next Warmup re-resolves it (the local
// engine re-reads the shared cache; the remote engine re-queries the
// registry).
type refresher interface{ Refresh() }

// invalidator is the optional hook InvalidateModel forwards to: like
// Refresh, but also evict any shared cache entry so the next load
// reaches the source of truth (disk, for the local engine).
type invalidator interface{ Invalidate() }

// remoteExecutor marks engines whose inference leaves the process; the
// Region counts their successful invocations in Stats.RemoteInference.
type remoteExecutor interface{ RemoteExecution() bool }

// fallbackPolicy marks engines that ask the Region to run the accurate
// code path when inference fails (FallbackEngine).
type fallbackPolicy interface{ FallbackToAccurate() bool }

// isRemote reports whether e (unwrapping nothing — wrappers implement
// the marker themselves) executes remotely.
func isRemote(e Engine) bool {
	re, ok := e.(remoteExecutor)
	return ok && re.RemoteExecution()
}

// wantsFallback reports whether e engages the accurate-fallback policy.
func wantsFallback(e Engine) bool {
	fp, ok := e.(fallbackPolicy)
	return ok && fp.FallbackToAccurate()
}

// TrustReport is one Infer call's per-row trust verdict, produced by a
// gated FallbackEngine and consumed by the Region's routing: rows the
// report rejects are recomputed by the accurate path and recaptured
// for retraining instead of keeping the surrogate's output. The slices
// are indexed by input row (the leading tensor dimension) and are
// reused across Infer calls — snapshot them if they must outlive the
// next inference.
type TrustReport struct {
	// Rows is the row count of the gated batch.
	Rows int
	// OOD marks rows whose input fell outside the guardrail envelope.
	OOD []bool
	// Uncertain marks rows whose predictive variance exceeded the
	// engine's MaxVariance threshold.
	Uncertain []bool
	// Variance is the per-row predictive variance the primary engine
	// reported; nil when the primary measures none.
	Variance []float64
}

// reset re-sizes the report for rows and clears all verdicts.
func (t *TrustReport) reset(rows int) {
	if cap(t.OOD) < rows {
		t.OOD = make([]bool, rows)
		t.Uncertain = make([]bool, rows)
	}
	t.OOD, t.Uncertain = t.OOD[:rows], t.Uncertain[:rows]
	for i := 0; i < rows; i++ {
		t.OOD[i], t.Uncertain[i] = false, false
	}
	t.Variance = nil
	t.Rows = rows
}

// Untrusted reports whether row i was rejected by either gate.
func (t *TrustReport) Untrusted(i int) bool { return t.OOD[i] || t.Uncertain[i] }

// AnyUntrusted reports whether any row was rejected.
func (t *TrustReport) AnyUntrusted() bool {
	for i := 0; i < t.Rows; i++ {
		if t.OOD[i] || t.Uncertain[i] {
			return true
		}
	}
	return false
}

// trustReporter is implemented by engines that gate their predictions
// row by row; the Region reads the report after each successful Infer
// and routes rejected rows to the accurate path.
type trustReporter interface{ TrustReport() *TrustReport }

// FallbackEngine wraps a primary engine with the paper's predicated
// conditional execution extended to distributed deployments: when the
// primary engine fails — the server is down, the model cannot load, or
// the caller's context deadline expired — the Region runs the accurate
// code path for that invocation instead of failing it, and counts the
// event in Stats.Fallbacks. Regions whose model() clause carries an
// http(s):// URI get this wrapper automatically; wrap any engine
// yourself (including a LocalEngine) to opt a custom engine in.
//
// The wrapper is also where per-row trust gating lives. With Guardrail
// set, every input row is checked against the fitted domain envelope
// before its prediction may be kept; with MaxVariance > 0 (and a
// primary that implements VarianceReporter, e.g. EnsembleEngine), rows
// whose predictive variance exceeds the threshold are rejected. The
// verdicts surface through TrustReport; the Region recomputes rejected
// rows with the accurate path and hands them to the capture sink for
// retraining. Regions configure both gates from their trust(...)
// clause or the WithTrust option.
//
// The failure fallback needs the accurate closure, so it applies to
// Execute/ExecuteContext with a non-nil accurate function and to
// ExecuteBatchRouted; plain ExecuteBatch has no accurate form
// (independent invocations only the surrogate can batch), so batched
// engine errors there still propagate to the caller.
type FallbackEngine struct {
	// Primary executes inference when it can.
	Primary Engine

	// Guardrail, when non-nil, rejects rows whose input falls outside
	// the fitted domain envelope (trust(domain:on)).
	Guardrail *Guardrail

	// MaxVariance, when positive, rejects rows whose predictive
	// variance exceeds it (trust(var:V)). The primary must implement
	// VarianceReporter; Warmup rejects the configuration otherwise.
	MaxVariance float64

	report      TrustReport
	gatedReport *TrustReport // nil when the last Infer ran ungated
}

// NewFallbackEngine wraps primary with the accurate-fallback policy
// (and no trust gates; set Guardrail/MaxVariance to engage them).
func NewFallbackEngine(primary Engine) *FallbackEngine {
	return &FallbackEngine{Primary: primary}
}

// gated reports whether any trust gate is configured.
func (f *FallbackEngine) gated() bool { return f.Guardrail != nil || f.MaxVariance > 0 }

// Infer delegates to the primary engine, then applies the configured
// trust gates row by row; the Region applies the fallback policy on
// error and the routing policy on the trust report.
func (f *FallbackEngine) Infer(ctx context.Context, in, out *tensor.Tensor) error {
	f.gatedReport = nil
	if !f.gated() {
		return f.Primary.Infer(ctx, in, out)
	}
	rows := 1
	if in.Rank() >= 1 {
		rows = in.Dim(0)
	}
	f.report.reset(rows)
	if f.Guardrail != nil {
		if _, err := f.Guardrail.Check(in, f.report.OOD); err != nil {
			return err
		}
	}
	if err := f.Primary.Infer(ctx, in, out); err != nil {
		return err
	}
	if f.MaxVariance > 0 {
		if vr, ok := f.Primary.(VarianceReporter); ok {
			if v := vr.RowVariance(); len(v) == rows {
				f.report.Variance = v
				for i, x := range v {
					f.report.Uncertain[i] = x > f.MaxVariance
				}
			}
		}
	}
	f.gatedReport = &f.report
	return nil
}

// TrustReport returns the per-row verdicts of the last Infer call, or
// nil when no gate is configured (every row trusted).
func (f *FallbackEngine) TrustReport() *TrustReport { return f.gatedReport }

// OutputShape delegates to the primary engine.
func (f *FallbackEngine) OutputShape(in []int) ([]int, error) {
	return f.Primary.OutputShape(in)
}

// Warmup delegates to the primary engine and validates the trust
// configuration: a variance gate over a primary that measures no
// variance would silently never fire, so it is rejected here, before
// traffic.
func (f *FallbackEngine) Warmup(ctx context.Context, inShape []int) error {
	if f.MaxVariance > 0 {
		if _, ok := f.Primary.(VarianceReporter); !ok {
			return fmt.Errorf("hpacml: trust variance gate needs an engine that reports predictive variance (e.g. EnsembleEngine); %T does not", f.Primary)
		}
	}
	return f.Primary.Warmup(ctx, inShape)
}

// FallbackToAccurate engages the Region's accurate-fallback policy.
func (f *FallbackEngine) FallbackToAccurate() bool { return true }

// RemoteExecution reports whether the wrapped engine executes remotely.
func (f *FallbackEngine) RemoteExecution() bool { return isRemote(f.Primary) }

// Refresh forwards to the primary engine's refresh hook, if any.
func (f *FallbackEngine) Refresh() {
	if r, ok := f.Primary.(refresher); ok {
		r.Refresh()
	}
}

// Invalidate forwards to the primary engine's invalidate hook, if any.
func (f *FallbackEngine) Invalidate() {
	if inv, ok := f.Primary.(invalidator); ok {
		inv.Invalidate()
	}
}

// Close releases the primary engine's resources, if it holds any.
func (f *FallbackEngine) Close() error {
	if c, ok := f.Primary.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// WithEngine injects a surrogate-execution engine, overriding the
// default the region would derive from its model() clause (LocalEngine
// for file paths, a fallback-wrapped RemoteEngine for http(s) URIs).
// The region does not take ownership: Close never closes an injected
// engine, so one engine may serve several regions — sequentially, or
// concurrently only if the engine itself is safe for that.
func WithEngine(e Engine) Option {
	return func(r *Region) error {
		r.setEngine(e, false)
		return nil
	}
}
