// Package results defines the machine-readable result schema shared by
// the repo's command-line tools: hpacml-eval's -json output and the
// hpacml-serve load generator both emit one Record, so CI benchmark
// artifacts (BENCH_*.json) have a single shape regardless of which tool
// produced them.
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is one tool run. Exactly one of Eval, Serving, or Collect is
// set, according to Tool.
type Record struct {
	// Tool names the producer: "hpacml-eval", "hpacml-serve-loadgen",
	// or "hpacml-collect".
	Tool string `json:"tool"`
	// Benchmark is the benchmark name for eval/collect runs, empty for
	// serving.
	Benchmark string `json:"benchmark,omitempty"`
	// Model is the surrogate the run exercised: a .gmod path for eval,
	// a registry model name for serving; empty for collection.
	Model string `json:"model,omitempty"`

	Eval    *Eval    `json:"eval,omitempty"`
	Serving *Serving `json:"serving,omitempty"`
	Collect *Collect `json:"collect,omitempty"`
}

// Eval is a deployed-surrogate measurement: end-to-end speedup, QoI
// error, and the HPAC-ML phase breakdown (the data behind the paper's
// Figures 5-8, previously available only as CSV).
type Eval struct {
	Speedup       float64 `json:"speedup"`
	Error         float64 `json:"error"`
	Metric        string  `json:"metric"`
	Params        int     `json:"params"`
	LatencySec    float64 `json:"latency_sec"`
	ToTensorSec   float64 `json:"to_tensor_sec"`
	InferenceSec  float64 `json:"inference_sec"`
	FromTensorSec float64 `json:"from_tensor_sec"`
	BaselineError float64 `json:"baseline_error"`

	// Fallbacks counts surrogate invocations that fell back to the
	// accurate path (engine failure or expired deadline) during the
	// surrogate timing runs; RemoteInference counts invocations whose
	// inference ran on a remote engine (an http(s):// model URI). Both
	// are zero for purely local, healthy deployments.
	Fallbacks       int `json:"fallbacks"`
	RemoteInference int `json:"remote_inference"`

	// Trust-routing counters of the deployed region (non-zero only for
	// gated engines — a trust(...) clause or WithTrust): rows whose
	// surrogate prediction was kept, rows rejected by the variance
	// gate, rows rejected by the input-domain guardrail. They match the
	// TrustedRows/UncertainRows/OutOfDomainRows fields of /v1/stats.
	TrustedRows     int `json:"trusted_rows"`
	UncertainRows   int `json:"uncertain_rows"`
	OutOfDomainRows int `json:"out_of_domain_rows"`

	// Capture-pipeline counters of the deployed region (non-zero only
	// when the run also collected): records dropped by backpressure,
	// completed sink flushes, records acknowledged by a remote ingest
	// endpoint.
	CaptureDrops   int `json:"capture_drops"`
	CaptureFlushes int `json:"capture_flushes"`
	RemoteCaptures int `json:"remote_captures"`
}

// Collect is a data-collection run through the capture pipeline: how
// many region invocations ran, what the sink accepted, where it
// landed (local shards and/or a remote ingest database), and what was
// lost. dropped/flush_errors/write_errors > 0 means the training set
// is incomplete — hpacml-collect exits non-zero on it.
type Collect struct {
	Runs int `json:"runs"`
	// DB is the db reference the region collected into (a local .gh5
	// path or a remote capture URI).
	DB string `json:"db"`

	Records     int `json:"records"`
	Sampled     int `json:"sampled"`
	Shards      int `json:"shards"`
	Dropped     int `json:"dropped"`
	Flushes     int `json:"flushes"`
	FlushErrors int `json:"flush_errors"`
	WriteErrors int `json:"write_errors"`
	// RemoteRecords counts records acknowledged by the remote ingest
	// endpoint (0 for local collection).
	RemoteRecords int `json:"remote_records"`
}

// Serving is a load-generator run against a surrogate server: client-side
// traffic accounting plus the server-reported coalescing evidence (mean
// batch size and the batch-size histogram).
type Serving struct {
	TargetRPS   float64 `json:"target_rps"` // 0 means unthrottled
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`

	Sent        uint64  `json:"sent"`
	Completed   uint64  `json:"completed"`
	Rejected    uint64  `json:"rejected"` // backpressure: queue-full refusals
	Errors      uint64  `json:"errors"`
	AchievedRPS float64 `json:"achieved_rps"`

	// Client-observed request latency quantiles, milliseconds.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// Server-reported coalescing evidence: batches > 1 must actually
	// form for the micro-batching claim to hold.
	MeanBatch float64           `json:"mean_batch"`
	BatchHist map[string]uint64 `json:"batch_hist,omitempty"`

	// Wire names the client protocol the run used ("json" or
	// "binary"); empty in records that predate the binary wire.
	Wire string `json:"wire,omitempty"`
	// Dtype names the binary wire's frame element encoding ("f64",
	// "f32", or "i8"); empty for JSON runs and pre-dtype records.
	Dtype string `json:"dtype,omitempty"`
	// RecordsPerSec is the completed-inference throughput (same value
	// AchievedRPS holds for single-row requests; kept separate so the
	// CI gate has a stable name).
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	// CapturedRecords counts capture records the loadgen shipped to the
	// server's ingest endpoint alongside the inference traffic (the
	// closed-loop smoke's retraining feed); 0 when capture was off.
	CapturedRecords uint64 `json:"captured_records,omitempty"`
	// Baseline holds the JSON-wire run a wire=both loadgen performed
	// before the binary run, so one artifact carries the comparison.
	Baseline *Serving `json:"baseline,omitempty"`
}

// WriteJSON writes the record as indented JSON to w.
func (r *Record) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the record as indented JSON to path ("" or "-" means
// stdout).
func (r *Record) WriteFile(path string) error {
	if path == "" || path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
