package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/learner"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
)

// The wire schema lives in internal/serveapi, shared with the typed
// client (internal/serveclient) and, through it, the runtime's remote
// engine. The aliases keep this package's exported API unchanged.
type (
	// InferRequest is the /v1/infer request body.
	InferRequest = serveapi.InferRequest
	// InferResponse mirrors the request: Output answers Input, Outputs
	// answers Inputs.
	InferResponse = serveapi.InferResponse
	// StatsResponse is the /v1/stats payload.
	StatsResponse = serveapi.StatsResponse
)

// HandlerOption configures NewHandler.
type HandlerOption func(*handler)

// WithLogger sets the structured request logger. Per-request lines log
// at Debug, slow requests at Warn, and 5xx responses at Error, so the
// production default (Info) stays quiet while anything worth waking up
// for still lands in the log. Default slog.Default().
func WithLogger(l *slog.Logger) HandlerOption {
	return func(h *handler) { h.log = l }
}

// WithSlowRequest sets the slow-request threshold: requests that take
// at least d log at Warn with their full stage breakdown and count in
// hpacml_slow_requests_total. Zero disables slow classification.
// Default 250ms.
func WithSlowRequest(d time.Duration) HandlerOption {
	return func(h *handler) { h.slow = d }
}

// WithLearner attaches a continuous-learning controller to the API:
// /v1/models entries gain their learner generation and lineage,
// /v1/stats gains the Learners section, and POST
// /v1/models/{model}/rollback restores a model's parent generation.
// Without it the rollback endpoint answers 404.
func WithLearner(l *learner.Controller) HandlerOption {
	return func(h *handler) { h.learner = l }
}

// defaultSlowRequest classifies a request as slow when no
// WithSlowRequest override is given: generous against a micro-batching
// target of single-digit milliseconds, tight enough to flag real
// stalls.
const defaultSlowRequest = 250 * time.Millisecond

// handler is the HTTP layer: the route mux wrapped in the
// tracing/logging middleware, plus the pre-resolved telemetry handles
// the per-request path records into (resolved once here so the
// request path never pays a label lookup).
type handler struct {
	s       *Server
	mux     *http.ServeMux
	log     *slog.Logger
	slow    time.Duration
	learner *learner.Controller // nil = continuous learning disabled

	okRequests  map[string]*telemetry.Counter // route -> 200 counter
	stageDecode *telemetry.Histogram
	stageEncode *telemetry.Histogram

	wireInfer   [4]*telemetry.Counter // json, frame-f64, frame-f32, frame-i8
	wireCapture [4]*telemetry.Counter
}

// wire-counter slots, indexed by how the request body arrived.
const (
	wireSlotJSON = iota
	wireSlotF64
	wireSlotF32
	wireSlotI8
)

// NewHandler exposes the server over the HTTP API:
//
//	POST /v1/infer    {"model": "m", "input": [...]}  -> {"output": [...]}
//	POST /v1/capture  {"db": "d", "records": [...]}   -> {"accepted": N}
//	GET  /v1/models   registry listing (checksum/load-time/path provenance,
//	                  plus learner generation and lineage under WithLearner)
//	GET  /v1/stats    per-model serving stats + capture ingest stats
//	                  (+ the Learners section under WithLearner)
//	POST /v1/models/{model}/rollback   restore the parent generation
//	GET  /metrics     Prometheus text-format exposition
//	GET  /healthz     liveness + build/version info
//
// Backpressure surfaces as 429, unknown models/capture DBs as 404,
// malformed bodies, wrong input widths and bad capture records as 400,
// shutdown as 503.
//
// Both POST endpoints also speak the binary frame protocol: a request
// with Content-Type application/x-hpacml-frame is decoded as a frame
// (serveapi.AppendInferRequest / AppendCaptureRequest layouts), and
// /v1/infer answers in kind — a response frame of the request's dtype.
// The capture ack and every error body stay JSON. A frame of an
// unsupported version is refused with 415 so newer clients downgrade
// to JSON; a malformed frame is a plain 400.
//
// Every request is traced: an incoming X-Request-ID is honored (a
// fresh ID is minted otherwise), echoed on the response header and in
// error bodies, and logged — with per-stage decode/queue/forward/
// encode timings — through the structured request logger (see
// WithLogger / WithSlowRequest).
func NewHandler(s *Server, opts ...HandlerOption) http.Handler {
	h := &handler{
		s:    s,
		mux:  http.NewServeMux(),
		log:  slog.Default(),
		slow: defaultSlowRequest,

		okRequests:  make(map[string]*telemetry.Counter),
		stageDecode: s.met.httpStage.With("decode"),
		stageEncode: s.met.httpStage.With("encode"),
		wireInfer: [4]*telemetry.Counter{
			s.met.wireRequests.With("infer", "json", "f64"),
			s.met.wireRequests.With("infer", "binary", "f64"),
			s.met.wireRequests.With("infer", "binary", "f32"),
			s.met.wireRequests.With("infer", "binary", "i8"),
		},
		wireCapture: [4]*telemetry.Counter{
			s.met.wireRequests.With("capture", "json", "f64"),
			s.met.wireRequests.With("capture", "binary", "f64"),
			s.met.wireRequests.With("capture", "binary", "f32"),
			s.met.wireRequests.With("capture", "binary", "i8"),
		},
	}
	for _, opt := range opts {
		opt(h)
	}
	for _, route := range []string{"/v1/infer", "/v1/capture", "/v1/models", "/v1/stats", routeRollback, "/metrics", "/healthz", "other"} {
		h.okRequests[route] = s.met.httpRequests.With(route, "200")
	}

	h.mux.HandleFunc("/v1/infer", h.serveInfer)
	h.mux.HandleFunc("/v1/capture", h.serveCapture)
	h.mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		infos := s.Models()
		if h.learner != nil {
			h.learner.Annotate(infos)
		}
		writeJSON(w, http.StatusOK, infos)
	})
	h.mux.HandleFunc("POST /v1/models/{model}/rollback", h.serveRollback)
	h.mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		resp := StatsResponse{
			UptimeSec: s.Uptime().Seconds(),
			Models:    s.Snapshot(),
			Captures:  s.CaptureSnapshot(),
			Wire:      h.wireSnapshot(),
		}
		if h.learner != nil {
			resp.Learners = h.learner.Snapshot()
		}
		writeJSON(w, http.StatusOK, resp)
	})
	h.mux.Handle("/metrics", telemetry.Handler(s.met.reg))
	h.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		b := telemetry.Build()
		writeJSON(w, http.StatusOK, serveapi.HealthResponse{
			Status:    "ok",
			Version:   b.Version,
			Revision:  b.Revision,
			GoVersion: b.GoVersion,
			UptimeSec: s.Uptime().Seconds(),
		})
	})
	return h
}

// statusWriter captures the response status code for accounting.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// routeRollback is the metric label of the admin rollback route — the
// model name in the path is collapsed away so label cardinality stays
// fixed.
const routeRollback = "/v1/models/{model}/rollback"

// routeLabel collapses request paths onto the fixed route set so a
// path-scanning client cannot mint unbounded label cardinality.
func routeLabel(path string) string {
	switch path {
	case "/v1/infer", "/v1/capture", "/v1/models", "/v1/stats", "/metrics", "/healthz":
		return path
	}
	if strings.HasPrefix(path, "/v1/models/") && strings.HasSuffix(path, "/rollback") {
		return routeRollback
	}
	return "other"
}

// serveRollback handles POST /v1/models/{model}/rollback: restore the
// model's parent generation from its lineage archive and hot-reload
// it. 404 without a learner (or for an unmanaged model), 409 when the
// live generation has no parent to return to.
func (h *handler) serveRollback(w http.ResponseWriter, r *http.Request) {
	if h.learner == nil {
		writeErr(w, r, http.StatusNotFound, errors.New("no continuous-learning controller attached"))
		return
	}
	resp, err := h.learner.Rollback(r.PathValue("model"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, learner.ErrUnknownModel):
		writeErr(w, r, http.StatusNotFound, err)
	case errors.Is(err, learner.ErrNoParent):
		writeErr(w, r, http.StatusConflict, err)
	default:
		writeErr(w, r, http.StatusInternalServerError, err)
	}
}

// ServeHTTP is the tracing/logging middleware around the route mux:
// resolve the request ID, serve, account the status, and emit one
// structured log line with the span's stage breakdown.
func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := r.Header.Get(serveapi.HeaderRequestID)
	if rid == "" {
		rid = serveapi.NewRequestID()
	}
	sp := &span{id: rid, start: start}
	w.Header().Set(serveapi.HeaderRequestID, rid)
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	h.mux.ServeHTTP(sw, r.WithContext(withSpan(r.Context(), sp)))
	dur := time.Since(start)

	route := routeLabel(r.URL.Path)
	if sw.code == http.StatusOK {
		h.okRequests[route].Inc()
	} else {
		h.s.met.httpRequests.With(route, strconv.Itoa(sw.code)).Inc()
	}

	slow := h.slow > 0 && dur >= h.slow
	if slow {
		h.s.met.slowRequests.Inc()
	}
	level := slog.LevelDebug
	switch {
	case sw.code >= http.StatusInternalServerError:
		level = slog.LevelError
	case slow:
		level = slog.LevelWarn
	}
	if !h.log.Enabled(r.Context(), level) {
		return
	}
	queue, forward := sp.stageDurations()
	attrs := make([]slog.Attr, 0, 13)
	attrs = append(attrs,
		slog.String("rid", rid),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.code),
		slog.Duration("dur", dur),
	)
	if sp.model != "" {
		attrs = append(attrs, slog.String("model", sp.model))
	}
	if sp.db != "" {
		attrs = append(attrs, slog.String("db", sp.db))
	}
	if sp.wire != "" {
		attrs = append(attrs,
			slog.String("wire", sp.wire),
			slog.String("dtype", sp.dtype),
			slog.Int("rows", sp.rows),
			slog.Duration("decode", sp.decode),
			slog.Duration("queue", queue),
			slog.Duration("forward", forward),
			slog.Duration("encode", sp.encode),
		)
	}
	if slow {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	h.log.LogAttrs(r.Context(), level, "request", attrs...)
}

// serveInfer handles POST /v1/infer on either wire.
func (h *handler) serveInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if isFrameRequest(r) {
		h.serveInferFrame(w, r)
		return
	}
	s, sp := h.s, spanFrom(r.Context())
	sp.wire, sp.dtype = "json", "f64"
	h.wireInfer[wireSlotJSON].Inc()
	decodeStart := time.Now()
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	h.observeDecode(sp, time.Since(decodeStart))
	sp.model = req.Model
	switch {
	case req.Input != nil && req.Inputs == nil:
		sp.rows = 1
		out, err := s.infer(req.Model, req.Input, sp)
		if err != nil {
			writeErr(w, r, statusFor(err), err)
			return
		}
		h.encodeJSON(w, sp, InferResponse{Model: req.Model, Output: out})
	case req.Inputs != nil && req.Input == nil:
		sp.rows = len(req.Inputs)
		outs := make([][]float64, len(req.Inputs))
		errs := make([]error, len(req.Inputs))
		forEachRow(len(req.Inputs), func(i int) {
			outs[i], errs[i] = s.infer(req.Model, req.Inputs[i], sp)
		})
		for _, err := range errs {
			if err != nil {
				writeErr(w, r, statusFor(err), err)
				return
			}
		}
		h.encodeJSON(w, sp, InferResponse{Model: req.Model, Outputs: outs})
	default:
		writeErr(w, r, http.StatusBadRequest, errors.New(`set exactly one of "input" or "inputs"`))
	}
}

// serveCapture handles POST /v1/capture on either wire.
func (h *handler) serveCapture(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, r, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if isFrameRequest(r) {
		h.serveCaptureFrame(w, r)
		return
	}
	s, sp := h.s, spanFrom(r.Context())
	sp.wire, sp.dtype = "json", "f64"
	h.wireCapture[wireSlotJSON].Inc()
	decodeStart := time.Now()
	var req serveapi.CaptureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	h.observeDecode(sp, time.Since(decodeStart))
	sp.db, sp.rows = req.DB, len(req.Records)
	if len(req.Records) == 0 {
		writeErr(w, r, http.StatusBadRequest, errors.New(`"records" must carry at least one capture record`))
		return
	}
	accepted, err := s.Capture(req.DB, req.Records)
	if err != nil {
		// Report the durably appended prefix alongside the error so
		// the client can account for a partial ingest exactly.
		writeJSON(w, statusFor(err), serveapi.ErrorBody{Error: err.Error(), Accepted: accepted, RequestID: requestIDFrom(r.Context())})
		return
	}
	h.encodeJSON(w, sp, serveapi.CaptureResponse{DB: req.DB, Accepted: accepted})
}

// observeDecode records a request's body-decode duration in both the
// span (for its log line) and the stage histogram.
func (h *handler) observeDecode(sp *span, d time.Duration) {
	sp.decode = d
	h.stageDecode.Observe(d.Seconds())
}

// encodeJSON writes a 200 JSON response, timing the encode stage.
func (h *handler) encodeJSON(w http.ResponseWriter, sp *span, v any) {
	encStart := time.Now()
	writeJSON(w, http.StatusOK, v)
	sp.encode = time.Since(encStart)
	h.stageEncode.Observe(sp.encode.Seconds())
}

// statusFor maps serving errors to HTTP codes. Anything that is not a
// recognized caller mistake is a server-side inference failure and must
// read as 5xx, so clients and monitors don't misfile region/model
// faults as bad requests.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownModel), errors.Is(err, ErrUnknownDB):
		return http.StatusNotFound
	case errors.Is(err, ErrBadInput), errors.Is(err, ErrBadCapture):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr writes a JSON error body stamped with the request's trace
// ID, so the failure a client reports is joinable to this server's
// log line for the same request.
func writeErr(w http.ResponseWriter, r *http.Request, code int, err error) {
	writeJSON(w, code, serveapi.ErrorBody{Error: err.Error(), RequestID: requestIDFrom(r.Context())})
}

// --- binary frame protocol -------------------------------------------

// isFrameRequest reports whether the request negotiated the binary
// frame protocol via its Content-Type (parameters like charset are
// tolerated and ignored).
func isFrameRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == serveapi.ContentTypeFrame {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == serveapi.ContentTypeFrame
}

// frameStatus maps a frame decode failure: unsupported versions are
// 415 (the signal the client's JSON fallback keys on), everything else
// — bad magic, truncation, forged dims, dtype mismatch — is a plain
// malformed-request 400.
func frameStatus(err error) int {
	if errors.Is(err, serveapi.ErrFrameVersion) {
		return http.StatusUnsupportedMediaType
	}
	return http.StatusBadRequest
}

// frameScratch holds one frame request's reusable buffers: the raw
// request body, the decoded input slab, the flattened output slab, and
// the encoded response frame.
type frameScratch struct {
	body []byte
	in   []float64
	out  []float64
	enc  []byte
}

var framePool = sync.Pool{New: func() any { return new(frameScratch) }}

// errFrameTooLarge reports a request whose declared Content-Length
// already exceeds the frame size limit, before any byte is read.
var errFrameTooLarge = fmt.Errorf("frame exceeds %d bytes", serveapi.MaxFrameLen)

// readFrameStatus maps a frame body-read failure: an oversized frame —
// declared up front or discovered mid-read — is 413, anything else
// (client disconnects, chunked-encoding garbage) a plain 400.
func readFrameStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.Is(err, errFrameTooLarge) || errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readFrameBody reads the whole request body into buf's storage (grown
// as needed), so pooled buffers absorb the read. The read is bounded by
// serveapi.MaxFrameLen on both the declared Content-Length and the
// actual byte count, and the attacker-controlled Content-Length only
// sizes the pre-allocation up to a modest cap — a forged header costs
// the sender real bytes, never a large allocation on this side.
func readFrameBody(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, error) {
	if r.ContentLength > serveapi.MaxFrameLen {
		return buf[:0], fmt.Errorf("%w (declared %d)", errFrameTooLarge, r.ContentLength)
	}
	body := http.MaxBytesReader(w, r.Body, serveapi.MaxFrameLen)
	buf = buf[:0]
	const maxPrealloc = 1 << 20
	if n := r.ContentLength; n > 0 && n <= maxPrealloc && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// Per-request batch fan-out bounds: one request may carry at most
// maxInferRows rows, served by at most maxInferFanout goroutines. The
// rows still reach the coalescer concurrently, like independent
// clients, but a single huge (or forged) batch cannot spawn a
// goroutine per row or size multi-GB bookkeeping slices.
const (
	maxInferRows   = 1 << 20
	maxInferFanout = 64
)

// forEachRow runs fn(i) for every i in [0, rows) across at most
// maxInferFanout goroutines.
func forEachRow(rows int, fn func(i int)) {
	if rows == 1 {
		fn(0)
		return
	}
	workers := rows
	if workers > maxInferFanout {
		workers = maxInferFanout
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= rows {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// wireSnapshot folds the hot-path wire counters into the /v1/stats
// Wire section, skipping combinations that have seen no traffic.
func (h *handler) wireSnapshot() []serveapi.WireStats {
	slots := []struct {
		wire, dtype string
	}{
		{"json", "f64"},
		{"binary", "f64"},
		{"binary", "f32"},
		{"binary", "i8"},
	}
	var out []serveapi.WireStats
	for _, ep := range []struct {
		name     string
		counters *[4]*telemetry.Counter
	}{{"infer", &h.wireInfer}, {"capture", &h.wireCapture}} {
		for i, slot := range slots {
			if n := ep.counters[i].Value(); n > 0 {
				out = append(out, serveapi.WireStats{
					Endpoint: ep.name, Wire: slot.wire, Dtype: slot.dtype, Requests: n,
				})
			}
		}
	}
	return out
}

// dtypeSlot maps a frame dtype to its metric slot and label.
func dtypeSlot(dt serveapi.Dtype) (slot int, label string) {
	switch dt {
	case serveapi.DtypeF32:
		return wireSlotF32, "f32"
	case serveapi.DtypeI8:
		return wireSlotI8, "i8"
	}
	return wireSlotF64, "f64"
}

// serveInferFrame is the binary hot path of /v1/infer: decode the
// request slab into pooled buffers, submit every row to the coalescer
// concurrently, and answer a response frame of the request's dtype.
func (h *handler) serveInferFrame(w http.ResponseWriter, r *http.Request) {
	s, sp := h.s, spanFrom(r.Context())
	sp.wire = "binary"
	fs := framePool.Get().(*frameScratch)
	defer framePool.Put(fs)
	decodeStart := time.Now()
	var err error
	if fs.body, err = readFrameBody(w, r, fs.body); err != nil {
		writeErr(w, r, readFrameStatus(err), fmt.Errorf("reading frame: %w", err))
		return
	}
	req, err := serveapi.DecodeInferRequest(fs.body, fs.in)
	if err != nil {
		writeErr(w, r, frameStatus(err), err)
		return
	}
	h.observeDecode(sp, time.Since(decodeStart))
	fs.in = req.Data
	slot, dlabel := dtypeSlot(req.Dtype)
	sp.dtype = dlabel
	sp.model, sp.rows = req.Model, req.Rows
	h.wireInfer[slot].Inc()
	if req.Rows == 0 {
		writeErr(w, r, http.StatusBadRequest, errors.New("frame must carry at least one row"))
		return
	}
	if req.Rows > maxInferRows {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("frame carries %d rows, limit %d", req.Rows, maxInferRows))
		return
	}
	outs := make([][]float64, req.Rows)
	errs := make([]error, req.Rows)
	forEachRow(req.Rows, func(i int) {
		outs[i], errs[i] = s.infer(req.Model, req.Data[i*req.Cols:(i+1)*req.Cols], sp)
	})
	for _, err := range errs {
		if err != nil {
			writeErr(w, r, statusFor(err), err)
			return
		}
	}
	encStart := time.Now()
	outCols := len(outs[0])
	if cap(fs.out) < req.Rows*outCols {
		fs.out = make([]float64, 0, req.Rows*outCols)
	}
	fs.out = fs.out[:0]
	for _, row := range outs {
		fs.out = append(fs.out, row...)
	}
	if fs.enc, err = serveapi.AppendInferResponse(fs.enc[:0], req.Dtype, req.Model, req.Rows, outCols, fs.out); err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", serveapi.ContentTypeFrame)
	w.Header().Set("Content-Length", strconv.Itoa(len(fs.enc)))
	w.WriteHeader(http.StatusOK)
	w.Write(fs.enc)
	sp.encode = time.Since(encStart)
	h.stageEncode.Observe(sp.encode.Seconds())
}

// serveCaptureFrame is the binary path of /v1/capture. The decoded
// records are freshly allocated (ingest hands them to the database
// writer, which outlives the request); only the body read is pooled.
// The ack is JSON, like the JSON path's.
func (h *handler) serveCaptureFrame(w http.ResponseWriter, r *http.Request) {
	s, sp := h.s, spanFrom(r.Context())
	sp.wire = "binary"
	fs := framePool.Get().(*frameScratch)
	defer framePool.Put(fs)
	decodeStart := time.Now()
	var err error
	if fs.body, err = readFrameBody(w, r, fs.body); err != nil {
		writeErr(w, r, readFrameStatus(err), fmt.Errorf("reading frame: %w", err))
		return
	}
	db, recs, err := serveapi.DecodeCaptureRequest(fs.body)
	if err != nil {
		writeErr(w, r, frameStatus(err), err)
		return
	}
	h.observeDecode(sp, time.Since(decodeStart))
	// DecodeCaptureRequest erases the wire dtype into float64 records;
	// re-read it from the header so telemetry sees the real mix.
	dt, _ := serveapi.FrameDtype(fs.body)
	slot, dlabel := dtypeSlot(dt)
	sp.dtype = dlabel
	sp.db, sp.rows = db, len(recs)
	h.wireCapture[slot].Inc()
	if len(recs) == 0 {
		writeErr(w, r, http.StatusBadRequest, errors.New("frame must carry at least one capture record"))
		return
	}
	accepted, err := s.Capture(db, recs)
	if err != nil {
		writeJSON(w, statusFor(err), serveapi.ErrorBody{Error: err.Error(), Accepted: accepted, RequestID: requestIDFrom(r.Context())})
		return
	}
	h.encodeJSON(w, sp, serveapi.CaptureResponse{DB: db, Accepted: accepted})
}
