package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/serveapi"
)

// The wire schema lives in internal/serveapi, shared with the typed
// client (internal/serveclient) and, through it, the runtime's remote
// engine. The aliases keep this package's exported API unchanged.
type (
	// InferRequest is the /v1/infer request body.
	InferRequest = serveapi.InferRequest
	// InferResponse mirrors the request: Output answers Input, Outputs
	// answers Inputs.
	InferResponse = serveapi.InferResponse
	// StatsResponse is the /v1/stats payload.
	StatsResponse = serveapi.StatsResponse
)

// NewHandler exposes the server over the HTTP JSON API:
//
//	POST /v1/infer    {"model": "m", "input": [...]}  -> {"output": [...]}
//	POST /v1/capture  {"db": "d", "records": [...]}   -> {"accepted": N}
//	GET  /v1/models   registry listing
//	GET  /v1/stats    per-model serving stats + capture ingest stats
//	GET  /healthz     liveness
//
// Backpressure surfaces as 429, unknown models/capture DBs as 404,
// malformed bodies, wrong input widths and bad capture records as 400,
// shutdown as 503.
//
// Both POST endpoints also speak the binary frame protocol: a request
// with Content-Type application/x-hpacml-frame is decoded as a frame
// (serveapi.AppendInferRequest / AppendCaptureRequest layouts), and
// /v1/infer answers in kind — a response frame of the request's dtype.
// The capture ack and every error body stay JSON. A frame of an
// unsupported version is refused with 415 so newer clients downgrade
// to JSON; a malformed frame is a plain 400.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		if isFrameRequest(r) {
			serveInferFrame(s, w, r)
			return
		}
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		switch {
		case req.Input != nil && req.Inputs == nil:
			out, err := s.Infer(req.Model, req.Input)
			if err != nil {
				writeErr(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, InferResponse{Model: req.Model, Output: out})
		case req.Inputs != nil && req.Input == nil:
			outs := make([][]float64, len(req.Inputs))
			errs := make([]error, len(req.Inputs))
			forEachRow(len(req.Inputs), func(i int) {
				outs[i], errs[i] = s.Infer(req.Model, req.Inputs[i])
			})
			for _, err := range errs {
				if err != nil {
					writeErr(w, statusFor(err), err)
					return
				}
			}
			writeJSON(w, http.StatusOK, InferResponse{Model: req.Model, Outputs: outs})
		default:
			writeErr(w, http.StatusBadRequest, errors.New(`set exactly one of "input" or "inputs"`))
		}
	})
	mux.HandleFunc("/v1/capture", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		if isFrameRequest(r) {
			serveCaptureFrame(s, w, r)
			return
		}
		var req serveapi.CaptureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		if len(req.Records) == 0 {
			writeErr(w, http.StatusBadRequest, errors.New(`"records" must carry at least one capture record`))
			return
		}
		accepted, err := s.Capture(req.DB, req.Records)
		if err != nil {
			// Report the durably appended prefix alongside the error so
			// the client can account for a partial ingest exactly.
			writeJSON(w, statusFor(err), serveapi.ErrorBody{Error: err.Error(), Accepted: accepted})
			return
		}
		writeJSON(w, http.StatusOK, serveapi.CaptureResponse{DB: req.DB, Accepted: accepted})
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Models())
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponse{
			UptimeSec: s.Uptime().Seconds(),
			Models:    s.Snapshot(),
			Captures:  s.CaptureSnapshot(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// statusFor maps serving errors to HTTP codes. Anything that is not a
// recognized caller mistake is a server-side inference failure and must
// read as 5xx, so clients and monitors don't misfile region/model
// faults as bad requests.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownModel), errors.Is(err, ErrUnknownDB):
		return http.StatusNotFound
	case errors.Is(err, ErrBadInput), errors.Is(err, ErrBadCapture):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, serveapi.ErrorBody{Error: err.Error()})
}

// --- binary frame protocol -------------------------------------------

// isFrameRequest reports whether the request negotiated the binary
// frame protocol via its Content-Type (parameters like charset are
// tolerated and ignored).
func isFrameRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == serveapi.ContentTypeFrame {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == serveapi.ContentTypeFrame
}

// frameStatus maps a frame decode failure: unsupported versions are
// 415 (the signal the client's JSON fallback keys on), everything else
// — bad magic, truncation, forged dims, dtype mismatch — is a plain
// malformed-request 400.
func frameStatus(err error) int {
	if errors.Is(err, serveapi.ErrFrameVersion) {
		return http.StatusUnsupportedMediaType
	}
	return http.StatusBadRequest
}

// frameScratch holds one frame request's reusable buffers: the raw
// request body, the decoded input slab, the flattened output slab, and
// the encoded response frame.
type frameScratch struct {
	body []byte
	in   []float64
	out  []float64
	enc  []byte
}

var framePool = sync.Pool{New: func() any { return new(frameScratch) }}

// errFrameTooLarge reports a request whose declared Content-Length
// already exceeds the frame size limit, before any byte is read.
var errFrameTooLarge = fmt.Errorf("frame exceeds %d bytes", serveapi.MaxFrameLen)

// readFrameStatus maps a frame body-read failure: an oversized frame —
// declared up front or discovered mid-read — is 413, anything else
// (client disconnects, chunked-encoding garbage) a plain 400.
func readFrameStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.Is(err, errFrameTooLarge) || errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readFrameBody reads the whole request body into buf's storage (grown
// as needed), so pooled buffers absorb the read. The read is bounded by
// serveapi.MaxFrameLen on both the declared Content-Length and the
// actual byte count, and the attacker-controlled Content-Length only
// sizes the pre-allocation up to a modest cap — a forged header costs
// the sender real bytes, never a large allocation on this side.
func readFrameBody(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, error) {
	if r.ContentLength > serveapi.MaxFrameLen {
		return buf[:0], fmt.Errorf("%w (declared %d)", errFrameTooLarge, r.ContentLength)
	}
	body := http.MaxBytesReader(w, r.Body, serveapi.MaxFrameLen)
	buf = buf[:0]
	const maxPrealloc = 1 << 20
	if n := r.ContentLength; n > 0 && n <= maxPrealloc && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// Per-request batch fan-out bounds: one request may carry at most
// maxInferRows rows, served by at most maxInferFanout goroutines. The
// rows still reach the coalescer concurrently, like independent
// clients, but a single huge (or forged) batch cannot spawn a
// goroutine per row or size multi-GB bookkeeping slices.
const (
	maxInferRows   = 1 << 20
	maxInferFanout = 64
)

// forEachRow runs fn(i) for every i in [0, rows) across at most
// maxInferFanout goroutines.
func forEachRow(rows int, fn func(i int)) {
	if rows == 1 {
		fn(0)
		return
	}
	workers := rows
	if workers > maxInferFanout {
		workers = maxInferFanout
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= rows {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// serveInferFrame is the binary hot path of /v1/infer: decode the
// request slab into pooled buffers, submit every row to the coalescer
// concurrently, and answer a response frame of the request's dtype.
func serveInferFrame(s *Server, w http.ResponseWriter, r *http.Request) {
	fs := framePool.Get().(*frameScratch)
	defer framePool.Put(fs)
	var err error
	if fs.body, err = readFrameBody(w, r, fs.body); err != nil {
		writeErr(w, readFrameStatus(err), fmt.Errorf("reading frame: %w", err))
		return
	}
	req, err := serveapi.DecodeInferRequest(fs.body, fs.in)
	if err != nil {
		writeErr(w, frameStatus(err), err)
		return
	}
	fs.in = req.Data
	if req.Rows == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("frame must carry at least one row"))
		return
	}
	if req.Rows > maxInferRows {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("frame carries %d rows, limit %d", req.Rows, maxInferRows))
		return
	}
	outs := make([][]float64, req.Rows)
	errs := make([]error, req.Rows)
	forEachRow(req.Rows, func(i int) {
		outs[i], errs[i] = s.Infer(req.Model, req.Data[i*req.Cols:(i+1)*req.Cols])
	})
	for _, err := range errs {
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
	}
	outCols := len(outs[0])
	if cap(fs.out) < req.Rows*outCols {
		fs.out = make([]float64, 0, req.Rows*outCols)
	}
	fs.out = fs.out[:0]
	for _, row := range outs {
		fs.out = append(fs.out, row...)
	}
	if fs.enc, err = serveapi.AppendInferResponse(fs.enc[:0], req.Dtype, req.Model, req.Rows, outCols, fs.out); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", serveapi.ContentTypeFrame)
	w.Header().Set("Content-Length", strconv.Itoa(len(fs.enc)))
	w.WriteHeader(http.StatusOK)
	w.Write(fs.enc)
}

// serveCaptureFrame is the binary path of /v1/capture. The decoded
// records are freshly allocated (ingest hands them to the database
// writer, which outlives the request); only the body read is pooled.
// The ack is JSON, like the JSON path's.
func serveCaptureFrame(s *Server, w http.ResponseWriter, r *http.Request) {
	fs := framePool.Get().(*frameScratch)
	defer framePool.Put(fs)
	var err error
	if fs.body, err = readFrameBody(w, r, fs.body); err != nil {
		writeErr(w, readFrameStatus(err), fmt.Errorf("reading frame: %w", err))
		return
	}
	db, recs, err := serveapi.DecodeCaptureRequest(fs.body)
	if err != nil {
		writeErr(w, frameStatus(err), err)
		return
	}
	if len(recs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("frame must carry at least one capture record"))
		return
	}
	accepted, err := s.Capture(db, recs)
	if err != nil {
		writeJSON(w, statusFor(err), serveapi.ErrorBody{Error: err.Error(), Accepted: accepted})
		return
	}
	writeJSON(w, http.StatusOK, serveapi.CaptureResponse{DB: db, Accepted: accepted})
}
