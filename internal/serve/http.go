package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/serveapi"
)

// The wire schema lives in internal/serveapi, shared with the typed
// client (internal/serveclient) and, through it, the runtime's remote
// engine. The aliases keep this package's exported API unchanged.
type (
	// InferRequest is the /v1/infer request body.
	InferRequest = serveapi.InferRequest
	// InferResponse mirrors the request: Output answers Input, Outputs
	// answers Inputs.
	InferResponse = serveapi.InferResponse
	// StatsResponse is the /v1/stats payload.
	StatsResponse = serveapi.StatsResponse
)

// NewHandler exposes the server over the HTTP JSON API:
//
//	POST /v1/infer    {"model": "m", "input": [...]}  -> {"output": [...]}
//	POST /v1/capture  {"db": "d", "records": [...]}   -> {"accepted": N}
//	GET  /v1/models   registry listing
//	GET  /v1/stats    per-model serving stats + capture ingest stats
//	GET  /healthz     liveness
//
// Backpressure surfaces as 429, unknown models/capture DBs as 404,
// malformed bodies, wrong input widths and bad capture records as 400,
// shutdown as 503.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		switch {
		case req.Input != nil && req.Inputs == nil:
			out, err := s.Infer(req.Model, req.Input)
			if err != nil {
				writeErr(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, InferResponse{Model: req.Model, Output: out})
		case req.Inputs != nil && req.Input == nil:
			outs := make([][]float64, len(req.Inputs))
			errs := make([]error, len(req.Inputs))
			var wg sync.WaitGroup
			for i := range req.Inputs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					outs[i], errs[i] = s.Infer(req.Model, req.Inputs[i])
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					writeErr(w, statusFor(err), err)
					return
				}
			}
			writeJSON(w, http.StatusOK, InferResponse{Model: req.Model, Outputs: outs})
		default:
			writeErr(w, http.StatusBadRequest, errors.New(`set exactly one of "input" or "inputs"`))
		}
	})
	mux.HandleFunc("/v1/capture", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		var req serveapi.CaptureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		if len(req.Records) == 0 {
			writeErr(w, http.StatusBadRequest, errors.New(`"records" must carry at least one capture record`))
			return
		}
		accepted, err := s.Capture(req.DB, req.Records)
		if err != nil {
			// Report the durably appended prefix alongside the error so
			// the client can account for a partial ingest exactly.
			writeJSON(w, statusFor(err), serveapi.ErrorBody{Error: err.Error(), Accepted: accepted})
			return
		}
		writeJSON(w, http.StatusOK, serveapi.CaptureResponse{DB: req.DB, Accepted: accepted})
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Models())
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponse{
			UptimeSec: s.Uptime().Seconds(),
			Models:    s.Snapshot(),
			Captures:  s.CaptureSnapshot(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// statusFor maps serving errors to HTTP codes. Anything that is not a
// recognized caller mistake is a server-side inference failure and must
// read as 5xx, so clients and monitors don't misfile region/model
// faults as bad requests.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownModel), errors.Is(err, ErrUnknownDB):
		return http.StatusNotFound
	case errors.Is(err, ErrBadInput), errors.Is(err, ErrBadCapture):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, serveapi.ErrorBody{Error: err.Error()})
}
