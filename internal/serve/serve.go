// Package serve is the HPAC-ML surrogate inference server: the
// concurrent-caller execution path the embedded programming model lacks.
//
// Region.ExecuteBatch amortizes bridge and model-call overhead only when
// one caller already holds a batch of invocations. A deployment serving
// many independent simulation clients has the opposite shape: thousands
// of goroutines (or HTTP requests), each carrying a single invocation.
// This package turns the second shape into the first with a dynamic
// micro-batching coalescer:
//
//   - Callers submit one invocation each (Server.Infer) into a bounded
//     per-model queue. A full queue rejects immediately (ErrQueueFull) —
//     explicit backpressure, never unbounded buffering.
//   - Worker goroutines drain the queue, cutting a batch when either
//     MaxBatch invocations have accumulated or MaxDelay has elapsed since
//     the batch's first request, then run one Region.ExecuteBatch call.
//   - Because a Region is not safe for concurrent use, each worker owns a
//     replica Region (same directives, its own bound arrays) — the
//     replica-pool idiom. Replicas share the loaded model through the
//     runtime's path-keyed model cache, and the nn engine's pooled
//     scratch buffers keep concurrent Forward calls safe.
//
// Models are named entries in a registry loaded from .gmod files; a
// checksum poll detects retrained files, validates and publishes the new
// network once (hpacml.StoreModel), and swaps replicas onto it at their
// next batch boundary (Region.RefreshModel) without dropping in-flight
// requests or re-reading disk per replica. A serving stats layer tracks per-model
// throughput, the batch-size histogram (the direct evidence coalescing
// happens), and p50/p95/p99 latency, and aggregates the regions' own
// bridge/inference phase counters.
//
// The server is also the capture-side aggregation point: a registry of
// server-owned sharded .gh5 databases (Config.CaptureDBs) behind the
// /v1/capture ingest endpoint, so many distributed collection ranks —
// regions whose db() clause carries an http(s):// URI — feed one
// training database with batch-atomic, flush-on-ack appends.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/h5"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
)

// Sentinel errors returned by Server.Infer.
var (
	// ErrQueueFull is backpressure: the model's bounded queue is at
	// capacity and the request was rejected rather than buffered.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrServerClosed means the server is shutting down.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrUnknownModel means the request named an unregistered model.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrBadInput means the request's input vector does not match the
	// model's input width — a caller mistake, distinct from server-side
	// inference failures.
	ErrBadInput = errors.New("serve: bad input")
)

// Config is the batching and pooling policy shared by every model the
// server hosts.
type Config struct {
	// MaxBatch caps invocations per ExecuteBatch call. A batch is cut as
	// soon as it reaches MaxBatch. Default 32.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company before the batch is cut anyway. Default 2ms.
	MaxDelay time.Duration
	// QueueCap bounds each model's request queue; submissions beyond it
	// fail with ErrQueueFull. Default 8 * MaxBatch.
	QueueCap int
	// Workers is the replica-pool size per model: how many Regions serve
	// the shared queue concurrently. Default 2.
	Workers int
	// ReloadInterval is how often model files are re-checksummed for
	// hot reload. Zero disables background polling (CheckReload still
	// works on demand).
	ReloadInterval time.Duration

	// CaptureDBs registers server-owned capture databases for the
	// /v1/capture ingest endpoint: distributed collection ranks POST
	// their capture batches here and the server appends them to sharded
	// .gh5 files. Empty leaves ingest disabled.
	CaptureDBs []CaptureSpec

	// Metrics, when set, is the telemetry registry the server
	// registers its metric families on; the HTTP handler exposes it at
	// GET /metrics. Families are registered once, so give each server
	// its own registry. Nil gets a fresh private one.
	Metrics *telemetry.Registry

	// batchHook, when set, runs before each ExecuteBatch call. Test seam
	// for stalling workers deterministically.
	batchHook func(model string, n int)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8 * c.MaxBatch
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// Server hosts a registry of surrogate models behind micro-batching
// queues. All methods are safe for concurrent use.
type Server struct {
	cfg    Config
	models map[string]*model // immutable after NewServer
	ingest *ingest           // nil when capture ingest is disabled
	met    *metrics
	start  time.Time

	// mu serializes queue sends against Close closing the queues.
	mu     sync.RWMutex
	closed bool

	wg       sync.WaitGroup
	stopPoll chan struct{}
	pollDone chan struct{}
}

// NewServer builds the registry (loading every model to resolve and
// validate its dimensions), spins up each model's replica pool, and
// starts the hot-reload poller when configured. Every replica runs one
// zero-input warmup inference so model-load errors surface here, not on
// the first request.
func NewServer(cfg Config, specs ...ModelSpec) (*Server, error) {
	if len(specs) == 0 && len(cfg.CaptureDBs) == 0 {
		return nil, fmt.Errorf("serve: no models registered")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		models:   make(map[string]*model, len(specs)),
		met:      newMetrics(cfg.Metrics),
		start:    time.Now(),
		stopPoll: make(chan struct{}),
		pollDone: make(chan struct{}),
	}
	closeAll := func() {
		for _, m := range s.models {
			m.closeReplicas()
		}
		if s.ingest != nil {
			s.ingest.close()
		}
	}
	if len(cfg.CaptureDBs) > 0 {
		g, err := newIngest(cfg.CaptureDBs, s.met)
		if err != nil {
			return nil, err
		}
		s.ingest = g
	}
	for _, spec := range specs {
		if _, dup := s.models[spec.Name]; dup {
			closeAll()
			return nil, fmt.Errorf("serve: model %q registered twice", spec.Name)
		}
		m, err := newModel(spec, cfg, s.met)
		if err != nil {
			closeAll()
			return nil, err
		}
		s.models[m.name] = m
	}
	s.registerServerFuncs()
	for _, m := range s.models {
		for _, rep := range m.replicas {
			s.wg.Add(1)
			go s.worker(m, rep)
		}
	}
	if cfg.ReloadInterval > 0 {
		go s.pollReload()
	} else {
		close(s.pollDone)
	}
	return s, nil
}

// Infer runs one invocation of the named model: in must hold the model's
// input-feature count and the returned slice holds its output features.
// The call blocks until a worker has served the request as part of a
// coalesced batch; it fails fast with ErrQueueFull under backpressure.
func (s *Server) Infer(modelName string, in []float64) ([]float64, error) {
	return s.infer(modelName, in, nil)
}

// infer is Infer plus trace plumbing: when sp is non-nil, the served
// request's queue-wait and forward durations fold into the HTTP span
// so the request's log line carries its stage breakdown.
func (s *Server) infer(modelName string, in []float64, sp *span) ([]float64, error) {
	m := s.models[modelName]
	if m == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, modelName)
	}
	if len(in) != m.in {
		return nil, fmt.Errorf("%w: model %q wants %d input features, got %d", ErrBadInput, modelName, m.in, len(in))
	}
	req := &request{
		in:   in,
		out:  make([]float64, m.out),
		enq:  time.Now(),
		done: make(chan error, 1),
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrServerClosed
	}
	select {
	case m.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		m.stats.reject()
		return nil, fmt.Errorf("%w: model %q at capacity %d", ErrQueueFull, modelName, cap(m.queue))
	}
	err := <-req.done
	if sp != nil {
		sp.addRow(req.queued, req.forward)
	}
	if err != nil {
		return nil, err
	}
	return req.out, nil
}

// Metrics returns the server's telemetry registry — the one the
// handler serves at GET /metrics — so embedders (an admin mux, tests)
// can scrape or extend it.
func (s *Server) Metrics() *telemetry.Registry { return s.met.reg }

// Capture appends a batch of capture records to the named registered
// capture database, returning how many records were accepted. A nil
// error means the whole batch (with a flush behind it) is durable; on
// error the accepted count says how many leading records landed.
// Requests during or after shutdown fail with ErrServerClosed so
// clients never write into a closing database.
func (s *Server) Capture(db string, recs []serveapi.CaptureRecord) (int, error) {
	if s.ingest == nil {
		return 0, fmt.Errorf("%w: capture ingest not enabled", ErrUnknownDB)
	}
	// The read lock holds Close's writer teardown off until in-flight
	// batches finish, mirroring the Infer queue-send guard.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrServerClosed
	}
	return s.ingest.capture(db, recs)
}

// CaptureSnapshot returns the per-database ingest stats, nil when
// capture ingest is disabled.
func (s *Server) CaptureSnapshot() []serveapi.CaptureSnapshot {
	if s.ingest == nil {
		return nil
	}
	return s.ingest.snapshot()
}

// Models lists the registry in name order.
func (s *Server) Models() []ModelInfo {
	names := make([]string, 0, len(s.models))
	for n := range s.models {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ModelInfo, 0, len(names))
	for _, n := range names {
		out = append(out, s.models[n].info())
	}
	return out
}

// Snapshot returns the per-model serving stats in name order.
func (s *Server) Snapshot() []ModelSnapshot {
	infos := s.Models()
	out := make([]ModelSnapshot, 0, len(infos))
	for _, info := range infos {
		m := s.models[info.Name]
		out = append(out, m.stats.snapshot(info))
	}
	return out
}

// Uptime reports how long the server has been accepting traffic.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// CheckReload re-checksums every model file now, arming replica swaps
// for any that changed. It returns the first validation failure (a
// missing file, an unloadable model, or a dimension change, which would
// break the replicas' bound arrays); failed models keep serving their
// current weights.
func (s *Server) CheckReload() error {
	var first error
	for _, info := range s.Models() {
		if err := s.models[info.Name].checkReload(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReloadModel re-checksums one model's files now, arming replica swaps
// when they changed — the publish hook the continuous-learning
// controller calls after installing a gated candidate, so the new
// generation goes live at the next batch boundary instead of waiting
// for the poll.
func (s *Server) ReloadModel(name string) error {
	m := s.models[name]
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m.checkReload()
}

// SnapshotCaptureDB takes a set-atomic read snapshot of the named
// capture database — the learner's retrain input. The snapshot is
// taken under the database's writer mutex with a flush first, so it
// always lands on a record-set boundary: never half a training sample.
func (s *Server) SnapshotCaptureDB(db string) (*h5.File, error) {
	if s.ingest == nil {
		return nil, fmt.Errorf("%w: capture ingest not enabled", ErrUnknownDB)
	}
	return s.ingest.snapshotDB(db)
}

// pollReload is the background hot-reload loop.
func (s *Server) pollReload() {
	defer close(s.pollDone)
	t := time.NewTicker(s.cfg.ReloadInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.CheckReload() // per-model errors are counted in stats
		case <-s.stopPoll:
			return
		}
	}
}

// Close stops accepting requests, lets the workers drain everything
// already queued, and waits for them to exit. In-flight and queued
// requests complete normally; only later Infer calls see
// ErrServerClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, m := range s.models {
		close(m.queue)
	}
	s.mu.Unlock()
	close(s.stopPoll)
	s.wg.Wait()
	<-s.pollDone
	for _, m := range s.models {
		for _, rep := range m.replicas {
			rep.region.Close()
		}
	}
	if s.ingest != nil {
		return s.ingest.close()
	}
	return nil
}
