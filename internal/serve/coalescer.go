package serve

import (
	"time"
)

// request is one queued invocation: the caller's input features, the
// output slot the worker fills, and the completion channel the caller
// blocks on. in is read and out written only between enqueue and the
// done send, so no locking is needed on either; queued and forward are
// written by the worker before the done send and read by the caller
// after the receive (the channel provides the happens-before), so the
// HTTP span can report the request's stage breakdown.
type request struct {
	in      []float64
	out     []float64
	enq     time.Time
	queued  time.Duration // enqueue -> batch cut
	forward time.Duration // the batch's ExecuteBatch duration
	done    chan error
}

// worker is one replica's serving loop: block for a batch's first
// request, then keep filling until MaxBatch requests have accumulated or
// MaxDelay has passed since that first arrival — whichever trips first
// cuts the batch. Workers exit once the queue is closed and drained, so
// Close never drops queued work.
func (s *Server) worker(m *model, rep *replica) {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*request, 0, s.cfg.MaxBatch)
	for {
		first, ok := <-m.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		timer.Reset(s.cfg.MaxDelay)
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case req, ok := <-m.queue:
				if !ok {
					break fill
				}
				batch = append(batch, req)
			case <-timer.C:
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		s.runBatch(m, rep, batch)
	}
}

// runBatch serves one coalesced batch on the worker's replica Region:
// stage(i) copies request i's inputs into the replica's bound input
// array just before its row block is gathered; finish(i) copies the
// replica's bound output array back out after invocation i's outputs are
// scattered. A pending hot reload is applied first — the batch boundary
// is the only point where the single-threaded replica can safely swap
// models. RefreshModel (not InvalidateModel) re-resolves from the
// shared cache, where checkReload published the validated network, so
// the swap never re-reads disk.
func (s *Server) runBatch(m *model, rep *replica, batch []*request) {
	if gen := m.gen.Load(); gen != rep.gen {
		rep.region.RefreshModel()
		rep.gen = gen
	}
	if s.cfg.batchHook != nil {
		s.cfg.batchHook(m.name, len(batch))
	}
	cut := time.Now()
	err := rep.region.ExecuteBatch(len(batch),
		func(i int) error { copy(rep.in, batch[i].in); return nil },
		func(i int) error { copy(batch[i].out, rep.out); return nil },
	)
	end := time.Now()
	forward := end.Sub(cut)
	for _, req := range batch {
		req.queued = cut.Sub(req.enq)
		req.forward = forward
	}
	m.stats.observe(rep.idx, rep.region.Stats(), batch, cut, end, err)
	for _, req := range batch {
		req.done <- err
	}
}
