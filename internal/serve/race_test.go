package serve

import (
	"sync"
	"testing"
	"time"

	hpacml "repro"
)

// TestCoalescerRaceManySubmitters is the satellite -race exercise: many
// concurrent submitters against a multi-replica pool, with hot-reload
// checks and stats snapshots racing the traffic. Model "a"'s outputs are
// verified bit-for-bit against direct execution; model "b" absorbs
// concurrent reloads (its outputs change mid-run by design, so only
// error-freedom is asserted there).
func TestCoalescerRaceManySubmitters(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	pathA := saveMLP(t, dir, "a.gmod", 21, 4, 16, 2)
	pathB := saveMLP(t, dir, "b.gmod", 22, 3, 8, 1)

	s, err := NewServer(Config{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, Workers: 3},
		ModelSpec{Name: "a", Path: pathA},
		ModelSpec{Name: "b", Path: pathB})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const submitters = 8
	const perSubmitter = 40
	wantA := make([][]float64, submitters*perSubmitter)
	for k := range wantA {
		wantA[k] = directForward(t, pathA, inputVec(k, 4))
	}

	var wg sync.WaitGroup
	errc := make(chan error, submitters*2+2)

	// Verified traffic on model a.
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				k := g*perSubmitter + j
				out, err := s.Infer("a", inputVec(k, 4))
				if err != nil {
					errc <- err
					return
				}
				for i := range out {
					if out[i] != wantA[k][i] {
						t.Errorf("request %d: got %v want %v", k, out, wantA[k])
						return
					}
				}
			}
		}(g)
	}
	// Unverified traffic on model b, racing its reloads.
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				if _, err := s.Infer("b", inputVec(g*perSubmitter+j, 3)); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	// Reload churn: rewrite b with fresh weights and poll, concurrently
	// with the traffic above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 5; round++ {
			if err := mlp(int64(100+round), 3, 8, 1).Save(pathB); err != nil {
				errc <- err
				return
			}
			if err := s.CheckReload(); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Stats readers racing everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Snapshot()
			s.Models()
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	snaps := s.Snapshot()
	var completed uint64
	coalesced := false
	for _, snap := range snaps {
		completed += snap.Completed
		for size, c := range snap.BatchHist {
			if size != "1" && c > 0 {
				coalesced = true
			}
		}
	}
	if completed != 2*submitters*perSubmitter {
		t.Fatalf("completed %d, want %d", completed, 2*submitters*perSubmitter)
	}
	if !coalesced {
		t.Fatalf("no batch larger than 1 formed under %d concurrent submitters: %+v", 2*submitters, snaps)
	}
}
