package serve

import (
	"sort"
	"strconv"
	"sync"
	"time"

	hpacml "repro"
)

// latWindow is the number of most-recent request latencies kept per
// model for quantile estimation.
const latWindow = 4096

// modelStats is the serving-side accounting for one model. All mutation
// happens under mu: workers record a batch at a time, Infer records
// rejections, and snapshot reads everything.
type modelStats struct {
	mu    sync.Mutex
	start time.Time

	completed uint64
	errors    uint64
	rejected  uint64
	batches   uint64

	// hist[n] counts batches that served exactly n invocations
	// (1 <= n <= MaxBatch) — the coalescing evidence.
	hist []uint64

	// lat is a ring of the last latWindow request latencies in seconds.
	lat   []float64
	latAt int

	// replicaRegion holds each replica's latest Region.Stats() copy, so
	// the aggregate bridges/inference phase split stays readable while
	// the replicas keep running.
	replicaRegion []hpacml.Stats

	reloads      uint64
	reloadErrors uint64
}

func newModelStats(maxBatch, workers int) *modelStats {
	return &modelStats{
		start:         time.Now(),
		hist:          make([]uint64, maxBatch+1),
		lat:           make([]float64, 0, latWindow),
		replicaRegion: make([]hpacml.Stats, workers),
	}
}

// observe records one served batch: its size, outcome, each request's
// queue-to-completion latency, and the owning replica's region counters.
func (st *modelStats) observe(replicaIdx int, region hpacml.Stats, batch []*request, now time.Time, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.batches++
	n := len(batch)
	if n >= len(st.hist) {
		n = len(st.hist) - 1
	}
	st.hist[n]++
	if replicaIdx < len(st.replicaRegion) {
		st.replicaRegion[replicaIdx] = region
	}
	if err != nil {
		st.errors += uint64(len(batch))
		return
	}
	st.completed += uint64(len(batch))
	for _, req := range batch {
		sec := now.Sub(req.enq).Seconds()
		if len(st.lat) < cap(st.lat) {
			st.lat = append(st.lat, sec)
		} else {
			st.lat[st.latAt] = sec
			st.latAt = (st.latAt + 1) % cap(st.lat)
		}
	}
}

func (st *modelStats) reject() {
	st.mu.Lock()
	st.rejected++
	st.mu.Unlock()
}

func (st *modelStats) reloaded() {
	st.mu.Lock()
	st.reloads++
	st.mu.Unlock()
}

func (st *modelStats) reloadFailed() {
	st.mu.Lock()
	st.reloadErrors++
	st.mu.Unlock()
}

// ModelSnapshot is one model's serving stats (the /v1/stats payload):
// traffic totals, throughput, the batch-size histogram, latency
// quantiles, and the summed Region phase counters of the replica pool.
type ModelSnapshot struct {
	ModelInfo

	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`
	Batches   uint64 `json:"batches"`

	// ThroughputRPS is completed requests per second of serving uptime.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanBatch is completed+errored invocations per batch — above 1
	// exactly when the coalescer is doing its job.
	MeanBatch float64 `json:"mean_batch"`
	// BatchHist maps batch size (as a string, for JSON) to how many
	// batches were cut at that size. Zero entries are omitted.
	BatchHist map[string]uint64 `json:"batch_hist,omitempty"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	Reloads      uint64 `json:"reloads"`
	ReloadErrors uint64 `json:"reload_errors"`

	// Region is the replica pool's summed runtime accounting — the
	// to-tensor / inference / from-tensor phase split of the traffic
	// served so far.
	Region hpacml.Stats `json:"region"`
}

// snapshot renders the stats under the model's registry info.
func (st *modelStats) snapshot(info ModelInfo) ModelSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := ModelSnapshot{
		ModelInfo:    info,
		Completed:    st.completed,
		Errors:       st.errors,
		Rejected:     st.rejected,
		Batches:      st.batches,
		Reloads:      st.reloads,
		ReloadErrors: st.reloadErrors,
		BatchHist:    make(map[string]uint64),
	}
	if up := time.Since(st.start).Seconds(); up > 0 {
		snap.ThroughputRPS = float64(st.completed) / up
	}
	if st.batches > 0 {
		snap.MeanBatch = float64(st.completed+st.errors) / float64(st.batches)
	}
	for n, c := range st.hist {
		if c > 0 {
			snap.BatchHist[strconv.Itoa(n)] = c
		}
	}
	snap.LatencyP50Ms = quantileMs(st.lat, 0.50)
	snap.LatencyP95Ms = quantileMs(st.lat, 0.95)
	snap.LatencyP99Ms = quantileMs(st.lat, 0.99)
	for _, rs := range st.replicaRegion {
		snap.Region.Invocations += rs.Invocations
		snap.Region.Inferences += rs.Inferences
		snap.Region.Collections += rs.Collections
		snap.Region.AccurateRuns += rs.AccurateRuns
		snap.Region.Batches += rs.Batches
		snap.Region.BatchedInvocations += rs.BatchedInvocations
		snap.Region.ToTensor += rs.ToTensor
		snap.Region.Inference += rs.Inference
		snap.Region.FromTensor += rs.FromTensor
		snap.Region.Accurate += rs.Accurate
		snap.Region.DBWrite += rs.DBWrite
		snap.Region.BatchInference += rs.BatchInference
	}
	return snap
}

// quantileMs returns the p-quantile of the latency window in
// milliseconds (nearest-rank on a sorted copy; 0 when empty).
func quantileMs(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx] * 1e3
}
