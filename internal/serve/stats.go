package serve

import (
	"sort"
	"strconv"
	"sync"
	"time"

	hpacml "repro"

	"repro/internal/serveapi"
)

// latWindow is the number of most-recent request latencies kept per
// model for quantile estimation.
const latWindow = 4096

// modelStats is the serving-side accounting for one model. All mutation
// happens under mu: workers record a batch at a time, Infer records
// rejections, and snapshot reads everything.
type modelStats struct {
	mu    sync.Mutex
	start time.Time

	completed uint64
	errors    uint64
	rejected  uint64
	batches   uint64

	// hist[n] counts batches that served exactly n invocations
	// (1 <= n <= MaxBatch) — the coalescing evidence.
	hist []uint64

	// lat is a ring of the last latWindow request latencies in seconds.
	lat   []float64
	latAt int

	// replicaRegion holds each replica's latest Region.Stats() copy, so
	// the aggregate bridges/inference phase split stays readable while
	// the replicas keep running.
	replicaRegion []hpacml.Stats

	reloads      uint64
	reloadErrors uint64
}

func newModelStats(maxBatch, workers int) *modelStats {
	return &modelStats{
		start:         time.Now(),
		hist:          make([]uint64, maxBatch+1),
		lat:           make([]float64, 0, latWindow),
		replicaRegion: make([]hpacml.Stats, workers),
	}
}

// observe records one served batch: its size, outcome, each request's
// queue-to-completion latency, and the owning replica's region counters.
func (st *modelStats) observe(replicaIdx int, region hpacml.Stats, batch []*request, now time.Time, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.batches++
	n := len(batch)
	if n >= len(st.hist) {
		n = len(st.hist) - 1
	}
	st.hist[n]++
	if replicaIdx < len(st.replicaRegion) {
		st.replicaRegion[replicaIdx] = region
	}
	if err != nil {
		st.errors += uint64(len(batch))
		return
	}
	st.completed += uint64(len(batch))
	for _, req := range batch {
		sec := now.Sub(req.enq).Seconds()
		if len(st.lat) < cap(st.lat) {
			st.lat = append(st.lat, sec)
		} else {
			st.lat[st.latAt] = sec
			st.latAt = (st.latAt + 1) % cap(st.lat)
		}
	}
}

func (st *modelStats) reject() {
	st.mu.Lock()
	st.rejected++
	st.mu.Unlock()
}

func (st *modelStats) reloaded() {
	st.mu.Lock()
	st.reloads++
	st.mu.Unlock()
}

func (st *modelStats) reloadFailed() {
	st.mu.Lock()
	st.reloadErrors++
	st.mu.Unlock()
}

// ModelSnapshot is one model's serving stats (the /v1/stats payload):
// traffic totals, throughput, the batch-size histogram, latency
// quantiles, and the summed Region phase counters of the replica pool.
// The shape is defined in the shared wire schema.
type ModelSnapshot = serveapi.ModelSnapshot

// wireRegionStats converts the runtime's Region accounting to its wire
// form. The wire struct mirrors hpacml.Stats field-for-field, so this
// is a plain copy that the compiler checks stays exhaustive.
func wireRegionStats(s hpacml.Stats) serveapi.RegionStats {
	return serveapi.RegionStats{
		Invocations:        s.Invocations,
		Inferences:         s.Inferences,
		Collections:        s.Collections,
		AccurateRuns:       s.AccurateRuns,
		Batches:            s.Batches,
		BatchedInvocations: s.BatchedInvocations,
		Fallbacks:          s.Fallbacks,
		RemoteInference:    s.RemoteInference,
		TrustedRows:        s.TrustedRows,
		UncertainRows:      s.UncertainRows,
		OutOfDomainRows:    s.OutOfDomainRows,
		CaptureDrops:       s.CaptureDrops,
		CaptureFlushes:     s.CaptureFlushes,
		RemoteCaptures:     s.RemoteCaptures,
		ToTensor:           s.ToTensor,
		Inference:          s.Inference,
		FromTensor:         s.FromTensor,
		Accurate:           s.Accurate,
		DBWrite:            s.DBWrite,
		BatchInference:     s.BatchInference,
	}
}

// snapshot renders the stats under the model's registry info.
func (st *modelStats) snapshot(info ModelInfo) ModelSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := ModelSnapshot{
		ModelInfo:    info,
		Completed:    st.completed,
		Errors:       st.errors,
		Rejected:     st.rejected,
		Batches:      st.batches,
		Reloads:      st.reloads,
		ReloadErrors: st.reloadErrors,
		BatchHist:    make(map[string]uint64),
	}
	if up := time.Since(st.start).Seconds(); up > 0 {
		snap.ThroughputRPS = float64(st.completed) / up
	}
	if st.batches > 0 {
		snap.MeanBatch = float64(st.completed+st.errors) / float64(st.batches)
	}
	for n, c := range st.hist {
		if c > 0 {
			snap.BatchHist[strconv.Itoa(n)] = c
		}
	}
	snap.LatencyP50Ms = quantileMs(st.lat, 0.50)
	snap.LatencyP95Ms = quantileMs(st.lat, 0.95)
	snap.LatencyP99Ms = quantileMs(st.lat, 0.99)
	var sum hpacml.Stats
	for _, rs := range st.replicaRegion {
		sum.Invocations += rs.Invocations
		sum.Inferences += rs.Inferences
		sum.Collections += rs.Collections
		sum.AccurateRuns += rs.AccurateRuns
		sum.Batches += rs.Batches
		sum.BatchedInvocations += rs.BatchedInvocations
		sum.Fallbacks += rs.Fallbacks
		sum.RemoteInference += rs.RemoteInference
		sum.TrustedRows += rs.TrustedRows
		sum.UncertainRows += rs.UncertainRows
		sum.OutOfDomainRows += rs.OutOfDomainRows
		sum.CaptureDrops += rs.CaptureDrops
		sum.CaptureFlushes += rs.CaptureFlushes
		sum.RemoteCaptures += rs.RemoteCaptures
		sum.ToTensor += rs.ToTensor
		sum.Inference += rs.Inference
		sum.FromTensor += rs.FromTensor
		sum.Accurate += rs.Accurate
		sum.DBWrite += rs.DBWrite
		sum.BatchInference += rs.BatchInference
	}
	snap.Region = wireRegionStats(sum)
	return snap
}

// quantileMs returns the p-quantile of the latency window in
// milliseconds (nearest-rank on a sorted copy; 0 when empty).
func quantileMs(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx] * 1e3
}
