package serve

import (
	"sort"
	"strconv"
	"sync"
	"time"

	hpacml "repro"

	"repro/internal/serveapi"
)

// latWindow is the number of most-recent request latencies kept per
// model for quantile estimation.
const latWindow = 4096

// modelStats is the serving-side accounting for one model. The traffic
// totals (completed/errors/rejected/batches, reload counts) live in
// the model's telemetry counters (modelMetrics) — atomics shared with
// the /metrics exposition, so the JSON snapshot and a Prometheus
// scrape read the same source of truth. Under mu live only the things
// a lock genuinely serializes: the exact batch-size array, the latency
// ring, and the replicas' latest Region.Stats copies.
type modelStats struct {
	tm modelMetrics

	mu    sync.Mutex
	start time.Time

	// hist[n] counts batches that served exactly n invocations
	// (1 <= n <= MaxBatch) — the exact per-size map /v1/stats reports
	// (the telemetry histogram buckets the same sizes for scrapers).
	hist []uint64

	// lat is a ring of the last latWindow request latencies in seconds.
	lat   []float64
	latAt int

	// replicaRegion holds each replica's latest Region.Stats() copy, so
	// the aggregate bridges/inference phase split stays readable while
	// the replicas keep running.
	replicaRegion []hpacml.Stats
}

func newModelStats(maxBatch, workers int, tm modelMetrics) *modelStats {
	return &modelStats{
		tm:            tm,
		start:         time.Now(),
		hist:          make([]uint64, maxBatch+1),
		lat:           make([]float64, 0, latWindow),
		replicaRegion: make([]hpacml.Stats, workers),
	}
}

// observe records one served batch: its size, outcome, the forward
// (ExecuteBatch) duration, each request's queue wait and
// queue-to-completion latency, and the owning replica's region
// counters. cut is when the batch was cut (forward started), end when
// the forward call returned.
func (st *modelStats) observe(replicaIdx int, region hpacml.Stats, batch []*request, cut, end time.Time, err error) {
	n := len(batch)
	st.tm.batches.Inc()
	st.tm.batchSize.Observe(float64(n))
	st.tm.forward.Observe(end.Sub(cut).Seconds())
	if err != nil {
		st.tm.errors.Add(uint64(n))
	} else {
		st.tm.ok.Add(uint64(n))
		for _, req := range batch {
			st.tm.queueWait.Observe(cut.Sub(req.enq).Seconds())
			st.tm.latency.Observe(end.Sub(req.enq).Seconds())
		}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	h := n
	if h >= len(st.hist) {
		h = len(st.hist) - 1
	}
	st.hist[h]++
	if replicaIdx < len(st.replicaRegion) {
		st.replicaRegion[replicaIdx] = region
	}
	if err != nil {
		return
	}
	for _, req := range batch {
		sec := end.Sub(req.enq).Seconds()
		if len(st.lat) < cap(st.lat) {
			st.lat = append(st.lat, sec)
		} else {
			st.lat[st.latAt] = sec
			st.latAt = (st.latAt + 1) % cap(st.lat)
		}
	}
}

func (st *modelStats) reject()       { st.tm.rejected.Inc() }
func (st *modelStats) reloaded()     { st.tm.reloadOK.Inc() }
func (st *modelStats) reloadFailed() { st.tm.reloadErr.Inc() }

// regionSum returns the replica pool's summed Region accounting — the
// source the JSON snapshot and the /metrics region bridge both read.
func (st *modelStats) regionSum() hpacml.Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	var sum hpacml.Stats
	for _, rs := range st.replicaRegion {
		sum.Accumulate(rs)
	}
	return sum
}

// ModelSnapshot is one model's serving stats (the /v1/stats payload):
// traffic totals, throughput, the batch-size histogram, latency
// quantiles, and the summed Region phase counters of the replica pool.
// The shape is defined in the shared wire schema.
type ModelSnapshot = serveapi.ModelSnapshot

// wireRegionStats converts the runtime's Region accounting to its wire
// form. The wire struct mirrors hpacml.Stats field-for-field, so this
// is a plain copy that the compiler checks stays exhaustive.
func wireRegionStats(s hpacml.Stats) serveapi.RegionStats {
	return serveapi.RegionStats{
		Invocations:        s.Invocations,
		Inferences:         s.Inferences,
		Collections:        s.Collections,
		AccurateRuns:       s.AccurateRuns,
		Batches:            s.Batches,
		BatchedInvocations: s.BatchedInvocations,
		Fallbacks:          s.Fallbacks,
		RemoteInference:    s.RemoteInference,
		TrustedRows:        s.TrustedRows,
		UncertainRows:      s.UncertainRows,
		OutOfDomainRows:    s.OutOfDomainRows,
		CaptureDrops:       s.CaptureDrops,
		CaptureFlushes:     s.CaptureFlushes,
		RemoteCaptures:     s.RemoteCaptures,
		ToTensor:           s.ToTensor,
		Inference:          s.Inference,
		FromTensor:         s.FromTensor,
		Accurate:           s.Accurate,
		DBWrite:            s.DBWrite,
		BatchInference:     s.BatchInference,
	}
}

// snapshot renders the stats under the model's registry info. The
// mutex guards only the copies: the latency ring is snapshotted under
// lock and sorted outside it, so a monitoring scrape sorting 4096
// floats can never stall the workers' observe calls — the serving hot
// path — behind it.
func (st *modelStats) snapshot(info ModelInfo) ModelSnapshot {
	completed := st.tm.ok.Value()
	errors := st.tm.errors.Value()
	snap := ModelSnapshot{
		ModelInfo:    info,
		Completed:    completed,
		Errors:       errors,
		Rejected:     st.tm.rejected.Value(),
		Batches:      st.tm.batches.Value(),
		Reloads:      st.tm.reloadOK.Value(),
		ReloadErrors: st.tm.reloadErr.Value(),
		BatchHist:    make(map[string]uint64),
	}

	st.mu.Lock()
	start := st.start
	for n, c := range st.hist {
		if c > 0 {
			snap.BatchHist[strconv.Itoa(n)] = c
		}
	}
	latCopy := append(make([]float64, 0, len(st.lat)), st.lat...)
	var sum hpacml.Stats
	for _, rs := range st.replicaRegion {
		sum.Accumulate(rs)
	}
	st.mu.Unlock()

	if up := time.Since(start).Seconds(); up > 0 {
		snap.ThroughputRPS = float64(completed) / up
	}
	if snap.Batches > 0 {
		snap.MeanBatch = float64(completed+errors) / float64(snap.Batches)
	}
	sort.Float64s(latCopy)
	snap.LatencyP50Ms = quantileSortedMs(latCopy, 0.50)
	snap.LatencyP95Ms = quantileSortedMs(latCopy, 0.95)
	snap.LatencyP99Ms = quantileSortedMs(latCopy, 0.99)
	snap.Region = wireRegionStats(sum)
	return snap
}

// quantileSortedMs returns the p-quantile of already-sorted latency
// samples in milliseconds (nearest-rank; 0 when empty). Callers sort
// once — outside any lock — and read several quantiles from it.
func quantileSortedMs(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx] * 1e3
}
