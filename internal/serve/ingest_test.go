package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/h5"
	"repro/internal/serveapi"
)

func captureRec(region string, v float64) serveapi.CaptureRecord {
	return serveapi.CaptureRecord{
		Region:      region,
		InputShape:  []int{1, 2},
		Inputs:      []float64{v, v + 1},
		OutputShape: []int{1, 1},
		Outputs:     []float64{-v},
		RuntimeNS:   v * 100,
	}
}

// TestCaptureIngest drives the capture-only server shape end to end:
// batches land in the sharded registry-owned database, shards rotate,
// stats account for every record, and the database trains-readable
// records survive server Close.
func TestCaptureIngest(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "ingest.gh5")
	s, err := NewServer(Config{CaptureDBs: []CaptureSpec{{Name: "d", Path: dbPath, ShardRecords: 3}}})
	if err != nil {
		t.Fatal(err)
	}

	batch := []serveapi.CaptureRecord{captureRec("r", 0), captureRec("r", 1)}
	if n, err := s.Capture("d", batch); err != nil || n != 2 {
		t.Fatalf("capture: n=%d err=%v", n, err)
	}
	for i := 2; i < 7; i++ {
		if _, err := s.Capture("d", []serveapi.CaptureRecord{captureRec("r", float64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	// Unknown DB and malformed records are caller errors, and a bad
	// record must not leave half a batch behind.
	if _, err := s.Capture("nope", batch); !errors.Is(err, ErrUnknownDB) {
		t.Fatalf("unknown db: %v", err)
	}
	bad := captureRec("r", 9)
	bad.InputShape = []int{3, 3} // 9 elements, 2 provided
	if _, err := s.Capture("d", []serveapi.CaptureRecord{captureRec("r", 8), bad}); !errors.Is(err, ErrBadCapture) {
		t.Fatalf("bad record: %v", err)
	}
	noRegion := captureRec("", 10)
	if _, err := s.Capture("d", []serveapi.CaptureRecord{noRegion}); !errors.Is(err, ErrBadCapture) {
		t.Fatalf("empty region: %v", err)
	}

	snaps := s.CaptureSnapshot()
	// 6 successful POSTs carried 7 records; the 2 validation-rejected
	// batches count as errors, never as batches.
	if len(snaps) != 1 || snaps[0].Records != 7 || snaps[0].Batches != 6 || snaps[0].Errors != 2 {
		t.Fatalf("snapshot: %+v", snaps)
	}
	if snaps[0].Shards < 2 {
		t.Fatalf("expected shard rotation at 3 records/shard, got %d", snaps[0].Shards)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Capture("d", batch); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("capture after close: %v", err)
	}

	f, err := h5.OpenShards(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.NumRecords("r", "inputs"); n != 7 {
		t.Fatalf("database records = %d, want 7 (rejected batches fully absent)", n)
	}
	x, err := f.Read("r", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if x.Data()[i*2] != float64(i) {
			t.Fatalf("record %d out of order: %g", i, x.Data()[i*2])
		}
	}
}

// TestCaptureHTTP exercises the /v1/capture endpoint and its error
// mapping, plus the capture section of /v1/stats.
func TestCaptureHTTP(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "ingest.gh5")
	s, err := NewServer(Config{CaptureDBs: []CaptureSpec{{Name: "d", Path: dbPath}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := NewHandler(s)

	post := func(body any) *httptest.ResponseRecorder {
		b, _ := json.Marshal(body)
		req := httptest.NewRequest("POST", "/v1/capture", bytes.NewReader(b))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	if w := post(serveapi.CaptureRequest{DB: "d", Records: []serveapi.CaptureRecord{captureRec("r", 1)}}); w.Code != 200 {
		t.Fatalf("capture POST: %d %s", w.Code, w.Body)
	}
	var resp serveapi.CaptureResponse
	w := post(serveapi.CaptureRequest{DB: "d", Records: []serveapi.CaptureRecord{captureRec("r", 2), captureRec("r", 3)}})
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Accepted != 2 {
		t.Fatalf("capture response: %s (err %v)", w.Body, err)
	}
	if w := post(serveapi.CaptureRequest{DB: "missing", Records: []serveapi.CaptureRecord{captureRec("r", 1)}}); w.Code != 404 {
		t.Fatalf("unknown db: %d", w.Code)
	}
	if w := post(serveapi.CaptureRequest{DB: "d"}); w.Code != 400 {
		t.Fatalf("empty records: %d", w.Code)
	}
	bad := captureRec("r", 4)
	bad.Inputs = nil
	if w := post(serveapi.CaptureRequest{DB: "d", Records: []serveapi.CaptureRecord{bad}}); w.Code != 400 {
		t.Fatalf("bad record: %d", w.Code)
	}
	if w := httptest.NewRecorder(); true {
		h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/capture", nil))
		if w.Code != 405 {
			t.Fatalf("GET /v1/capture: %d", w.Code)
		}
	}

	// The stats payload carries the ingest section.
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, httptest.NewRequest("GET", "/v1/stats", nil))
	var sr serveapi.StatsResponse
	if err := json.Unmarshal(w2.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Captures) != 1 || sr.Captures[0].Records != 3 || sr.Captures[0].Name != "d" {
		t.Fatalf("stats captures: %+v", sr.Captures)
	}
}

// TestCaptureDisabled pins the no-ingest shape: servers without
// capture DBs refuse /v1/capture cleanly and hide the stats section.
func TestCaptureDisabled(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("no models and no capture DBs must stay an error")
	}
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 3, 4, 2)
	s, err := NewServer(Config{}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Capture("d", []serveapi.CaptureRecord{captureRec("r", 1)}); !errors.Is(err, ErrUnknownDB) {
		t.Fatalf("capture on ingest-less server: %v", err)
	}
	if snaps := s.CaptureSnapshot(); snaps != nil {
		t.Fatalf("unexpected capture snapshot: %+v", snaps)
	}
}
