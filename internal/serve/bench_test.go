package serve

import (
	"runtime"
	"sync"
	"testing"
	"time"

	hpacml "repro"
)

// benchWidths is a mid-sized MLP surrogate: big enough that the model
// call dominates staging, the regime where coalescing pays.
var benchWidths = []int{16, 128, 128, 8}

// clients is the concurrent-caller count both benchmark arms serve.
const clients = 64

// BenchmarkCoalescedVsSerial is the acceptance benchmark: N concurrent
// single-invocation clients served through the micro-batching coalescer
// versus the same clients serialized through one Region.Execute behind a
// mutex (the only correct alternative, since a Region is not safe for
// concurrent use). ns/op is per completed request; the coalesced number
// must be at least 2x better under concurrent load.
func BenchmarkCoalescedVsSerial(b *testing.B) {
	dir := b.TempDir()
	net := mlp(3, benchWidths...)
	path := dir + "/bench.gmod"
	if err := net.Save(path); err != nil {
		b.Fatal(err)
	}
	in, out := benchWidths[0], benchWidths[len(benchWidths)-1]
	inputs := make([][]float64, 64)
	for k := range inputs {
		inputs[k] = inputVec(k, in)
	}

	b.Run("serial-mutex", func(b *testing.B) {
		hpacml.ClearModelCache()
		rep, err := newReplica("serial", []string{path}, 0, in, out, false, false)
		if err != nil {
			b.Fatal(err)
		}
		defer rep.region.Close()
		var mu sync.Mutex
		var k int
		b.SetParallelism(clients / runtime.GOMAXPROCS(0))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			buf := make([]float64, out)
			for pb.Next() {
				mu.Lock()
				k++
				copy(rep.in, inputs[k%len(inputs)])
				if err := rep.region.Execute(nil); err != nil {
					mu.Unlock()
					b.Error(err)
					return
				}
				copy(buf, rep.out)
				mu.Unlock()
			}
		})
	})

	b.Run("coalesced", func(b *testing.B) {
		hpacml.ClearModelCache()
		workers := runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
		s, err := NewServer(Config{
			MaxBatch: 64,
			MaxDelay: 100 * time.Microsecond,
			QueueCap: 1024,
			Workers:  workers,
		}, ModelSpec{Name: "m", Path: path})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		var k int64
		var mu sync.Mutex
		next := func() []float64 {
			mu.Lock()
			k++
			v := inputs[k%int64(len(inputs))]
			mu.Unlock()
			return v
		}
		b.SetParallelism(clients / runtime.GOMAXPROCS(0))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := s.Infer("m", next()); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		snap := s.Snapshot()[0]
		if snap.Batches > 0 {
			b.ReportMetric(snap.MeanBatch, "mean-batch")
		}
	})
}
