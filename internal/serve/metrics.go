package serve

import (
	hpacml "repro"

	"repro/internal/telemetry"
)

// Metric names and label conventions (documented in
// docs/ARCHITECTURE.md, asserted by the CI metrics smoke):
//
//   - every name is hpacml_-prefixed, seconds are the base unit for
//     every duration, and totals end in _total;
//   - model-level series carry a model label (the registry name), the
//     capture side a db label;
//   - outcome-style labels are closed enums: outcome=ok|error|rejected,
//     result=ok|error, verdict=trusted|uncertain|out_of_domain,
//     stage=decode|encode, wire=json|binary, dtype=f64|f32|i8.
//
// The hot path records through child handles resolved once per model
// at registration (see modelStats / captureDB), so serving traffic
// never pays a label lookup; values that already accumulate elsewhere
// (queue depths, the replica pool's hpacml.Stats) bridge in through
// func-backed families that read only when a scrape happens.

// metrics is the server's telemetry surface: one registry plus the
// family handles the serving layers record into.
type metrics struct {
	reg *telemetry.Registry

	// HTTP layer.
	httpRequests *telemetry.CounterVec   // path, code
	httpStage    *telemetry.HistogramVec // stage (decode | encode)
	wireRequests *telemetry.CounterVec   // endpoint, wire, dtype
	slowRequests *telemetry.Counter

	// Coalescer / per-model serving, resolved per model into
	// modelMetrics at registration.
	inferRequests *telemetry.CounterVec   // model, outcome
	inferBatches  *telemetry.CounterVec   // model
	batchSize     *telemetry.HistogramVec // model
	queueWait     *telemetry.HistogramVec // model
	forward       *telemetry.HistogramVec // model
	latency       *telemetry.HistogramVec // model
	reloads       *telemetry.CounterVec   // model, result

	// Capture ingest, resolved per db into captureDB.
	captureRecords *telemetry.CounterVec // db
	captureBatches *telemetry.CounterVec // db, outcome
}

// batchSizeBuckets covers micro-batch sizes: exact small steps where
// coalescing evidence lives, powers of two beyond.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// newMetrics registers every serving family on reg (a fresh registry
// unless the Config injected a shared one).
func newMetrics(reg *telemetry.Registry) *metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	lat := telemetry.DefaultLatencyBuckets
	m := &metrics{
		reg: reg,

		httpRequests: reg.CounterVec("hpacml_http_requests_total",
			"HTTP requests served, by route and status code.", "path", "code"),
		httpStage: reg.HistogramVec("hpacml_http_stage_seconds",
			"Time spent in the HTTP request-body decode and response encode stages.", lat, "stage"),
		wireRequests: reg.CounterVec("hpacml_wire_requests_total",
			"Hot-path requests by endpoint, wire protocol, and payload dtype.", "endpoint", "wire", "dtype"),
		slowRequests: reg.Counter("hpacml_slow_requests_total",
			"Requests that exceeded the slow-request log threshold."),

		inferRequests: reg.CounterVec("hpacml_infer_requests_total",
			"Inference requests by model and outcome (ok, error, or rejected by queue backpressure).", "model", "outcome"),
		inferBatches: reg.CounterVec("hpacml_infer_batches_total",
			"Coalesced batches executed per model.", "model"),
		batchSize: reg.HistogramVec("hpacml_infer_batch_size",
			"Invocations per coalesced batch — mass above 1 is the coalescer doing its job.", batchSizeBuckets, "model"),
		queueWait: reg.HistogramVec("hpacml_infer_queue_seconds",
			"Per-request wait from enqueue to batch cut.", lat, "model"),
		forward: reg.HistogramVec("hpacml_infer_forward_seconds",
			"Per-batch Region.ExecuteBatch duration.", lat, "model"),
		latency: reg.HistogramVec("hpacml_infer_latency_seconds",
			"Per-request latency from enqueue to completion.", lat, "model"),
		reloads: reg.CounterVec("hpacml_model_reloads_total",
			"Hot-reload attempts by model and result.", "model", "result"),

		captureRecords: reg.CounterVec("hpacml_capture_records_total",
			"Capture records durably ingested per database.", "db"),
		captureBatches: reg.CounterVec("hpacml_capture_batches_total",
			"Capture ingest batches by database and outcome.", "db", "outcome"),
	}
	reg.RegisterBuildInfo("hpacml_build_info")
	return m
}

// modelMetrics is one model's pre-resolved telemetry handles — the
// single source of truth for the model's traffic totals. The JSON
// /v1/stats snapshot reads these same counters, so /metrics and
// /v1/stats can never disagree on a total.
type modelMetrics struct {
	ok        *telemetry.Counter
	errors    *telemetry.Counter
	rejected  *telemetry.Counter
	batches   *telemetry.Counter
	batchSize *telemetry.Histogram
	queueWait *telemetry.Histogram
	forward   *telemetry.Histogram
	latency   *telemetry.Histogram
	reloadOK  *telemetry.Counter
	reloadErr *telemetry.Counter
}

func (m *metrics) forModel(model string) modelMetrics {
	return modelMetrics{
		ok:        m.inferRequests.With(model, "ok"),
		errors:    m.inferRequests.With(model, "error"),
		rejected:  m.inferRequests.With(model, "rejected"),
		batches:   m.inferBatches.With(model),
		batchSize: m.batchSize.With(model),
		queueWait: m.queueWait.With(model),
		forward:   m.forward.With(model),
		latency:   m.latency.With(model),
		reloadOK:  m.reloads.With(model, "ok"),
		reloadErr: m.reloads.With(model, "error"),
	}
}

// registerServerFuncs installs the scrape-time families that read
// state the server already maintains: queue depths, uptime, and the
// replica pools' region counters (the hpacml.Stats bridge). They run
// only when /metrics is scraped.
func (s *Server) registerServerFuncs() {
	reg := s.met.reg
	reg.GaugeFunc("hpacml_uptime_seconds",
		"Seconds since the server started accepting traffic.", nil,
		func(emit telemetry.Emit) { emit(s.Uptime().Seconds()) })
	reg.GaugeFunc("hpacml_queue_depth",
		"Requests currently waiting in each model's bounded queue.", []string{"model"},
		func(emit telemetry.Emit) {
			for name, m := range s.models {
				emit(float64(len(m.queue)), name)
			}
		})
	reg.GaugeFunc("hpacml_queue_capacity",
		"Capacity of each model's bounded queue (submissions beyond it are rejected).", []string{"model"},
		func(emit telemetry.Emit) {
			for name, m := range s.models {
				emit(float64(cap(m.queue)), name)
			}
		})

	// The region bridge: the replica pools already accumulate
	// hpacml.Stats (trust verdicts, fallbacks, capture pipeline
	// counters); re-counting them on the hot path would be double
	// bookkeeping, so the scrape sums the replicas' latest snapshots.
	regionSum := func(each func(model string, sum hpacml.Stats)) {
		for name, m := range s.models {
			each(name, m.stats.regionSum())
		}
	}
	reg.CounterFunc("hpacml_region_rows_total",
		"Model-layout input rows by trust verdict, summed over the replica pool.", []string{"model", "verdict"},
		func(emit telemetry.Emit) {
			regionSum(func(model string, sum hpacml.Stats) {
				emit(float64(sum.TrustedRows), model, "trusted")
				emit(float64(sum.UncertainRows), model, "uncertain")
				emit(float64(sum.OutOfDomainRows), model, "out_of_domain")
			})
		})
	reg.CounterFunc("hpacml_region_inferences_total",
		"Surrogate inferences executed by the replica pool.", []string{"model"},
		func(emit telemetry.Emit) {
			regionSum(func(model string, sum hpacml.Stats) { emit(float64(sum.Inferences), model) })
		})
	reg.CounterFunc("hpacml_region_fallbacks_total",
		"Invocations that fell back to the accurate path.", []string{"model"},
		func(emit telemetry.Emit) {
			regionSum(func(model string, sum hpacml.Stats) { emit(float64(sum.Fallbacks), model) })
		})
	reg.CounterFunc("hpacml_region_capture_total",
		"Capture-pipeline events of the replica pool (drops, flushes, remote acks).", []string{"model", "event"},
		func(emit telemetry.Emit) {
			regionSum(func(model string, sum hpacml.Stats) {
				emit(float64(sum.CaptureDrops), model, "drop")
				emit(float64(sum.CaptureFlushes), model, "flush")
				emit(float64(sum.RemoteCaptures), model, "remote")
			})
		})
}
