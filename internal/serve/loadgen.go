package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/results"
)

// LoadGenConfig drives RunLoadGen against a running server's HTTP API.
type LoadGenConfig struct {
	// Target is the server base URL, e.g. http://127.0.0.1:8080.
	Target string
	// Model names the registry entry to load; empty picks the server's
	// first model.
	Model string
	// RPS is the target request rate across all clients; 0 runs
	// closed-loop (every client fires as fast as its requests complete).
	RPS float64
	// Duration is how long to generate load. Default 5s.
	Duration time.Duration
	// Concurrency is the client goroutine count. Default 16.
	Concurrency int
	// Seed makes the random input vectors reproducible.
	Seed int64
}

// RunLoadGen fires Concurrency HTTP clients at the target's /v1/infer
// for the configured duration, then folds the client-side traffic
// accounting together with the server's own coalescing stats into the
// shared results schema (the BENCH_serve.json artifact).
func RunLoadGen(cfg LoadGenConfig) (*results.Record, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	inDim, model, err := targetModel(cfg.Target, cfg.Model)
	if err != nil {
		return nil, err
	}

	var sent, completed, rejected, errs atomic.Uint64
	lats := make([][]float64, cfg.Concurrency)

	// done closes at the deadline so rate-limited clients parked on the
	// token channel exit immediately instead of waiting out one token
	// each (at low RPS that would overshoot the duration by up to
	// Concurrency/RPS seconds).
	done := make(chan struct{})
	timer := time.AfterFunc(cfg.Duration, func() { close(done) })
	defer timer.Stop()

	// Pacing: at a target RPS one shared ticker feeds a token channel;
	// closed-loop mode leaves tick nil and clients free-run.
	var tick chan struct{}
	if cfg.RPS > 0 {
		tick = make(chan struct{}, cfg.Concurrency)
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					select {
					case tick <- struct{}{}:
					default: // clients saturated; shed the token
					}
				case <-done:
					return
				}
			}
		}()
	}

	client := &http.Client{Timeout: 10 * time.Second}
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			in := make([]float64, inDim)
			for time.Now().Before(deadline) {
				if tick != nil {
					select {
					case <-tick:
					case <-done:
						return
					}
					if !time.Now().Before(deadline) {
						return
					}
				}
				for i := range in {
					in[i] = rng.Float64()
				}
				sent.Add(1)
				start := time.Now()
				code, err := postInfer(client, cfg.Target, model, in)
				switch {
				case err != nil:
					errs.Add(1)
				case code == http.StatusOK:
					completed.Add(1)
					lats[c] = append(lats[c], time.Since(start).Seconds())
				case code == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(c)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)

	all := []float64{}
	for _, l := range lats {
		all = append(all, l...)
	}

	serving := &results.Serving{
		TargetRPS:    cfg.RPS,
		Concurrency:  cfg.Concurrency,
		DurationSec:  elapsed.Seconds(),
		Sent:         sent.Load(),
		Completed:    completed.Load(),
		Rejected:     rejected.Load(),
		Errors:       errs.Load(),
		LatencyP50Ms: quantileMs(all, 0.50),
		LatencyP95Ms: quantileMs(all, 0.95),
		LatencyP99Ms: quantileMs(all, 0.99),
	}
	if elapsed > 0 {
		serving.AchievedRPS = float64(completed.Load()) / elapsed.Seconds()
	}
	// Fold in the server's coalescing evidence.
	if snap, err := fetchStats(client, cfg.Target, model); err == nil {
		serving.MeanBatch = snap.MeanBatch
		serving.BatchHist = snap.BatchHist
	}
	return &results.Record{
		Tool:    "hpacml-serve-loadgen",
		Model:   model,
		Serving: serving,
	}, nil
}

// targetModel resolves the model to load against and its input width
// from the server's registry listing.
func targetModel(target, want string) (inDim int, name string, err error) {
	resp, err := http.Get(target + "/v1/models")
	if err != nil {
		return 0, "", fmt.Errorf("serve: loadgen: %w", err)
	}
	defer resp.Body.Close()
	var infos []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return 0, "", fmt.Errorf("serve: loadgen: bad /v1/models payload: %w", err)
	}
	if len(infos) == 0 {
		return 0, "", fmt.Errorf("serve: loadgen: target hosts no models")
	}
	if want == "" {
		return infos[0].InDim, infos[0].Name, nil
	}
	for _, info := range infos {
		if info.Name == want {
			return info.InDim, info.Name, nil
		}
	}
	return 0, "", fmt.Errorf("serve: loadgen: target does not host model %q", want)
}

// postInfer sends one /v1/infer request, returning the HTTP status.
func postInfer(client *http.Client, target, model string, in []float64) (int, error) {
	body, err := json.Marshal(InferRequest{Model: model, Input: in})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(target+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// fetchStats pulls the named model's snapshot from /v1/stats.
func fetchStats(client *http.Client, target, model string) (*ModelSnapshot, error) {
	resp, err := client.Get(target + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	for i := range sr.Models {
		if sr.Models[i].Name == model {
			return &sr.Models[i], nil
		}
	}
	return nil, fmt.Errorf("serve: loadgen: no stats for model %q", model)
}
