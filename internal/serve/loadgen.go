package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/results"
	"repro/internal/serveapi"
	"repro/internal/serveclient"
)

// LoadGenConfig drives RunLoadGen against a running server's HTTP API.
type LoadGenConfig struct {
	// Target is the server base URL, e.g. http://127.0.0.1:8080.
	Target string
	// Model names the registry entry to load; empty picks the server's
	// first model.
	Model string
	// RPS is the target request rate across all clients; 0 runs
	// closed-loop (every client fires as fast as its requests complete).
	RPS float64
	// Duration is how long to generate load. Default 5s.
	Duration time.Duration
	// Concurrency is the client goroutine count. Default 16.
	Concurrency int
	// Seed makes the random input vectors reproducible.
	Seed int64
	// Wire selects the client protocol: "json" (default), "binary"
	// (length-prefixed frames with raw float payloads), or "both" — a
	// JSON baseline run followed by a binary run, published as one
	// record with the baseline attached, so a single artifact carries
	// the before/after comparison.
	Wire string
	// Dtype selects the binary wire's element encoding: "f64"
	// (default), "f32", or "int8"/"i8". It shapes only the frame
	// payload bytes; inputs are generated as integer-valued floats when
	// int8 is selected so the round-clamp transport encoding is exact.
	// Ignored under the JSON wire.
	Dtype string
	// CaptureDB, when set, ships every completed inference back to the
	// server as a capture record (POST /v1/capture against this
	// database name) — the closed-loop drive: served traffic becomes
	// training data, which the server's learner retrains on. Records
	// use the model name as their region group and the served output as
	// the label.
	CaptureDB string
}

// RunLoadGen fires Concurrency clients at the target's /v1/infer
// through the typed serve client (internal/serveclient) for the
// configured duration, then folds the client-side traffic accounting
// together with the server's own coalescing stats into the shared
// results schema (the BENCH_serve.json artifact). Wire picks the
// protocol; "both" runs the JSON baseline first and attaches it to the
// binary run's record.
func RunLoadGen(cfg LoadGenConfig) (*results.Record, error) {
	switch cfg.Wire {
	case "", "json":
		return runLoadGen(cfg, serveclient.WireJSON)
	case "binary":
		return runLoadGen(cfg, serveclient.WireBinary)
	case "both":
		base, err := runLoadGen(cfg, serveclient.WireJSON)
		if err != nil {
			return nil, err
		}
		rec, err := runLoadGen(cfg, serveclient.WireBinary)
		if err != nil {
			return nil, err
		}
		rec.Serving.Baseline = base.Serving
		return rec, nil
	default:
		return nil, fmt.Errorf("serve: loadgen: unknown wire %q (want json, binary, or both)", cfg.Wire)
	}
}

func runLoadGen(cfg LoadGenConfig, wire serveclient.Wire) (*results.Record, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	var dtype serveapi.Dtype
	switch cfg.Dtype {
	case "", "f64":
		dtype = serveapi.DtypeF64
	case "f32":
		dtype = serveapi.DtypeF32
	case "int8", "i8":
		dtype = serveapi.DtypeI8
	default:
		return nil, fmt.Errorf("serve: loadgen: unknown dtype %q (want f64, f32, or int8)", cfg.Dtype)
	}
	client := serveclient.New(cfg.Target, serveclient.WithTimeout(10*time.Second),
		serveclient.WithWire(wire), serveclient.WithFrameDtype(dtype))
	defer client.CloseIdleConnections()
	info, err := client.Model(context.Background(), cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("serve: loadgen: %w", err)
	}
	inDim, model := info.InDim, info.Name

	var sent, completed, rejected, errs, captured atomic.Uint64
	lats := make([][]float64, cfg.Concurrency)

	// done closes at the deadline so rate-limited clients parked on the
	// token channel exit immediately instead of waiting out one token
	// each (at low RPS that would overshoot the duration by up to
	// Concurrency/RPS seconds).
	done := make(chan struct{})
	timer := time.AfterFunc(cfg.Duration, func() { close(done) })
	defer timer.Stop()

	// Pacing: at a target RPS one shared ticker feeds a token channel;
	// closed-loop mode leaves tick nil and clients free-run.
	var tick chan struct{}
	if cfg.RPS > 0 {
		tick = make(chan struct{}, cfg.Concurrency)
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					select {
					case tick <- struct{}{}:
					default: // clients saturated; shed the token
					}
				case <-done:
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			in := make([]float64, inDim)
			var out []float64 // binary-wire response scratch, reused across requests
			// Capture batching: completed inferences accumulate per
			// client and ship as /v1/capture POSTs — the closed-loop
			// feed. Row-shaped records ([1, k]) so the server's .gh5
			// concatenation yields a [n, k] training matrix.
			var capBatch []serveapi.CaptureRecord
			flushCapture := func() {
				if len(capBatch) == 0 {
					return
				}
				if n, err := client.Capture(context.Background(), cfg.CaptureDB, capBatch); err == nil {
					captured.Add(uint64(n))
				}
				capBatch = capBatch[:0]
			}
			defer flushCapture()
			for time.Now().Before(deadline) {
				if tick != nil {
					select {
					case <-tick:
					case <-done:
						return
					}
					if !time.Now().Before(deadline) {
						return
					}
				}
				for i := range in {
					if dtype == serveapi.DtypeI8 {
						// Integer-valued features so the i8 wire's
						// round-clamp encoding is exact transport.
						in[i] = float64(rng.Intn(17) - 8)
					} else {
						in[i] = rng.Float64()
					}
				}
				sent.Add(1)
				start := time.Now()
				var err error
				if wire == serveclient.WireBinary {
					out, _, err = client.InferMatrix(context.Background(), model, 1, inDim, in, out)
				} else {
					out, err = client.Infer(context.Background(), model, in)
				}
				elapsed := time.Since(start)
				switch {
				case err == nil:
					completed.Add(1)
					lats[c] = append(lats[c], elapsed.Seconds())
					if cfg.CaptureDB != "" && len(out) > 0 {
						// Copy both vectors: in and (on the binary wire)
						// out are reused across iterations.
						capBatch = append(capBatch, serveapi.CaptureRecord{
							Region:      model,
							InputShape:  []int{1, inDim},
							Inputs:      append([]float64(nil), in...),
							OutputShape: []int{1, len(out)},
							Outputs:     append([]float64(nil), out...),
							RuntimeNS:   float64(elapsed.Nanoseconds()),
						})
						if len(capBatch) >= 16 {
							flushCapture()
						}
					}
				case serveclient.Rejected(err):
					rejected.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(c)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)

	all := []float64{}
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all) // one sort feeds all three quantiles

	serving := &results.Serving{
		TargetRPS:    cfg.RPS,
		Concurrency:  cfg.Concurrency,
		DurationSec:  elapsed.Seconds(),
		Sent:         sent.Load(),
		Completed:    completed.Load(),
		Rejected:     rejected.Load(),
		Errors:       errs.Load(),
		LatencyP50Ms: quantileSortedMs(all, 0.50),
		LatencyP95Ms: quantileSortedMs(all, 0.95),
		LatencyP99Ms: quantileSortedMs(all, 0.99),
		Wire:         wire.String(),

		CapturedRecords: captured.Load(),
	}
	if wire == serveclient.WireBinary {
		serving.Dtype = dtype.String()
	}
	if elapsed > 0 {
		serving.AchievedRPS = float64(completed.Load()) / elapsed.Seconds()
		// One inference record per request here, so throughput in
		// records/sec is the achieved request rate.
		serving.RecordsPerSec = serving.AchievedRPS
	}
	// Fold in the server's coalescing evidence.
	if snap, err := client.ModelStats(context.Background(), model); err == nil {
		serving.MeanBatch = snap.MeanBatch
		serving.BatchHist = snap.BatchHist
	}
	return &results.Record{
		Tool:    "hpacml-serve-loadgen",
		Model:   model,
		Serving: serving,
	}, nil
}
