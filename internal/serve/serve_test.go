package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	hpacml "repro"

	"repro/internal/nn"
	"repro/internal/serveapi"
	"repro/internal/tensor"
)

// saveMLP writes a deterministic dense network to dir and returns its
// path. Random weights are fine: serving tests check plumbing, not
// surrogate quality.
func saveMLP(t *testing.T, dir, name string, seed int64, widths ...int) string {
	t.Helper()
	net := mlp(seed, widths...)
	path := filepath.Join(dir, name)
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func mlp(seed int64, widths ...int) *nn.Network {
	net := nn.NewNetwork(seed)
	for i := 0; i < len(widths)-1; i++ {
		net.Add(net.NewDense(widths[i], widths[i+1]))
		if i < len(widths)-2 {
			net.Add(nn.NewActivation(nn.ActTanh))
		}
	}
	return net
}

// directForward computes the reference output for one input vector by
// loading the model fresh and running it as a [1, in] batch — what the
// server must reproduce bit for bit.
func directForward(t *testing.T, path string, in []float64) []float64 {
	t.Helper()
	net, err := nn.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	x, err := tensor.FromSlice(append([]float64(nil), in...), 1, len(in))
	if err != nil {
		t.Fatal(err)
	}
	y, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	return append([]float64(nil), y.Contiguous().Data()...)
}

func inputVec(seed, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64((seed*31+i*7)%23)/23 - 0.5
	}
	return v
}

// TestInferMatchesDirect: a coalesced server answer is bit-identical to
// running the model directly, across several distinct inputs and both
// replicas.
func TestInferMatchesDirect(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 3, 5, 16, 2)
	s, err := NewServer(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 2},
		ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for k := 0; k < 20; k++ {
		in := inputVec(k, 5)
		got, err := s.Infer("m", in)
		if err != nil {
			t.Fatal(err)
		}
		want := directForward(t, path, in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("input %d: served %v, direct %v", k, got, want)
			}
		}
	}

	if _, err := s.Infer("nope", []float64{1}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
	if _, err := s.Infer("m", []float64{1, 2}); err == nil {
		t.Fatal("want input-width error")
	}
}

// TestDimInference: registry resolves I/O widths from the .gmod itself
// and refuses explicit widths that contradict the file.
func TestDimInference(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 9, 7, 8, 3)

	s, err := NewServer(Config{}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	info := s.Models()[0]
	s.Close()
	if info.InDim != 7 || info.OutDim != 3 {
		t.Fatalf("inferred dims %d->%d, want 7->3", info.InDim, info.OutDim)
	}
	if info.Checksum == "" || info.Replicas != 2 {
		t.Fatalf("bad info: %+v", info)
	}

	if _, err := NewServer(Config{}, ModelSpec{Name: "m", Path: path, In: 7, Out: 4}); err == nil {
		t.Fatal("want dim-mismatch error")
	}
	if _, err := NewServer(Config{}, ModelSpec{Name: "m", Path: filepath.Join(dir, "missing.gmod")}); err == nil {
		t.Fatal("want missing-file error")
	}
}

// TestCoalescerFormsBatches pins the tentpole behavior: requests
// submitted by independent goroutines are served in batches larger than
// one. A hook stalls the single worker on its first batch so the rest of
// the traffic is provably queued before the next cut.
func TestCoalescerFormsBatches(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 4, 3, 8, 1)

	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	gate := release
	cfg := Config{
		MaxBatch: 16,
		// Generous: the fill loop drains whatever is queued, and only the
		// first batch (cut while the queue was still empty) pays the wait.
		MaxDelay: 50 * time.Millisecond,
		Workers:  1,
		batchHook: func(string, int) {
			entered <- struct{}{}
			<-gate
		},
	}
	s, err := NewServer(cfg, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const later = 16
	results := make(chan error, later+1)
	go func() { _, err := s.Infer("m", inputVec(0, 3)); results <- err }()
	<-entered // worker is stalled inside its first (size-1) batch

	m := s.models["m"]
	for k := 1; k <= later; k++ {
		go func(k int) { _, err := s.Infer("m", inputVec(k, 3)); results <- err }(k)
	}
	waitFor(t, func() bool { return len(m.queue) == later })
	close(release)

	for i := 0; i < later+1; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()[0]
	if snap.Completed != later+1 {
		t.Fatalf("completed %d, want %d", snap.Completed, later+1)
	}
	// First batch was 1; the 16 queued requests must have coalesced into
	// a single full batch.
	if snap.BatchHist["1"] != 1 || snap.BatchHist["16"] != 1 || snap.Batches != 2 {
		t.Fatalf("histogram %v (batches %d): queued requests did not coalesce", snap.BatchHist, snap.Batches)
	}
	if snap.MeanBatch <= 1 {
		t.Fatalf("mean batch %v, want > 1", snap.MeanBatch)
	}
	if snap.Region.BatchedInvocations != later+1 {
		t.Fatalf("region counters did not aggregate: %+v", snap.Region)
	}
}

// TestBackpressure pins the bounded-queue contract: with the worker
// stalled and the queue full, Infer fails fast with ErrQueueFull instead
// of buffering, and the rejection is counted.
func TestBackpressure(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 4, 3, 8, 1)

	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	cfg := Config{
		MaxBatch: 4,
		MaxDelay: time.Nanosecond,
		QueueCap: 2,
		Workers:  1,
		batchHook: func(string, int) {
			entered <- struct{}{}
			<-release
		},
	}
	s, err := NewServer(cfg, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	results := make(chan error, 3)
	go func() { _, err := s.Infer("m", inputVec(0, 3)); results <- err }()
	<-entered

	m := s.models["m"]
	for k := 1; k <= 2; k++ {
		go func(k int) { _, err := s.Infer("m", inputVec(k, 3)); results <- err }(k)
	}
	waitFor(t, func() bool { return len(m.queue) == 2 })

	if _, err := s.Infer("m", inputVec(9, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	close(release)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if snap := s.Snapshot()[0]; snap.Rejected != 1 || snap.Completed != 3 {
		t.Fatalf("rejected %d completed %d, want 1 and 3", snap.Rejected, snap.Completed)
	}
}

// TestHotReload: a retrained file swaps in via checksum detection
// without restarting; a reload that would change the model's I/O widths
// is refused and the old weights keep serving.
func TestHotReload(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 11, 4, 8, 2)
	in := inputVec(5, 4)

	s, err := NewServer(Config{Workers: 2}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	out1, err := s.Infer("m", in)
	if err != nil {
		t.Fatal(err)
	}

	// Retrain: same shape, different weights.
	if err := mlp(12, 4, 8, 2).Save(path); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckReload(); err != nil {
		t.Fatal(err)
	}
	want := directForward(t, path, in)
	// Both replicas must swap; hit the pool several times.
	for k := 0; k < 8; k++ {
		out2, err := s.Infer("m", in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if out2[i] != want[i] {
				t.Fatalf("call %d: got %v, want reloaded %v (old %v)", k, out2, want, out1)
			}
		}
	}
	snap := s.Snapshot()[0]
	if snap.Generation != 1 || snap.Reloads != 1 {
		t.Fatalf("generation %d reloads %d, want 1/1", snap.Generation, snap.Reloads)
	}

	// A width-changing "retrain" must be refused.
	if err := mlp(13, 5, 8, 2).Save(path); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckReload(); err == nil {
		t.Fatal("want reload-refused error")
	}
	out3, err := s.Infer("m", in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out3[i] != want[i] {
			t.Fatal("refused reload still changed the served model")
		}
	}
	if snap := s.Snapshot()[0]; snap.ReloadErrors == 0 || snap.Generation != 1 {
		t.Fatalf("reload errors %d generation %d, want >0 and 1", snap.ReloadErrors, snap.Generation)
	}
}

// TestCloseDrains: requests queued before Close complete; requests after
// Close fail with ErrServerClosed.
func TestCloseDrains(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 4, 3, 8, 1)
	s, err := NewServer(Config{Workers: 1}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	results := make(chan error, n)
	for k := 0; k < n; k++ {
		go func(k int) { _, err := s.Infer("m", inputVec(k, 3)); results <- err }(k)
	}
	// Close concurrently with the burst: everything accepted must drain.
	time.Sleep(2 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := <-results; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Fatal(err)
		}
	}
	if _, err := s.Infer("m", inputVec(0, 3)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("want ErrServerClosed, got %v", err)
	}
	if s.Close() != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// TestHTTPAPI drives the four endpoints through a real HTTP stack.
func TestHTTPAPI(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 6, 3, 8, 2)
	s, err := NewServer(Config{}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Single invocation.
	in := inputVec(1, 3)
	body, _ := json.Marshal(InferRequest{Model: "m", Input: in})
	resp, payload := post(string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d %s", resp.StatusCode, payload)
	}
	var ir InferResponse
	if err := json.Unmarshal(payload, &ir); err != nil {
		t.Fatal(err)
	}
	want := directForward(t, path, in)
	for i := range want {
		if ir.Output[i] != want[i] {
			t.Fatalf("HTTP output %v, want %v", ir.Output, want)
		}
	}

	// Fan-out list form: submitted concurrently, so it coalesces.
	body, _ = json.Marshal(InferRequest{Model: "m", Inputs: [][]float64{inputVec(2, 3), inputVec(3, 3)}})
	resp, payload = post(string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch infer: %d %s", resp.StatusCode, payload)
	}
	ir = InferResponse{}
	if err := json.Unmarshal(payload, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Outputs) != 2 || len(ir.Outputs[0]) != 2 {
		t.Fatalf("batch outputs: %v", ir.Outputs)
	}

	// Error mapping.
	if resp, _ := post(`{"model":"ghost","input":[1,2,3]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"model":"m","input":[1]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad width: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"model":"m"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no input: %d", resp.StatusCode)
	}
	if resp, _ := post(`{broken`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}

	for _, ep := range []string{"/v1/models", "/v1/stats", "/healthz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", ep, resp.StatusCode)
		}
	}
	var sr StatsResponse
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Models) != 1 || sr.Models[0].Completed < 3 {
		t.Fatalf("stats payload: %+v", sr)
	}

	// Provenance: /v1/models reports where the served weights came from
	// (path), what they hash to (the member-set checksum: sha256 of the
	// concatenated per-file sha256s), and when they were loaded.
	respM, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer respM.Body.Close()
	var infos []serveapi.ModelInfo
	if err := json.NewDecoder(respM.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("models payload: %+v", infos)
	}
	info := infos[0]
	if info.Path != path {
		t.Fatalf("model path %q, want %q", info.Path, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	leaf := sha256.Sum256(raw)
	agg := sha256.New()
	agg.Write(leaf[:])
	if want := hex.EncodeToString(agg.Sum(nil)); info.Checksum != want {
		t.Fatalf("model checksum %q, want %q", info.Checksum, want)
	}
	if info.LoadedAt.IsZero() || time.Since(info.LoadedAt) > time.Hour {
		t.Fatalf("model loaded_at %v is not a fresh load time", info.LoadedAt)
	}
}

// TestLoadGen runs the load generator against an in-process server and
// checks the shared results schema comes back populated.
func TestLoadGen(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 6, 3, 8, 2)
	s, err := NewServer(Config{MaxBatch: 8, MaxDelay: 500 * time.Microsecond}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	rec, err := RunLoadGen(LoadGenConfig{
		Target:      ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 8,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tool != "hpacml-serve-loadgen" || rec.Model != "m" || rec.Serving == nil {
		t.Fatalf("record: %+v", rec)
	}
	sv := rec.Serving
	if sv.Completed == 0 || sv.AchievedRPS <= 0 || sv.Sent < sv.Completed {
		t.Fatalf("serving summary: %+v", sv)
	}
	if sv.MeanBatch < 1 || len(sv.BatchHist) == 0 {
		t.Fatalf("no coalescing evidence in summary: %+v", sv)
	}
	if sv.LatencyP95Ms < sv.LatencyP50Ms {
		t.Fatalf("quantiles out of order: %+v", sv)
	}

	// Rate-paced mode: clients parked on the token channel must be
	// released at the deadline, not one token at a time (at 20 RPS with
	// 8 clients, token-by-token draining alone would take ~400ms extra).
	start := time.Now()
	rec, err = RunLoadGen(LoadGenConfig{
		Target:      ts.URL,
		RPS:         20,
		Duration:    300 * time.Millisecond,
		Concurrency: 8,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 1500*time.Millisecond {
		t.Fatalf("paced loadgen overshot its duration: ran %v for a 300ms run", took)
	}
	if rec.Serving.Completed == 0 || rec.Serving.TargetRPS != 20 {
		t.Fatalf("paced summary: %+v", rec.Serving)
	}
}

// TestLoadGenWireBoth: wire "both" publishes the binary run with the
// JSON baseline attached, each with records/sec — the shape the CI
// gate jq-asserts on the BENCH_serve artifact.
func TestLoadGenWireBoth(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 6, 3, 8, 2)
	s, err := NewServer(Config{MaxBatch: 8, MaxDelay: 500 * time.Microsecond}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	rec, err := RunLoadGen(LoadGenConfig{
		Target:      ts.URL,
		Duration:    200 * time.Millisecond,
		Concurrency: 4,
		Seed:        3,
		Wire:        "both",
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := rec.Serving
	if sv.Wire != "binary" || sv.Completed == 0 || sv.RecordsPerSec <= 0 {
		t.Fatalf("binary run: %+v", sv)
	}
	if sv.Baseline == nil || sv.Baseline.Wire != "json" || sv.Baseline.RecordsPerSec <= 0 {
		t.Fatalf("json baseline: %+v", sv.Baseline)
	}
	if sv.Baseline.Baseline != nil {
		t.Fatal("baseline must not nest")
	}
	if _, err := RunLoadGen(LoadGenConfig{Target: ts.URL, Wire: "telepathy"}); err == nil {
		t.Fatal("unknown wire must fail")
	}
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestSnapshotJSON makes sure the stats payload round-trips through
// encoding/json (the ModelSnapshot embeds hpacml.Stats).
func TestSnapshotJSON(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 6, 3, 8, 2)
	s, err := NewServer(Config{}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Infer("m", inputVec(0, 3)); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"batch_hist"`)) || !bytes.Contains(b, []byte(`"throughput_rps"`)) {
		t.Fatalf("snapshot JSON missing fields: %s", b)
	}
}
