package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	hpacml "repro"

	"repro/internal/serveapi"
	"repro/internal/serveclient"
)

// TestFrameInferEndToEnd drives the binary wire against the real
// handler and coalescer: a WireBinary client's answers must be
// bit-identical to running the model directly (f64 frames are
// lossless), capture frames must land in the ingest registry, and the
// error statuses must match the JSON wire's.
func TestFrameInferEndToEnd(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 11, 5, 16, 2)
	dbPath := filepath.Join(dir, "cap.gh5")
	s, err := NewServer(Config{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 2,
		CaptureDBs: []CaptureSpec{{Name: "d", Path: dbPath}}},
		ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	c := serveclient.New(ts.URL, serveclient.WithWire(serveclient.WireBinary))
	ctx := context.Background()

	rows, cols := 8, 5
	in := make([]float64, rows*cols)
	for i := range in {
		in[i] = float64((i*13)%17)/17 - 0.5
	}
	out, outCols, err := c.InferMatrix(ctx, "m", rows, cols, in, nil)
	if err != nil || outCols != 2 {
		t.Fatalf("InferMatrix: %d cols, %v", outCols, err)
	}
	for i := 0; i < rows; i++ {
		want := directForward(t, path, in[i*cols:(i+1)*cols])
		for j := range want {
			if out[i*outCols+j] != want[j] {
				t.Fatalf("row %d: served %v, direct %v", i, out[i*outCols:(i+1)*outCols], want)
			}
		}
	}

	// Binary capture lands in the registry like JSON capture does.
	if n, err := c.Capture(ctx, "d", []serveapi.CaptureRecord{captureRec("r", 1), captureRec("r", 2)}); err != nil || n != 2 {
		t.Fatalf("Capture = %d, %v", n, err)
	}
	if snaps := s.CaptureSnapshot(); len(snaps) != 1 || snaps[0].Records != 2 {
		t.Fatalf("capture snapshot: %+v", snaps)
	}

	// Error mapping matches the JSON wire: unknown model 404, wrong
	// width 400, unknown db 404.
	var api *serveclient.APIError
	if _, _, err := c.InferMatrix(ctx, "ghost", 1, 5, in[:5], nil); !errors.As(err, &api) || api.Code != 404 {
		t.Fatalf("unknown model: %v", err)
	}
	if _, _, err := c.InferMatrix(ctx, "m", 1, 3, in[:3], nil); !errors.As(err, &api) || api.Code != 400 {
		t.Fatalf("wrong width: %v", err)
	}
	if _, err := c.Capture(ctx, "ghost", []serveapi.CaptureRecord{captureRec("r", 3)}); !errors.As(err, &api) || api.Code != 404 {
		t.Fatalf("unknown db: %v", err)
	}
}

// TestFrameNegotiation pins the raw protocol rules the client's
// fallback depends on: f32 frames are answered in f32, an unsupported
// frame version is 415, and garbage under the frame Content-Type is
// 400 — all with JSON error bodies.
func TestFrameNegotiation(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 11, 4, 8, 1)
	s, err := NewServer(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 1},
		ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	post := func(frame []byte) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/infer", serveapi.ContentTypeFrame, bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	in := []float64{0.25, -0.5, 0.125, 1}
	frame, err := serveapi.AppendInferRequest(nil, serveapi.DtypeF32, "m", 1, 4, in)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(frame)
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != serveapi.ContentTypeFrame {
		t.Fatalf("f32 frame: %d %s: %s", resp.StatusCode, resp.Header.Get("Content-Type"), body)
	}
	f, err := serveapi.DecodeInferResponse(body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dtype != serveapi.DtypeF32 || f.Rows != 1 {
		t.Fatalf("f32 request answered %s x [%d,%d]", f.Dtype, f.Rows, f.Cols)
	}
	// The inputs chosen are exactly representable in f32, so the only
	// rounding is the response's f64->f32 truncation.
	want := directForward(t, path, in)
	for j := range want {
		if got := f.Data[j]; got != float64(float32(want[j])) || math.Abs(got-want[j]) > 1e-6*math.Abs(want[j])+1e-9 {
			t.Fatalf("f32 output %d = %g, want ~%g", j, got, want[j])
		}
	}

	// Future frame version: 415, so clients downgrade to JSON.
	vNext := append([]byte(nil), frame...)
	vNext[4] = 99
	if resp, body := post(vNext); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("future version: %d %s", resp.StatusCode, body)
	}
	// Garbage under the frame Content-Type: 400.
	if resp, body := post([]byte("{\"model\":\"m\"}")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame: %d %s", resp.StatusCode, body)
	}
	// Truncated frame: 400.
	if resp, body := post(frame[:len(frame)-2]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated frame: %d %s", resp.StatusCode, body)
	}
	// Zero-row frame: 400, like a JSON request with neither input form.
	empty, _ := serveapi.AppendInferRequest(nil, serveapi.DtypeF64, "m", 0, 0, nil)
	if resp, body := post(empty); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-row frame: %d %s", resp.StatusCode, body)
	}
}

// zeroReader yields zero bytes forever; wrapped in io.LimitReader it
// stands in for an attacker streaming an arbitrarily long frame body.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestFrameRequestLimits pins the request-size armor on the frame
// endpoints: a forged Content-Length is refused before any allocation
// or read (413), a body that actually overruns serveapi.MaxFrameLen
// dies mid-read (413), a frame claiming more rows than the per-request
// fan-out cap is a 400, and a forged zero-cols geometry never reaches
// the row fan-out (400 from the decoder).
func TestFrameRequestLimits(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 11, 4, 8, 1)
	s, err := NewServer(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 1},
		ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := NewHandler(s)

	do := func(target string, body io.Reader, contentLength int64) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, target, body)
		req.Header.Set("Content-Type", serveapi.ContentTypeFrame)
		req.ContentLength = contentLength
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	// Forged Content-Length with no body: rejected up front.
	if rec := do("/v1/infer", http.NoBody, serveapi.MaxFrameLen+1); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("forged Content-Length: %d %s", rec.Code, rec.Body)
	}
	// Unknown length (chunked), body really too long: killed mid-read.
	long := io.LimitReader(zeroReader{}, serveapi.MaxFrameLen+1)
	if rec := do("/v1/capture", long, -1); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("overlong chunked body: %d %s", rec.Code, rec.Body)
	}
	// A well-formed frame with more rows than one request may fan out.
	rows := maxInferRows + 1
	frame, err := serveapi.AppendInferRequest(nil, serveapi.DtypeF32, "m", rows, 1, make([]float64, rows))
	if err != nil {
		t.Fatal(err)
	}
	rec := do("/v1/infer", bytes.NewReader(frame), int64(len(frame)))
	if rec.Code != http.StatusBadRequest || !bytes.Contains(rec.Body.Bytes(), []byte("limit")) {
		t.Fatalf("row-cap frame: %d %s", rec.Code, rec.Body)
	}
	// Forged geometry: cols=0 with rows=0xFFFFFFFF (hand-assembled, the
	// encoder refuses to build it). Must be a decoder 400, not an OOM.
	body := binary.LittleEndian.AppendUint16(nil, 1)
	body = append(body, 'm')
	body = binary.LittleEndian.AppendUint32(body, math.MaxUint32) // rows
	body = binary.LittleEndian.AppendUint32(body, 0)              // cols
	forged := binary.LittleEndian.AppendUint32(nil, serveapi.FrameMagic)
	forged = append(forged, serveapi.FrameVersion, serveapi.FrameInferRequest, byte(serveapi.DtypeF64), 0)
	forged = binary.LittleEndian.AppendUint32(forged, uint32(len(body)))
	forged = append(forged, body...)
	if rec := do("/v1/infer", bytes.NewReader(forged), int64(len(forged))); rec.Code != http.StatusBadRequest {
		t.Fatalf("forged zero-cols frame: %d %s", rec.Code, rec.Body)
	}
}

// TestForEachRowBoundedFanout: every row index runs exactly once, and
// concurrency never exceeds maxInferFanout no matter the batch size.
func TestForEachRowBoundedFanout(t *testing.T) {
	const rows = 5000
	hits := make([]atomic.Int32, rows)
	var cur, peak atomic.Int32
	forEachRow(rows, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		hits[i].Add(1)
		cur.Add(-1)
	})
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("row %d ran %d times", i, n)
		}
	}
	if p := peak.Load(); p > maxInferFanout {
		t.Fatalf("fan-out peaked at %d goroutines, cap %d", p, maxInferFanout)
	}
}

// TestServeF32Model: a registry entry with F32 set serves through the
// single-precision path — answers stay within f32 tolerance of the
// float64 model, on both wires.
func TestServeF32Model(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 7, 5, 16, 2)
	s, err := NewServer(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 1},
		ModelSpec{Name: "m", Path: path, F32: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	for _, wire := range []serveclient.Wire{serveclient.WireJSON, serveclient.WireBinary} {
		c := serveclient.New(ts.URL, serveclient.WithWire(wire))
		in := inputVec(3, 5)
		got, err := c.Infer(context.Background(), "m", in)
		if err != nil {
			t.Fatalf("%v: %v", wire, err)
		}
		want := directForward(t, path, in)
		if len(got) != len(want) {
			t.Fatalf("%v: %d outputs, want %d", wire, len(got), len(want))
		}
		for j := range want {
			if diff := math.Abs(got[j] - want[j]); diff > 1e-5*math.Abs(want[j])+1e-6 {
				t.Fatalf("%v output %d: f32-served %g vs f64 %g", wire, j, got[j], want[j])
			}
		}
	}
}
