package serve

import (
	"context"
	"sync"
	"time"
)

// span is one HTTP request's trace record: the request ID (honored
// from the X-Request-ID header or minted at entry), what the request
// addressed, and per-stage timings — decode (request body to typed
// request), queue (enqueue to batch cut), forward (ExecuteBatch), and
// encode (typed response to response body). The logging middleware
// renders it as one structured log line per request, which is what
// makes a client-reported request ID greppable into the exact server-
// side stage breakdown of that request.
type span struct {
	id    string
	start time.Time

	model string // infer requests
	db    string // capture requests
	wire  string // json | binary
	dtype string // f64 | f32
	rows  int

	decode time.Duration
	encode time.Duration

	// Queue and forward are filled per row as coalesced batches
	// complete; concurrent rows of one request keep the maximum (the
	// stage as the caller experienced it). Guarded by mu because a
	// multi-row request's rows finish on different workers.
	mu      sync.Mutex
	queue   time.Duration
	forward time.Duration
}

// addRow folds one served row's queue/forward durations into the span.
func (sp *span) addRow(queued, forward time.Duration) {
	sp.mu.Lock()
	if queued > sp.queue {
		sp.queue = queued
	}
	if forward > sp.forward {
		sp.forward = forward
	}
	sp.mu.Unlock()
}

// stageDurations returns the queue/forward pair race-free.
func (sp *span) stageDurations() (queue, forward time.Duration) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.queue, sp.forward
}

type spanKey struct{}

// withSpan attaches the request's span to its context.
func withSpan(ctx context.Context, sp *span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// spanFrom returns the request's span, nil outside the handler chain.
func spanFrom(ctx context.Context) *span {
	sp, _ := ctx.Value(spanKey{}).(*span)
	return sp
}

// requestIDFrom returns the request's trace ID, "" outside the
// handler chain — the hook writeErr uses to stamp error bodies.
func requestIDFrom(ctx context.Context) string {
	if sp := spanFrom(ctx); sp != nil {
		return sp.id
	}
	return ""
}
