package serve

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	hpacml "repro"

	"repro/internal/h5"
	"repro/internal/learner"
	"repro/internal/nn"
	"repro/internal/serveclient"
)

// TestClosedLoopHTTP is the end-to-end continuous-learning drive, all
// through the public surfaces: the load generator ships its served
// traffic back as capture records (-capture-db), the learner snapshots
// the ingest database, retrains a warm-started candidate, shadow-gates
// it, and publishes a new generation — visible in /v1/models lineage,
// /v1/stats learners, and the hpacml_model_generation gauge — and the
// rollback endpoint restores the parent.
func TestClosedLoopHTTP(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 6, 3, 8, 2)
	s, err := NewServer(Config{
		MaxBatch:   8,
		MaxDelay:   500 * time.Microsecond,
		CaptureDBs: []CaptureSpec{{Name: "caps", Path: filepath.Join(dir, "caps.gh5")}},
	}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctl, err := learner.New(learner.Config{
		Interval: -1, // no background loop: the test drives CheckNow
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
		Metrics:  s.Metrics(),
	}, learner.Policy{
		Model:        "m",
		Paths:        []string{path},
		RetrainEvery: 8,
		MinRecords:   8,
		Train:        nn.TrainConfig{Epochs: 2, BatchSize: 8},
		Snapshot:     func() (*h5.File, error) { return s.SnapshotCaptureDB("caps") },
		Reload:       func() error { return s.ReloadModel("m") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	ts := httptest.NewServer(NewHandler(s, WithLearner(ctl)))
	defer ts.Close()
	ctx := context.Background()

	// Drive traffic with the capture leg on: every completed inference
	// comes back as a training record.
	rec, err := RunLoadGen(LoadGenConfig{
		Target:      ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Seed:        7,
		CaptureDB:   "caps",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Serving.CapturedRecords < 8 {
		t.Fatalf("loadgen captured only %d records", rec.Serving.CapturedRecords)
	}

	// One sweep: captures record the live model's own outputs, so the
	// warm-started candidate stays at ~zero holdout error and publishes.
	ctl.CheckNow()

	client := serveclient.New(ts.URL)
	defer client.CloseIdleConnections()
	info, err := client.Model(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if info.LearnerGeneration != 1 {
		t.Fatalf("learner generation %d after retrain, want 1 (lineage %+v)", info.LearnerGeneration, info.Lineage)
	}
	if len(info.Lineage) != 2 || info.Lineage[1].Verdict != "published" {
		t.Fatalf("lineage %+v, want seed + published", info.Lineage)
	}
	// The registry's checksum and the lineage entry's agree: the learner
	// hashes the same bytes the registry reloaded.
	if info.Checksum != info.Lineage[1].Checksum {
		t.Fatalf("registry checksum %q != published lineage checksum %q", info.Checksum, info.Lineage[1].Checksum)
	}

	sr, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Learners) != 1 {
		t.Fatalf("stats learners: %+v", sr.Learners)
	}
	ln := sr.Learners[0]
	if ln.Model != "m" || ln.Generation != 1 || ln.Published != 1 || ln.Retrains != 1 {
		t.Fatalf("learner snapshot %+v", ln)
	}

	// The generation gauge rides the server's own /metrics registry.
	respM, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(respM.Body)
	respM.Body.Close()
	if !strings.Contains(string(body), "hpacml_model_generation") ||
		!strings.Contains(string(body), "hpacml_retrains_total") {
		t.Fatalf("/metrics is missing the learner families:\n%.2000s", body)
	}

	// Rollback over HTTP restores the parent generation.
	rb, err := client.Rollback(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if rb.RestoredGen != 0 || rb.Model != "m" {
		t.Fatalf("rollback response %+v", rb)
	}
	info, err = client.Model(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if info.LearnerGeneration != 0 {
		t.Fatalf("learner generation %d after rollback, want 0", info.LearnerGeneration)
	}
	// The restored weights serve again: inference still answers.
	if _, err := client.Infer(ctx, "m", inputVec(1, 3)); err != nil {
		t.Fatal(err)
	}

	// Error mapping: no parent at the seed -> 409, unknown model -> 404.
	var api *serveclient.APIError
	if _, err := client.Rollback(ctx, "m"); !errors.As(err, &api) || api.Code != http.StatusConflict {
		t.Fatalf("rollback at seed: %v, want 409", err)
	}
	if _, err := client.Rollback(ctx, "ghost"); !errors.As(err, &api) || api.Code != http.StatusNotFound {
		t.Fatalf("rollback of unknown model: %v, want 404", err)
	}
}

// TestRollbackWithoutLearner: a handler with no learner attached
// answers rollback with 404, not a panic or a 500.
func TestRollbackWithoutLearner(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 6, 3, 8, 2)
	s, err := NewServer(Config{}, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/models/m/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rollback without a learner: %d, want 404", resp.StatusCode)
	}
}
