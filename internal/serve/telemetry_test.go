package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	hpacml "repro"

	"repro/internal/serveapi"
	"repro/internal/serveclient"
	"repro/internal/telemetry"
)

// metricValue scans a Prometheus exposition for one exact series and
// returns its value. The series string must match up to the value
// separator, labels included.
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %q has unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition:\n%s", series, exposition)
	return 0
}

// TestMetricsEndToEnd drives live infer, capture, and rejected traffic
// through the real handler, then asserts the /metrics scrape reflects
// all of it — and that /v1/stats reports the very same totals, since
// both read the same counters.
func TestMetricsEndToEnd(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 21, 5, 16, 2)
	dbPath := filepath.Join(dir, "cap.gh5")
	s, err := NewServer(Config{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 2,
		CaptureDBs: []CaptureSpec{{Name: "d", Path: dbPath}}},
		ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	post := func(pathAndStatus string, body any, wantStatus int) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := ts.Client().Post(ts.URL+pathAndStatus, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %s = %d, want %d", pathAndStatus, resp.StatusCode, wantStatus)
		}
	}

	// Live traffic: 3 served inferences (1 single + 1 two-row batch),
	// one 404, one 400, and a 2-record capture batch.
	in := inputVec(1, 5)
	post("/v1/infer", InferRequest{Model: "m", Input: in}, http.StatusOK)
	post("/v1/infer", InferRequest{Model: "m", Inputs: [][]float64{inputVec(2, 5), inputVec(3, 5)}}, http.StatusOK)
	post("/v1/infer", InferRequest{Model: "ghost", Input: in}, http.StatusNotFound)
	post("/v1/infer", InferRequest{Model: "m", Input: in[:2]}, http.StatusBadRequest)
	post("/v1/capture", serveapi.CaptureRequest{DB: "d",
		Records: []serveapi.CaptureRecord{captureRec("r", 1), captureRec("r", 2)}}, http.StatusOK)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentTypePrometheus {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp := string(raw)

	if v := metricValue(t, exp, `hpacml_infer_requests_total{model="m",outcome="ok"}`); v != 3 {
		t.Fatalf("ok inferences = %v, want 3", v)
	}
	if v := metricValue(t, exp, `hpacml_infer_batches_total{model="m"}`); v < 1 {
		t.Fatalf("batches = %v, want >= 1", v)
	}
	if v := metricValue(t, exp, `hpacml_infer_queue_seconds_count{model="m"}`); v != 3 {
		t.Fatalf("queue-wait observations = %v, want 3", v)
	}
	if v := metricValue(t, exp, `hpacml_infer_latency_seconds_bucket{model="m",le="+Inf"}`); v != 3 {
		t.Fatalf("latency +Inf bucket = %v, want 3", v)
	}
	if v := metricValue(t, exp, `hpacml_capture_records_total{db="d"}`); v != 2 {
		t.Fatalf("capture records = %v, want 2", v)
	}
	if v := metricValue(t, exp, `hpacml_capture_batches_total{db="d",outcome="ok"}`); v != 1 {
		t.Fatalf("capture batches = %v, want 1", v)
	}
	if v := metricValue(t, exp, `hpacml_http_requests_total{path="/v1/infer",code="200"}`); v != 2 {
		t.Fatalf("infer 200s = %v, want 2", v)
	}
	if v := metricValue(t, exp, `hpacml_http_requests_total{path="/v1/infer",code="404"}`); v != 1 {
		t.Fatalf("infer 404s = %v, want 1", v)
	}
	if v := metricValue(t, exp, `hpacml_http_requests_total{path="/v1/infer",code="400"}`); v != 1 {
		t.Fatalf("infer 400s = %v, want 1", v)
	}
	if v := metricValue(t, exp, `hpacml_wire_requests_total{endpoint="infer",wire="json",dtype="f64"}`); v != 4 {
		t.Fatalf("json infer wire = %v, want 4 (every decodable infer POST, failures included)", v)
	}
	if v := metricValue(t, exp, `hpacml_queue_capacity{model="m"}`); v != 64 {
		t.Fatalf("queue capacity = %v, want 64 (8*MaxBatch)", v)
	}
	// The region bridge: every surrogate-served row of an ungated
	// region counts as trusted.
	if v := metricValue(t, exp, `hpacml_region_rows_total{model="m",verdict="trusted"}`); v != 3 {
		t.Fatalf("trusted rows = %v, want 3", v)
	}
	if !strings.Contains(exp, "hpacml_build_info{") {
		t.Fatal("exposition missing hpacml_build_info")
	}
	if !strings.Contains(exp, "hpacml_uptime_seconds ") {
		t.Fatal("exposition missing hpacml_uptime_seconds")
	}

	// /v1/stats reads the same counters — the totals cannot disagree.
	snap := s.Snapshot()[0]
	if snap.Completed != 3 || snap.Errors != 0 {
		t.Fatalf("snapshot totals diverge from metrics: %+v", snap)
	}
	if got := metricValue(t, exp, `hpacml_infer_batches_total{model="m"}`); uint64(got) != snap.Batches {
		t.Fatalf("batches: metrics %v vs snapshot %d", got, snap.Batches)
	}
}

// TestRejectedCountsInMetrics: queue-full rejections land in the
// rejected outcome series, consistent with the snapshot.
func TestRejectedCountsInMetrics(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 23, 3, 8, 1)
	stall := make(chan struct{})
	cfg := Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 1, Workers: 1,
		batchHook: func(string, int) { <-stall }}
	s, err := NewServer(cfg, ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Fill the worker (blocked in the hook) and the 1-slot queue, then
	// overflow it.
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Infer("m", []float64{1, 2, 3})
			errc <- err
		}()
	}
	var rejected int
	deadline := time.After(5 * time.Second)
	for metricValue(t, string(s.Metrics().AppendPrometheus(nil)), `hpacml_queue_depth{model="m"}`) < 1 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		case <-time.After(time.Millisecond):
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Infer("m", []float64{1, 2, 3}); errors.Is(err, ErrQueueFull) {
			rejected++
		}
	}
	close(stall)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Fatal("no request was rejected")
	}
	exp := string(s.Metrics().AppendPrometheus(nil))
	if v := metricValue(t, exp, `hpacml_infer_requests_total{model="m",outcome="rejected"}`); int(v) != rejected {
		t.Fatalf("rejected metric = %v, want %d", v, rejected)
	}
	if snap := s.Snapshot()[0]; int(snap.Rejected) != rejected {
		t.Fatalf("snapshot rejected = %d, want %d", snap.Rejected, rejected)
	}
}

// syncBuffer serializes concurrent handler log writes against the
// test's reads.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newSyncBuffer() *syncBuffer {
	sb := &syncBuffer{mu: make(chan struct{}, 1)}
	sb.mu <- struct{}{}
	return sb
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.String()
}

// TestRequestIDTraceability pins the tracing contract end to end: a
// client-chosen X-Request-ID shows up in the server's structured log
// line (with the stage breakdown) and in the error body of a failed
// call, and a client that sends no ID still gets one echoed back.
func TestRequestIDTraceability(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	path := saveMLP(t, dir, "m.gmod", 25, 4, 8, 2)
	s, err := NewServer(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 1},
		ModelSpec{Name: "m", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	logBuf := newSyncBuffer()
	logger := slog.New(slog.NewTextHandler(logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := httptest.NewServer(NewHandler(s, WithLogger(logger)))
	defer ts.Close()

	c := serveclient.New(ts.URL)
	defer c.CloseIdleConnections()

	// Traced success: the chosen ID must reach the matching log line.
	ctx := serveclient.WithRequestID(context.Background(), "trace-ok-42")
	if _, err := c.Infer(ctx, "m", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	// Traced failure: the ID comes back in the structured error.
	ctx = serveclient.WithRequestID(context.Background(), "trace-err-7")
	_, err = c.Infer(ctx, "ghost", []float64{1})
	var api *serveclient.APIError
	if !errors.As(err, &api) {
		t.Fatalf("want APIError, got %v", err)
	}
	if api.RequestID != "trace-err-7" {
		t.Fatalf("APIError.RequestID = %q, want trace-err-7", api.RequestID)
	}
	if !strings.Contains(api.Error(), "trace-err-7") {
		t.Fatalf("error string must quote the request ID: %q", api.Error())
	}

	// No caller ID: the client mints one and the server echoes it.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(serveapi.HeaderRequestID) == "" {
		t.Fatal("server must mint and echo a request ID when none is sent")
	}

	// The handler logs after writing the response; closing the test
	// server waits for every in-flight handler, making the log
	// complete.
	ts.Close()
	logs := logBuf.String()
	okLine := ""
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "rid=trace-ok-42") {
			okLine = line
			break
		}
	}
	if okLine == "" {
		t.Fatalf("no log line for rid=trace-ok-42 in:\n%s", logs)
	}
	for _, want := range []string{"path=/v1/infer", "status=200", "model=m", "wire=json", "rows=1", "queue=", "forward=", "decode=", "encode="} {
		if !strings.Contains(okLine, want) {
			t.Fatalf("traced log line missing %q: %s", want, okLine)
		}
	}
	if !strings.Contains(logs, "rid=trace-err-7") {
		t.Fatalf("no log line for the failed request in:\n%s", logs)
	}
}

// TestHealthzBuildInfo: /healthz carries version/revision/go fields
// alongside liveness.
func TestHealthzBuildInfo(t *testing.T) {
	hpacml.ClearModelCache()
	dir := t.TempDir()
	s, err := NewServer(Config{CaptureDBs: []CaptureSpec{{Name: "d", Path: filepath.Join(dir, "c.gh5")}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr serveapi.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Version == "" || hr.GoVersion == "" {
		t.Fatalf("health = %+v", hr)
	}
}
