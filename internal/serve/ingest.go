package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/h5"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Capture ingest is the server side of distributed data collection:
// many solver ranks run their regions in collection mode with a remote
// db() URI, their capture sinks batch records over HTTP, and this
// registry appends everything into server-owned sharded .gh5 databases
// — one training database fed by a whole fleet, the capture-side twin
// of the inference registry.

// Ingest sentinel errors, mapped to HTTP statuses by the handler.
var (
	// ErrUnknownDB means the request named an unregistered capture
	// database.
	ErrUnknownDB = errors.New("serve: unknown capture db")
	// ErrBadCapture means a capture record is malformed (shape/data
	// mismatch, missing region name) — a caller mistake.
	ErrBadCapture = errors.New("serve: bad capture record")
)

// CaptureSpec registers one named capture database: ingested records
// are appended to the sharded .gh5 set rooted at Path, rotating every
// ShardRecords records (0 = single file).
type CaptureSpec struct {
	Name string
	Path string
	// ShardRecords is the shard rotation quota in capture records
	// (region invocations); 0 disables rotation.
	ShardRecords int
}

// captureDB is one registry entry: the sharded writer serialized by
// its own mutex (so concurrent POSTs for different databases never
// contend) plus the ingest accounting — telemetry counters shared
// with /metrics, the single source of truth /v1/stats reads too.
type captureDB struct {
	name string
	path string

	records  *telemetry.Counter // durably ingested capture records
	batchOK  *telemetry.Counter // fully ingested POSTs
	batchErr *telemetry.Counter // rejected or failed ingest batches

	mu sync.Mutex
	w  *h5.ShardWriter
}

// ingest is the capture-database registry.
type ingest struct {
	dbs map[string]*captureDB
}

// newIngest opens (or resumes, with per-shard crash recovery) every
// registered capture database, resolving each database's metric
// children once.
func newIngest(specs []CaptureSpec, met *metrics) (*ingest, error) {
	g := &ingest{dbs: make(map[string]*captureDB, len(specs))}
	for _, spec := range specs {
		if spec.Name == "" || spec.Path == "" {
			g.close()
			return nil, fmt.Errorf("serve: capture spec needs a name and a path, got %+v", spec)
		}
		if _, dup := g.dbs[spec.Name]; dup {
			g.close()
			return nil, fmt.Errorf("serve: capture db %q registered twice", spec.Name)
		}
		w, err := h5.NewShardWriter(spec.Path, spec.ShardRecords, h5.SampleRecords)
		if err != nil {
			g.close()
			return nil, fmt.Errorf("serve: capture db %q: %w", spec.Name, err)
		}
		g.dbs[spec.Name] = &captureDB{
			name:     spec.Name,
			path:     spec.Path,
			w:        w,
			records:  met.captureRecords.With(spec.Name),
			batchOK:  met.captureBatches.With(spec.Name, "ok"),
			batchErr: met.captureBatches.With(spec.Name, "error"),
		}
	}
	return g, nil
}

// capture appends one ingest batch to the named database, flushing at
// the end so accepted records are durable (and readable by a training
// job) as soon as the POST is acknowledged.
func (g *ingest) capture(db string, recs []serveapi.CaptureRecord) (int, error) {
	d := g.dbs[db]
	if d == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownDB, db)
	}
	// Validate the whole batch before writing any of it: a bad record
	// must not leave half a batch in the database.
	tensors := make([][2]*tensor.Tensor, len(recs))
	for i, rec := range recs {
		var err error
		switch {
		case rec.Region == "":
			err = fmt.Errorf("%w: record %d has no region name", ErrBadCapture, i)
		default:
			if tensors[i][0], err = tensor.FromSlice(rec.Inputs, rec.InputShape...); err != nil {
				err = fmt.Errorf("%w: record %d inputs: %v", ErrBadCapture, i, err)
			} else if tensors[i][1], err = tensor.FromSlice(rec.Outputs, rec.OutputShape...); err != nil {
				err = fmt.Errorf("%w: record %d outputs: %v", ErrBadCapture, i, err)
			}
		}
		if err != nil {
			d.batchErr.Inc()
			return 0, err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, rec := range recs {
		w, err := d.w.BeginSet()
		if err == nil {
			err = h5.AppendSample(w, rec.Region, tensors[i][0], tensors[i][1], rec.RuntimeNS)
		}
		if err != nil {
			d.batchErr.Inc()
			// Flush the prefix written before the failure: the accepted
			// count travels back in the error body, and it must mean
			// "durable" — a buffered-but-lost record would be double
			// counted (dropped by the client, present after recovery).
			if ferr := d.w.Flush(); ferr != nil {
				return 0, fmt.Errorf("serve: capture db %q: %w", db, err)
			}
			d.records.Add(uint64(i))
			return i, fmt.Errorf("serve: capture db %q: %w", db, err)
		}
	}
	if err := d.w.Flush(); err != nil {
		d.batchErr.Inc()
		return 0, fmt.Errorf("serve: capture db %q: %w", db, err)
	}
	// Batches counts only fully ingested POSTs, matching the snapshot
	// docs; rejected and failed batches count in Errors instead.
	d.batchOK.Inc()
	d.records.Add(uint64(len(recs)))
	return len(recs), nil
}

// snapshotDB flushes the named database and scans its shard set under
// the writer mutex, so the snapshot is set-atomic: ingest appends a
// whole inputs/outputs/runtime set per record under the same mutex,
// and the flush pushes every buffered byte to the OS before the scan.
// A retrain reading the snapshot therefore sees only complete training
// samples, while concurrent POSTs keep appending the moment the scan
// finishes.
func (g *ingest) snapshotDB(db string) (*h5.File, error) {
	d := g.dbs[db]
	if d == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDB, db)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.w.Flush(); err != nil {
		return nil, fmt.Errorf("serve: capture db %q: %w", db, err)
	}
	return h5.OpenShards(d.path)
}

// snapshot renders the per-database ingest stats in name order.
func (g *ingest) snapshot() []serveapi.CaptureSnapshot {
	names := make([]string, 0, len(g.dbs))
	for n := range g.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]serveapi.CaptureSnapshot, 0, len(names))
	for _, n := range names {
		d := g.dbs[n]
		d.mu.Lock()
		shards := d.w.Shards()
		d.mu.Unlock()
		out = append(out, serveapi.CaptureSnapshot{
			CaptureDBInfo: serveapi.CaptureDBInfo{Name: d.name, Path: d.path, Shards: shards},
			Records:       d.records.Value(),
			Batches:       d.batchOK.Value(),
			Errors:        d.batchErr.Value(),
		})
	}
	return out
}

// close flushes and closes every capture database, returning the first
// failure.
func (g *ingest) close() error {
	var first error
	for _, d := range g.dbs {
		d.mu.Lock()
		if err := d.w.Close(); err != nil && first == nil {
			first = err
		}
		d.mu.Unlock()
	}
	return first
}
