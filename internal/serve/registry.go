package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	hpacml "repro"

	"repro/internal/nn"
	"repro/internal/serveapi"
)

// ModelSpec registers one named surrogate: a .gmod file served as a flat
// vector function of In input features to Out output features. Leave
// In/Out zero to infer both from the model file (possible whenever the
// network opens with a dense layer, which all the repo's MLP surrogates
// do).
type ModelSpec struct {
	Name string
	Path string
	// Ensemble lists additional member model files. When non-empty each
	// replica serves the deep ensemble {Path, Ensemble...} through an
	// EnsembleEngine: the response is the member-mean prediction, and
	// the per-row predictive variance is available to trust gates. All
	// members must share the primary's I/O widths.
	Ensemble []string
	In       int
	Out      int
	// F32 serves the model through the single-precision inference path:
	// each replica's directive gains f32(on), so its LocalEngine
	// converts the weights to float32 once at load and runs batches in
	// single precision. Ensembles ignore it (their injected engine owns
	// precision), as do models the f32 compiler cannot handle — those
	// silently stay float64.
	F32 bool
	// I8 serves the model through the quantized int8 path: each
	// replica's directive gains quant(int8), so its LocalEngine
	// auto-loads the ".quant" calibration sidecar beside the model file
	// (written by hpacml-quant) and compiles the int8 program. A
	// missing, corrupt, or gate-failed sidecar silently keeps the wider
	// path, and ensembles ignore it like F32. When both F32 and I8 are
	// set the engine prefers int8 where the sidecar allows it.
	I8 bool
}

// ModelInfo is the registry view of a hosted model (the /v1/models
// payload), defined in the shared wire schema.
type ModelInfo = serveapi.ModelInfo

// model is one registry entry: the shared bounded queue, the replica
// pool draining it, the serving stats, and the hot-reload state.
type model struct {
	name    string
	path    string
	members []string // every served model file: path first, then the ensemble
	in, out int

	queue    chan *request
	replicas []*replica
	stats    *modelStats

	// gen counts accepted reloads; replicas compare it against their own
	// generation at each batch boundary and RefreshModel on mismatch,
	// picking up the network checkReload published to the shared cache.
	gen   atomic.Uint64
	sumMu sync.Mutex
	sum   [sha256.Size]byte
	// loadedAt is when the served weights were (re)loaded — provenance
	// for /v1/models, guarded by sumMu like the checksum it travels with.
	loadedAt time.Time
}

// replica is one worker's single-threaded execution context: a Region
// plus the application arrays it is bound to. The worker copies request
// inputs into in, runs the region, and copies outputs from out.
type replica struct {
	idx    int
	region *hpacml.Region
	// engine is the replica's injected ensemble engine, nil for
	// single-model replicas (the region derives and owns a LocalEngine
	// itself). Injected engines are not owned by the region, so the
	// replica closes it alongside.
	engine *hpacml.EnsembleEngine
	in     []float64
	out    []float64
	gen    uint64
}

// newModel resolves the spec (loading the .gmod to infer or validate
// dimensions), checksums the file, publishes the loaded network to the
// shared model cache, and builds the replica pool. On failure every
// already-built replica is closed.
func newModel(spec ModelSpec, cfg Config, met *metrics) (*model, error) {
	if spec.Name == "" || spec.Path == "" {
		return nil, fmt.Errorf("serve: model spec needs a name and a path, got %+v", spec)
	}
	members := append([]string{spec.Path}, spec.Ensemble...)
	// Checksum the same bytes being loaded: hash first, then load, so a
	// concurrent retrain is caught by the next poll rather than pinning a
	// wrong checksum to the loaded weights.
	sum, err := filesChecksum(members)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", spec.Name, err)
	}
	net, in, out, err := resolveDims(spec)
	if err != nil {
		return nil, err
	}
	hpacml.StoreModel(spec.Path, net)
	// Every ensemble member must load and agree on the primary's I/O
	// widths — a disagreeing member would corrupt the ensemble mean.
	for _, p := range spec.Ensemble {
		mnet, err := nn.Load(p)
		if err != nil {
			return nil, fmt.Errorf("serve: model %q ensemble member %s: %w", spec.Name, p, err)
		}
		if err := validateDims(mnet, in, out); err != nil {
			return nil, fmt.Errorf("serve: model %q ensemble member %s: %w", spec.Name, p, err)
		}
		hpacml.StoreModel(p, mnet)
	}
	m := &model{
		name:     spec.Name,
		path:     spec.Path,
		members:  members,
		in:       in,
		out:      out,
		queue:    make(chan *request, cfg.QueueCap),
		stats:    newModelStats(cfg.MaxBatch, cfg.Workers, met.forModel(spec.Name)),
		sum:      sum,
		loadedAt: time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		rep, err := newReplica(spec.Name, members, i, in, out, spec.F32, spec.I8)
		if err != nil {
			m.closeReplicas()
			return nil, err
		}
		m.replicas = append(m.replicas, rep)
	}
	return m, nil
}

// closeReplicas releases every replica region (and injected ensemble
// engine) built so far.
func (m *model) closeReplicas() {
	for _, rep := range m.replicas {
		rep.region.Close()
		if rep.engine != nil {
			rep.engine.Close()
		}
	}
}

// resolveDims loads the model file to infer (or cross-check) the flat
// I/O widths the replicas will be bound to, returning the loaded
// network so callers can publish the exact validated object.
func resolveDims(spec ModelSpec) (net *nn.Network, in, out int, err error) {
	net, err = nn.Load(spec.Path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("serve: model %q: %w", spec.Name, err)
	}
	if spec.In <= 0 && spec.Out <= 0 {
		if in, out, err = net.VectorIO(); err != nil {
			return nil, 0, 0, fmt.Errorf("serve: model %q: %w (pass explicit dimensions)", spec.Name, err)
		}
		return net, in, out, nil
	}
	if spec.In <= 0 || spec.Out <= 0 {
		return nil, 0, 0, fmt.Errorf("serve: model %q: give both In and Out or neither", spec.Name)
	}
	if err := validateDims(net, spec.In, spec.Out); err != nil {
		return nil, 0, 0, fmt.Errorf("serve: model %q: %w", spec.Name, err)
	}
	return net, spec.In, spec.Out, nil
}

// validateDims checks that net maps [in]-feature samples to out total
// output features.
func validateDims(net *nn.Network, in, out int) error {
	shape, err := net.OutShape([]int{in})
	if err != nil {
		return fmt.Errorf("model rejects %d-feature input: %w", in, err)
	}
	got := 1
	for _, d := range shape {
		got *= d
	}
	if got != out {
		return fmt.Errorf("model maps %d features to %d outputs, registry says %d", in, got, out)
	}
	return nil
}

// newReplica builds one generic vector-in/vector-out inference region
// bound to fresh staging arrays: the bridge gathers the in-array as a
// [1, FIN] sample and scatters the model's [1, FOUT] output back into
// the out-array, so ExecuteBatch over n requests stacks to [n, FIN].
// With more than one member path the replica gets its own injected
// EnsembleEngine (engine scratch is single-threaded, so replicas never
// share one). A zero-input warmup runs immediately so a bad model file
// fails replica construction, not the first request.
func newReplica(name string, members []string, idx, in, out int, f32, i8 bool) (*replica, error) {
	x := make([]float64, in)
	y := make([]float64, out)
	precClause := ""
	if f32 {
		precClause += " f32(on)"
	}
	if i8 {
		precClause += " quant(int8)"
	}
	opts := []hpacml.Option{
		hpacml.BindInt("FIN", in),
		hpacml.BindInt("FOUT", out),
		hpacml.BindArray("x", x, in),
		hpacml.BindArray("y", y, out),
	}
	var engine *hpacml.EnsembleEngine
	if len(members) > 1 {
		var err error
		if engine, err = hpacml.NewLocalEnsemble(members...); err != nil {
			return nil, fmt.Errorf("serve: model %q replica %d: %w", name, idx, err)
		}
		opts = append(opts, hpacml.WithEngine(engine))
	}
	region, err := hpacml.NewRegion(fmt.Sprintf("%s/replica%d", name, idx),
		append([]hpacml.Option{hpacml.Directives(fmt.Sprintf(`
tensor functor(vin: [i, 0:FIN] = ([0:FIN]))
tensor functor(vout: [i, 0:FOUT] = ([0:FOUT]))
tensor map(to: vin(x[0:1]))
tensor map(from: vout(y[0:1]))
ml(infer) in(x) out(y) model(%q)%s
`, members[0], precClause))}, opts...)...,
	)
	if err != nil {
		if engine != nil {
			engine.Close()
		}
		return nil, fmt.Errorf("serve: model %q replica %d: %w", name, idx, err)
	}
	fail := func(err error) (*replica, error) {
		region.Close()
		if engine != nil {
			engine.Close()
		}
		return nil, err
	}
	if shape, err := region.InputShape(); err != nil || len(shape) != 2 || shape[0] != 1 || shape[1] != in {
		return fail(fmt.Errorf("serve: model %q replica %d: bridge presents %v (err %v), want [1 %d]", name, idx, shape, err, in))
	}
	if err := region.Execute(nil); err != nil {
		return fail(fmt.Errorf("serve: model %q warmup: %w", name, err))
	}
	region.ResetStats() // don't count the warmup as served traffic
	return &replica{idx: idx, region: region, engine: engine, in: x, out: y}, nil
}

// info snapshots the registry view.
func (m *model) info() ModelInfo {
	m.sumMu.Lock()
	sum := m.sum
	loadedAt := m.loadedAt
	m.sumMu.Unlock()
	return ModelInfo{
		Name:       m.name,
		Path:       m.path,
		Ensemble:   len(m.members),
		InDim:      m.in,
		OutDim:     m.out,
		Checksum:   hex.EncodeToString(sum[:]),
		Generation: m.gen.Load(),
		Replicas:   len(m.replicas),
		LoadedAt:   loadedAt,
	}
}

// checkReload re-checksums every member file. When any byte changed,
// each changed file is loaded and validated (loadable, same I/O widths
// — a width change would break the replicas' bound arrays and is
// refused), the validated networks are published to the shared model
// cache, and the model generation is bumped; each replica swaps onto
// the published weights at its next batch boundary via RefreshModel
// (which the ensemble engine forwards to every member), so in-flight
// requests finish on the old ones and every replica sees the same
// objects — never a torn or re-retrained file read of its own.
func (m *model) checkReload() error {
	sum, err := filesChecksum(m.members)
	if err != nil {
		m.stats.reloadFailed()
		return fmt.Errorf("serve: model %q reload: %w", m.name, err)
	}
	m.sumMu.Lock()
	same := sum == m.sum
	m.sumMu.Unlock()
	if same {
		return nil
	}
	nets := make([]*nn.Network, len(m.members))
	for i, p := range m.members {
		net, err := nn.Load(p)
		if err != nil {
			m.stats.reloadFailed()
			return fmt.Errorf("serve: model %q reload: %w", m.name, err)
		}
		if err := validateDims(net, m.in, m.out); err != nil {
			m.stats.reloadFailed()
			return fmt.Errorf("serve: model %q reload refused (%s): %w", m.name, p, err)
		}
		nets[i] = net
	}
	// All members validated — publish atomically from the registry's
	// point of view (replicas only look after the generation bump).
	for i, p := range m.members {
		hpacml.StoreModel(p, nets[i])
	}
	m.sumMu.Lock()
	m.sum = sum
	m.loadedAt = time.Now()
	m.sumMu.Unlock()
	m.gen.Add(1)
	m.stats.reloaded()
	return nil
}

// fileChecksum hashes a model file's contents.
func fileChecksum(path string) ([sha256.Size]byte, error) {
	var sum [sha256.Size]byte
	b, err := os.ReadFile(path)
	if err != nil {
		return sum, err
	}
	return sha256.Sum256(b), nil
}

// filesChecksum hashes a member set: the concatenation of each file's
// own hash, so member order matters and any member change changes the
// set checksum.
func filesChecksum(paths []string) ([sha256.Size]byte, error) {
	h := sha256.New()
	for _, p := range paths {
		s, err := fileChecksum(p)
		if err != nil {
			return [sha256.Size]byte{}, err
		}
		h.Write(s[:])
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}
