package workflow

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndGet(t *testing.T) {
	e, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	f, err := Submit(e, func() (int, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("got %d", v)
	}
	if !f.Done() {
		t.Fatal("future should report done after Get")
	}
}

func TestErrorPropagation(t *testing.T) {
	e, _ := New(1)
	defer e.Close()
	f, _ := Submit(e, func() (int, error) { return 0, fmt.Errorf("boom") })
	if _, err := f.Get(); err == nil {
		t.Fatal("want error")
	}
}

func TestDependencyOrdering(t *testing.T) {
	e, _ := New(4)
	defer e.Close()
	var order []int32
	var mu atomic.Int32
	record := func(id int32) {
		for {
			cur := mu.Load()
			if mu.CompareAndSwap(cur, cur+1) {
				break
			}
		}
		order = append(order, id)
	}
	_ = record
	var aDone atomic.Bool
	a, _ := Submit(e, func() (int, error) {
		time.Sleep(20 * time.Millisecond)
		aDone.Store(true)
		return 1, nil
	})
	b, _ := Submit(e, func() (int, error) {
		if !aDone.Load() {
			return 0, fmt.Errorf("dependency violated")
		}
		return 2, nil
	}, a)
	if v, err := b.Get(); err != nil || v != 2 {
		t.Fatalf("b = %d, %v", v, err)
	}
}

func TestDependencyFailureSkipsTask(t *testing.T) {
	e, _ := New(2)
	defer e.Close()
	a, _ := Submit(e, func() (int, error) { return 0, fmt.Errorf("a failed") })
	ran := false
	b, _ := Submit(e, func() (int, error) { ran = true; return 1, nil }, a)
	if _, err := b.Get(); err == nil {
		t.Fatal("want dependency error")
	}
	if ran {
		t.Fatal("dependent task must not run after failed dependency")
	}
}

func TestBoundedParallelism(t *testing.T) {
	e, _ := New(2)
	defer e.Close()
	var active, peak atomic.Int32
	var futures []*Future[int]
	for i := 0; i < 8; i++ {
		f, _ := Submit(e, func() (int, error) {
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			active.Add(-1)
			return 0, nil
		})
		futures = append(futures, f)
	}
	for _, f := range futures {
		f.Get()
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("parallelism exceeded bound: %d", p)
	}
}

func TestPanicRecovered(t *testing.T) {
	e, _ := New(1)
	defer e.Close()
	f, _ := Submit(e, func() (int, error) { panic("kaboom") })
	if _, err := f.Get(); err == nil {
		t.Fatal("want panic converted to error")
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	e, _ := New(4)
	defer e.Close()
	out, err := Map(e, 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapReportsFirstError(t *testing.T) {
	e, _ := New(4)
	defer e.Close()
	_, err := Map(e, 5, func(i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("task 3 failed")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error from Map")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e, _ := New(1)
	e.Close()
	if _, err := Submit(e, func() (int, error) { return 0, nil }); err == nil {
		t.Fatal("want error submitting to closed executor")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("want error for zero parallelism")
	}
}
