// Package workflow is a futures-based task orchestrator standing in for
// Parsl, which the paper uses to drive its model-search campaign. Tasks
// are submitted as closures, run on a bounded worker pool, and may depend
// on other tasks' futures; Get blocks until a result is available.
package workflow

import (
	"fmt"
	"sync"
)

// Executor runs submitted tasks with bounded parallelism. Create with New;
// Close waits for all tasks to finish.
type Executor struct {
	sem    chan struct{}
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// New creates an executor running at most parallelism tasks at once.
func New(parallelism int) (*Executor, error) {
	if parallelism <= 0 {
		return nil, fmt.Errorf("workflow: parallelism must be positive, got %d", parallelism)
	}
	return &Executor{sem: make(chan struct{}, parallelism)}, nil
}

// Future is the eventual result of a submitted task.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Get blocks until the task completes and returns its result.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	return f.val, f.err
}

// Done reports completion without blocking.
func (f *Future[T]) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Submit schedules fn on the executor and returns its future. fn runs
// after deps complete; if any dependency failed, fn is skipped and the
// future carries the dependency error.
func Submit[T any](e *Executor, fn func() (T, error), deps ...Awaitable) (*Future[T], error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("workflow: submit on closed executor")
	}
	e.wg.Add(1)
	e.mu.Unlock()

	f := &Future[T]{done: make(chan struct{})}
	go func() {
		defer e.wg.Done()
		defer close(f.done)
		for _, d := range deps {
			if err := d.Wait(); err != nil {
				f.err = fmt.Errorf("workflow: dependency failed: %w", err)
				return
			}
		}
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("workflow: task panicked: %v", r)
			}
		}()
		f.val, f.err = fn()
	}()
	return f, nil
}

// Awaitable is anything whose completion (and error state) can be waited
// on — every Future implements it.
type Awaitable interface {
	Wait() error
}

// Wait blocks until the future resolves and returns only its error.
func (f *Future[T]) Wait() error {
	<-f.done
	return f.err
}

// Map fans fn out over n indices with the executor's parallelism and
// returns the collected results in index order.
func Map[T any](e *Executor, n int, fn func(i int) (T, error)) ([]T, error) {
	futures := make([]*Future[T], n)
	for i := 0; i < n; i++ {
		i := i
		f, err := Submit(e, func() (T, error) { return fn(i) })
		if err != nil {
			return nil, err
		}
		futures[i] = f
	}
	out := make([]T, n)
	var firstErr error
	for i, f := range futures {
		v, err := f.Get()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("workflow: task %d: %w", i, err)
		}
		out[i] = v
	}
	return out, firstErr
}

// Close waits for all submitted tasks and rejects further submissions.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.wg.Wait()
}
