// Package learner closes the HPAC-ML loop: it turns the serve stack's
// capture ingest into a continuous-learning controller. A policy per
// model watches the captured-record count (and optionally age), and
// when the trigger fires the controller snapshots the sharded capture
// database (set-atomically, through the server's ingest registry),
// splits it into a train/held-out pair, warm-starts a candidate from
// the published weights and retrains it with the internal/nn training
// path, then shadow-gates the candidate against the currently
// published model on the held-out captures. Only a passing candidate
// is published: the parent weights are archived per generation, the
// candidate atomically renamed over the live files, and the serve
// registry's checksum hot-reload swaps the replica pools at their next
// batch boundary. Every attempt — published or rejected — appends a
// lineage entry persisted in a .lineage.json sidecar and served
// through /v1/models; POST /v1/models/{name}/rollback restores the
// parent generation from its archive.
//
// The package sits below internal/serve in the import graph (it knows
// h5, nn, serveapi, and telemetry only); the server hands it snapshot
// and reload hooks, and the HTTP layer forwards rollback and
// annotation calls. One background goroutine drives every policy, so
// retraining is rate-limited by construction — at most one retrain in
// flight per controller, with Config.Interval as the pacing floor.
package learner

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/serveapi"
	"repro/internal/telemetry"
)

// Sentinel errors, mapped onto HTTP statuses by the serve handler.
var (
	// ErrUnknownModel means no policy manages the named model.
	ErrUnknownModel = errors.New("learner: model not managed")
	// ErrNoParent means the live generation has no archived parent to
	// roll back to (it is the seed, or its archive is gone).
	ErrNoParent = errors.New("learner: no parent generation to roll back to")
)

// Policy is one model's continuous-learning contract.
type Policy struct {
	// Model is the serve-registry name the policy manages.
	Model string
	// Paths are the member weight files, primary first — the same list
	// the registry serves, because publish works by rewriting these
	// files and letting the checksum reload pick them up. Ensembles are
	// gated and published all-or-nothing.
	Paths []string
	// Group names the capture group (region name) inside the snapshot.
	// Empty auto-detects a single-group database.
	Group string

	// RetrainEvery triggers a retrain once this many new records have
	// been captured since the last one (0 disables the count trigger).
	RetrainEvery int
	// MaxAge triggers a retrain once any pending record has waited this
	// long, regardless of count (0 disables the age trigger).
	MaxAge time.Duration
	// MinRecords is the floor: no retrain until the snapshot holds at
	// least this many total records. Default 8.
	MinRecords int

	// HoldoutFrac is the trailing fraction of the shuffled snapshot
	// held out for the shadow gate (never trained on). Default 0.25.
	HoldoutFrac float64
	// Rtol is the gate's additive relative-error slack: a candidate
	// publishes iff its holdout error is finite and at most the
	// published model's error + Rtol. Default 0.05.
	Rtol float64
	// Train configures the candidate's nn.Fit run (warm-started from
	// the published weights). Stop is owned by the controller — it is
	// overwritten to cancel training promptly on Close. Zero Epochs
	// defaults to 20, zero BatchSize to 16.
	Train nn.TrainConfig

	// Snapshot returns a set-atomic read snapshot of the model's
	// capture database (the server's SnapshotCaptureDB).
	Snapshot func() (*h5.File, error)
	// Reload asks the registry to re-checksum and hot-swap the model's
	// files now (the server's ReloadModel).
	Reload func() error
}

// Config is the controller-wide policy.
type Config struct {
	// Interval paces the watch loop (and thereby rate-limits retrains:
	// at most one trigger check per model per tick). Default 5s;
	// negative disables the background loop entirely — CheckNow drives
	// the controller instead (tests, batch jobs).
	Interval time.Duration
	// Logger receives retrain/publish/rollback events. Default
	// slog.Default().
	Logger *slog.Logger
	// Metrics is the registry the learner families register on — pass
	// the server's so /metrics carries them. Nil gets a private one.
	Metrics *telemetry.Registry
}

// managed is one policy's runtime state.
type managed struct {
	pol Policy

	// mu guards the lineage state, the weight files during
	// publish/rollback, and the counters below. Training runs outside
	// the lock; publish re-checks the live generation under it, so a
	// rollback racing a retrain wins and the stale candidate is
	// rejected as superseded.
	mu    sync.Mutex
	state lineageState
	// trained is how many snapshot rows the live weights have consumed;
	// pending (the trigger input) is the snapshot row count minus this.
	trained      int
	pending      int
	pendingSince time.Time

	retrains, published, rejected, errored, rollbacks uint64
	lastVerdict                                       string
	lastCandErr, lastPubErr                           float64

	// trainFn builds one candidate member (warm-start + Fit by
	// default). Test seam, mirroring serve's batchHook.
	trainFn func(member int, path string, train *nn.Dataset, cfg nn.TrainConfig) (*nn.Network, error)

	mPublished, mRejected, mError, mRollback *telemetry.Counter
	mGen, mCandErr, mPubErr                  *telemetry.Gauge
}

// Controller runs the closed loop for a set of policies.
type Controller struct {
	cfg    Config
	models map[string]*managed
	order  []string
	log    *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New validates the policies, loads (or seeds) each model's lineage
// sidecar, registers the learner metric families, and starts the watch
// loop (unless Config.Interval is negative).
func New(cfg Config, pols ...Policy) (*Controller, error) {
	if len(pols) == 0 {
		return nil, fmt.Errorf("learner: no policies")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	retrainsVec := reg.CounterVec("hpacml_retrains_total",
		"Retrain attempts by model and result (published, rejected, or error).", "model", "result")
	rollbacksVec := reg.CounterVec("hpacml_rollbacks_total",
		"Operator rollbacks to a parent generation, by model.", "model")
	genVec := reg.GaugeVec("hpacml_model_generation",
		"Lineage generation whose weights currently serve, by model.", "model")
	gateVec := reg.GaugeVec("hpacml_gate_rel_error",
		"Shadow-gate relative error of the last gated candidate and the then-published model on held-out captures.", "model", "which")

	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		cfg:    cfg,
		models: make(map[string]*managed, len(pols)),
		log:    cfg.Logger,
		ctx:    ctx,
		cancel: cancel,
	}
	for _, pol := range pols {
		if pol.Model == "" || len(pol.Paths) == 0 || pol.Snapshot == nil || pol.Reload == nil {
			cancel()
			return nil, fmt.Errorf("learner: policy for %q needs Model, Paths, Snapshot, and Reload", pol.Model)
		}
		if _, dup := c.models[pol.Model]; dup {
			cancel()
			return nil, fmt.Errorf("learner: model %q managed twice", pol.Model)
		}
		if pol.MinRecords <= 0 {
			pol.MinRecords = 8
		}
		if pol.HoldoutFrac <= 0 || pol.HoldoutFrac >= 1 {
			pol.HoldoutFrac = 0.25
		}
		if pol.Rtol <= 0 {
			pol.Rtol = 0.05
		}
		if pol.Train.Epochs <= 0 {
			pol.Train.Epochs = 20
		}
		if pol.Train.BatchSize <= 0 {
			pol.Train.BatchSize = 16
		}
		m := &managed{
			pol:        pol,
			mPublished: retrainsVec.With(pol.Model, "published"),
			mRejected:  retrainsVec.With(pol.Model, "rejected"),
			mError:     retrainsVec.With(pol.Model, "error"),
			mRollback:  rollbacksVec.With(pol.Model),
			mGen:       genVec.With(pol.Model),
			mCandErr:   gateVec.With(pol.Model, "candidate"),
			mPubErr:    gateVec.With(pol.Model, "published"),
		}
		if err := m.loadOrSeed(); err != nil {
			cancel()
			return nil, err
		}
		m.mGen.Set(float64(m.state.LiveGen))
		c.models[pol.Model] = m
		c.order = append(c.order, pol.Model)
	}
	if cfg.Interval > 0 {
		c.wg.Add(1)
		go c.run()
	}
	return c, nil
}

// loadOrSeed restores the sidecar lineage or seeds generation 0 from
// the files currently on disk.
func (m *managed) loadOrSeed() error {
	path := lineagePath(m.pol.Paths[0])
	st, err := loadLineage(path)
	if err != nil {
		return err
	}
	if st != nil {
		m.state = *st
		m.trained = m.state.trainedRows()
		return nil
	}
	sum, err := filesChecksum(m.pol.Paths)
	if err != nil {
		return fmt.Errorf("learner: model %q: %w", m.pol.Model, err)
	}
	m.state = lineageState{
		Model:   m.pol.Model,
		LiveGen: 0,
		Entries: []serveapi.LineageEntry{{
			Gen:      0,
			Time:     time.Now().UTC(),
			Verdict:  serveapi.VerdictSeed,
			Checksum: sum,
		}},
	}
	return m.state.persist(path)
}

// run is the watch loop: one sweep per tick, every policy in
// registration order, at most one retrain in flight at a time.
func (c *Controller) run() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.sweep()
		}
	}
}

// CheckNow runs one synchronous sweep of every policy — the manual
// drive for tests and batch retraining jobs.
func (c *Controller) CheckNow() {
	c.sweep()
}

func (c *Controller) sweep() {
	for _, name := range c.order {
		if c.ctx.Err() != nil {
			return
		}
		c.maybeRetrain(c.models[name])
	}
}

// Close cancels any in-flight training promptly (the Fit Stop hook
// polls per minibatch) and waits for the watch loop to exit. A
// candidate interrupted by Close is discarded: it is never gated and
// never published.
func (c *Controller) Close() {
	c.cancel()
	c.wg.Wait()
}

// maybeRetrain snapshots the capture database, updates the pending
// accounting, and retrains when a trigger fires.
func (c *Controller) maybeRetrain(m *managed) {
	ds, err := c.snapshotDataset(m)
	if err != nil {
		c.log.Warn("learner: snapshot failed", "model", m.pol.Model, "err", err)
		return
	}
	if ds == nil {
		return
	}
	rows := ds.Len()
	m.mu.Lock()
	pending := rows - m.trained
	if pending < 0 {
		pending = 0
	}
	m.pending = pending
	switch {
	case pending == 0:
		m.pendingSince = time.Time{}
	case m.pendingSince.IsZero():
		m.pendingSince = time.Now()
	}
	trigger := (m.pol.RetrainEvery > 0 && pending >= m.pol.RetrainEvery) ||
		(m.pol.MaxAge > 0 && pending > 0 && time.Since(m.pendingSince) >= m.pol.MaxAge)
	if rows < m.pol.MinRecords {
		trigger = false
	}
	startGen := m.state.LiveGen
	m.mu.Unlock()
	if !trigger {
		return
	}
	c.retrain(m, ds, startGen)
}

// snapshotDataset takes the policy's capture snapshot and pairs it
// into a training dataset, truncating to complete input/output record
// pairs (a snapshot racing ingest may be one record ahead on inputs).
// A database with no records yet returns (nil, nil).
func (c *Controller) snapshotDataset(m *managed) (*nn.Dataset, error) {
	f, err := m.pol.Snapshot()
	if err != nil {
		return nil, err
	}
	group := m.pol.Group
	if group == "" {
		groups := f.Groups()
		switch len(groups) {
		case 0:
			return nil, nil
		case 1:
			group = groups[0]
		default:
			return nil, fmt.Errorf("learner: capture db holds %d groups %v; set Policy.Group", len(groups), groups)
		}
	}
	n := f.NumRecords(group, "inputs")
	if out := f.NumRecords(group, "outputs"); out < n {
		n = out
	}
	if n == 0 {
		return nil, nil
	}
	inRecs, err := f.ReadRecords(group, "inputs")
	if err != nil {
		return nil, err
	}
	outRecs, err := f.ReadRecords(group, "outputs")
	if err != nil {
		return nil, err
	}
	x, err := stackRecords(inRecs[:n])
	if err != nil {
		return nil, err
	}
	y, err := stackRecords(outRecs[:n])
	if err != nil {
		return nil, err
	}
	return nn.NewDataset(x, y)
}

// retrain runs one full candidate cycle: split, warm-start + train
// every member, shadow-gate against the published weights, and publish
// or reject — appending the lineage entry either way. Training
// interrupted by Close returns silently: no entry, no publish.
func (c *Controller) retrain(m *managed, ds *nn.Dataset, startGen uint64) {
	rows := ds.Len()
	shuffled, err := ds.Shuffle(m.pol.Train.Seed + int64(startGen)*7919)
	if err != nil {
		c.finish(m, rejection(m, 0, 0, "shuffle failed: "+err.Error()), rows, true)
		return
	}
	train, holdout, err := shuffled.Split(1 - m.pol.HoldoutFrac)
	if err != nil {
		c.finish(m, rejection(m, 0, 0, "holdout split failed: "+err.Error()), rows, true)
		return
	}
	c.log.Info("learner: retraining", "model", m.pol.Model,
		"records", rows, "train", train.Len(), "holdout", holdout.Len())

	// Baseline: the published weights, loaded fresh from disk, on the
	// held-out captures.
	base := make([]*nn.Network, len(m.pol.Paths))
	for i, p := range m.pol.Paths {
		if base[i], err = nn.Load(p); err != nil {
			c.finish(m, rejection(m, train.Len(), holdout.Len(), "loading published weights: "+err.Error()), rows, true)
			return
		}
	}
	pubErr, err := relErr(base, holdout)
	if err != nil {
		c.finish(m, rejection(m, train.Len(), holdout.Len(), "evaluating published weights: "+err.Error()), rows, true)
		return
	}

	// Candidates: one per member, warm-started, trained outside the
	// lock. Distinct seeds keep ensemble members diverse.
	cands := make([]*nn.Network, len(m.pol.Paths))
	for i, p := range m.pol.Paths {
		cfg := m.pol.Train
		cfg.Seed += int64(startGen)*7919 + int64(i)*9973
		cfg.Stop = func() bool { return c.ctx.Err() != nil }
		cands[i], err = m.train(i, p, train, cfg)
		if errors.Is(err, nn.ErrTrainingStopped) || c.ctx.Err() != nil {
			c.log.Info("learner: retrain aborted by shutdown", "model", m.pol.Model)
			return
		}
		if err != nil {
			c.finish(m, rejection(m, train.Len(), holdout.Len(), fmt.Sprintf("training member %d: %v", i, err)), rows, true)
			return
		}
	}
	candErr, err := relErr(cands, holdout)
	if err != nil {
		c.finish(m, rejection(m, train.Len(), holdout.Len(), "evaluating candidate: "+err.Error()), rows, true)
		return
	}

	entry := serveapi.LineageEntry{
		Time:           time.Now().UTC(),
		ParentGen:      startGen,
		TrainRecords:   train.Len(),
		HoldoutRecords: holdout.Len(),
		CandidateErr:   sanitize(candErr),
		PublishedErr:   sanitize(pubErr),
	}
	m.mCandErr.Set(sanitize(candErr))
	m.mPubErr.Set(sanitize(pubErr))
	switch {
	case math.IsNaN(candErr):
		entry.Verdict = serveapi.VerdictRejected
		entry.Reason = "candidate NaN-poisoned on held-out captures"
	case candErr > pubErr+m.pol.Rtol:
		entry.Verdict = serveapi.VerdictRejected
		entry.Reason = fmt.Sprintf("gate failed: candidate rel err %.6g > published %.6g + rtol %.3g",
			candErr, pubErr, m.pol.Rtol)
	default:
		entry.Verdict = serveapi.VerdictPublished
	}
	if entry.Verdict == serveapi.VerdictRejected {
		c.finish(m, entry, rows, false)
		return
	}
	c.publish(m, entry, cands, rows, startGen)
}

// train builds one candidate member: the trainFn seam, or warm-start
// from the published weights plus Fit.
func (m *managed) train(member int, path string, train *nn.Dataset, cfg nn.TrainConfig) (*nn.Network, error) {
	if m.trainFn != nil {
		return m.trainFn(member, path, train, cfg)
	}
	net, err := nn.Load(path)
	if err != nil {
		return nil, err
	}
	if _, err := net.Fit(train, nil, cfg); err != nil {
		return nil, err
	}
	return net, nil
}

// rejection builds a rejected lineage entry for an infrastructure
// failure (as opposed to a gate verdict).
func rejection(m *managed, trainRows, holdoutRows int, reason string) serveapi.LineageEntry {
	m.mu.Lock()
	parent := m.state.LiveGen
	m.mu.Unlock()
	return serveapi.LineageEntry{
		Time:           time.Now().UTC(),
		Verdict:        serveapi.VerdictRejected,
		Reason:         reason,
		ParentGen:      parent,
		TrainRecords:   trainRows,
		HoldoutRecords: holdoutRows,
	}
}

// finish records a non-published retrain outcome: assign the next
// generation number, append + persist the entry, bump counters. infra
// distinguishes infrastructure errors from gate rejections in the
// metrics.
func (c *Controller) finish(m *managed, entry serveapi.LineageEntry, rows int, infra bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry.Gen = m.state.nextGen()
	if parent := m.state.entryByGen(entry.ParentGen); parent != nil {
		entry.ParentChecksum = parent.Checksum
	}
	m.state.Entries = append(m.state.Entries, entry)
	m.retrains++
	if infra {
		m.errored++
		m.mError.Inc()
	} else {
		m.rejected++
		m.mRejected.Inc()
	}
	m.lastVerdict = entry.Verdict
	m.lastCandErr, m.lastPubErr = entry.CandidateErr, entry.PublishedErr
	// A rejected candidate still consumed the snapshot: the records it
	// trained on don't re-trigger forever. The next trigger needs fresh
	// captures.
	m.trained = rows
	m.pending = 0
	m.pendingSince = time.Time{}
	if err := m.state.persist(lineagePath(m.pol.Paths[0])); err != nil {
		c.log.Error("learner: persisting lineage", "model", m.pol.Model, "err", err)
	}
	c.log.Info("learner: candidate rejected", "model", m.pol.Model,
		"gen", entry.Gen, "reason", entry.Reason)
}

// publish archives the parent weights, renames the candidate members
// into place atomically, asks the registry to hot-reload, and records
// the published lineage entry. A rollback that raced the training run
// wins: the stale candidate is rejected as superseded.
func (c *Controller) publish(m *managed, entry serveapi.LineageEntry, cands []*nn.Network, rows int, startGen uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state.LiveGen != startGen {
		entry.Verdict = serveapi.VerdictRejected
		entry.Reason = fmt.Sprintf("superseded: generation moved %d -> %d during training", startGen, m.state.LiveGen)
		entry.Gen = m.state.nextGen()
		m.state.Entries = append(m.state.Entries, entry)
		m.retrains++
		m.rejected++
		m.mRejected.Inc()
		m.lastVerdict = entry.Verdict
		if err := m.state.persist(lineagePath(m.pol.Paths[0])); err != nil {
			c.log.Error("learner: persisting lineage", "model", m.pol.Model, "err", err)
		}
		return
	}
	entry.Gen = m.state.nextGen()
	if parent := m.state.entryByGen(startGen); parent != nil {
		entry.ParentChecksum = parent.Checksum
	}

	fail := func(stage string, err error) {
		entry.Verdict = serveapi.VerdictRejected
		entry.Reason = stage + ": " + err.Error()
		m.state.Entries = append(m.state.Entries, entry)
		m.retrains++
		m.errored++
		m.mError.Inc()
		m.lastVerdict = entry.Verdict
		if perr := m.state.persist(lineagePath(m.pol.Paths[0])); perr != nil {
			c.log.Error("learner: persisting lineage", "model", m.pol.Model, "err", perr)
		}
		c.log.Error("learner: publish failed", "model", m.pol.Model, "gen", entry.Gen, "stage", stage, "err", err)
	}

	// Archive the parent generation (restore source for rollback), then
	// stage every member next to its target and rename the whole set —
	// the registry's checksum poll sees either all old or all new bytes
	// per file, and validates the set before swapping replicas.
	for _, p := range m.pol.Paths {
		arch := archivePath(p, startGen)
		if _, err := os.Stat(arch); errors.Is(err, os.ErrNotExist) {
			if err := copyFile(arch, p); err != nil {
				fail("archiving parent", err)
				return
			}
		}
	}
	staged := make([]string, len(m.pol.Paths))
	for i, p := range m.pol.Paths {
		staged[i] = p + ".candidate"
		if err := cands[i].Save(staged[i]); err != nil {
			fail("staging candidate", err)
			return
		}
	}
	for i, p := range m.pol.Paths {
		if err := os.Rename(staged[i], p); err != nil {
			fail("installing candidate", err)
			return
		}
	}
	sum, err := filesChecksum(m.pol.Paths)
	if err == nil {
		entry.Checksum = sum
	}
	if err := m.pol.Reload(); err != nil {
		// The registry refused the new bytes: put the parent back so
		// disk and replicas agree again.
		for _, p := range m.pol.Paths {
			if rerr := copyFile(p, archivePath(p, startGen)); rerr != nil {
				c.log.Error("learner: restoring parent after refused reload", "model", m.pol.Model, "path", p, "err", rerr)
			}
		}
		fail("registry reload refused candidate", err)
		return
	}

	entry.Verdict = serveapi.VerdictPublished
	m.state.Entries = append(m.state.Entries, entry)
	m.state.LiveGen = entry.Gen
	m.retrains++
	m.published++
	m.mPublished.Inc()
	m.mGen.Set(float64(entry.Gen))
	m.lastVerdict = entry.Verdict
	m.lastCandErr, m.lastPubErr = entry.CandidateErr, entry.PublishedErr
	m.trained = rows
	m.pending = 0
	m.pendingSince = time.Time{}
	if err := m.state.persist(lineagePath(m.pol.Paths[0])); err != nil {
		c.log.Error("learner: persisting lineage", "model", m.pol.Model, "err", err)
	}
	c.log.Info("learner: published new generation", "model", m.pol.Model,
		"gen", entry.Gen, "parent", startGen,
		"candidate_err", entry.CandidateErr, "published_err", entry.PublishedErr)
}

// Rollback restores the live generation's parent from its archive and
// hot-reloads it, appending a rollback lineage entry. The response
// carries both the rollback entry's generation and the restored one.
func (c *Controller) Rollback(model string) (serveapi.RollbackResponse, error) {
	m := c.models[model]
	if m == nil {
		return serveapi.RollbackResponse{}, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.state.entryByGen(m.state.LiveGen)
	if cur == nil || cur.Verdict == serveapi.VerdictSeed {
		return serveapi.RollbackResponse{}, fmt.Errorf("%w: model %q serves generation %d", ErrNoParent, model, m.state.LiveGen)
	}
	target := cur.ParentGen
	for _, p := range m.pol.Paths {
		if _, err := os.Stat(archivePath(p, target)); err != nil {
			return serveapi.RollbackResponse{}, fmt.Errorf("%w: archive for generation %d missing (%s)", ErrNoParent, target, archivePath(p, target))
		}
	}
	// Archive the weights being rolled away first, so a roll-forward
	// stays possible, then restore the whole parent set.
	for _, p := range m.pol.Paths {
		arch := archivePath(p, m.state.LiveGen)
		if _, err := os.Stat(arch); errors.Is(err, os.ErrNotExist) {
			if err := copyFile(arch, p); err != nil {
				return serveapi.RollbackResponse{}, fmt.Errorf("learner: archiving generation %d: %w", m.state.LiveGen, err)
			}
		}
	}
	for _, p := range m.pol.Paths {
		if err := copyFile(p, archivePath(p, target)); err != nil {
			return serveapi.RollbackResponse{}, fmt.Errorf("learner: restoring generation %d: %w", target, err)
		}
	}
	if err := m.pol.Reload(); err != nil {
		return serveapi.RollbackResponse{}, fmt.Errorf("learner: reload after rollback: %w", err)
	}
	sum, _ := filesChecksum(m.pol.Paths)
	entry := serveapi.LineageEntry{
		Gen:       m.state.nextGen(),
		Time:      time.Now().UTC(),
		Verdict:   serveapi.VerdictRollback,
		Reason:    fmt.Sprintf("rolled back generation %d to parent %d", m.state.LiveGen, target),
		ParentGen: target,
		Checksum:  sum,
	}
	m.state.Entries = append(m.state.Entries, entry)
	m.state.LiveGen = target
	m.rollbacks++
	m.mRollback.Inc()
	m.mGen.Set(float64(target))
	if err := m.state.persist(lineagePath(m.pol.Paths[0])); err != nil {
		c.log.Error("learner: persisting lineage", "model", model, "err", err)
	}
	c.log.Info("learner: rolled back", "model", model, "restored_gen", target, "entry_gen", entry.Gen)
	return serveapi.RollbackResponse{
		Model:       model,
		Generation:  entry.Gen,
		RestoredGen: target,
		Checksum:    sum,
	}, nil
}

// Annotate decorates registry ModelInfos with the learner view: the
// live generation and the full lineage (the extended /v1/models).
func (c *Controller) Annotate(infos []serveapi.ModelInfo) {
	for i := range infos {
		m := c.models[infos[i].Name]
		if m == nil {
			continue
		}
		m.mu.Lock()
		infos[i].LearnerGeneration = m.state.LiveGen
		infos[i].Lineage = append([]serveapi.LineageEntry(nil), m.state.Entries...)
		m.mu.Unlock()
	}
}

// Snapshot renders the per-model learner stats (the /v1/stats
// Learners section) in policy registration order.
func (c *Controller) Snapshot() []serveapi.LearnerSnapshot {
	out := make([]serveapi.LearnerSnapshot, 0, len(c.order))
	for _, name := range c.order {
		m := c.models[name]
		m.mu.Lock()
		out = append(out, serveapi.LearnerSnapshot{
			Model:            name,
			Generation:       m.state.LiveGen,
			Retrains:         m.retrains,
			Published:        m.published,
			Rejected:         m.rejected,
			Errors:           m.errored,
			Rollbacks:        m.rollbacks,
			PendingRecords:   m.pending,
			LastVerdict:      m.lastVerdict,
			LastCandidateErr: m.lastCandErr,
			LastPublishedErr: m.lastPubErr,
		})
		m.mu.Unlock()
	}
	return out
}

// sanitize maps non-finite gate errors onto -1: JSON cannot carry NaN,
// and the lineage reason names the poisoning anyway.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}
