package learner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/serveapi"
)

// Lineage is the provenance half of the closed loop: every retrain
// attempt — published or not — and every rollback appends one
// serveapi.LineageEntry, and the whole history is persisted next to
// the primary weight file as a .lineage.json sidecar. The sidecar is
// the durable truth; /v1/models serves the same entries, so the wire
// view and the on-disk record can never drift.
//
// Generation numbering is monotonic across attempts: a rejected
// candidate consumes a generation number too, so the record says what
// was tried, not just what won. The generation whose weights are live
// (LiveGen) moves only on publish (forward) and rollback (back to the
// parent); it is what the hpacml_model_generation gauge and
// /v1/stats report.

// lineageState is the sidecar schema.
type lineageState struct {
	Model string `json:"model"`
	// LiveGen is the generation whose weights currently serve.
	LiveGen uint64                  `json:"live_gen"`
	Entries []serveapi.LineageEntry `json:"entries"`
}

// lineagePath is where a model's sidecar lives: next to the primary
// weight file.
func lineagePath(primary string) string { return primary + ".lineage.json" }

// archivePath is where generation gen's weights of one member file are
// kept once superseded — the restore source for rollback.
func archivePath(member string, gen uint64) string {
	return fmt.Sprintf("%s.gen%04d", member, gen)
}

// loadLineage reads an existing sidecar; a missing file returns nil
// (fresh model, the caller seeds generation 0).
func loadLineage(path string) (*lineageState, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("learner: %s: %w", path, err)
	}
	var st lineageState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("learner: %s: %w", path, err)
	}
	return &st, nil
}

// persist writes the sidecar atomically (temp + rename), so a crash
// mid-write never leaves a torn lineage behind.
func (st *lineageState) persist(path string) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("learner: %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("learner: %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("learner: %s: %w", path, err)
	}
	return nil
}

// nextGen is the generation number the next entry will carry.
func (st *lineageState) nextGen() uint64 {
	if len(st.Entries) == 0 {
		return 0
	}
	return st.Entries[len(st.Entries)-1].Gen + 1
}

// entryByGen finds the entry that created generation gen.
func (st *lineageState) entryByGen(gen uint64) *serveapi.LineageEntry {
	for i := range st.Entries {
		if st.Entries[i].Gen == gen {
			return &st.Entries[i]
		}
	}
	return nil
}

// trainedRows reconstructs how many captured rows the live weights
// have already consumed — what restart resume needs so a restarted
// learner doesn't immediately re-trigger on old records.
func (st *lineageState) trainedRows() int {
	rows := 0
	for _, e := range st.Entries {
		if e.Verdict == serveapi.VerdictPublished && e.TrainRecords+e.HoldoutRecords > rows {
			rows = e.TrainRecords + e.HoldoutRecords
		}
	}
	return rows
}

// filesChecksum matches the serve registry's member-set checksum (the
// concatenation of each file's sha256), hex-encoded — so the checksum
// a lineage entry records is the same string /v1/models shows once the
// registry reloads those bytes.
func filesChecksum(paths []string) (string, error) {
	h := sha256.New()
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		s := sha256.Sum256(b)
		h.Write(s[:])
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// copyFile copies src to dst (overwriting), used for generation
// archives and rollback restores.
func copyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
