package learner

import (
	"errors"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/h5"
	"repro/internal/nn"
	"repro/internal/serveapi"
	"repro/internal/tensor"
)

// The tests run in-package so they can reach the trainFn seam (managed
// candidates come from a stub instead of a real Fit run) and assert on
// the lineage state directly; the HTTP surface is covered by the serve
// package's integration tests.

const (
	dim     = 4  // in == out so a shape-preserving NaN net passes the gate's shape check
	records = 24 // 24 * 0.75 = 18 train / 6 holdout with the default split
)

func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
}

func mlp(seed int64, widths ...int) *nn.Network {
	net := nn.NewNetwork(seed)
	for i := 0; i < len(widths)-1; i++ {
		net.Add(net.NewDense(widths[i], widths[i+1]))
		if i < len(widths)-2 {
			net.Add(nn.NewActivation(nn.ActTanh))
		}
	}
	return net
}

// nanNet is a shape-preserving network whose every prediction is NaN —
// the poisoned candidate the gate must reject.
func nanNet() *nn.Network {
	net := nn.NewNetwork(0)
	net.Add(nn.NewAffine(math.NaN(), 0))
	return net
}

// writeCaptures appends n capture records to the sharded database at
// base, with inputs drawn from rng(seed) and outputs produced by
// teacher — the same row-shaped ([1, k]) records the serve ingest and
// the loadgen capture leg write.
func writeCaptures(t *testing.T, base, group string, teacher *nn.Network, n int, seed int64) {
	t.Helper()
	w, err := h5.NewShardWriter(base, 0, h5.SampleRecords)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		in := make([]float64, dim)
		for j := range in {
			in[j] = rng.Float64()
		}
		x, err := tensor.FromSlice(in, 1, dim)
		if err != nil {
			t.Fatal(err)
		}
		y, err := teacher.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := w.BeginSet()
		if err != nil {
			t.Fatal(err)
		}
		if err := h5.AppendSample(sw, group, x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// harness is one managed model under test: a live weight file, a
// capture database, a reload counter standing in for the registry, and
// a loop-less controller driven by CheckNow.
type harness struct {
	path    string // live weight file
	base    string // capture database base path
	reloads int
	ctl     *Controller
	m       *managed
}

func newHarness(t *testing.T, live *nn.Network) *harness {
	t.Helper()
	dir := t.TempDir()
	h := &harness{
		path: filepath.Join(dir, "m.gmod"),
		base: filepath.Join(dir, "caps.gh5"),
	}
	if err := live.Save(h.path); err != nil {
		t.Fatal(err)
	}
	pol := Policy{
		Model:        "m",
		Paths:        []string{h.path},
		RetrainEvery: 8,
		MinRecords:   8,
		Train:        nn.TrainConfig{Epochs: 2, BatchSize: 4},
		Snapshot:     func() (*h5.File, error) { return h5.OpenShards(h.base) },
		Reload:       func() error { h.reloads++; return nil },
	}
	ctl, err := New(Config{Interval: -1, Logger: discardLog()}, pol)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Close)
	h.ctl = ctl
	h.m = ctl.models["m"]
	return h
}

func (h *harness) entries() []serveapi.LineageEntry {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return append([]serveapi.LineageEntry(nil), h.m.state.Entries...)
}

func (h *harness) liveGen() uint64 {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.m.state.LiveGen
}

// TestGatePublishesBetterCandidate drives the full happy path: a bad
// live model, captures recorded from a better teacher, and a candidate
// (the teacher itself, via the seam) that beats the published error —
// so the gate publishes, the parent is archived, and the lineage
// records the new generation.
func TestGatePublishesBetterCandidate(t *testing.T) {
	live := mlp(1, dim, 6, dim)
	teacher := mlp(2, dim, 6, dim)
	h := newHarness(t, live)

	// Below both MinRecords and RetrainEvery: no retrain.
	writeCaptures(t, h.base, "m", teacher, 4, 10)
	h.ctl.CheckNow()
	if got := h.entries(); len(got) != 1 {
		t.Fatalf("retrain triggered on %d records below the floor: %+v", 4, got)
	}

	trained := false
	h.m.trainFn = func(member int, path string, train *nn.Dataset, cfg nn.TrainConfig) (*nn.Network, error) {
		trained = true
		if path != h.path {
			t.Errorf("trainFn got path %q, want %q", path, h.path)
		}
		return teacher, nil
	}
	writeCaptures(t, h.base, "m", teacher, records-4, 11)
	h.ctl.CheckNow()

	if !trained {
		t.Fatal("trigger did not fire with pending records above RetrainEvery")
	}
	ents := h.entries()
	if len(ents) != 2 {
		t.Fatalf("want seed + published entries, got %+v", ents)
	}
	pub := ents[1]
	if pub.Verdict != serveapi.VerdictPublished {
		t.Fatalf("verdict %q (%s), want published", pub.Verdict, pub.Reason)
	}
	if pub.Gen != 1 || pub.ParentGen != 0 {
		t.Fatalf("generation chain gen=%d parent=%d, want 1 and 0", pub.Gen, pub.ParentGen)
	}
	if pub.ParentChecksum != ents[0].Checksum {
		t.Fatalf("parent checksum %q does not match seed checksum %q", pub.ParentChecksum, ents[0].Checksum)
	}
	if pub.TrainRecords != 18 || pub.HoldoutRecords != 6 {
		t.Fatalf("split %d/%d, want 18/6", pub.TrainRecords, pub.HoldoutRecords)
	}
	if pub.CandidateErr > 1e-9 {
		t.Fatalf("teacher candidate should be exact on its own captures, got rel err %g", pub.CandidateErr)
	}
	if h.liveGen() != 1 {
		t.Fatalf("live generation %d, want 1", h.liveGen())
	}
	if h.reloads != 1 {
		t.Fatalf("registry reloaded %d times, want 1", h.reloads)
	}
	// The candidate's bytes are live and match the recorded checksum.
	sum, err := filesChecksum([]string{h.path})
	if err != nil {
		t.Fatal(err)
	}
	if sum != pub.Checksum {
		t.Fatalf("on-disk checksum %q != published entry checksum %q", sum, pub.Checksum)
	}
	// The parent generation is archived for rollback.
	if _, err := os.Stat(archivePath(h.path, 0)); err != nil {
		t.Fatalf("parent archive missing: %v", err)
	}
	// The sidecar survived and agrees.
	st, err := loadLineage(lineagePath(h.path))
	if err != nil || st == nil {
		t.Fatalf("sidecar: %v, %+v", err, st)
	}
	if st.LiveGen != 1 || len(st.Entries) != 2 {
		t.Fatalf("sidecar live_gen=%d entries=%d, want 1 and 2", st.LiveGen, len(st.Entries))
	}
}

// TestGateRejectsWorseCandidate: captures record the live model's own
// outputs (published error ~0), and the candidate is an unrelated
// random net — the gate must reject it and leave the live weights
// untouched.
func TestGateRejectsWorseCandidate(t *testing.T) {
	live := mlp(3, dim, 6, dim)
	h := newHarness(t, live)
	seedSum := h.entries()[0].Checksum

	h.m.trainFn = func(int, string, *nn.Dataset, nn.TrainConfig) (*nn.Network, error) {
		return mlp(99, dim, 6, dim), nil
	}
	writeCaptures(t, h.base, "m", live, records, 20)
	h.ctl.CheckNow()

	ents := h.entries()
	if len(ents) != 2 || ents[1].Verdict != serveapi.VerdictRejected {
		t.Fatalf("want one rejected entry, got %+v", ents)
	}
	if !strings.Contains(ents[1].Reason, "gate failed") {
		t.Fatalf("rejection reason %q does not name the gate", ents[1].Reason)
	}
	if h.liveGen() != 0 {
		t.Fatalf("live generation moved to %d on a rejected candidate", h.liveGen())
	}
	if h.reloads != 0 {
		t.Fatal("registry reloaded for a rejected candidate")
	}
	sum, err := filesChecksum([]string{h.path})
	if err != nil {
		t.Fatal(err)
	}
	if sum != seedSum {
		t.Fatal("rejected candidate modified the live weight file")
	}
	// The consumed snapshot must not re-trigger without fresh captures.
	h.ctl.CheckNow()
	if got := h.entries(); len(got) != 2 {
		t.Fatalf("rejected snapshot re-triggered a retrain: %+v", got)
	}
}

// TestGateRejectsNaNCandidate: a candidate that predicts NaN anywhere
// on the holdout is rejected regardless of the published error.
func TestGateRejectsNaNCandidate(t *testing.T) {
	live := mlp(4, dim, 6, dim)
	h := newHarness(t, live)
	h.m.trainFn = func(int, string, *nn.Dataset, nn.TrainConfig) (*nn.Network, error) {
		return nanNet(), nil
	}
	writeCaptures(t, h.base, "m", live, records, 30)
	h.ctl.CheckNow()

	ents := h.entries()
	if len(ents) != 2 || ents[1].Verdict != serveapi.VerdictRejected {
		t.Fatalf("want one rejected entry, got %+v", ents)
	}
	if !strings.Contains(ents[1].Reason, "NaN") {
		t.Fatalf("rejection reason %q does not name the NaN poisoning", ents[1].Reason)
	}
	if ents[1].CandidateErr != -1 {
		t.Fatalf("NaN candidate error should sanitize to -1 in the lineage, got %g", ents[1].CandidateErr)
	}
	if h.liveGen() != 0 || h.reloads != 0 {
		t.Fatal("NaN candidate reached publication")
	}
}

// TestRealFitWarmStartPublishes exercises the default training path (no
// seam): warm-starting from the live weights and fitting toward the
// model's own captured outputs keeps the holdout error ~0, so the
// candidate publishes.
func TestRealFitWarmStartPublishes(t *testing.T) {
	live := mlp(5, dim, 6, dim)
	h := newHarness(t, live)
	writeCaptures(t, h.base, "m", live, records, 40)
	h.ctl.CheckNow()

	ents := h.entries()
	if len(ents) != 2 || ents[1].Verdict != serveapi.VerdictPublished {
		t.Fatalf("warm-started self-distillation should publish, got %+v", ents)
	}
	if h.liveGen() != 1 || h.reloads != 1 {
		t.Fatalf("live gen %d, reloads %d — want 1 and 1", h.liveGen(), h.reloads)
	}
}

// TestRollbackRestoresParent publishes a new generation, rolls it back,
// and checks the parent bytes, the lineage, and the no-parent refusal
// at the seed.
func TestRollbackRestoresParent(t *testing.T) {
	live := mlp(6, dim, 6, dim)
	teacher := mlp(7, dim, 6, dim)
	h := newHarness(t, live)
	seedSum := h.entries()[0].Checksum
	h.m.trainFn = func(int, string, *nn.Dataset, nn.TrainConfig) (*nn.Network, error) {
		return teacher, nil
	}
	writeCaptures(t, h.base, "m", teacher, records, 50)
	h.ctl.CheckNow()
	if h.liveGen() != 1 {
		t.Fatalf("publish precondition failed: live gen %d, lineage %+v", h.liveGen(), h.entries())
	}

	resp, err := h.ctl.Rollback("m")
	if err != nil {
		t.Fatal(err)
	}
	if resp.RestoredGen != 0 || resp.Generation != 2 || resp.Model != "m" {
		t.Fatalf("rollback response %+v, want restored_gen 0 entry gen 2", resp)
	}
	if h.liveGen() != 0 {
		t.Fatalf("live generation %d after rollback, want 0", h.liveGen())
	}
	sum, err := filesChecksum([]string{h.path})
	if err != nil {
		t.Fatal(err)
	}
	if sum != seedSum || resp.Checksum != seedSum {
		t.Fatalf("rollback did not restore the seed bytes: disk %q resp %q want %q", sum, resp.Checksum, seedSum)
	}
	if h.reloads != 2 {
		t.Fatalf("registry reloaded %d times, want 2 (publish + rollback)", h.reloads)
	}
	ents := h.entries()
	if last := ents[len(ents)-1]; last.Verdict != serveapi.VerdictRollback || last.ParentGen != 0 {
		t.Fatalf("rollback lineage entry %+v", last)
	}

	// The seed has no parent.
	if _, err := h.ctl.Rollback("m"); !errors.Is(err, ErrNoParent) {
		t.Fatalf("second rollback: %v, want ErrNoParent", err)
	}
	if _, err := h.ctl.Rollback("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model rollback: %v, want ErrUnknownModel", err)
	}
}

// TestResumeFromSidecar restarts the controller over an existing
// sidecar: the live generation and consumed-row accounting must
// survive, so a restart does not re-trigger on already-trained records.
func TestResumeFromSidecar(t *testing.T) {
	live := mlp(8, dim, 6, dim)
	teacher := mlp(9, dim, 6, dim)
	h := newHarness(t, live)
	h.m.trainFn = func(int, string, *nn.Dataset, nn.TrainConfig) (*nn.Network, error) {
		return teacher, nil
	}
	writeCaptures(t, h.base, "m", teacher, records, 60)
	h.ctl.CheckNow()
	if h.liveGen() != 1 {
		t.Fatalf("publish precondition failed: %+v", h.entries())
	}

	pol := h.m.pol
	pol.Snapshot = func() (*h5.File, error) { return h5.OpenShards(h.base) }
	retrained := false
	ctl2, err := New(Config{Interval: -1, Logger: discardLog()}, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl2.Close()
	ctl2.models["m"].trainFn = func(int, string, *nn.Dataset, nn.TrainConfig) (*nn.Network, error) {
		retrained = true
		return teacher, nil
	}
	if got := ctl2.models["m"].state.LiveGen; got != 1 {
		t.Fatalf("restarted controller resumed at generation %d, want 1", got)
	}
	ctl2.CheckNow()
	if retrained {
		t.Fatal("restart re-triggered a retrain on already-consumed captures")
	}
}

// TestCloseAbortsInFlightTraining is the drain guarantee: Close during
// a retrain cancels training at the next Stop poll, the interrupted
// candidate is never gated or published, and no lineage entry is
// written for it.
func TestCloseAbortsInFlightTraining(t *testing.T) {
	live := mlp(10, dim, 6, dim)
	h := newHarness(t, live)
	started := make(chan struct{})
	h.m.trainFn = func(_ int, _ string, _ *nn.Dataset, cfg nn.TrainConfig) (*nn.Network, error) {
		close(started)
		for !cfg.Stop() {
			time.Sleep(time.Millisecond)
		}
		return nil, nn.ErrTrainingStopped
	}
	writeCaptures(t, h.base, "m", live, records, 70)

	done := make(chan struct{})
	go func() {
		h.ctl.CheckNow()
		close(done)
	}()
	<-started
	h.ctl.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("retrain did not abort after Close")
	}
	if got := h.entries(); len(got) != 1 {
		t.Fatalf("aborted retrain left lineage entries: %+v", got)
	}
	if h.liveGen() != 0 || h.reloads != 0 {
		t.Fatal("aborted retrain published a candidate")
	}
}

// TestAnnotateAndSnapshot checks the read-side views the HTTP layer
// serves: /v1/models decoration and the /v1/stats learner snapshot.
func TestAnnotateAndSnapshot(t *testing.T) {
	live := mlp(11, dim, 6, dim)
	teacher := mlp(12, dim, 6, dim)
	h := newHarness(t, live)
	h.m.trainFn = func(int, string, *nn.Dataset, nn.TrainConfig) (*nn.Network, error) {
		return teacher, nil
	}
	writeCaptures(t, h.base, "m", teacher, records, 80)
	h.ctl.CheckNow()

	infos := []serveapi.ModelInfo{{Name: "m"}, {Name: "other"}}
	h.ctl.Annotate(infos)
	if infos[0].LearnerGeneration != 1 || len(infos[0].Lineage) != 2 {
		t.Fatalf("annotated info %+v, want generation 1 with 2 lineage entries", infos[0])
	}
	if infos[1].LearnerGeneration != 0 || infos[1].Lineage != nil {
		t.Fatalf("unmanaged model was annotated: %+v", infos[1])
	}

	snaps := h.ctl.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("want one learner snapshot, got %+v", snaps)
	}
	s := snaps[0]
	if s.Model != "m" || s.Generation != 1 || s.Retrains != 1 || s.Published != 1 ||
		s.Rejected != 0 || s.LastVerdict != serveapi.VerdictPublished {
		t.Fatalf("learner snapshot %+v", s)
	}
}
