package learner

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// The shadow gate: a candidate is evaluated against the currently
// published model on the held-out slice of the capture snapshot —
// records neither saw during training — and only publishes when it is
// at least as good, up to an additive relative-error slack (Rtol).
// The slack is additive, not multiplicative, because the published
// model's error on its own captured outputs can legitimately be ~0
// (captures record what the live model answered), where any
// multiplicative margin would collapse to zero and no candidate could
// ever pass.

// relErr is the gate's error measure: the mean over holdout rows of
// ||pred − y||₂ / max(||y||₂, eps). Ensembles evaluate as served — the
// member-mean prediction — so a set is gated all-or-nothing on the
// quantity clients actually receive. Any non-finite prediction
// poisons the result to NaN, which the gate rejects.
func relErr(nets []*nn.Network, holdout *nn.Dataset) (float64, error) {
	if len(nets) == 0 {
		return 0, fmt.Errorf("learner: no networks to evaluate")
	}
	rows := holdout.Len()
	y := holdout.Y.Contiguous().Data()
	cols := len(y) / rows
	mean := make([]float64, len(y))
	for _, net := range nets {
		pred, err := net.Forward(holdout.X)
		if err != nil {
			return 0, fmt.Errorf("learner: gate forward: %w", err)
		}
		pd := pred.Contiguous().Data()
		if len(pd) != len(y) {
			return 0, fmt.Errorf("learner: gate shape mismatch: model yields %d outputs, holdout has %d", len(pd), len(y))
		}
		for i, v := range pd {
			mean[i] += v
		}
	}
	inv := 1 / float64(len(nets))
	const eps = 1e-12
	var sum float64
	for r := 0; r < rows; r++ {
		var num, den float64
		for c := 0; c < cols; c++ {
			p := mean[r*cols+c] * inv
			t := y[r*cols+c]
			d := p - t
			num += d * d
			den += t * t
		}
		sum += math.Sqrt(num) / math.Max(math.Sqrt(den), eps)
	}
	out := sum / float64(rows)
	if math.IsInf(out, 0) {
		out = math.NaN()
	}
	return out, nil
}

// stackRecords concatenates per-append capture records into one
// [rows, cols] matrix, treating a rank-1 record as a single row. This
// is the record-paired twin of h5.File.Read: the caller truncates the
// record lists to equal length first, so a snapshot taken mid-set
// (inputs appended, outputs still buffered) never yields an unpaired
// trailing sample.
func stackRecords(recs []*tensor.Tensor) (*tensor.Tensor, error) {
	rows, cols := 0, 0
	for i, r := range recs {
		rr, rc := recordDims(r)
		if i == 0 {
			cols = rc
		} else if rc != cols {
			return nil, fmt.Errorf("learner: capture records disagree on width: %d vs %d", rc, cols)
		}
		rows += rr
	}
	out := tensor.New(rows, cols)
	d := out.Data()
	at := 0
	for _, r := range recs {
		rd := r.Contiguous().Data()
		copy(d[at:at+len(rd)], rd)
		at += len(rd)
	}
	return out, nil
}

// recordDims flattens one capture record to row-major [rows, cols].
func recordDims(t *tensor.Tensor) (rows, cols int) {
	n := len(t.Contiguous().Data())
	if t.Rank() <= 1 {
		return 1, n
	}
	rows = t.Dim(0)
	if rows == 0 {
		return 0, 0
	}
	return rows, n / rows
}
