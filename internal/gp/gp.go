// Package gp implements Gaussian-process regression: the surrogate model
// inside Bayesian optimization (the paper uses the Adaptive Experimentation
// platform; this is the same mathematics — an RBF-kernel GP with Cholesky
// solves and marginal-likelihood-based hyperparameter selection).
package gp

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite covariance function on R^d.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// RBF is the squared-exponential kernel with signal variance Sigma2 and
// length scale Length.
type RBF struct {
	Sigma2 float64
	Length float64
}

// Eval computes sigma^2 * exp(-||a-b||^2 / (2 l^2)).
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return k.Sigma2 * math.Exp(-d2/(2*k.Length*k.Length))
}

// Name identifies the kernel.
func (k RBF) Name() string { return "rbf" }

// Matern52 is the Matérn-5/2 kernel, the default in most BO systems.
type Matern52 struct {
	Sigma2 float64
	Length float64
}

// Eval computes the Matérn-5/2 covariance.
func (k Matern52) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	r := math.Sqrt(d2) / k.Length
	s5r := math.Sqrt(5) * r
	return k.Sigma2 * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

// Name identifies the kernel.
func (k Matern52) Name() string { return "matern52" }

// GP is a fitted Gaussian-process regressor. Construct with Fit.
type GP struct {
	kernel Kernel
	noise  float64

	x     [][]float64
	alpha []float64 // K^{-1} (y - mean)
	chol  [][]float64
	mean  float64
	std   float64
}

// Fit conditions a GP with the given kernel and noise variance on the
// observations. Targets are standardized internally.
func Fit(kernel Kernel, noise float64, x [][]float64, y []float64) (*GP, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("gp: need matching non-empty x (%d) and y (%d)", n, len(y))
	}
	if noise <= 0 {
		return nil, fmt.Errorf("gp: noise variance must be positive, got %g", noise)
	}
	d := len(x[0])
	for i, xi := range x {
		if len(xi) != d {
			return nil, fmt.Errorf("gp: inconsistent input dimension at %d: %d vs %d", i, len(xi), d)
		}
	}
	g := &GP{kernel: kernel, noise: noise, x: x}
	// Standardize targets for numerical stability.
	for _, v := range y {
		g.mean += v
	}
	g.mean /= float64(n)
	for _, v := range y {
		dv := v - g.mean
		g.std += dv * dv
	}
	g.std = math.Sqrt(g.std / float64(n))
	if g.std < 1e-12 {
		g.std = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - g.mean) / g.std
	}

	// K + noise I, Cholesky, alpha = K^{-1} ys.
	km := make([][]float64, n)
	for i := range km {
		km[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := kernel.Eval(x[i], x[j])
			km[i][j] = v
			km[j][i] = v
		}
		km[i][i] += noise
	}
	chol, err := cholesky(km)
	if err != nil {
		return nil, fmt.Errorf("gp: %w", err)
	}
	g.chol = chol
	g.alpha = cholSolve(chol, ys)
	return g, nil
}

// Predict returns the posterior mean and variance at point p.
func (g *GP) Predict(p []float64) (mean, variance float64) {
	n := len(g.x)
	ks := make([]float64, n)
	for i := range ks {
		ks[i] = g.kernel.Eval(g.x[i], p)
	}
	var mu float64
	for i := range ks {
		mu += ks[i] * g.alpha[i]
	}
	// v = L^{-1} k_s; var = k(p,p) - v.v
	v := forwardSolve(g.chol, ks)
	var vv float64
	for _, x := range v {
		vv += x * x
	}
	variance = g.kernel.Eval(p, p) + g.noise - vv
	if variance < 0 {
		variance = 0
	}
	return g.mean + g.std*mu, g.std * g.std * variance
}

// LogMarginalLikelihood returns the LML of the fitted data (up to the
// standardization), used to select kernel hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 {
	n := len(g.x)
	// ys^T alpha term.
	ys := make([]float64, n)
	// Recover standardized targets from alpha: ys = K alpha; cheaper to
	// store? Recompute via chol: ys = L L^T alpha.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := i; j < n; j++ {
			s += g.chol[j][i] * g.alpha[j]
		}
		tmp[i] = s
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j <= i; j++ {
			s += g.chol[i][j] * tmp[j]
		}
		ys[i] = s
	}
	var fit float64
	for i := range ys {
		fit += ys[i] * g.alpha[i]
	}
	var logDet float64
	for i := 0; i < n; i++ {
		logDet += math.Log(g.chol[i][i])
	}
	return -0.5*fit - logDet - 0.5*float64(n)*math.Log(2*math.Pi)
}

// FitAuto selects RBF hyperparameters (length scale and noise) from a
// small grid by maximizing the log marginal likelihood, then returns the
// best fitted GP. Inputs are assumed roughly unit-scaled (BO operates on
// the unit hypercube).
func FitAuto(x [][]float64, y []float64) (*GP, error) {
	lengths := []float64{0.05, 0.1, 0.2, 0.5, 1.0, 2.0}
	noises := []float64{1e-6, 1e-4, 1e-2}
	var best *GP
	bestLML := math.Inf(-1)
	var lastErr error
	for _, l := range lengths {
		for _, nz := range noises {
			g, err := Fit(Matern52{Sigma2: 1, Length: l}, nz, x, y)
			if err != nil {
				lastErr = err
				continue
			}
			if lml := g.LogMarginalLikelihood(); lml > bestLML {
				bestLML = lml
				best = g
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: auto fit failed: %w", lastErr)
	}
	return best, nil
}

// cholesky returns the lower-triangular factor of a symmetric positive
// definite matrix, adding progressive jitter on failure.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	for _, jitter := range []float64{0, 1e-10, 1e-8, 1e-6, 1e-4} {
		l := make([][]float64, n)
		for i := range l {
			l[i] = make([]float64, n)
		}
		ok := true
		for i := 0; i < n && ok; i++ {
			for j := 0; j <= i; j++ {
				s := a[i][j]
				if i == j {
					s += jitter
				}
				for k := 0; k < j; k++ {
					s -= l[i][k] * l[j][k]
				}
				if i == j {
					if s <= 0 {
						ok = false
						break
					}
					l[i][j] = math.Sqrt(s)
				} else {
					l[i][j] = s / l[j][j]
				}
			}
		}
		if ok {
			return l, nil
		}
	}
	return nil, fmt.Errorf("matrix is not positive definite even with jitter")
}

// forwardSolve solves L z = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l[i][j] * z[j]
		}
		z[i] = s / l[i][i]
	}
	return z
}

// backSolve solves L^T x = z for lower-triangular L.
func backSolve(l [][]float64, z []float64) []float64 {
	n := len(z)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < n; j++ {
			s -= l[j][i] * x[j]
		}
		x[i] = s / l[i][i]
	}
	return x
}

// cholSolve solves (L L^T) x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}
