package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit(RBF{1, 1}, 1e-6, nil, nil); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := Fit(RBF{1, 1}, 1e-6, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := Fit(RBF{1, 1}, 0, [][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("want error for zero noise")
	}
	if _, err := Fit(RBF{1, 1}, 1e-6, [][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("want error for inconsistent dims")
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = math.Sin(3 * xi[0])
	}
	g, err := Fit(RBF{Sigma2: 1, Length: 0.3}, 1e-8, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, xi := range x {
		mu, v := g.Predict(xi)
		if math.Abs(mu-y[i]) > 1e-3 {
			t.Errorf("point %d: predicted %g, want %g", i, mu, y[i])
		}
		if v < 0 {
			t.Errorf("negative variance %g", v)
		}
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.4}, {0.5}, {0.6}}
	y := []float64{1, 2, 1}
	g, err := Fit(Matern52{Sigma2: 1, Length: 0.1}, 1e-6, x, y)
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{5})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %g, far %g", vNear, vFar)
	}
}

func TestPredictionBetweenPoints(t *testing.T) {
	// A smooth function should be reconstructed between samples.
	var x [][]float64
	var y []float64
	for i := 0; i <= 10; i++ {
		v := float64(i) / 10
		x = append(x, []float64{v})
		y = append(y, v*v)
	}
	g, err := FitAuto(x, y)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.55})
	if math.Abs(mu-0.3025) > 0.05 {
		t.Fatalf("interpolation at 0.55: %g, want ~0.3025", mu)
	}
}

func TestFitAutoSelectsReasonableModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		x = append(x, p)
		y = append(y, math.Sin(4*p[0])+math.Cos(3*p[1]))
	}
	g, err := FitAuto(x, y)
	if err != nil {
		t.Fatal(err)
	}
	var se float64
	for i := range x {
		mu, _ := g.Predict(x[i])
		se += (mu - y[i]) * (mu - y[i])
	}
	if rmse := math.Sqrt(se / float64(len(x))); rmse > 0.2 {
		t.Fatalf("training RMSE too high: %g", rmse)
	}
}

func TestKernelProperties(t *testing.T) {
	kernels := []Kernel{RBF{Sigma2: 2, Length: 0.5}, Matern52{Sigma2: 2, Length: 0.5}}
	for _, k := range kernels {
		a, b := []float64{0.1, 0.2}, []float64{0.3, 0.9}
		if k.Eval(a, a) < k.Eval(a, b) {
			t.Errorf("%s: self-covariance must dominate", k.Name())
		}
		if math.Abs(k.Eval(a, b)-k.Eval(b, a)) > 1e-15 {
			t.Errorf("%s: kernel must be symmetric", k.Name())
		}
		if math.Abs(k.Eval(a, a)-2) > 1e-9 {
			t.Errorf("%s: k(a,a) = %g, want sigma2 = 2", k.Name(), k.Eval(a, a))
		}
	}
}

func TestDegenerateConstantTargets(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}}
	y := []float64{3, 3, 3}
	g, err := Fit(RBF{1, 0.3}, 1e-6, x, y)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.25})
	if math.Abs(mu-3) > 1e-6 {
		t.Fatalf("constant fit = %g, want 3", mu)
	}
}

func TestDuplicatePointsNeedJitter(t *testing.T) {
	// Duplicate inputs make K singular without noise/jitter; Fit must
	// still succeed thanks to the noise term.
	x := [][]float64{{0.5}, {0.5}, {0.5}}
	y := []float64{1, 1.1, 0.9}
	if _, err := Fit(RBF{1, 0.3}, 1e-6, x, y); err != nil {
		t.Fatalf("duplicate points: %v", err)
	}
}

// Property: the GP posterior mean at a training point approaches the
// target as noise shrinks, for random 1-D datasets.
func TestPropPosteriorInterpolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		var x [][]float64
		var y []float64
		used := map[int]bool{}
		for len(x) < n {
			// Distinct grid points avoid near-singular kernels.
			gi := rng.Intn(50)
			if used[gi] {
				continue
			}
			used[gi] = true
			x = append(x, []float64{float64(gi) / 50})
			y = append(y, rng.NormFloat64())
		}
		g, err := Fit(RBF{Sigma2: 1, Length: 0.05}, 1e-9, x, y)
		if err != nil {
			return false
		}
		for i := range x {
			mu, _ := g.Predict(x[i])
			if math.Abs(mu-y[i]) > 0.05*(1+math.Abs(y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// Data generated from a smooth function: a sensible length scale
	// should beat a wildly wrong one.
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		v := float64(i) / 20
		x = append(x, []float64{v})
		y = append(y, math.Sin(2*math.Pi*v))
	}
	good, err := Fit(RBF{1, 0.2}, 1e-4, x, y)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(RBF{1, 1e-3}, 1e-4, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Fatalf("LML should prefer the smooth fit: good %g, bad %g",
			good.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}
