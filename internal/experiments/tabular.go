package experiments

import (
	"fmt"
	"math"
	"path/filepath"

	hpacml "repro"

	"repro/internal/benchmarks/common"
	"repro/internal/bo"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tabularApp abstracts the three MLP benchmarks (MiniBUDE, Binomial
// Options, Bonds): per-sample feature rows in, one QoI row out.
type tabularApp interface {
	// Reset re-randomizes the inputs with the given seed.
	Reset(seed int64)
	// RunAccurate executes the accurate path over the whole batch.
	RunAccurate()
	// Region builds the annotated HPAC-ML region around the app's
	// buffers, threading any extra options (capture tuning, injected
	// sinks/engines) through. The returned predicate pointer toggles
	// inference.
	Region(modelPath, dbPath string, extra ...hpacml.Option) (*hpacml.Region, *bool, error)
	// Outputs returns the QoI buffer (aliased).
	Outputs() []float64
	// InFeatures and OutFeatures size the surrogate's I/O.
	InFeatures() int
	OutFeatures() int
}

// tabularHarness implements Harness for any tabularApp.
type tabularHarness struct {
	info      common.Info
	app       tabularApp
	arch      *bo.Space
	paperArch []string
	metric    common.Metric
	buildNet  func(arch map[string]bo.Value, dropout float64, inF, outF int, seed int64) (*nn.Network, error)
}

func (h *tabularHarness) Info() common.Info        { return h.info }
func (h *tabularHarness) ArchSpace() *bo.Space     { return h.arch }
func (h *tabularHarness) PaperArchSpace() []string { return h.paperArch }

// Collect runs the region in collection mode over fresh input batches.
// Even when a run errors, the region is closed through the report path
// so already-captured records are flushed, never silently truncated.
func (h *tabularHarness) Collect(dbPath string, opt Options) (CollectReport, error) {
	region, useModel, err := h.app.Region("", dbPath, hpacml.WithCapture(opt.Capture))
	if err != nil {
		return CollectReport{}, err
	}
	defer region.Close()
	*useModel = false
	var runErr error
	for run := 0; run < opt.CollectRuns; run++ {
		h.app.Reset(opt.Seed + int64(run))
		if err := region.Execute(func() error { h.app.RunAccurate(); return nil }); err != nil {
			runErr = fmt.Errorf("%s collect run %d: %w", h.info.Name, run, err)
			break
		}
	}
	return collectReport(region, runErr)
}

// CollectOverhead measures Table III for this benchmark.
func (h *tabularHarness) CollectOverhead(dir string, opt Options) (CollectStats, error) {
	h.app.Reset(opt.Seed)
	plain, err := timeIt(opt.EvalRuns, func() error { h.app.RunAccurate(); return nil })
	if err != nil {
		return CollectStats{}, err
	}
	dbPath := filepath.Join(dir, h.info.Name+"-overhead.gh5")
	region, useModel, err := h.app.Region("", dbPath)
	if err != nil {
		return CollectStats{}, err
	}
	defer region.Close()
	*useModel = false
	collect, err := timeIt(opt.EvalRuns, func() error {
		return region.Execute(func() error { h.app.RunAccurate(); return nil })
	})
	if err != nil {
		return CollectStats{}, err
	}
	if err := region.Close(); err != nil {
		return CollectStats{}, err
	}
	mb, err := fileSizeMB(dbPath)
	if err != nil {
		return CollectStats{}, err
	}
	return CollectStats{
		Benchmark:   h.info.Name,
		PlainSec:    plain.Seconds(),
		CollectSec:  collect.Seconds(),
		DataSizeMB:  mb,
		OverheadX:   collect.Seconds() / plain.Seconds(),
		Invocations: opt.EvalRuns + 1,
	}, nil
}

// Train fits an MLP per the architecture assignment.
func (h *tabularHarness) Train(dbPath, modelPath string, arch, hyper map[string]bo.Value, opt Options) (float64, error) {
	ds, err := loadDataset(dbPath, h.info.Name)
	if err != nil {
		return 0, err
	}
	net, err := h.buildNet(arch, dropoutOf(hyper), h.app.InFeatures(), h.app.OutFeatures(), opt.Seed)
	if err != nil {
		return 0, err
	}
	if opt.Normalize {
		if net, err = standardizeNet(net, ds, opt.Seed); err != nil {
			return 0, err
		}
	}
	hist, err := net.Fit(ds, nil, trainCfg(hyper, opt))
	if err != nil {
		return 0, err
	}
	if err := net.Save(modelPath); err != nil {
		return 0, err
	}
	return hist.BestVal, nil
}

// Evaluate measures end-to-end accurate vs surrogate runtime and QoI
// error on a held-out input batch.
func (h *tabularHarness) Evaluate(modelPath string, opt Options) (EvalResult, error) {
	h.app.Reset(opt.Seed + 101) // test inputs unseen during training
	accurate, err := timeIt(opt.EvalRuns, func() error { h.app.RunAccurate(); return nil })
	if err != nil {
		return EvalResult{}, err
	}
	ref := append([]float64(nil), h.app.Outputs()...)

	region, useModel, err := h.app.Region(modelPath, "")
	if err != nil {
		return EvalResult{}, err
	}
	defer region.Close()
	*useModel = true
	hpacml.ClearModelCache()
	surrogate, err := timeIt(opt.EvalRuns, func() error { return region.Execute(nil) })
	if err != nil {
		return EvalResult{}, err
	}
	pred := append([]float64(nil), h.app.Outputs()...)

	var qoiErr float64
	if h.metric == common.MetricMAPE {
		qoiErr, err = common.MAPE(pred, ref)
	} else {
		qoiErr, err = common.RMSE(pred, ref)
	}
	if err != nil {
		return EvalResult{}, err
	}
	params, err := modelParams(modelPath)
	if err != nil {
		return EvalResult{}, err
	}
	st := region.Stats()
	inv := st.Inferences
	if inv == 0 {
		inv = 1
	}
	res := EvalResult{
		Benchmark:       h.info.Name,
		Speedup:         accurate.Seconds() / surrogate.Seconds(),
		Error:           qoiErr,
		Params:          params,
		LatencySec:      st.Inference.Seconds() / float64(inv),
		ToTensorSec:     st.ToTensor.Seconds() / float64(inv),
		InferenceSec:    st.Inference.Seconds() / float64(inv),
		FromTensorSec:   st.FromTensor.Seconds() / float64(inv),
		Fallbacks:       st.Fallbacks,
		RemoteInference: st.RemoteInference,
		TrustedRows:     st.TrustedRows,
		UncertainRows:   st.UncertainRows,
		OutOfDomainRows: st.OutOfDomainRows,
		CaptureDrops:    st.CaptureDrops,
		CaptureFlushes:  st.CaptureFlushes,
		RemoteCaptures:  st.RemoteCaptures,
	}
	return res, checkFinite(h.info.Name, res.Speedup, res.Error)
}

// standardizeNet sandwiches net between fixed per-feature affine layers
// fitted on the training set: inputs are standardized to zero mean and
// unit variance before the first layer, outputs are mapped back to raw
// scale after the last. The affine layers carry no trainable parameters
// (they are architecture, like a TorchScript archive's preprocessing),
// so Fit optimizes the same raw-space loss while the hidden layers see
// conditioned activations — and the saved model stays self-contained,
// eating and emitting raw application data.
func standardizeNet(net *nn.Network, ds *nn.Dataset, seed int64) (*nn.Network, error) {
	inMean, inStd, err := featureStats(ds.X)
	if err != nil {
		return nil, err
	}
	outMean, outStd, err := featureStats(ds.Y)
	if err != nil {
		return nil, err
	}
	inScale := make([]float64, len(inMean))
	inShift := make([]float64, len(inMean))
	for j := range inMean {
		inScale[j] = 1 / inStd[j]
		inShift[j] = -inMean[j] / inStd[j]
	}
	wrapped := nn.NewNetwork(seed)
	wrapped.Add(nn.NewChannelAffine(1, inScale, inShift))
	for _, e := range net.Layers {
		wrapped.Add(e.Layer)
	}
	wrapped.Add(nn.NewChannelAffine(1, outStd, outMean))
	return wrapped, nil
}

// featureStats computes the per-column mean and standard deviation of a
// [rows, features] tensor. Constant columns get a stddev of 1 so the
// standardization stays invertible.
func featureStats(t *tensor.Tensor) (mean, std []float64, err error) {
	if t.Rank() != 2 || t.Dim(0) == 0 {
		return nil, nil, fmt.Errorf("feature stats want a non-empty [rows, features] tensor, got %v", t.Shape())
	}
	rows, cols := t.Dim(0), t.Dim(1)
	d := t.Contiguous().Data()
	mean = make([]float64, cols)
	std = make([]float64, cols)
	for i, v := range d {
		mean[i%cols] += v
	}
	for j := range mean {
		mean[j] /= float64(rows)
	}
	for i, v := range d {
		dv := v - mean[i%cols]
		std[i%cols] += dv * dv
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(rows))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return mean, std, nil
}

// buildMLP assembles hidden layers with ReLU activations and optional
// dropout before the output layer.
func buildMLP(hidden []int, dropout float64, inF, outF int, seed int64) *nn.Network {
	net := nn.NewNetwork(seed)
	prev := inF
	for _, hSize := range hidden {
		net.Add(net.NewDense(prev, hSize), nn.NewActivation(nn.ActReLU))
		prev = hSize
	}
	if dropout > 0 {
		net.Add(net.NewDropout(dropout))
	}
	net.Add(net.NewDense(prev, outF))
	return net
}
