package experiments

import (
	"fmt"

	hpacml "repro"

	"repro/internal/benchmarks/common"
	"repro/internal/benchmarks/minibude"
	"repro/internal/bo"
	"repro/internal/nn"
)

// budeApp adapts the MiniBUDE instance to the tabular harness.
type budeApp struct {
	in *minibude.Instance
}

func (a *budeApp) Reset(seed int64) { a.in.RandomizePoses(seed) }
func (a *budeApp) RunAccurate()     { a.in.ComputeEnergies() }
func (a *budeApp) Outputs() []float64 {
	return a.in.Energies
}
func (a *budeApp) InFeatures() int  { return 6 }
func (a *budeApp) OutFeatures() int { return 1 }

func (a *budeApp) Region(modelPath, dbPath string, extra ...hpacml.Option) (*hpacml.Region, *bool, error) {
	useModel := false
	opts := []hpacml.Option{
		hpacml.Directives(minibude.Directives(modelPath, dbPath)),
		hpacml.BindInt("NPOSES", a.in.Cfg.NumPoses),
		hpacml.BindArray("poses", a.in.Poses, a.in.Cfg.NumPoses, 6),
		hpacml.BindArray("energies", a.in.Energies, a.in.Cfg.NumPoses),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
	}
	opts = append(opts, extra...)
	r, err := hpacml.NewRegion("minibude", opts...)
	if err != nil {
		return nil, nil, err
	}
	return r, &useModel, nil
}

// NewMiniBUDE builds the MiniBUDE harness. The architecture space is the
// Table IV family (hidden-layer count, first hidden size, feature
// multiplier), scaled down at ScaleTest.
func NewMiniBUDE(scale Scale) Harness {
	cfg := minibude.DefaultConfig()
	if scale == ScaleTest {
		// Fewer poses than the campaign deck but the full interaction
		// density (the real bm1 deck has a 938-atom protein), keeping
		// the kernel compute-bound.
		cfg.NumPoses = 1024
		cfg.ProteinAtoms = 512
		cfg.LigandAtoms = 26
	}
	in, err := minibude.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: minibude config invalid: %v", err))
	}
	dirText := minibude.Directives("model.gmod", "data.gh5")
	loc, nDir := common.DirectiveStats(dirText)

	var hidden1 bo.Param
	var layers bo.Param
	if scale == ScaleFull {
		layers = bo.IntParam{Key: "layers", Min: 2, Max: 12}
		hidden1 = bo.ChoiceParam{Key: "hidden1", Choices: []int{64, 128, 256, 512, 1024, 2048, 4096}}
	} else {
		layers = bo.IntParam{Key: "layers", Min: 2, Max: 4}
		hidden1 = bo.ChoiceParam{Key: "hidden1", Choices: []int{16, 32, 64, 128}}
	}
	return &tabularHarness{
		info: common.Info{
			Name:        "minibude",
			Description: "Virtual screening in molecular docking: empirical-forcefield pose scoring",
			QoI:         "Ligand-protein binding energy for each pose",
			Metric:      common.MetricMAPE,
			TotalLoC:    minibude.SourceLoC(),
			HPACMLLoC:   loc, DirectiveCount: nDir,
		},
		app:    &budeApp{in: in},
		metric: common.MetricMAPE,
		arch: &bo.Space{Params: []bo.Param{
			layers,
			hidden1,
			bo.FloatParam{Key: "feature_mult", Min: 0.1, Max: 0.8},
		}},
		paperArch: []string{
			"Num. Hidden Layers: [2, 12]",
			"Hidden 1 Size: 64, 128, ..., 4096",
			"Feature Multiplier: [0.1, 0.8]",
		},
		buildNet: buildBudeNet,
	}
}

// buildBudeNet realizes the Table IV MiniBUDE family: layers hidden
// layers, the first sized hidden1, each following layer shrunk by the
// feature multiplier.
func buildBudeNet(arch map[string]bo.Value, dropout float64, inF, outF int, seed int64) (*nn.Network, error) {
	layers := arch["layers"].Int
	h1 := arch["hidden1"].Int
	mult := arch["feature_mult"].Float
	if layers < 1 || h1 < 1 {
		return nil, fmt.Errorf("experiments: bad minibude arch %v", arch)
	}
	hidden := make([]int, layers)
	size := float64(h1)
	for i := range hidden {
		if size < 4 {
			size = 4
		}
		hidden[i] = int(size)
		size *= mult
	}
	return buildMLP(hidden, dropout, inF, outF, seed), nil
}
