package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchmarks/common"
	"repro/internal/bo"
)

func TestTable1Registry(t *testing.T) {
	infos := Table1(ScaleTest)
	if len(infos) != 5 {
		t.Fatalf("benchmark count = %d, want 5", len(infos))
	}
	wantNames := []string{"minibude", "binomial", "bonds", "miniweather", "particlefilter"}
	wantMetrics := []common.Metric{common.MetricMAPE, common.MetricRMSE, common.MetricRMSE, common.MetricRMSE, common.MetricRMSE}
	for i, info := range infos {
		if info.Name != wantNames[i] {
			t.Errorf("benchmark %d = %q, want %q", i, info.Name, wantNames[i])
		}
		if info.Metric != wantMetrics[i] {
			t.Errorf("%s metric = %s, want %s", info.Name, info.Metric, wantMetrics[i])
		}
		if info.QoI == "" || info.Description == "" {
			t.Errorf("%s registry entry incomplete", info.Name)
		}
	}
}

func TestTable2DirectiveCounts(t *testing.T) {
	// The paper's Table II: 4 directives for MiniBUDE, Binomial Options,
	// Bonds, ParticleFilter; 3 for MiniWeather.
	want := map[string]int{
		"minibude": 4, "binomial": 4, "bonds": 4,
		"miniweather": 3, "particlefilter": 4,
	}
	for _, info := range Table1(ScaleTest) {
		if got := info.DirectiveCount; got != want[info.Name] {
			t.Errorf("%s directives = %d, want %d", info.Name, got, want[info.Name])
		}
		if info.HPACMLLoC < info.DirectiveCount {
			t.Errorf("%s HPAC-ML LoC %d below directive count", info.Name, info.HPACMLLoC)
		}
		if info.TotalLoC < 50 {
			t.Errorf("%s total LoC suspiciously small: %d", info.Name, info.TotalLoC)
		}
		// The paper reports <2% LoC increase on its C++ apps; our Go
		// ports are leaner, so assert a looser "annotations are a small
		// fraction" bound.
		if info.HPACMLLoC*10 > info.TotalLoC {
			t.Errorf("%s annotation burden too high: %d of %d LoC", info.Name, info.HPACMLLoC, info.TotalLoC)
		}
	}
}

func TestTableRendering(t *testing.T) {
	var b bytes.Buffer
	WriteTable1(&b, ScaleTest)
	WriteTable2(&b, ScaleTest)
	WriteTable4(&b, ScaleTest)
	WriteTable5(&b)
	out := b.String()
	for _, want := range []string{"Table I", "Table II", "Table IV", "Table V",
		"minibude", "Feature Multiplier", "Learning Rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestHyperSpaceMatchesTableV(t *testing.T) {
	s := HyperSpace()
	if s.Dim() != 4 {
		t.Fatalf("hyper space dim = %d, want 4", s.Dim())
	}
	assign, err := s.Decode([]float64{0, 0.5, 1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if lr := assign["lr"].Float; lr < 1e-4 || lr > 1e-2 {
		t.Fatalf("lr = %g outside Table V range", lr)
	}
	if d := assign["dropout"].Float; d < 0 || d > 0.8 {
		t.Fatalf("dropout = %g outside Table V range", d)
	}
	if b := assign["batch"].Int; b < 32 || b > 512 {
		t.Fatalf("batch = %d outside Table V range", b)
	}
}

func TestArchSweepSpansSpace(t *testing.T) {
	for _, h := range Registry(ScaleTest) {
		archs := ArchSweep(h, 5, 3)
		if len(archs) != 5 {
			t.Fatalf("%s: sweep produced %d archs", h.Info().Name, len(archs))
		}
		// First and last points must differ in at least one parameter.
		diff := false
		for k, v := range archs[0] {
			if archs[4][k].AsFloat() != v.AsFloat() {
				diff = true
			}
		}
		if !diff {
			t.Errorf("%s: sweep endpoints identical", h.Info().Name)
		}
	}
}

// TestCampaignTabularBenchmarks exercises collect -> train -> deploy for
// the three MLP benchmarks end to end.
func TestCampaignTabularBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	opt := QuickOptions()
	for _, mk := range []func(Scale) Harness{NewMiniBUDE, NewBinomial, NewBonds} {
		h := mk(ScaleTest)
		name := h.Info().Name
		dir := t.TempDir()
		results, err := Campaign(h, dir, opt, ArchSweep(h, 2, opt.Seed))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range results {
			if r.Speedup <= 0 {
				t.Errorf("%s: non-positive speedup %g", name, r.Speedup)
			}
			if r.Error < 0 {
				t.Errorf("%s: negative error %g", name, r.Error)
			}
			if r.Params <= 0 {
				t.Errorf("%s: no parameters reported", name)
			}
			if r.InferenceSec <= 0 || r.ToTensorSec <= 0 {
				t.Errorf("%s: phase timers empty: %+v", name, r)
			}
		}
	}
}

// TestCampaignParticleFilter checks the CNN pipeline and that the
// surrogate both runs faster than the filter and tracks the object.
func TestCampaignParticleFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	opt := QuickOptions()
	opt.TrainEpochs = 60
	h := NewParticleFilter(ScaleTest)
	dir := t.TempDir()
	arch := map[string]bo.Value{
		"conv_kernel": {Name: "conv_kernel", Int: 4, IsInt: true},
		"conv_stride": {Name: "conv_stride", Int: 2, IsInt: true},
		"pool_kernel": {Name: "pool_kernel", Int: 2, IsInt: true},
		"fc2":         {Name: "fc2", Int: 24, IsInt: true},
	}
	results, err := Campaign(h, dir, opt, []map[string]bo.Value{arch})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.BaselineError <= 0 {
		t.Fatal("particle filter baseline RMSE missing")
	}
	// Observation 1 shape: the surrogate is faster than the filter.
	if r.Speedup < 1 {
		t.Errorf("surrogate slower than the particle filter: %.2fx", r.Speedup)
	}
	// The CNN should track the object to within a few pixels.
	if r.Error > 8 {
		t.Errorf("surrogate lost the object: RMSE %g", r.Error)
	}
}

// TestCampaignMiniWeather checks the auto-regressive CNN pipeline.
func TestCampaignMiniWeather(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	opt := QuickOptions()
	h := NewMiniWeather(ScaleTest)
	dir := t.TempDir()
	arch := map[string]bo.Value{
		"conv1_kernel":   {Name: "conv1_kernel", Int: 3, IsInt: true},
		"conv1_channels": {Name: "conv1_channels", Int: 4, IsInt: true},
		"conv2_kernel":   {Name: "conv2_kernel", Int: 0, IsInt: true},
	}
	results, err := Campaign(h, dir, opt, []map[string]bo.Value{arch})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Speedup <= 0 || r.Error < 0 {
		t.Fatalf("implausible result %+v", r)
	}
}

func TestTable3Overheads(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead test in -short mode")
	}
	opt := QuickOptions()
	opt.EvalRuns = 5
	rows, err := Table3(t.TempDir(), ScaleTest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table III rows = %d", len(rows))
	}
	for _, r := range rows {
		// Collection can only slow the application down; the loose bound
		// absorbs scheduler noise on sub-millisecond runs under parallel
		// test load.
		if r.OverheadX < 0.5 {
			t.Errorf("%s: collection implausibly faster than plain run (%gx)", r.Benchmark, r.OverheadX)
		}
		if r.DataSizeMB <= 0 {
			t.Errorf("%s: empty collection database", r.Benchmark)
		}
	}
	var b bytes.Buffer
	WriteTable3(&b, rows)
	if !strings.Contains(b.String(), "Table III") {
		t.Fatal("Table III rendering broken")
	}
}

func TestFigure9Interleaving(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 9 test in -short mode")
	}
	opt := QuickOptions()
	res, err := Figure9(t.TempDir(), ScaleTest, opt, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 4 || res.Configs[0].String() != "0:1" {
		t.Fatalf("configs = %v", res.Configs)
	}
	for i, series := range res.SeriesRMSE {
		if len(series) != 6 {
			t.Fatalf("config %d series length %d", i, len(series))
		}
		for _, v := range series {
			if v < 0 || v != v {
				t.Fatalf("config %d has invalid RMSE %g", i, v)
			}
		}
	}
	// Observation 4 shape: error accumulates across consecutive
	// surrogate steps — the all-surrogate config ends no better than its
	// own first step.
	allSurrogate := res.SeriesRMSE[0]
	if allSurrogate[len(allSurrogate)-1] < allSurrogate[0]*0.5 {
		t.Errorf("auto-regressive error unexpectedly shrank: %v", allSurrogate)
	}
	// Panel (f): error distribution after 10 steps dominates after 1.
	if res.CDF10.Quantile(0.8) < res.CDF1.Quantile(0.8) {
		t.Errorf("80th percentile after 10 steps (%g) below after 1 (%g)",
			res.CDF10.Quantile(0.8), res.CDF1.Quantile(0.8))
	}
	var b bytes.Buffer
	WriteFigure9(&b, res)
	for _, want := range []string{"Figure 9(d)", "Figure 9(e)", "Figure 9(f)", "0:1", "3:3"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("figure 9 rendering missing %q", want)
		}
	}
}

func TestNestedCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("nested search in -short mode")
	}
	opt := QuickOptions()
	opt.TrainEpochs = 15
	h := NewBonds(ScaleTest)
	res, err := NestedCampaign(h, t.TempDir(), opt, bo.NestedConfig{
		OuterIters: 3, InnerIters: 2, OuterPatience: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.ModelsEvaluated < 3 {
		t.Fatalf("nested campaign degenerate: %+v", res)
	}
	if res.Best.LatencySec <= 0 {
		t.Fatal("latency objective not measured")
	}
}

func TestScatterRelativeSizes(t *testing.T) {
	results := []EvalResult{
		{Error: 2, Speedup: 10, Params: 100},
		{Error: 1, Speedup: 5, Params: 400},
	}
	pts := Scatter(results)
	if pts[0].Error != 1 || pts[0].RelSize != 4 {
		t.Fatalf("scatter points wrong: %+v", pts)
	}
	if pts[1].RelSize != 1 {
		t.Fatalf("smallest model must have relative size 1: %+v", pts[1])
	}
}

func TestFigure6Proportions(t *testing.T) {
	rows := Figure6([]EvalResult{{
		Benchmark: "x", ToTensorSec: 1, InferenceSec: 8, FromTensorSec: 1,
	}})
	if len(rows) != 1 {
		t.Fatal("missing row")
	}
	sum := rows[0].ToTensor + rows[0].Inference + rows[0].FromTensor
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("proportions sum to %g", sum)
	}
	var b bytes.Buffer
	WriteFigure6(&b, rows)
	if !strings.Contains(b.String(), "Figure 6") {
		t.Fatal("figure 6 rendering broken")
	}
}

func TestFigure8UnknownPanel(t *testing.T) {
	if _, err := Figure8(t.TempDir(), ScaleTest, QuickOptions(), "nosuch", 2); err == nil {
		t.Fatal("want error for unknown figure 8 panel")
	}
}

func TestCollectProducesUsableDatabase(t *testing.T) {
	if testing.Short() {
		t.Skip("collect test in -short mode")
	}
	opt := QuickOptions()
	h := NewBinomial(ScaleTest)
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "b.gh5")
	if _, err := h.Collect(dbPath, opt); err != nil {
		t.Fatal(err)
	}
	ds, err := loadDataset(dbPath, "binomial")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("empty dataset after collection")
	}
	if ds.X.Dim(1) != 3 || ds.Y.Dim(1) != 1 {
		t.Fatalf("dataset feature shapes: %v -> %v", ds.X.Shape(), ds.Y.Shape())
	}
}
