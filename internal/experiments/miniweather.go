package experiments

import (
	"fmt"
	"math"
	"path/filepath"

	hpacml "repro"

	"repro/internal/benchmarks/common"
	"repro/internal/benchmarks/miniweather"
	"repro/internal/bo"
	"repro/internal/nn"
)

// mwHarness wires MiniWeather: an iterative, auto-regressive region whose
// state array is both input and output (the 3-directive inout annotation
// of Table II). The if clause gates surrogate use per timestep, enabling
// the Figure 9 interleaving study.
type mwHarness struct {
	info  common.Info
	in    *miniweather.Instance
	arch  *bo.Space
	paper []string
}

// NewMiniWeather builds the MiniWeather harness with the Table IV
// convolutional family.
func NewMiniWeather(scale Scale) Harness {
	cfg := miniweather.DefaultConfig()
	if scale == ScaleTest {
		cfg.NX, cfg.NZ = 32, 16
	}
	in, err := miniweather.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: miniweather config invalid: %v", err))
	}
	dirText := miniweather.Directives("model.gmod", "data.gh5")
	loc, nDir := common.DirectiveStats(dirText)

	var arch *bo.Space
	if scale == ScaleFull {
		arch = &bo.Space{Params: []bo.Param{
			bo.IntParam{Key: "conv1_kernel", Min: 2, Max: 8},
			bo.IntParam{Key: "conv1_channels", Min: 4, Max: 8},
			bo.IntParam{Key: "conv2_kernel", Min: 0, Max: 6},
		}}
	} else {
		arch = &bo.Space{Params: []bo.Param{
			bo.IntParam{Key: "conv1_kernel", Min: 2, Max: 4},
			bo.IntParam{Key: "conv1_channels", Min: 4, Max: 6},
			bo.IntParam{Key: "conv2_kernel", Min: 0, Max: 3},
		}}
	}
	return &mwHarness{
		info: common.Info{
			Name:        "miniweather",
			Description: "Atmospheric dynamics via essential weather/climate modeling equations",
			QoI:         "Simulation state variables (density, x momentum, z momentum, potential temperature) at each gridpoint",
			Metric:      common.MetricRMSE,
			TotalLoC:    miniweather.SourceLoC(),
			HPACMLLoC:   loc, DirectiveCount: nDir,
		},
		in:   in,
		arch: arch,
		paper: []string{
			"Conv. Layer 1 Kernel Size: [2, 8]",
			"Conv. Layer 1 Output Channels: [4, 8]",
			"Conv. Layer 2 Kernel Size: [0, 6]",
		},
	}
}

func (h *mwHarness) Info() common.Info        { return h.info }
func (h *mwHarness) ArchSpace() *bo.Space     { return h.arch }
func (h *mwHarness) PaperArchSpace() []string { return h.paper }

// region builds the 3-directive inout region over the haloed state array.
// The returned gate controls the if clause (true = HPAC-ML active) and
// useModel the predicated mode (true = inference, false = collection).
func (h *mwHarness) region(modelPath, dbPath string, extra ...hpacml.Option) (r *hpacml.Region, gate, useModel *bool, err error) {
	g, u := true, false
	nv, nzh, nxh := h.in.StateDims()
	opts := []hpacml.Option{
		hpacml.Directives(miniweather.Directives(modelPath, dbPath)),
		hpacml.BindInt("NV", nv),
		hpacml.BindInt("NZH", nzh),
		hpacml.BindInt("NXH", nxh),
		hpacml.BindArray("state", h.in.State, nv, nzh, nxh),
		hpacml.BindPredicate("useModel", func() bool { return u }),
		hpacml.BindPredicate("gate", func() bool { return g }),
		hpacml.InputLayout(hpacml.LayoutChannels),
		hpacml.OutputLayout(hpacml.LayoutChannels),
	}
	opts = append(opts, extra...)
	r, err = hpacml.NewRegion("miniweather", opts...)
	if err != nil {
		return nil, nil, nil, err
	}
	return r, &g, &u, nil
}

// Collect runs the simulation forward, recording (state_t, state_t+1)
// pairs — the auto-regressive training set.
func (h *mwHarness) Collect(dbPath string, opt Options) (CollectReport, error) {
	h.in.InitThermalBubble()
	region, gate, useModel, err := h.region("", dbPath, hpacml.WithCapture(opt.Capture))
	if err != nil {
		return CollectReport{}, err
	}
	defer region.Close()
	*gate = true
	*useModel = false
	steps := opt.CollectRuns * 10
	var runErr error
	for s := 0; s < steps; s++ {
		if err := region.Execute(func() error { h.in.Step(); return nil }); err != nil {
			runErr = fmt.Errorf("miniweather collect step %d: %w", s, err)
			break
		}
	}
	return collectReport(region, runErr)
}

// CollectOverhead measures Table III for MiniWeather.
func (h *mwHarness) CollectOverhead(dir string, opt Options) (CollectStats, error) {
	h.in.InitThermalBubble()
	plain, err := timeIt(opt.EvalRuns, func() error { h.in.Step(); return nil })
	if err != nil {
		return CollectStats{}, err
	}
	dbPath := filepath.Join(dir, "miniweather-overhead.gh5")
	region, gate, useModel, err := h.region("", dbPath)
	if err != nil {
		return CollectStats{}, err
	}
	defer region.Close()
	*gate = true
	*useModel = false
	collect, err := timeIt(opt.EvalRuns, func() error {
		return region.Execute(func() error { h.in.Step(); return nil })
	})
	if err != nil {
		return CollectStats{}, err
	}
	if err := region.Close(); err != nil {
		return CollectStats{}, err
	}
	mb, err := fileSizeMB(dbPath)
	if err != nil {
		return CollectStats{}, err
	}
	return CollectStats{
		Benchmark:   "miniweather",
		PlainSec:    plain.Seconds(),
		CollectSec:  collect.Seconds(),
		DataSizeMB:  mb,
		OverheadX:   collect.Seconds() / plain.Seconds(),
		Invocations: opt.EvalRuns + 1,
	}, nil
}

// mwStats holds the per-channel normalization statistics computed from a
// training database: input mean/std of the state channels and the std of
// the per-step delta (next state minus current state).
type mwStats struct {
	inMean, inStd, deltaStd []float64
	blockLen                int
}

// computeMWStats derives the normalization statistics from the dataset.
func computeMWStats(ds *nn.Dataset) mwStats {
	nc := miniweather.NumVars
	per := ds.Y.Dim(1) / nc
	rows := ds.Y.Dim(0)
	xd := ds.X.Contiguous().Data()
	yd := ds.Y.Contiguous().Data()
	st := mwStats{
		inMean:   make([]float64, nc),
		inStd:    make([]float64, nc),
		deltaStd: make([]float64, nc),
		blockLen: per,
	}
	cols := nc * per
	for c := 0; c < nc; c++ {
		var sum, sum2, dsum, dsum2 float64
		n := 0
		for row := 0; row < rows; row++ {
			base := row*cols + c*per
			for i := 0; i < per; i++ {
				x := xd[base+i]
				d := yd[base+i] - x
				sum += x
				sum2 += x * x
				dsum += d
				dsum2 += d * d
				n++
			}
		}
		mean := sum / float64(n)
		st.inMean[c] = mean
		st.inStd[c] = math.Sqrt(math.Max(1e-12, sum2/float64(n)-mean*mean))
		dmean := dsum / float64(n)
		st.deltaStd[c] = math.Sqrt(math.Max(1e-12, dsum2/float64(n)-dmean*dmean))
	}
	return st
}

// Train fits the convolutional surrogate with normalized-delta training:
// the model internally standardizes its input channels, predicts the
// per-step delta on a normalized scale, rescales it to physical units,
// and adds it to the input (residual). The loss weights each channel by
// the inverse variance of its delta so the small-scale density channel —
// which drives the gravity source term when the surrogate runs
// auto-regressively — carries equal gradient weight.
func (h *mwHarness) Train(dbPath, modelPath string, arch, hyper map[string]bo.Value, opt Options) (float64, error) {
	ds, err := loadDataset(dbPath, "miniweather")
	if err != nil {
		return 0, err
	}
	stats := computeMWStats(ds)
	net, err := h.buildCNN(arch, dropoutOf(hyper), opt.Seed, stats)
	if err != nil {
		return 0, err
	}
	cfg := trainCfg(hyper, opt)
	cfg.Loss = nn.WeightedMSE{Weights: nn.InverseVarianceWeights(stats.deltaStd, stats.blockLen, 1e-9)}
	hist, err := net.Fit(ds, nil, cfg)
	if err != nil {
		return 0, err
	}
	if err := net.Save(modelPath); err != nil {
		return 0, err
	}
	return hist.BestVal, nil
}

// buildCNN realizes the Table IV MiniWeather family: one or two conv
// layers (conv2_kernel = 0 drops the second) and a dense decoder, wrapped
// as body of a residual block with channel normalization on the way in
// and delta-scale restoration on the way out.
func (h *mwHarness) buildCNN(arch map[string]bo.Value, dropout float64, seed int64, stats mwStats) (*nn.Network, error) {
	cfg := h.in.Cfg
	k1 := arch["conv1_kernel"].Int
	ch := arch["conv1_channels"].Int
	k2 := arch["conv2_kernel"].Int
	nc := miniweather.NumVars

	inScales := make([]float64, nc)
	inShifts := make([]float64, nc)
	for c := 0; c < nc; c++ {
		inScales[c] = 1 / stats.inStd[c]
		inShifts[c] = -stats.inMean[c] / stats.inStd[c]
	}

	body := nn.NewNetwork(seed)
	body.Add(nn.NewChannelAffine(stats.blockLen, inScales, inShifts))
	body.Add(body.NewConv2D(nc, ch, k1, k1, 1), nn.NewActivation(nn.ActTanh))
	if k2 > 1 {
		body.Add(body.NewConv2D(ch, ch, k2, k2, 1), nn.NewActivation(nn.ActTanh))
	}
	body.Add(nn.NewFlatten())
	sample, err := body.OutShape([]int{nc, cfg.NZ, cfg.NX})
	if err != nil {
		return nil, fmt.Errorf("experiments: invalid MiniWeather architecture %v: %w", arch, err)
	}
	flat := sample[0]
	if dropout > 0 {
		body.Add(body.NewDropout(dropout))
	}
	// Bottleneck decoder: a small latent keeps the dense decode cost (the
	// dominant FLOPs term) proportional to the grid rather than quadratic
	// in it.
	const latent = 48
	body.Add(body.NewDense(flat, latent), nn.NewActivation(nn.ActTanh))
	body.Add(body.NewDense(latent, nc*cfg.NZ*cfg.NX))
	body.Add(nn.NewChannelAffine(stats.blockLen, stats.deltaStd, nil))

	net := nn.NewNetwork(seed + 1)
	net.Add(nn.NewResidual(body))
	return net, nil
}

// Evaluate spins the simulation up with accurate steps, then compares an
// all-surrogate rollout against the accurate continuation: RMSE of the
// final state and end-to-end speedup over the rollout window.
func (h *mwHarness) Evaluate(modelPath string, opt Options) (EvalResult, error) {
	const spinup, window = 30, 10
	h.in.InitThermalBubble()
	for s := 0; s < spinup; s++ {
		h.in.Step()
	}
	snapshot := h.in.Interior(nil)

	// Accurate continuation (timed).
	accurate, err := timeIt(1, func() error {
		h.in.SetInterior(snapshot)
		for s := 0; s < window; s++ {
			h.in.Step()
		}
		return nil
	})
	if err != nil {
		return EvalResult{}, err
	}
	ref := h.in.Interior(nil)

	// Surrogate rollout (timed) from the same snapshot.
	region, gate, useModel, err := h.region(modelPath, "")
	if err != nil {
		return EvalResult{}, err
	}
	defer region.Close()
	*gate = true
	*useModel = true
	hpacml.ClearModelCache()
	surrogate, err := timeIt(1, func() error {
		h.in.SetInterior(snapshot)
		for s := 0; s < window; s++ {
			if err := region.Execute(func() error { h.in.Step(); return nil }); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return EvalResult{}, err
	}
	pred := h.in.Interior(nil)

	rmse, err := common.RMSE(pred, ref)
	if err != nil {
		return EvalResult{}, err
	}
	params, err := modelParams(modelPath)
	if err != nil {
		return EvalResult{}, err
	}
	st := region.Stats()
	inv := st.Inferences
	if inv == 0 {
		inv = 1
	}
	res := EvalResult{
		Benchmark:       "miniweather",
		Speedup:         accurate.Seconds() / surrogate.Seconds(),
		Error:           rmse,
		Params:          params,
		LatencySec:      st.Inference.Seconds() / float64(inv),
		ToTensorSec:     st.ToTensor.Seconds() / float64(inv),
		InferenceSec:    st.Inference.Seconds() / float64(inv),
		FromTensorSec:   st.FromTensor.Seconds() / float64(inv),
		Fallbacks:       st.Fallbacks,
		RemoteInference: st.RemoteInference,
		TrustedRows:     st.TrustedRows,
		UncertainRows:   st.UncertainRows,
		OutOfDomainRows: st.OutOfDomainRows,
		CaptureDrops:    st.CaptureDrops,
		CaptureFlushes:  st.CaptureFlushes,
		RemoteCaptures:  st.RemoteCaptures,
	}
	return res, checkFinite("miniweather", res.Speedup, res.Error)
}

// Instance exposes the simulation for the Figure 9 interleaving driver.
func (h *mwHarness) Instance() *miniweather.Instance { return h.in }

// Region exposes region construction for the Figure 9 driver.
func (h *mwHarness) Region(modelPath string) (*hpacml.Region, *bool, *bool, error) {
	r, gate, useModel, err := h.region(modelPath, "")
	return r, gate, useModel, err
}
