package experiments

import (
	"fmt"

	hpacml "repro"

	"repro/internal/benchmarks/binomial"
	"repro/internal/benchmarks/common"
	"repro/internal/bo"
	"repro/internal/nn"
)

// binomialApp adapts the Binomial Options instance.
type binomialApp struct {
	in *binomial.Instance
}

func (a *binomialApp) Reset(seed int64)   { a.in.RandomizeOptions(seed) }
func (a *binomialApp) RunAccurate()       { a.in.ComputePrices() }
func (a *binomialApp) Outputs() []float64 { return a.in.Prices }
func (a *binomialApp) InFeatures() int    { return 3 }
func (a *binomialApp) OutFeatures() int   { return 1 }

func (a *binomialApp) Region(modelPath, dbPath string, extra ...hpacml.Option) (*hpacml.Region, *bool, error) {
	useModel := false
	opts := []hpacml.Option{
		hpacml.Directives(binomial.Directives(modelPath, dbPath)),
		hpacml.BindInt("NOPT", a.in.Cfg.NumOptions),
		hpacml.BindArray("S", a.in.S, a.in.Cfg.NumOptions),
		hpacml.BindArray("X", a.in.X, a.in.Cfg.NumOptions),
		hpacml.BindArray("T", a.in.T, a.in.Cfg.NumOptions),
		hpacml.BindArray("prices", a.in.Prices, a.in.Cfg.NumOptions),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
	}
	opts = append(opts, extra...)
	r, err := hpacml.NewRegion("binomial", opts...)
	if err != nil {
		return nil, nil, err
	}
	return r, &useModel, nil
}

// NewBinomial builds the Binomial Options harness with the Table IV
// two-hidden-layer family.
func NewBinomial(scale Scale) Harness {
	cfg := binomial.DefaultConfig()
	if scale == ScaleTest {
		cfg.NumOptions = 1024
		cfg.Steps = 256
	}
	in, err := binomial.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: binomial config invalid: %v", err))
	}
	dirText := binomial.Directives("model.gmod", "data.gh5")
	loc, nDir := common.DirectiveStats(dirText)

	h1Max, h2Max := 512, 512
	if scale == ScaleTest {
		h1Max, h2Max = 48, 24
	}
	return &tabularHarness{
		info: common.Info{
			Name:        "binomial",
			Description: "American option pricing for a portfolio on a binomial lattice",
			QoI:         "The computed prices",
			Metric:      common.MetricRMSE,
			TotalLoC:    binomial.SourceLoC(),
			HPACMLLoC:   loc, DirectiveCount: nDir,
		},
		app:    &binomialApp{in: in},
		metric: common.MetricRMSE,
		arch: &bo.Space{Params: []bo.Param{
			bo.IntParam{Key: "hidden1", Min: 5, Max: h1Max},
			bo.IntParam{Key: "hidden2", Min: 0, Max: h2Max},
		}},
		paperArch: []string{
			"Hidden 1 Features: [5, 512]",
			"Hidden 2 Features: [0, 512]",
		},
		buildNet: buildTwoLayerNet,
	}
}

// buildTwoLayerNet realizes the Table IV Binomial/Bonds family: one or
// two hidden layers (hidden2 = 0 drops the second).
func buildTwoLayerNet(arch map[string]bo.Value, dropout float64, inF, outF int, seed int64) (*nn.Network, error) {
	h1 := arch["hidden1"].Int
	h2 := arch["hidden2"].Int
	if h1 < 1 || h2 < 0 {
		return nil, fmt.Errorf("experiments: bad arch %v", arch)
	}
	hidden := []int{h1}
	if h2 > 0 {
		hidden = append(hidden, h2)
	}
	return buildMLP(hidden, dropout, inF, outF, seed), nil
}
