// Package experiments wires the five benchmarks to the HPAC-ML runtime
// and regenerates every table and figure of the paper's evaluation
// (Tables I–V, Figures 5–9). Each benchmark gets a Harness that can
// collect training data through its annotated region, train surrogate
// models from the database, and measure end-to-end speedup and QoI error
// with a deployed model — the same three phases the paper's campaign
// automates with Parsl.
package experiments

import (
	"fmt"
	"os"
	"time"

	hpacml "repro"

	"repro/internal/benchmarks/common"
	"repro/internal/bo"
	"repro/internal/directive"
	"repro/internal/h5"
	"repro/internal/nn"
)

// Options tunes campaign cost. Quick settings keep a full table/figure
// regeneration in CI-scale time; Full settings push the search wider.
type Options struct {
	// CollectRuns is the number of region invocations recorded during
	// data collection.
	CollectRuns int
	// TrainEpochs bounds surrogate training.
	TrainEpochs int
	// EvalRuns is the number of repetitions per timing measurement (the
	// paper uses 20 and drops warmups).
	EvalRuns int
	// Seed drives every stochastic choice.
	Seed int64
	// Capture tunes the collection pipeline (shard rotation, queue
	// bound, block-or-drop backpressure, flush cadence, sampling); the
	// zero value is the asynchronous single-shard default.
	Capture hpacml.CaptureConfig
	// Normalize wraps trained tabular surrogates in fixed per-feature
	// standardization fitted on the training set: inputs are shifted to
	// zero mean / unit variance before the first layer and outputs are
	// mapped back after the last, so the saved model still eats and
	// emits raw application data. Off by default; turn it on for models
	// headed to int8 quantization, whose per-layer accuracy depends on
	// conditioned activation ranges.
	Normalize bool
}

// QuickOptions is sized for tests and CI.
func QuickOptions() Options {
	return Options{CollectRuns: 6, TrainEpochs: 40, EvalRuns: 3, Seed: 29}
}

// FullOptions is sized for a real campaign run.
func FullOptions() Options {
	return Options{CollectRuns: 20, TrainEpochs: 200, EvalRuns: 20, Seed: 29}
}

// EvalResult is one deployed-model measurement: the data behind Figures
// 5–8.
type EvalResult struct {
	Benchmark string
	// Speedup is accurate end-to-end time / surrogate end-to-end time.
	Speedup float64
	// Error is the QoI error under the benchmark's Table I metric.
	Error float64
	// Params is the model's scalar parameter count.
	Params int
	// LatencySec is the measured model inference latency per region
	// invocation.
	LatencySec float64
	// Phase timings for Figure 6.
	ToTensorSec   float64
	InferenceSec  float64
	FromTensorSec float64
	// BaselineError is the QoI error of the application's own
	// algorithmic approximation where one exists (ParticleFilter's
	// original filter — the vertical line of Figure 7); 0 otherwise.
	BaselineError float64
	// Fallbacks and RemoteInference surface the deployed region's
	// engine accounting: accurate-path fallbacks taken and invocations
	// served by a remote engine during the surrogate timing runs.
	Fallbacks       int
	RemoteInference int
	// Trust-routing counters of the deployed region (non-zero only for
	// trust-gated deployments): rows kept from the surrogate, rows the
	// variance gate routed to the accurate path, rows the input-domain
	// guardrail routed.
	TrustedRows     int
	UncertainRows   int
	OutOfDomainRows int
	// Capture-pipeline counters of the deployed region (non-zero only
	// for runs that also collect, e.g. predicated regions).
	CaptureDrops   int
	CaptureFlushes int
	RemoteCaptures int
}

// CollectStats is one Table III row.
type CollectStats struct {
	Benchmark   string
	PlainSec    float64
	CollectSec  float64
	DataSizeMB  float64
	OverheadX   float64
	Invocations int
}

// CollectReport summarizes one collection run's capture pipeline: what
// the sink accepted, where it landed, and what (if anything) was lost.
// A driver should treat Failed() as a failed collection even when
// every Execute call succeeded — the asynchronous pipeline reports its
// losses here.
type CollectReport struct {
	// Invocations is how many region invocations ran in collection
	// mode; Records is how many reached the sink (fewer when a
	// sampling policy thinned the stream, Sampled counts those).
	Invocations int
	Records     int
	Sampled     int
	// Shards is how many files the local database spans (0 for purely
	// remote collection).
	Shards int
	// Dropped / Flushes / FlushErrors / WriteErrors are the sink's
	// backpressure and durability accounting.
	Dropped     int
	Flushes     int
	FlushErrors int
	WriteErrors int
	// RemoteRecords counts records acknowledged by a remote ingest
	// endpoint.
	RemoteRecords int
}

// Failed reports whether the pipeline lost or failed to persist any
// record.
func (r CollectReport) Failed() bool {
	return r.Dropped > 0 || r.FlushErrors > 0 || r.WriteErrors > 0
}

// collectReport drains the region's capture pipeline and assembles the
// report: Close first (the final flush), then read the sink counters.
// The returned error is any Execute error, else the Close error.
func collectReport(region *hpacml.Region, runErr error) (CollectReport, error) {
	st := region.Stats()
	err := region.Close()
	if runErr != nil {
		err = runErr
	}
	rep := CollectReport{Invocations: st.Collections}
	if ss, ok := region.CaptureStats(); ok {
		rep.Records = int(ss.Captured)
		rep.Sampled = int(ss.Sampled)
		rep.Shards = int(ss.Shards)
		rep.Dropped = int(ss.Dropped)
		rep.Flushes = int(ss.Flushes)
		rep.FlushErrors = int(ss.FlushErrors)
		rep.WriteErrors = int(ss.WriteErrors)
		rep.RemoteRecords = int(ss.RemoteRecords)
	}
	return rep, err
}

// Harness is one benchmark wired to HPAC-ML.
type Harness interface {
	// Info returns the Table I registry entry (QoI, metric, LoC counts).
	Info() common.Info
	// Collect records CollectRuns region invocations into dbPath (a
	// local .gh5 path or a remote http(s):// capture-db URI), driving
	// them through the capture pipeline Options.Capture configures, and
	// reports what the pipeline did with them.
	Collect(dbPath string, opt Options) (CollectReport, error)
	// CollectOverhead measures Table III: plain runtime vs collection
	// runtime plus database size.
	CollectOverhead(dir string, opt Options) (CollectStats, error)
	// ArchSpace is the (run-scaled) architecture search space; the
	// paper-scale space is reported by PaperArchSpace for Table IV.
	ArchSpace() *bo.Space
	// PaperArchSpace renders the Table IV rows verbatim.
	PaperArchSpace() []string
	// Train fits a surrogate with the given architecture and
	// hyperparameters from dbPath and saves it to modelPath, returning
	// the validation error.
	Train(dbPath, modelPath string, arch, hyper map[string]bo.Value, opt Options) (float64, error)
	// Evaluate deploys modelPath and measures end-to-end speedup and QoI
	// error against the accurate path.
	Evaluate(modelPath string, opt Options) (EvalResult, error)
}

// HyperSpace is the Table V hyperparameter space, shared by every
// benchmark: learning rate, weight decay, dropout, batch size.
func HyperSpace() *bo.Space {
	return &bo.Space{Params: []bo.Param{
		bo.FloatParam{Key: "lr", Min: 1e-4, Max: 1e-2, Log: true},
		bo.FloatParam{Key: "weight_decay", Min: 1e-4, Max: 1e-1, Log: true},
		bo.FloatParam{Key: "dropout", Min: 0, Max: 0.8},
		bo.IntParam{Key: "batch", Min: 32, Max: 512},
	}}
}

// PaperHyperSpace renders Table V verbatim.
func PaperHyperSpace() []string {
	return []string{
		"Learning Rate: [1e-4, 1e-2]",
		"Weight Decay: [1e-4, 1e-1]",
		"Dropout: [0, 0.8]",
		"Batch Size: [32, 512]",
	}
}

// Registry returns every harness, in the paper's benchmark order.
func Registry(scale Scale) []Harness {
	return []Harness{
		NewMiniBUDE(scale),
		NewBinomial(scale),
		NewBonds(scale),
		NewMiniWeather(scale),
		NewParticleFilter(scale),
	}
}

// Scale selects problem sizes.
type Scale int

// Problem-size scales: test-sized and campaign-sized.
const (
	ScaleTest Scale = iota
	ScaleFull
)

// modelParams reports the deployed surrogate's scalar parameter count.
// For a plain path the .gmod is loaded and counted; for a remote model
// URI the weights live on the server (the serve registry does not
// expose a parameter count), so 0 is reported and the eval row's
// RemoteInference counter identifies the deployment instead.
func modelParams(modelPath string) (int, error) {
	if directive.IsRemoteModel(modelPath) {
		return 0, nil
	}
	net, err := nn.Load(modelPath)
	if err != nil {
		return 0, err
	}
	return net.NumParams(), nil
}

// loadDataset reads the inputs/outputs datasets of one region group,
// merging every shard of the database (a single-file database is a
// one-shard set, so the plain path reads as before).
func loadDataset(dbPath, group string) (*nn.Dataset, error) {
	f, err := h5.OpenShards(dbPath)
	if err != nil {
		return nil, err
	}
	x, err := f.Read(group, "inputs")
	if err != nil {
		return nil, err
	}
	y, err := f.Read(group, "outputs")
	if err != nil {
		return nil, err
	}
	return nn.NewDataset(x, y)
}

// trainCfg assembles a Table V hyperparameter assignment into a training
// config.
func trainCfg(hyper map[string]bo.Value, opt Options) nn.TrainConfig {
	cfg := nn.TrainConfig{
		Epochs:    opt.TrainEpochs,
		BatchSize: 64,
		LR:        1e-3,
		Seed:      opt.Seed,
		Patience:  8,
	}
	if v, ok := hyper["lr"]; ok {
		cfg.LR = v.Float
	}
	if v, ok := hyper["weight_decay"]; ok {
		cfg.WeightDecay = v.Float
	}
	if v, ok := hyper["batch"]; ok {
		cfg.BatchSize = v.Int
	}
	return cfg
}

// dropoutOf extracts the dropout probability from a hyperparameter
// assignment (a model property in our engine, per Table V).
func dropoutOf(hyper map[string]bo.Value) float64 {
	if v, ok := hyper["dropout"]; ok {
		return v.Float
	}
	return 0
}

// fileSizeMB returns a file's size in MB.
func fileSizeMB(path string) (float64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return float64(st.Size()) / (1024 * 1024), nil
}

// timeIt runs fn repeatedly and returns the mean wall time, dropping one
// warmup run when runs > 1 (the paper drops its first two of twenty).
func timeIt(runs int, fn func() error) (time.Duration, error) {
	if runs < 1 {
		runs = 1
	}
	if runs > 1 {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < runs; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(runs), nil
}

// checkFinite guards campaign results against NaN pollution.
func checkFinite(name string, vals ...float64) error {
	for _, v := range vals {
		if v != v {
			return fmt.Errorf("experiments: %s produced NaN", name)
		}
	}
	return nil
}
