package experiments

import (
	"fmt"
	"path/filepath"

	hpacml "repro"

	"repro/internal/benchmarks/common"
	"repro/internal/benchmarks/particlefilter"
	"repro/internal/bo"
	"repro/internal/nn"
)

// pfHarness wires the ParticleFilter benchmark: a CNN over raw frames
// replaces the whole filter (Observation 1).
type pfHarness struct {
	info  common.Info
	in    *particlefilter.Instance
	arch  *bo.Space
	paper []string

	frameBuf []float64 // the region's bound input frame
	est      []float64 // the region's bound output location [1][2]
}

// NewParticleFilter builds the ParticleFilter harness with the Table IV
// CNN family (conv kernel/stride, maxpool kernel, FC2 size).
func NewParticleFilter(scale Scale) Harness {
	cfg := particlefilter.DefaultConfig()
	if scale == ScaleTest {
		cfg.NumFrames = 24
		cfg.Particles = 1024
	}
	in, err := particlefilter.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: particlefilter config invalid: %v", err))
	}
	dirText := particlefilter.Directives("model.gmod", "data.gh5")
	loc, nDir := common.DirectiveStats(dirText)

	var arch *bo.Space
	if scale == ScaleFull {
		arch = &bo.Space{Params: []bo.Param{
			bo.IntParam{Key: "conv_kernel", Min: 2, Max: 14},
			bo.IntParam{Key: "conv_stride", Min: 1, Max: 14},
			bo.IntParam{Key: "pool_kernel", Min: 1, Max: 10},
			bo.IntParam{Key: "fc2", Min: 0, Max: 128},
		}}
	} else {
		arch = &bo.Space{Params: []bo.Param{
			bo.IntParam{Key: "conv_kernel", Min: 2, Max: 6},
			bo.IntParam{Key: "conv_stride", Min: 1, Max: 3},
			bo.IntParam{Key: "pool_kernel", Min: 1, Max: 3},
			bo.IntParam{Key: "fc2", Min: 0, Max: 48},
		}}
	}
	fs := cfg.FrameSize
	return &pfHarness{
		info: common.Info{
			Name:        "particlefilter",
			Description: "Statistical estimation of a target object's location in noisy video frames",
			QoI:         "The location of the object",
			Metric:      common.MetricRMSE,
			TotalLoC:    particlefilter.SourceLoC(),
			HPACMLLoC:   loc, DirectiveCount: nDir,
		},
		in:       in,
		arch:     arch,
		frameBuf: make([]float64, fs*fs),
		est:      make([]float64, 2),
		paper: []string{
			"Conv. Kernel Size; Conv. Stride: [2, 14]",
			"Maxpool Kernel Size: [1, 10]",
			"FC 2 Size: [0, 128]",
		},
	}
}

func (h *pfHarness) Info() common.Info        { return h.info }
func (h *pfHarness) ArchSpace() *bo.Space     { return h.arch }
func (h *pfHarness) PaperArchSpace() []string { return h.paper }

func (h *pfHarness) region(modelPath, dbPath string, extra ...hpacml.Option) (*hpacml.Region, *bool, error) {
	useModel := false
	fs := h.in.Cfg.FrameSize
	opts := []hpacml.Option{
		hpacml.Directives(particlefilter.Directives(modelPath, dbPath)),
		hpacml.BindInt("FS", fs),
		hpacml.BindArray("frame", h.frameBuf, fs, fs),
		hpacml.BindArray("est", h.est, 1, 2),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
		hpacml.InputLayout(hpacml.LayoutImage2D),
		hpacml.OutputLayout(hpacml.LayoutFlat),
	}
	opts = append(opts, extra...)
	r, err := hpacml.NewRegion("particlefilter", opts...)
	if err != nil {
		return nil, nil, err
	}
	return r, &useModel, nil
}

// Collect runs every frame through the region in collection mode. The
// accurate path runs the filter for the frame but captures the ground
// truth as the training target, as the paper's PF port does.
func (h *pfHarness) Collect(dbPath string, opt Options) (CollectReport, error) {
	region, useModel, err := h.region("", dbPath, hpacml.WithCapture(opt.Capture))
	if err != nil {
		return CollectReport{}, err
	}
	defer region.Close()
	*useModel = false
	// Several videos widen the training distribution.
	videos := opt.CollectRuns
	if videos < 1 {
		videos = 1
	}
	var runErr error
videoLoop:
	for v := 0; v < videos; v++ {
		h.in.SynthesizeVideo(opt.Seed + int64(v))
		h.in.ResetFilter()
		for f := 0; f < h.in.Cfg.NumFrames; f++ {
			frame := f
			copy(h.frameBuf, h.in.Frame(frame))
			if err := region.Execute(func() error {
				h.in.EstX[frame], h.in.EstY[frame] = h.in.RunFilterFrame(frame)
				h.est[0] = h.in.TruthX[frame]
				h.est[1] = h.in.TruthY[frame]
				return nil
			}); err != nil {
				runErr = err
				break videoLoop
			}
		}
	}
	return collectReport(region, runErr)
}

// CollectOverhead measures Table III for ParticleFilter.
func (h *pfHarness) CollectOverhead(dir string, opt Options) (CollectStats, error) {
	h.in.SynthesizeVideo(opt.Seed)
	plain, err := timeIt(opt.EvalRuns, func() error { h.in.RunFilter(); return nil })
	if err != nil {
		return CollectStats{}, err
	}
	dbPath := filepath.Join(dir, "particlefilter-overhead.gh5")
	region, useModel, err := h.region("", dbPath)
	if err != nil {
		return CollectStats{}, err
	}
	defer region.Close()
	*useModel = false
	collect, err := timeIt(opt.EvalRuns, func() error {
		h.in.ResetFilter()
		for f := 0; f < h.in.Cfg.NumFrames; f++ {
			frame := f
			copy(h.frameBuf, h.in.Frame(frame))
			if err := region.Execute(func() error {
				h.in.EstX[frame], h.in.EstY[frame] = h.in.RunFilterFrame(frame)
				h.est[0] = h.in.TruthX[frame]
				h.est[1] = h.in.TruthY[frame]
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return CollectStats{}, err
	}
	if err := region.Close(); err != nil {
		return CollectStats{}, err
	}
	mb, err := fileSizeMB(dbPath)
	if err != nil {
		return CollectStats{}, err
	}
	return CollectStats{
		Benchmark:   "particlefilter",
		PlainSec:    plain.Seconds(),
		CollectSec:  collect.Seconds(),
		DataSizeMB:  mb,
		OverheadX:   collect.Seconds() / plain.Seconds(),
		Invocations: opt.EvalRuns + 1,
	}, nil
}

// Train fits the Table IV CNN family from collected frames.
func (h *pfHarness) Train(dbPath, modelPath string, arch, hyper map[string]bo.Value, opt Options) (float64, error) {
	ds, err := loadDataset(dbPath, "particlefilter")
	if err != nil {
		return 0, err
	}
	net, err := h.buildCNN(arch, dropoutOf(hyper), opt.Seed)
	if err != nil {
		return 0, err
	}
	hist, err := net.Fit(ds, nil, trainCfg(hyper, opt))
	if err != nil {
		return 0, err
	}
	if err := net.Save(modelPath); err != nil {
		return 0, err
	}
	return hist.BestVal, nil
}

// buildCNN realizes the PF CNN: conv -> ReLU -> maxpool -> flatten ->
// [dense fc2 -> ReLU ->] dense(2). Invalid geometry combinations return
// an error, which the search treats as a failed trial.
func (h *pfHarness) buildCNN(arch map[string]bo.Value, dropout float64, seed int64) (*nn.Network, error) {
	fs := h.in.Cfg.FrameSize
	k := arch["conv_kernel"].Int
	s := arch["conv_stride"].Int
	pool := arch["pool_kernel"].Int
	fc2 := arch["fc2"].Int
	const channels = 4

	net := nn.NewNetwork(seed)
	// Normalize raw 0-255 pixels around zero before the convolutions.
	net.Add(nn.NewAffine(1.0/255, -0.5))
	net.Add(net.NewConv2D(1, channels, k, k, s), nn.NewActivation(nn.ActReLU))
	if pool > 1 {
		net.Add(nn.NewMaxPool2D(pool))
	}
	net.Add(nn.NewFlatten())
	sample, err := net.OutShape([]int{1, fs, fs})
	if err != nil {
		return nil, fmt.Errorf("experiments: invalid PF architecture %v: %w", arch, err)
	}
	flat := sample[0]
	if fc2 > 0 {
		net.Add(net.NewDense(flat, fc2), nn.NewActivation(nn.ActReLU))
		flat = fc2
	}
	if dropout > 0 {
		net.Add(net.NewDropout(dropout))
	}
	net.Add(net.NewDense(flat, 2))
	return net, nil
}

// Evaluate runs the original filter and the surrogate over a held-out
// video and compares both runtime and accuracy against ground truth.
func (h *pfHarness) Evaluate(modelPath string, opt Options) (EvalResult, error) {
	h.in.SynthesizeVideo(opt.Seed + 777) // held-out video
	accurate, err := timeIt(opt.EvalRuns, func() error { h.in.RunFilter(); return nil })
	if err != nil {
		return EvalResult{}, err
	}
	baselineRMSE := h.in.TrackRMSE()

	region, useModel, err := h.region(modelPath, "")
	if err != nil {
		return EvalResult{}, err
	}
	defer region.Close()
	*useModel = true
	hpacml.ClearModelCache()
	surrogate, err := timeIt(opt.EvalRuns, func() error {
		for f := 0; f < h.in.Cfg.NumFrames; f++ {
			copy(h.frameBuf, h.in.Frame(f))
			if err := region.Execute(nil); err != nil {
				return err
			}
			h.in.EstX[f], h.in.EstY[f] = h.est[0], h.est[1]
		}
		return nil
	})
	if err != nil {
		return EvalResult{}, err
	}
	nnRMSE := h.in.TrackRMSE()

	params, err := modelParams(modelPath)
	if err != nil {
		return EvalResult{}, err
	}
	st := region.Stats()
	inv := st.Inferences
	if inv == 0 {
		inv = 1
	}
	res := EvalResult{
		Benchmark:       "particlefilter",
		Speedup:         accurate.Seconds() / surrogate.Seconds(),
		Error:           nnRMSE,
		Params:          params,
		LatencySec:      st.Inference.Seconds() / float64(inv),
		ToTensorSec:     st.ToTensor.Seconds() / float64(inv),
		InferenceSec:    st.Inference.Seconds() / float64(inv),
		FromTensorSec:   st.FromTensor.Seconds() / float64(inv),
		BaselineError:   baselineRMSE,
		Fallbacks:       st.Fallbacks,
		RemoteInference: st.RemoteInference,
		TrustedRows:     st.TrustedRows,
		UncertainRows:   st.UncertainRows,
		OutOfDomainRows: st.OutOfDomainRows,
		CaptureDrops:    st.CaptureDrops,
		CaptureFlushes:  st.CaptureFlushes,
		RemoteCaptures:  st.RemoteCaptures,
	}
	return res, checkFinite("particlefilter", res.Speedup, res.Error)
}
