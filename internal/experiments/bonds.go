package experiments

import (
	"fmt"

	hpacml "repro"

	"repro/internal/benchmarks/bonds"
	"repro/internal/benchmarks/common"
	"repro/internal/bo"
)

// bondsApp adapts the Bonds instance.
type bondsApp struct {
	in *bonds.Instance
}

func (a *bondsApp) Reset(seed int64)   { a.in.RandomizeBonds(seed) }
func (a *bondsApp) RunAccurate()       { a.in.ComputeValuations() }
func (a *bondsApp) Outputs() []float64 { return a.in.Accrued }
func (a *bondsApp) InFeatures() int    { return 4 }
func (a *bondsApp) OutFeatures() int   { return 1 }

func (a *bondsApp) Region(modelPath, dbPath string, extra ...hpacml.Option) (*hpacml.Region, *bool, error) {
	useModel := false
	n := a.in.Cfg.NumBonds
	opts := []hpacml.Option{
		hpacml.Directives(bonds.Directives(modelPath, dbPath)),
		hpacml.BindInt("NB", n),
		hpacml.BindArray("coupon", a.in.Coupon, n),
		hpacml.BindArray("rate", a.in.Rate, n),
		hpacml.BindArray("maturity", a.in.Maturity, n),
		hpacml.BindArray("settle", a.in.Settle, n),
		hpacml.BindArray("accrued", a.in.Accrued, n),
		hpacml.BindPredicate("useModel", func() bool { return useModel }),
	}
	opts = append(opts, extra...)
	r, err := hpacml.NewRegion("bonds", opts...)
	if err != nil {
		return nil, nil, err
	}
	return r, &useModel, nil
}

// NewBonds builds the Bonds harness, sharing the two-hidden-layer
// architecture family with Binomial Options (Table IV).
func NewBonds(scale Scale) Harness {
	cfg := bonds.DefaultConfig()
	if scale == ScaleTest {
		cfg.NumBonds = 1024
	}
	in, err := bonds.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: bonds config invalid: %v", err))
	}
	dirText := bonds.Directives("model.gmod", "data.gh5")
	loc, nDir := common.DirectiveStats(dirText)

	h1Max, h2Max := 512, 512
	if scale == ScaleTest {
		h1Max, h2Max = 48, 24
	}
	return &tabularHarness{
		info: common.Info{
			Name:        "bonds",
			Description: "Fixed-rate bond valuation and interest payments under a flat forward curve",
			QoI:         "The accrued interest for each bond",
			Metric:      common.MetricRMSE,
			TotalLoC:    bonds.SourceLoC(),
			HPACMLLoC:   loc, DirectiveCount: nDir,
		},
		app:    &bondsApp{in: in},
		metric: common.MetricRMSE,
		arch: &bo.Space{Params: []bo.Param{
			bo.IntParam{Key: "hidden1", Min: 5, Max: h1Max},
			bo.IntParam{Key: "hidden2", Min: 0, Max: h2Max},
		}},
		paperArch: []string{
			"Hidden 1 Features: [5, 512]",
			"Hidden 2 Features: [0, 512]",
		},
		buildNet: buildTwoLayerNet,
	}
}
