package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"

	hpacml "repro"

	"repro/internal/benchmarks/common"
	"repro/internal/bo"
)

// ArchSweep produces n architecture assignments spanning a harness's
// search space: a diagonal walk from small to large with seeded jitter,
// giving the model-size spread the Figure 7/8 scatters need.
func ArchSweep(h Harness, n int, seed int64) []map[string]bo.Value {
	space := h.ArchSpace()
	rng := rand.New(rand.NewSource(seed))
	out := make([]map[string]bo.Value, 0, n)
	for i := 0; i < n; i++ {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		u := make([]float64, space.Dim())
		for d := range u {
			u[d] = t + (rng.Float64()-0.5)*0.25
			if u[d] < 0 {
				u[d] = 0
			}
			if u[d] > 0.999 {
				u[d] = 0.999
			}
		}
		assign, err := space.Decode(u)
		if err != nil {
			continue
		}
		out = append(out, assign)
	}
	return out
}

// defaultHyper is a sensible Table V point used when the campaign skips
// hyperparameter search.
func defaultHyper() map[string]bo.Value {
	return map[string]bo.Value{
		"lr":           {Name: "lr", Float: 3e-3},
		"weight_decay": {Name: "weight_decay", Float: 1e-4},
		"dropout":      {Name: "dropout", Float: 0},
		"batch":        {Name: "batch", Int: 64, IsInt: true},
	}
}

// Campaign collects once, then trains and evaluates every architecture in
// archs, returning the successful results (failed architectures are
// skipped, as in the BO campaign).
func Campaign(h Harness, dir string, opt Options, archs []map[string]bo.Value) ([]EvalResult, error) {
	name := h.Info().Name
	dbPath := filepath.Join(dir, name+".gh5")
	if _, err := h.Collect(dbPath, opt); err != nil {
		return nil, fmt.Errorf("campaign %s: collect: %w", name, err)
	}
	var out []EvalResult
	for i, arch := range archs {
		modelPath := filepath.Join(dir, fmt.Sprintf("%s-%d.gmod", name, i))
		if _, err := h.Train(dbPath, modelPath, arch, defaultHyper(), opt); err != nil {
			continue // invalid geometry or failed training: skipped trial
		}
		res, err := h.Evaluate(modelPath, opt)
		if err != nil {
			continue
		}
		out = append(out, res)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign %s: every architecture failed", name)
	}
	return out, nil
}

// Figure5Row is one bar pair of Figure 5.
type Figure5Row struct {
	Benchmark string
	Speedup   float64
	Error     float64
}

// Figure5 deploys the lowest-error swept model per benchmark and reports
// end-to-end speedup and QoI error (paper Figure 5).
func Figure5(dir string, scale Scale, opt Options, sweep int) ([]Figure5Row, []EvalResult, error) {
	var rows []Figure5Row
	var best []EvalResult
	for _, h := range Registry(scale) {
		results, err := Campaign(h, dir, opt, ArchSweep(h, sweep, opt.Seed))
		if err != nil {
			return nil, nil, err
		}
		b := results[0]
		for _, r := range results[1:] {
			if r.Error < b.Error {
				b = r
			}
		}
		rows = append(rows, Figure5Row{Benchmark: h.Info().Name, Speedup: b.Speedup, Error: b.Error})
		best = append(best, b)
	}
	return rows, best, nil
}

// WriteFigure5 renders the Figure 5 series.
func WriteFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintln(w, "Figure 5: End-to-end application speedup and error of HPAC-ML enhanced applications.")
	tw := newTextTable("Benchmark", "Speedup", "Error")
	var speedups []float64
	for _, r := range rows {
		tw.row(r.Benchmark, fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%.4g", r.Error))
		speedups = append(speedups, r.Speedup)
	}
	tw.flush(w)
	if gm, err := common.GeoMean(speedups); err == nil {
		fmt.Fprintf(w, "  geometric-mean speedup: %.2fx\n", gm)
	}
}

// Figure6Row is one stacked bar of Figure 6: the proportion of HPAC-ML
// runtime spent in each phase.
type Figure6Row struct {
	Benchmark  string
	ToTensor   float64
	Inference  float64
	FromTensor float64
}

// Figure6 derives phase proportions from evaluation results.
func Figure6(results []EvalResult) []Figure6Row {
	var out []Figure6Row
	for _, r := range results {
		total := r.ToTensorSec + r.InferenceSec + r.FromTensorSec
		if total <= 0 {
			continue
		}
		out = append(out, Figure6Row{
			Benchmark:  r.Benchmark,
			ToTensor:   r.ToTensorSec / total,
			Inference:  r.InferenceSec / total,
			FromTensor: r.FromTensorSec / total,
		})
	}
	return out
}

// WriteFigure6 renders the Figure 6 proportions.
func WriteFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintln(w, "Figure 6: Proportion of time for each primary HPAC-ML inference-mode operation.")
	tw := newTextTable("Benchmark", "To Tensor", "Inference Engine", "From Tensor", "Bridge Overhead")
	for _, r := range rows {
		overhead := (r.ToTensor + r.FromTensor) / r.Inference
		tw.row(r.Benchmark,
			fmt.Sprintf("%.4f", r.ToTensor),
			fmt.Sprintf("%.4f", r.Inference),
			fmt.Sprintf("%.4f", r.FromTensor),
			fmt.Sprintf("%.2f%%", overhead*100))
	}
	tw.flush(w)
}

// ScatterPoint is one model of a Figure 7/8 scatter.
type ScatterPoint struct {
	Error   float64
	Speedup float64
	RelSize float64 // parameters relative to the smallest model
}

// Scatter converts evaluation results into scatter points with relative
// model sizes.
func Scatter(results []EvalResult) []ScatterPoint {
	minParams := 0
	for i, r := range results {
		if i == 0 || r.Params < minParams {
			minParams = r.Params
		}
	}
	if minParams < 1 {
		minParams = 1
	}
	pts := make([]ScatterPoint, len(results))
	for i, r := range results {
		pts[i] = ScatterPoint{
			Error:   r.Error,
			Speedup: r.Speedup,
			RelSize: float64(r.Params) / float64(minParams),
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Error < pts[j].Error })
	return pts
}

// Figure7 sweeps ParticleFilter CNNs: the scatter of RMSE vs speedup with
// the original algorithmic approximation's RMSE as the reference line.
func Figure7(dir string, scale Scale, opt Options, sweep int) (points []ScatterPoint, baselineRMSE float64, err error) {
	h := NewParticleFilter(scale)
	results, err := Campaign(h, dir, opt, ArchSweep(h, sweep, opt.Seed))
	if err != nil {
		return nil, 0, err
	}
	for _, r := range results {
		if r.BaselineError > 0 {
			baselineRMSE = r.BaselineError
		}
	}
	return Scatter(results), baselineRMSE, nil
}

// WriteFigure7 renders the Figure 7 scatter.
func WriteFigure7(w io.Writer, pts []ScatterPoint, baseline float64) {
	fmt.Fprintln(w, "Figure 7: ParticleFilter speedup vs RMSE (original filter RMSE marked).")
	fmt.Fprintf(w, "  original algorithmic approximation RMSE: %.4f\n", baseline)
	writeScatter(w, pts)
}

// Figure8 sweeps one tabular benchmark ("minibude", "binomial", or
// "bonds") for the speedup-vs-accuracy scatters of Figure 8.
func Figure8(dir string, scale Scale, opt Options, benchmark string, sweep int) ([]ScatterPoint, error) {
	var h Harness
	switch benchmark {
	case "minibude":
		h = NewMiniBUDE(scale)
	case "binomial":
		h = NewBinomial(scale)
	case "bonds":
		h = NewBonds(scale)
	default:
		return nil, fmt.Errorf("figure 8 has no panel for %q", benchmark)
	}
	results, err := Campaign(h, dir, opt, ArchSweep(h, sweep, opt.Seed))
	if err != nil {
		return nil, err
	}
	return Scatter(results), nil
}

// WriteFigure8 renders one Figure 8 panel.
func WriteFigure8(w io.Writer, benchmark string, pts []ScatterPoint) {
	fmt.Fprintf(w, "Figure 8 (%s): Speedup vs accuracy; color = relative model size.\n", benchmark)
	writeScatter(w, pts)
}

func writeScatter(w io.Writer, pts []ScatterPoint) {
	tw := newTextTable("Error", "Speedup", "Relative Model Size")
	for _, p := range pts {
		tw.row(fmt.Sprintf("%.4g", p.Error), fmt.Sprintf("%.2fx", p.Speedup), fmt.Sprintf("%.1f", p.RelSize))
	}
	tw.flush(w)
}

// Figure9Config is one Original:Surrogate interleaving ratio.
type Figure9Config struct {
	Original  int
	Surrogate int
}

// String renders the ratio as in the paper's legend.
func (c Figure9Config) String() string { return fmt.Sprintf("%d:%d", c.Original, c.Surrogate) }

// Figure9Result aggregates the MiniWeather interleaving study: panels
// (d) RMSE vs speedup per config, (e) per-timestep RMSE series, and (f)
// the relative-error CDFs after 1 and 10 surrogate steps.
type Figure9Result struct {
	Configs []Figure9Config
	// FinalRMSE and Speedup are panel (d): one entry per config.
	FinalRMSE []float64
	Speedup   []float64
	// SeriesRMSE is panel (e): per-config, per-timestep RMSE.
	SeriesRMSE [][]float64
	// CDF1 and CDF10 are panel (f): relative-error quantiles after 1 and
	// 10 consecutive surrogate steps.
	CDF1, CDF10 *common.CDF
	RMSEStep1   float64
}

// Figure9 trains one MiniWeather surrogate and measures the interleaving
// configurations of the paper: 0:1 (all surrogate), 1:1, 2:1, 3:3.
func Figure9(dir string, scale Scale, opt Options, spinup, window int) (*Figure9Result, error) {
	h := NewMiniWeather(scale).(*mwHarness)
	dbPath := filepath.Join(dir, "miniweather-fig9.gh5")
	if _, err := h.Collect(dbPath, opt); err != nil {
		return nil, err
	}
	modelPath := filepath.Join(dir, "miniweather-fig9.gmod")
	arch := map[string]bo.Value{
		"conv1_kernel":   {Name: "conv1_kernel", Int: 3, IsInt: true},
		"conv1_channels": {Name: "conv1_channels", Int: 6, IsInt: true},
		"conv2_kernel":   {Name: "conv2_kernel", Int: 0, IsInt: true},
	}
	if _, err := h.Train(dbPath, modelPath, arch, defaultHyper(), opt); err != nil {
		return nil, err
	}

	sim := h.Instance()
	// Spin up with the accurate solver (the paper runs the original
	// solution until timestep 1000 and applies surrogates afterwards).
	sim.InitThermalBubble()
	for s := 0; s < spinup; s++ {
		sim.Step()
	}
	start := sim.Interior(nil)

	// Reference trajectory: accurate continuation.
	refStates := make([][]float64, window+1)
	refStates[0] = append([]float64(nil), start...)
	accurateTime, err := timeIt(1, func() error {
		sim.SetInterior(start)
		for s := 1; s <= window; s++ {
			sim.Step()
			refStates[s] = sim.Interior(nil)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	region, gate, useModel, err := h.Region(modelPath)
	if err != nil {
		return nil, err
	}
	defer region.Close()
	*useModel = true
	hpacml.ClearModelCache()

	res := &Figure9Result{
		Configs: []Figure9Config{{0, 1}, {1, 1}, {2, 1}, {3, 3}},
	}
	for _, cfg := range res.Configs {
		series := make([]float64, 0, window)
		var surrogateSteps int
		elapsed, err := timeIt(1, func() error {
			sim.SetInterior(start)
			phase := 0
			for s := 1; s <= window; s++ {
				useSurrogate := false
				if cfg.Original == 0 {
					useSurrogate = true
				} else {
					cycle := cfg.Original + cfg.Surrogate
					useSurrogate = phase%cycle >= cfg.Original
				}
				phase++
				*gate = useSurrogate
				if err := region.Execute(func() error { sim.Step(); return nil }); err != nil {
					return err
				}
				if useSurrogate {
					surrogateSteps++
				}
				rmse, err := common.RMSE(sim.Interior(nil), refStates[s])
				if err != nil {
					return err
				}
				series = append(series, rmse)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.SeriesRMSE = append(res.SeriesRMSE, series)
		res.FinalRMSE = append(res.FinalRMSE, series[len(series)-1])
		res.Speedup = append(res.Speedup, accurateTime.Seconds()/elapsed.Seconds())
		_ = surrogateSteps
	}

	// Panel (f): relative-error CDFs after 1 and 10 consecutive
	// surrogate steps from the spun-up state. The denominator floor is
	// scale-aware: a few percent of the reference state's RMS, so
	// quiescent near-zero cells do not dominate the distribution.
	floor := 0.05 * rms(refStates[1])
	sim.SetInterior(start)
	*gate = true
	if err := region.Execute(func() error { sim.Step(); return nil }); err != nil {
		return nil, err
	}
	rel1, err := common.RelativeErrors(sim.Interior(nil), refStates[1], floor)
	if err != nil {
		return nil, err
	}
	res.RMSEStep1, err = common.RMSE(sim.Interior(nil), refStates[1])
	if err != nil {
		return nil, err
	}
	res.CDF1, err = common.NewCDF(rel1)
	if err != nil {
		return nil, err
	}
	steps10 := window
	if steps10 > 10 {
		steps10 = 10
	}
	sim.SetInterior(start)
	for s := 0; s < steps10; s++ {
		if err := region.Execute(func() error { sim.Step(); return nil }); err != nil {
			return nil, err
		}
	}
	rel10, err := common.RelativeErrors(sim.Interior(nil), refStates[steps10], floor)
	if err != nil {
		return nil, err
	}
	res.CDF10, err = common.NewCDF(rel10)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// rms returns the root-mean-square of a series.
func rms(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if len(v) == 0 {
		return 0
	}
	return mathSqrtPos(s / float64(len(v)))
}

func mathSqrtPos(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// WriteFigure9 renders the Figure 9 panels.
func WriteFigure9(w io.Writer, r *Figure9Result) {
	fmt.Fprintln(w, "Figure 9(d): RMSE vs speedup per Original:Surrogate configuration.")
	tw := newTextTable("Original:Surrogate", "Final RMSE", "Speedup")
	for i, cfg := range r.Configs {
		tw.row(cfg.String(), fmt.Sprintf("%.4g", r.FinalRMSE[i]), fmt.Sprintf("%.2fx", r.Speedup[i]))
	}
	tw.flush(w)

	fmt.Fprintln(w, "Figure 9(e): Per-timestep RMSE per configuration.")
	header := []string{"Step"}
	for _, cfg := range r.Configs {
		header = append(header, cfg.String())
	}
	tw = newTextTable(header...)
	for s := 0; s < len(r.SeriesRMSE[0]); s++ {
		row := []string{fmt.Sprintf("%d", s+1)}
		for c := range r.Configs {
			row = append(row, fmt.Sprintf("%.4g", r.SeriesRMSE[c][s]))
		}
		tw.row(row...)
	}
	tw.flush(w)

	fmt.Fprintln(w, "Figure 9(f): CDF of relative error after 1 vs 10 surrogate steps.")
	fmt.Fprintf(w, "  RMSE after first surrogate step: %.4g\n", r.RMSEStep1)
	tw = newTextTable("Percentile", "After 1 step", "After 10 steps")
	for _, p := range []float64{0.5, 0.8, 0.9, 0.99} {
		tw.row(fmt.Sprintf("%.0f%%", p*100),
			fmt.Sprintf("%.4g", r.CDF1.Quantile(p)),
			fmt.Sprintf("%.4g", r.CDF10.Quantile(p)))
	}
	tw.flush(w)
}

// NestedCampaign runs the full paper-style nested BO search for one
// benchmark: outer architecture search, inner hyperparameter tuning,
// objectives (inference latency, validation error). Expensive: used by
// cmd/hpacml-search.
func NestedCampaign(h Harness, dir string, opt Options, cfg bo.NestedConfig) (*bo.NestedResult, error) {
	name := h.Info().Name
	dbPath := filepath.Join(dir, name+"-search.gh5")
	if _, err := h.Collect(dbPath, opt); err != nil {
		return nil, err
	}
	// The callback must be safe for concurrent calls when
	// cfg.InnerWorkers > 1: the trial counter (and the model path
	// derived from it) is mutex-guarded, and Evaluate is serialized —
	// the harness app is shared mutable state, and latency is a
	// wall-clock measurement. Training, the expensive phase, still runs
	// concurrently; see NestedConfig.InnerWorkers for the measurement
	// noise concurrent training adds.
	var mu, evalMu sync.Mutex
	trial := 0
	return bo.NestedSearch(h.ArchSpace(), HyperSpace(),
		func(arch, hyper map[string]bo.Value) (float64, float64, error) {
			mu.Lock()
			trial++
			modelPath := filepath.Join(dir, fmt.Sprintf("%s-search-%d.gmod", name, trial))
			mu.Unlock()
			valErr, err := h.Train(dbPath, modelPath, arch, hyper, opt)
			if err != nil {
				return 0, 0, err
			}
			evalMu.Lock()
			res, err := h.Evaluate(modelPath, opt)
			evalMu.Unlock()
			if err != nil {
				return 0, 0, err
			}
			return res.LatencySec, valErr, nil
		}, cfg)
}
