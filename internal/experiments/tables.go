package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/benchmarks/common"
)

// Table1 returns the benchmark registry — the content of paper Table I.
func Table1(scale Scale) []common.Info {
	hs := Registry(scale)
	out := make([]common.Info, len(hs))
	for i, h := range hs {
		out[i] = h.Info()
	}
	return out
}

// WriteTable1 renders Table I.
func WriteTable1(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "Table I: The benchmarks used to evaluate HPAC-ML.")
	tw := newTextTable("Benchmark", "Description", "QoI", "Metric")
	for _, info := range Table1(scale) {
		tw.row(info.Name, info.Description, info.QoI, string(info.Metric))
	}
	tw.flush(w)
}

// WriteTable2 renders Table II: application source-code impact.
func WriteTable2(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "Table II: Application source code impact of HPAC-ML.")
	tw := newTextTable("Benchmark", "Total LoC", "HPAC-ML LoC", "HPAC-ML Directives")
	for _, info := range Table1(scale) {
		tw.row(info.Name,
			fmt.Sprintf("%d", info.TotalLoC),
			fmt.Sprintf("%d", info.HPACMLLoC),
			fmt.Sprintf("%d", info.DirectiveCount))
	}
	tw.flush(w)
}

// Table3 measures data-collection overhead for every benchmark.
func Table3(dir string, scale Scale, opt Options) ([]CollectStats, error) {
	var out []CollectStats
	for _, h := range Registry(scale) {
		cs, err := h.CollectOverhead(dir, opt)
		if err != nil {
			return nil, fmt.Errorf("table 3 (%s): %w", h.Info().Name, err)
		}
		out = append(out, cs)
	}
	return out, nil
}

// WriteTable3 renders Table III from measurements.
func WriteTable3(w io.Writer, rows []CollectStats) {
	fmt.Fprintln(w, "Table III: Data collection overhead.")
	tw := newTextTable("Benchmark", "Original Runtime", "Runtime With Data Collection", "Overhead", "Collected Data Size (MB)")
	for _, r := range rows {
		tw.row(r.Benchmark,
			fmtSeconds(r.PlainSec),
			fmtSeconds(r.CollectSec),
			fmt.Sprintf("%.2fx", r.OverheadX),
			fmt.Sprintf("%.2f", r.DataSizeMB))
	}
	tw.flush(w)
}

// WriteTable4 renders Table IV: the paper-scale neural architecture
// search spaces per benchmark.
func WriteTable4(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "Table IV: Search space used for neural architecture search.")
	for _, h := range Registry(scale) {
		fmt.Fprintf(w, "  %s:\n", h.Info().Name)
		for _, row := range h.PaperArchSpace() {
			fmt.Fprintf(w, "    %s\n", row)
		}
	}
}

// WriteTable5 renders Table V: the BO hyperparameter space.
func WriteTable5(w io.Writer) {
	fmt.Fprintln(w, "Table V: Search space used for BO hyperparameter tuning.")
	for _, row := range PaperHyperSpace() {
		fmt.Fprintf(w, "  %s\n", row)
	}
}

func fmtSeconds(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.2fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// textTable accumulates rows and renders them with aligned columns.
type textTable struct {
	header []string
	rows   [][]string
}

func newTextTable(header ...string) *textTable {
	return &textTable{header: header}
}

func (t *textTable) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *textTable) flush(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
