// Package telemetry is the repo's dependency-free metrics kernel: a
// registry of counters, gauges, and fixed-bucket histograms — plain
// and labeled — whose record path is a handful of atomic operations
// with zero steady-state allocations, plus Prometheus text-format
// exposition so any scraper can watch a long-running surrogate service
// from the outside.
//
// The design splits hot from cold deliberately:
//
//   - Recording (Counter.Inc, Gauge.Set, Histogram.Observe) touches
//     only pre-resolved atomics. Callers on a hot path resolve labeled
//     children once (Vec.With) and hold the handles; nothing on the
//     record path locks, formats, or allocates. A test pins the
//     zero-allocation property with testing.AllocsPerRun and the
//     benchmarks measure the per-op cost.
//   - Registration and label-child creation take the registry or vec
//     lock and may allocate; both happen at startup or on the first
//     sight of a label combination, never per event.
//   - Scraping (WritePrometheus / Handler) renders every family into a
//     caller-supplied buffer with strconv appends — pooled by Handler,
//     so steady scrape traffic reuses one buffer instead of rebuilding
//     the world each time.
//
// Values that already live elsewhere (queue lengths, accumulated
// runtime counters) bridge in through func-backed families
// (CounterFunc / GaugeFunc): the callback emits samples only when a
// scrape happens, so mirroring an existing subsystem costs nothing
// between scrapes.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type as exposition reports it.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing value. The zero value is ready
// to use, but counters are normally created through a Registry so they
// appear in exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; deltas are uint64 by construction.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits in
// one atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative to decrease) with a CAS loop,
// so concurrent adders never lose an update.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Each bucket's
// upper bound is inclusive (Prometheus "le" semantics): an observation
// equal to a bound lands in that bound's bucket. Observations above
// the last bound land in the implicit +Inf bucket. The sum of
// observed values is kept alongside, so scrapers can derive rates and
// means without the raw samples.
type Histogram struct {
	bounds  []float64 // sorted, strictly increasing upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value: a linear scan over the (small, fixed)
// bound slice, two atomic adds, and a CAS loop for the sum — no
// allocation, no lock.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshotInto appends the cumulative bucket counts (ending with the
// +Inf bucket) to dst. Concurrent Observes may land between bucket
// reads — each bucket is exact, the view across them is eventually
// consistent, which is what a scrape needs.
func (h *Histogram) snapshotInto(dst []uint64) []uint64 {
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		dst = append(dst, cum)
	}
	return dst
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultLatencyBuckets spans 100µs to ~100s in powers of ~3 — wide
// enough for both a coalesced micro-batch wait and a pathological
// stall, in seconds (the base unit every *_seconds metric uses).
var DefaultLatencyBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100,
}

// Emit publishes one sample from a func-backed family during a scrape.
// labelValues must match the family's label names positionally.
type Emit func(value float64, labelValues ...string)

// family is one named metric with all its labeled children.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]any // label-values key -> *Counter / *Gauge / *Histogram
	order    []string       // sorted keys, maintained on insert (cold path)
	keyVals  map[string][]string

	collect func(Emit) // func-backed families; children stay empty
}

// child returns (creating on first sight) the labeled child for vals.
func (f *family) child(vals []string) any {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	switch f.kind {
	case KindCounter:
		c = new(Counter)
	case KindGauge:
		c = new(Gauge)
	case KindHistogram:
		c = &Histogram{bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.children[key] = c
	i := sort.SearchStrings(f.order, key)
	f.order = append(f.order, "")
	copy(f.order[i+1:], f.order[i:])
	f.order[i] = key
	f.keyVals[key] = append([]string(nil), vals...)
	return c
}

// Registry holds metric families and renders them for scraping. The
// zero value is not usable; call NewRegistry. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // sorted family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, panicking on an invalid or duplicate
// name — both are wiring mistakes that must fail at startup, not be
// discovered as a silently missing series.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", f.name, l))
		}
	}
	if f.kind == KindHistogram {
		for i := 1; i < len(f.bounds); i++ {
			if f.bounds[i] <= f.bounds[i-1] {
				panic(fmt.Sprintf("telemetry: metric %q: bucket bounds must increase strictly, got %v", f.name, f.bounds))
			}
		}
	}
	f.children = make(map[string]any)
	f.keyVals = make(map[string][]string)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
	i := sort.SearchStrings(r.order, f.name)
	r.order = append(r.order, "")
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = f.name
	return f
}

// validName checks the Prometheus identifier grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* for metric and label names.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: KindCounter})
	return f.child(nil).(*Counter)
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: KindGauge})
	return f.child(nil).(*Gauge)
}

// Histogram registers and returns an unlabeled histogram over the
// given inclusive upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(&family{name: name, help: help, kind: KindHistogram, bounds: bounds})
	return f.child(nil).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, kind: KindCounter, labels: labelNames})}
}

// With resolves the child for the given label values, creating it on
// first sight. Hot paths should call this once and hold the result.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, kind: KindGauge, labels: labelNames})}
}

// With resolves the child for the given label values (see CounterVec.With).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).(*Gauge)
}

// HistogramVec is a histogram family with labels; every child shares
// the family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{name: name, help: help, kind: KindHistogram, bounds: bounds, labels: labelNames})}
}

// With resolves the child for the given label values (see CounterVec.With).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).(*Histogram)
}

// CounterFunc registers a func-backed counter family: collect runs at
// every scrape and emits the family's current samples. Use it to
// mirror counters that already accumulate elsewhere (region runtime
// stats, ingest totals) without double bookkeeping. collect must not
// register metrics or scrape the same registry.
func (r *Registry) CounterFunc(name, help string, labelNames []string, collect func(Emit)) {
	r.register(&family{name: name, help: help, kind: KindCounter, labels: labelNames, collect: collect})
}

// GaugeFunc registers a func-backed gauge family (see CounterFunc);
// the natural fit for sampled values like queue depths.
func (r *Registry) GaugeFunc(name, help string, labelNames []string, collect func(Emit)) {
	r.register(&family{name: name, help: help, kind: KindGauge, labels: labelNames, collect: collect})
}
