package telemetry

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the main module version,
// the VCS revision it was built from (with a -dirty suffix for a
// modified working tree), and the Go toolchain. Everything degrades
// to "unknown" when the binary was built without module or VCS
// metadata (e.g. go run from a tarball), never to an error — version
// reporting must not be able to fail.
type BuildInfo struct {
	Version   string `json:"version"`
	Revision  string `json:"revision"`
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build information, read once from
// runtime/debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", Revision: "unknown", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		if v := bi.Main.Version; v != "" {
			buildInfo.Version = v
		}
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			buildInfo.Revision = rev
		}
	})
	return buildInfo
}

// VersionString renders the one-line answer every binary's -version
// flag prints: "name version (revision, goversion)".
func VersionString(name string) string {
	b := Build()
	return fmt.Sprintf("%s %s (%s, %s)", name, b.Version, b.Revision, b.GoVersion)
}

// RegisterBuildInfo publishes the conventional build-info gauge: a
// constant 1 whose labels carry the identity, so a scraper can join
// every other series to the code that produced it.
func (r *Registry) RegisterBuildInfo(name string) {
	b := Build()
	r.GaugeVec(name, "Build and version information of the running binary (value is always 1).",
		"version", "revision", "goversion").
		With(b.Version, b.Revision, b.GoVersion).Set(1)
}
