//go:build !race

package telemetry

// raceEnabled reports whether the race detector is active; see the race
// build-tagged twin.
const raceEnabled = false
