//go:build race

package telemetry

// raceEnabled reports that the race detector is active: its
// instrumentation allocates, so zero-allocation assertions must be
// skipped (the -race CI job checks synchronization, not allocs).
const raceEnabled = true
