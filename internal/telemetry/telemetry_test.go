package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics: the scalar primitives hold and report exact
// values, including concurrent gauge adds (the CAS loop must not lose
// updates).
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("t_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8001.5 {
		t.Fatalf("gauge after concurrent adds = %v, want 8001.5", got)
	}
}

// TestHistogramBoundaries pins the inclusive-le bucket semantics: an
// observation equal to a bound lands in that bound's bucket, the next
// representable value above it in the following one, and values past
// the last bound in the implicit +Inf bucket.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{1, 2, 3})
	h.Observe(1)   // == bounds[0] -> bucket 0
	h.Observe(1.5) // bucket 1
	h.Observe(2)   // == bounds[1] -> bucket 1
	h.Observe(3)   // == bounds[2] -> bucket 2
	h.Observe(3.5) // +Inf bucket
	h.Observe(-1)  // below everything -> bucket 0

	cum := h.snapshotInto(nil)
	want := []uint64{2, 4, 5, 6} // cumulative: le=1, le=2, le=3, +Inf
	if len(cum) != len(want) {
		t.Fatalf("snapshot has %d buckets, want %d", len(cum), len(want))
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative bucket %d = %d, want %d (all: %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 10 {
		t.Fatalf("sum = %v, want 10", h.Sum())
	}
}

// TestBucketHelpers: the two bound constructors produce the documented
// sequences.
func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
}

// TestExpositionGolden locks the Prometheus text rendering byte for
// byte: family and label-set ordering, histogram le/_sum/_count
// layout, the +Inf bucket, and help escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "Forward latency.", []float64{0.25, 1, 4})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(20)
	r.GaugeFunc("t_queue_depth", "Queue depth.", []string{"model"}, func(emit Emit) {
		emit(4, "m")
	})
	reqs := r.CounterVec("t_requests_total", "Total requests.", "path", "code")
	reqs.With("/a", "200").Add(3)
	reqs.With("/b", "500").Inc()
	g := r.Gauge("t_temp_celsius", "Temp \\ with\nnewline.")
	g.Set(-2.5)

	want := strings.Join([]string{
		`# HELP t_lat_seconds Forward latency.`,
		`# TYPE t_lat_seconds histogram`,
		`t_lat_seconds_bucket{le="0.25"} 1`,
		`t_lat_seconds_bucket{le="1"} 2`,
		`t_lat_seconds_bucket{le="4"} 2`,
		`t_lat_seconds_bucket{le="+Inf"} 3`,
		`t_lat_seconds_sum 20.75`,
		`t_lat_seconds_count 3`,
		`# HELP t_queue_depth Queue depth.`,
		`# TYPE t_queue_depth gauge`,
		`t_queue_depth{model="m"} 4`,
		`# HELP t_requests_total Total requests.`,
		`# TYPE t_requests_total counter`,
		`t_requests_total{path="/a",code="200"} 3`,
		`t_requests_total{path="/b",code="500"} 1`,
		`# HELP t_temp_celsius Temp \\ with\nnewline.`,
		`# TYPE t_temp_celsius gauge`,
		`t_temp_celsius -2.5`,
	}, "\n") + "\n"
	got := string(r.AppendPrometheus(nil))
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabelValueEscaping: backslash, quote, and newline in label
// values must render escaped, or one hostile model name corrupts the
// whole scrape.
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("t_esc_total", "esc", "name").With("a\\b\"c\nd").Inc()
	got := string(r.AppendPrometheus(nil))
	want := `t_esc_total{name="a\\b\"c\nd"} 1` + "\n"
	if !strings.HasSuffix(got, want) {
		t.Fatalf("escaped series = %q, want suffix %q", got, want)
	}
}

// TestRegistrationPanics: wiring mistakes must fail loudly at startup.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("t_ok_total", "ok")
	mustPanic("duplicate name", func() { r.Counter("t_ok_total", "again") })
	mustPanic("invalid name", func() { r.Counter("0bad", "bad") })
	mustPanic("invalid label", func() { r.CounterVec("t_l_total", "l", "bad-label") })
	mustPanic("unsorted bounds", func() { r.Histogram("t_h_seconds", "h", []float64{1, 1}) })
	v := r.CounterVec("t_v_total", "v", "a", "b")
	mustPanic("wrong label count", func() { v.With("only-one") })
}

// TestConcurrentRecordScrape hammers every primitive from many
// goroutines while scrapes run — the test the -race CI job leans on —
// then checks nothing was lost.
func TestConcurrentRecordScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_c_total", "c")
	g := r.Gauge("t_g", "g")
	h := r.Histogram("t_h_seconds", "h", DefaultLatencyBuckets)
	vec := r.CounterVec("t_v_total", "v", "who")

	const workers, iters = 8, 2000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // scraper, concurrent with every recorder
		defer scraper.Done()
		var buf []byte
		for {
			select {
			case <-stop:
				return
			default:
				buf = r.AppendPrometheus(buf[:0])
			}
		}
	}()
	var recorders sync.WaitGroup
	for w := 0; w < workers; w++ {
		recorders.Add(1)
		go func() {
			defer recorders.Done()
			child := vec.With("w") // shared child, resolved per goroutine
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 1e-3)
				child.Inc()
			}
		}()
	}
	recorders.Wait()
	close(stop)
	scraper.Wait()

	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if vec.With("w").Value() != workers*iters {
		t.Fatalf("vec child = %d, want %d", vec.With("w").Value(), workers*iters)
	}
}

// TestZeroAllocRecord pins the hot-path contract: recording on
// pre-resolved handles allocates nothing.
func TestZeroAllocRecord(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	r := NewRegistry()
	c := r.CounterVec("t_c_total", "c", "who").With("w")
	g := r.Gauge("t_g", "g")
	h := r.Histogram("t_h_seconds", "h", DefaultLatencyBuckets)
	if allocs := testing.AllocsPerRun(200, func() { c.Inc(); c.Add(2) }); allocs != 0 {
		t.Fatalf("counter record path allocates %.1f/op", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { g.Set(1); g.Add(0.5) }); allocs != 0 {
		t.Fatalf("gauge record path allocates %.1f/op", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { h.Observe(2.5e-3) }); allocs != 0 {
		t.Fatalf("histogram record path allocates %.1f/op", allocs)
	}
}

// TestHandler: the scrape endpoint answers with the exposition
// Content-Type, an exact Content-Length, and the same bytes
// AppendPrometheus renders.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_ops_total", "ops").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypePrometheus {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypePrometheus)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := string(r.AppendPrometheus(nil)); string(body) != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if !strings.Contains(string(body), "t_ops_total 7") {
		t.Fatalf("body missing counter: %q", body)
	}
}

// TestBuildInfo: the build-info gauge renders as a value-1 series with
// version/revision/goversion labels, and VersionString is non-empty
// for every field.
func TestBuildInfo(t *testing.T) {
	bi := Build()
	if bi.Version == "" || bi.Revision == "" || bi.GoVersion == "" {
		t.Fatalf("Build() has empty fields: %+v", bi)
	}
	vs := VersionString("toolname")
	if !strings.HasPrefix(vs, "toolname ") || !strings.Contains(vs, bi.GoVersion) {
		t.Fatalf("VersionString = %q", vs)
	}
	r := NewRegistry()
	r.RegisterBuildInfo("t_build_info")
	out := string(r.AppendPrometheus(nil))
	if !strings.Contains(out, `t_build_info{`) || !strings.Contains(out, `goversion="`+bi.GoVersion+`"`) {
		t.Fatalf("build info missing from exposition:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "} 1") {
		t.Fatalf("build info gauge must be 1:\n%s", out)
	}
}

// BenchmarkCounterInc measures (and, via -benchmem, documents) the
// record path: must report 0 B/op.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("b_c_total", "c", "who").With("w")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve: the latency-record path — bucket scan,
// two adds, CAS sum. Must report 0 B/op.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("b_h_seconds", "h", DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(2.5e-3)
	}
}

// BenchmarkScrape renders a realistically sized registry (a few
// families, a few children each) into a reused buffer.
func BenchmarkScrape(b *testing.B) {
	r := NewRegistry()
	vec := r.CounterVec("b_req_total", "req", "path", "code")
	for _, p := range []string{"/v1/infer", "/v1/capture", "/v1/stats"} {
		vec.With(p, "200").Add(100)
	}
	h := r.HistogramVec("b_lat_seconds", "lat", DefaultLatencyBuckets, "model")
	for _, m := range []string{"a", "b"} {
		for i := 0; i < 100; i++ {
			h.With(m).Observe(float64(i) * 1e-4)
		}
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendPrometheus(buf[:0])
	}
}
