package telemetry

import (
	"math"
	"net/http"
	"strconv"
	"sync"
)

// Prometheus text exposition (format version 0.0.4): one # HELP and
// # TYPE line per family, then every series, families and label sets
// in sorted order so scrapes are diffable and the golden test is
// stable. Values render with strconv appends into the caller's buffer
// — the scrape path builds no intermediate strings.

// ContentTypePrometheus is the scrape response Content-Type.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// AppendPrometheus renders the registry into buf and returns it, in
// the Prometheus text format. Func-backed families run their collect
// callbacks here; everything else reads atomics. Concurrent recording
// skews a series by at most the events that landed mid-scrape.
func (r *Registry) AppendPrometheus(buf []byte) []byte {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()

	var cum []uint64 // histogram snapshot scratch, reused across children
	for _, f := range fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')

		if f.collect != nil {
			buf = f.appendFuncSamples(buf)
			continue
		}

		f.mu.RLock()
		order := append([]string(nil), f.order...)
		children := make([]any, len(order))
		vals := make([][]string, len(order))
		for i, k := range order {
			children[i] = f.children[k]
			vals[i] = f.keyVals[k]
		}
		f.mu.RUnlock()

		for i, c := range children {
			switch m := c.(type) {
			case *Counter:
				buf = appendSeries(buf, f.name, "", f.labels, vals[i], "", 0)
				buf = strconv.AppendUint(buf, m.Value(), 10)
				buf = append(buf, '\n')
			case *Gauge:
				buf = appendSeries(buf, f.name, "", f.labels, vals[i], "", 0)
				buf = appendFloat(buf, m.Value())
				buf = append(buf, '\n')
			case *Histogram:
				cum = m.snapshotInto(cum[:0])
				for bi, bound := range m.bounds {
					buf = appendSeries(buf, f.name, "_bucket", f.labels, vals[i], "le", bound)
					buf = strconv.AppendUint(buf, cum[bi], 10)
					buf = append(buf, '\n')
				}
				buf = appendSeries(buf, f.name, "_bucket", f.labels, vals[i], "le", math.Inf(1))
				buf = strconv.AppendUint(buf, cum[len(cum)-1], 10)
				buf = append(buf, '\n')
				buf = appendSeries(buf, f.name, "_sum", f.labels, vals[i], "", 0)
				buf = appendFloat(buf, m.Sum())
				buf = append(buf, '\n')
				buf = appendSeries(buf, f.name, "_count", f.labels, vals[i], "", 0)
				buf = strconv.AppendUint(buf, m.Count(), 10)
				buf = append(buf, '\n')
			}
		}
	}
	return buf
}

// appendFuncSamples renders a func-backed family by running its
// collect callback with an emitter that formats each sample in place.
func (f *family) appendFuncSamples(buf []byte) []byte {
	f.collect(func(v float64, labelValues ...string) {
		if len(labelValues) != len(f.labels) {
			panic("telemetry: func metric " + f.name + " emitted wrong label count")
		}
		buf = appendSeries(buf, f.name, "", f.labels, labelValues, "", 0)
		buf = appendFloat(buf, v)
		buf = append(buf, '\n')
	})
	return buf
}

// appendSeries writes `name[suffix]{l1="v1",...[,extra="bound"]} ` up
// to and including the separating space. extra carries the histogram
// "le" label; its bound formats like any other float except +Inf.
func appendSeries(buf []byte, name, suffix string, labels, vals []string, extra string, bound float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if len(labels) > 0 || extra != "" {
		buf = append(buf, '{')
		for i, l := range labels {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, l...)
			buf = append(buf, '=', '"')
			buf = appendEscapedValue(buf, vals[i])
			buf = append(buf, '"')
		}
		if extra != "" {
			if len(labels) > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, extra...)
			buf = append(buf, '=', '"')
			if math.IsInf(bound, 1) {
				buf = append(buf, "+Inf"...)
			} else {
				buf = appendFloat(buf, bound)
			}
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	return append(buf, ' ')
}

// appendFloat renders v the way Prometheus clients conventionally do:
// shortest representation that round-trips.
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendEscapedValue escapes a label value: backslash, double quote,
// and newline, per the text-format rules.
func appendEscapedValue(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendEscapedHelp escapes a help string: backslash and newline (help
// text is not quoted, so quotes pass through).
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// scrapeBufs pools exposition buffers so steady scrape traffic (a
// monitoring system every few seconds) reuses one slab instead of
// reallocating the rendered world per scrape.
var scrapeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// Handler serves the registry as a Prometheus scrape endpoint
// (GET /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		bp := scrapeBufs.Get().(*[]byte)
		defer scrapeBufs.Put(bp)
		*bp = r.AppendPrometheus((*bp)[:0])
		w.Header().Set("Content-Type", ContentTypePrometheus)
		w.Header().Set("Content-Length", strconv.Itoa(len(*bp)))
		w.Write(*bp)
	})
}
