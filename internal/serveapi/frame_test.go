package serveapi

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"
)

// rawInferFrame hand-assembles an infer-request frame with arbitrary
// dimension fields — the encoder refuses to build forged geometries, so
// decoder tests for them must craft the bytes directly.
func rawInferFrame(dtype Dtype, model string, rows, cols uint32, payload []byte) []byte {
	body := binary.LittleEndian.AppendUint16(nil, uint16(len(model)))
	body = append(body, model...)
	body = binary.LittleEndian.AppendUint32(body, rows)
	body = binary.LittleEndian.AppendUint32(body, cols)
	body = append(body, payload...)
	frame := binary.LittleEndian.AppendUint32(nil, FrameMagic)
	frame = append(frame, FrameVersion, FrameInferRequest, byte(dtype), 0)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	return append(frame, body...)
}

func sampleSlab(rows, cols int) []float64 {
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = math.Sin(float64(i)) * 1e3
	}
	return data
}

func TestInferFrameRoundTrip(t *testing.T) {
	for _, dtype := range []Dtype{DtypeF64, DtypeF32, DtypeI8} {
		rows, cols := 7, 5
		data := sampleSlab(rows, cols)
		if dtype == DtypeI8 {
			// i8 is exact only for integer values in [-128, 127]; the
			// round trip is asserted bitwise, so feed it its own domain.
			for i := range data {
				data[i] = float64(int8(i*13 - 90))
			}
		}
		frame, err := AppendInferRequest(nil, dtype, "binomial", rows, cols, data)
		if err != nil {
			t.Fatalf("%s: encode: %v", dtype, err)
		}
		scratch := make([]float64, 1) // deliberately too small: decode must grow it
		got, err := DecodeInferRequest(frame, scratch)
		if err != nil {
			t.Fatalf("%s: decode: %v", dtype, err)
		}
		if got.Model != "binomial" || got.Rows != rows || got.Cols != cols || got.Dtype != dtype {
			t.Fatalf("%s: decoded %+v", dtype, got)
		}
		for i, v := range got.Data {
			want := data[i]
			if dtype == DtypeF32 {
				want = float64(float32(want))
			}
			if v != want {
				t.Fatalf("%s: element %d = %g, want %g", dtype, i, v, want)
			}
		}
		if dtype == DtypeI8 && len(frame) != FrameHeaderLen+2+len("binomial")+8+rows*cols {
			t.Fatalf("i8 frame is %d bytes, want one byte per element", len(frame))
		}
		// Response kind must not decode as a request.
		resp, err := AppendInferResponse(nil, dtype, "binomial", rows, cols, data)
		if err != nil {
			t.Fatalf("%s: encode response: %v", dtype, err)
		}
		if _, err := DecodeInferRequest(resp, nil); err == nil {
			t.Fatalf("%s: response frame decoded as request", dtype)
		}
		if _, err := DecodeInferResponse(resp, nil); err != nil {
			t.Fatalf("%s: decode response: %v", dtype, err)
		}
	}
}

// TestI8WireEncoding pins the i8 transport semantics: round
// half-away-from-zero, saturate to [-128, 127], NaN to 0. These are
// wire-format guarantees — changing them breaks cross-version peers.
func TestI8WireEncoding(t *testing.T) {
	in := []float64{0, 1, -1, 0.5, -0.5, 0.49, -0.49, 126.6, 127, 128, 1e300, -127.5, -128, -129, -1e300, math.NaN(), math.Inf(1), math.Inf(-1)}
	want := []float64{0, 1, -1, 1, -1, 0, 0, 127, 127, 127, 127, -128, -128, -128, -128, 0, 127, -128}
	frame, err := AppendInferRequest(nil, DtypeI8, "m", 1, len(in), in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInferRequest(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Data {
		if v != want[i] {
			t.Errorf("encode(%g) round-tripped to %g, want %g", in[i], v, want[i])
		}
	}
}

func TestInferFrameDecodeReusesBuffer(t *testing.T) {
	rows, cols := 4, 8
	frame, err := AppendInferRequest(nil, DtypeF64, "m", rows, cols, sampleSlab(rows, cols))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, rows*cols)
	got, err := DecodeInferRequest(frame, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got.Data[0] != &buf[0] {
		t.Fatal("decode did not reuse the caller's buffer")
	}
}

func TestCaptureFrameRoundTrip(t *testing.T) {
	recs := []CaptureRecord{
		{Region: "stencil", InputShape: []int{1, 5}, Inputs: sampleSlab(1, 5),
			OutputShape: []int{1, 1}, Outputs: []float64{42}, RuntimeNS: 123.5},
		{Region: "stencil", InputShape: []int{2, 3}, Inputs: sampleSlab(2, 3),
			OutputShape: []int{2, 1}, Outputs: []float64{-1, 9}, RuntimeNS: 7},
	}
	frame, err := AppendCaptureRequest(nil, DtypeF64, "traindb", recs)
	if err != nil {
		t.Fatal(err)
	}
	db, got, err := DecodeCaptureRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if db != "traindb" || len(got) != len(recs) {
		t.Fatalf("decoded db %q, %d records", db, len(got))
	}
	a, _ := json.Marshal(recs)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("capture records did not round-trip:\n%s\n%s", a, b)
	}
}

func TestFrameDecodeRejectsMalformed(t *testing.T) {
	rows, cols := 2, 3
	good, err := AppendInferRequest(nil, DtypeF64, "m", rows, cols, sampleSlab(rows, cols))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            nil,
		"truncated header": good[:FrameHeaderLen-3],
		"truncated body":   good[:len(good)-5],
		"trailing bytes":   append(append([]byte(nil), good...), 0xAB),
		"bad magic":        corrupt(func(b []byte) { b[0] ^= 0xFF }),
		"bad version":      corrupt(func(b []byte) { b[4] = 99 }),
		"bad dtype":        corrupt(func(b []byte) { b[6] = 7 }),
		"forged rows":      corrupt(func(b []byte) { b[FrameHeaderLen+3] = 0xFF; b[FrameHeaderLen+4] = 0xFF; b[FrameHeaderLen+5] = 0xFF; b[FrameHeaderLen+6] = 0xFF }),
	}
	for name, frame := range cases {
		if _, err := DecodeInferRequest(frame, nil); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}
}

// TestFrameDecodeRejectsForgedGeometry pins the two dimension forgeries
// the payload-size equality alone cannot catch: a zero dim paired with
// a huge one (0 elements matches an empty body regardless of the other
// dim), and dims whose elems*size product wraps uint64 back to the body
// size (2^31 x 2^30 x 8 ≡ 0). Either used to reach the allocator.
func TestFrameDecodeRejectsForgedGeometry(t *testing.T) {
	cases := map[string][2]uint32{
		"zero cols, max rows":      {math.MaxUint32, 0},
		"zero rows, max cols":      {0, math.MaxUint32},
		"elems*size wraps uint64":  {1 << 31, 1 << 30},
		"elems*4 wraps uint64 f32": {1 << 31, 1 << 31},
	}
	for name, dims := range cases {
		dtype := DtypeF64
		if dims[0] == dims[1] {
			dtype = DtypeF32
		}
		if _, err := DecodeInferRequest(rawInferFrame(dtype, "m", dims[0], dims[1], nil), nil); err == nil {
			t.Errorf("%s: decode accepted forged dims", name)
		}
	}
	// [0, 0] is the one legal empty geometry; it must keep decoding so
	// servers can answer it with their own "no rows" error.
	empty, err := AppendInferRequest(nil, DtypeF64, "m", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeInferRequest(empty, nil); err != nil {
		t.Fatalf("empty [0,0] frame no longer decodes: %v", err)
	}
}

// TestFrameSizeCaps: frames are bounded by MaxFrameLen end to end — the
// encoders error out instead of letting the u32 length prefix truncate,
// and the decoder refuses oversized byte streams outright.
func TestFrameSizeCaps(t *testing.T) {
	huge := make([]float64, maxFrameBody/8+1)
	if _, err := AppendInferRequest(nil, DtypeF64, "m", 1, len(huge), huge); err == nil {
		t.Error("infer encoder accepted a body beyond MaxFrameLen")
	}
	rec := CaptureRecord{Region: "r", InputShape: []int{len(huge)}, Inputs: huge,
		OutputShape: []int{1}, Outputs: []float64{1}}
	if _, err := AppendCaptureRequest(nil, DtypeF64, "db", []CaptureRecord{rec}); err == nil {
		t.Error("capture encoder accepted a body beyond MaxFrameLen")
	}
	if _, err := AppendInferRequest(nil, DtypeF64, "m", 3, 0, nil); err == nil {
		t.Error("infer encoder accepted degenerate [3, 0] geometry")
	}
	if _, err := DecodeInferRequest(make([]byte, MaxFrameLen+1), nil); err == nil {
		t.Error("decoder accepted a frame beyond MaxFrameLen")
	}
}

// BenchmarkFrameCodec measures the codec-level cost of one /v1/infer
// round trip (encode request + decode request + encode response +
// decode response) for the binary frame against encoding/json over the
// same payload, with every buffer reused across iterations. The
// client-level BenchmarkWireJSONvsBinary in internal/serveclient
// measures the same comparison over live HTTP.
func BenchmarkFrameCodec(b *testing.B) {
	rows, inCols, outCols := 64, 16, 4
	in := sampleSlab(rows, inCols)
	out := sampleSlab(rows, outCols)

	b.Run("binary", func(b *testing.B) {
		var reqBuf, respBuf []byte
		var reqF, respF []float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if reqBuf, err = AppendInferRequest(reqBuf[:0], DtypeF64, "m", rows, inCols, in); err != nil {
				b.Fatal(err)
			}
			req, err := DecodeInferRequest(reqBuf, reqF)
			if err != nil {
				b.Fatal(err)
			}
			reqF = req.Data
			if respBuf, err = AppendInferResponse(respBuf[:0], DtypeF64, "m", rows, outCols, out); err != nil {
				b.Fatal(err)
			}
			resp, err := DecodeInferResponse(respBuf, respF)
			if err != nil {
				b.Fatal(err)
			}
			respF = resp.Data
		}
	})

	b.Run("json", func(b *testing.B) {
		ins := make([][]float64, rows)
		for i := range ins {
			ins[i] = in[i*inCols : (i+1)*inCols]
		}
		outs := make([][]float64, rows)
		for i := range outs {
			outs[i] = out[i*outCols : (i+1)*outCols]
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reqBody, err := json.Marshal(InferRequest{Model: "m", Inputs: ins})
			if err != nil {
				b.Fatal(err)
			}
			var req InferRequest
			if err := json.Unmarshal(reqBody, &req); err != nil {
				b.Fatal(err)
			}
			respBody, err := json.Marshal(InferResponse{Model: "m", Outputs: outs})
			if err != nil {
				b.Fatal(err)
			}
			var resp InferResponse
			if err := json.Unmarshal(respBody, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
