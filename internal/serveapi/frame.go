package serveapi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ContentTypeFrame is the media type that selects the binary frame
// protocol on /v1/infer and /v1/capture. A request carrying it must be
// a well-formed frame; the server answers /v1/infer in kind (a response
// frame of the same dtype) and acknowledges /v1/capture in JSON (the
// ack is tiny — framing it would save nothing). Everything else on the
// API, error bodies included, stays JSON: the binary protocol exists
// for the two hot-path payloads only, and JSON remains the debugging
// default.
const ContentTypeFrame = "application/x-hpacml-frame"

// Frame header constants. Every frame opens with a fixed 12-byte
// little-endian header:
//
//	offset  size  field
//	0       4     magic    "MFPH" on the wire (0x4850464d LE)
//	4       1     version  FrameVersion
//	5       1     kind     FrameInferRequest | FrameInferResponse | FrameCaptureRequest
//	6       1     dtype    DtypeF64 | DtypeF32 | DtypeI8
//	7       1     reserved (must be 0)
//	8       4     body length in bytes (the length prefix; total frame = 12 + body)
//
// followed by the kind-specific body. All integers are little-endian,
// matching the .gmod model format.
const (
	FrameMagic   uint32 = 0x4850464d // "HPFM" as a little-endian u32
	FrameVersion byte   = 1
	// FrameHeaderLen is the fixed header size in bytes.
	FrameHeaderLen = 12
)

// Frame kinds.
const (
	// FrameInferRequest is a client->server inference batch:
	// name = model, payload = [rows, cols] input slab.
	FrameInferRequest byte = 1
	// FrameInferResponse is the server's answer:
	// name = model, payload = [rows, cols] output slab.
	FrameInferResponse byte = 2
	// FrameCaptureRequest is a client->server capture batch:
	// name = capture db, payload = length-prefixed capture records.
	FrameCaptureRequest byte = 3
)

// Dtype selects the on-wire float element encoding.
type Dtype byte

// Wire float encodings. DtypeF64 is lossless against the runtime's
// float64 staging tensors; DtypeF32 halves payload bytes for callers
// that accept single-precision transport (e.g. regions already running
// the float32 compute path). DtypeI8 cuts the payload to one byte per
// element: values are rounded half-away-from-zero and saturated to
// [-128, 127] on encode (NaN encodes as 0), so it is a transport
// encoding for feature spaces that are integer-valued and small — not
// a general float compression. It pairs naturally with servers running
// the quantized int8 compute path (hpacml-serve -int8), but the wire
// dtype and the compute dtype are independent choices.
const (
	DtypeF64 Dtype = 0
	DtypeF32 Dtype = 1
	DtypeI8  Dtype = 2
)

// Size returns the element size in bytes.
func (d Dtype) Size() int {
	switch d {
	case DtypeF32:
		return 4
	case DtypeI8:
		return 1
	}
	return 8
}

func (d Dtype) String() string {
	switch d {
	case DtypeF64:
		return "f64"
	case DtypeF32:
		return "f32"
	case DtypeI8:
		return "i8"
	}
	return fmt.Sprintf("dtype(%d)", byte(d))
}

func validDtype(d Dtype) bool { return d == DtypeF64 || d == DtypeF32 || d == DtypeI8 }

// frame size sanity bounds, mirroring the .gmod reader's plausibility
// checks: a decoder fed garbage must fail fast, never allocate
// gigabytes off a forged dimension field.
const (
	maxFrameName = 1 << 10 // model/db/region name bytes
	maxFrameRank = 8       // capture record tensor rank
)

// MaxFrameLen caps a whole frame (header + body) on both ends of the
// wire: encoders refuse to build anything larger (which also keeps the
// u32 length prefix from silently truncating a >4 GiB body), decoders
// refuse to parse anything larger, and the HTTP server bounds frame
// request bodies with it (an oversized body is 413). A conforming peer
// splits bigger workloads across frames; a forged Content-Length or
// dimension field can never size an allocation past this.
const MaxFrameLen = 1 << 26 // 64 MiB

// maxFrameBody is the largest body the u32 length prefix may declare.
const maxFrameBody = MaxFrameLen - FrameHeaderLen

// --- encoding ---------------------------------------------------------

func appendHeader(dst []byte, kind byte, dtype Dtype, bodyLen int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, FrameMagic)
	dst = append(dst, FrameVersion, kind, byte(dtype), 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendFloats(dst []byte, dtype Dtype, data []float64) []byte {
	switch dtype {
	case DtypeF32:
		for _, v := range data {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
		}
	case DtypeI8:
		for _, v := range data {
			dst = append(dst, byte(encodeI8(v)))
		}
	default:
		for _, v := range data {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// encodeI8 is the i8 wire encoding: round half-away-from-zero,
// saturate to int8, NaN to 0. Saturation (not wrapping) keeps a
// slightly-out-of-range value nearest its true magnitude.
func encodeI8(v float64) int8 {
	if math.IsNaN(v) {
		return 0
	}
	if v >= 127 {
		return 127
	}
	if v <= -128 {
		return -128
	}
	if v >= 0 {
		return int8(v + 0.5)
	}
	return int8(v - 0.5)
}

// inferBodyLen is the exact body size of an infer frame, so encoders
// can size the length prefix before writing the payload.
func inferBodyLen(name string, rows, cols int, dtype Dtype) int {
	return 2 + len(name) + 8 + rows*cols*dtype.Size()
}

func appendInferFrame(dst []byte, kind byte, dtype Dtype, name string, rows, cols int, data []float64) ([]byte, error) {
	if !validDtype(dtype) {
		return dst, fmt.Errorf("serveapi: frame dtype %d unsupported", dtype)
	}
	if len(name) > maxFrameName {
		return dst, fmt.Errorf("serveapi: frame name %d bytes exceeds %d", len(name), maxFrameName)
	}
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return dst, fmt.Errorf("serveapi: frame payload %d floats, want %d x %d", len(data), rows, cols)
	}
	// A [0, n] or [n, 0] slab carries no data but forges a geometry the
	// decoder cannot trust (a huge rows with cols=0 still passes the
	// payload-size check); only [0, 0] expresses "empty".
	if (rows == 0) != (cols == 0) {
		return dst, fmt.Errorf("serveapi: degenerate frame geometry %d x %d", rows, cols)
	}
	bodyLen := inferBodyLen(name, rows, cols, dtype)
	if bodyLen > maxFrameBody {
		return dst, fmt.Errorf("serveapi: frame body %d bytes exceeds %d", bodyLen, maxFrameBody)
	}
	dst = appendHeader(dst, kind, dtype, bodyLen)
	dst = appendString(dst, name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cols))
	return appendFloats(dst, dtype, data), nil
}

// AppendInferRequest encodes a [rows, cols] input slab for model as an
// infer-request frame appended to dst (pass dst[:0] of a pooled buffer
// to reuse its storage), returning the extended slice. data is row-major
// and must hold exactly rows*cols values.
func AppendInferRequest(dst []byte, dtype Dtype, model string, rows, cols int, data []float64) ([]byte, error) {
	return appendInferFrame(dst, FrameInferRequest, dtype, model, rows, cols, data)
}

// AppendInferResponse encodes a [rows, cols] output slab as an
// infer-response frame appended to dst.
func AppendInferResponse(dst []byte, dtype Dtype, model string, rows, cols int, data []float64) ([]byte, error) {
	return appendInferFrame(dst, FrameInferResponse, dtype, model, rows, cols, data)
}

// AppendCaptureRequest encodes a capture batch for db as a
// capture-request frame appended to dst. Each record travels as its
// region name, input/output shapes, runtime, and both tensors' raw
// data in the frame dtype.
func AppendCaptureRequest(dst []byte, dtype Dtype, db string, recs []CaptureRecord) ([]byte, error) {
	if !validDtype(dtype) {
		return dst, fmt.Errorf("serveapi: frame dtype %d unsupported", dtype)
	}
	if len(db) > maxFrameName {
		return dst, fmt.Errorf("serveapi: frame name %d bytes exceeds %d", len(db), maxFrameName)
	}
	body := 2 + len(db) + 4
	for i := range recs {
		r := &recs[i]
		if len(r.Region) > maxFrameName {
			return dst, fmt.Errorf("serveapi: capture record %d region name %d bytes exceeds %d", i, len(r.Region), maxFrameName)
		}
		if len(r.InputShape) > maxFrameRank || len(r.OutputShape) > maxFrameRank {
			return dst, fmt.Errorf("serveapi: capture record %d rank exceeds %d", i, maxFrameRank)
		}
		if len(r.Inputs) != numElems(r.InputShape) || len(r.Outputs) != numElems(r.OutputShape) {
			return dst, fmt.Errorf("serveapi: capture record %d data does not match its shape", i)
		}
		body += 2 + len(r.Region) +
			1 + 4*len(r.InputShape) + 1 + 4*len(r.OutputShape) + 8 +
			(len(r.Inputs)+len(r.Outputs))*dtype.Size()
	}
	if body > maxFrameBody {
		return dst, fmt.Errorf("serveapi: frame body %d bytes exceeds %d", body, maxFrameBody)
	}
	dst = appendHeader(dst, FrameCaptureRequest, dtype, body)
	dst = appendString(dst, db)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		dst = appendString(dst, r.Region)
		dst = append(dst, byte(len(r.InputShape)))
		for _, d := range r.InputShape {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
		}
		dst = append(dst, byte(len(r.OutputShape)))
		for _, d := range r.OutputShape {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
		}
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.RuntimeNS))
		dst = appendFloats(dst, dtype, r.Inputs)
		dst = appendFloats(dst, dtype, r.Outputs)
	}
	return dst, nil
}

func numElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return -1
		}
		n *= d
	}
	return n
}

// --- decoding ---------------------------------------------------------

// frameReader is a bounds-checked cursor over one frame body. Every
// read validates the remaining length first, so truncated or forged
// frames fail with an error instead of a panic.
type frameReader struct {
	b   []byte
	off int
}

func (r *frameReader) remain() int { return len(r.b) - r.off }

func (r *frameReader) take(n int) ([]byte, error) {
	if n < 0 || r.remain() < n {
		return nil, fmt.Errorf("serveapi: frame truncated: want %d bytes, have %d", n, r.remain())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *frameReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *frameReader) u16() (int, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint16(b)), nil
}

func (r *frameReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *frameReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if n > maxFrameName {
		return "", fmt.Errorf("serveapi: frame name %d bytes exceeds %d", n, maxFrameName)
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// floats decodes count elements of dtype into the tail of into,
// growing it as needed. count is already validated against the
// remaining body, so the allocation is bounded by the input size.
func (r *frameReader) floats(dtype Dtype, count int, into []float64) ([]float64, error) {
	b, err := r.take(count * dtype.Size())
	if err != nil {
		return into, err
	}
	base := len(into)
	if cap(into) < base+count {
		grown := make([]float64, base, base+count)
		copy(grown, into)
		into = grown
	}
	into = into[:base+count]
	out := into[base:]
	switch dtype {
	case DtypeF32:
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		}
	case DtypeI8:
		for i := range out {
			out[i] = float64(int8(b[i]))
		}
	default:
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
	}
	return into, nil
}

// ErrNotAFrame reports that a byte stream does not open with the frame
// magic — the caller is probably looking at JSON or at garbage, not at
// a newer frame revision.
var ErrNotAFrame = fmt.Errorf("serveapi: not a frame (bad magic)")

// ErrFrameVersion reports a well-magic'd frame of an unsupported
// version. Servers map it to 415 so newer clients can fall back to
// JSON against older servers.
var ErrFrameVersion = fmt.Errorf("serveapi: unsupported frame version")

// decodeHeader validates the fixed header and returns (kind, dtype) and
// a reader positioned over exactly the declared body.
func decodeHeader(frame []byte) (byte, Dtype, *frameReader, error) {
	if len(frame) < FrameHeaderLen {
		return 0, 0, nil, fmt.Errorf("serveapi: frame truncated: %d-byte header, want %d", len(frame), FrameHeaderLen)
	}
	if len(frame) > MaxFrameLen {
		return 0, 0, nil, fmt.Errorf("serveapi: %d-byte frame exceeds %d", len(frame), MaxFrameLen)
	}
	if binary.LittleEndian.Uint32(frame) != FrameMagic {
		return 0, 0, nil, ErrNotAFrame
	}
	if frame[4] != FrameVersion {
		return 0, 0, nil, fmt.Errorf("%w %d (support %d)", ErrFrameVersion, frame[4], FrameVersion)
	}
	kind, dtype := frame[5], Dtype(frame[6])
	if !validDtype(dtype) {
		return 0, 0, nil, fmt.Errorf("serveapi: frame dtype %d unsupported", frame[6])
	}
	if frame[7] != 0 {
		return 0, 0, nil, fmt.Errorf("serveapi: reserved header byte %d, must be 0", frame[7])
	}
	bodyLen := int(binary.LittleEndian.Uint32(frame[8:]))
	if bodyLen != len(frame)-FrameHeaderLen {
		return 0, 0, nil, fmt.Errorf("serveapi: frame length prefix %d, body is %d bytes", bodyLen, len(frame)-FrameHeaderLen)
	}
	return kind, dtype, &frameReader{b: frame[FrameHeaderLen:]}, nil
}

// FrameDtype validates a frame's fixed header and reports the element
// dtype it declares, without decoding the body. The server's capture
// path uses it to label telemetry with the wire dtype (the decode API
// returns dtype-erased float64 records).
func FrameDtype(frame []byte) (Dtype, error) {
	_, dtype, _, err := decodeHeader(frame)
	return dtype, err
}

// InferFrame is a decoded infer request or response.
type InferFrame struct {
	Dtype Dtype
	// Model is the registry model name.
	Model string
	// Rows x Cols is the slab geometry; Data holds the row-major values
	// (decoded into the caller's buffer when one was provided).
	Rows, Cols int
	Data       []float64
}

func decodeInferFrame(frame []byte, wantKind byte, into []float64) (InferFrame, error) {
	kind, dtype, r, err := decodeHeader(frame)
	if err != nil {
		return InferFrame{}, err
	}
	if kind != wantKind {
		return InferFrame{}, fmt.Errorf("serveapi: frame kind %d, want %d", kind, wantKind)
	}
	f := InferFrame{Dtype: dtype}
	if f.Model, err = r.str(); err != nil {
		return InferFrame{}, err
	}
	rows, err := r.u32()
	if err != nil {
		return InferFrame{}, err
	}
	cols, err := r.u32()
	if err != nil {
		return InferFrame{}, err
	}
	// A zero dim paired with a nonzero one is forged geometry: it
	// carries no payload bytes, so the size check below cannot bound the
	// nonzero dim (rows=2^32-1 x cols=0 matches an empty body).
	if (rows == 0) != (cols == 0) {
		return InferFrame{}, fmt.Errorf("serveapi: degenerate frame geometry %d x %d", rows, cols)
	}
	// Validate the element count against the actual body before any
	// multiplication can overflow or oversize an allocation. The
	// division form must come first: elems*size itself can wrap uint64
	// (2^31 x 2^30 x 8 ≡ 0), so equality is only meaningful once elems
	// is known to fit the body.
	elems := uint64(rows) * uint64(cols)
	size := uint64(dtype.Size())
	if elems > uint64(r.remain())/size || elems*size != uint64(r.remain()) {
		return InferFrame{}, fmt.Errorf("serveapi: frame claims %d x %d %s payload, body holds %d bytes",
			rows, cols, dtype, r.remain())
	}
	f.Rows, f.Cols = int(rows), int(cols)
	if f.Data, err = r.floats(dtype, int(elems), into[:0]); err != nil {
		return InferFrame{}, err
	}
	return f, nil
}

// DecodeInferRequest decodes an infer-request frame. into, when
// non-nil, is reused as the Data backing store (grown only if too
// small), so steady-state decoding allocates nothing.
func DecodeInferRequest(frame []byte, into []float64) (InferFrame, error) {
	return decodeInferFrame(frame, FrameInferRequest, into)
}

// DecodeInferResponse decodes an infer-response frame into the caller's
// buffer, like DecodeInferRequest.
func DecodeInferResponse(frame []byte, into []float64) (InferFrame, error) {
	return decodeInferFrame(frame, FrameInferResponse, into)
}

// DecodeCaptureRequest decodes a capture-request frame into the named
// db and its records. Record tensors are freshly allocated — capture
// ingest hands them to the database writer, which outlives the request.
func DecodeCaptureRequest(frame []byte) (db string, recs []CaptureRecord, err error) {
	kind, dtype, r, err := decodeHeader(frame)
	if err != nil {
		return "", nil, err
	}
	if kind != FrameCaptureRequest {
		return "", nil, fmt.Errorf("serveapi: frame kind %d, want %d", kind, FrameCaptureRequest)
	}
	if db, err = r.str(); err != nil {
		return "", nil, err
	}
	n, err := r.u32()
	if err != nil {
		return "", nil, err
	}
	// Each record costs at least its fixed fields; a forged count larger
	// than the body could carry is rejected before allocating.
	const minRecord = 2 + 1 + 1 + 8
	if uint64(n)*minRecord > uint64(r.remain()) {
		return "", nil, fmt.Errorf("serveapi: frame claims %d capture records, body holds %d bytes", n, r.remain())
	}
	recs = make([]CaptureRecord, n)
	for i := range recs {
		rec := &recs[i]
		if rec.Region, err = r.str(); err != nil {
			return "", nil, err
		}
		if rec.InputShape, err = decodeShape(r, dtype.Size()); err != nil {
			return "", nil, err
		}
		if rec.OutputShape, err = decodeShape(r, dtype.Size()); err != nil {
			return "", nil, err
		}
		b, err := r.take(8)
		if err != nil {
			return "", nil, err
		}
		rec.RuntimeNS = math.Float64frombits(binary.LittleEndian.Uint64(b))
		inN, outN := numElems(rec.InputShape), numElems(rec.OutputShape)
		if uint64(inN+outN)*uint64(dtype.Size()) > uint64(r.remain()) {
			return "", nil, fmt.Errorf("serveapi: capture record %d claims %d+%d elements, body holds %d bytes",
				i, inN, outN, r.remain())
		}
		if rec.Inputs, err = r.floats(dtype, inN, nil); err != nil {
			return "", nil, err
		}
		if rec.Outputs, err = r.floats(dtype, outN, nil); err != nil {
			return "", nil, err
		}
	}
	if r.remain() != 0 {
		return "", nil, fmt.Errorf("serveapi: %d trailing bytes after capture records", r.remain())
	}
	return db, recs, nil
}

func decodeShape(r *frameReader, elemSize int) ([]int, error) {
	rank, err := r.u8()
	if err != nil {
		return nil, err
	}
	if int(rank) > maxFrameRank {
		return nil, fmt.Errorf("serveapi: frame tensor rank %d exceeds %d", rank, maxFrameRank)
	}
	shape := make([]int, rank)
	elems := uint64(1)
	for i := range shape {
		d, err := r.u32()
		if err != nil {
			return nil, err
		}
		elems *= uint64(d)
		// Shapes beyond the body's capacity are forged: the frame's own
		// dtype cannot fit that many elements in what remains. Division,
		// not elems*size, which could wrap; checking every dim also keeps
		// the running product itself far from uint64 overflow.
		if elems > uint64(len(r.b))/uint64(elemSize) {
			return nil, fmt.Errorf("serveapi: frame tensor shape overflows the frame body")
		}
		shape[i] = int(d)
	}
	return shape, nil
}
