// Package serveapi defines the wire schema of the hpacml-serve HTTP
// JSON API: the request/response bodies of /v1/infer and /v1/capture
// and the payloads of /v1/models and /v1/stats. It is the single
// source of truth shared by the server (internal/serve), the typed
// client (internal/serveclient), and — through the client — the
// runtime's remote inference engine and remote capture sink, so they
// can never drift apart. The package deliberately has no dependencies
// beyond the standard library: the server imports the hpacml runtime,
// the runtime imports the client, and keeping the schema free of both
// is what breaks that cycle.
package serveapi

import "time"

// InferRequest is the /v1/infer request body. Input carries one
// invocation; Inputs carries several, which the handler submits
// concurrently so they coalesce into batches like independent clients
// would. Exactly one of the two must be set.
type InferRequest struct {
	Model  string      `json:"model"`
	Input  []float64   `json:"input,omitempty"`
	Inputs [][]float64 `json:"inputs,omitempty"`
}

// InferResponse mirrors the request: Output answers Input, Outputs
// answers Inputs.
type InferResponse struct {
	Model   string      `json:"model"`
	Output  []float64   `json:"output,omitempty"`
	Outputs [][]float64 `json:"outputs,omitempty"`
}

// ErrorBody is every non-200 response. Accepted is set only by
// /v1/capture failures: how many leading records of the batch were
// durably appended before the failure, so clients can account for a
// partial ingest instead of assuming the whole batch was lost.
// RequestID echoes the request's trace ID (see HeaderRequestID), so a
// failure reported client-side is joinable to the server's log line
// for the same request.
type ErrorBody struct {
	Error     string `json:"error"`
	Accepted  int    `json:"accepted,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// HealthResponse is the /healthz payload: liveness plus the build
// identity of the serving binary, so a fleet operator can tell at a
// glance which version every server runs.
type HealthResponse struct {
	Status    string  `json:"status"`
	Version   string  `json:"version,omitempty"`
	Revision  string  `json:"revision,omitempty"`
	GoVersion string  `json:"go_version,omitempty"`
	UptimeSec float64 `json:"uptime_sec,omitempty"`
}

// CaptureRecord is one region invocation's training sample on the
// wire: the model-layout input and output tensors (shape plus
// row-major data) and the accurate path's runtime. It mirrors exactly
// what the local capture sink appends to a .gh5 database, so a remote
// ingest produces the same training records a local collection would.
type CaptureRecord struct {
	Region      string    `json:"region"`
	InputShape  []int     `json:"input_shape"`
	Inputs      []float64 `json:"inputs"`
	OutputShape []int     `json:"output_shape"`
	Outputs     []float64 `json:"outputs"`
	RuntimeNS   float64   `json:"runtime_ns"`
}

// CaptureRequest is the /v1/capture request body: a batch of capture
// records destined for one registered capture database. Batching is
// the client's flush unit — many solver invocations travel as one
// POST.
type CaptureRequest struct {
	DB      string          `json:"db"`
	Records []CaptureRecord `json:"records"`
}

// CaptureResponse acknowledges an ingest batch.
type CaptureResponse struct {
	DB       string `json:"db"`
	Accepted int    `json:"accepted"`
}

// CaptureDBInfo is the registry view of a server-owned capture
// database.
type CaptureDBInfo struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Shards int    `json:"shards"`
}

// CaptureSnapshot is one capture database's ingest stats (part of the
// /v1/stats payload).
type CaptureSnapshot struct {
	CaptureDBInfo

	// Records and Batches count successfully ingested capture records
	// and the POSTs that carried them; Errors counts rejected or failed
	// ingest batches.
	Records uint64 `json:"records"`
	Batches uint64 `json:"batches"`
	Errors  uint64 `json:"errors"`
}

// ModelInfo is the registry view of a hosted model (the /v1/models
// payload).
type ModelInfo struct {
	Name string `json:"name"`
	Path string `json:"path"`
	// Ensemble is the served member count: 1 for a single model, N for
	// a deep-ensemble model set (the response is then the member mean).
	Ensemble   int    `json:"ensemble,omitempty"`
	InDim      int    `json:"input_dim"`
	OutDim     int    `json:"output_dim"`
	Checksum   string `json:"checksum"`
	Generation uint64 `json:"generation"`
	Replicas   int    `json:"replicas"`
	// LoadedAt is when the currently served weights were (re)loaded —
	// provenance for the hot-reload path alongside Path and Checksum.
	LoadedAt time.Time `json:"loaded_at,omitzero"`

	// The continuous-learning annotation, present only when a learner
	// manages this model: the published learner generation (distinct
	// from Generation, which counts every registry hot reload) and the
	// recorded lineage of retrain attempts.
	LearnerGeneration uint64         `json:"learner_generation,omitempty"`
	Lineage           []LineageEntry `json:"lineage,omitempty"`
}

// Lineage verdicts (LineageEntry.Verdict).
const (
	// VerdictSeed marks the initial generation: the weights the model
	// was first registered with.
	VerdictSeed = "seed"
	// VerdictPublished marks a candidate that passed the shadow gate
	// and was hot-reloaded into the replica pools.
	VerdictPublished = "published"
	// VerdictRejected marks a candidate the gate refused (worse than
	// the published model, NaN-poisoned, or failed to train); the
	// entry's Reason says why.
	VerdictRejected = "rejected"
	// VerdictRollback marks an operator rollback to the parent
	// generation.
	VerdictRollback = "rollback"
)

// LineageEntry is one entry of a model's continuous-learning lineage:
// every retrain attempt (published or not), the seed generation, and
// every rollback, in order. The same schema is persisted in the
// model's .lineage.json sidecar and served inside /v1/models, so the
// on-disk provenance and the wire view can never drift.
type LineageEntry struct {
	// Gen is the lineage generation this entry created (monotonic;
	// rejected candidates consume a generation number too, so the
	// sidecar records every attempt).
	Gen  uint64    `json:"gen"`
	Time time.Time `json:"time,omitzero"`
	// Verdict is one of "seed" (initial load), "published",
	// "rejected", or "rollback".
	Verdict string `json:"verdict"`
	// Reason says why a candidate was rejected (gate failure, NaN
	// poisoning, training error) or what a rollback restored.
	Reason string `json:"reason,omitempty"`
	// ParentGen/ParentChecksum identify the published model this entry
	// derives from.
	ParentGen      uint64 `json:"parent_gen"`
	ParentChecksum string `json:"parent_checksum,omitempty"`
	// Checksum is the candidate's weight checksum (the registry
	// checksum after publication).
	Checksum string `json:"checksum,omitempty"`
	// TrainRecords/HoldoutRecords count the snapshot split the
	// candidate was trained and gated on.
	TrainRecords   int `json:"train_records,omitempty"`
	HoldoutRecords int `json:"holdout_records,omitempty"`
	// CandidateErr and PublishedErr are the shadow-gate relative
	// errors of the candidate and the then-published model on the
	// held-out captures. A NaN-poisoned candidate is recorded as -1
	// (JSON cannot carry NaN) with the reason naming the poisoning.
	CandidateErr float64 `json:"candidate_err,omitempty"`
	PublishedErr float64 `json:"published_err,omitempty"`
}

// LearnerSnapshot is one model's continuous-learning stats (the
// /v1/stats payload): the published generation, retrain outcome
// counters, and the last gate verdict.
type LearnerSnapshot struct {
	Model      string `json:"model"`
	Generation uint64 `json:"generation"`

	Retrains  uint64 `json:"retrains"`
	Published uint64 `json:"published"`
	Rejected  uint64 `json:"rejected"`
	Errors    uint64 `json:"errors"`
	Rollbacks uint64 `json:"rollbacks"`

	// PendingRecords is how many captured records have arrived since
	// the last retrain — the progress toward the next trigger.
	PendingRecords int `json:"pending_records"`

	LastVerdict      string  `json:"last_verdict,omitempty"`
	LastCandidateErr float64 `json:"last_candidate_err,omitempty"`
	LastPublishedErr float64 `json:"last_published_err,omitempty"`
}

// RollbackResponse answers POST /v1/models/{model}/rollback: the
// lineage generation the rollback itself created, and which ancestor
// generation's weights are now live again.
type RollbackResponse struct {
	Model string `json:"model"`
	// Generation is the new current lineage generation (the rollback
	// entry).
	Generation uint64 `json:"generation"`
	// RestoredGen is the ancestor generation whose weights were
	// restored.
	RestoredGen uint64 `json:"restored_gen"`
	Checksum    string `json:"checksum,omitempty"`
}

// RegionStats is the wire form of the runtime's Region accounting
// (hpacml.Stats). Field names match hpacml.Stats exactly — the runtime
// struct has no JSON tags, so matching Go names is what keeps the
// /v1/stats payload identical to marshalling hpacml.Stats directly.
type RegionStats struct {
	Invocations  int
	Inferences   int
	Collections  int
	AccurateRuns int

	Batches            int
	BatchedInvocations int

	Fallbacks       int
	RemoteInference int

	TrustedRows     int
	UncertainRows   int
	OutOfDomainRows int

	CaptureDrops   int
	CaptureFlushes int
	RemoteCaptures int

	ToTensor   time.Duration
	Inference  time.Duration
	FromTensor time.Duration
	Accurate   time.Duration
	DBWrite    time.Duration

	BatchInference time.Duration
}

// ModelSnapshot is one model's serving stats (the /v1/stats payload):
// traffic totals, throughput, the batch-size histogram, latency
// quantiles, and the summed Region phase counters of the replica pool.
type ModelSnapshot struct {
	ModelInfo

	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`
	Batches   uint64 `json:"batches"`

	// ThroughputRPS is completed requests per second of serving uptime.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanBatch is completed+errored invocations per batch — above 1
	// exactly when the coalescer is doing its job.
	MeanBatch float64 `json:"mean_batch"`
	// BatchHist maps batch size (as a string, for JSON) to how many
	// batches were cut at that size. Zero entries are omitted.
	BatchHist map[string]uint64 `json:"batch_hist,omitempty"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	Reloads      uint64 `json:"reloads"`
	ReloadErrors uint64 `json:"reload_errors"`

	// Region is the replica pool's summed runtime accounting — the
	// to-tensor / inference / from-tensor phase split of the traffic
	// served so far.
	Region RegionStats `json:"region"`
}

// WireStats is one hot-path encoding's request count in the /v1/stats
// Wire section: how many /v1/infer or /v1/capture requests arrived
// over a given wire protocol and payload dtype since the server
// started. Combinations with zero requests are omitted.
type WireStats struct {
	Endpoint string `json:"endpoint"` // "infer" or "capture"
	Wire     string `json:"wire"`     // "json" or "binary"
	Dtype    string `json:"dtype"`    // "f64", "f32", or "i8"
	Requests uint64 `json:"requests"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	UptimeSec float64         `json:"uptime_sec"`
	Models    []ModelSnapshot `json:"models"`
	// Captures lists the ingest stats of the server's capture
	// databases; absent when capture ingest is not enabled.
	Captures []CaptureSnapshot `json:"captures,omitempty"`
	// Learners lists the continuous-learning stats per managed model;
	// absent when no learner is attached.
	Learners []LearnerSnapshot `json:"learners,omitempty"`
	// Wire breaks the hot-path traffic down by endpoint, wire protocol,
	// and payload dtype — the JSON view of the
	// hpacml_wire_requests_total metric, so the encoding mix (and the
	// int8 wire's adoption) is visible without a metrics scraper.
	Wire []WireStats `json:"wire,omitempty"`
}
