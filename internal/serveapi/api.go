// Package serveapi defines the wire schema of the hpacml-serve HTTP
// JSON API: the request/response bodies of /v1/infer and /v1/capture
// and the payloads of /v1/models and /v1/stats. It is the single
// source of truth shared by the server (internal/serve), the typed
// client (internal/serveclient), and — through the client — the
// runtime's remote inference engine and remote capture sink, so they
// can never drift apart. The package deliberately has no dependencies
// beyond the standard library: the server imports the hpacml runtime,
// the runtime imports the client, and keeping the schema free of both
// is what breaks that cycle.
package serveapi

import "time"

// InferRequest is the /v1/infer request body. Input carries one
// invocation; Inputs carries several, which the handler submits
// concurrently so they coalesce into batches like independent clients
// would. Exactly one of the two must be set.
type InferRequest struct {
	Model  string      `json:"model"`
	Input  []float64   `json:"input,omitempty"`
	Inputs [][]float64 `json:"inputs,omitempty"`
}

// InferResponse mirrors the request: Output answers Input, Outputs
// answers Inputs.
type InferResponse struct {
	Model   string      `json:"model"`
	Output  []float64   `json:"output,omitempty"`
	Outputs [][]float64 `json:"outputs,omitempty"`
}

// ErrorBody is every non-200 response. Accepted is set only by
// /v1/capture failures: how many leading records of the batch were
// durably appended before the failure, so clients can account for a
// partial ingest instead of assuming the whole batch was lost.
// RequestID echoes the request's trace ID (see HeaderRequestID), so a
// failure reported client-side is joinable to the server's log line
// for the same request.
type ErrorBody struct {
	Error     string `json:"error"`
	Accepted  int    `json:"accepted,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// HealthResponse is the /healthz payload: liveness plus the build
// identity of the serving binary, so a fleet operator can tell at a
// glance which version every server runs.
type HealthResponse struct {
	Status    string  `json:"status"`
	Version   string  `json:"version,omitempty"`
	Revision  string  `json:"revision,omitempty"`
	GoVersion string  `json:"go_version,omitempty"`
	UptimeSec float64 `json:"uptime_sec,omitempty"`
}

// CaptureRecord is one region invocation's training sample on the
// wire: the model-layout input and output tensors (shape plus
// row-major data) and the accurate path's runtime. It mirrors exactly
// what the local capture sink appends to a .gh5 database, so a remote
// ingest produces the same training records a local collection would.
type CaptureRecord struct {
	Region      string    `json:"region"`
	InputShape  []int     `json:"input_shape"`
	Inputs      []float64 `json:"inputs"`
	OutputShape []int     `json:"output_shape"`
	Outputs     []float64 `json:"outputs"`
	RuntimeNS   float64   `json:"runtime_ns"`
}

// CaptureRequest is the /v1/capture request body: a batch of capture
// records destined for one registered capture database. Batching is
// the client's flush unit — many solver invocations travel as one
// POST.
type CaptureRequest struct {
	DB      string          `json:"db"`
	Records []CaptureRecord `json:"records"`
}

// CaptureResponse acknowledges an ingest batch.
type CaptureResponse struct {
	DB       string `json:"db"`
	Accepted int    `json:"accepted"`
}

// CaptureDBInfo is the registry view of a server-owned capture
// database.
type CaptureDBInfo struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Shards int    `json:"shards"`
}

// CaptureSnapshot is one capture database's ingest stats (part of the
// /v1/stats payload).
type CaptureSnapshot struct {
	CaptureDBInfo

	// Records and Batches count successfully ingested capture records
	// and the POSTs that carried them; Errors counts rejected or failed
	// ingest batches.
	Records uint64 `json:"records"`
	Batches uint64 `json:"batches"`
	Errors  uint64 `json:"errors"`
}

// ModelInfo is the registry view of a hosted model (the /v1/models
// payload).
type ModelInfo struct {
	Name string `json:"name"`
	Path string `json:"path"`
	// Ensemble is the served member count: 1 for a single model, N for
	// a deep-ensemble model set (the response is then the member mean).
	Ensemble   int    `json:"ensemble,omitempty"`
	InDim      int    `json:"input_dim"`
	OutDim     int    `json:"output_dim"`
	Checksum   string `json:"checksum"`
	Generation uint64 `json:"generation"`
	Replicas   int    `json:"replicas"`
}

// RegionStats is the wire form of the runtime's Region accounting
// (hpacml.Stats). Field names match hpacml.Stats exactly — the runtime
// struct has no JSON tags, so matching Go names is what keeps the
// /v1/stats payload identical to marshalling hpacml.Stats directly.
type RegionStats struct {
	Invocations  int
	Inferences   int
	Collections  int
	AccurateRuns int

	Batches            int
	BatchedInvocations int

	Fallbacks       int
	RemoteInference int

	TrustedRows     int
	UncertainRows   int
	OutOfDomainRows int

	CaptureDrops   int
	CaptureFlushes int
	RemoteCaptures int

	ToTensor   time.Duration
	Inference  time.Duration
	FromTensor time.Duration
	Accurate   time.Duration
	DBWrite    time.Duration

	BatchInference time.Duration
}

// ModelSnapshot is one model's serving stats (the /v1/stats payload):
// traffic totals, throughput, the batch-size histogram, latency
// quantiles, and the summed Region phase counters of the replica pool.
type ModelSnapshot struct {
	ModelInfo

	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`
	Batches   uint64 `json:"batches"`

	// ThroughputRPS is completed requests per second of serving uptime.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanBatch is completed+errored invocations per batch — above 1
	// exactly when the coalescer is doing its job.
	MeanBatch float64 `json:"mean_batch"`
	// BatchHist maps batch size (as a string, for JSON) to how many
	// batches were cut at that size. Zero entries are omitted.
	BatchHist map[string]uint64 `json:"batch_hist,omitempty"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	Reloads      uint64 `json:"reloads"`
	ReloadErrors uint64 `json:"reload_errors"`

	// Region is the replica pool's summed runtime accounting — the
	// to-tensor / inference / from-tensor phase split of the traffic
	// served so far.
	Region RegionStats `json:"region"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	UptimeSec float64         `json:"uptime_sec"`
	Models    []ModelSnapshot `json:"models"`
	// Captures lists the ingest stats of the server's capture
	// databases; absent when capture ingest is not enabled.
	Captures []CaptureSnapshot `json:"captures,omitempty"`
}
