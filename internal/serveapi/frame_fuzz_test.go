package serveapi

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to every frame decoder and
// asserts the contract the HTTP handlers rely on: no panic, no
// out-of-bounds allocation, and — when a frame is accepted — a stable
// re-encode: encoding the decoded frame and decoding it again yields
// bit-identical values (byte-identical frames for f64, where no float
// conversion is involved; f32 sNaN payloads quiet on the f32->f64->f32
// trip, so f32 asserts value-level idempotence). The seeds cover the
// documented failure classes: truncated headers and bodies, forged
// dimension fields (overflow), and dtype/kind mismatches.
func FuzzDecodeFrame(f *testing.F) {
	// Valid frames of every kind and dtype.
	for _, dtype := range []Dtype{DtypeF64, DtypeF32, DtypeI8} {
		req, _ := AppendInferRequest(nil, dtype, "binomial", 2, 3, []float64{1, 2, 3, 4, 5, 6})
		f.Add(req)
		resp, _ := AppendInferResponse(nil, dtype, "binomial", 2, 1, []float64{7, 8})
		f.Add(resp)
		capFrame, _ := AppendCaptureRequest(nil, dtype, "db", []CaptureRecord{
			{Region: "r", InputShape: []int{1, 2}, Inputs: []float64{1, 2},
				OutputShape: []int{1, 1}, Outputs: []float64{3}, RuntimeNS: 5},
		})
		f.Add(capFrame)
	}
	good, _ := AppendInferRequest(nil, DtypeF64, "m", 1, 4, []float64{1, 2, 3, 4})
	// Truncated header and truncated body.
	f.Add(good[:5])
	f.Add(good[:len(good)-3])
	// Forged dims: rows = 0xFFFFFFFF.
	forged := append([]byte(nil), good...)
	forged[FrameHeaderLen+3], forged[FrameHeaderLen+4] = 0xFF, 0xFF
	forged[FrameHeaderLen+5], forged[FrameHeaderLen+6] = 0xFF, 0xFF
	f.Add(forged)
	// Forged geometry the payload-size equality alone can't catch: a
	// zero dim hiding a huge one, and dims whose elems*size wraps uint64.
	f.Add(rawInferFrame(DtypeF64, "m", math.MaxUint32, 0, nil))
	f.Add(rawInferFrame(DtypeF64, "m", 1<<31, 1<<30, nil))
	// Dtype and kind mismatches.
	badDtype := append([]byte(nil), good...)
	badDtype[6] = 9
	f.Add(badDtype)
	badKind := append([]byte(nil), good...)
	badKind[5] = FrameCaptureRequest
	f.Add(badKind)
	// An i8 frame with every byte value, and a capture frame whose i8
	// payload exercises the size-1 element bound in decodeShape.
	allBytes := make([]float64, 256)
	for i := range allBytes {
		allBytes[i] = float64(int8(i))
	}
	i8Frame, _ := AppendInferRequest(nil, DtypeI8, "q", 16, 16, allBytes)
	f.Add(i8Frame)
	i8Cap, _ := AppendCaptureRequest(nil, DtypeI8, "db", []CaptureRecord{
		{Region: "r", InputShape: []int{1, 8}, Inputs: allBytes[:8],
			OutputShape: []int{1, 1}, Outputs: []float64{-5}, RuntimeNS: 2},
	})
	f.Add(i8Cap)

	sameFloats := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}

	checkInfer := func(t *testing.T, frame []byte,
		decode func([]byte, []float64) (InferFrame, error),
		encode func([]byte, Dtype, string, int, int, []float64) ([]byte, error)) {
		inf, err := decode(frame, nil)
		if err != nil {
			return
		}
		re, err := encode(nil, inf.Dtype, inf.Model, inf.Rows, inf.Cols, inf.Data)
		if err != nil {
			t.Fatalf("accepted frame did not re-encode: %v", err)
		}
		// f64 re-encodes bit-identically; so does i8, whose decoded
		// values are always integers in [-128, 127] and therefore fixed
		// points of the round-clamp encoder.
		if inf.Dtype != DtypeF32 && !bytes.Equal(re, frame) {
			t.Fatalf("%s round trip changed bytes:\n%x\n%x", inf.Dtype, frame, re)
		}
		again, err := decode(re, nil)
		if err != nil {
			t.Fatalf("re-encoded frame did not decode: %v", err)
		}
		if again.Model != inf.Model || again.Rows != inf.Rows || again.Cols != inf.Cols ||
			again.Dtype != inf.Dtype || !sameFloats(again.Data, inf.Data) {
			t.Fatalf("round trip not idempotent: %+v vs %+v", inf, again)
		}
	}

	f.Fuzz(func(t *testing.T, frame []byte) {
		checkInfer(t, frame, DecodeInferRequest, AppendInferRequest)
		checkInfer(t, frame, DecodeInferResponse, AppendInferResponse)
		db, recs, err := DecodeCaptureRequest(frame)
		if err != nil {
			return
		}
		dtype := Dtype(frame[6])
		re, err := AppendCaptureRequest(nil, dtype, db, recs)
		if err != nil {
			t.Fatalf("accepted capture batch did not re-encode: %v", err)
		}
		if dtype != DtypeF32 && !bytes.Equal(re, frame) {
			t.Fatalf("%s capture round trip changed bytes:\n%x\n%x", dtype, frame, re)
		}
		db2, recs2, err := DecodeCaptureRequest(re)
		if err != nil || db2 != db || len(recs2) != len(recs) {
			t.Fatalf("re-encoded capture batch did not decode: %v", err)
		}
		for i := range recs {
			if !sameFloats(recs2[i].Inputs, recs[i].Inputs) || !sameFloats(recs2[i].Outputs, recs[i].Outputs) {
				t.Fatalf("capture record %d not idempotent", i)
			}
		}
	})
}
