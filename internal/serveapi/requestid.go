package serveapi

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// Request tracing rides on one header: every request into the server
// carries an ID, minted by whichever side sees the request first. The
// client stamps outgoing calls so a failed call is joinable to the
// matching server log line; the server honors an incoming ID (so an
// application-level trace spans client and server) and mints one for
// bare requests (curl, old clients). The ID travels back on the
// response header and inside every error body, which is what makes a
// client-side failure report greppable in the server's logs.

// HeaderRequestID is the request-tracing header, honored on requests
// and echoed on responses.
const HeaderRequestID = "X-Request-ID"

// ridPrefix is a per-process random tag so IDs from different
// processes (many clients, restarted servers) never collide; ridSeq
// makes IDs unique and ordered within the process.
var (
	ridPrefix = func() string {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Entropy exhaustion is effectively unreachable; degrade to a
			// fixed prefix rather than making ID minting fallible.
			return "00ff00ff00ff"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// NewRequestID mints a process-unique request ID: a random per-process
// prefix plus a sequence number, e.g. "d1fe0a82c44b-000042". Cheap
// enough to mint per request (one atomic add and one small
// allocation), unique across restarts and across concurrent clients.
func NewRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridSeq.Add(1), 36)
}
