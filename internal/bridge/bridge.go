// Package bridge implements the HPAC-ML data bridge: the machinery that
// connects the application memory space to the tensor memory space.
//
// A tensor functor (declared with the directive grammar) describes how a
// single tensor entry is assembled from application memory relative to
// symbolic constants; a tensor map concretizes the functor over user-chosen
// ranges of an application array. Following Figure 4 of the paper, building
// a plan performs four steps:
//
//  1. Symbolic shape extraction — per RHS slice, the offset of its first
//     element relative to the sweep base and its element count.
//  2. Symbolic shape resolution — start/end/stride of the resulting view
//     for every dimension (singleton dims for point slices, a new sized
//     dimension for multi-element slices).
//  3. Tensor wrapping — zero-copy strided views over application memory.
//  4. Tensor composition — flattening the per-slice feature dims and
//     concatenating the RHS views into the single LHS tensor (the only
//     copying step, and only needed in the "to" direction).
//
// Affine index expressions are resolved numerically: each expression is
// probed at the sweep origin and once per symbol to recover its stride
// coefficients, then verified at the far corner of the sweep so non-affine
// expressions are rejected instead of silently mis-gathered.
package bridge

import (
	"fmt"

	"repro/internal/directive"
	"repro/internal/tensor"
)

// Array binds a named application array: raw storage plus its logical
// shape. Data is aliased, never copied: gathers read through it and
// scatters write through it.
type Array struct {
	Name  string
	Data  []float64
	Shape []int
}

// NewArray validates and constructs an Array binding.
func NewArray(name string, data []float64, shape ...int) (*Array, error) {
	n := tensor.NumElements(shape)
	if n > len(data) {
		return nil, fmt.Errorf("bridge: array %q shape %v wants %d elements, buffer has %d",
			name, shape, n, len(data))
	}
	return &Array{Name: name, Data: data, Shape: append([]int(nil), shape...)}, nil
}

func (a *Array) strides() []int {
	s := make([]int, len(a.Shape))
	acc := 1
	for i := len(a.Shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= a.Shape[i]
	}
	return s
}

// sweepRange is one concretized range of the map target's cs-specifier.
type sweepRange struct {
	start, stop, step int
}

func (r sweepRange) count() int {
	if r.stop <= r.start {
		return 0
	}
	return (r.stop - r.start + r.step - 1) / r.step
}

// sliceView is the resolved descriptor for one RHS slice over one target:
// a strided window into application memory covering [sweep dims..., feature
// dims...].
type sliceView struct {
	view     *tensor.Tensor
	featElem int // product of this slice's feature extents
}

// targetPlan is the concretization of the functor over one map target.
type targetPlan struct {
	array  *Array
	sweeps []sweepRange
	slices []sliceView
}

// Plan is a reusable, concretized mapping between one functor and its map
// targets. Building it wraps application memory without copying; Gather
// performs the single composition copy, Scatter copies model output back
// through the wrapped views.
type Plan struct {
	Functor *directive.FunctorDecl
	Dir     directive.Direction

	targets    []targetPlan
	sweepShape []int // extents of the symbolic dims, shared by all targets
	featTotal  int   // total features across RHS slices and targets
	lhsFeat    []int // concrete feature extents declared on the LHS
}

// Build concretizes functor f over map m. arrays supplies the named
// application arrays referenced by the map targets and env supplies the
// integer variables referenced by concrete slice expressions (e.g. N, M).
func Build(f *directive.FunctorDecl, m *directive.MapDecl, arrays map[string]*Array, env directive.Env) (*Plan, error) {
	if m.Functor != f.Name {
		return nil, fmt.Errorf("bridge: map references functor %q, got declaration of %q", m.Functor, f.Name)
	}
	symDims, featDims, err := splitLHS(f, env)
	if err != nil {
		return nil, err
	}
	p := &Plan{Functor: f, Dir: m.Dir}
	for _, fd := range featDims {
		p.lhsFeat = append(p.lhsFeat, fd)
	}
	lhsFeatTotal := 1
	for _, fd := range featDims {
		lhsFeatTotal *= fd
	}

	for ti, target := range m.Targets {
		arr, ok := arrays[target.Array]
		if !ok {
			return nil, fmt.Errorf("bridge: map target references unbound array %q", target.Array)
		}
		if len(target.Slices) != len(arr.Shape) {
			return nil, fmt.Errorf("bridge: target %q has %d slices but array rank is %d",
				target.Array, len(target.Slices), len(arr.Shape))
		}
		tp, sweepShape, err := buildTarget(f, target, arr, env, symDims)
		if err != nil {
			return nil, fmt.Errorf("bridge: target %d (%s): %w", ti, target.Array, err)
		}
		if ti == 0 {
			p.sweepShape = sweepShape
		} else if !tensor.ShapeEqual(p.sweepShape, sweepShape) {
			return nil, fmt.Errorf("bridge: target %q sweep shape %v differs from %v",
				target.Array, sweepShape, p.sweepShape)
		}
		for _, sv := range tp.slices {
			p.featTotal += sv.featElem
		}
		p.targets = append(p.targets, tp)
	}
	if p.featTotal != lhsFeatTotal {
		return nil, fmt.Errorf("bridge: functor %q RHS supplies %d features across %d target(s), LHS declares %d",
			f.Name, p.featTotal, len(m.Targets), lhsFeatTotal)
	}
	return p, nil
}

// splitLHS separates the functor's LHS dims into leading symbolic dims and
// trailing concrete feature dims, evaluating the feature extents.
func splitLHS(f *directive.FunctorDecl, env directive.Env) (symbols []string, featExt []int, err error) {
	seenFeat := false
	for di, s := range f.LHS.Slices {
		if s.IsPoint() {
			ref, ok := s.Start.(directive.SymRef)
			if !ok {
				return nil, nil, fmt.Errorf("bridge: functor %q LHS dim %d: point dims must be bare symbols", f.Name, di)
			}
			if _, bound := env[ref.Name]; bound {
				return nil, nil, fmt.Errorf("bridge: functor %q symbol %q collides with a bound integer variable", f.Name, ref.Name)
			}
			if seenFeat {
				return nil, nil, fmt.Errorf("bridge: functor %q LHS dim %d: symbolic dims must precede feature dims", f.Name, di)
			}
			symbols = append(symbols, ref.Name)
			continue
		}
		seenFeat = true
		ext, eerr := sliceExtent(s, env)
		if eerr != nil {
			return nil, nil, fmt.Errorf("bridge: functor %q LHS dim %d: %w", f.Name, di, eerr)
		}
		featExt = append(featExt, ext)
	}
	if len(symbols) == 0 {
		return nil, nil, fmt.Errorf("bridge: functor %q has no symbolic dims", f.Name)
	}
	return symbols, featExt, nil
}

func sliceExtent(s directive.Slice, env directive.Env) (int, error) {
	start, err := s.Start.Eval(env)
	if err != nil {
		return 0, err
	}
	stop, err := s.Stop.Eval(env)
	if err != nil {
		return 0, err
	}
	step := 1
	if s.Step != nil {
		if step, err = s.Step.Eval(env); err != nil {
			return 0, err
		}
	}
	if step <= 0 {
		return 0, fmt.Errorf("non-positive step %d", step)
	}
	if stop < start {
		return 0, fmt.Errorf("empty or reversed range %d:%d", start, stop)
	}
	return (stop - start + step - 1) / step, nil
}

// buildTarget performs the four Figure-4 steps for one map target.
func buildTarget(f *directive.FunctorDecl, target directive.MapTarget, arr *Array,
	env directive.Env, symbols []string) (targetPlan, []int, error) {

	astrides := arr.strides()

	// Concretize the cs-specifier: the first len(symbols) ranges become
	// sweep dims (bound to the functor's symbols in order); any further
	// ranges are feature windows whose extent the functor's own RHS
	// ranges select (e.g. poses[0:N, 0:6] with functor [i, 0:6]); points
	// only contribute a fixed index.
	sweeps := make([]sweepRange, 0, len(target.Slices))
	fixed := make([]int, len(target.Slices))
	for d, cs := range target.Slices {
		start, err := cs.Start.Eval(env)
		if err != nil {
			return targetPlan{}, nil, err
		}
		if cs.IsPoint() {
			if start < 0 || start >= arr.Shape[d] {
				return targetPlan{}, nil, fmt.Errorf("point index %d out of range [0,%d) in dim %d", start, arr.Shape[d], d)
			}
			fixed[d] = start
			continue
		}
		stop, err := cs.Stop.Eval(env)
		if err != nil {
			return targetPlan{}, nil, err
		}
		step := 1
		if cs.Step != nil {
			if step, err = cs.Step.Eval(env); err != nil {
				return targetPlan{}, nil, err
			}
		}
		if step <= 0 {
			return targetPlan{}, nil, fmt.Errorf("non-positive sweep step %d in dim %d", step, d)
		}
		if start < 0 || stop > arr.Shape[d] || stop < start {
			return targetPlan{}, nil, fmt.Errorf("sweep range %d:%d out of bounds [0,%d] in dim %d", start, stop, arr.Shape[d], d)
		}
		if len(sweeps) < len(symbols) {
			sweeps = append(sweeps, sweepRange{start: start, stop: stop, step: step})
		}
		// Extra ranges beyond the symbol count only bound-check; the
		// functor's RHS addresses them absolutely.
	}
	if len(sweeps) != len(symbols) {
		return targetPlan{}, nil, fmt.Errorf("functor declares %d symbolic dims but map target has only %d range dims",
			len(symbols), len(sweeps))
	}
	sweepShape := make([]int, len(sweeps))
	for i, sw := range sweeps {
		sweepShape[i] = sw.count()
		if sweepShape[i] <= 0 {
			return targetPlan{}, nil, fmt.Errorf("empty sweep range in dim %d", i)
		}
	}

	// baseEnv binds each symbol to the first value of its sweep.
	baseEnv := cloneEnv(env)
	for i, name := range symbols {
		baseEnv[name] = sweeps[i].start
	}
	// farEnv binds each symbol to the last value of its sweep (affinity check).
	farEnv := cloneEnv(env)
	for i, name := range symbols {
		farEnv[name] = sweeps[i].start + (sweepShape[i]-1)*sweeps[i].step
	}

	tp := targetPlan{array: arr, sweeps: sweeps}
	for si, rhs := range f.RHS {
		if len(rhs.Slices) != len(target.Slices) {
			return targetPlan{}, nil, fmt.Errorf("RHS slice %d rank %d != target rank %d",
				si, len(rhs.Slices), len(target.Slices))
		}
		sv, err := resolveSlice(rhs, arr, astrides, baseEnv, farEnv, env, symbols, sweeps, sweepShape, fixed)
		if err != nil {
			return targetPlan{}, nil, fmt.Errorf("RHS slice %d %s: %w", si, rhs, err)
		}
		tp.slices = append(tp.slices, sv)
	}
	return tp, sweepShape, nil
}

// resolveSlice performs symbolic shape extraction + resolution + tensor
// wrapping for a single RHS ss-specifier, returning a strided view of shape
// [sweep dims..., feature dims...] over the target array's memory.
func resolveSlice(rhs directive.SliceSpec, arr *Array, astrides []int,
	baseEnv, farEnv, env directive.Env, symbols []string,
	sweeps []sweepRange, sweepShape []int, fixed []int) (sliceView, error) {

	rank := len(rhs.Slices)

	// Per array dim: start expression value at the sweep origin, plus the
	// feature extent and intra-slice step for ranges.
	baseIdx := make([]int, rank)
	farIdx := make([]int, rank)
	featLen := make([]int, 0, rank)
	featStride := make([]int, 0, rank)
	for d, s := range rhs.Slices {
		b, err := s.Start.Eval(baseEnv)
		if err != nil {
			return sliceView{}, err
		}
		fv, err := s.Start.Eval(farEnv)
		if err != nil {
			return sliceView{}, err
		}
		baseIdx[d], farIdx[d] = b, fv
		if s.IsPoint() {
			continue
		}
		// Symbolic shape resolution: multi-element slices add a dimension
		// sized by the element count, which must be sweep-invariant.
		extBase, err := rangeExtent(s, baseEnv)
		if err != nil {
			return sliceView{}, err
		}
		extFar, err := rangeExtent(s, farEnv)
		if err != nil {
			return sliceView{}, err
		}
		if extBase != extFar {
			return sliceView{}, fmt.Errorf("range extent varies across the sweep (%d vs %d): not affine", extBase, extFar)
		}
		step := 1
		if s.Step != nil {
			if step, err = s.Step.Eval(env); err != nil {
				return sliceView{}, err
			}
			if step <= 0 {
				return sliceView{}, fmt.Errorf("non-positive feature step %d", step)
			}
		}
		featLen = append(featLen, extBase)
		featStride = append(featStride, astrides[d]*step)
	}

	// Symbolic shape extraction, numerically: probe each symbol one sweep
	// step away from the origin to recover the view stride for that sweep
	// dimension, then verify affineness at the far corner.
	offset := 0
	for d := range baseIdx {
		offset += baseIdx[d] * astrides[d]
	}
	viewStrides := make([]int, len(symbols))
	predictedFar := offset
	for m, name := range symbols {
		if sweepShape[m] == 1 {
			viewStrides[m] = 0
			continue
		}
		probeEnv := cloneEnv(baseEnv)
		probeEnv[name] = sweeps[m].start + sweeps[m].step
		stride := 0
		for d, s := range rhs.Slices {
			v, err := s.Start.Eval(probeEnv)
			if err != nil {
				return sliceView{}, err
			}
			stride += (v - baseIdx[d]) * astrides[d]
		}
		viewStrides[m] = stride
		predictedFar += stride * (sweepShape[m] - 1)
	}
	actualFar := 0
	for d := range farIdx {
		actualFar += farIdx[d] * astrides[d]
	}
	if actualFar != predictedFar {
		return sliceView{}, fmt.Errorf("index expressions are not affine in the sweep symbols")
	}

	// Points on fixed target dims contribute through baseIdx already; the
	// fixed slice values were concretized into the expressions' env via
	// evaluation, nothing further needed (fixed kept for documentation).
	_ = fixed

	shape := append(append([]int(nil), sweepShape...), featLen...)
	strides := append(append([]int(nil), viewStrides...), featStride...)

	// Tensor wrapping: zero-copy strided view with bounds validation.
	view, err := tensor.WrapStrided(arr.Data, offset, shape, strides)
	if err != nil {
		return sliceView{}, err
	}
	fe := 1
	for _, l := range featLen {
		fe *= l
	}
	return sliceView{view: view, featElem: fe}, nil
}

func rangeExtent(s directive.Slice, env directive.Env) (int, error) {
	start, err := s.Start.Eval(env)
	if err != nil {
		return 0, err
	}
	stop, err := s.Stop.Eval(env)
	if err != nil {
		return 0, err
	}
	step := 1
	if s.Step != nil {
		if step, err = s.Step.Eval(env); err != nil {
			return 0, err
		}
		if step <= 0 {
			return 0, fmt.Errorf("non-positive step %d", step)
		}
	}
	if stop < start {
		return 0, fmt.Errorf("reversed range %d:%d", start, stop)
	}
	return (stop - start + step - 1) / step, nil
}

func cloneEnv(env directive.Env) directive.Env {
	out := make(directive.Env, len(env)+4)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// SweepShape returns the extents of the symbolic (sweep) dimensions.
func (p *Plan) SweepShape() []int { return append([]int(nil), p.sweepShape...) }

// Entries returns the number of tensor entries the plan produces (the
// product of the sweep extents) — the batch size from the model's view.
func (p *Plan) Entries() int { return tensor.NumElements(p.sweepShape) }

// Features returns the per-entry feature count.
func (p *Plan) Features() int { return p.featTotal }

// TensorShape returns the LHS tensor shape: sweep extents followed by the
// declared feature extents.
func (p *Plan) TensorShape() []int {
	return append(append([]int(nil), p.sweepShape...), p.lhsFeat...)
}

// Gather executes the plan in the "to" direction: tensor composition of the
// wrapped RHS views into a single contiguous LHS tensor. This is the only
// step of the bridge that copies data, and each element is copied exactly
// once.
func (p *Plan) Gather() (*tensor.Tensor, error) {
	outFlat := tensor.New(append(append([]int(nil), p.sweepShape...), p.featTotal)...)
	if err := p.GatherInto(outFlat); err != nil {
		return nil, err
	}
	return outFlat.Reshape(p.TensorShape()...)
}

// GatherInto is Gather writing into a caller-provided destination, letting
// callers reuse one staging tensor across invocations (the batched
// region-execution path stages every invocation of a batch into row blocks
// of a single tensor this way). dst must have the composition layout
// [sweep dims..., features] or the flattened [entries, features] layout;
// it may be a strided view (e.g. a Narrow of a larger staging tensor) as
// long as its trailing dimension covers all features.
func (p *Plan) GatherInto(dst *tensor.Tensor) error {
	d, dim, err := p.composeLayout(dst)
	if err != nil {
		return fmt.Errorf("bridge: gather dst: %w", err)
	}
	fOff := 0
	for _, tp := range p.targets {
		for _, sv := range tp.slices {
			part, err := d.Narrow(dim, fOff, sv.featElem)
			if err != nil {
				return err
			}
			if err := tensor.CopyFlat(part, sv.view); err != nil {
				return fmt.Errorf("bridge: compose: %w", err)
			}
			fOff += sv.featElem
		}
	}
	return nil
}

// ioPair couples one RHS slice's application-memory view with its slot
// in a fixed composition tensor.
type ioPair struct{ comp, view *tensor.Tensor }

// Stager is a Plan bound to one fixed staging tensor: every per-slice
// Narrow of the composition layout is resolved once at construction, so
// repeated transfers through the same staging memory do no per-call
// planning or allocation. This is what lets the batched region-execution
// path stage thousands of invocations without re-deriving views.
type Stager struct {
	pairs []ioPair
}

// NewStager binds the plan to dst, which must satisfy the same layout
// rules as GatherInto. The returned stager aliases both dst and the
// plan's application memory; it stays valid as long as neither is
// reallocated.
func (p *Plan) NewStager(dst *tensor.Tensor) (*Stager, error) {
	d, dim, err := p.composeLayout(dst)
	if err != nil {
		return nil, fmt.Errorf("bridge: stager: %w", err)
	}
	s := &Stager{pairs: make([]ioPair, 0, len(p.targets))}
	fOff := 0
	for _, tp := range p.targets {
		for _, sv := range tp.slices {
			part, err := d.Narrow(dim, fOff, sv.featElem)
			if err != nil {
				return nil, err
			}
			s.pairs = append(s.pairs, ioPair{comp: part, view: sv.view})
			fOff += sv.featElem
		}
	}
	return s, nil
}

// Gather copies current application memory into the staging tensor (the
// "to" direction of the bound plan).
func (s *Stager) Gather() error {
	for _, pr := range s.pairs {
		if err := tensor.CopyFlat(pr.comp, pr.view); err != nil {
			return fmt.Errorf("bridge: staged gather: %w", err)
		}
	}
	return nil
}

// Scatter copies the staging tensor back into application memory (the
// "from" direction), writing slices in declaration order.
func (s *Stager) Scatter() error {
	for _, pr := range s.pairs {
		if err := tensor.CopyFlat(pr.view, pr.comp); err != nil {
			return fmt.Errorf("bridge: staged scatter: %w", err)
		}
	}
	return nil
}

// composeLayout validates that t can receive (or supply) the plan's
// composition layout and returns the tensor to narrow plus the feature
// dimension index. Contiguous tensors of the right element count are
// reshaped for free; strided views must already expose the feature axis
// as their trailing dimension.
func (p *Plan) composeLayout(t *tensor.Tensor) (*tensor.Tensor, int, error) {
	if t == nil {
		return nil, 0, fmt.Errorf("nil tensor")
	}
	flatComp := append(append([]int(nil), p.sweepShape...), p.featTotal)
	switch {
	case tensor.ShapeEqual(t.Shape(), flatComp):
		return t, len(p.sweepShape), nil
	case t.Rank() == 2 && t.Dim(0) == p.Entries() && t.Dim(1) == p.featTotal:
		return t, 1, nil
	}
	if t.Len() == p.Entries()*p.featTotal && t.IsContiguous() {
		r, err := t.Reshape(p.Entries(), p.featTotal)
		if err != nil {
			return nil, 0, err
		}
		return r, 1, nil
	}
	return nil, 0, fmt.Errorf("shape %v incompatible with composition layout %v", t.Shape(), flatComp)
}

// Scatter executes the plan in the "from" direction: the model-produced LHS
// tensor t is copied back through the wrapped views into application
// memory. Overlapping RHS views are written in declaration order
// (last-writer-wins). t may also arrive in the flattened [entries,
// features] layout the NN runtime produces.
func (p *Plan) Scatter(t *tensor.Tensor) error {
	want := p.TensorShape()
	if !tensor.ShapeEqual(t.Shape(), want) && t.Len() != tensor.NumElements(want) {
		return fmt.Errorf("bridge: scatter shape %v, plan wants %v", t.Shape(), want)
	}
	nSweep := len(p.sweepShape)
	src, err := t.Reshape(append(append([]int(nil), p.sweepShape...), p.featTotal)...)
	if err != nil {
		return fmt.Errorf("bridge: scatter reshape: %w", err)
	}
	fOff := 0
	for _, tp := range p.targets {
		for _, sv := range tp.slices {
			part, err := src.Narrow(nSweep, fOff, sv.featElem)
			if err != nil {
				return err
			}
			if err := tensor.CopyFlat(sv.view, part); err != nil {
				return fmt.Errorf("bridge: scatter: %w", err)
			}
			fOff += sv.featElem
		}
	}
	return nil
}
