package bridge

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/directive"
	"repro/internal/tensor"
)

func parseFunctor(t *testing.T, src string) *directive.FunctorDecl {
	t.Helper()
	d, err := directive.Parse(src)
	if err != nil {
		t.Fatalf("parse functor: %v", err)
	}
	return d.(*directive.FunctorDecl)
}

func parseMap(t *testing.T, src string) *directive.MapDecl {
	t.Helper()
	d, err := directive.Parse(src)
	if err != nil {
		t.Fatalf("parse map: %v", err)
	}
	return d.(*directive.MapDecl)
}

// TestFigure4StencilGather reproduces the exact example of Figures 2 and 4:
// a 5-point stencil functor applied to a 2-D grid.
func TestFigure4StencilGather(t *testing.T) {
	const N, M = 5, 6
	f := parseFunctor(t, "tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))")
	m := parseMap(t, "tensor map(to: ifnctr(t[1:N-1, 1:M-1]))")

	grid := make([]float64, N*M)
	for i := range grid {
		grid[i] = float64(i)
	}
	arr, err := NewArray("t", grid, N, M)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(f, m, map[string]*Array{"t": arr}, directive.Env{"N": N, "M": M})
	if err != nil {
		t.Fatal(err)
	}
	wantShape := []int{N - 2, M - 2, 5}
	if !tensor.ShapeEqual(plan.TensorShape(), wantShape) {
		t.Fatalf("tensor shape = %v, want %v", plan.TensorShape(), wantShape)
	}
	if plan.Entries() != (N-2)*(M-2) || plan.Features() != 5 {
		t.Fatalf("entries/features = %d/%d", plan.Entries(), plan.Features())
	}
	out, err := plan.Gather()
	if err != nil {
		t.Fatal(err)
	}
	// Entry (si,sj) corresponds to grid point (i,j) = (si+1, sj+1) and must
	// contain [t[i-1,j], t[i+1,j], t[i,j-1], t[i,j], t[i,j+1]].
	at := func(i, j int) float64 { return grid[i*M+j] }
	for si := 0; si < N-2; si++ {
		for sj := 0; sj < M-2; sj++ {
			i, j := si+1, sj+1
			want := []float64{at(i-1, j), at(i+1, j), at(i, j-1), at(i, j), at(i, j+1)}
			for k, w := range want {
				if got := out.At(si, sj, k); got != w {
					t.Fatalf("entry(%d,%d)[%d] = %g, want %g", si, sj, k, got, w)
				}
			}
		}
	}
}

// TestFigure2Scatter checks the output direction of the Figure 2 program:
// ofnctr writes model results back into the interior of tnew.
func TestFigure2Scatter(t *testing.T) {
	const N, M = 4, 5
	f := parseFunctor(t, "tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))")
	m := parseMap(t, "tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))")

	buf := make([]float64, N*M)
	for i := range buf {
		buf[i] = -1
	}
	arr, _ := NewArray("tnew", buf, N, M)
	plan, err := Build(f, m, map[string]*Array{"tnew": arr}, directive.Env{"N": N, "M": M})
	if err != nil {
		t.Fatal(err)
	}
	modelOut := tensor.New(N-2, M-2, 1)
	for i := 0; i < N-2; i++ {
		for j := 0; j < M-2; j++ {
			modelOut.Set(float64(100+10*i+j), i, j, 0)
		}
	}
	if err := plan.Scatter(modelOut); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		for j := 0; j < M; j++ {
			got := buf[i*M+j]
			interior := i >= 1 && i < N-1 && j >= 1 && j < M-1
			if interior {
				want := float64(100 + 10*(i-1) + (j - 1))
				if got != want {
					t.Fatalf("tnew[%d][%d] = %g, want %g", i, j, got, want)
				}
			} else if got != -1 {
				t.Fatalf("boundary tnew[%d][%d] clobbered: %g", i, j, got)
			}
		}
	}
}

// TestScatterAcceptsFlattenedBatch checks the NN-runtime layout
// [entries, features] is accepted by Scatter.
func TestScatterAcceptsFlattenedBatch(t *testing.T) {
	const N = 6
	f := parseFunctor(t, "tensor functor(of: [i, 0:1] = ([i]))")
	m := parseMap(t, "tensor map(from: of(y[0:N]))")
	buf := make([]float64, N)
	arr, _ := NewArray("y", buf, N)
	plan, err := Build(f, m, map[string]*Array{"y": arr}, directive.Env{"N": N})
	if err != nil {
		t.Fatal(err)
	}
	flat := tensor.New(N, 1)
	for i := 0; i < N; i++ {
		flat.Set(float64(i)*2, i, 0)
	}
	if err := plan.Scatter(flat); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if buf[i] != float64(i)*2 {
			t.Fatalf("y[%d] = %g", i, buf[i])
		}
	}
}

// TestMultiTargetFeatureConcat maps one functor over several arrays,
// concatenating their features (used by the tabular benchmarks).
func TestMultiTargetFeatureConcat(t *testing.T) {
	const N = 4
	f := parseFunctor(t, "tensor functor(f3: [i, 0:3] = ([i]))")
	m := parseMap(t, "tensor map(to: f3(S[0:N], X[0:N], T[0:N]))")
	s := []float64{1, 2, 3, 4}
	x := []float64{10, 20, 30, 40}
	tt := []float64{100, 200, 300, 400}
	arrays := map[string]*Array{}
	for name, data := range map[string][]float64{"S": s, "X": x, "T": tt} {
		a, err := NewArray(name, data, N)
		if err != nil {
			t.Fatal(err)
		}
		arrays[name] = a
	}
	plan, err := Build(f, m, arrays, directive.Env{"N": N})
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(out.Shape(), []int{N, 3}) {
		t.Fatalf("shape = %v, want [%d 3]", out.Shape(), N)
	}
	for i := 0; i < N; i++ {
		if out.At(i, 0) != s[i] || out.At(i, 1) != x[i] || out.At(i, 2) != tt[i] {
			t.Fatalf("row %d = (%g,%g,%g)", i, out.At(i, 0), out.At(i, 1), out.At(i, 2))
		}
	}
}

// TestSteppedSweep uses a stride-2 sweep range.
func TestSteppedSweep(t *testing.T) {
	const N = 10
	f := parseFunctor(t, "tensor functor(f: [i, 0:1] = ([i]))")
	m := parseMap(t, "tensor map(to: f(x[0:N:2]))")
	data := make([]float64, N)
	for i := range data {
		data[i] = float64(i)
	}
	arr, _ := NewArray("x", data, N)
	plan, err := Build(f, m, map[string]*Array{"x": arr}, directive.Env{"N": N})
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(out.Shape(), []int{5, 1}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	for k := 0; k < 5; k++ {
		if out.At(k, 0) != float64(2*k) {
			t.Fatalf("entry %d = %g, want %d", k, out.At(k, 0), 2*k)
		}
	}
}

// TestScaledIndexExpression exercises affine expressions with a
// multiplier: gathering pairs x[2i], x[2i+1].
func TestScaledIndexExpression(t *testing.T) {
	const N = 8
	f := parseFunctor(t, "tensor functor(pairs: [i, 0:2] = ([i*2], [i*2+1]))")
	m := parseMap(t, "tensor map(to: pairs(x[0:N/2]))")
	data := make([]float64, N)
	for i := range data {
		data[i] = float64(i)
	}
	arr, _ := NewArray("x", data, N)
	plan, err := Build(f, m, map[string]*Array{"x": arr}, directive.Env{"N": N})
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Gather()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N/2; i++ {
		if out.At(i, 0) != float64(2*i) || out.At(i, 1) != float64(2*i+1) {
			t.Fatalf("pair %d = (%g,%g)", i, out.At(i, 0), out.At(i, 1))
		}
	}
}

// TestPointTargetDim fixes one array dim with a point index in the map.
func TestPointTargetDim(t *testing.T) {
	const R, C = 3, 4
	f := parseFunctor(t, "tensor functor(row: [j, 0:1] = ([1, j]))")
	// Hmm: RHS rank must match target rank (2); target fixes dim 0 at 1.
	m := parseMap(t, "tensor map(to: row(x[1, 0:C]))")
	data := make([]float64, R*C)
	for i := range data {
		data[i] = float64(i)
	}
	arr, _ := NewArray("x", data, R, C)
	plan, err := Build(f, m, map[string]*Array{"x": arr}, directive.Env{"C": C})
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(out.Shape(), []int{C, 1}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	for j := 0; j < C; j++ {
		if out.At(j, 0) != float64(C+j) {
			t.Fatalf("row[%d] = %g, want %d", j, out.At(j, 0), C+j)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	const N = 4
	data := make([]float64, N*N)
	arr, _ := NewArray("x", data, N, N)
	arrays := map[string]*Array{"x": arr}
	env := directive.Env{"N": N}

	cases := []struct {
		name    string
		functor string
		mapSrc  string
	}{
		{"unknown array", "tensor functor(f: [i, 0:1] = ([i, 0]))", "tensor map(to: f(zz[0:N, 0:N]))"},
		{"rank mismatch", "tensor functor(f: [i, 0:1] = ([i]))", "tensor map(to: f(x[0:N, 0:N]))"},
		{"symbol count mismatch", "tensor functor(f: [i, j, 0:1] = ([i, j]))", "tensor map(to: f(x[0:N, 2]))"},
		{"sweep out of bounds", "tensor functor(f: [i, j, 0:1] = ([i, j]))", "tensor map(to: f(x[0:N+1, 0:N]))"},
		{"point out of bounds", "tensor functor(f: [j, 0:1] = ([0, j]))", "tensor map(to: f(x[9, 0:N]))"},
		{"feature count mismatch", "tensor functor(f: [i, j, 0:3] = ([i, j]))", "tensor map(to: f(x[0:N, 0:N]))"},
		{"functor name mismatch", "tensor functor(g: [i, j, 0:1] = ([i, j]))", "tensor map(to: f(x[0:N, 0:N]))"},
		{"stencil out of bounds", "tensor functor(f: [i, j, 0:1] = ([i-1, j]))", "tensor map(to: f(x[0:N, 0:N]))"},
		{"non-affine index", "tensor functor(f: [i, j, 0:1] = ([i*i, j]))", "tensor map(to: f(x[0:N, 0:N]))"},
		{"varying extent", "tensor functor(f: [i, j, 0:1] = ([i, 0:j]))", "tensor map(to: f(x[0:N, 1:N]))"},
		{"no symbolic dims", "tensor functor(f: [0:2, 0:1] = ([0, 0]))", "tensor map(to: f(x[0:N, 0:N]))"},
		{"symbol collides with env", "tensor functor(f: [N, j, 0:1] = ([N, j]))", "tensor map(to: f(x[0:N, 0:N]))"},
	}
	for _, c := range cases {
		fd, err := directive.Parse(c.functor)
		if err != nil {
			t.Fatalf("%s: functor parse: %v", c.name, err)
		}
		md, err := directive.Parse(c.mapSrc)
		if err != nil {
			t.Fatalf("%s: map parse: %v", c.name, err)
		}
		if _, err := Build(fd.(*directive.FunctorDecl), md.(*directive.MapDecl), arrays, env); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
}

func TestInteriorSymbolicDimOrderEnforced(t *testing.T) {
	// Feature dims must trail symbolic dims on the LHS.
	fd, err := directive.Parse("tensor functor(f: [i, 0:2, j] = ([i, j], [i, j]))")
	if err != nil {
		t.Fatal(err)
	}
	md, _ := directive.Parse("tensor map(to: f(x[0:2, 0:2]))")
	data := make([]float64, 4)
	arr, _ := NewArray("x", data, 2, 2)
	if _, err := Build(fd.(*directive.FunctorDecl), md.(*directive.MapDecl),
		map[string]*Array{"x": arr}, directive.Env{}); err == nil {
		t.Fatal("want error for interleaved symbolic/feature dims")
	}
}

func TestNewArrayValidates(t *testing.T) {
	if _, err := NewArray("x", make([]float64, 3), 2, 2); err == nil {
		t.Fatal("want error for short buffer")
	}
}

func TestGatherZeroCopyUntilCompose(t *testing.T) {
	// Mutating the application array between Build and Gather must be
	// visible: the plan wraps memory, it does not snapshot it.
	const N = 4
	f := parseFunctor(t, "tensor functor(f: [i, 0:1] = ([i]))")
	m := parseMap(t, "tensor map(to: f(x[0:N]))")
	data := make([]float64, N)
	arr, _ := NewArray("x", data, N)
	plan, err := Build(f, m, map[string]*Array{"x": arr}, directive.Env{"N": N})
	if err != nil {
		t.Fatal(err)
	}
	data[2] = 42
	out, err := plan.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2, 0) != 42 {
		t.Fatal("plan must alias application memory, not snapshot it")
	}
}

// Property: scatter(gather(x)) is the identity on the swept region when the
// output functor mirrors the input functor (round-trip through the bridge).
func TestPropGatherScatterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		fd, err := directive.Parse("tensor functor(f: [i, 0:1] = ([i]))")
		if err != nil {
			return false
		}
		toD, _ := directive.Parse("tensor map(to: f(x[0:N]))")
		fromD, _ := directive.Parse("tensor map(from: f(x[0:N]))")
		data := make([]float64, n)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		orig := append([]float64(nil), data...)
		arr, _ := NewArray("x", data, n)
		env := directive.Env{"N": n}
		arrays := map[string]*Array{"x": arr}
		toPlan, err := Build(fd.(*directive.FunctorDecl), toD.(*directive.MapDecl), arrays, env)
		if err != nil {
			return false
		}
		fromPlan, err := Build(fd.(*directive.FunctorDecl), fromD.(*directive.MapDecl), arrays, env)
		if err != nil {
			return false
		}
		gathered, err := toPlan.Gather()
		if err != nil {
			return false
		}
		// Clobber then restore through scatter.
		for i := range data {
			data[i] = math.NaN()
		}
		if err := fromPlan.Scatter(gathered); err != nil {
			return false
		}
		for i := range data {
			if data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: 2-D stencil gather matches a reference per-element gather for
// random grid sizes.
func TestPropStencilMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		N := 3 + r.Intn(8)
		M := 3 + r.Intn(8)
		fd, err := directive.Parse("tensor functor(s: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))")
		if err != nil {
			return false
		}
		md, _ := directive.Parse("tensor map(to: s(t[1:N-1, 1:M-1]))")
		grid := make([]float64, N*M)
		for i := range grid {
			grid[i] = r.NormFloat64()
		}
		arr, _ := NewArray("t", grid, N, M)
		plan, err := Build(fd.(*directive.FunctorDecl), md.(*directive.MapDecl),
			map[string]*Array{"t": arr}, directive.Env{"N": N, "M": M})
		if err != nil {
			return false
		}
		out, err := plan.Gather()
		if err != nil {
			return false
		}
		at := func(i, j int) float64 { return grid[i*M+j] }
		for si := 0; si < N-2; si++ {
			for sj := 0; sj < M-2; sj++ {
				i, j := si+1, sj+1
				want := []float64{at(i-1, j), at(i+1, j), at(i, j-1), at(i, j), at(i, j+1)}
				for k, w := range want {
					if out.At(si, sj, k) != w {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherIntoMatchesGather checks the buffer-reusing composition path
// against the allocating one, including gathering into a strided row
// block of a larger batched staging tensor.
func TestGatherIntoMatchesGather(t *testing.T) {
	const N, M = 6, 7
	f := parseFunctor(t, "tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))")
	m := parseMap(t, "tensor map(to: ifnctr(t[1:N-1, 1:M-1]))")
	grid := make([]float64, N*M)
	for i := range grid {
		grid[i] = math.Sin(float64(i))
	}
	arr, err := NewArray("t", grid, N, M)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(f, m, map[string]*Array{"t": arr}, directive.Env{"N": N, "M": M})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Gather()
	if err != nil {
		t.Fatal(err)
	}
	wantFlat, err := want.Reshape(plan.Entries(), plan.Features())
	if err != nil {
		t.Fatal(err)
	}

	check := func(got *tensor.Tensor) {
		t.Helper()
		g, err := got.Reshape(plan.Entries(), plan.Features())
		if err != nil {
			t.Fatal(err)
		}
		gc := g.Contiguous()
		for i := 0; i < plan.Entries(); i++ {
			for j := 0; j < plan.Features(); j++ {
				if gc.At(i, j) != wantFlat.At(i, j) {
					t.Fatalf("GatherInto differs at (%d,%d)", i, j)
				}
			}
		}
	}

	// Composition layout [sweep..., features].
	dst := tensor.New(N-2, M-2, 5)
	if err := plan.GatherInto(dst); err != nil {
		t.Fatal(err)
	}
	check(dst)

	// Flattened [entries, features] layout.
	flat := tensor.New(plan.Entries(), plan.Features())
	if err := plan.GatherInto(flat); err != nil {
		t.Fatal(err)
	}
	check(flat)

	// A row block of a batched staging tensor: 3 invocations, gather into
	// the middle block, then check the neighbors were untouched.
	batch := tensor.Full(-7, 3*plan.Entries(), plan.Features())
	mid, err := batch.Narrow(0, plan.Entries(), plan.Entries())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.GatherInto(mid); err != nil {
		t.Fatal(err)
	}
	check(mid)
	if batch.At(0, 0) != -7 || batch.At(2*plan.Entries(), 0) != -7 {
		t.Fatal("GatherInto wrote outside its row block")
	}

	// A feature-column block of a wider staging tensor (multi-plan
	// composition): strided dst with the feature axis trailing.
	wide := tensor.Full(-3, plan.Entries(), plan.Features()+4)
	col, err := wide.Narrow(1, 2, plan.Features())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.GatherInto(col); err != nil {
		t.Fatal(err)
	}
	check(col)
	if wide.At(0, 0) != -3 || wide.At(0, plan.Features()+2) != -3 {
		t.Fatal("GatherInto wrote outside its column block")
	}

	// Incompatible destination shapes are rejected.
	if err := plan.GatherInto(tensor.New(plan.Entries(), plan.Features()+1)); err == nil {
		t.Fatal("want error for wrong feature count")
	}
	if err := plan.GatherInto(nil); err == nil {
		t.Fatal("want error for nil dst")
	}
}
