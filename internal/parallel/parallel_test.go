package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	const n = 10_000
	var hits [n]int32
	For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(0, func(int) { ran = true })
	For(-5, func(int) { ran = true })
	if ran {
		t.Fatal("For must not run for n <= 0")
	}
}

func TestForChunkedSmallStaysSerial(t *testing.T) {
	// Under the chunk threshold the call must still visit everything.
	var sum atomic.Int64
	ForChunked(10, 100, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestForRangeCoversDisjointRanges(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForRangeZero(t *testing.T) {
	ran := false
	ForRange(0, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("ForRange must not run for n = 0")
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Fatal("MaxWorkers must be >= 1")
	}
}

// Property: parallel sum equals serial sum for arbitrary sizes.
func TestPropParallelSumMatchesSerial(t *testing.T) {
	f := func(n uint16) bool {
		size := int(n%5000) + 1
		var par atomic.Int64
		For(size, func(i int) { par.Add(int64(i * i)) })
		var ser int64
		for i := 0; i < size; i++ {
			ser += int64(i * i)
		}
		return par.Load() == ser
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
