// Package parallel provides the chunked parallel-for primitive used by the
// device layer and the NN engine. It follows the Effective Go pattern of a
// fixed worker count with completion signalling over a channel.
package parallel

import (
	"runtime"
	"sync"
)

// MaxWorkers returns the degree of parallelism used by For: the user's
// GOMAXPROCS setting.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// For executes fn(i) for every i in [0, n) using up to MaxWorkers
// goroutines, each processing a contiguous chunk. It blocks until all
// iterations complete. For small n the call degenerates to a serial loop,
// avoiding goroutine overhead.
func For(n int, fn func(i int)) {
	ForChunked(n, 0, fn)
}

// ForChunked is For with an explicit minimum chunk size: no goroutine is
// spawned for fewer than minChunk iterations. minChunk <= 0 selects a
// heuristic.
func ForChunked(n, minChunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if minChunk <= 0 {
		minChunk = 256
	}
	if workers == 1 || n <= minChunk {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if max := (n + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForRange executes fn(lo, hi) over contiguous subranges covering [0, n),
// one call per worker. Useful when per-chunk setup (scratch buffers,
// accumulators) amortizes better than per-index calls.
func ForRange(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers == 1 || n < workers {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				fn(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}
