package bo

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func parTestSpace() *Space {
	return &Space{Params: []Param{
		FloatParam{Key: "x", Min: -2, Max: 2},
		FloatParam{Key: "y", Min: -2, Max: 2},
	}}
}

// TestMinimizeParallelWarmupMatchesSerial: Workers must change neither
// the points evaluated nor the trial order nor the result — the warmup
// points come from the same RNG stream either way.
func TestMinimizeParallelWarmupMatchesSerial(t *testing.T) {
	obj := func(assign map[string]Value) (float64, error) {
		x, y := assign["x"].Float, assign["y"].Float
		if x < -1.8 {
			return 0, fmt.Errorf("synthetic failure region")
		}
		return (x-0.5)*(x-0.5) + (y+0.25)*(y+0.25), nil
	}
	base := Config{Iterations: 18, InitRandom: 10, Patience: 3, Seed: 99}
	serial, err := Minimize(parTestSpace(), obj, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		cfg := base
		cfg.Workers = workers
		par, err := Minimize(parTestSpace(), obj, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Trials) != len(serial.Trials) {
			t.Fatalf("workers=%d: %d trials, serial had %d", workers, len(par.Trials), len(serial.Trials))
		}
		for i, tr := range par.Trials {
			st := serial.Trials[i]
			if tr.Failed != st.Failed || tr.Value != st.Value {
				t.Fatalf("workers=%d trial %d: (%v, %g) vs serial (%v, %g)",
					workers, i, tr.Failed, tr.Value, st.Failed, st.Value)
			}
			for d := range tr.U {
				if tr.U[d] != st.U[d] {
					t.Fatalf("workers=%d trial %d: point differs in dim %d", workers, i, d)
				}
			}
		}
		if par.Best.Value != serial.Best.Value {
			t.Fatalf("workers=%d: best %g, serial %g", workers, par.Best.Value, serial.Best.Value)
		}
	}
}

// TestMinimizeMultiParallelWarmupMatchesSerial mirrors the check for the
// ParEGO outer loop.
func TestMinimizeMultiParallelWarmupMatchesSerial(t *testing.T) {
	obj := func(assign map[string]Value) ([]float64, error) {
		x, y := assign["x"].Float, assign["y"].Float
		return []float64{x * x, (y - 1) * (y - 1)}, nil
	}
	base := Config{Iterations: 14, InitRandom: 8, Seed: 7}
	serial, err := MinimizeMulti(parTestSpace(), obj, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 4
	par, err := MinimizeMulti(parTestSpace(), obj, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Trials) != len(serial.Trials) || len(par.Pareto) != len(serial.Pareto) {
		t.Fatalf("parallel: %d trials / %d pareto, serial: %d / %d",
			len(par.Trials), len(par.Pareto), len(serial.Trials), len(serial.Pareto))
	}
	for i, tr := range par.Trials {
		st := serial.Trials[i]
		for k := range tr.Objs {
			if tr.Objs[k] != st.Objs[k] {
				t.Fatalf("trial %d objective %d: %g vs %g", i, k, tr.Objs[k], st.Objs[k])
			}
		}
	}
	for k := range par.Best.Objs {
		if par.Best.Objs[k] != serial.Best.Objs[k] {
			t.Fatal("knee point differs between parallel and serial warmup")
		}
	}
}

// TestMinimizeParallelWarmupConcurrency verifies the warmup actually
// fans out: every objective call blocks until a second call is in
// flight, so the search can only finish if evaluations overlap.
func TestMinimizeParallelWarmupConcurrency(t *testing.T) {
	var calls atomic.Int64
	var timedOut atomic.Bool
	rendezvous := make(chan struct{})
	obj := func(assign map[string]Value) (float64, error) {
		if calls.Add(1) == 2 {
			close(rendezvous)
		}
		select {
		case <-rendezvous:
		case <-time.After(10 * time.Second):
			timedOut.Store(true)
			return 0, fmt.Errorf("no concurrent sibling arrived")
		}
		return assign["x"].Float, nil
	}
	if _, err := Minimize(parTestSpace(), obj, Config{
		Iterations: 8, InitRandom: 8, Seed: 3, Workers: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if timedOut.Load() {
		t.Fatal("warmup evaluations never overlapped with Workers=4")
	}
}

// TestNestedSearchInnerWorkers runs the nested search with parallel
// inner warmup and checks it matches the serial run.
func TestNestedSearchInnerWorkers(t *testing.T) {
	arch := &Space{Params: []Param{ChoiceParam{Key: "hidden", Choices: []int{8, 16, 32}}}}
	hyper := &Space{Params: []Param{FloatParam{Key: "lr", Min: 1e-4, Max: 1e-1, Log: true}}}
	eval := func(a, h map[string]Value) (float64, float64, error) {
		hid := float64(a["hidden"].Int)
		lr := h["lr"].Float
		return hid * 1e-6, math.Abs(math.Log10(lr)+2) + 1/hid, nil
	}
	base := NestedConfig{OuterIters: 4, InnerIters: 5, Seed: 11}
	serial, err := NestedSearch(arch, hyper, eval, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.InnerWorkers = 3
	par, err := NestedSearch(arch, hyper, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.ModelsEvaluated != serial.ModelsEvaluated {
		t.Fatalf("models evaluated %d vs serial %d", par.ModelsEvaluated, serial.ModelsEvaluated)
	}
	if par.Best.ValError != serial.Best.ValError || par.Best.LatencySec != serial.Best.LatencySec {
		t.Fatalf("best (%g, %g) vs serial (%g, %g)",
			par.Best.LatencySec, par.Best.ValError, serial.Best.LatencySec, serial.Best.ValError)
	}
}
