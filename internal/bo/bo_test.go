package bo

import (
	"fmt"
	"math"
	"testing"
)

func TestParamDecoding(t *testing.T) {
	f := FloatParam{Key: "lr", Min: 1e-4, Max: 1e-2, Log: true}
	lo := f.Decode(0)
	hi := f.Decode(1)
	if math.Abs(lo.Float-1e-4) > 1e-9 {
		t.Fatalf("log decode at 0 = %g", lo.Float)
	}
	if hi.Float > 1e-2+1e-9 || hi.Float < 0.9e-2 {
		t.Fatalf("log decode at 1 = %g", hi.Float)
	}
	mid := f.Decode(0.5)
	if math.Abs(mid.Float-1e-3) > 1e-4 {
		t.Fatalf("log decode at 0.5 = %g, want ~1e-3", mid.Float)
	}

	lin := FloatParam{Key: "drop", Min: 0, Max: 0.8}
	if v := lin.Decode(0.5).Float; math.Abs(v-0.4) > 1e-9 {
		t.Fatalf("linear decode = %g", v)
	}

	ip := IntParam{Key: "layers", Min: 2, Max: 12}
	if v := ip.Decode(0).Int; v != 2 {
		t.Fatalf("int decode at 0 = %d", v)
	}
	if v := ip.Decode(0.9999).Int; v != 12 {
		t.Fatalf("int decode at 1 = %d", v)
	}

	cp := ChoiceParam{Key: "hidden", Choices: []int{64, 128, 256}}
	if v := cp.Decode(0).Int; v != 64 {
		t.Fatalf("choice decode at 0 = %d", v)
	}
	if v := cp.Decode(0.99).Int; v != 256 {
		t.Fatalf("choice decode at 1 = %d", v)
	}
	// Out-of-range u is clamped, not panicking.
	if v := cp.Decode(1.5).Int; v != 256 {
		t.Fatalf("clamped decode = %d", v)
	}
	if v := cp.Decode(-1).Int; v != 64 {
		t.Fatalf("clamped decode = %d", v)
	}
}

func TestSpaceDecode(t *testing.T) {
	s := &Space{Params: []Param{
		IntParam{Key: "a", Min: 0, Max: 10},
		FloatParam{Key: "b", Min: 0, Max: 1},
	}}
	if s.Dim() != 2 {
		t.Fatal("dim")
	}
	m, err := s.Decode([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !m["a"].IsInt || m["b"].IsInt {
		t.Fatal("kind flags wrong")
	}
	if _, err := s.Decode([]float64{0.5}); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	space := &Space{Params: []Param{
		FloatParam{Key: "x", Min: -2, Max: 2},
		FloatParam{Key: "y", Min: -2, Max: 2},
	}}
	res, err := Minimize(space, func(a map[string]Value) (float64, error) {
		x, y := a["x"].Float, a["y"].Float
		return (x-0.7)*(x-0.7) + (y+0.3)*(y+0.3), nil
	}, Config{Iterations: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Value > 0.05 {
		t.Fatalf("BO failed to localize minimum: best %g at %v", res.Best.Value, res.Best.Assign)
	}
}

func TestMinimizeBeatsWorstRandom(t *testing.T) {
	// Sanity: BO's best is at least as good as its first (random) trial.
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	res, err := Minimize(space, func(a map[string]Value) (float64, error) {
		x := a["x"].Float
		return math.Abs(x - 0.123), nil
	}, Config{Iterations: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Value > res.Trials[0].Value {
		t.Fatal("best trial worse than first random trial")
	}
	if res.Best.Value > 0.05 {
		t.Fatalf("1-D minimize too far off: %g", res.Best.Value)
	}
}

func TestMinimizeHandlesFailures(t *testing.T) {
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	calls := 0
	res, err := Minimize(space, func(a map[string]Value) (float64, error) {
		calls++
		if calls%2 == 0 {
			return 0, fmt.Errorf("simulated training failure")
		}
		return a["x"].Float, nil
	}, Config{Iterations: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, tr := range res.Trials {
		if tr.Failed {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("expected some failed trials")
	}
	if res.Best == nil || res.Best.Failed {
		t.Fatal("best must be a successful trial")
	}
}

func TestMinimizeAllFail(t *testing.T) {
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	_, err := Minimize(space, func(map[string]Value) (float64, error) {
		return 0, fmt.Errorf("always fails")
	}, Config{Iterations: 5, Seed: 1})
	if err == nil {
		t.Fatal("want error when every trial fails")
	}
}

func TestMinimizeValidation(t *testing.T) {
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	if _, err := Minimize(space, nil, Config{Iterations: 0}); err == nil {
		t.Fatal("want error for zero iterations")
	}
	if _, err := Minimize(&Space{}, nil, Config{Iterations: 5}); err == nil {
		t.Fatal("want error for empty space")
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	res, err := Minimize(space, func(map[string]Value) (float64, error) {
		return 1, nil // flat objective: nothing ever improves after trial 1
	}, Config{Iterations: 100, Patience: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) >= 100 {
		t.Fatalf("patience did not stop the search: %d trials", len(res.Trials))
	}
}

func TestMinimizeMultiParetoFront(t *testing.T) {
	// Two conflicting objectives: f1 = x, f2 = 1-x. Every point is
	// Pareto-optimal; the front should span the range and the knee sit
	// near the middle.
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	res, err := MinimizeMulti(space, func(a map[string]Value) ([]float64, error) {
		x := a["x"].Float
		return []float64{x, 1 - x}, nil
	}, 2, Config{Iterations: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pareto) < 5 {
		t.Fatalf("expected a rich Pareto front, got %d", len(res.Pareto))
	}
	for i := 1; i < len(res.Pareto); i++ {
		if res.Pareto[i].Objs[0] < res.Pareto[i-1].Objs[0] {
			t.Fatal("Pareto front not sorted by first objective")
		}
		if res.Pareto[i].Objs[1] > res.Pareto[i-1].Objs[1] {
			t.Fatal("Pareto front member dominated")
		}
	}
}

func TestMinimizeMultiDominanceFiltering(t *testing.T) {
	// f1 = (x-0.5)^2, f2 = (x-0.5)^2: non-conflicting — the front should
	// collapse toward the single optimum.
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	res, err := MinimizeMulti(space, func(a map[string]Value) ([]float64, error) {
		x := a["x"].Float
		v := (x - 0.5) * (x - 0.5)
		return []float64{v, v}, nil
	}, 2, Config{Iterations: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pareto) != 1 {
		t.Fatalf("aligned objectives must yield a single Pareto point, got %d", len(res.Pareto))
	}
	if res.Best.Objs[0] > 0.01 {
		t.Fatalf("knee point too far from optimum: %v", res.Best.Objs)
	}
}

func TestMinimizeMultiValidation(t *testing.T) {
	space := &Space{Params: []Param{FloatParam{Key: "x", Min: 0, Max: 1}}}
	if _, err := MinimizeMulti(space, nil, 1, Config{Iterations: 5}); err == nil {
		t.Fatal("want error for single objective")
	}
	if _, err := MinimizeMulti(space, func(map[string]Value) ([]float64, error) {
		return nil, fmt.Errorf("fail")
	}, 2, Config{Iterations: 3, Seed: 1}); err == nil {
		t.Fatal("want error when all trials fail")
	}
}

func TestDominates(t *testing.T) {
	if !dominates([]float64{1, 1}, []float64{2, 2}) {
		t.Fatal("strict dominance")
	}
	if !dominates([]float64{1, 2}, []float64{2, 2}) {
		t.Fatal("weak dominance with one strict")
	}
	if dominates([]float64{2, 2}, []float64{2, 2}) {
		t.Fatal("equal points do not dominate")
	}
	if dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Fatal("incomparable points do not dominate")
	}
}

func TestNestedSearchFindsTradeoff(t *testing.T) {
	// Architecture: "size" controls latency (size) and achievable error
	// (1/size); hyperparameter "lr" adds error when away from 0.5 so the
	// inner loop has something to tune.
	archSpace := &Space{Params: []Param{IntParam{Key: "size", Min: 1, Max: 16}}}
	hyperSpace := &Space{Params: []Param{FloatParam{Key: "lr", Min: 0, Max: 1}}}
	evals := 0
	res, err := NestedSearch(archSpace, hyperSpace,
		func(arch, hyper map[string]Value) (float64, float64, error) {
			evals++
			size := float64(arch["size"].Int)
			lr := hyper["lr"].Float
			latency := size
			valErr := 1/size + 5*(lr-0.5)*(lr-0.5)
			return latency, valErr, nil
		},
		NestedConfig{OuterIters: 10, InnerIters: 8, OuterPatience: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelsEvaluated != evals {
		t.Fatalf("accounting mismatch: %d vs %d", res.ModelsEvaluated, evals)
	}
	if len(res.Pareto) == 0 || res.Best == nil {
		t.Fatal("empty nested result")
	}
	// The inner loop must have tuned lr near 0.5 for the best trial.
	if lr := res.Best.BestHyper["lr"].Float; math.Abs(lr-0.5) > 0.25 {
		t.Fatalf("inner loop failed to tune lr: %g", lr)
	}
	// The Pareto front must not contain a dominated pair.
	for _, a := range res.Pareto {
		for _, b := range res.Pareto {
			if a != b && b.LatencySec <= a.LatencySec && b.ValError < a.ValError {
				t.Fatal("dominated point in nested Pareto front")
			}
		}
	}
}

func TestNestedSearchValidation(t *testing.T) {
	s := &Space{Params: []Param{IntParam{Key: "a", Min: 0, Max: 1}}}
	if _, err := NestedSearch(s, s, nil, NestedConfig{}); err == nil {
		t.Fatal("want error for zero iterations")
	}
}
