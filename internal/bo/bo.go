// Package bo implements Bayesian optimization over mixed parameter spaces
// and the paper's nested, two-level, multi-objective search (§V-C): an
// outer loop proposes neural architectures to jointly minimize inference
// latency and validation error (ParEGO-style random scalarization with an
// Expected-Improvement acquisition on a GP surrogate), while an inner loop
// tunes training hyperparameters to minimize validation error alone.
package bo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/gp"
)

// Value is one concrete parameter assignment.
type Value struct {
	Name  string
	Float float64
	Int   int
	IsInt bool
}

// AsFloat returns the numeric value regardless of kind.
func (v Value) AsFloat() float64 {
	if v.IsInt {
		return float64(v.Int)
	}
	return v.Float
}

// Param is one dimension of a search space. Implementations decode a unit
// coordinate u in [0,1] into a concrete value.
type Param interface {
	Name() string
	Decode(u float64) Value
}

// FloatParam is a continuous parameter on [Min, Max], optionally sampled
// on a log scale (learning rates, weight decays).
type FloatParam struct {
	Key      string
	Min, Max float64
	Log      bool
}

// Name returns the parameter key.
func (p FloatParam) Name() string { return p.Key }

// Decode maps u in [0,1] onto [Min, Max].
func (p FloatParam) Decode(u float64) Value {
	u = clamp01(u)
	var v float64
	if p.Log {
		v = math.Exp(math.Log(p.Min) + u*(math.Log(p.Max)-math.Log(p.Min)))
	} else {
		v = p.Min + u*(p.Max-p.Min)
	}
	return Value{Name: p.Key, Float: v}
}

// IntParam is an integer parameter on [Min, Max] inclusive.
type IntParam struct {
	Key      string
	Min, Max int
}

// Name returns the parameter key.
func (p IntParam) Name() string { return p.Key }

// Decode maps u in [0,1] onto {Min..Max}.
func (p IntParam) Decode(u float64) Value {
	u = clamp01(u)
	span := p.Max - p.Min + 1
	v := p.Min + int(u*float64(span))
	if v > p.Max {
		v = p.Max
	}
	return Value{Name: p.Key, Int: v, IsInt: true}
}

// ChoiceParam selects from an explicit list (e.g. hidden sizes 64, 128,
// ..., 4096 in Table IV).
type ChoiceParam struct {
	Key     string
	Choices []int
}

// Name returns the parameter key.
func (p ChoiceParam) Name() string { return p.Key }

// Decode maps u in [0,1] onto the choice list.
func (p ChoiceParam) Decode(u float64) Value {
	u = clamp01(u)
	i := int(u * float64(len(p.Choices)))
	if i >= len(p.Choices) {
		i = len(p.Choices) - 1
	}
	return Value{Name: p.Key, Int: p.Choices[i], IsInt: true}
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u >= 1 {
		return math.Nextafter(1, 0)
	}
	return u
}

// Space is an ordered set of parameters.
type Space struct {
	Params []Param
}

// Decode maps a unit-hypercube point to a named assignment.
func (s *Space) Decode(u []float64) (map[string]Value, error) {
	if len(u) != len(s.Params) {
		return nil, fmt.Errorf("bo: point dimension %d != space dimension %d", len(u), len(s.Params))
	}
	out := make(map[string]Value, len(u))
	for i, p := range s.Params {
		out[p.Name()] = p.Decode(u[i])
	}
	return out, nil
}

// Dim returns the space's dimensionality.
func (s *Space) Dim() int { return len(s.Params) }

// Trial is one evaluated configuration.
type Trial struct {
	U      []float64
	Assign map[string]Value
	Value  float64 // single-objective value (minimized)
	Objs   []float64
	Failed bool
}

// Result is the outcome of an optimization run.
type Result struct {
	Best   *Trial
	Trials []*Trial
	Pareto []*Trial // populated by multi-objective runs
}

// Objective evaluates a configuration; returning an error marks the trial
// failed (it is excluded from the surrogate fit but counts as a trial).
type Objective func(assign map[string]Value) (float64, error)

// MultiObjective evaluates a configuration into k objectives (minimized).
type MultiObjective func(assign map[string]Value) ([]float64, error)

// Config controls an optimization run.
type Config struct {
	Iterations int
	// InitRandom is the number of quasi-random warmup trials before the
	// GP surrogate engages (default: max(4, dim+1)).
	InitRandom int
	// Candidates is the size of the random candidate pool scored by the
	// acquisition function per iteration (default 512).
	Candidates int
	// Patience stops the search after this many consecutive
	// non-improving trials; 0 disables (the paper stops the outer level
	// after five).
	Patience int
	Seed     int64
	// Workers bounds the number of concurrent objective evaluations
	// during the random-initialization phase (those trials are
	// independent: no surrogate has engaged yet); 0 or 1 evaluates
	// serially. Points and trial order are identical for any Workers
	// value — the warmup points are drawn from the same RNG stream
	// before evaluation fans out — so results are too whenever the
	// objective is deterministic; wall-clock measurements inside the
	// objective pick up contention noise. The objective must be safe
	// for concurrent calls when Workers > 1. The GP-guided phase is
	// inherently sequential and always runs serially.
	Workers int
}

func (c *Config) fill(dim int) {
	if c.InitRandom <= 0 {
		c.InitRandom = dim + 1
		if c.InitRandom < 4 {
			c.InitRandom = 4
		}
	}
	if c.Candidates <= 0 {
		c.Candidates = 512
	}
}

// Minimize runs single-objective BO with Expected Improvement. With
// cfg.Workers > 1 the random-initialization trials evaluate
// concurrently; see Config.Workers.
func Minimize(space *Space, obj Objective, cfg Config) (*Result, error) {
	if space.Dim() == 0 {
		return nil, fmt.Errorf("bo: empty search space")
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("bo: iterations must be positive")
	}
	cfg.fill(space.Dim())
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}
	best := math.Inf(1)
	stale := 0

	record := func(tr *Trial, it int) bool {
		res.Trials = append(res.Trials, tr)
		if tr.Value < best {
			best = tr.Value
			res.Best = tr
			stale = 0
			return false
		}
		stale++
		return cfg.Patience > 0 && stale >= cfg.Patience && it >= cfg.InitRandom
	}

	start := 0
	if cfg.Workers > 1 {
		// Draw every warmup point from the RNG first — the exact stream
		// the serial loop would consume — then fan the independent
		// evaluations out and fold the results back in order.
		warm := min(cfg.InitRandom, cfg.Iterations)
		trials := make([]*Trial, warm)
		for i := range trials {
			u := proposePoint(space, nil, cfg, rng, i)
			assign, err := space.Decode(u)
			if err != nil {
				return nil, err
			}
			trials[i] = &Trial{U: u, Assign: assign}
		}
		evalTrials(trials, cfg.Workers, func(tr *Trial) { evalTrial(tr, obj) })
		for it, tr := range trials {
			record(tr, it) // warmup cannot trip patience (it < InitRandom)
		}
		start = warm
	}
	for it := start; it < cfg.Iterations; it++ {
		u := proposePoint(space, res.Trials, cfg, rng, it)
		assign, err := space.Decode(u)
		if err != nil {
			return nil, err
		}
		tr := &Trial{U: u, Assign: assign}
		evalTrial(tr, obj)
		if record(tr, it) {
			break
		}
	}
	if res.Best == nil {
		return nil, fmt.Errorf("bo: all %d trials failed", len(res.Trials))
	}
	return res, nil
}

// evalTrial runs the objective for one trial, mapping errors to a failed
// trial at +Inf.
func evalTrial(tr *Trial, obj Objective) {
	v, err := obj(tr.Assign)
	if err != nil {
		tr.Failed = true
		tr.Value = math.Inf(1)
		return
	}
	tr.Value = v
}

// evalTrials evaluates independent trials with up to workers concurrent
// eval calls, writing each result into its own Trial.
func evalTrials(trials []*Trial, workers int, eval func(*Trial)) {
	if workers > len(trials) {
		workers = len(trials)
	}
	if workers < 1 {
		return
	}
	var wg sync.WaitGroup
	next := make(chan *Trial)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for tr := range next {
				eval(tr)
			}
		}()
	}
	for _, tr := range trials {
		next <- tr
	}
	close(next)
	wg.Wait()
}

// proposePoint returns the next point: random during warmup, otherwise the
// best-EI candidate under a GP fitted to past successful trials.
func proposePoint(space *Space, trials []*Trial, cfg Config, rng *rand.Rand, it int) []float64 {
	dim := space.Dim()
	randPoint := func() []float64 {
		u := make([]float64, dim)
		for i := range u {
			u[i] = rng.Float64()
		}
		return u
	}
	if it < cfg.InitRandom {
		return randPoint()
	}
	var xs [][]float64
	var ys []float64
	best := math.Inf(1)
	for _, tr := range trials {
		if tr.Failed {
			continue
		}
		xs = append(xs, tr.U)
		ys = append(ys, tr.Value)
		if tr.Value < best {
			best = tr.Value
		}
	}
	if len(xs) < 2 {
		return randPoint()
	}
	model, err := gp.FitAuto(xs, ys)
	if err != nil {
		return randPoint()
	}
	var bestU []float64
	bestEI := math.Inf(-1)
	for c := 0; c < cfg.Candidates; c++ {
		u := randPoint()
		mu, v := model.Predict(u)
		ei := expectedImprovement(mu, v, best)
		if ei > bestEI {
			bestEI = ei
			bestU = u
		}
	}
	if bestU == nil {
		return randPoint()
	}
	return bestU
}

// expectedImprovement for minimization: E[max(best - Y, 0)].
func expectedImprovement(mu, variance, best float64) float64 {
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		if mu < best {
			return best - mu
		}
		return 0
	}
	z := (best - mu) / sd
	return (best-mu)*stdNormCDF(z) + sd*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// MinimizeMulti runs multi-objective BO via ParEGO: each iteration draws a
// random weight vector, scalarizes the (normalized) objectives with the
// augmented Chebyshev function, and performs one EI step on the
// scalarization. The Pareto front of all successful trials is returned.
// With cfg.Workers > 1 the random-initialization trials evaluate
// concurrently; see Config.Workers.
func MinimizeMulti(space *Space, obj MultiObjective, nObjs int, cfg Config) (*Result, error) {
	if nObjs < 2 {
		return nil, fmt.Errorf("bo: multi-objective needs >= 2 objectives, got %d", nObjs)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("bo: iterations must be positive")
	}
	cfg.fill(space.Dim())
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}
	stale := 0

	evalMulti := func(tr *Trial) {
		objs, err := obj(tr.Assign)
		if err != nil || len(objs) != nObjs {
			tr.Failed = true
			tr.Objs = make([]float64, nObjs)
			for i := range tr.Objs {
				tr.Objs[i] = math.Inf(1)
			}
			return
		}
		tr.Objs = objs
	}
	record := func(tr *Trial, it int) bool {
		res.Trials = append(res.Trials, tr)
		before := len(res.Pareto)
		res.Pareto = paretoFront(res.Trials)
		if len(res.Pareto) != before || contains(res.Pareto, tr) {
			stale = 0
			return false
		}
		stale++
		return cfg.Patience > 0 && stale >= cfg.Patience && it >= cfg.InitRandom
	}

	start := 0
	if cfg.Workers > 1 {
		// Consume the RNG exactly as the serial warmup would — the
		// scalarization weights are drawn (and discarded: warmup
		// proposals ignore them) before each point — then fan the
		// independent evaluations out and fold results back in order.
		warm := min(cfg.InitRandom, cfg.Iterations)
		trials := make([]*Trial, warm)
		for i := range trials {
			drawChebyshevWeights(rng, nObjs)
			u := proposeScalarized(space, nil, nil, cfg, rng, i)
			assign, err := space.Decode(u)
			if err != nil {
				return nil, err
			}
			trials[i] = &Trial{U: u, Assign: assign}
		}
		evalTrials(trials, cfg.Workers, evalMulti)
		for it, tr := range trials {
			record(tr, it) // warmup cannot trip patience (it < InitRandom)
		}
		start = warm
	}
	for it := start; it < cfg.Iterations; it++ {
		w := drawChebyshevWeights(rng, nObjs)
		scalar := scalarizeTrials(res.Trials, w, nObjs)
		u := proposeScalarized(space, res.Trials, scalar, cfg, rng, it)
		assign, err := space.Decode(u)
		if err != nil {
			return nil, err
		}
		tr := &Trial{U: u, Assign: assign}
		evalMulti(tr)
		if record(tr, it) {
			break
		}
	}
	if len(res.Pareto) == 0 {
		return nil, fmt.Errorf("bo: all %d trials failed", len(res.Trials))
	}
	// Best = knee point: minimal normalized sum of objectives.
	res.Best = kneePoint(res.Pareto)
	return res, nil
}

// drawChebyshevWeights draws one ParEGO iteration's random
// scalarization weight vector (normalized exponential draws). It is the
// single source of the per-iteration RNG consumption: the parallel
// warmup calls it purely to keep the stream aligned with the serial
// loop, so any change to the draw stays consistent across both paths.
func drawChebyshevWeights(rng *rand.Rand, nObjs int) []float64 {
	w := make([]float64, nObjs)
	var sum float64
	for i := range w {
		w[i] = -math.Log(1 - rng.Float64())
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func contains(ts []*Trial, t *Trial) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// scalarizeTrials computes augmented-Chebyshev values of past trials under
// weights w, normalizing each objective to [0,1] over the history.
func scalarizeTrials(trials []*Trial, w []float64, nObjs int) []float64 {
	lo := make([]float64, nObjs)
	hi := make([]float64, nObjs)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, tr := range trials {
		if tr.Failed {
			continue
		}
		for i, v := range tr.Objs {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	out := make([]float64, len(trials))
	for ti, tr := range trials {
		if tr.Failed {
			out[ti] = math.Inf(1)
			continue
		}
		maxTerm := math.Inf(-1)
		var sumTerm float64
		for i, v := range tr.Objs {
			span := hi[i] - lo[i]
			if span < 1e-12 {
				span = 1
			}
			nv := (v - lo[i]) / span
			t := w[i] * nv
			if t > maxTerm {
				maxTerm = t
			}
			sumTerm += t
		}
		out[ti] = maxTerm + 0.05*sumTerm
	}
	return out
}

func proposeScalarized(space *Space, trials []*Trial, scalar []float64, cfg Config, rng *rand.Rand, it int) []float64 {
	dim := space.Dim()
	randPoint := func() []float64 {
		u := make([]float64, dim)
		for i := range u {
			u[i] = rng.Float64()
		}
		return u
	}
	if it < cfg.InitRandom {
		return randPoint()
	}
	var xs [][]float64
	var ys []float64
	best := math.Inf(1)
	for i, tr := range trials {
		if tr.Failed || math.IsInf(scalar[i], 1) {
			continue
		}
		xs = append(xs, tr.U)
		ys = append(ys, scalar[i])
		if scalar[i] < best {
			best = scalar[i]
		}
	}
	if len(xs) < 2 {
		return randPoint()
	}
	model, err := gp.FitAuto(xs, ys)
	if err != nil {
		return randPoint()
	}
	var bestU []float64
	bestEI := math.Inf(-1)
	for c := 0; c < cfg.Candidates; c++ {
		u := randPoint()
		mu, v := model.Predict(u)
		if ei := expectedImprovement(mu, v, best); ei > bestEI {
			bestEI = ei
			bestU = u
		}
	}
	if bestU == nil {
		return randPoint()
	}
	return bestU
}

// paretoFront returns the non-dominated successful trials (minimization).
func paretoFront(trials []*Trial) []*Trial {
	var front []*Trial
	for _, a := range trials {
		if a.Failed {
			continue
		}
		dominated := false
		for _, b := range trials {
			if b == a || b.Failed {
				continue
			}
			if dominates(b.Objs, a.Objs) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Objs[0] < front[j].Objs[0] })
	return front
}

// dominates reports whether a dominates b: <= in all objectives and < in
// at least one.
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// kneePoint returns the Pareto member with the smallest normalized
// objective sum.
func kneePoint(front []*Trial) *Trial {
	if len(front) == 1 {
		return front[0]
	}
	n := len(front[0].Objs)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, tr := range front {
		for i, v := range tr.Objs {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	var best *Trial
	bestSum := math.Inf(1)
	for _, tr := range front {
		var s float64
		for i, v := range tr.Objs {
			span := hi[i] - lo[i]
			if span < 1e-12 {
				span = 1
			}
			s += (v - lo[i]) / span
		}
		if s < bestSum {
			bestSum = s
			best = tr
		}
	}
	return best
}
