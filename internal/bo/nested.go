package bo

import (
	"fmt"
	"math"
	"sync"
)

// NestedConfig controls the two-level search of paper §V-C: the outer
// level proposes architectures for OuterIters iterations with early
// stopping after OuterPatience non-improving trials (the paper uses 100
// and 5); the inner level tunes hyperparameters for InnerIters iterations
// (the paper uses 30).
type NestedConfig struct {
	OuterIters    int
	InnerIters    int
	OuterPatience int
	Seed          int64
	// InnerWorkers is passed to every inner hyperparameter search as
	// Config.Workers: its random-initialization trials (independent
	// training runs) evaluate concurrently, amortizing the Table V
	// campaign across cores. The eval callback must be safe for
	// concurrent calls when InnerWorkers > 1. The hyperparameter points
	// and trial order are identical for any value, but wall-clock
	// measurements inside eval (latency objectives) pick up contention
	// noise from concurrent training runs — use 1 when latency numbers
	// must be reproducible.
	InnerWorkers int
}

// NestedEval trains and scores one (architecture, hyperparameter)
// configuration, returning the model's inference latency (seconds) and
// validation error. The architecture alone determines latency (the
// outer level records the minimum observed across the inner trials, an
// order-independent aggregate); the inner level minimizes validation
// error.
type NestedEval func(arch, hyper map[string]Value) (latencySec, valError float64, err error)

// NestedTrial is one outer-level result: an architecture with its best
// hyperparameters.
type NestedTrial struct {
	Arch       map[string]Value
	BestHyper  map[string]Value
	LatencySec float64
	ValError   float64
	InnerRuns  int
}

// NestedResult is the outcome of a nested search.
type NestedResult struct {
	Trials []*NestedTrial
	Pareto []*NestedTrial
	// Best is the knee point of the Pareto front.
	Best *NestedTrial
	// ModelsEvaluated counts every inner-level training run, matching the
	// paper's "5130 models explored" accounting.
	ModelsEvaluated int
}

// NestedSearch runs the outer multi-objective architecture search with an
// inner hyperparameter search per architecture.
func NestedSearch(archSpace, hyperSpace *Space, eval NestedEval, cfg NestedConfig) (*NestedResult, error) {
	if cfg.OuterIters <= 0 || cfg.InnerIters <= 0 {
		return nil, fmt.Errorf("bo: nested search wants positive iteration counts")
	}
	res := &NestedResult{}
	// Guards ModelsEvaluated and the latency capture: the inner search's
	// warmup trials run concurrently when InnerWorkers > 1.
	var mu sync.Mutex

	outerObj := func(arch map[string]Value) ([]float64, error) {
		lat := math.Inf(1)
		innerSeed := cfg.Seed + int64(res.ModelsEvaluated)
		inner, err := Minimize(hyperSpace, func(hyper map[string]Value) (float64, error) {
			mu.Lock()
			res.ModelsEvaluated++
			mu.Unlock()
			l, v, err := eval(arch, hyper)
			if err != nil {
				return 0, err
			}
			// Keep the minimum observed latency: order-independent, so
			// concurrent warmup completion order cannot change it, and
			// the least-contended measurement of an architecture-
			// determined quantity.
			mu.Lock()
			if l < lat {
				lat = l
			}
			mu.Unlock()
			return v, nil
		}, Config{Iterations: cfg.InnerIters, Seed: innerSeed, Workers: cfg.InnerWorkers})
		if err != nil {
			return nil, err
		}
		nt := &NestedTrial{
			Arch:       arch,
			BestHyper:  inner.Best.Assign,
			LatencySec: lat,
			ValError:   inner.Best.Value,
			InnerRuns:  len(inner.Trials),
		}
		res.Trials = append(res.Trials, nt)
		return []float64{lat, inner.Best.Value}, nil
	}

	outer, err := MinimizeMulti(archSpace, outerObj, 2, Config{
		Iterations: cfg.OuterIters,
		Patience:   cfg.OuterPatience,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Map the outer Pareto front back to nested trials by objective match.
	res.Pareto = nestedPareto(res.Trials)
	res.Best = nestedKnee(res.Pareto)
	_ = outer
	if res.Best == nil {
		return nil, fmt.Errorf("bo: nested search produced no successful trials")
	}
	return res, nil
}

func nestedPareto(trials []*NestedTrial) []*NestedTrial {
	var front []*NestedTrial
	for _, a := range trials {
		dominated := false
		for _, b := range trials {
			if a == b {
				continue
			}
			if (b.LatencySec <= a.LatencySec && b.ValError <= a.ValError) &&
				(b.LatencySec < a.LatencySec || b.ValError < a.ValError) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	return front
}

func nestedKnee(front []*NestedTrial) *NestedTrial {
	if len(front) == 0 {
		return nil
	}
	loL, hiL := math.Inf(1), math.Inf(-1)
	loE, hiE := math.Inf(1), math.Inf(-1)
	for _, t := range front {
		loL, hiL = math.Min(loL, t.LatencySec), math.Max(hiL, t.LatencySec)
		loE, hiE = math.Min(loE, t.ValError), math.Max(hiE, t.ValError)
	}
	spanL, spanE := hiL-loL, hiE-loE
	if spanL < 1e-12 {
		spanL = 1
	}
	if spanE < 1e-12 {
		spanE = 1
	}
	var best *NestedTrial
	bestS := math.Inf(1)
	for _, t := range front {
		s := (t.LatencySec-loL)/spanL + (t.ValError-loE)/spanE
		if s < bestS {
			bestS = s
			best = t
		}
	}
	return best
}
