package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestGatherIntoMatchesGather checks the arena fill against the
// allocating Gather path over random index sets, for both flat and
// channeled sample shapes.
func TestGatherIntoMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	flat, err := NewDataset(randTensor(rng, 20, 5), randTensor(rng, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	chan3, err := NewDataset(randTensor(rng, 12, 2, 6), randTensor(rng, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []*Dataset{flat, chan3} {
		for trial := 0; trial < 5; trial++ {
			k := 1 + rng.Intn(ds.Len())
			idx := make([]int, k)
			for i := range idx {
				idx[i] = rng.Intn(ds.Len())
			}
			want, err := ds.Gather(idx)
			if err != nil {
				t.Fatal(err)
			}
			var sx, sy scratch
			bx := sx.batchOf(ds.X, k)
			by := sy.batchOf(ds.Y, k)
			if err := ds.GatherInto(bx, by, idx); err != nil {
				t.Fatal(err)
			}
			gx, wx := bx.Data(), want.X.Data()
			for i := range wx {
				if gx[i] != wx[i] {
					t.Fatalf("GatherInto X differs at %d: %g vs %g", i, gx[i], wx[i])
				}
			}
			gy, wy := by.Data(), want.Y.Data()
			for i := range wy {
				if gy[i] != wy[i] {
					t.Fatalf("GatherInto Y differs at %d: %g vs %g", i, gy[i], wy[i])
				}
			}
		}
	}
}

// TestGatherIntoFromSplitView checks gathering out of a Narrow view (the
// shape Fit actually produces: a contiguous dim-0 slice with an offset).
func TestGatherIntoFromSplitView(t *testing.T) {
	x := tensor.New(10, 2)
	y := tensor.New(10, 1)
	for i := 0; i < 10; i++ {
		x.Set(float64(i), i, 0)
		y.Set(float64(-i), i, 0)
	}
	ds, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	_, back, err := ds.Split(0.5) // samples 5..9
	if err != nil {
		t.Fatal(err)
	}
	var sx, sy scratch
	bx := sx.batchOf(back.X, 2)
	by := sy.batchOf(back.Y, 2)
	if err := back.GatherInto(bx, by, []int{4, 0}); err != nil {
		t.Fatal(err)
	}
	if bx.At(0, 0) != 9 || bx.At(1, 0) != 5 {
		t.Fatalf("gathered X = %v, want rows 9 and 5", bx)
	}
	if by.At(0, 0) != -9 || by.At(1, 0) != -5 {
		t.Fatalf("gathered Y = %v, want rows -9 and -5", by)
	}
}

func TestGatherIntoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ds, err := NewDataset(randTensor(rng, 8, 3), randTensor(rng, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.GatherInto(tensor.New(2, 3), tensor.New(2, 1), []int{0, 99}); err == nil {
		t.Fatal("want out-of-range index error")
	}
	if err := ds.GatherInto(tensor.New(2, 4), tensor.New(2, 1), []int{0, 1}); err == nil {
		t.Fatal("want X sample-shape mismatch error")
	}
	if err := ds.GatherInto(tensor.New(3, 3), tensor.New(2, 1), []int{0, 1}); err == nil {
		t.Fatal("want X row-count mismatch error")
	}
	if err := ds.GatherInto(tensor.New(2, 3), tensor.New(2, 2), []int{0, 1}); err == nil {
		t.Fatal("want Y sample-shape mismatch error")
	}
	if err := ds.GatherInto(nil, tensor.New(2, 1), []int{0, 1}); err == nil {
		t.Fatal("want nil dst error")
	}
	bad, err := tensor.New(3, 2).Transpose(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.GatherInto(bad, tensor.New(2, 1), []int{0, 1}); err == nil {
		t.Fatal("want non-contiguous dst error")
	}
}

// TestTrainStepZeroAllocSteadyState is the training engine's headline
// contract: once the arenas are warm, a full minibatch step — gather,
// zero-grad, forward, loss, loss gradient, backward, optimizer — does
// zero heap allocation for a Dense network under both optimizers.
func TestTrainStepZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	rng := rand.New(rand.NewSource(55))
	ds, err := NewDataset(randTensor(rng, 64, 6), randTensor(rng, 64, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, optName := range []string{"adam", "sgd"} {
		net := NewNetwork(5)
		net.Add(net.NewDense(6, 16), NewActivation(ActTanh), net.NewDense(16, 2))
		var opt Optimizer
		if optName == "adam" {
			opt = NewAdam(1e-3, 1e-4)
		} else {
			opt = NewSGD(1e-3, 0.9, 1e-4)
		}
		params := net.Params()
		var gi lossGradInto = MSE{}
		var loss Loss = MSE{}
		var mbX, mbY, gradBuf scratch
		idx := rand.New(rand.NewSource(3)).Perm(64)[:16]
		step := func() {
			bx := mbX.batchOf(ds.X, len(idx))
			by := mbY.batchOf(ds.Y, len(idx))
			if err := ds.GatherInto(bx, by, idx); err != nil {
				t.Fatal(err)
			}
			for _, p := range params {
				p.ZeroGrad()
			}
			pred, err := net.ForwardTrain(bx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := loss.Value(pred, by); err != nil {
				t.Fatal(err)
			}
			grad := gradBuf.like(pred)
			if err := gi.GradInto(grad, pred, by); err != nil {
				t.Fatal(err)
			}
			if err := net.Backward(grad); err != nil {
				t.Fatal(err)
			}
			if err := opt.Step(params); err != nil {
				t.Fatal(err)
			}
		}
		step() // warm the arenas and optimizer slots
		if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
			t.Errorf("%s: steady-state training step allocates %.1f objects/step, want 0", optName, allocs)
		}
	}
}

// TestFitNonContiguousDatasetFallsBack: a Dataset built literally
// around a strided view (bypassing NewDataset's Contiguous call) must
// train through the allocating Gather fallback, not error out of the
// arena path.
func TestFitNonContiguousDatasetFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	xt := randTensor(rng, 2, 24) // [features, samples]
	x, err := xt.Transpose(0, 1) // [24, 2], non-contiguous
	if err != nil {
		t.Fatal(err)
	}
	train := &Dataset{X: x, Y: randTensor(rng, 24, 1)}
	val, err := NewDataset(randTensor(rng, 8, 2), randTensor(rng, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(1)
	net.Add(net.NewDense(2, 1))
	if _, err := net.Fit(train, val, TrainConfig{Epochs: 2, BatchSize: 8, LR: 1e-2, Seed: 1}); err != nil {
		t.Fatalf("Fit on non-contiguous dataset: %v", err)
	}
}

// TestFitValFracSemantics pins the documented ValFrac meaning: the
// fraction held out for validation. A recording loss observes the train
// batch and validation set sizes Fit actually uses.
func TestFitValFracSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ds, err := NewDataset(randTensor(rng, 10, 2), randTensor(rng, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingLoss{}
	net := NewNetwork(1)
	net.Add(net.NewDense(2, 1))
	if _, err := net.Fit(ds, nil, TrainConfig{
		Epochs: 1, BatchSize: 100, LR: 1e-3, Loss: rec, ValFrac: 0.3,
	}); err != nil {
		t.Fatal(err)
	}
	// 10 samples at ValFrac 0.3: 7 train (one batch), 3 validation.
	if len(rec.sizes) != 2 || rec.sizes[0] != 7 || rec.sizes[1] != 3 {
		t.Fatalf("observed batch sizes %v, want [7 3] (70%% train, 30%% val)", rec.sizes)
	}
	if _, err := net.Fit(ds, nil, TrainConfig{Epochs: 1, ValFrac: 1.5}); err == nil {
		t.Fatal("want error for ValFrac outside (0,1)")
	}
	if _, err := net.Fit(ds, nil, TrainConfig{Epochs: 1, ValFrac: -0.2}); err == nil {
		t.Fatal("want error for negative ValFrac")
	}
}

// recordingLoss is an MSE that records the batch size of every Value
// call; it deliberately does not implement lossGradInto, covering Fit's
// allocating fallback.
type recordingLoss struct {
	sizes []int
}

func (r *recordingLoss) Name() string { return "recording-mse" }

func (r *recordingLoss) Value(pred, target *tensor.Tensor) (float64, error) {
	r.sizes = append(r.sizes, pred.Dim(0))
	return MSE{}.Value(pred, target)
}

func (r *recordingLoss) Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error) {
	return MSE{}.Grad(pred, target)
}
