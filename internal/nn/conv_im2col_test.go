package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// conv1dRefForward computes the valid cross-correlation with naive
// direct loops — the pre-im2col kernel the blocked path must reproduce
// (within FP reassociation).
func conv1dRefForward(c *Conv1D, x *tensor.Tensor) *tensor.Tensor {
	b, l := x.Dim(0), x.Dim(2)
	lOut := (l-c.K)/c.Stride + 1
	out := tensor.New(b, c.OutC, lOut)
	for n := 0; n < b; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			for p := 0; p < lOut; p++ {
				acc := c.Bias.W.Data()[oc]
				for ic := 0; ic < c.InC; ic++ {
					for t := 0; t < c.K; t++ {
						acc += x.At(n, ic, p*c.Stride+t) * c.Weight.W.At(oc, ic, t)
					}
				}
				out.Set(acc, n, oc, p)
			}
		}
	}
	return out
}

// conv1dRefBackward accumulates dW/dB and returns dX with naive loops.
func conv1dRefBackward(c *Conv1D, x, g *tensor.Tensor) (dW, dB, dx *tensor.Tensor) {
	b, l := x.Dim(0), x.Dim(2)
	lOut := g.Dim(2)
	dW = tensor.New(c.OutC, c.InC, c.K)
	dB = tensor.New(c.OutC)
	dx = tensor.New(b, c.InC, l)
	for n := 0; n < b; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			for p := 0; p < lOut; p++ {
				gv := g.At(n, oc, p)
				dB.Set(dB.At(oc)+gv, oc)
				for ic := 0; ic < c.InC; ic++ {
					for t := 0; t < c.K; t++ {
						pos := p*c.Stride + t
						dW.Set(dW.At(oc, ic, t)+gv*x.At(n, ic, pos), oc, ic, t)
						dx.Set(dx.At(n, ic, pos)+gv*c.Weight.W.At(oc, ic, t), n, ic, pos)
					}
				}
			}
		}
	}
	return dW, dB, dx
}

// TestConv1DIm2colMatchesReference sweeps random shapes (channels,
// kernels, strides, batch sizes) and checks the im2col forward and
// backward against the naive direct convolution.
func TestConv1DIm2colMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 25; trial++ {
		inC := 1 + rng.Intn(4)
		outC := 1 + rng.Intn(5)
		k := 1 + rng.Intn(4)
		s := 1 + rng.Intn(3)
		l := k + rng.Intn(12)
		b := 1 + rng.Intn(6)

		net := NewNetwork(int64(trial))
		c := net.NewConv1D(inC, outC, k, s)
		x := randTensor(rng, b, inC, l)

		// Forward: training path (arena) and inference path (pool) must
		// both match the reference.
		for _, train := range []bool{true, false} {
			got, err := c.Forward(x, train)
			if err != nil {
				t.Fatal(err)
			}
			want := conv1dRefForward(c, x)
			gd, wd := got.Data(), want.Data()
			for i := range wd {
				if math.Abs(gd[i]-wd[i]) > 1e-9*(1+math.Abs(wd[i])) {
					t.Fatalf("trial %d train=%v: forward[%d] = %g, want %g", trial, train, i, gd[i], wd[i])
				}
			}
		}

		// Backward (the last Forward above ran train=false; redo train).
		if _, err := c.Forward(x, true); err != nil {
			t.Fatal(err)
		}
		lOut := (l-k)/s + 1
		g := randTensor(rng, b, outC, lOut)
		c.Weight.ZeroGrad()
		c.Bias.ZeroGrad()
		dx, err := c.Backward(g)
		if err != nil {
			t.Fatal(err)
		}
		wantW, wantB, wantX := conv1dRefBackward(c, x, g)
		checkClose(t, trial, "dW", c.Weight.Grad.Data(), wantW.Data())
		checkClose(t, trial, "dB", c.Bias.Grad.Data(), wantB.Data())
		checkClose(t, trial, "dX", dx.Data(), wantX.Data())
	}
}

func checkClose(t *testing.T, trial int, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("trial %d: %s[%d] = %g, want %g", trial, name, i, got[i], want[i])
		}
	}
}

// TestConv1DBackwardAccumulates checks that a second backward pass adds
// into the existing parameter gradients (the Param contract the im2col
// staging buffer must preserve).
func TestConv1DBackwardAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	net := NewNetwork(3)
	c := net.NewConv1D(2, 3, 3, 1)
	x := randTensor(rng, 2, 2, 7)
	g := randTensor(rng, 2, 3, 5)

	c.Weight.ZeroGrad()
	c.Bias.ZeroGrad()
	if _, err := c.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Backward(g); err != nil {
		t.Fatal(err)
	}
	once := append([]float64(nil), c.Weight.Grad.Data()...)

	if _, err := c.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Backward(g); err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Weight.Grad.Data() {
		if math.Abs(v-2*once[i]) > 1e-12*(1+math.Abs(2*once[i])) {
			t.Fatalf("dW[%d] = %g after two passes, want %g", i, v, 2*once[i])
		}
	}
}

// TestConv1DConcurrentInference: a never-trained Conv1D shared by
// concurrent inference callers (regions sharing a cached model) must be
// race-free — including the lazy weight-matrix view build — and every
// caller must see identical outputs. Run under -race in CI.
func TestConv1DConcurrentInference(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	net := NewNetwork(7)
	c := net.NewConv1D(2, 3, 3, 1)
	x := randTensor(rng, 3, 2, 10)
	want, err := c.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh layer so the concurrent callers race on the cold wMat build.
	c2 := net.NewConv1D(2, 3, 3, 1)
	c2.Weight.W.CopyFrom(c.Weight.W)
	c2.Bias.W.CopyFrom(c.Bias.W)
	const callers = 4
	outs := make([]*tensor.Tensor, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = c2.Forward(x, false)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		od, wd := outs[i].Data(), want.Data()
		for j := range wd {
			if od[j] != wd[j] {
				t.Fatalf("caller %d output differs at %d", i, j)
			}
		}
	}
}

// TestConv1DTrainInferConsistency: the training (arena) and inference
// (pooled) forward paths share the same kernels, so their outputs must
// be bit-identical.
func TestConv1DTrainInferConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	net := NewNetwork(5)
	c := net.NewConv1D(3, 4, 2, 2)
	x := randTensor(rng, 4, 3, 9)
	yt, err := c.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	yi, err := c.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	td, id := yt.Data(), yi.Data()
	for i := range td {
		if td[i] != id[i] {
			t.Fatalf("train/infer forward differ at %d: %g vs %g", i, td[i], id[i])
		}
	}
}
