package nn

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Conv1D is a 1-D convolution over [batch, InC, L] inputs producing
// [batch, OutC, L'] with L' = (L-K)/Stride + 1 (valid padding).
//
// Both passes run as im2col + blocked MatMul: the input is unrolled into
// a [batch*L', InC*K] patch matrix once, after which forward is one
// patches@Wᵀ product, and backward is two more (dW = dYᵀ@patches,
// dPatches = dY@W) plus a col2im scatter — every O(n·k) loop rides the
// cache-aware parallel kernels in internal/tensor.
type Conv1D struct {
	InC, OutC, K, Stride int
	Weight               *Param // [OutC, InC, K]
	Bias                 *Param // [OutC]

	lastX *tensor.Tensor
	// wMat lazily caches the [OutC, InC*K] view of Weight.W (whose
	// backing storage never changes after construction). Atomic because
	// concurrent inference callers may race to build it; building twice
	// is harmless (idempotent views of the same storage), and the warm
	// path is a bare load so it costs no allocation.
	wMat atomic.Pointer[tensor.Tensor]
	// Training-path arenas, reused across steps: the im2col patch
	// matrix, the [batch*L', OutC] pre-transpose output, the forward
	// output, the transposed incoming gradient, the patch gradient, the
	// weight-gradient staging and the input gradient.
	colBuf  scratch
	out2Buf scratch
	fwdOut  scratch
	gtBuf   scratch
	dcolBuf scratch
	dwBuf   scratch
	dxBuf   scratch
	// pool recycles inference-path patch/output buffers so concurrent
	// Forward callers (regions sharing a cached model) never contend on
	// the training arenas.
	pool sync.Pool
}

// convScratch is one inference pass's im2col buffers.
type convScratch struct {
	col, out2 []float64
}

// convParFLOPs is the multiply-accumulate count below which conv
// im2col/col2im/transpose passes run serially on the calling goroutine.
const convParFLOPs = 1 << 18

// weightMat returns Weight.W viewed as [OutC, InC*K].
func (c *Conv1D) weightMat() *tensor.Tensor {
	if m := c.wMat.Load(); m != nil {
		return m
	}
	m, err := c.Weight.W.Reshape(c.OutC, c.InC*c.K)
	if err != nil {
		panic("nn: conv1d weight reshape: " + err.Error()) // cannot happen: contiguous [OutC,InC,K]
	}
	c.wMat.Store(m)
	return m
}

// NewConv1D constructs a 1-D convolution with He-uniform init.
func (n *Network) NewConv1D(inC, outC, k, stride int) *Conv1D {
	c := &Conv1D{InC: inC, OutC: outC, K: k, Stride: stride,
		Weight: newParam("weight", outC, inC, k),
		Bias:   newParam("bias", outC),
	}
	initUniform(n.rng, c.Weight.W, kaimingBound(inC*k))
	initUniform(n.rng, c.Bias.W, kaimingBound(inC*k))
	return c
}

// Kind identifies the layer.
func (c *Conv1D) Kind() string {
	return fmt.Sprintf("Conv1D(%d->%d,k=%d,s=%d)", c.InC, c.OutC, c.K, c.Stride)
}

// Params returns the kernel and bias.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutShape maps [InC, L] to [OutC, L'].
func (c *Conv1D) OutShape(in []int) ([]int, error) {
	if len(in) != 2 || in[0] != c.InC {
		return nil, fmt.Errorf("conv1d wants input shape [%d, L], got %v", c.InC, in)
	}
	if c.Stride <= 0 || c.K <= 0 {
		return nil, fmt.Errorf("conv1d has non-positive kernel/stride (%d/%d)", c.K, c.Stride)
	}
	l := in[1]
	if l < c.K {
		return nil, fmt.Errorf("conv1d input length %d < kernel %d", l, c.K)
	}
	return []int{c.OutC, (l-c.K)/c.Stride + 1}, nil
}

// im2col1d unrolls x ([b, inC, l] flat) into col ([b*lOut, inC*k] flat):
// col[(n*lOut+p), ic*k+t] = x[n, ic, p*s+t]. Each patch row is assembled
// from contiguous copies.
func im2col1d(col, xd []float64, b, inC, l, lOut, k, s int, par bool) {
	cols := inC * k
	body := func(lo, hi int) {
		for n := lo; n < hi; n++ {
			xn := xd[n*inC*l : (n+1)*inC*l]
			for p := 0; p < lOut; p++ {
				row := col[(n*lOut+p)*cols : (n*lOut+p+1)*cols]
				base := p * s
				for ic := 0; ic < inC; ic++ {
					copy(row[ic*k:(ic+1)*k], xn[ic*l+base:ic*l+base+k])
				}
			}
		}
	}
	if par {
		parallel.ForRange(b, body)
	} else {
		body(0, b)
	}
}

// Forward computes the valid cross-correlation as im2col + patches@Wᵀ
// through the blocked MatMul kernel. The training pass stages through
// layer-owned arenas (and caches the patch matrix for Backward);
// inference recycles pooled buffers so shared networks stay safe under
// concurrent callers.
func (c *Conv1D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 3 || x.Dim(1) != c.InC {
		return nil, fmt.Errorf("conv1d wants [batch, %d, L], got %v", c.InC, x.Shape())
	}
	sample, err := c.OutShape([]int{x.Dim(1), x.Dim(2)})
	if err != nil {
		return nil, err
	}
	x = x.Contiguous()
	b, l, lOut := x.Dim(0), x.Dim(2), sample[1]
	inC, outC, k, s := c.InC, c.OutC, c.K, c.Stride
	rows, cols := b*lOut, inC*k
	par := b*outC*lOut*inC*k >= convParFLOPs

	var col, out2, out *tensor.Tensor
	var ps *convScratch
	if train {
		c.lastX = x
		col = c.colBuf.get2(rows, cols)
		out2 = c.out2Buf.get2(rows, outC)
		out = c.fwdOut.get3(b, outC, lOut)
	} else {
		ps, _ = c.pool.Get().(*convScratch)
		if ps == nil {
			ps = &convScratch{}
		}
		if cap(ps.col) < rows*cols {
			ps.col = make([]float64, rows*cols)
		}
		if cap(ps.out2) < rows*outC {
			ps.out2 = make([]float64, rows*outC)
		}
		if col, err = tensor.Wrap(ps.col[:rows*cols], rows, cols); err != nil {
			return nil, err
		}
		if out2, err = tensor.Wrap(ps.out2[:rows*outC], rows, outC); err != nil {
			return nil, err
		}
		out = tensor.New(b, outC, lOut)
	}

	im2col1d(col.Data(), x.Data(), b, inC, l, lOut, k, s, par)
	if err := tensor.MatMulTransBInto(out2, col, c.weightMat()); err != nil {
		return nil, err
	}
	// Transpose [b*lOut, outC] into [b, outC, lOut] and add the bias.
	o2d, od, bd := out2.Data(), out.Data(), c.Bias.W.Data()
	scatter := func(lo, hi int) {
		for n := lo; n < hi; n++ {
			o2n := o2d[n*lOut*outC : (n+1)*lOut*outC]
			on := od[n*outC*lOut : (n+1)*outC*lOut]
			for oc := 0; oc < outC; oc++ {
				bv := bd[oc]
				orow := on[oc*lOut : (oc+1)*lOut]
				for p := range orow {
					orow[p] = o2n[p*outC+oc] + bv
				}
			}
		}
	}
	if par {
		parallel.ForRange(b, scatter)
	} else {
		scatter(0, b)
	}
	if ps != nil {
		c.pool.Put(ps)
	}
	return out, nil
}

// Backward computes input gradients and accumulates kernel/bias
// gradients, reusing the patch matrix cached by the training forward:
// dW = dYᵀ@patches (MatMulTransAInto), dPatches = dY@W (MatMulInto), and
// a col2im scatter-add parallelized over the batch (samples are
// independent, so there is no accumulation race).
func (c *Conv1D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("conv1d backward without cached forward")
	}
	x := c.lastX
	g := grad.Contiguous()
	b, l := x.Dim(0), x.Dim(2)
	lOut := g.Dim(2)
	if g.Rank() != 3 || g.Dim(0) != b || g.Dim(1) != c.OutC {
		return nil, fmt.Errorf("conv1d backward grad shape %v", g.Shape())
	}
	gd := g.Data()
	dB := c.Bias.Grad.Data()
	inC, outC, k, s := c.InC, c.OutC, c.K, c.Stride
	rows, cols := b*lOut, inC*k
	par := b*outC*lOut*inC*k >= convParFLOPs

	// dB plus the [b, outC, lOut] -> [b*lOut, outC] gradient transpose
	// feeding the matrix products.
	gt := c.gtBuf.get2(rows, outC)
	gtd := gt.Data()
	for n := 0; n < b; n++ {
		gn := gd[n*outC*lOut : (n+1)*outC*lOut]
		for oc := 0; oc < outC; oc++ {
			grow := gn[oc*lOut : (oc+1)*lOut]
			var sum float64
			for p, gv := range grow {
				sum += gv
				gtd[(n*lOut+p)*outC+oc] = gv
			}
			dB[oc] += sum
		}
	}
	// dW += dYᵀ @ patches.
	col := c.colBuf.get2(rows, cols) // still holds im2col(lastX) from Forward
	dwm := c.dwBuf.get2(outC, cols)
	if err := tensor.MatMulTransAInto(dwm, gt, col); err != nil {
		return nil, err
	}
	dW, dwd := c.Weight.Grad.Data(), dwm.Data()
	for i := range dW {
		dW[i] += dwd[i]
	}
	// dPatches = dY @ W, then col2im scatter-add into dX.
	dcol := c.dcolBuf.get2(rows, cols)
	if err := tensor.MatMulInto(dcol, gt, c.weightMat()); err != nil {
		return nil, err
	}
	dx := c.dxBuf.get3(b, inC, l)
	dx.Fill(0)
	dcd, dxd := dcol.Data(), dx.Data()
	col2im := func(lo, hi int) {
		for n := lo; n < hi; n++ {
			dxn := dxd[n*inC*l : (n+1)*inC*l]
			for p := 0; p < lOut; p++ {
				drow := dcd[(n*lOut+p)*cols : (n*lOut+p+1)*cols]
				base := p * s
				for ic := 0; ic < inC; ic++ {
					dxrow := dxn[ic*l+base : ic*l+base+k]
					for t, dv := range drow[ic*k : (ic+1)*k] {
						dxrow[t] += dv
					}
				}
			}
		}
	}
	if par {
		parallel.ForRange(b, col2im)
	} else {
		col2im(0, b)
	}
	c.lastX = nil
	return dx, nil
}

func (c *Conv1D) spec() layerSpec {
	return layerSpec{Kind: "conv1d", Ints: []int{c.InC, c.OutC, c.K, c.Stride}}
}

// Conv2D is a 2-D convolution over [batch, InC, H, W] inputs (valid
// padding) producing [batch, OutC, H', W'].
type Conv2D struct {
	InC, OutC, KH, KW, Stride int
	Weight                    *Param // [OutC, InC, KH, KW]
	Bias                      *Param // [OutC]

	lastX *tensor.Tensor
}

// NewConv2D constructs a 2-D convolution with He-uniform init.
func (n *Network) NewConv2D(inC, outC, kh, kw, stride int) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride,
		Weight: newParam("weight", outC, inC, kh, kw),
		Bias:   newParam("bias", outC),
	}
	initUniform(n.rng, c.Weight.W, kaimingBound(inC*kh*kw))
	initUniform(n.rng, c.Bias.W, kaimingBound(inC*kh*kw))
	return c
}

// Kind identifies the layer.
func (c *Conv2D) Kind() string {
	return fmt.Sprintf("Conv2D(%d->%d,k=%dx%d,s=%d)", c.InC, c.OutC, c.KH, c.KW, c.Stride)
}

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutShape maps [InC, H, W] to [OutC, H', W'].
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.InC {
		return nil, fmt.Errorf("conv2d wants input shape [%d, H, W], got %v", c.InC, in)
	}
	if c.Stride <= 0 || c.KH <= 0 || c.KW <= 0 {
		return nil, fmt.Errorf("conv2d has non-positive kernel/stride")
	}
	h, w := in[1], in[2]
	if h < c.KH || w < c.KW {
		return nil, fmt.Errorf("conv2d input %dx%d smaller than kernel %dx%d", h, w, c.KH, c.KW)
	}
	return []int{c.OutC, (h-c.KH)/c.Stride + 1, (w-c.KW)/c.Stride + 1}, nil
}

// Forward computes the valid cross-correlation, parallel over the batch.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		return nil, fmt.Errorf("conv2d wants [batch, %d, H, W], got %v", c.InC, x.Shape())
	}
	sample, err := c.OutShape([]int{x.Dim(1), x.Dim(2), x.Dim(3)})
	if err != nil {
		return nil, err
	}
	x = x.Contiguous()
	if train {
		c.lastX = x
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hOut, wOut := sample[1], sample[2]
	out := tensor.New(b, c.OutC, hOut, wOut)
	xd, wd, bd, od := x.Data(), c.Weight.W.Data(), c.Bias.W.Data(), out.Data()
	inC, outC, kh, kw, s := c.InC, c.OutC, c.KH, c.KW, c.Stride
	parallel.ForRange(b, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			xn := xd[n*inC*h*w : (n+1)*inC*h*w]
			on := od[n*outC*hOut*wOut : (n+1)*outC*hOut*wOut]
			for oc := 0; oc < outC; oc++ {
				oImg := on[oc*hOut*wOut : (oc+1)*hOut*wOut]
				for p := range oImg {
					oImg[p] = bd[oc]
				}
				for ic := 0; ic < inC; ic++ {
					xImg := xn[ic*h*w : (ic+1)*h*w]
					wKer := wd[(oc*inC+ic)*kh*kw : (oc*inC+ic+1)*kh*kw]
					for oy := 0; oy < hOut; oy++ {
						for ox := 0; ox < wOut; ox++ {
							baseY, baseX := oy*s, ox*s
							var acc float64
							for ky := 0; ky < kh; ky++ {
								xrow := xImg[(baseY+ky)*w+baseX : (baseY+ky)*w+baseX+kw]
								wrow := wKer[ky*kw : (ky+1)*kw]
								for kx := 0; kx < kw; kx++ {
									acc += xrow[kx] * wrow[kx]
								}
							}
							oImg[oy*wOut+ox] += acc
						}
					}
				}
			}
		}
	})
	return out, nil
}

// Backward computes input gradients and accumulates kernel/bias gradients.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("conv2d backward without cached forward")
	}
	x := c.lastX
	g := grad.Contiguous()
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hOut, wOut := g.Dim(2), g.Dim(3)
	if g.Rank() != 4 || g.Dim(0) != b || g.Dim(1) != c.OutC {
		return nil, fmt.Errorf("conv2d backward grad shape %v", g.Shape())
	}
	xd, gd, wd := x.Data(), g.Data(), c.Weight.W.Data()
	dW, dB := c.Weight.Grad.Data(), c.Bias.Grad.Data()
	inC, outC, kh, kw, s := c.InC, c.OutC, c.KH, c.KW, c.Stride
	dx := tensor.New(b, inC, h, w)
	dxd := dx.Data()
	for n := 0; n < b; n++ {
		xin := xd[n*inC*h*w : (n+1)*inC*h*w]
		dxn := dxd[n*inC*h*w : (n+1)*inC*h*w]
		gn := gd[n*outC*hOut*wOut : (n+1)*outC*hOut*wOut]
		for oc := 0; oc < outC; oc++ {
			gImg := gn[oc*hOut*wOut : (oc+1)*hOut*wOut]
			for _, gv := range gImg {
				dB[oc] += gv
			}
			for ic := 0; ic < inC; ic++ {
				xImg := xin[ic*h*w : (ic+1)*h*w]
				dxImg := dxn[ic*h*w : (ic+1)*h*w]
				wKer := wd[(oc*inC+ic)*kh*kw : (oc*inC+ic+1)*kh*kw]
				dWKer := dW[(oc*inC+ic)*kh*kw : (oc*inC+ic+1)*kh*kw]
				for oy := 0; oy < hOut; oy++ {
					for ox := 0; ox < wOut; ox++ {
						gv := gImg[oy*wOut+ox]
						if gv == 0 {
							continue
						}
						baseY, baseX := oy*s, ox*s
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								idx := (baseY+ky)*w + baseX + kx
								dWKer[ky*kw+kx] += gv * xImg[idx]
								dxImg[idx] += gv * wKer[ky*kw+kx]
							}
						}
					}
				}
			}
		}
	}
	c.lastX = nil
	return dx, nil
}

func (c *Conv2D) spec() layerSpec {
	return layerSpec{Kind: "conv2d", Ints: []int{c.InC, c.OutC, c.KH, c.KW, c.Stride}}
}

// MaxPool1D pools [batch, C, L] with window K and stride K.
type MaxPool1D struct {
	K int

	lastArg []int
	inShape []int
}

// NewMaxPool1D constructs a 1-D max-pool layer with window k.
func NewMaxPool1D(k int) *MaxPool1D { return &MaxPool1D{K: k} }

// Kind identifies the layer.
func (m *MaxPool1D) Kind() string { return fmt.Sprintf("MaxPool1D(%d)", m.K) }

// Params returns nil.
func (m *MaxPool1D) Params() []*Param { return nil }

// OutShape maps [C, L] to [C, L/K].
func (m *MaxPool1D) OutShape(in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("maxpool1d wants [C, L], got %v", in)
	}
	if m.K <= 0 {
		return nil, fmt.Errorf("maxpool1d non-positive window %d", m.K)
	}
	if in[1] < m.K {
		return nil, fmt.Errorf("maxpool1d input length %d < window %d", in[1], m.K)
	}
	return []int{in[0], in[1] / m.K}, nil
}

// Forward takes windowed maxima, recording argmax indices for backward.
func (m *MaxPool1D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("maxpool1d wants [batch, C, L], got %v", x.Shape())
	}
	x = x.Contiguous()
	b, ch, l := x.Dim(0), x.Dim(1), x.Dim(2)
	lOut := l / m.K
	if lOut == 0 {
		return nil, fmt.Errorf("maxpool1d input length %d < window %d", l, m.K)
	}
	out := tensor.New(b, ch, lOut)
	xd, od := x.Data(), out.Data()
	var args []int
	if train {
		args = make([]int, b*ch*lOut)
	}
	k := m.K
	parallel.ForRange(b*ch, func(lo, hi int) {
		for rc := lo; rc < hi; rc++ {
			xrow := xd[rc*l : (rc+1)*l]
			orow := od[rc*lOut : (rc+1)*lOut]
			for p := 0; p < lOut; p++ {
				best, bestIdx := math.Inf(-1), 0
				for t := 0; t < k; t++ {
					if v := xrow[p*k+t]; v > best {
						best, bestIdx = v, p*k+t
					}
				}
				orow[p] = best
				if args != nil {
					args[rc*lOut+p] = rc*l + bestIdx
				}
			}
		}
	})
	if train {
		m.lastArg = args
		m.inShape = x.Shape()
	}
	return out, nil
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool1D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if m.lastArg == nil {
		return nil, fmt.Errorf("maxpool1d backward without cached forward")
	}
	g := grad.Contiguous()
	gd := g.Data()
	if len(gd) != len(m.lastArg) {
		return nil, fmt.Errorf("maxpool1d backward size mismatch")
	}
	dx := tensor.New(m.inShape...)
	dxd := dx.Data()
	for i, src := range m.lastArg {
		dxd[src] += gd[i]
	}
	m.lastArg, m.inShape = nil, nil
	return dx, nil
}

func (m *MaxPool1D) spec() layerSpec { return layerSpec{Kind: "maxpool1d", Ints: []int{m.K}} }

// MaxPool2D pools [batch, C, H, W] with a KxK window and stride K.
type MaxPool2D struct {
	K int

	lastArg []int
	inShape []int
}

// NewMaxPool2D constructs a 2-D max-pool layer with window k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Kind identifies the layer.
func (m *MaxPool2D) Kind() string { return fmt.Sprintf("MaxPool2D(%d)", m.K) }

// Params returns nil.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutShape maps [C, H, W] to [C, H/K, W/K].
func (m *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("maxpool2d wants [C, H, W], got %v", in)
	}
	if m.K <= 0 {
		return nil, fmt.Errorf("maxpool2d non-positive window %d", m.K)
	}
	if in[1] < m.K || in[2] < m.K {
		return nil, fmt.Errorf("maxpool2d input %dx%d < window %d", in[1], in[2], m.K)
	}
	return []int{in[0], in[1] / m.K, in[2] / m.K}, nil
}

// Forward takes windowed maxima, recording argmax indices for backward.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("maxpool2d wants [batch, C, H, W], got %v", x.Shape())
	}
	x = x.Contiguous()
	b, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hOut, wOut := h/m.K, w/m.K
	if hOut == 0 || wOut == 0 {
		return nil, fmt.Errorf("maxpool2d input %dx%d < window %d", h, w, m.K)
	}
	out := tensor.New(b, ch, hOut, wOut)
	xd, od := x.Data(), out.Data()
	var args []int
	if train {
		args = make([]int, b*ch*hOut*wOut)
	}
	k := m.K
	parallel.ForRange(b*ch, func(lo, hi int) {
		for rc := lo; rc < hi; rc++ {
			xImg := xd[rc*h*w : (rc+1)*h*w]
			oImg := od[rc*hOut*wOut : (rc+1)*hOut*wOut]
			for oy := 0; oy < hOut; oy++ {
				for ox := 0; ox < wOut; ox++ {
					best, bestIdx := math.Inf(-1), 0
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							idx := (oy*k+ky)*w + ox*k + kx
							if v := xImg[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					oImg[oy*wOut+ox] = best
					if args != nil {
						args[rc*hOut*wOut+oy*wOut+ox] = rc*h*w + bestIdx
					}
				}
			}
		}
	})
	if train {
		m.lastArg = args
		m.inShape = x.Shape()
	}
	return out, nil
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if m.lastArg == nil {
		return nil, fmt.Errorf("maxpool2d backward without cached forward")
	}
	g := grad.Contiguous()
	gd := g.Data()
	if len(gd) != len(m.lastArg) {
		return nil, fmt.Errorf("maxpool2d backward size mismatch")
	}
	dx := tensor.New(m.inShape...)
	dxd := dx.Data()
	for i, src := range m.lastArg {
		dxd[src] += gd[i]
	}
	m.lastArg, m.inShape = nil, nil
	return dx, nil
}

func (m *MaxPool2D) spec() layerSpec { return layerSpec{Kind: "maxpool2d", Ints: []int{m.K}} }
