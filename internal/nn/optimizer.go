package nn

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param) error
	Name() string
}

// optParMin is the per-parameter element count below which an optimizer
// update runs serially on the calling goroutine: the paper's search-space
// models are mostly small, and goroutine fan-out would cost more than it
// saves (and would allocate, breaking the zero-alloc training step).
const optParMin = 1 << 14

// Note on loop structure: every update below writes the serial loop
// inline and only builds the parallel.ForRange closure inside the
// large-parameter branch. Hoisting the body into a shared closure would
// force a heap allocation per parameter per step (a closure that may
// escape to ForRange always escapes), breaking the zero-alloc step.
// Updates are elementwise-independent, so the range split cannot change
// results.

// sameParams reports whether bound is exactly the parameter set params
// (same length, same pointers in the same order).
func sameParams(bound, params []*Param) bool {
	if len(bound) != len(params) {
		return false
	}
	for i := range bound {
		if bound[i] != params[i] {
			return false
		}
	}
	return true
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay. Optimizer state lives in per-parameter slots bound to the
// parameter set on the first Step, so the hot loop does no map lookups;
// behind the slots the state is keyed by parameter identity, so an
// optimizer alternating between parameter sets keeps each parameter's
// velocity (matching the old map semantics) — the map is touched only
// when the set changes.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	bound    []*Param
	velocity [][]float64
	state    map[*Param][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Name identifies the optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step applies one SGD update to every parameter, parallelizing the
// element loop for large parameters.
func (s *SGD) Step(params []*Param) error {
	if s.LR <= 0 {
		return fmt.Errorf("nn: sgd learning rate must be positive, got %g", s.LR)
	}
	if !sameParams(s.bound, params) {
		s.bound = append([]*Param(nil), params...)
		if s.state == nil {
			s.state = make(map[*Param][]float64, len(params))
		}
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = s.state[p]
		}
	}
	lr, mom, wd := s.LR, s.Momentum, s.WeightDecay
	for pi, p := range params {
		w, g := p.W.Data(), p.Grad.Data()
		if mom == 0 {
			if len(w) < optParMin || parallel.MaxWorkers() == 1 {
				for i := range w {
					w[i] -= lr * (g[i] + wd*w[i])
				}
			} else {
				parallel.ForRange(len(w), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						w[i] -= lr * (g[i] + wd*w[i])
					}
				})
			}
			continue
		}
		v := s.velocity[pi]
		if v == nil {
			v = make([]float64, len(w))
			s.velocity[pi] = v
			s.state[p] = v
		}
		if len(w) < optParMin || parallel.MaxWorkers() == 1 {
			for i := range w {
				v[i] = mom*v[i] + g[i] + wd*w[i]
				w[i] -= lr * v[i]
			}
		} else {
			parallel.ForRange(len(w), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v[i] = mom*v[i] + g[i] + wd*w[i]
					w[i] -= lr * v[i]
				}
			})
		}
	}
	return nil
}

// Adam implements the Adam optimizer with decoupled weight decay (AdamW),
// matching the paper's hyperparameter search space (learning rate and
// weight decay, Table V). Moment state lives in per-parameter slots bound
// to the parameter set on the first Step, so the hot loop does no map
// lookups; behind the slots the moments are keyed by parameter identity,
// so an optimizer alternating between parameter sets keeps each
// parameter's moments, and the bias-correction step count t advances
// once per Step regardless of the set — both matching the old map
// semantics. The map is touched only when the set changes.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	t      int
	bound  []*Param
	m      [][]float64
	v      [][]float64
	mState map[*Param][]float64
	vState map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// Name identifies the optimizer.
func (a *Adam) Name() string { return "adam" }

// Step applies one Adam update to every parameter, parallelizing the
// element loop for large parameters.
func (a *Adam) Step(params []*Param) error {
	if a.LR <= 0 {
		return fmt.Errorf("nn: adam learning rate must be positive, got %g", a.LR)
	}
	if !sameParams(a.bound, params) {
		a.bound = append([]*Param(nil), params...)
		if a.mState == nil {
			a.mState = make(map[*Param][]float64, len(params))
			a.vState = make(map[*Param][]float64, len(params))
		}
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = a.mState[p]
			a.v[i] = a.vState[p]
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	lr, b1, b2, eps, wd := a.LR, a.Beta1, a.Beta2, a.Eps, a.WeightDecay
	for pi, p := range params {
		w, g := p.W.Data(), p.Grad.Data()
		if a.m[pi] == nil {
			a.m[pi] = make([]float64, len(w))
			a.v[pi] = make([]float64, len(w))
			a.mState[p] = a.m[pi]
			a.vState[p] = a.v[pi]
		}
		m, v := a.m[pi], a.v[pi]
		if len(w) < optParMin || parallel.MaxWorkers() == 1 {
			for i := range w {
				m[i] = b1*m[i] + (1-b1)*g[i]
				v[i] = b2*v[i] + (1-b2)*g[i]*g[i]
				mh := m[i] / bc1
				vh := v[i] / bc2
				w[i] -= lr * (mh/(math.Sqrt(vh)+eps) + wd*w[i])
			}
		} else {
			parallel.ForRange(len(w), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					m[i] = b1*m[i] + (1-b1)*g[i]
					v[i] = b2*v[i] + (1-b2)*g[i]*g[i]
					mh := m[i] / bc1
					vh := v[i] / bc2
					w[i] -= lr * (mh/(math.Sqrt(vh)+eps) + wd*w[i])
				}
			})
		}
	}
	return nil
}
