package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param) error
	Name() string
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Name identifies the optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step applies one SGD update to every parameter.
func (s *SGD) Step(params []*Param) error {
	if s.LR <= 0 {
		return fmt.Errorf("nn: sgd learning rate must be positive, got %g", s.LR)
	}
	if s.velocity == nil {
		s.velocity = make(map[*Param][]float64)
	}
	for _, p := range params {
		w, g := p.W.Data(), p.Grad.Data()
		if s.Momentum == 0 {
			for i := range w {
				w[i] -= s.LR * (g[i] + s.WeightDecay*w[i])
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(w))
			s.velocity[p] = v
		}
		for i := range w {
			v[i] = s.Momentum*v[i] + g[i] + s.WeightDecay*w[i]
			w[i] -= s.LR * v[i]
		}
	}
	return nil
}

// Adam implements the Adam optimizer with decoupled weight decay (AdamW),
// matching the paper's hyperparameter search space (learning rate and
// weight decay, Table V).
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// Name identifies the optimizer.
func (a *Adam) Name() string { return "adam" }

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) error {
	if a.LR <= 0 {
		return fmt.Errorf("nn: adam learning rate must be positive, got %g", a.LR)
	}
	if a.m == nil {
		a.m = make(map[*Param][]float64)
		a.v = make(map[*Param][]float64)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		w, g := p.W.Data(), p.Grad.Data()
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(w))
			a.m[p] = m
			a.v[p] = make([]float64, len(w))
		}
		v := a.v[p]
		for i := range w {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mh := m[i] / bc1
			vh := v[i] / bc2
			w[i] -= a.LR * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*w[i])
		}
	}
	return nil
}
