package nn

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Shaped-program op kinds, continuing the op32 space. These only appear
// in programs built by NewForward32Shaped; NewForward32's vector
// programs never emit them.
const (
	op32Conv1 = iota + 16
	op32Conv2
	op32Pool1
	op32Pool2
)

// conv32 is the compiled geometry of one conv or pool op. Weights are
// converted (and for Conv1D pre-transposed) once at compile time so the
// per-batch hot path is pure f32 data movement and GEMM.
type conv32 struct {
	inC, inL   int // 1-D input geometry (inC doubles as C for pools)
	inH, inW   int // 2-D input geometry
	outC, outL int
	outH, outW int
	k, kw      int // kernel (k is K or KH; kw is KW)
	stride     int
	wT         []float32 // conv1d: [InC*K, OutC] — transposed from [OutC, InC*K]
	wd         []float32 // conv2d: [OutC, InC, KH, KW] flat
	b          []float32
}

// NewForward32Shaped compiles net into a float32 inference program for
// inputs whose per-sample shape is sample — the conv-capable sibling of
// NewForward32. Where the vector compiler only tracks a width, this one
// threads the full sample shape through every layer (validated by the
// same OutShape methods the float64 path uses), so Conv1D, Conv2D,
// MaxPool1D, and MaxPool2D compile too: Conv1D becomes f32 im2col +
// MatMulInto32 against a kernel transposed once at compile time, Conv2D
// a direct cross-correlation, and the pools windowed maxima. All layouts
// are channel-major and contiguous, so Flatten stays an identity and the
// program still runs on flat [rows, InDim] slabs.
//
// The program is valid only for that sample shape; callers seeing a
// different shape must compile another program. Like NewForward32,
// failure means "stay on float64", not a hard error.
func NewForward32Shaped(net *Network, sample []int) (*Forward32, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("nn: f32 path: empty network")
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("nn: f32 path: empty sample shape")
	}
	for _, d := range sample {
		if d <= 0 {
			return nil, fmt.Errorf("nn: f32 path: bad sample shape %v", sample)
		}
	}
	f := &Forward32{inDim: tensor.NumElements(sample)}
	f.scratch.New = func() any { return new(f32Scratch) }
	f.conv.New = func() any { return new(convScratch32) }
	shape := append([]int(nil), sample...)
	for i, e := range net.Layers {
		next, err := e.Layer.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: f32 path: layer %d: %w", i, err)
		}
		cols, outCols := tensor.NumElements(shape), tensor.NumElements(next)
		switch l := e.Layer.(type) {
		case *Dense:
			f.ops = append(f.ops, op32{kind: op32Dense, inCols: cols, outCols: l.Out,
				w: toF32(l.Weight.W.Contiguous().Data()), b: toF32(l.Bias.W.Contiguous().Data())})
		case *Activation:
			if !validActivation(l.Fn) {
				return nil, fmt.Errorf("nn: f32 path: layer %d: unknown activation %q", i, l.Fn)
			}
			f.ops = append(f.ops, op32{kind: op32Act, inCols: cols, outCols: cols, fn: l.Fn})
		case *Affine:
			f.ops = append(f.ops, op32{kind: op32Affine, inCols: cols, outCols: cols,
				scale: float32(l.Scale), shift: float32(l.Shift)})
		case *ChannelAffine:
			// OutShape already validated cols == BlockLen*len(Scales).
			f.ops = append(f.ops, op32{kind: op32ChanAffine, inCols: cols, outCols: cols,
				blockLen: l.BlockLen, scales: toF32(l.Scales), shifts: toF32(l.Shifts)})
		case *Dropout, *Flatten:
			// Identity on the contiguous channel-major slab.
		case *Conv1D:
			c := &conv32{inC: l.InC, inL: shape[1], outC: l.OutC, outL: next[1],
				k: l.K, stride: l.Stride, b: toF32(l.Bias.W.Contiguous().Data())}
			// Transpose [OutC, InC, K] to [InC*K, OutC] once so the hot
			// path is a plain row-major GEMM with no per-call transpose.
			w := l.Weight.W.Contiguous().Data()
			kc := l.InC * l.K
			c.wT = make([]float32, kc*l.OutC)
			for oc := 0; oc < l.OutC; oc++ {
				for j := 0; j < kc; j++ {
					c.wT[j*l.OutC+oc] = float32(w[oc*kc+j])
				}
			}
			f.ops = append(f.ops, op32{kind: op32Conv1, inCols: cols, outCols: outCols, conv: c})
		case *Conv2D:
			c := &conv32{inC: l.InC, inH: shape[1], inW: shape[2], outC: l.OutC,
				outH: next[1], outW: next[2], k: l.KH, kw: l.KW, stride: l.Stride,
				wd: toF32(l.Weight.W.Contiguous().Data()), b: toF32(l.Bias.W.Contiguous().Data())}
			f.ops = append(f.ops, op32{kind: op32Conv2, inCols: cols, outCols: outCols, conv: c})
		case *MaxPool1D:
			c := &conv32{inC: shape[0], inL: shape[1], outL: next[1], k: l.K}
			f.ops = append(f.ops, op32{kind: op32Pool1, inCols: cols, outCols: outCols, conv: c})
		case *MaxPool2D:
			c := &conv32{inC: shape[0], inH: shape[1], inW: shape[2],
				outH: next[1], outW: next[2], k: l.K}
			f.ops = append(f.ops, op32{kind: op32Pool2, inCols: cols, outCols: outCols, conv: c})
		default:
			return nil, fmt.Errorf("nn: f32 path does not support layer %d (%s)", i, e.Layer.Kind())
		}
		shape = next
	}
	f.outDim = tensor.NumElements(shape)
	if len(f.ops) == 0 {
		return nil, fmt.Errorf("nn: f32 path: network has no compilable ops")
	}
	return f, nil
}

func grow32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return (*buf)[:n]
}

// im2col1d32 unrolls x ([b, inC, l] flat) into col ([b*lOut, inC*k]
// flat), mirroring im2col1d: col[(n*lOut+p), ic*k+t] = x[n, ic, p*s+t].
func im2col1d32(col, xd []float32, b, inC, l, lOut, k, s int, par bool) {
	cols := inC * k
	body := func(lo, hi int) {
		for n := lo; n < hi; n++ {
			xn := xd[n*inC*l : (n+1)*inC*l]
			for p := 0; p < lOut; p++ {
				row := col[(n*lOut+p)*cols : (n*lOut+p+1)*cols]
				base := p * s
				for ic := 0; ic < inC; ic++ {
					copy(row[ic*k:(ic+1)*k], xn[ic*l+base:ic*l+base+k])
				}
			}
		}
	}
	if par {
		parallel.ForRange(b, body)
	} else {
		body(0, b)
	}
}

// runConv1 computes the valid cross-correlation as im2col + patches@W
// (the kernel is already transposed, so no TransB variant is needed),
// then transposes [b*lOut, outC] into dst's [b, outC, lOut] and adds the
// bias. The patch matrix and GEMM output live in the call's pooled
// scratch.
func (c *conv32) runConv1(dst, x []float32, rows int, s *f32Scratch) error {
	inC, l, outC, lOut, k := c.inC, c.inL, c.outC, c.outL, c.k
	mrows, mcols := rows*lOut, inC*k
	col := grow32(&s.aux[0], mrows*mcols)
	out2 := grow32(&s.aux[1], mrows*outC)
	par := rows*outC*lOut*inC*k >= convParFLOPs
	im2col1d32(col, x, rows, inC, l, lOut, k, c.stride, par)
	if err := tensor.MatMulInto32(out2, col, c.wT, mrows, mcols, outC); err != nil {
		return err
	}
	scatter := func(lo, hi int) {
		for n := lo; n < hi; n++ {
			o2n := out2[n*lOut*outC : (n+1)*lOut*outC]
			on := dst[n*outC*lOut : (n+1)*outC*lOut]
			for oc := 0; oc < outC; oc++ {
				bv := c.b[oc]
				orow := on[oc*lOut : (oc+1)*lOut]
				for p := range orow {
					orow[p] = o2n[p*outC+oc] + bv
				}
			}
		}
	}
	if par {
		parallel.ForRange(rows, scatter)
	} else {
		scatter(0, rows)
	}
	return nil
}

// runConv2 computes the valid 2-D cross-correlation directly, parallel
// over the batch, mirroring Conv2D.Forward.
func (c *conv32) runConv2(dst, x []float32, rows int) {
	inC, h, w := c.inC, c.inH, c.inW
	outC, hOut, wOut := c.outC, c.outH, c.outW
	kh, kw, s := c.k, c.kw, c.stride
	parallel.ForRange(rows, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			xn := x[n*inC*h*w : (n+1)*inC*h*w]
			on := dst[n*outC*hOut*wOut : (n+1)*outC*hOut*wOut]
			for oc := 0; oc < outC; oc++ {
				oImg := on[oc*hOut*wOut : (oc+1)*hOut*wOut]
				for p := range oImg {
					oImg[p] = c.b[oc]
				}
				for ic := 0; ic < inC; ic++ {
					xImg := xn[ic*h*w : (ic+1)*h*w]
					wKer := c.wd[(oc*inC+ic)*kh*kw : (oc*inC+ic+1)*kh*kw]
					for oy := 0; oy < hOut; oy++ {
						for ox := 0; ox < wOut; ox++ {
							baseY, baseX := oy*s, ox*s
							var acc float32
							for ky := 0; ky < kh; ky++ {
								xrow := xImg[(baseY+ky)*w+baseX : (baseY+ky)*w+baseX+kw]
								wrow := wKer[ky*kw : (ky+1)*kw]
								for kx := 0; kx < kw; kx++ {
									acc += xrow[kx] * wrow[kx]
								}
							}
							oImg[oy*wOut+ox] += acc
						}
					}
				}
			}
		}
	})
}

// runPool1 takes non-overlapping windowed maxima over [rows, C, L],
// mirroring MaxPool1D.Forward's inference path.
func (c *conv32) runPool1(dst, x []float32, rows int) {
	ch, l, lOut, k := c.inC, c.inL, c.outL, c.k
	parallel.ForRange(rows*ch, func(lo, hi int) {
		for rc := lo; rc < hi; rc++ {
			xrow := x[rc*l : (rc+1)*l]
			orow := dst[rc*lOut : (rc+1)*lOut]
			for p := 0; p < lOut; p++ {
				best := float32(math.Inf(-1))
				for t := 0; t < k; t++ {
					if v := xrow[p*k+t]; v > best {
						best = v
					}
				}
				orow[p] = best
			}
		}
	})
}

// runPool2 takes KxK windowed maxima over [rows, C, H, W], mirroring
// MaxPool2D.Forward's inference path.
func (c *conv32) runPool2(dst, x []float32, rows int) {
	ch, h, w := c.inC, c.inH, c.inW
	hOut, wOut, k := c.outH, c.outW, c.k
	parallel.ForRange(rows*ch, func(lo, hi int) {
		for rc := lo; rc < hi; rc++ {
			xImg := x[rc*h*w : (rc+1)*h*w]
			oImg := dst[rc*hOut*wOut : (rc+1)*hOut*wOut]
			for oy := 0; oy < hOut; oy++ {
				for ox := 0; ox < wOut; ox++ {
					best := float32(math.Inf(-1))
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							if v := xImg[(oy*k+ky)*w+ox*k+kx]; v > best {
								best = v
							}
						}
					}
					oImg[oy*wOut+ox] = best
				}
			}
		}
	})
}
