package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func mlpForTest(seed int64) *Network {
	net := NewNetwork(seed)
	net.Add(net.NewDense(6, 24), NewActivation(ActTanh), net.NewDense(24, 3))
	return net
}

func randInput(rng *rand.Rand, rows, cols int) *tensor.Tensor {
	x := tensor.New(rows, cols)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return x
}

// TestForwardIntoMatchesForward checks the zero-allocation path returns
// bit-identical values to the allocating one.
func TestForwardIntoMatchesForward(t *testing.T) {
	net := mlpForTest(11)
	rng := rand.New(rand.NewSource(2))
	for _, rows := range []int{1, 5, 64} {
		x := randInput(rng, rows, 6)
		want, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		dst := tensor.Full(-99, rows, 3)
		if err := net.ForwardInto(dst, x); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < 3; j++ {
				if dst.At(i, j) != want.At(i, j) {
					t.Fatalf("rows=%d: ForwardInto differs at (%d,%d)", rows, i, j)
				}
			}
		}
	}
}

func TestForwardIntoShapeMismatch(t *testing.T) {
	net := mlpForTest(11)
	x := tensor.New(4, 6)
	if err := net.ForwardInto(tensor.New(4, 2), x); err == nil {
		t.Fatal("want error for wrong dst shape")
	}
	if err := net.ForwardInto(nil, x); err == nil {
		t.Fatal("want error for nil dst")
	}
}

// TestForwardIntoZeroAllocSteadyState is the arena's contract: after the
// first call warms the scratch buffers, small-batch inference performs no
// heap allocations.
func TestForwardIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	net := mlpForTest(3)
	x := randInput(rand.New(rand.NewSource(9)), 1, 6)
	dst := tensor.New(1, 3)
	if err := net.ForwardInto(dst, x); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := net.ForwardInto(dst, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForwardInto allocates %.1f objects/call, want 0", allocs)
	}
}

// TestForwardBatchMatchesSequential checks the stacked pass against
// per-input Forward calls bit for bit, including a non-uniform row split.
func TestForwardBatchMatchesSequential(t *testing.T) {
	net := mlpForTest(17)
	rng := rand.New(rand.NewSource(5))
	xs := []*tensor.Tensor{
		randInput(rng, 3, 6),
		randInput(rng, 1, 6),
		randInput(rng, 8, 6),
	}
	got, err := net.ForwardBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("got %d outputs, want %d", len(got), len(xs))
	}
	for i, x := range xs {
		want, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.ShapeEqual(got[i].Shape(), want.Shape()) {
			t.Fatalf("output %d shape %v, want %v", i, got[i].Shape(), want.Shape())
		}
		for r := 0; r < want.Dim(0); r++ {
			for c := 0; c < want.Dim(1); c++ {
				if got[i].At(r, c) != want.At(r, c) {
					t.Fatalf("output %d differs at (%d,%d): %g vs %g",
						i, r, c, got[i].At(r, c), want.At(r, c))
				}
			}
		}
	}
}

func TestForwardBatchEdgeCases(t *testing.T) {
	net := mlpForTest(1)
	if out, err := net.ForwardBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch: got %v, %v", out, err)
	}
	one, err := net.ForwardBatch([]*tensor.Tensor{tensor.New(2, 6)})
	if err != nil || len(one) != 1 {
		t.Fatalf("singleton batch: got %d outputs, err %v", len(one), err)
	}
	_, err = net.ForwardBatch([]*tensor.Tensor{tensor.New(2, 6), tensor.New(2, 5)})
	if err == nil {
		t.Fatal("want error for mismatched feature dims")
	}
	_, err = net.ForwardBatch([]*tensor.Tensor{tensor.Scalar(1), tensor.Scalar(2)})
	if err == nil {
		t.Fatal("want error for rank-0 inputs")
	}
}

// TestForwardTrailingViewLayerDetachesScratch guards the arena against
// view-returning trailing layers: a network ending in Flatten must not
// hand the caller a tensor aliasing pooled scratch memory.
func TestForwardTrailingViewLayerDetachesScratch(t *testing.T) {
	net := NewNetwork(4)
	net.Add(net.NewDense(3, 4), NewFlatten())
	x := randInput(rand.New(rand.NewSource(8)), 2, 3)
	y1, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := y1.Clone()
	// A second pass with different inputs would clobber y1 if it aliased
	// the pooled scratch buffer.
	x2 := randInput(rand.New(rand.NewSource(99)), 2, 3)
	if _, err := net.Forward(x2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < y1.Dim(0); i++ {
		for j := 0; j < y1.Dim(1); j++ {
			if y1.At(i, j) != snapshot.At(i, j) {
				t.Fatal("Forward result aliases pooled scratch memory")
			}
		}
	}
}
