package nn

import "repro/internal/tensor"

// scratch is a reusable tensor backed by a grow-only buffer: the backing
// slice is reallocated only when it must grow and the tensor header is
// rebuilt only when the requested shape changes, so steady-state reuse
// (same shapes every training step) performs no heap allocation. It is
// the backward-pass counterpart of the pooled inference arena: layers own
// one scratch per training intermediate (forward output, im2col matrix,
// input gradient, weight-gradient staging), and the trainer owns the
// minibatch and loss-gradient scratches. Scratches are not safe for
// concurrent use; training is layer-serial by contract.
type scratch struct {
	buf   []float64
	t     *tensor.Tensor
	shape [4]int
	rank  int
}

// maxScratchRank bounds the shapes a scratch can cache; higher-rank
// tensors fall back to the allocating paths.
const maxScratchRank = 4

// get returns a contiguous tensor of the given shape backed by the
// scratch buffer. Contents are unspecified: callers must fully overwrite
// (or zero) it. rank must be in [1, maxScratchRank].
func (s *scratch) get(rank int, shape [4]int) *tensor.Tensor {
	if s.t != nil && s.rank == rank && s.shape == shape {
		return s.t
	}
	n := 1
	for i := 0; i < rank; i++ {
		n *= shape[i]
	}
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	var t *tensor.Tensor
	var err error
	switch rank {
	case 1:
		t, err = tensor.Wrap(s.buf[:n], shape[0])
	case 2:
		t, err = tensor.Wrap(s.buf[:n], shape[0], shape[1])
	case 3:
		t, err = tensor.Wrap(s.buf[:n], shape[0], shape[1], shape[2])
	case 4:
		t, err = tensor.Wrap(s.buf[:n], shape[0], shape[1], shape[2], shape[3])
	default:
		panic("nn: scratch rank out of range")
	}
	if err != nil {
		panic("nn: scratch wrap: " + err.Error()) // cannot happen: buffer sized above
	}
	s.t = t
	s.rank = rank
	s.shape = shape
	return t
}

// get2 returns a [r, c] scratch tensor.
func (s *scratch) get2(r, c int) *tensor.Tensor {
	return s.get(2, [4]int{r, c})
}

// get3 returns an [a, b, c] scratch tensor.
func (s *scratch) get3(a, b, c int) *tensor.Tensor {
	return s.get(3, [4]int{a, b, c})
}

// like returns a scratch tensor with x's shape, or nil when x's rank
// exceeds maxScratchRank (callers then fall back to allocating).
func (s *scratch) like(x *tensor.Tensor) *tensor.Tensor {
	r := x.Rank()
	if r < 1 || r > maxScratchRank {
		return nil
	}
	var shape [4]int
	for i := 0; i < r; i++ {
		shape[i] = x.Dim(i)
	}
	return s.get(r, shape)
}

// batchOf returns a scratch tensor of shape [rows, x.Dim(1), ...]: a
// minibatch slot shaped like rows samples of x. It returns nil when x's
// rank exceeds maxScratchRank.
func (s *scratch) batchOf(x *tensor.Tensor, rows int) *tensor.Tensor {
	r := x.Rank()
	if r < 1 || r > maxScratchRank {
		return nil
	}
	shape := [4]int{rows}
	for i := 1; i < r; i++ {
		shape[i] = x.Dim(i)
	}
	return s.get(r, shape)
}
