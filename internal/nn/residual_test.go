package nn

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func TestResidualIdentityAtZeroWeights(t *testing.T) {
	body := NewNetwork(1)
	d := body.NewDense(4, 4)
	for i := range d.Weight.W.Data() {
		d.Weight.W.Data()[i] = 0
	}
	for i := range d.Bias.W.Data() {
		d.Bias.W.Data()[i] = 0
	}
	body.Add(d)
	net := NewNetwork(2)
	net.Add(NewResidual(body))
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 3, 4)
	y, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("zero-weight residual must be the identity")
		}
	}
}

func TestResidualGradCheck(t *testing.T) {
	body := NewNetwork(5)
	body.Add(body.NewDense(3, 6), NewActivation(ActTanh), body.NewDense(6, 3))
	net := NewNetwork(6)
	net.Add(NewResidual(body))
	rng := rand.New(rand.NewSource(7))
	numericalGradCheck(t, net, randTensor(rng, 4, 3), 1e-4)
}

func TestResidualConvBodyGradCheck(t *testing.T) {
	// MiniWeather-shaped: conv encoder + dense decoder back to the full
	// sample size, wrapped in a residual.
	body := NewNetwork(9)
	body.Add(body.NewConv2D(2, 3, 2, 2, 1), NewActivation(ActTanh), NewFlatten())
	out, err := body.OutShape([]int{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	body.Add(body.NewDense(out[0], 2*4*4))
	net := NewNetwork(10)
	net.Add(NewResidual(body))
	rng := rand.New(rand.NewSource(11))
	numericalGradCheck(t, net, randTensor(rng, 2, 2, 4, 4), 1e-4)
}

func TestResidualShapeMismatchRejected(t *testing.T) {
	body := NewNetwork(1)
	body.Add(body.NewDense(4, 5)) // output size != input size
	net := NewNetwork(2)
	net.Add(NewResidual(body))
	if _, err := net.OutShape([]int{4}); err == nil {
		t.Fatal("want size mismatch error from OutShape")
	}
	if _, err := net.Forward(tensor.New(2, 4)); err == nil {
		t.Fatal("want size mismatch error from Forward")
	}
}

func TestResidualSaveLoadRoundTrip(t *testing.T) {
	body := NewNetwork(21)
	body.Add(body.NewConv2D(1, 2, 2, 2, 1), NewActivation(ActReLU), NewFlatten())
	out, err := body.OutShape([]int{1, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	body.Add(body.NewDense(out[0], 25))
	net := NewNetwork(22)
	net.Add(NewResidual(body))

	path := filepath.Join(t.TempDir(), "res.gmod")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != net.NumParams() {
		t.Fatalf("params %d vs %d after reload", loaded.NumParams(), net.NumParams())
	}
	rng := rand.New(rand.NewSource(23))
	x := randTensor(rng, 2, 1, 5, 5)
	y1, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("residual outputs differ after reload")
		}
	}
}

func TestResidualTrainsDeltaFunction(t *testing.T) {
	// Target: y = x + 0.1 * sin-ish perturbation. A residual net should
	// learn the small delta quickly.
	rng := rand.New(rand.NewSource(31))
	n := 256
	x := randTensor(rng, n, 2)
	y := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		y.Set(x.At(i, 0)+0.1*x.At(i, 1), i, 0)
		y.Set(x.At(i, 1)-0.1*x.At(i, 0), i, 1)
	}
	ds, _ := NewDataset(x, y)
	body := NewNetwork(33)
	body.Add(body.NewDense(2, 8), NewActivation(ActTanh), body.NewDense(8, 2))
	net := NewNetwork(34)
	net.Add(NewResidual(body))
	h, err := net.Fit(ds, nil, TrainConfig{Epochs: 200, BatchSize: 32, LR: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.BestVal > 5e-3 {
		t.Fatalf("residual delta fit did not converge: %g", h.BestVal)
	}
}
