package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// benchBinomialDataset builds a binomial-shaped regression set: five
// option-pricing-style features mapping to one price, the shape of the
// paper's Binomial benchmark surrogate.
func benchBinomialDataset(n int) *Dataset {
	rng := rand.New(rand.NewSource(42))
	x := tensor.New(n, 5)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		s := rng.Float64()*40 + 80  // spot
		k := rng.Float64()*40 + 80  // strike
		tm := rng.Float64()*2 + 0.1 // maturity
		v := rng.Float64()*0.4 + 0.1
		r := rng.Float64() * 0.05
		x.Set(s, i, 0)
		x.Set(k, i, 1)
		x.Set(tm, i, 2)
		x.Set(v, i, 3)
		x.Set(r, i, 4)
		y.Set(math.Max(s-k, 0)+v*math.Sqrt(tm)*s*0.4, i, 0)
	}
	ds, err := NewDataset(x, y)
	if err != nil {
		panic(err)
	}
	return ds
}

// BenchmarkTrainEpoch measures one full Fit epoch (shuffle, minibatch
// gather, forward, backward, optimizer) of an MLP on the binomial-shaped
// dataset, at the surrogate sizes the repo's searches actually train
// (quickstart's 16-hidden net up to examples/binomial's 128x64). ns/op
// is epoch wall time; B/op exposes the trainer's allocation behavior.
// Run it against the pre-arena trainer to see the zero-allocation
// engine's win: the Table V regime — hundreds of small models — is
// where per-step gather and per-layer allocation dominated.
func BenchmarkTrainEpoch(b *testing.B) {
	train := benchBinomialDataset(512)
	val := benchBinomialDataset(64)
	shapes := []struct {
		name   string
		hidden []int
	}{
		{"h16", []int{16}},
		{"h64x32", []int{64, 32}},
		{"h128x64", []int{128, 64}},
	}
	for _, shape := range shapes {
		for _, opt := range []string{"adam", "sgd"} {
			b.Run(shape.name+"/"+opt, func(b *testing.B) {
				net := NewNetwork(11)
				prev := 5
				for _, h := range shape.hidden {
					net.Add(net.NewDense(prev, h), NewActivation(ActTanh))
					prev = h
				}
				net.Add(net.NewDense(prev, 1))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := net.Fit(train, val, TrainConfig{
						Epochs: 1, BatchSize: 32, LR: 1e-3,
						Optimizer: opt, Momentum: 0.9, Seed: int64(i),
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkConvIm2col measures a Conv1D training step (forward +
// backward) on a particlefilter-shaped input. Run it against the
// pre-im2col direct-loop kernel to see the blocked-MatMul win.
func BenchmarkConvIm2col(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(13)
	c := net.NewConv1D(4, 16, 5, 1)
	x := randTensor(rng, 32, 4, 128)
	g := randTensor(rng, 32, 16, 124)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Forward(x, true); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Backward(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerStep measures one optimizer step over a realistic
// parameter set (a 512x512 MLP's weights): per-param state slots and the
// parallel element loop vs the old map-keyed serial update.
func BenchmarkOptimizerStep(b *testing.B) {
	net := NewNetwork(17)
	net.Add(
		net.NewDense(512, 512), NewActivation(ActTanh),
		net.NewDense(512, 512), NewActivation(ActTanh),
		net.NewDense(512, 1),
	)
	params := net.Params()
	rng := rand.New(rand.NewSource(19))
	for _, p := range params {
		g := p.Grad.Data()
		for i := range g {
			g[i] = rng.NormFloat64()
		}
	}
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"adam", NewAdam(1e-3, 1e-4)},
		{"sgd-momentum", NewSGD(1e-3, 0.9, 1e-4)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			if err := tc.opt.Step(params); err != nil { // bind state
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tc.opt.Step(params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
