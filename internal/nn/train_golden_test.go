package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// The golden losses below were captured from the pre-arena trainer (the
// PR 1 code: per-sample Gather, hand-rolled Dense/Conv1D backward loops,
// map-keyed optimizer state) on the exact seeded runs performed here.
// They freeze the training semantics across the zero-allocation rewrite:
//
//   - Dense networks must reproduce them bit for bit — the transpose-
//     aware kernels accumulate in the same element order as the old
//     loops, so any drift is a real regression.
//   - Conv1D networks must reproduce them within a small relative
//     tolerance: im2col reduces each output in one flat (channel, tap)
//     sweep where the old kernel kept a per-channel accumulator, an
//     FP reassociation documented on the layer.
const (
	goldenDenseTol = 1e-12
	goldenConvTol  = 1e-6
)

var goldenFitLosses = map[string][2]float64{
	"mlp/adam":  {0.41323224205703285, 0.32756936237756895},
	"mlp/sgd":   {0.4352102348919657, 0.2773607446354554},
	"conv/adam": {0.5149884423831846, 0.9346438409527364},
	"conv/sgd":  {0.2539523119546706, 0.1837021214872698},
}

// goldenDataset builds the seeded synthetic regression set shared by the
// golden runs: a smooth nonlinear target over Gaussian features.
func goldenMLPData(t *testing.T) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(101))
	const n = 96
	x := tensor.New(n, 4)
	y := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			v := rng.NormFloat64()
			x.Set(v, i, j)
			s += v
		}
		y.Set(math.Sin(s), i, 0)
		y.Set(s*0.5, i, 1)
	}
	ds, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func goldenConvData(t *testing.T) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(103))
	const n = 64
	x := tensor.New(n, 2, 8)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		var s float64
		for c := 0; c < 2; c++ {
			for p := 0; p < 8; p++ {
				v := rng.NormFloat64()
				x.Set(v, i, c, p)
				s += v * float64(p+1)
			}
		}
		y.Set(math.Tanh(s/8), i, 0)
	}
	ds, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func checkGolden(t *testing.T, key string, h *History, tol float64) {
	t.Helper()
	want := goldenFitLosses[key]
	got := [2]float64{h.TrainLoss[len(h.TrainLoss)-1], h.ValLoss[len(h.ValLoss)-1]}
	for i, w := range want {
		if math.Abs(got[i]-w) > tol*(1+math.Abs(w)) {
			t.Errorf("%s loss[%d] = %.17g, golden %.17g (tol %g)", key, i, got[i], w, tol)
		}
	}
}

// TestFitGoldenLossesMLP pins Dense-network training (both optimizers)
// to the pre-rewrite trainer bit for bit.
func TestFitGoldenLossesMLP(t *testing.T) {
	for _, opt := range []string{"adam", "sgd"} {
		net := NewNetwork(7)
		net.Add(net.NewDense(4, 16), NewActivation(ActTanh), net.NewDense(16, 2))
		h, err := net.Fit(goldenMLPData(t), nil, TrainConfig{
			Epochs: 8, BatchSize: 32, LR: 1e-2, WeightDecay: 1e-3,
			Optimizer: opt, Momentum: 0.9, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "mlp/"+opt, h, goldenDenseTol)
	}
}

// TestFitGoldenLossesConv pins Conv1D-network training (both optimizers)
// to the pre-rewrite trainer within the documented im2col tolerance.
func TestFitGoldenLossesConv(t *testing.T) {
	for _, opt := range []string{"adam", "sgd"} {
		net := NewNetwork(9)
		net.Add(net.NewConv1D(2, 4, 3, 1), NewActivation(ActTanh), NewFlatten(), net.NewDense(4*6, 1))
		h, err := net.Fit(goldenConvData(t), nil, TrainConfig{
			Epochs: 8, BatchSize: 16, LR: 1e-2, WeightDecay: 1e-3,
			Optimizer: opt, Momentum: 0.9, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "conv/"+opt, h, goldenConvTol)
	}
}
