package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// This file is the variance-aware batched forward over model slots: the
// deep-ensemble uncertainty estimate (Lakshminarayanan et al.) that the
// runtime's EnsembleEngine builds on. Each member network — typically
// the same architecture trained with a different seed — predicts the
// whole batch; the ensemble mean is the prediction, and the spread
// across members is the per-row confidence score the trust gate
// consumes.

// EnsembleScratch holds the reusable accumulation buffers of
// ForwardEnsembleInto, so steady-state ensemble inference allocates
// nothing once the batch shape stabilizes. The zero value is ready to
// use; a nil scratch makes the call allocate fresh buffers.
type EnsembleScratch struct {
	member     *tensor.Tensor
	memberRows int
	memberCols int
	sum, sumSq []float64
}

// memberFor returns a [rows, cols] member-output tensor, rebuilding it
// only when the shape changed, and (re)sizes the accumulators.
func (s *EnsembleScratch) memberFor(rows, cols int) (*tensor.Tensor, []float64, []float64) {
	n := rows * cols
	if s.member == nil || s.memberRows != rows || s.memberCols != cols {
		s.member = tensor.New(rows, cols)
		s.memberRows, s.memberCols = rows, cols
	}
	if cap(s.sum) < n {
		s.sum = make([]float64, n)
		s.sumSq = make([]float64, n)
	}
	return s.member, s.sum[:n], s.sumSq[:n]
}

// ForwardEnsembleInto runs every member network over x in inference
// mode, writes the member-mean prediction into dst (a contiguous
// [rows, cols] tensor of the shared output shape), and, when rowVar is
// non-nil, fills rowVar[i] with row i's predictive variance: the
// population variance across members, averaged over the row's output
// features. rowVar must then have length rows. A single-member
// ensemble degenerates to ForwardInto with zero variance.
func ForwardEnsembleInto(nets []*Network, dst, x *tensor.Tensor, rowVar []float64, scr *EnsembleScratch) error {
	if len(nets) == 0 {
		return fmt.Errorf("nn: ensemble forward with no member networks")
	}
	if dst == nil || dst.Rank() != 2 || !dst.IsContiguous() {
		return fmt.Errorf("nn: ensemble forward wants a contiguous rank-2 dst")
	}
	rows, cols := dst.Dim(0), dst.Dim(1)
	if rowVar != nil && len(rowVar) != rows {
		return fmt.Errorf("nn: ensemble forward rowVar has %d slots for %d rows", len(rowVar), rows)
	}
	if len(nets) == 1 {
		if err := nets[0].ForwardInto(dst, x); err != nil {
			return err
		}
		for i := range rowVar {
			rowVar[i] = 0
		}
		return nil
	}
	if scr == nil {
		scr = &EnsembleScratch{}
	}
	member, sum, sumSq := scr.memberFor(rows, cols)
	for i := range sum {
		sum[i], sumSq[i] = 0, 0
	}
	for mi, net := range nets {
		if net == nil {
			return fmt.Errorf("nn: ensemble member %d is nil", mi)
		}
		if err := net.ForwardInto(member, x); err != nil {
			return fmt.Errorf("nn: ensemble member %d: %w", mi, err)
		}
		md := member.Data()
		for i, v := range md {
			sum[i] += v
			sumSq[i] += v * v
		}
	}
	m := float64(len(nets))
	dd := dst.Data()
	for i := range dd {
		dd[i] = sum[i] / m
	}
	if rowVar == nil {
		return nil
	}
	for r := 0; r < rows; r++ {
		var acc float64
		for c := 0; c < cols; c++ {
			i := r*cols + c
			mean := sum[i] / m
			v := sumSq[i]/m - mean*mean
			// Guard against NaN poisoning the gate: a member that emitted
			// NaN (or overflowed to Inf) makes the feature variance
			// non-finite, and the row must read as "maximally uncertain" —
			// never as "zero variance, below every threshold".
			if math.IsNaN(v) || math.IsInf(v, 1) {
				acc = math.Inf(1)
				break
			}
			if v > 0 { // clamp the tiny negative values of catastrophic cancellation
				acc += v
			}
		}
		rowVar[r] = acc / float64(cols)
		if math.IsNaN(rowVar[r]) {
			rowVar[r] = math.Inf(1)
		}
	}
	return nil
}
