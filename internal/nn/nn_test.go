package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return t
}

// numericalGradCheck compares analytic parameter and input gradients of a
// single-layer network against central finite differences.
func numericalGradCheck(t *testing.T, net *Network, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	outShape, err := net.OutShape(x.Shape()[1:])
	if err != nil {
		t.Fatalf("OutShape: %v", err)
	}
	target := randTensor(rng, append([]int{x.Dim(0)}, outShape...)...)
	loss := MSE{}

	lossAt := func() float64 {
		pred, err := net.Forward(x)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		v, err := loss.Value(pred, target)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		return v
	}

	// Analytic gradients.
	net.ZeroGrad()
	pred, err := net.ForwardTrain(x)
	if err != nil {
		t.Fatalf("forward train: %v", err)
	}
	grad, err := loss.Grad(pred, target)
	if err != nil {
		t.Fatalf("loss grad: %v", err)
	}
	if err := net.Backward(grad); err != nil {
		t.Fatalf("backward: %v", err)
	}

	const eps = 1e-6
	for _, p := range net.Params() {
		w := p.W.Data()
		g := p.Grad.Data()
		// Sample a few coordinates to keep the check fast.
		idxs := []int{0, len(w) / 2, len(w) - 1}
		for _, i := range idxs {
			orig := w[i]
			w[i] = orig + eps
			up := lossAt()
			w[i] = orig - eps
			down := lossAt()
			w[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-g[i]) > tol*(1+math.Abs(numeric)) {
				t.Errorf("param %s[%d]: analytic %g vs numeric %g", p.Name, i, g[i], numeric)
			}
		}
	}
}

func TestDenseForwardKnown(t *testing.T) {
	net := NewNetwork(1)
	d := net.NewDense(2, 2)
	// W = [[1,2],[3,4]], b = [10, 20]
	copy(d.Weight.W.Data(), []float64{1, 2, 3, 4})
	copy(d.Bias.W.Data(), []float64{10, 20})
	net.Add(d)
	x, _ := tensor.FromSlice([]float64{1, 1, 2, 0}, 2, 2)
	y, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// row0: [1*1+1*3+10, 1*2+1*4+20] = [14, 26]
	// row1: [2*1+0*3+10, 2*2+0*4+20] = [12, 24]
	want := []float64{14, 26, 12, 24}
	for i, w := range want {
		if got := y.Data()[i]; math.Abs(got-w) > 1e-12 {
			t.Fatalf("y[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(3)
	net.Add(net.NewDense(4, 3))
	numericalGradCheck(t, net, randTensor(rng, 5, 4), 1e-5)
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(5)
	net.Add(net.NewDense(3, 8), NewActivation(ActTanh), net.NewDense(8, 2), NewActivation(ActSigmoid))
	numericalGradCheck(t, net, randTensor(rng, 4, 3), 1e-4)
}

func TestReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(7)
	net.Add(net.NewDense(4, 6), NewActivation(ActReLU), net.NewDense(6, 1))
	numericalGradCheck(t, net, randTensor(rng, 3, 4), 1e-4)
}

func TestLeakyReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(9)
	net.Add(net.NewDense(4, 4), NewActivation(ActLeakyReLU), net.NewDense(4, 2))
	numericalGradCheck(t, net, randTensor(rng, 3, 4), 1e-4)
}

func TestConv1DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewNetwork(11)
	net.Add(net.NewConv1D(2, 3, 3, 2), NewActivation(ActTanh), NewFlatten(), net.NewDense(3*4, 2))
	// input [B, 2, 9] -> conv (k=3,s=2) -> [B, 3, 4]
	numericalGradCheck(t, net, randTensor(rng, 2, 2, 9), 1e-4)
}

func TestConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewNetwork(13)
	net.Add(net.NewConv2D(1, 2, 3, 3, 1), NewActivation(ActReLU), NewFlatten(), net.NewDense(2*4*4, 1))
	numericalGradCheck(t, net, randTensor(rng, 2, 1, 6, 6), 1e-4)
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(15)
	net.Add(net.NewConv2D(1, 2, 2, 2, 1), NewMaxPool2D(2), NewFlatten(), net.NewDense(2*2*2, 1))
	numericalGradCheck(t, net, randTensor(rng, 2, 1, 5, 5), 1e-4)
}

func TestMaxPool1DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net := NewNetwork(17)
	net.Add(net.NewConv1D(1, 2, 2, 1), NewMaxPool1D(2), NewFlatten(), net.NewDense(2*3, 1))
	numericalGradCheck(t, net, randTensor(rng, 2, 1, 7), 1e-4)
}

func TestConv1DKnownValues(t *testing.T) {
	net := NewNetwork(1)
	c := net.NewConv1D(1, 1, 2, 1)
	copy(c.Weight.W.Data(), []float64{1, -1})
	copy(c.Bias.W.Data(), []float64{0.5})
	net.Add(c)
	x, _ := tensor.FromSlice([]float64{1, 3, 2, 5}, 1, 1, 4)
	y, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1 - 3 + 0.5, 3 - 2 + 0.5, 2 - 5 + 0.5}
	for i, w := range want {
		if got := y.Data()[i]; math.Abs(got-w) > 1e-12 {
			t.Fatalf("y[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestMaxPool2DKnownValues(t *testing.T) {
	net := NewNetwork(1)
	net.Add(NewMaxPool2D(2))
	x, _ := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 0, 0,
		2, 6, 0, 3,
	}, 1, 1, 4, 4)
	y, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, 9, 3}
	for i, w := range want {
		if got := y.Data()[i]; got != w {
			t.Fatalf("pool[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	net := NewNetwork(21)
	net.Add(net.NewDropout(0.5))
	x := tensor.Full(1, 4, 100)
	// Inference: identity.
	y, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Contiguous().Data() {
		if v != 1 {
			t.Fatal("dropout must be identity at inference")
		}
	}
	// Training: some elements zeroed, survivors scaled by 2.
	yt, err := net.ForwardTrain(x)
	if err != nil {
		t.Fatal(err)
	}
	zeros, twos := 0, 0
	for _, v := range yt.Contiguous().Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %g", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatalf("dropout mask degenerate: %d zeros, %d twos", zeros, twos)
	}
}

func TestDropoutValidation(t *testing.T) {
	net := NewNetwork(1)
	net.Add(net.NewDropout(1.5))
	if _, err := net.OutShape([]int{3}); err == nil {
		t.Fatal("want error for dropout p >= 1")
	}
}

func TestOutShapeValidation(t *testing.T) {
	net := NewNetwork(1)
	net.Add(net.NewDense(4, 8), NewActivation(ActReLU), net.NewDense(8, 2))
	out, err := net.OutShape([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("out shape = %v", out)
	}
	if _, err := net.OutShape([]int{5}); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestCNNOutShape(t *testing.T) {
	net := NewNetwork(1)
	net.Add(net.NewConv2D(1, 4, 3, 3, 2), NewMaxPool2D(2), NewFlatten())
	out, err := net.OutShape([]int{1, 21, 21})
	if err != nil {
		t.Fatal(err)
	}
	// conv: (21-3)/2+1 = 10 -> pool: 5 -> flatten: 4*5*5 = 100
	if out[0] != 100 {
		t.Fatalf("flattened = %v, want [100]", out)
	}
}

func TestNumParamsAndSummary(t *testing.T) {
	net := NewNetwork(1)
	net.Add(net.NewDense(3, 4), net.NewDense(4, 2))
	want := 3*4 + 4 + 4*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if net.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestFLOPsPerSample(t *testing.T) {
	net := NewNetwork(1)
	net.Add(net.NewDense(10, 20), NewActivation(ActReLU), net.NewDense(20, 5))
	fl, err := net.FLOPsPerSample([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	if fl < 2*(10*20+20*5) {
		t.Fatalf("FLOPs = %d, too low", fl)
	}
}

func TestTrainLearnsLinearFunction(t *testing.T) {
	// y = 2x0 - 3x1 + 1 is exactly representable: training must reach
	// near-zero loss quickly.
	rng := rand.New(rand.NewSource(31))
	n := 256
	x := randTensor(rng, n, 2)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		y.Set(2*x.At(i, 0)-3*x.At(i, 1)+1, i, 0)
	}
	ds, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(33)
	net.Add(net.NewDense(2, 1))
	h, err := net.Fit(ds, nil, TrainConfig{Epochs: 200, BatchSize: 32, LR: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.BestVal > 1e-3 {
		t.Fatalf("linear fit did not converge: best val loss %g", h.BestVal)
	}
}

func TestTrainLearnsNonlinearFunction(t *testing.T) {
	// y = sin(x) on [-2, 2] with a small MLP.
	rng := rand.New(rand.NewSource(41))
	n := 512
	x := tensor.New(n, 1)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		v := rng.Float64()*4 - 2
		x.Set(v, i, 0)
		y.Set(math.Sin(v), i, 0)
	}
	ds, _ := NewDataset(x, y)
	net := NewNetwork(43)
	net.Add(net.NewDense(1, 32), NewActivation(ActTanh), net.NewDense(32, 1))
	h, err := net.Fit(ds, nil, TrainConfig{Epochs: 150, BatchSize: 64, LR: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.BestVal > 5e-3 {
		t.Fatalf("sin fit did not converge: best val loss %g", h.BestVal)
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 64
	x := randTensor(rng, n, 2)
	y := randTensor(rng, n, 1) // pure noise: no signal to learn
	ds, _ := NewDataset(x, y)
	net := NewNetwork(53)
	net.Add(net.NewDense(2, 4), NewActivation(ActReLU), net.NewDense(4, 1))
	h, err := net.Fit(ds, nil, TrainConfig{Epochs: 500, BatchSize: 16, LR: 0.01, Seed: 3, Patience: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Stopped {
		t.Fatal("expected early stopping on noise")
	}
	if len(h.ValLoss) >= 500 {
		t.Fatal("early stopping did not shorten training")
	}
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ds, _ := NewDataset(randTensor(rng, 16, 2), randTensor(rng, 16, 1))
	net := NewNetwork(1)
	net.Add(net.NewDense(2, 1))
	if _, err := net.Fit(ds, nil, TrainConfig{Epochs: 0}); err == nil {
		t.Fatal("want error for zero epochs")
	}
	if _, err := net.Fit(ds, nil, TrainConfig{Epochs: 1, Optimizer: "quantum"}); err == nil {
		t.Fatal("want error for unknown optimizer")
	}
}

func TestDatasetSplitAndGather(t *testing.T) {
	x := tensor.New(10, 2)
	y := tensor.New(10, 1)
	for i := 0; i < 10; i++ {
		x.Set(float64(i), i, 0)
		y.Set(float64(i), i, 0)
	}
	ds, _ := NewDataset(x, y)
	a, b, err := ds.Split(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 7 || b.Len() != 3 {
		t.Fatalf("split sizes %d/%d", a.Len(), b.Len())
	}
	if b.X.At(0, 0) != 7 {
		t.Fatalf("second split starts at %g", b.X.At(0, 0))
	}
	g, err := ds.Gather([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.X.At(0, 0) != 3 || g.X.At(1, 0) != 1 {
		t.Fatal("gather wrong order")
	}
	if _, err := ds.Gather([]int{99}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, _, err := ds.Split(0); err == nil {
		t.Fatal("want bad fraction error")
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(tensor.New(3, 2), tensor.New(4, 1)); err == nil {
		t.Fatal("want sample count mismatch error")
	}
	if _, err := NewDataset(tensor.New(3), tensor.New(3, 1)); err == nil {
		t.Fatal("want rank error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gmod")

	net := NewNetwork(71)
	net.Add(
		net.NewConv2D(1, 3, 3, 3, 1),
		NewActivation(ActReLU),
		NewMaxPool2D(2),
		NewFlatten(),
		net.NewDense(3*3*3, 8),
		NewActivation(ActTanh),
		net.NewDropout(0.25),
		net.NewDense(8, 2),
	)
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != net.NumParams() {
		t.Fatalf("param counts differ: %d vs %d", loaded.NumParams(), net.NumParams())
	}
	rng := rand.New(rand.NewSource(73))
	x := randTensor(rng, 3, 1, 8, 8)
	y1, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	a, b := y1.Data(), y2.Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs after reload: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestLoadCorruptedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.gmod")
	if err := os.WriteFile(path, []byte("this is not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("want error for corrupted model file")
	}
	if _, err := Load(filepath.Join(dir, "missing.gmod")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestLoadTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gmod")
	net := NewNetwork(81)
	net.Add(net.NewDense(4, 4))
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.gmod")
	if err := os.WriteFile(trunc, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc); err == nil {
		t.Fatal("want error for truncated model file")
	}
}

func TestLossValues(t *testing.T) {
	p, _ := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	q, _ := tensor.FromSlice([]float64{0, 2, 5}, 1, 3)
	mse, err := MSE{}.Value(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mse-(1.0+0+4)/3) > 1e-12 {
		t.Fatalf("mse = %g", mse)
	}
	mae, err := MAE{}.Value(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mae-1) > 1e-12 {
		t.Fatalf("mae = %g", mae)
	}
	if _, err := (MSE{}).Value(p, tensor.New(2, 2)); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestMAEGradSigns(t *testing.T) {
	p, _ := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	q, _ := tensor.FromSlice([]float64{0, 2, 5}, 1, 3)
	g, err := MAE{}.Grad(p, q)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Data()
	if d[0] <= 0 || d[1] != 0 || d[2] >= 0 {
		t.Fatalf("mae grad = %v", d)
	}
}

func TestSGDMomentumStep(t *testing.T) {
	net := NewNetwork(1)
	d := net.NewDense(1, 1)
	net.Add(d)
	d.Weight.W.Data()[0] = 1
	d.Weight.Grad.Data()[0] = 1
	d.Bias.Grad.Data()[0] = 0
	opt := NewSGD(0.1, 0.9, 0)
	if err := opt.Step(net.Params()); err != nil {
		t.Fatal(err)
	}
	if got := d.Weight.W.Data()[0]; math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("after step 1: %g, want 0.9", got)
	}
	// Momentum accumulates: velocity = 0.9*1 + 1 = 1.9.
	d.Weight.Grad.Data()[0] = 1
	if err := opt.Step(net.Params()); err != nil {
		t.Fatal(err)
	}
	if got := d.Weight.W.Data()[0]; math.Abs(got-(0.9-0.19)) > 1e-12 {
		t.Fatalf("after step 2: %g, want 0.71", got)
	}
}

func TestOptimizerValidation(t *testing.T) {
	if err := NewSGD(0, 0, 0).Step(nil); err == nil {
		t.Fatal("want lr error")
	}
	if err := NewAdam(-1, 0).Step(nil); err == nil {
		t.Fatal("want lr error")
	}
}

func TestBackwardWithoutForwardFails(t *testing.T) {
	net := NewNetwork(1)
	net.Add(net.NewDense(2, 2))
	if err := net.Backward(tensor.New(1, 2)); err == nil {
		t.Fatal("want error for backward without cached forward")
	}
}

// Property: save/load round-trips preserve forward outputs exactly for
// random MLP architectures.
func TestPropSaveLoadPreservesOutputs(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := 1 + rng.Intn(6)
		hidden := 1 + rng.Intn(16)
		out := 1 + rng.Intn(4)
		net := NewNetwork(seed)
		acts := []string{ActReLU, ActTanh, ActSigmoid, ActLeakyReLU}
		net.Add(net.NewDense(in, hidden), NewActivation(acts[rng.Intn(len(acts))]), net.NewDense(hidden, out))
		path := filepath.Join(dir, "prop.gmod")
		if err := net.Save(path); err != nil {
			return false
		}
		loaded, err := Load(path)
		if err != nil {
			return false
		}
		x := randTensor(rng, 1+rng.Intn(4), in)
		y1, err := net.Forward(x)
		if err != nil {
			return false
		}
		y2, err := loaded.Forward(x)
		if err != nil {
			return false
		}
		a, b := y1.Data(), y2.Data()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: inference is deterministic — two forward passes agree.
func TestPropForwardDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := NewNetwork(seed)
		net.Add(net.NewDense(3, 8), NewActivation(ActTanh), net.NewDropout(0.5), net.NewDense(8, 2))
		x := randTensor(rng, 4, 3)
		y1, err := net.Forward(x)
		if err != nil {
			return false
		}
		y2, err := net.Forward(x)
		if err != nil {
			return false
		}
		a, b := y1.Data(), y2.Data()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorIO(t *testing.T) {
	net := NewNetwork(1)
	net.Add(net.NewDense(7, 16), NewActivation(ActTanh), net.NewDense(16, 3))
	in, out, err := net.VectorIO()
	if err != nil || in != 7 || out != 3 {
		t.Fatalf("VectorIO = %d, %d, %v; want 7, 3, nil", in, out, err)
	}

	// A leading ChannelAffine (the standardization wrapper) pins the
	// width through its block structure.
	wrapped := NewNetwork(4)
	wrapped.Add(
		NewChannelAffine(1, []float64{1, 2, 3}, nil),
		wrapped.NewDense(3, 8), NewActivation(ActReLU), wrapped.NewDense(8, 2),
		NewChannelAffine(1, []float64{5, 7}, nil),
	)
	if in, out, err := wrapped.VectorIO(); err != nil || in != 3 || out != 2 {
		t.Fatalf("VectorIO = %d, %d, %v; want 3, 2, nil", in, out, err)
	}

	// Conv-first networks can't self-describe their input width.
	cnn := NewNetwork(2)
	cnn.Add(cnn.NewConv1D(1, 2, 3, 1), NewFlatten(), cnn.NewDense(12, 1))
	if _, _, err := cnn.VectorIO(); err == nil {
		t.Fatal("want error for conv-first network")
	}
	if _, _, err := NewNetwork(3).VectorIO(); err == nil {
		t.Fatal("want error for empty network")
	}
}
