package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// The .gmod format stands in for TorchScript archives: a self-describing
// binary file a runtime can load by path (the model() clause) without any
// knowledge of how the model was built.
//
// Layout (little-endian):
//
//	magic   uint32  'GMOD'
//	version uint32
//	nLayers uint32
//	per layer:
//	  kind    string      (uint32 length + bytes)
//	  nInts   uint32, ints    []int64
//	  nFloats uint32, floats  []float64
//	  nParams uint32
//	  per param:
//	    name  string
//	    rank  uint32, shape []int64
//	    data  []float64
const (
	gmodMagic   = 0x474d4f44 // "GMOD"
	gmodVersion = 1
)

// layerSpec is the serializable description of a layer's configuration.
type layerSpec struct {
	Kind   string
	Ints   []int
	Floats []float64
}

// Save writes the network to path in .gmod format.
func (n *Network) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := n.Encode(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// containerLayer is implemented by layers that hold a sub-network
// (Residual); the serializer recurses into them.
type containerLayer interface {
	subNetwork() *Network
}

// Encode writes the network's .gmod representation to w.
func (n *Network) Encode(w io.Writer) error {
	if err := writeU32(w, gmodMagic); err != nil {
		return err
	}
	if err := writeU32(w, gmodVersion); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(n.Layers))); err != nil {
		return err
	}
	for _, e := range n.Layers {
		if err := encodeLayer(w, e.Layer); err != nil {
			return err
		}
	}
	return nil
}

func encodeLayer(w io.Writer, l Layer) error {
	sp := l.spec()
	if err := writeString(w, sp.Kind); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(sp.Ints))); err != nil {
		return err
	}
	for _, v := range sp.Ints {
		if err := writeI64(w, int64(v)); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(sp.Floats))); err != nil {
		return err
	}
	for _, v := range sp.Floats {
		if err := writeF64(w, v); err != nil {
			return err
		}
	}
	// Containers store their parameters inside their sub-layers.
	if c, ok := l.(containerLayer); ok {
		if err := writeU32(w, 0); err != nil {
			return err
		}
		sub := c.subNetwork()
		if err := writeU32(w, uint32(len(sub.Layers))); err != nil {
			return err
		}
		for _, e := range sub.Layers {
			if err := encodeLayer(w, e.Layer); err != nil {
				return err
			}
		}
		return nil
	}
	params := l.Params()
	if err := writeU32(w, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := writeU32(w, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := writeI64(w, int64(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data() {
			if err := writeF64(w, v); err != nil {
				return err
			}
		}
	}
	return writeU32(w, 0) // no sub-layers
}

// Load reads a .gmod model from path.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	defer f.Close()
	n, err := Decode(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	return n, nil
}

// Decode reads a .gmod representation from r.
func Decode(r io.Reader) (*Network, error) {
	magic, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if magic != gmodMagic {
		return nil, fmt.Errorf("bad magic %#x: not a .gmod model", magic)
	}
	version, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if version != gmodVersion {
		return nil, fmt.Errorf("unsupported .gmod version %d", version)
	}
	nLayers, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nLayers > 1<<16 {
		return nil, fmt.Errorf("implausible layer count %d", nLayers)
	}
	net := NewNetwork(0)
	for li := uint32(0); li < nLayers; li++ {
		layer, err := decodeLayer(r, net, 0)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", li, err)
		}
		net.Add(layer)
	}
	return net, nil
}

// decodeLayer reads one serialized layer (recursing into containers).
func decodeLayer(r io.Reader, net *Network, depth int) (Layer, error) {
	if depth > 8 {
		return nil, fmt.Errorf("container nesting too deep")
	}
	kind, err := readString(r)
	if err != nil {
		return nil, err
	}
	nInts, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nInts > 64 {
		return nil, fmt.Errorf("implausible int config count %d", nInts)
	}
	ints := make([]int, nInts)
	for i := range ints {
		v, err := readI64(r)
		if err != nil {
			return nil, err
		}
		ints[i] = int(v)
	}
	nFloats, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nFloats > 4096 {
		return nil, fmt.Errorf("implausible float config count %d", nFloats)
	}
	floats := make([]float64, nFloats)
	for i := range floats {
		if floats[i], err = readF64(r); err != nil {
			return nil, err
		}
	}
	layer, err := buildLayer(net, layerSpec{Kind: kind, Ints: ints, Floats: floats})
	if err != nil {
		return nil, err
	}
	nParams, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if _, isContainer := layer.(containerLayer); !isContainer {
		params := layer.Params()
		if int(nParams) != len(params) {
			return nil, fmt.Errorf("layer %s: file has %d params, layer wants %d", kind, nParams, len(params))
		}
		for pi, p := range params {
			name, err := readString(r)
			if err != nil {
				return nil, err
			}
			if name != p.Name {
				return nil, fmt.Errorf("param %d: name %q, want %q", pi, name, p.Name)
			}
			rank, err := readU32(r)
			if err != nil {
				return nil, err
			}
			if rank > 8 {
				return nil, fmt.Errorf("implausible param rank %d", rank)
			}
			shape := make([]int, rank)
			count := 1
			for i := range shape {
				v, err := readI64(r)
				if err != nil {
					return nil, err
				}
				if v < 0 || v > 1<<24 {
					return nil, fmt.Errorf("implausible dim %d", v)
				}
				shape[i] = int(v)
				count *= shape[i]
			}
			want := p.W.Shape()
			if len(shape) != len(want) {
				return nil, fmt.Errorf("param %q: rank %d, want %d", name, rank, len(want))
			}
			for i := range shape {
				if shape[i] != want[i] {
					return nil, fmt.Errorf("param %q: shape %v, want %v", name, shape, want)
				}
			}
			data := p.W.Data()
			for i := 0; i < count; i++ {
				if data[i], err = readF64(r); err != nil {
					return nil, err
				}
			}
		}
	} else if nParams != 0 {
		return nil, fmt.Errorf("container %s with inline params", kind)
	}
	nSub, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nSub > 1<<12 {
		return nil, fmt.Errorf("implausible sub-layer count %d", nSub)
	}
	if c, ok := layer.(containerLayer); ok {
		sub := c.subNetwork()
		for si := uint32(0); si < nSub; si++ {
			sl, err := decodeLayer(r, sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("sub-layer %d: %w", si, err)
			}
			sub.Add(sl)
		}
	} else if nSub != 0 {
		return nil, fmt.Errorf("non-container %s with sub-layers", kind)
	}
	return layer, nil
}

// buildLayer reconstructs a layer from its serialized spec.
func buildLayer(net *Network, sp layerSpec) (Layer, error) {
	wantInts := func(n int) error {
		if len(sp.Ints) != n {
			return fmt.Errorf("%s wants %d int configs, got %d", sp.Kind, n, len(sp.Ints))
		}
		return nil
	}
	switch {
	case sp.Kind == "dense":
		if err := wantInts(2); err != nil {
			return nil, err
		}
		return net.NewDense(sp.Ints[0], sp.Ints[1]), nil
	case sp.Kind == "conv1d":
		if err := wantInts(4); err != nil {
			return nil, err
		}
		return net.NewConv1D(sp.Ints[0], sp.Ints[1], sp.Ints[2], sp.Ints[3]), nil
	case sp.Kind == "conv2d":
		if err := wantInts(5); err != nil {
			return nil, err
		}
		return net.NewConv2D(sp.Ints[0], sp.Ints[1], sp.Ints[2], sp.Ints[3], sp.Ints[4]), nil
	case sp.Kind == "maxpool1d":
		if err := wantInts(1); err != nil {
			return nil, err
		}
		return NewMaxPool1D(sp.Ints[0]), nil
	case sp.Kind == "maxpool2d":
		if err := wantInts(1); err != nil {
			return nil, err
		}
		return NewMaxPool2D(sp.Ints[0]), nil
	case sp.Kind == "flatten":
		return NewFlatten(), nil
	case sp.Kind == "residual":
		return NewResidual(NewNetwork(net.rng.Int63())), nil
	case sp.Kind == "affine":
		if len(sp.Floats) != 2 {
			return nil, fmt.Errorf("affine wants 2 float configs")
		}
		return NewAffine(sp.Floats[0], sp.Floats[1]), nil
	case sp.Kind == "chanaffine":
		if len(sp.Ints) != 1 || len(sp.Floats) == 0 || len(sp.Floats)%2 != 0 {
			return nil, fmt.Errorf("channel affine wants 1 int and 2k float configs")
		}
		k := len(sp.Floats) / 2
		return NewChannelAffine(sp.Ints[0], sp.Floats[:k], sp.Floats[k:]), nil
	case sp.Kind == "dropout":
		if len(sp.Floats) != 1 {
			return nil, fmt.Errorf("dropout wants 1 float config")
		}
		return net.NewDropout(sp.Floats[0]), nil
	case len(sp.Kind) > 4 && sp.Kind[:4] == "act:":
		fn := sp.Kind[4:]
		if !validActivation(fn) {
			return nil, fmt.Errorf("unknown activation %q", fn)
		}
		return NewActivation(fn), nil
	default:
		return nil, fmt.Errorf("unknown layer kind %q", sp.Kind)
	}
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeI64(w io.Writer, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	_, err := w.Write(buf[:])
	return err
}

func writeF64(w io.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := w.Write(buf[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readI64(r io.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func readF64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
