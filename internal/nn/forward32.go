package nn

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Forward32 is a single-precision inference program compiled from a
// Network once: dense weights and biases are converted to flat float32
// slabs at construction, and batches then run start-to-finish in
// float32 — half the memory traffic and twice the SIMD lanes of the
// float64 path, with no per-batch conversion of the model. It exists
// for the serving hot path (hpacml.LocalEngine's f32 option); training
// and the default inference path stay float64.
//
// The compiled program snapshots the network's weights: after a
// parameter update or hot reload, build a new Forward32. NewForward32
// compiles vector models — the layer set the registry's MLP surrogates
// use (Dense, activations, Affine, ChannelAffine, and the
// inference-identity Dropout and Flatten); NewForward32Shaped
// additionally compiles conv models (Conv1D, Conv2D, MaxPool1D,
// MaxPool2D) given the per-sample input shape. Anything else (residual
// blocks) fails both and the caller keeps the float64 path. A Forward32
// is safe for concurrent use; per-call state lives in pooled scratch.
type Forward32 struct {
	inDim, outDim int
	ops           []op32
	scratch       sync.Pool // *f32Scratch
	conv          sync.Pool // *convScratch32
}

// op32 kinds.
const (
	op32Dense = iota
	op32Act
	op32Affine
	op32ChanAffine
)

type op32 struct {
	kind           int
	inCols         int
	outCols        int
	w, b           []float32 // dense: [in, out] weights, [out] bias
	fn             string    // activation kind
	scale, shift   float32   // affine
	blockLen       int       // channel affine
	scales, shifts []float32
	conv           *conv32 // conv/pool geometry (shape-aware programs only)
}

type f32Scratch struct {
	bufs [2][]float32
	// aux holds the conv im2col patch matrix and pre-transpose output;
	// unused (never allocated) by pure-MLP programs.
	aux [2][]float32
}

type convScratch32 struct {
	in, out []float32
}

// NewForward32 compiles net into a float32 inference program,
// converting its weights once. It fails on networks the float32 path
// does not support; callers treat that as "stay on float64", not as a
// hard error.
func NewForward32(net *Network) (*Forward32, error) {
	in, out, err := net.VectorIO()
	if err != nil {
		return nil, fmt.Errorf("nn: f32 path: %w", err)
	}
	f := &Forward32{inDim: in, outDim: out}
	f.scratch.New = func() any { return new(f32Scratch) }
	f.conv.New = func() any { return new(convScratch32) }
	cols := in
	for i, e := range net.Layers {
		switch l := e.Layer.(type) {
		case *Dense:
			if l.In != cols {
				return nil, fmt.Errorf("nn: f32 path: layer %d (%s) wants width %d, have %d", i, l.Kind(), l.In, cols)
			}
			f.ops = append(f.ops, op32{kind: op32Dense, inCols: cols, outCols: l.Out,
				w: toF32(l.Weight.W.Contiguous().Data()), b: toF32(l.Bias.W.Contiguous().Data())})
			cols = l.Out
		case *Activation:
			if !validActivation(l.Fn) {
				return nil, fmt.Errorf("nn: f32 path: layer %d: unknown activation %q", i, l.Fn)
			}
			f.ops = append(f.ops, op32{kind: op32Act, inCols: cols, outCols: cols, fn: l.Fn})
		case *Affine:
			f.ops = append(f.ops, op32{kind: op32Affine, inCols: cols, outCols: cols,
				scale: float32(l.Scale), shift: float32(l.Shift)})
		case *ChannelAffine:
			if l.BlockLen <= 0 || len(l.Scales) != len(l.Shifts) || cols != l.BlockLen*len(l.Scales) {
				return nil, fmt.Errorf("nn: f32 path: layer %d (%s) does not fit width %d", i, l.Kind(), cols)
			}
			f.ops = append(f.ops, op32{kind: op32ChanAffine, inCols: cols, outCols: cols,
				blockLen: l.BlockLen, scales: toF32(l.Scales), shifts: toF32(l.Shifts)})
		case *Dropout, *Flatten:
			// Identity at inference on [rows, cols] vectors.
		default:
			return nil, fmt.Errorf("nn: f32 path does not support layer %d (%s)", i, e.Layer.Kind())
		}
	}
	if cols != out {
		return nil, fmt.Errorf("nn: f32 path: compiled width %d, VectorIO says %d", cols, out)
	}
	if len(f.ops) == 0 {
		return nil, fmt.Errorf("nn: f32 path: network has no compilable ops")
	}
	return f, nil
}

// InDim returns the per-sample input width.
func (f *Forward32) InDim() int { return f.inDim }

// OutDim returns the per-sample output width.
func (f *Forward32) OutDim() int { return f.outDim }

// Forward runs the compiled program on a row-major [rows, InDim] f32
// slab, writing the [rows, OutDim] result into dst. Intermediates live
// in pooled ping-pong buffers; steady state allocates nothing.
func (f *Forward32) Forward(dst, x []float32, rows int) error {
	if rows < 0 || len(x) != rows*f.inDim {
		return fmt.Errorf("nn: f32 forward input %d floats, want [%d, %d]", len(x), rows, f.inDim)
	}
	if len(dst) != rows*f.outDim {
		return fmt.Errorf("nn: f32 forward dst %d floats, want [%d, %d]", len(dst), rows, f.outDim)
	}
	s := f.scratch.Get().(*f32Scratch)
	defer f.scratch.Put(s)
	cur := x
	slot := 0
	for i := range f.ops {
		op := &f.ops[i]
		out := dst
		if i < len(f.ops)-1 {
			need := rows * op.outCols
			if cap(s.bufs[slot]) < need {
				s.bufs[slot] = make([]float32, need)
			}
			out = s.bufs[slot][:need]
			slot ^= 1
		}
		if err := op.run(out, cur, rows, s); err != nil {
			return err
		}
		cur = out
	}
	return nil
}

// ForwardFloat64 is Forward with float64 staging on both ends: the
// input slab is converted to f32 once, the batch runs in single
// precision, and the result is widened into dst. This is the seam the
// engine layer uses — region staging tensors stay float64, the compute
// does not.
func (f *Forward32) ForwardFloat64(dst, x []float64, rows int) error {
	if rows < 0 || len(x) != rows*f.inDim || len(dst) != rows*f.outDim {
		return fmt.Errorf("nn: f32 forward input %d -> dst %d floats, want [%d, %d] -> [%d, %d]",
			len(x), len(dst), rows, f.inDim, rows, f.outDim)
	}
	cs := f.conv.Get().(*convScratch32)
	defer f.conv.Put(cs)
	if cap(cs.in) < len(x) {
		cs.in = make([]float32, len(x))
	}
	cs.in = cs.in[:len(x)]
	for i, v := range x {
		cs.in[i] = float32(v)
	}
	if cap(cs.out) < len(dst) {
		cs.out = make([]float32, len(dst))
	}
	cs.out = cs.out[:len(dst)]
	if err := f.Forward(cs.out, cs.in, rows); err != nil {
		return err
	}
	for i, v := range cs.out {
		dst[i] = float64(v)
	}
	return nil
}

func (op *op32) run(dst, x []float32, rows int, s *f32Scratch) error {
	switch op.kind {
	case op32Dense:
		if err := tensor.MatMulInto32(dst, x, op.w, rows, op.inCols, op.outCols); err != nil {
			return err
		}
		addBias32(dst, op.b, rows, op.outCols)
	case op32Act:
		applyElemwise32(dst, x, op.fn)
	case op32Affine:
		for i, v := range x {
			dst[i] = op.scale*v + op.shift
		}
	case op32ChanAffine:
		per := op.inCols
		for i, v := range x {
			b := (i % per) / op.blockLen
			dst[i] = op.scales[b]*v + op.shifts[b]
		}
	case op32Conv1:
		return op.conv.runConv1(dst, x, rows, s)
	case op32Conv2:
		op.conv.runConv2(dst, x, rows)
	case op32Pool1:
		op.conv.runPool1(dst, x, rows)
	case op32Pool2:
		op.conv.runPool2(dst, x, rows)
	}
	return nil
}

func addBias32(dst, bias []float32, rows, cols int) {
	for r := 0; r < rows; r++ {
		row := dst[r*cols : (r+1)*cols]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// applyElemwise32 maps the activation over x into dst (which may alias
// x), mirroring applyElemwise's serial/parallel split. relu and
// leakyrelu stay in f32; tanh and sigmoid route through the float64
// stdlib transcendentals per element — still a win, the surrounding
// traffic is all f32.
func applyElemwise32(dst, x []float32, fn string) {
	f := act32(fn)
	if len(dst) < elemwiseParMin {
		for i := range dst {
			dst[i] = f(x[i])
		}
		return
	}
	parallel.ForChunked(len(dst), elemwiseParMin, func(i int) { dst[i] = f(x[i]) })
}

func act32(fn string) func(float32) float32 {
	switch fn {
	case ActReLU:
		return func(v float32) float32 {
			if v > 0 {
				return v
			}
			return 0
		}
	case ActTanh:
		return func(v float32) float32 { return float32(math.Tanh(float64(v))) }
	case ActSigmoid:
		return func(v float32) float32 { return float32(1 / (1 + math.Exp(float64(-v)))) }
	case ActLeakyReLU:
		return func(v float32) float32 {
			if v > 0 {
				return v
			}
			return 0.01 * v
		}
	}
	return func(v float32) float32 { return v }
}

func toF32(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}
