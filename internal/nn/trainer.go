package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset pairs model inputs with regression targets. X and Y share their
// leading (sample) dimension.
type Dataset struct {
	X *tensor.Tensor
	Y *tensor.Tensor
}

// NewDataset validates and constructs a dataset.
func NewDataset(x, y *tensor.Tensor) (*Dataset, error) {
	if x.Rank() < 2 || y.Rank() < 2 {
		return nil, fmt.Errorf("nn: dataset wants rank >= 2 tensors, got %v and %v", x.Shape(), y.Shape())
	}
	if x.Dim(0) != y.Dim(0) {
		return nil, fmt.Errorf("nn: dataset sample counts differ: %d vs %d", x.Dim(0), y.Dim(0))
	}
	return &Dataset{X: x.Contiguous(), Y: y.Contiguous()}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Dim(0) }

// Split partitions the dataset into a leading fraction and the remainder
// (paper §V-B: training/validation set plus a held-out test set).
func (d *Dataset) Split(frac float64) (*Dataset, *Dataset, error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("nn: split fraction %g out of (0,1)", frac)
	}
	n := d.Len()
	k := int(float64(n) * frac)
	if k == 0 || k == n {
		return nil, nil, fmt.Errorf("nn: split of %d samples at %g leaves an empty side", n, frac)
	}
	xa, err := d.X.Narrow(0, 0, k)
	if err != nil {
		return nil, nil, err
	}
	xb, err := d.X.Narrow(0, k, n-k)
	if err != nil {
		return nil, nil, err
	}
	ya, err := d.Y.Narrow(0, 0, k)
	if err != nil {
		return nil, nil, err
	}
	yb, err := d.Y.Narrow(0, k, n-k)
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{X: xa, Y: ya}, &Dataset{X: xb, Y: yb}, nil
}

// Shuffle permutes the samples in place-order (returns a reordered copy)
// with the given seed.
func (d *Dataset) Shuffle(seed int64) (*Dataset, error) {
	n := d.Len()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	return d.Gather(perm)
}

// Gather returns a dataset of the given sample indices (a copy).
func (d *Dataset) Gather(idx []int) (*Dataset, error) {
	xs := make([]*tensor.Tensor, len(idx))
	ys := make([]*tensor.Tensor, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, fmt.Errorf("nn: gather index %d out of range [0,%d)", j, d.Len())
		}
		xv, err := d.X.Index(0, j)
		if err != nil {
			return nil, err
		}
		yv, err := d.Y.Index(0, j)
		if err != nil {
			return nil, err
		}
		xs[i], ys[i] = xv, yv
	}
	x, err := tensor.Stack(0, xs...)
	if err != nil {
		return nil, err
	}
	y, err := tensor.Stack(0, ys...)
	if err != nil {
		return nil, err
	}
	return &Dataset{X: x, Y: y}, nil
}

// Batch returns samples [lo, hi) as views.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, *tensor.Tensor, error) {
	x, err := d.X.Narrow(0, lo, hi-lo)
	if err != nil {
		return nil, nil, err
	}
	y, err := d.Y.Narrow(0, lo, hi-lo)
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// TrainConfig controls Fit. The fields mirror the paper's hyperparameter
// search space (Table V): learning rate, weight decay, dropout (a model
// property), and batch size.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	WeightDecay float64
	Optimizer   string // "adam" (default) or "sgd"
	Momentum    float64
	Loss        Loss // default MSE
	Seed        int64
	// Patience stops training after this many epochs without validation
	// improvement; 0 disables early stopping.
	Patience int
	// ValFrac carves a validation split from the training data when a
	// separate validation set is not given to Fit.
	ValFrac float64
	Verbose func(epoch int, trainLoss, valLoss float64)
}

// History records per-epoch losses.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	BestVal   float64
	BestEpoch int
	Stopped   bool // true if early stopping triggered
}

// Fit trains the network on train, validating on val (which may be nil:
// then ValFrac of train is held out). It returns the training history;
// the network holds the final-epoch weights.
func (n *Network) Fit(train, val *Dataset, cfg TrainConfig) (*History, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("nn: fit wants positive epochs, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.Loss == nil {
		cfg.Loss = MSE{}
	}
	if val == nil {
		frac := cfg.ValFrac
		if frac == 0 {
			frac = 0.8
		}
		shuffled, err := train.Shuffle(cfg.Seed)
		if err != nil {
			return nil, err
		}
		if train, val, err = shuffled.Split(frac); err != nil {
			return nil, err
		}
	}
	var opt Optimizer
	switch cfg.Optimizer {
	case "", "adam":
		opt = NewAdam(cfg.LR, cfg.WeightDecay)
	case "sgd":
		opt = NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", cfg.Optimizer)
	}

	h := &History{BestVal: math.Inf(1)}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	nSamples := train.Len()
	stale := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(nSamples)
		var epochLoss float64
		var batches int
		for lo := 0; lo < nSamples; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > nSamples {
				hi = nSamples
			}
			mb, err := train.Gather(perm[lo:hi])
			if err != nil {
				return nil, err
			}
			n.ZeroGrad()
			pred, err := n.ForwardTrain(mb.X)
			if err != nil {
				return nil, err
			}
			loss, err := cfg.Loss.Value(pred, mb.Y)
			if err != nil {
				return nil, err
			}
			grad, err := cfg.Loss.Grad(pred, mb.Y)
			if err != nil {
				return nil, err
			}
			if err := n.Backward(grad); err != nil {
				return nil, err
			}
			if err := opt.Step(n.Params()); err != nil {
				return nil, err
			}
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		valLoss, err := n.Evaluate(val, cfg.Loss)
		if err != nil {
			return nil, err
		}
		h.TrainLoss = append(h.TrainLoss, epochLoss)
		h.ValLoss = append(h.ValLoss, valLoss)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, epochLoss, valLoss)
		}
		if valLoss < h.BestVal {
			h.BestVal = valLoss
			h.BestEpoch = epoch
			stale = 0
		} else {
			stale++
			if cfg.Patience > 0 && stale >= cfg.Patience {
				h.Stopped = true
				break
			}
		}
	}
	return h, nil
}

// Evaluate returns the mean loss over a dataset in inference mode.
func (n *Network) Evaluate(d *Dataset, loss Loss) (float64, error) {
	if loss == nil {
		loss = MSE{}
	}
	pred, err := n.Forward(d.X)
	if err != nil {
		return 0, err
	}
	return loss.Value(pred, d.Y)
}
