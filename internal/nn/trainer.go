package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// ErrTrainingStopped is returned by Fit when TrainConfig.Stop requested
// an abort. The network holds whatever weights the last completed
// optimizer step left behind — callers that need an intact model must
// discard it (the continuous-learning controller does exactly that on
// shutdown, so a partially-trained candidate is never gated or
// published).
var ErrTrainingStopped = errors.New("nn: training stopped")

// Dataset pairs model inputs with regression targets. X and Y share their
// leading (sample) dimension.
type Dataset struct {
	X *tensor.Tensor
	Y *tensor.Tensor
}

// NewDataset validates and constructs a dataset.
func NewDataset(x, y *tensor.Tensor) (*Dataset, error) {
	if x.Rank() < 2 || y.Rank() < 2 {
		return nil, fmt.Errorf("nn: dataset wants rank >= 2 tensors, got %v and %v", x.Shape(), y.Shape())
	}
	if x.Dim(0) != y.Dim(0) {
		return nil, fmt.Errorf("nn: dataset sample counts differ: %d vs %d", x.Dim(0), y.Dim(0))
	}
	return &Dataset{X: x.Contiguous(), Y: y.Contiguous()}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Dim(0) }

// Split partitions the dataset into a leading fraction and the remainder
// (paper §V-B: training/validation set plus a held-out test set).
func (d *Dataset) Split(frac float64) (*Dataset, *Dataset, error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("nn: split fraction %g out of (0,1)", frac)
	}
	n := d.Len()
	k := int(float64(n) * frac)
	if k == 0 || k == n {
		return nil, nil, fmt.Errorf("nn: split of %d samples at %g leaves an empty side", n, frac)
	}
	xa, err := d.X.Narrow(0, 0, k)
	if err != nil {
		return nil, nil, err
	}
	xb, err := d.X.Narrow(0, k, n-k)
	if err != nil {
		return nil, nil, err
	}
	ya, err := d.Y.Narrow(0, 0, k)
	if err != nil {
		return nil, nil, err
	}
	yb, err := d.Y.Narrow(0, k, n-k)
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{X: xa, Y: ya}, &Dataset{X: xb, Y: yb}, nil
}

// Shuffle permutes the samples in place-order (returns a reordered copy)
// with the given seed.
func (d *Dataset) Shuffle(seed int64) (*Dataset, error) {
	n := d.Len()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	return d.Gather(perm)
}

// gatherParElems is the element count above which GatherInto copies
// rows in parallel.
const gatherParElems = 1 << 16

// GatherInto copies the samples named by idx into dstX and dstY, which
// must be contiguous tensors of shapes [len(idx), xSample...] and
// [len(idx), ySample...]. It is the allocation-free counterpart of
// Gather: the trainer fills one reusable minibatch arena per step
// instead of staging every sample through Index+Stack copies.
func (d *Dataset) GatherInto(dstX, dstY *tensor.Tensor, idx []int) error {
	xs, err := gatherDst(dstX, d.X, len(idx), "x")
	if err != nil {
		return err
	}
	ys, err := gatherDst(dstY, d.Y, len(idx), "y")
	if err != nil {
		return err
	}
	n := d.Len()
	for _, j := range idx {
		if j < 0 || j >= n {
			return fmt.Errorf("nn: gather index %d out of range [0,%d)", j, n)
		}
	}
	xPer, yPer := xs, ys
	xd, yd := d.X.Data(), d.Y.Data()
	dxd, dyd := dstX.Data(), dstY.Data()
	// Small batches copy inline — no closure, no goroutines, no
	// allocation — mirroring the engine's other hot loops.
	if len(idx)*(xPer+yPer) < gatherParElems {
		for i, j := range idx {
			copy(dxd[i*xPer:(i+1)*xPer], xd[j*xPer:(j+1)*xPer])
			copy(dyd[i*yPer:(i+1)*yPer], yd[j*yPer:(j+1)*yPer])
		}
		return nil
	}
	parallel.ForRange(len(idx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			j := idx[i]
			copy(dxd[i*xPer:(i+1)*xPer], xd[j*xPer:(j+1)*xPer])
			copy(dyd[i*yPer:(i+1)*yPer], yd[j*yPer:(j+1)*yPer])
		}
	})
	return nil
}

// gatherDst validates one GatherInto destination against its source and
// returns the per-sample element count.
func gatherDst(dst, src *tensor.Tensor, rows int, which string) (int, error) {
	if dst == nil || !dst.IsContiguous() {
		return 0, fmt.Errorf("nn: gather %s dst must be contiguous", which)
	}
	if dst.Rank() != src.Rank() || dst.Dim(0) != rows {
		return 0, fmt.Errorf("nn: gather %s dst shape %v, want %d samples of %v", which, dst.Shape(), rows, src.Shape()[1:])
	}
	for i := 1; i < src.Rank(); i++ {
		if dst.Dim(i) != src.Dim(i) {
			return 0, fmt.Errorf("nn: gather %s dst shape %v, want %d samples of %v", which, dst.Shape(), rows, src.Shape()[1:])
		}
	}
	if !src.IsContiguous() {
		return 0, fmt.Errorf("nn: gather %s source must be contiguous", which)
	}
	if src.Dim(0) == 0 {
		return 0, fmt.Errorf("nn: gather from empty %s dataset", which)
	}
	return src.Len() / src.Dim(0), nil
}

// Gather returns a dataset of the given sample indices (a copy).
func (d *Dataset) Gather(idx []int) (*Dataset, error) {
	xs := make([]*tensor.Tensor, len(idx))
	ys := make([]*tensor.Tensor, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, fmt.Errorf("nn: gather index %d out of range [0,%d)", j, d.Len())
		}
		xv, err := d.X.Index(0, j)
		if err != nil {
			return nil, err
		}
		yv, err := d.Y.Index(0, j)
		if err != nil {
			return nil, err
		}
		xs[i], ys[i] = xv, yv
	}
	x, err := tensor.Stack(0, xs...)
	if err != nil {
		return nil, err
	}
	y, err := tensor.Stack(0, ys...)
	if err != nil {
		return nil, err
	}
	return &Dataset{X: x, Y: y}, nil
}

// Batch returns samples [lo, hi) as views.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, *tensor.Tensor, error) {
	x, err := d.X.Narrow(0, lo, hi-lo)
	if err != nil {
		return nil, nil, err
	}
	y, err := d.Y.Narrow(0, lo, hi-lo)
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// TrainConfig controls Fit. The fields mirror the paper's hyperparameter
// search space (Table V): learning rate, weight decay, dropout (a model
// property), and batch size.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	WeightDecay float64
	Optimizer   string // "adam" (default) or "sgd"
	Momentum    float64
	Loss        Loss // default MSE
	Seed        int64
	// Patience stops training after this many epochs without validation
	// improvement; 0 disables early stopping.
	Patience int
	// ValFrac is the fraction of the training data held out for
	// validation when a separate validation set is not given to Fit;
	// 0 selects the default of 0.2. (An earlier revision passed this
	// value to Split as the *training* fraction, contradicting the name
	// and this comment; the zero default carves the same 80/20 split
	// either way, so default-config callers are unaffected.)
	ValFrac float64
	Verbose func(epoch int, trainLoss, valLoss float64)
	// Stop, when set, is polled before every minibatch; returning true
	// aborts training promptly with ErrTrainingStopped. This is the
	// cancellation hook for background retrains: a shutdown signal
	// reaches a long Fit at the next batch boundary instead of waiting
	// out the remaining epochs.
	Stop func() bool
}

// History records per-epoch losses.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	BestVal   float64
	BestEpoch int
	Stopped   bool // true if early stopping triggered
}

// Fit trains the network on train, validating on val (which may be nil:
// then ValFrac of train is held out). It returns the training history;
// the network holds the final-epoch weights.
//
// The hot loop is allocation-free in steady state for the engine's
// standard layers: minibatches are gathered into a reusable arena
// (GatherInto), layers stage activations and gradients through their own
// arenas, the loss gradient goes through GradInto, and the optimizer
// updates per-parameter state slots in place. Only the per-epoch shuffle
// and validation pass allocate.
func (n *Network) Fit(train, val *Dataset, cfg TrainConfig) (*History, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("nn: fit wants positive epochs, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.Loss == nil {
		cfg.Loss = MSE{}
	}
	if val == nil {
		valFrac := cfg.ValFrac
		if valFrac == 0 {
			valFrac = 0.2
		}
		if valFrac <= 0 || valFrac >= 1 {
			return nil, fmt.Errorf("nn: validation fraction %g out of (0,1)", valFrac)
		}
		shuffled, err := train.Shuffle(cfg.Seed)
		if err != nil {
			return nil, err
		}
		if train, val, err = shuffled.Split(1 - valFrac); err != nil {
			return nil, err
		}
	}
	var opt Optimizer
	switch cfg.Optimizer {
	case "", "adam":
		opt = NewAdam(cfg.LR, cfg.WeightDecay)
	case "sgd":
		opt = NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", cfg.Optimizer)
	}

	h := &History{BestVal: math.Inf(1)}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	nSamples := train.Len()
	params := n.Params()
	gradInto, _ := cfg.Loss.(lossGradInto)
	// Minibatch and loss-gradient arenas, reused across steps. Datasets
	// of rank > maxScratchRank or with non-contiguous storage fall back
	// to the allocating Gather path, which handles any strides.
	var mbX, mbY, gradBuf scratch
	arena := train.X.Rank() <= maxScratchRank && train.Y.Rank() <= maxScratchRank &&
		train.X.IsContiguous() && train.Y.IsContiguous()
	stale := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(nSamples)
		var epochLoss float64
		var batches int
		for lo := 0; lo < nSamples; lo += cfg.BatchSize {
			if cfg.Stop != nil && cfg.Stop() {
				return h, ErrTrainingStopped
			}
			hi := lo + cfg.BatchSize
			if hi > nSamples {
				hi = nSamples
			}
			var bx, by *tensor.Tensor
			if arena {
				bx = mbX.batchOf(train.X, hi-lo)
				by = mbY.batchOf(train.Y, hi-lo)
				if err := train.GatherInto(bx, by, perm[lo:hi]); err != nil {
					return nil, err
				}
			} else {
				mb, err := train.Gather(perm[lo:hi])
				if err != nil {
					return nil, err
				}
				bx, by = mb.X, mb.Y
			}
			for _, p := range params {
				p.ZeroGrad()
			}
			pred, err := n.ForwardTrain(bx)
			if err != nil {
				return nil, err
			}
			loss, err := cfg.Loss.Value(pred, by)
			if err != nil {
				return nil, err
			}
			var grad *tensor.Tensor
			if gradInto != nil {
				if grad = gradBuf.like(pred); grad != nil {
					if err := gradInto.GradInto(grad, pred, by); err != nil {
						return nil, err
					}
				}
			}
			if grad == nil {
				if grad, err = cfg.Loss.Grad(pred, by); err != nil {
					return nil, err
				}
			}
			if err := n.Backward(grad); err != nil {
				return nil, err
			}
			if err := opt.Step(params); err != nil {
				return nil, err
			}
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		valLoss, err := n.Evaluate(val, cfg.Loss)
		if err != nil {
			return nil, err
		}
		h.TrainLoss = append(h.TrainLoss, epochLoss)
		h.ValLoss = append(h.ValLoss, valLoss)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, epochLoss, valLoss)
		}
		if valLoss < h.BestVal {
			h.BestVal = valLoss
			h.BestEpoch = epoch
			stale = 0
		} else {
			stale++
			if cfg.Patience > 0 && stale >= cfg.Patience {
				h.Stopped = true
				break
			}
		}
	}
	return h, nil
}

// Evaluate returns the mean loss over a dataset in inference mode.
func (n *Network) Evaluate(d *Dataset, loss Loss) (float64, error) {
	if loss == nil {
		loss = MSE{}
	}
	pred, err := n.Forward(d.X)
	if err != nil {
		return 0, err
	}
	return loss.Value(pred, d.Y)
}
