package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// quickstartNet mirrors examples/quickstart's h16 MLP — the model the
// accuracy gate is specified against.
func quickstartNet() *Network {
	net := NewNetwork(7)
	net.Add(net.NewDense(5, 16), NewActivation(ActTanh), net.NewDense(16, 1))
	return net
}

// TestForward32AccuracyGate is the release gate for the f32 inference
// path: on the quickstart model, every float32 output must match the
// float64 reference within rtol 1e-5 (plus a small atol for outputs
// near zero). A looser match means the f32 compilation is wrong, not
// just imprecise — one hidden layer of tanh cannot amplify f32
// rounding anywhere near 1e-5.
func TestForward32AccuracyGate(t *testing.T) {
	net := quickstartNet()
	f32, err := NewForward32(net)
	if err != nil {
		t.Fatal(err)
	}
	if f32.InDim() != 5 || f32.OutDim() != 1 {
		t.Fatalf("compiled dims %d->%d, want 5->1", f32.InDim(), f32.OutDim())
	}

	rng := rand.New(rand.NewSource(123))
	const rows = 257 // crosses batch sizes the serve path uses, odd on purpose
	in := make([]float64, rows*5)
	for i := range in {
		in[i] = rng.NormFloat64() * 3
	}
	x, err := tensor.FromSlice(append([]float64(nil), in...), rows, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, rows)
	if err := f32.ForwardFloat64(got, in, rows); err != nil {
		t.Fatal(err)
	}
	const rtol, atol = 1e-5, 1e-6
	for i, w := range want.Contiguous().Data() {
		if diff := math.Abs(got[i] - w); diff > rtol*math.Abs(w)+atol {
			t.Fatalf("row %d: f32 %.9g vs f64 %.9g (diff %.3g, budget %.3g)",
				i, got[i], w, diff, rtol*math.Abs(w)+atol)
		}
	}

	// The pure-f32 entry agrees bitwise with ForwardFloat64's core.
	in32 := make([]float32, len(in))
	for i, v := range in {
		in32[i] = float32(v)
	}
	out32 := make([]float32, rows)
	if err := f32.Forward(out32, in32, rows); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if float64(out32[i]) != got[i] {
			t.Fatalf("row %d: Forward %g != ForwardFloat64 %g", i, out32[i], got[i])
		}
	}
}

// TestForward32AllLayers covers every compilable layer kind plus the
// inference-identity ones, against the f64 reference.
func TestForward32AllLayers(t *testing.T) {
	net := NewNetwork(11)
	net.Add(
		NewAffine(0.5, -1),
		net.NewDense(6, 12),
		NewActivation(ActLeakyReLU),
		net.NewDropout(0.3), // identity at inference
		net.NewDense(12, 8),
		NewActivation(ActSigmoid),
		NewChannelAffine(4, []float64{2, -3}, []float64{0.25, 0}),
		net.NewDense(8, 3),
		NewActivation(ActReLU),
	)
	// Affine first: VectorIO requires a leading Dense, so this must be
	// rejected, not miscompiled.
	if _, err := NewForward32(net); err == nil {
		t.Fatal("leading non-dense layer must fail compilation")
	}
	net.Layers = net.Layers[1:]
	f32, err := NewForward32(net)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	const rows = 33
	in := make([]float64, rows*6)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	x, _ := tensor.FromSlice(append([]float64(nil), in...), rows, 6)
	want, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, rows*3)
	if err := f32.ForwardFloat64(got, in, rows); err != nil {
		t.Fatal(err)
	}
	for i, w := range want.Contiguous().Data() {
		if diff := math.Abs(got[i] - w); diff > 1e-5*math.Abs(w)+1e-6 {
			t.Fatalf("element %d: f32 %g vs f64 %g", i, got[i], w)
		}
	}
}

// TestForward32RejectsUnsupported: convolutional models stay on the
// float64 path.
func TestForward32RejectsUnsupported(t *testing.T) {
	net := NewNetwork(3)
	net.Add(net.NewConv1D(2, 4, 3, 1), NewFlatten(), net.NewDense(40, 2))
	if _, err := NewForward32(net); err == nil {
		t.Fatal("conv model must fail f32 compilation")
	}
	if _, err := NewForward32(NewNetwork(1)); err == nil {
		t.Fatal("empty network must fail f32 compilation")
	}
}

// TestForward32Concurrent: one compiled program, many goroutines. The
// pooled scratch must keep results identical to the serial run.
func TestForward32Concurrent(t *testing.T) {
	net := quickstartNet()
	f32, err := NewForward32(net)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 17
	mk := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		in := make([]float64, rows*5)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		return in
	}
	refs := make([][]float64, 8)
	for g := range refs {
		refs[g] = make([]float64, rows)
		if err := f32.ForwardFloat64(refs[g], mk(int64(g)), rows); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for iter := 0; iter < 8; iter++ {
		for g := range refs {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got := make([]float64, rows)
				if err := f32.ForwardFloat64(got, mk(int64(g)), rows); err != nil {
					errCh <- err
					return
				}
				for i := range got {
					if got[i] != refs[g][i] {
						errCh <- fmt.Errorf("goroutine %d row %d: %g != %g", g, i, got[i], refs[g][i])
						return
					}
				}
			}(g)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// BenchmarkForward32vs64 compares batch forward passes on the h16 MLP
// (the acceptance benchmark's model) and a wider MLP where the matmul
// dominates. The f32 path must be measurably faster.
func BenchmarkForward32vs64(b *testing.B) {
	cases := []struct {
		name   string
		widths []int
		rows   int
	}{
		{"h16/b64", []int{5, 16, 1}, 64},
		{"h16/b1024", []int{5, 16, 1}, 1024},
		{"h256x256/b256", []int{64, 256, 256, 8}, 256},
	}
	for _, tc := range cases {
		net := NewNetwork(7)
		for i := 0; i < len(tc.widths)-1; i++ {
			net.Add(net.NewDense(tc.widths[i], tc.widths[i+1]))
			if i < len(tc.widths)-2 {
				net.Add(NewActivation(ActTanh))
			}
		}
		inDim, outDim := tc.widths[0], tc.widths[len(tc.widths)-1]
		rng := rand.New(rand.NewSource(1))
		in := make([]float64, tc.rows*inDim)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		x, _ := tensor.FromSlice(append([]float64(nil), in...), tc.rows, inDim)
		dst := tensor.New(tc.rows, outDim)
		b.Run("f64/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := net.ForwardInto(dst, x); err != nil {
					b.Fatal(err)
				}
			}
		})
		f32, err := NewForward32(net)
		if err != nil {
			b.Fatal(err)
		}
		in32 := make([]float32, len(in))
		for i, v := range in {
			in32[i] = float32(v)
		}
		out32 := make([]float32, tc.rows*outDim)
		b.Run("f32/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f32.Forward(out32, in32, tc.rows); err != nil {
					b.Fatal(err)
				}
			}
		})
		out64 := make([]float64, tc.rows*outDim)
		b.Run("f32via64/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f32.ForwardFloat64(out64, in, tc.rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
