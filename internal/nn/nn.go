// Package nn is the inference and training engine that stands in for Torch
// (the C++ PyTorch API the paper's runtime uses). It provides dense layers,
// 1-D/2-D convolutions, pooling, activations, dropout, the Sequential
// container, MSE/MAE losses, SGD/Adam optimizers, and a self-describing
// binary model format (.gmod) that plays the role of TorchScript archives:
// the application's model() clause names a file on disk that the runtime
// loads and evaluates.
//
// Tensors follow PyTorch conventions: dense inputs are [batch, features],
// convolutional inputs are [batch, channels, length] (1-D) or
// [batch, channels, height, width] (2-D). All math is float64.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Fill(0) }

// Layer is one differentiable module. Forward with train=true caches
// whatever the subsequent Backward call needs; Backward consumes the cache
// and returns the gradient with respect to the layer input while
// accumulating parameter gradients. Layers are not safe for concurrent
// Forward calls on the same instance; parallelism lives inside the heavy
// kernels instead.
type Layer interface {
	Kind() string
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	Params() []*Param
	// OutShape maps an input sample shape (without the batch dim) to the
	// output sample shape, for static validation and model summaries.
	OutShape(in []int) ([]int, error)
	spec() layerSpec
}

// Network is a sequential composition of layers — the only container the
// HPAC-ML search spaces need (MLPs and small CNNs).
type Network struct {
	Layers []*layerEntry
	rng    *rand.Rand

	// scratch pools the ping-pong intermediate buffers of inference
	// passes. Pooling (rather than a single arena) keeps concurrent
	// Forward calls safe when regions share a cached model.
	scratch sync.Pool
}

type layerEntry struct {
	Layer Layer
}

// NewNetwork creates an empty network whose parameter initialization draws
// from the given seed, keeping model construction deterministic.
func NewNetwork(seed int64) *Network {
	return &Network{rng: rand.New(rand.NewSource(seed))}
}

// Add appends layers to the network.
func (n *Network) Add(layers ...Layer) *Network {
	for _, l := range layers {
		n.Layers = append(n.Layers, &layerEntry{Layer: l})
	}
	return n
}

// Forward runs inference (no caching, dropout disabled). Intermediate
// activations come from a pooled scratch arena, so only the returned
// output tensor is allocated per call; ForwardInto removes that
// allocation too.
func (n *Network) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return n.forwardInference(x, nil)
}

// ForwardInto runs inference writing the final output into dst, which
// must be a contiguous tensor of the network's output shape for x's
// batch size. Together with the scratch arena this makes steady-state
// MLP inference allocation-free: dense and activation layers write into
// reused ping-pong buffers and the last layer writes into dst.
func (n *Network) ForwardInto(dst, x *tensor.Tensor) error {
	if dst == nil {
		return fmt.Errorf("nn: ForwardInto with nil dst")
	}
	_, err := n.forwardInference(x, dst)
	return err
}

// ForwardBatch runs inference for several independent inputs in a single
// forward pass, amortizing per-call kernel dispatch across the batch.
// All inputs must share their non-leading dimensions; they are stacked
// along dim 0, evaluated once, and the combined output is split back at
// the same row boundaries. The returned tensors are views into one
// shared result buffer. Results are bit-identical to calling Forward on
// each input separately, because every kernel accumulates per output row
// in a batch-size-independent order.
func (n *Network) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	switch len(xs) {
	case 0:
		return nil, nil
	case 1:
		y, err := n.Forward(xs[0])
		if err != nil {
			return nil, err
		}
		return []*tensor.Tensor{y}, nil
	}
	if xs[0].Rank() < 1 {
		return nil, fmt.Errorf("nn: ForwardBatch input 0 has no batch dimension (shape %v)", xs[0].Shape())
	}
	rest := xs[0].Shape()[1:]
	total := 0
	for i, x := range xs {
		if x.Rank() < 1 || !tensor.ShapeEqual(x.Shape()[1:], rest) {
			return nil, fmt.Errorf("nn: ForwardBatch input %d shape %v incompatible with %v", i, x.Shape(), xs[0].Shape())
		}
		total += x.Dim(0)
	}
	big := tensor.New(append([]int{total}, rest...)...)
	at := 0
	for _, x := range xs {
		slot, err := big.Narrow(0, at, x.Dim(0))
		if err != nil {
			return nil, err
		}
		if err := slot.CopyFrom(x); err != nil {
			return nil, err
		}
		at += x.Dim(0)
	}
	y, err := n.forwardInference(big, nil)
	if err != nil {
		return nil, err
	}
	if y.Rank() < 1 || y.Dim(0) != total {
		return nil, fmt.Errorf("nn: ForwardBatch output shape %v does not preserve the %d stacked rows", y.Shape(), total)
	}
	outs := make([]*tensor.Tensor, len(xs))
	at = 0
	for i, x := range xs {
		if outs[i], err = y.Narrow(0, at, x.Dim(0)); err != nil {
			return nil, err
		}
		at += x.Dim(0)
	}
	return outs, nil
}

// ForwardTrain runs a training-mode forward pass, caching activations.
func (n *Network) ForwardTrain(x *tensor.Tensor) (*tensor.Tensor, error) {
	return n.forward(x, true)
}

// inferScratch holds one inference pass's ping-pong intermediate buffers
// plus cached tensor headers, reused while layer output shapes repeat.
type inferScratch struct {
	bufs       [2][]float64
	ts         [2]*tensor.Tensor
	rows, cols [2]int
}

// tensorFor returns a [rows, cols] tensor backed by the slot's buffer,
// growing the buffer and rebuilding the header only when the shape
// changed since the slot's last use.
func (s *inferScratch) tensorFor(slot, rows, cols int) *tensor.Tensor {
	if s.ts[slot] != nil && s.rows[slot] == rows && s.cols[slot] == cols {
		return s.ts[slot]
	}
	n := rows * cols
	if cap(s.bufs[slot]) < n {
		s.bufs[slot] = make([]float64, n)
	}
	t, err := tensor.Wrap(s.bufs[slot][:n], rows, cols)
	if err != nil {
		panic("nn: scratch wrap: " + err.Error()) // cannot happen: buffer sized above
	}
	s.ts[slot] = t
	s.rows[slot], s.cols[slot] = rows, cols
	return t
}

// intoLayer is implemented by layers whose inference pass can write a
// rank-2 output into a caller-provided tensor without allocating.
type intoLayer interface {
	// inferDims maps x to the layer's [rows, cols] output extents;
	// ok is false when x is not an acceptable rank-2 input (the caller
	// then falls back to the allocating Forward path).
	inferDims(x *tensor.Tensor) (rows, cols int, ok bool)
	// forwardInto computes the inference output of x into dst. dst must
	// not alias x.
	forwardInto(dst, x *tensor.Tensor) error
}

// forwardInference walks the layers in inference mode, routing rank-2
// intermediates through the pooled scratch arena. When dst is non-nil
// the final output is written there; otherwise it is freshly allocated.
func (n *Network) forwardInference(x *tensor.Tensor, dst *tensor.Tensor) (*tensor.Tensor, error) {
	s, _ := n.scratch.Get().(*inferScratch)
	if s == nil {
		s = &inferScratch{}
	}
	defer n.scratch.Put(s)

	cur := x
	slot := 0
	// inScratch tracks whether cur may alias a pooled buffer. Fallback
	// layers can return views of their input (Flatten, Dropout), so the
	// flag stays set across them conservatively.
	inScratch := false
	for i, e := range n.Layers {
		last := i == len(n.Layers)-1
		il, ok := e.Layer.(intoLayer)
		if ok {
			rows, cols, dimsOK := il.inferDims(cur)
			if dimsOK {
				var out *tensor.Tensor
				switch {
				case last && dst != nil:
					if dst.Rank() != 2 || dst.Dim(0) != rows || dst.Dim(1) != cols {
						return nil, fmt.Errorf("nn: ForwardInto dst shape %v, want [%d %d]", dst.Shape(), rows, cols)
					}
					out = dst
				case last:
					out = tensor.New(rows, cols)
				default:
					out = s.tensorFor(slot, rows, cols)
					slot ^= 1
				}
				if err := il.forwardInto(out, cur); err != nil {
					return nil, fmt.Errorf("nn: layer %d (%s): %w", i, e.Layer.Kind(), err)
				}
				cur = out
				inScratch = out != dst && !last
				continue
			}
		}
		var err error
		if cur, err = e.Layer.Forward(cur, false); err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, e.Layer.Kind(), err)
		}
	}
	if dst != nil && cur != dst {
		// The last layer could not write in place (not an intoLayer, or a
		// non-rank-2 output); copy the result over.
		if err := dst.CopyFrom(cur); err != nil {
			return nil, fmt.Errorf("nn: ForwardInto output: %w", err)
		}
		return dst, nil
	}
	if inScratch {
		// A trailing view-returning layer left cur aliasing pooled
		// memory; detach before the scratch returns to the pool.
		cur = cur.Clone()
	}
	return cur, nil
}

func (n *Network) forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for i, e := range n.Layers {
		if x, err = e.Layer.Forward(x, train); err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, e.Layer.Kind(), err)
		}
	}
	return x, nil
}

// Backward propagates the loss gradient through the network, accumulating
// parameter gradients. It must follow a ForwardTrain call.
func (n *Network) Backward(grad *tensor.Tensor) error {
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		e := n.Layers[i]
		if grad, err = e.Layer.Backward(grad); err != nil {
			return fmt.Errorf("nn: backward layer %d (%s): %w", i, e.Layer.Kind(), err)
		}
	}
	return nil
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, e := range n.Layers {
		out = append(out, e.Layer.Params()...)
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count — the "model size"
// axis of the paper's figures.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// FLOPsPerSample estimates multiply-accumulate work per input sample given
// the sample shape (without batch dim). Used as the latency proxy during
// search space pruning; actual latency is always measured.
func (n *Network) FLOPsPerSample(in []int) (int64, error) {
	var total int64
	cur := append([]int(nil), in...)
	for _, e := range n.Layers {
		total += layerFLOPs(e.Layer, cur)
		next, err := e.Layer.OutShape(cur)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return total, nil
}

func layerFLOPs(l Layer, in []int) int64 {
	switch v := l.(type) {
	case *Dense:
		return 2 * int64(v.In) * int64(v.Out)
	case *Conv1D:
		out, err := v.OutShape(in)
		if err != nil {
			return 0
		}
		return 2 * int64(v.OutC) * int64(out[1]) * int64(v.InC) * int64(v.K)
	case *Conv2D:
		out, err := v.OutShape(in)
		if err != nil {
			return 0
		}
		return 2 * int64(v.OutC) * int64(out[1]) * int64(out[2]) * int64(v.InC) * int64(v.KH) * int64(v.KW)
	default:
		n := int64(1)
		for _, d := range in {
			n *= int64(d)
		}
		return n
	}
}

// OutShape validates the network against an input sample shape and
// returns the output sample shape.
func (n *Network) OutShape(in []int) ([]int, error) {
	cur := append([]int(nil), in...)
	var err error
	for i, e := range n.Layers {
		if cur, err = e.Layer.OutShape(cur); err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, e.Layer.Kind(), err)
		}
	}
	return cur, nil
}

// VectorIO reports the flat per-sample input and output widths of a
// network whose leading layer pins a width — a Dense layer's fan-in or
// a ChannelAffine's block structure (the standardization wrapper
// normalization-trained MLP surrogates open with). These are the models
// a registry can host without being told their shapes. Networks that
// open with a convolution (whose input width depends on the spatial
// extent, not the model file) cannot be inferred and return an error;
// callers must then supply dimensions explicitly.
func (n *Network) VectorIO() (in, out int, err error) {
	if len(n.Layers) == 0 {
		return 0, 0, fmt.Errorf("nn: VectorIO on empty network")
	}
	switch l := n.Layers[0].Layer.(type) {
	case *Dense:
		in = l.In
	case *ChannelAffine:
		in = l.BlockLen * len(l.Scales)
	default:
		return 0, 0, fmt.Errorf("nn: VectorIO: first layer is %s, not dense; input width is not self-describing",
			n.Layers[0].Layer.Kind())
	}
	outShape, err := n.OutShape([]int{in})
	if err != nil {
		return 0, 0, err
	}
	out = 1
	for _, dim := range outShape {
		out *= dim
	}
	return in, out, nil
}

// Summary renders a human-readable architecture description.
func (n *Network) Summary() string {
	s := ""
	for i, e := range n.Layers {
		if i > 0 {
			s += " -> "
		}
		s += e.Layer.Kind()
	}
	return fmt.Sprintf("%s (%d params)", s, n.NumParams())
}

// initUniform fills t with Uniform(-a, a) draws from rng.
func initUniform(rng *rand.Rand, t *tensor.Tensor, a float64) {
	d := t.Data()
	for i := range d {
		d[i] = (rng.Float64()*2 - 1) * a
	}
}

// kaimingBound returns the He-uniform bound for fanIn inputs.
func kaimingBound(fanIn int) float64 {
	if fanIn <= 0 {
		return 0
	}
	return math.Sqrt(6.0 / float64(fanIn))
}
