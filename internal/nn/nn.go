// Package nn is the inference and training engine that stands in for Torch
// (the C++ PyTorch API the paper's runtime uses). It provides dense layers,
// 1-D/2-D convolutions, pooling, activations, dropout, the Sequential
// container, MSE/MAE losses, SGD/Adam optimizers, and a self-describing
// binary model format (.gmod) that plays the role of TorchScript archives:
// the application's model() clause names a file on disk that the runtime
// loads and evaluates.
//
// Tensors follow PyTorch conventions: dense inputs are [batch, features],
// convolutional inputs are [batch, channels, length] (1-D) or
// [batch, channels, height, width] (2-D). All math is float64.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Fill(0) }

// Layer is one differentiable module. Forward with train=true caches
// whatever the subsequent Backward call needs; Backward consumes the cache
// and returns the gradient with respect to the layer input while
// accumulating parameter gradients. Layers are not safe for concurrent
// Forward calls on the same instance; parallelism lives inside the heavy
// kernels instead.
type Layer interface {
	Kind() string
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	Params() []*Param
	// OutShape maps an input sample shape (without the batch dim) to the
	// output sample shape, for static validation and model summaries.
	OutShape(in []int) ([]int, error)
	spec() layerSpec
}

// Network is a sequential composition of layers — the only container the
// HPAC-ML search spaces need (MLPs and small CNNs).
type Network struct {
	Layers []*layerEntry
	rng    *rand.Rand
}

type layerEntry struct {
	Layer Layer
}

// NewNetwork creates an empty network whose parameter initialization draws
// from the given seed, keeping model construction deterministic.
func NewNetwork(seed int64) *Network {
	return &Network{rng: rand.New(rand.NewSource(seed))}
}

// Add appends layers to the network.
func (n *Network) Add(layers ...Layer) *Network {
	for _, l := range layers {
		n.Layers = append(n.Layers, &layerEntry{Layer: l})
	}
	return n
}

// Forward runs inference (no caching, dropout disabled).
func (n *Network) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return n.forward(x, false)
}

// ForwardTrain runs a training-mode forward pass, caching activations.
func (n *Network) ForwardTrain(x *tensor.Tensor) (*tensor.Tensor, error) {
	return n.forward(x, true)
}

func (n *Network) forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for i, e := range n.Layers {
		if x, err = e.Layer.Forward(x, train); err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, e.Layer.Kind(), err)
		}
	}
	return x, nil
}

// Backward propagates the loss gradient through the network, accumulating
// parameter gradients. It must follow a ForwardTrain call.
func (n *Network) Backward(grad *tensor.Tensor) error {
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		e := n.Layers[i]
		if grad, err = e.Layer.Backward(grad); err != nil {
			return fmt.Errorf("nn: backward layer %d (%s): %w", i, e.Layer.Kind(), err)
		}
	}
	return nil
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, e := range n.Layers {
		out = append(out, e.Layer.Params()...)
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count — the "model size"
// axis of the paper's figures.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// FLOPsPerSample estimates multiply-accumulate work per input sample given
// the sample shape (without batch dim). Used as the latency proxy during
// search space pruning; actual latency is always measured.
func (n *Network) FLOPsPerSample(in []int) (int64, error) {
	var total int64
	cur := append([]int(nil), in...)
	for _, e := range n.Layers {
		total += layerFLOPs(e.Layer, cur)
		next, err := e.Layer.OutShape(cur)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return total, nil
}

func layerFLOPs(l Layer, in []int) int64 {
	switch v := l.(type) {
	case *Dense:
		return 2 * int64(v.In) * int64(v.Out)
	case *Conv1D:
		out, err := v.OutShape(in)
		if err != nil {
			return 0
		}
		return 2 * int64(v.OutC) * int64(out[1]) * int64(v.InC) * int64(v.K)
	case *Conv2D:
		out, err := v.OutShape(in)
		if err != nil {
			return 0
		}
		return 2 * int64(v.OutC) * int64(out[1]) * int64(out[2]) * int64(v.InC) * int64(v.KH) * int64(v.KW)
	default:
		n := int64(1)
		for _, d := range in {
			n *= int64(d)
		}
		return n
	}
}

// OutShape validates the network against an input sample shape and
// returns the output sample shape.
func (n *Network) OutShape(in []int) ([]int, error) {
	cur := append([]int(nil), in...)
	var err error
	for i, e := range n.Layers {
		if cur, err = e.Layer.OutShape(cur); err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, e.Layer.Kind(), err)
		}
	}
	return cur, nil
}

// Summary renders a human-readable architecture description.
func (n *Network) Summary() string {
	s := ""
	for i, e := range n.Layers {
		if i > 0 {
			s += " -> "
		}
		s += e.Layer.Kind()
	}
	return fmt.Sprintf("%s (%d params)", s, n.NumParams())
}

// initUniform fills t with Uniform(-a, a) draws from rng.
func initUniform(rng *rand.Rand, t *tensor.Tensor, a float64) {
	d := t.Data()
	for i := range d {
		d[i] = (rng.Float64()*2 - 1) * a
	}
}

// kaimingBound returns the He-uniform bound for fanIn inputs.
func kaimingBound(fanIn int) float64 {
	if fanIn <= 0 {
		return 0
	}
	return math.Sqrt(6.0 / float64(fanIn))
}
