package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Residual wraps a sub-network body and adds the (flattened) layer input
// to the body's output: y = body(x) + flatten(x). The body's output
// sample size must equal the input sample size. Residual blocks are the
// standard stabilizer for auto-regressive surrogates (MiniWeather-style
// next-state prediction): the body only has to learn the per-step delta.
type Residual struct {
	Body *Network

	lastShape []int
}

// NewResidual wraps body in a residual connection.
func NewResidual(body *Network) *Residual { return &Residual{Body: body} }

// Kind identifies the layer.
func (r *Residual) Kind() string { return "Residual(" + r.Body.Summary() + ")" }

// Params returns the body's parameters.
func (r *Residual) Params() []*Param { return r.Body.Params() }

// subNetwork marks Residual as a container for the serializer.
func (r *Residual) subNetwork() *Network { return r.Body }

// OutShape checks that the body maps the sample back to its own size.
func (r *Residual) OutShape(in []int) ([]int, error) {
	out, err := r.Body.OutShape(in)
	if err != nil {
		return nil, err
	}
	if tensor.NumElements(out) != tensor.NumElements(in) {
		return nil, fmt.Errorf("residual body maps %d elements to %d; sizes must match", tensor.NumElements(in), tensor.NumElements(out))
	}
	return out, nil
}

// Forward computes body(x) + flatten(x).
func (r *Residual) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("residual wants rank >= 2 input, got %v", x.Shape())
	}
	y, err := r.Body.forward(x, train)
	if err != nil {
		return nil, err
	}
	if y.Len() != x.Len() {
		return nil, fmt.Errorf("residual body output %v does not match input %v", y.Shape(), x.Shape())
	}
	if train {
		r.lastShape = x.Shape()
	}
	out := y.Contiguous().Clone()
	xf := x.Contiguous()
	od, xd := out.Data(), xf.Data()
	for i := range od {
		od[i] += xd[i]
	}
	return out, nil
}

// Backward adds the identity gradient to the body's input gradient.
func (r *Residual) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if r.lastShape == nil {
		return nil, fmt.Errorf("residual backward without cached forward")
	}
	bodyGrad := grad
	var err error
	for i := len(r.Body.Layers) - 1; i >= 0; i-- {
		if bodyGrad, err = r.Body.Layers[i].Layer.Backward(bodyGrad); err != nil {
			return nil, fmt.Errorf("residual body layer %d: %w", i, err)
		}
	}
	skip, err := grad.Contiguous().Reshape(r.lastShape...)
	if err != nil {
		return nil, err
	}
	out := bodyGrad.Contiguous().Clone()
	if !tensor.ShapeEqual(out.Shape(), r.lastShape) {
		reshaped, err := out.Reshape(r.lastShape...)
		if err != nil {
			return nil, err
		}
		out = reshaped
	}
	od, sd := out.Data(), skip.Contiguous().Data()
	for i := range od {
		od[i] += sd[i]
	}
	r.lastShape = nil
	return out, nil
}

func (r *Residual) spec() layerSpec { return layerSpec{Kind: "residual"} }
