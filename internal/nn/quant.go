package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/tensor"
)

// Int8 post-training quantization: the calibration record a network
// needs before it can run on the ForwardI8 path. Weights need no
// calibration — their ranges are known exactly and are quantized
// per output channel at compile time — but activations do: each dense
// segment's input and pre-activation distributions are observed on
// captured inputs (CalibrateI8), reduced to ranges by max-abs or
// percentile trimming, and persisted in a ".quant" sidecar beside the
// .gmod (QuantPath), mirroring the guardrail's ".guard" idiom. The
// sidecar also records the accuracy-gate verdict stamped by the fit
// step, so an engine loading it can refuse a calibration that never
// passed.

// QuantRange is one observed activation range [Lo, Hi].
type QuantRange struct {
	Lo, Hi float64
}

// Calibration modes (CalibConfig.Mode).
const (
	// QuantMaxAbs reduces each observation point to the symmetric
	// envelope [-max|v|, +max|v|] — every calibration value is exactly
	// representable, outliers cost resolution.
	QuantMaxAbs = "maxabs"
	// QuantPercentile reduces each observation point to the asymmetric
	// [q, 1-q] quantile range — robust to capture outliers, values
	// outside the range saturate.
	QuantPercentile = "percentile"
)

// CalibConfig controls CalibrateI8.
type CalibConfig struct {
	// Mode is QuantMaxAbs (the default when empty) or QuantPercentile.
	Mode string
	// Q is the tail fraction trimmed per side in percentile mode, in
	// [0, 0.5); 0.001 keeps the 0.1%..99.9% range.
	Q float64
	// MaxRows caps the calibration rows consumed (0 means the default
	// of 4096) — range estimates saturate quickly and the percentile
	// sort is O(rows · width) memory.
	MaxRows int
}

// QuantCalib is a fitted calibration: per dense segment, the input
// range (Bounds[s]; Bounds[0] is the model input) and the post-dense
// pre-activation range (Preacts[s]), plus the accuracy-gate verdict the
// fit step stamped. InDim/OutDim pin the model geometry the calibration
// was fitted for, so a sidecar cannot silently requantize a retrained
// model of a different shape.
type QuantCalib struct {
	InDim, OutDim int
	Bounds        []QuantRange
	Preacts       []QuantRange

	// GateErr is the mean relative L2 of the int8 path against the
	// float64 reference on held-out captures; GateRTol is the tolerance
	// it was gated at. The fit step refuses to write a sidecar whose
	// GateErr exceeds GateRTol, and LocalEngine refuses to enable the
	// path unless GatePassed.
	GateErr  float64
	GateRTol float64
}

// Segments returns the calibrated dense-segment count.
func (c *QuantCalib) Segments() int { return len(c.Bounds) }

// GatePassed reports whether the recorded accuracy gate held: a finite
// error within the recorded tolerance.
func (c *QuantCalib) GatePassed() bool {
	return !math.IsNaN(c.GateErr) && !math.IsInf(c.GateErr, 0) && c.GateErr <= c.GateRTol
}

// QuantPath is the sidecar naming convention: the calibration of model
// "m.gmod" lives at "m.gmod.quant", beside the weights it quantizes.
func QuantPath(modelPath string) string { return modelPath + ".quant" }

// CalibrateI8 observes the activation ranges of net on x, a
// [rows, features...] slab of captured model-layout inputs, and returns
// the calibration (with an unstamped gate: GateErr NaN). The network
// must be compilable by the int8 path — dense segments with elementwise
// tails — and every calibration value must be finite; a NaN or Inf
// anywhere in the observed activations fails the fit rather than
// poisoning a range.
func CalibrateI8(net *Network, x *tensor.Tensor, cfg CalibConfig) (*QuantCalib, error) {
	prelude, segs, inDim, outDim, err := compileSegments(net)
	if err != nil {
		return nil, err
	}
	mode := cfg.Mode
	if mode == "" {
		mode = QuantMaxAbs
	}
	if mode != QuantMaxAbs && mode != QuantPercentile {
		return nil, fmt.Errorf("nn: unknown calibration mode %q", cfg.Mode)
	}
	if cfg.Q < 0 || cfg.Q >= 0.5 {
		return nil, fmt.Errorf("nn: calibration quantile %g out of [0, 0.5)", cfg.Q)
	}
	if x == nil || x.Rank() < 2 || x.Dim(0) == 0 {
		return nil, fmt.Errorf("nn: calibration wants a non-empty [rows, features...] slab")
	}
	rows := x.Dim(0)
	if x.Len()/rows != inDim {
		return nil, fmt.Errorf("nn: calibration rows have %d features, model wants %d", x.Len()/rows, inDim)
	}
	maxRows := cfg.MaxRows
	if maxRows <= 0 {
		maxRows = 4096
	}
	if rows > maxRows {
		rows = maxRows
	}
	cur := x.Contiguous().Data()[:rows*inDim]
	if len(prelude) > 0 {
		// Bounds[0] is the post-normalization input range: the quantizer
		// runs the prelude in float64 before encoding, so that is the
		// distribution its 256 codes must cover.
		normed := make([]float64, len(cur))
		for i, v := range cur {
			normed[i] = tailEval(prelude, i%inDim, v)
		}
		cur = normed
	}
	c := &QuantCalib{InDim: inDim, OutDim: outDim, GateErr: math.NaN()}
	cols := inDim
	for s := range segs {
		r, err := observeRange(cur, mode, cfg.Q)
		if err != nil {
			return nil, fmt.Errorf("nn: calibrating segment %d input: %w", s, err)
		}
		c.Bounds = append(c.Bounds, r)
		// Dense: cur [rows, cols] @ w [cols, out] + bias.
		seg := &segs[s]
		out := make([]float64, rows*seg.outCols)
		xt, _ := tensor.Wrap(cur, rows, cols)
		wt, _ := tensor.Wrap(seg.w, cols, seg.outCols)
		ot, _ := tensor.Wrap(out, rows, seg.outCols)
		if err := tensor.MatMulInto(ot, xt, wt); err != nil {
			return nil, fmt.Errorf("nn: calibrating segment %d: %w", s, err)
		}
		for i := range out {
			out[i] += seg.b[i%seg.outCols]
		}
		r, err = observeRange(out, mode, cfg.Q)
		if err != nil {
			return nil, fmt.Errorf("nn: calibrating segment %d pre-activation: %w", s, err)
		}
		c.Preacts = append(c.Preacts, r)
		for i := range out {
			out[i] = tailEval(seg.tail, i%seg.outCols, out[i])
		}
		cur, cols = out, seg.outCols
	}
	return c, nil
}

// observeRange reduces a value slab to its calibration range.
func observeRange(vals []float64, mode string, q float64) (QuantRange, error) {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return QuantRange{}, fmt.Errorf("non-finite activation %g in calibration set", v)
		}
	}
	if mode == QuantMaxAbs {
		m := 0.0
		for _, v := range vals {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return QuantRange{Lo: -m, Hi: m}, nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return QuantRange{Lo: quantileAt(sorted, q), Hi: quantileAt(sorted, 1-q)}, nil
}

// quantileAt reads quantile q from sorted by linear interpolation
// (the guardrail's estimator, repeated here to keep nn free of the
// root package).
func quantileAt(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// The sidecar format follows the .gmod idiom: little-endian, magic +
// version header, implausibility-guarded lengths, self-contained.
const (
	quantMagic    = 0x38544e51 // "QNT8"
	quantVersion  = 1
	quantMaxSegs  = 1 << 16
	quantMaxWidth = 1 << 24
)

// Encode writes the calibration in sidecar format.
func (c *QuantCalib) Encode(w io.Writer) error {
	if len(c.Bounds) == 0 || len(c.Bounds) != len(c.Preacts) {
		return fmt.Errorf("nn: encoding malformed calibration (%d bounds, %d preacts)", len(c.Bounds), len(c.Preacts))
	}
	if c.InDim <= 0 || c.OutDim <= 0 || c.InDim > quantMaxWidth || c.OutDim > quantMaxWidth {
		return fmt.Errorf("nn: encoding calibration with implausible geometry %d -> %d", c.InDim, c.OutDim)
	}
	var buf bytes.Buffer
	for _, v := range []uint32{quantMagic, quantVersion, uint32(c.InDim), uint32(c.OutDim), uint32(len(c.Bounds))} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	binary.Write(&buf, binary.LittleEndian, c.GateErr)
	binary.Write(&buf, binary.LittleEndian, c.GateRTol)
	for _, r := range c.Bounds {
		binary.Write(&buf, binary.LittleEndian, r.Lo)
		binary.Write(&buf, binary.LittleEndian, r.Hi)
	}
	for _, r := range c.Preacts {
		binary.Write(&buf, binary.LittleEndian, r.Lo)
		binary.Write(&buf, binary.LittleEndian, r.Hi)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// SaveQuant writes the sidecar file at path (conventionally
// QuantPath(modelPath)).
func (c *QuantCalib) SaveQuant(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeQuant reads a sidecar-format calibration.
func DecodeQuant(r io.Reader) (*QuantCalib, error) {
	var hdr [5]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("nn: quant sidecar header: %w", err)
	}
	if hdr[0] != quantMagic {
		return nil, fmt.Errorf("nn: not a quant sidecar (magic %#x)", hdr[0])
	}
	if hdr[1] != quantVersion {
		return nil, fmt.Errorf("nn: unsupported quant sidecar version %d", hdr[1])
	}
	c := &QuantCalib{InDim: int(hdr[2]), OutDim: int(hdr[3])}
	n := int(hdr[4])
	if c.InDim <= 0 || c.OutDim <= 0 || c.InDim > quantMaxWidth || c.OutDim > quantMaxWidth {
		return nil, fmt.Errorf("nn: implausible quant sidecar geometry %d -> %d", c.InDim, c.OutDim)
	}
	if n == 0 || n > quantMaxSegs {
		return nil, fmt.Errorf("nn: implausible quant sidecar segment count %d", n)
	}
	if err := binary.Read(r, binary.LittleEndian, &c.GateErr); err != nil {
		return nil, fmt.Errorf("nn: quant sidecar gate: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &c.GateRTol); err != nil {
		return nil, fmt.Errorf("nn: quant sidecar gate: %w", err)
	}
	c.Bounds = make([]QuantRange, n)
	c.Preacts = make([]QuantRange, n)
	for _, rs := range [2][]QuantRange{c.Bounds, c.Preacts} {
		for i := range rs {
			if err := binary.Read(r, binary.LittleEndian, &rs[i].Lo); err != nil {
				return nil, fmt.Errorf("nn: quant sidecar ranges: %w", err)
			}
			if err := binary.Read(r, binary.LittleEndian, &rs[i].Hi); err != nil {
				return nil, fmt.Errorf("nn: quant sidecar ranges: %w", err)
			}
			if rs[i].Lo > rs[i].Hi || math.IsNaN(rs[i].Lo) || math.IsNaN(rs[i].Hi) {
				return nil, fmt.Errorf("nn: quant sidecar range %d inverted or NaN [%g, %g]", i, rs[i].Lo, rs[i].Hi)
			}
		}
	}
	return c, nil
}

// LoadQuant reads the sidecar file at path.
func LoadQuant(path string) (*QuantCalib, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := DecodeQuant(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return c, nil
}
