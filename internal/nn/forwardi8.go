package nn

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
)

// ForwardI8 is an int8 inference program compiled from a Network and a
// QuantCalib once: dense weights are quantized per output channel
// (symmetric, scale = maxabs/127), activations are quantized per layer
// from the calibrated ranges, and batches then run i8×i8→i32 through
// tensor.MatMulInt8Into — a quarter of the f32 path's weight bytes per
// MAC. The step that pays for itself on MLP surrogates is the fused
// epilogue: requantization, bias, zero-point correction, and the entire
// elementwise tail (activation + affines) collapse into one per-column
// multiply-add followed by a table lookup, so tanh/sigmoid layers cost
// a table index per element instead of a float64 transcendental. The
// lookup is indexed by an int16 pre-activation code — 64 Ki entries —
// because 8 bits across a wide pre-activation range steps tanh's
// active region too coarsely to hold the accuracy gate; 16 bits make
// the table's own error negligible next to the i8 activation encoding.
// The final segment dequantizes straight to float64 through the exact
// tail math, so output resolution is not limited to 8 bits.
//
// Like Forward32, the compiled program snapshots the weights (rebuild
// after a reload), supports the registry's vector-MLP layer set (Dense,
// activations, Affine, ChannelAffine, inference-identity Dropout and
// Flatten), and is safe for concurrent use — per-call state lives in
// pooled scratch. Elementwise layers BEFORE the first dense layer (the
// input-normalization idiom: an Affine or ChannelAffine scaling raw
// features into model range) compile into a float64 prelude fused into
// the input-quantization loop, so normalized models — the ones whose
// activation ranges actually suit 8-bit encodings — quantize too, and
// the calibrated input range is the post-normalization one.
type ForwardI8 struct {
	inDim, outDim int
	inScale       float64 // input quantization: q = round(v/inScale) + inZero
	inZero        int32
	prelude       []tailOp // pre-dense elementwise ops, fused into quantization
	segs          []segI8
	scratch       sync.Pool // *i8Scratch
}

// i8seg is one dense segment before quantization: the float64 weights
// plus the elementwise tail up to the next dense layer. compileSegments
// produces these for both CalibrateI8 (which forwards calibration rows
// through them in float64) and NewForwardI8 (which quantizes them).
type i8seg struct {
	inCols, outCols int
	w, b            []float64
	tail            []tailOp
}

// tail op kinds.
const (
	tailAct = iota
	tailAffine
	tailChanAffine
)

// tailOp is one elementwise op of a segment tail, evaluated per column
// in float64 — at LUT build time for the quantized segments, per
// element for the final dequantizing segment.
type tailOp struct {
	kind           int
	fn             func(float64) float64 // tailAct
	scale, shift   float64               // tailAffine
	blockLen       int                   // tailChanAffine
	scales, shifts []float64
}

// tailEval applies a segment tail to value v in output column j.
func tailEval(tail []tailOp, j int, v float64) float64 {
	for i := range tail {
		op := &tail[i]
		switch op.kind {
		case tailAct:
			v = op.fn(v)
		case tailAffine:
			v = op.scale*v + op.shift
		case tailChanAffine:
			b := j / op.blockLen
			v = op.scales[b]*v + op.shifts[b]
		}
	}
	return v
}

// segI8 is one compiled segment: quantized weights and the fused
// epilogue. Non-final segments requantize the i32 accumulator to an
// int16 pre-activation code (one multiply-add per element — bias and
// zero-point correction are folded into off) and map it through lut to
// the next segment's input encoding. Column-dependent tails
// (ChannelAffine — one table per column would cost 64 KiB each) and the
// final segment skip the table: they dequantize the accumulator and run
// the tail exactly, the final segment into float64 output.
type segI8 struct {
	inCols, outCols int
	w               []int8 // [in, out], per-column symmetric

	// Table epilogue (uniform non-final tails):
	// out = lut[clamp16(round(mult[j]*acc + off[j])) + 32768].
	mult []float32
	off  []float32
	lut  []int8

	// Exact epilogue (final and column-dependent segments):
	// y = tail(deqScale[j]*acc + deqOff[j]), requantized via
	// outInvScale/outZero unless final.
	final       bool
	perCol      bool
	deqScale    []float64
	deqOff      []float64
	outInvScale float64
	outZero     int32
	tail        []tailOp
}

type i8Scratch struct {
	q   [2][]int8
	acc []int32
}

// compileSegments partitions net into an elementwise prelude (layers
// before the first dense — input normalization), dense segments with
// elementwise tails — the structure both calibration and quantized
// compilation walk. The input width is pinned by the first dense layer
// (or an earlier ChannelAffine, which knows its own width); prelude ops
// are width-preserving, so that pin is the network's input width. It
// fails on networks the int8 path does not support; callers treat that
// as "stay on the wider path", not as a hard error.
func compileSegments(net *Network) ([]tailOp, []i8seg, int, int, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, nil, 0, 0, fmt.Errorf("nn: i8 path: empty network")
	}
	var prelude []tailOp
	var segs []i8seg
	in, cols := -1, -1
	addTail := func(op tailOp) {
		if len(segs) == 0 {
			prelude = append(prelude, op)
		} else {
			segs[len(segs)-1].tail = append(segs[len(segs)-1].tail, op)
		}
	}
	for i, e := range net.Layers {
		switch l := e.Layer.(type) {
		case *Dense:
			if cols != -1 && l.In != cols {
				return nil, nil, 0, 0, fmt.Errorf("nn: i8 path: layer %d (%s) wants width %d, have %d", i, l.Kind(), l.In, cols)
			}
			if in == -1 {
				in = l.In
			}
			segs = append(segs, i8seg{inCols: l.In, outCols: l.Out,
				w: l.Weight.W.Contiguous().Data(), b: l.Bias.W.Contiguous().Data()})
			cols = l.Out
		case *Activation:
			fn, err := l.fn()
			if err != nil {
				return nil, nil, 0, 0, fmt.Errorf("nn: i8 path: layer %d: %w", i, err)
			}
			addTail(tailOp{kind: tailAct, fn: fn})
		case *Affine:
			addTail(tailOp{kind: tailAffine, scale: l.Scale, shift: l.Shift})
		case *ChannelAffine:
			if l.BlockLen <= 0 || len(l.Scales) != len(l.Shifts) {
				return nil, nil, 0, 0, fmt.Errorf("nn: i8 path: layer %d (%s) misconfigured", i, l.Kind())
			}
			width := l.BlockLen * len(l.Scales)
			if cols == -1 {
				in, cols = width, width
			} else if cols != width {
				return nil, nil, 0, 0, fmt.Errorf("nn: i8 path: layer %d (%s) does not fit width %d", i, l.Kind(), cols)
			}
			addTail(tailOp{kind: tailChanAffine,
				blockLen: l.BlockLen, scales: l.Scales, shifts: l.Shifts})
		case *Dropout, *Flatten:
			// Identity at inference on [rows, cols] vectors.
		default:
			return nil, nil, 0, 0, fmt.Errorf("nn: i8 path does not support layer %d (%s)", i, e.Layer.Kind())
		}
	}
	if len(segs) == 0 {
		return nil, nil, 0, 0, fmt.Errorf("nn: i8 path: network has no dense layers")
	}
	return prelude, segs, in, cols, nil
}

// qparams is one activation encoding: real = scale * (q - zero).
type qparams struct {
	scale float64
	zero  int32
}

// rangeQParams derives the affine encoding covering r with 256 codes.
func rangeQParams(r QuantRange) (qparams, error) {
	if math.IsNaN(r.Lo) || math.IsNaN(r.Hi) || math.IsInf(r.Lo, 0) || math.IsInf(r.Hi, 0) || r.Lo > r.Hi {
		return qparams{}, fmt.Errorf("nn: i8 path: unusable calibration range [%g, %g]", r.Lo, r.Hi)
	}
	span := r.Hi - r.Lo
	if span <= 0 {
		// A constant activation still needs a nonzero scale; resolution
		// around the constant is all that matters.
		span = math.Max(math.Abs(r.Lo)*1e-3, 1e-6)
	}
	s := span / 255
	z := int32(math.Round(-128 - r.Lo/s))
	return qparams{scale: s, zero: z}, nil
}

// rangeQParams16 derives the affine encoding covering r with 65536
// codes — the pre-activation resolution behind the tail LUT.
func rangeQParams16(r QuantRange) (qparams, error) {
	q, err := rangeQParams(r)
	if err != nil {
		return qparams{}, err
	}
	span := (r.Hi - r.Lo)
	if span <= 0 {
		span = q.scale * 255 // the widened degenerate span
	}
	s := span / 65535
	z := int32(math.Round(-32768 - r.Lo/s))
	return qparams{scale: s, zero: z}, nil
}

// NewForwardI8 compiles net into an int8 inference program under the
// fitted calibration, quantizing its weights once. The calibration must
// match the network's geometry and segment count. Like NewForward32,
// failure means "stay on the wider path".
func NewForwardI8(net *Network, calib *QuantCalib) (*ForwardI8, error) {
	if calib == nil {
		return nil, fmt.Errorf("nn: i8 path: nil calibration")
	}
	prelude, segs, in, out, err := compileSegments(net)
	if err != nil {
		return nil, err
	}
	if in != calib.InDim || out != calib.OutDim {
		return nil, fmt.Errorf("nn: i8 path: model is %d -> %d, calibration fitted for %d -> %d",
			in, out, calib.InDim, calib.OutDim)
	}
	if len(segs) != calib.Segments() {
		return nil, fmt.Errorf("nn: i8 path: model has %d dense segments, calibration has %d",
			len(segs), calib.Segments())
	}
	f := &ForwardI8{inDim: in, outDim: out, prelude: prelude}
	f.scratch.New = func() any { return new(i8Scratch) }
	inQ, err := rangeQParams(calib.Bounds[0])
	if err != nil {
		return nil, err
	}
	f.inScale, f.inZero = inQ.scale, inQ.zero
	for s := range segs {
		seg := &segs[s]
		q := segI8{inCols: seg.inCols, outCols: seg.outCols, final: s == len(segs)-1}
		// Per-output-channel symmetric weight quantization, plus the
		// column sums the zero-point correction needs.
		q.w = make([]int8, len(seg.w))
		sw := make([]float64, seg.outCols)
		colSum := make([]int32, seg.outCols)
		for j := 0; j < seg.outCols; j++ {
			m := 0.0
			for k := 0; k < seg.inCols; k++ {
				v := seg.w[k*seg.outCols+j]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("nn: i8 path: non-finite weight in segment %d", s)
				}
				if a := math.Abs(v); a > m {
					m = a
				}
			}
			if m == 0 {
				m = 1 // all-zero column quantizes to zeros under any scale
			}
			sw[j] = m / 127
			for k := 0; k < seg.inCols; k++ {
				q.w[k*seg.outCols+j] = roundSatI8(seg.w[k*seg.outCols+j] / sw[j])
				colSum[j] += int32(q.w[k*seg.outCols+j])
			}
		}
		segIn, err := rangeQParams(calib.Bounds[s])
		if err != nil {
			return nil, err
		}
		for _, op := range seg.tail {
			if op.kind == tailChanAffine {
				q.perCol = true
			}
		}
		if q.final || q.perCol {
			// Exact epilogue:
			// real = segIn.scale*sw[j]*(acc - zin*colSum[j]) + b[j],
			// with the correction folded into the offset.
			q.deqScale = make([]float64, seg.outCols)
			q.deqOff = make([]float64, seg.outCols)
			for j := 0; j < seg.outCols; j++ {
				q.deqScale[j] = segIn.scale * sw[j]
				q.deqOff[j] = seg.b[j] - q.deqScale[j]*float64(segIn.zero)*float64(colSum[j])
			}
			q.tail = seg.tail
			if !q.final {
				outQ, err := rangeQParams(calib.Bounds[s+1])
				if err != nil {
					return nil, err
				}
				q.outInvScale, q.outZero = 1/outQ.scale, outQ.zero
			}
			f.segs = append(f.segs, q)
			continue
		}
		preQ, err := rangeQParams16(calib.Preacts[s])
		if err != nil {
			return nil, err
		}
		outQ, err := rangeQParams(calib.Bounds[s+1])
		if err != nil {
			return nil, err
		}
		q.mult = make([]float32, seg.outCols)
		q.off = make([]float32, seg.outCols)
		for j := 0; j < seg.outCols; j++ {
			m := segIn.scale * sw[j] / preQ.scale
			q.mult[j] = float32(m)
			q.off[j] = float32(seg.b[j]/preQ.scale + float64(preQ.zero) - m*float64(segIn.zero)*float64(colSum[j]))
		}
		// The tail LUT: dequantize each int16 pre-activation code, run
		// the exact tail, requantize into the next segment's encoding.
		q.lut = make([]int8, 1<<16)
		for code := -32768; code <= 32767; code++ {
			y := preQ.scale * float64(int32(code)-preQ.zero)
			v := tailEval(seg.tail, 0, y)
			q.lut[code+32768] = roundSatI8(v*1/outQ.scale + float64(outQ.zero))
		}
		f.segs = append(f.segs, q)
	}
	return f, nil
}

// InDim returns the per-sample input width.
func (f *ForwardI8) InDim() int { return f.inDim }

// OutDim returns the per-sample output width.
func (f *ForwardI8) OutDim() int { return f.outDim }

// Forward runs the compiled program on a row-major [rows, InDim]
// float64 slab, writing the [rows, OutDim] result into dst. The input
// is quantized once, every hidden segment stays int8, and the final
// segment dequantizes into dst. Intermediates live in pooled buffers;
// steady state allocates nothing.
func (f *ForwardI8) Forward(dst, x []float64, rows int) error {
	if rows < 0 || len(x) != rows*f.inDim || len(dst) != rows*f.outDim {
		return fmt.Errorf("nn: i8 forward input %d -> dst %d floats, want [%d, %d] -> [%d, %d]",
			len(x), len(dst), rows, f.inDim, rows, f.outDim)
	}
	s := f.scratch.Get().(*i8Scratch)
	defer f.scratch.Put(s)
	if cap(s.q[0]) < len(x) {
		s.q[0] = make([]int8, len(x))
	}
	cur := s.q[0][:len(x)]
	inv := 1 / f.inScale
	zf := float64(f.inZero)
	if len(f.prelude) == 0 {
		for i, v := range x {
			cur[i] = roundSatI8(v*inv + zf)
		}
	} else {
		// Normalization prelude fused into quantization: the input range
		// was calibrated on post-prelude values.
		for i, v := range x {
			cur[i] = roundSatI8(tailEval(f.prelude, i%f.inDim, v)*inv + zf)
		}
	}
	slot := 1
	for si := range f.segs {
		seg := &f.segs[si]
		need := rows * seg.outCols
		if cap(s.acc) < need {
			s.acc = make([]int32, need)
		}
		acc := s.acc[:need]
		if err := tensor.MatMulInt8Into(acc, cur, seg.w, rows, seg.inCols, seg.outCols); err != nil {
			return err
		}
		if seg.final {
			cols := seg.outCols
			for i, a := range acc {
				j := i % cols
				dst[i] = tailEval(seg.tail, j, seg.deqScale[j]*float64(a)+seg.deqOff[j])
			}
			return nil
		}
		if cap(s.q[slot]) < need {
			s.q[slot] = make([]int8, need)
		}
		next := s.q[slot][:need]
		cols := seg.outCols
		if seg.perCol {
			zf := float64(seg.outZero)
			for i, a := range acc {
				j := i % cols
				v := tailEval(seg.tail, j, seg.deqScale[j]*float64(a)+seg.deqOff[j])
				next[i] = roundSatI8(v*seg.outInvScale + zf)
			}
		} else {
			lut := seg.lut
			for i, a := range acc {
				j := i % cols
				qp := roundSatI16f32(seg.mult[j]*float32(a) + seg.off[j])
				next[i] = lut[int(qp)+32768]
			}
		}
		cur = next
		slot ^= 1
	}
	return nil
}

// roundSatI8 rounds half away from zero and saturates to int8.
func roundSatI8(v float64) int8 {
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	i := int32(v)
	if i > 127 {
		return 127
	}
	if i < -128 {
		return -128
	}
	return int8(i)
}

// roundSatI16f32 rounds half away from zero and saturates to int16 —
// the f32 requant step that indexes the tail LUT.
func roundSatI16f32(v float32) int16 {
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	i := int32(v)
	if i > 32767 {
		return 32767
	}
	if i < -32768 {
		return -32768
	}
	return int16(i)
}
