package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func ensembleNet(seed int64) *Network {
	n := NewNetwork(seed)
	n.Add(n.NewDense(2, 4), NewActivation(ActTanh), n.NewDense(4, 2))
	return n
}

func ensembleInput(t *testing.T) *tensor.Tensor {
	t.Helper()
	x, err := tensor.FromSlice([]float64{0.1, -0.4, 0.9, 0.2, -1.1, 0.6}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestForwardEnsembleIntoMeanAndVariance checks the ensemble forward
// against the definition, computed member by member with the same
// operation order: mean across members per feature, population
// variance across members averaged per row.
func TestForwardEnsembleIntoMeanAndVariance(t *testing.T) {
	a, b := ensembleNet(101), ensembleNet(202)
	x := ensembleInput(t)
	ya, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}

	dst := tensor.New(3, 2)
	rowVar := make([]float64, 3)
	if err := ForwardEnsembleInto([]*Network{a, b}, dst, x, rowVar, &EnsembleScratch{}); err != nil {
		t.Fatal(err)
	}
	for i := range dst.Data() {
		if want := (ya.Data()[i] + yb.Data()[i]) / 2; dst.Data()[i] != want {
			t.Fatalf("mean[%d] = %v, want %v", i, dst.Data()[i], want)
		}
	}
	for r := 0; r < 3; r++ {
		var acc float64
		for c := 0; c < 2; c++ {
			i := r*2 + c
			va, vb := ya.Data()[i], yb.Data()[i]
			mean := (va + vb) / 2
			if v := (va*va+vb*vb)/2 - mean*mean; v > 0 {
				acc += v
			}
		}
		if want := acc / 2; rowVar[r] != want {
			t.Fatalf("rowVar[%d] = %v, want %v", r, rowVar[r], want)
		}
		if rowVar[r] <= 0 {
			t.Fatalf("rowVar[%d] = %v: different seeds must disagree somewhere", r, rowVar[r])
		}
	}
}

// TestForwardEnsembleIntoSingleMember pins the degenerate case: one
// member means its exact output and zero variance.
func TestForwardEnsembleIntoSingleMember(t *testing.T) {
	a := ensembleNet(7)
	x := ensembleInput(t)
	want, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(3, 2)
	rowVar := []float64{-1, -1, -1}
	if err := ForwardEnsembleInto([]*Network{a}, dst, x, rowVar, nil); err != nil {
		t.Fatal(err)
	}
	for i := range dst.Data() {
		if dst.Data()[i] != want.Data()[i] {
			t.Fatalf("output %d = %v, want %v", i, dst.Data()[i], want.Data()[i])
		}
	}
	for r, v := range rowVar {
		if v != 0 {
			t.Fatalf("single-member rowVar[%d] = %v, want 0", r, v)
		}
	}
}

// TestForwardEnsembleIntoNaNIsMaxUncertainty: a row whose member
// outputs are NaN (here via NaN input) must report +Inf variance — the
// NaN-skipping variance clamp must never let a poisoned row read as
// zero variance.
func TestForwardEnsembleIntoNaNIsMaxUncertainty(t *testing.T) {
	a, b := ensembleNet(11), ensembleNet(12)
	x, err := tensor.FromSlice([]float64{0.1, 0.2, math.NaN(), 0.2, 0.3, 0.4}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(3, 2)
	rowVar := make([]float64, 3)
	if err := ForwardEnsembleInto([]*Network{a, b}, dst, x, rowVar, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rowVar[1], 1) {
		t.Fatalf("NaN row variance = %v, want +Inf", rowVar[1])
	}
	for _, r := range []int{0, 2} {
		if math.IsInf(rowVar[r], 0) || math.IsNaN(rowVar[r]) {
			t.Fatalf("finite row %d variance = %v, poisoned by the NaN row", r, rowVar[r])
		}
	}
}

// TestForwardEnsembleIntoValidation pins the argument errors.
func TestForwardEnsembleIntoValidation(t *testing.T) {
	a := ensembleNet(1)
	x := ensembleInput(t)
	dst := tensor.New(3, 2)
	if err := ForwardEnsembleInto(nil, dst, x, nil, nil); err == nil {
		t.Error("no members must be rejected")
	}
	if err := ForwardEnsembleInto([]*Network{a}, nil, x, nil, nil); err == nil {
		t.Error("nil dst must be rejected")
	}
	if err := ForwardEnsembleInto([]*Network{a}, dst, x, make([]float64, 2), nil); err == nil {
		t.Error("rowVar length mismatch must be rejected")
	}
	if err := ForwardEnsembleInto([]*Network{a, nil}, dst, x, nil, nil); err == nil {
		t.Error("nil member must be rejected")
	}
}

// TestForwardEnsembleIntoScratchReuse: the same scratch across calls
// (including a batch-shape change) must not change results.
func TestForwardEnsembleIntoScratchReuse(t *testing.T) {
	nets := []*Network{ensembleNet(21), ensembleNet(22)}
	x := ensembleInput(t)
	scr := &EnsembleScratch{}

	fresh := tensor.New(3, 2)
	freshVar := make([]float64, 3)
	if err := ForwardEnsembleInto(nets, fresh, x, freshVar, nil); err != nil {
		t.Fatal(err)
	}

	// Warm the scratch on a different shape first, then reuse it.
	small, err := tensor.FromSlice([]float64{1, 2}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ForwardEnsembleInto(nets, tensor.New(1, 2), small, make([]float64, 1), scr); err != nil {
		t.Fatal(err)
	}
	reused := tensor.New(3, 2)
	reusedVar := make([]float64, 3)
	if err := ForwardEnsembleInto(nets, reused, x, reusedVar, scr); err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Data() {
		if fresh.Data()[i] != reused.Data()[i] {
			t.Fatalf("output %d differs with a reused scratch: %v != %v", i, reused.Data()[i], fresh.Data()[i])
		}
	}
	for r := range freshVar {
		if freshVar[r] != reusedVar[r] {
			t.Fatalf("rowVar %d differs with a reused scratch: %v != %v", r, reusedVar[r], freshVar[r])
		}
	}
}
