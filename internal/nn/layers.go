package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = xW + b for x of shape [batch, In].
type Dense struct {
	In, Out int
	Weight  *Param // [In, Out]
	Bias    *Param // [Out]

	lastX *tensor.Tensor
	// Training-path arenas, reused across steps so a steady-state step
	// allocates nothing. Inference keeps its allocating/pooled paths so
	// concurrent Forward callers never touch these.
	fwdOut scratch // forward output [batch, Out]
	dxBuf  scratch // input gradient [batch, In]
	dwBuf  scratch // weight-gradient staging [In, Out]
}

// NewDense constructs a Dense layer with He-uniform initialized weights.
func (n *Network) NewDense(in, out int) *Dense {
	d := &Dense{In: in, Out: out,
		Weight: newParam("weight", in, out),
		Bias:   newParam("bias", out),
	}
	initUniform(n.rng, d.Weight.W, kaimingBound(in))
	initUniform(n.rng, d.Bias.W, kaimingBound(in))
	return d
}

// Kind identifies the layer in summaries and serialized models.
func (d *Dense) Kind() string { return fmt.Sprintf("Dense(%d->%d)", d.In, d.Out) }

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// OutShape maps [In] to [Out].
func (d *Dense) OutShape(in []int) ([]int, error) {
	if len(in) != 1 || in[0] != d.In {
		return nil, fmt.Errorf("dense wants input shape [%d], got %v", d.In, in)
	}
	return []int{d.Out}, nil
}

// Forward computes xW + b with batch-parallel row blocks. The training
// pass writes into a layer-owned arena (reused across steps) and caches
// the input for Backward; inference allocates so shared networks stay
// safe under concurrent callers.
func (d *Dense) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		return nil, fmt.Errorf("dense wants [batch, %d], got %v", d.In, x.Shape())
	}
	x = x.Contiguous()
	var out *tensor.Tensor
	if train {
		d.lastX = x
		out = d.fwdOut.get2(x.Dim(0), d.Out)
	} else {
		out = tensor.New(x.Dim(0), d.Out)
	}
	if err := d.forwardInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// inferDims reports the [batch, Out] output extents for a rank-2 input.
func (d *Dense) inferDims(x *tensor.Tensor) (int, int, bool) {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		return 0, 0, false
	}
	return x.Dim(0), d.Out, true
}

// forwardInto computes xW + b into dst without allocating.
func (d *Dense) forwardInto(dst, x *tensor.Tensor) error {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		return fmt.Errorf("dense wants [batch, %d], got %v", d.In, x.Shape())
	}
	b := x.Dim(0)
	if dst.Rank() != 2 || dst.Dim(0) != b || dst.Dim(1) != d.Out || !dst.IsContiguous() {
		return fmt.Errorf("dense dst wants contiguous [%d, %d], got %v", b, d.Out, dst.Shape())
	}
	x = x.Contiguous()
	xd, wd, bd, od := x.Data(), d.Weight.W.Data(), d.Bias.W.Data(), dst.Data()
	in, outW := d.In, d.Out
	// Small products run the loop directly: no closure, no goroutines,
	// no allocation. The loop body must mirror the parallel branch so
	// results are bit-identical either way.
	if b*in*outW < denseParFLOPs {
		for r := 0; r < b; r++ {
			denseRow(xd[r*in:(r+1)*in], wd, bd, od[r*outW:(r+1)*outW])
		}
		return nil
	}
	parallel.ForRange(b, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			denseRow(xd[r*in:(r+1)*in], wd, bd, od[r*outW:(r+1)*outW])
		}
	})
	return nil
}

// denseParFLOPs is the multiply-accumulate count below which a dense
// forward pass runs serially on the calling goroutine.
const denseParFLOPs = 1 << 18

// denseRow computes one output row: orow = xrow @ W + bias.
func denseRow(xrow, wd, bd, orow []float64) {
	outW := len(orow)
	copy(orow, bd)
	for k, xv := range xrow {
		if xv == 0 {
			continue
		}
		wrow := wd[k*outW : (k+1)*outW]
		for j := range orow {
			orow[j] += xv * wrow[j]
		}
	}
}

// Backward computes input gradients and accumulates dW, db. Both matrix
// products run through the transpose-aware blocked kernels: dW = XᵀG via
// MatMulTransAInto (into a reusable staging buffer, then accumulated so
// gradient-accumulation semantics are preserved) and dX = GWᵀ via
// MatMulTransBInto, neither materializing a transposed copy. The kernels
// accumulate over the shared dimension ascending — the same order as the
// old hand-rolled loops — so results are bit-identical.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.lastX == nil {
		return nil, fmt.Errorf("dense backward without cached forward")
	}
	x := d.lastX
	g := grad.Contiguous()
	b := x.Dim(0)
	if g.Rank() != 2 || g.Dim(0) != b || g.Dim(1) != d.Out {
		return nil, fmt.Errorf("dense backward wants grad [%d, %d], got %v", b, d.Out, g.Shape())
	}
	gd := g.Data()
	dB := d.Bias.Grad.Data()
	out := d.Out

	// db = column sums of G.
	for r := 0; r < b; r++ {
		grow := gd[r*out : (r+1)*out]
		for j, gv := range grow {
			dB[j] += gv
		}
	}
	// dW += X^T G.
	dw := d.dwBuf.get2(d.In, out)
	if err := tensor.MatMulTransAInto(dw, x, g); err != nil {
		return nil, err
	}
	dW, dwd := d.Weight.Grad.Data(), dw.Data()
	for i := range dW {
		dW[i] += dwd[i]
	}
	// dX = G W^T.
	dx := d.dxBuf.get2(b, d.In)
	if err := tensor.MatMulTransBInto(dx, g, d.Weight.W); err != nil {
		return nil, err
	}
	d.lastX = nil
	return dx, nil
}

func (d *Dense) spec() layerSpec {
	return layerSpec{Kind: "dense", Ints: []int{d.In, d.Out}}
}

// Activation kinds supported by the engine.
const (
	ActReLU      = "relu"
	ActTanh      = "tanh"
	ActSigmoid   = "sigmoid"
	ActLeakyReLU = "leakyrelu"
	ActIdentity  = "identity"
)

// Activation applies an elementwise nonlinearity.
type Activation struct {
	Fn string

	lastOut *tensor.Tensor
	lastIn  *tensor.Tensor
	// Training-path arenas (see Dense): forward output and input
	// gradient, reused across steps.
	fwdOut scratch
	dxBuf  scratch
}

// NewActivation constructs the named activation; unknown names fail at
// Forward time via OutShape validation in the builder instead.
func NewActivation(fn string) *Activation { return &Activation{Fn: fn} }

// Kind identifies the activation.
func (a *Activation) Kind() string { return a.Fn }

// Params returns nil: activations are parameter-free.
func (a *Activation) Params() []*Param { return nil }

// OutShape is the identity on shapes.
func (a *Activation) OutShape(in []int) ([]int, error) {
	if !validActivation(a.Fn) {
		return nil, fmt.Errorf("unknown activation %q", a.Fn)
	}
	return append([]int(nil), in...), nil
}

func validActivation(fn string) bool {
	switch fn {
	case ActReLU, ActTanh, ActSigmoid, ActLeakyReLU, ActIdentity:
		return true
	}
	return false
}

// fn returns the scalar map for the activation kind.
func (a *Activation) fn() (func(float64) float64, error) {
	switch a.Fn {
	case ActReLU:
		return func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		}, nil
	case ActTanh:
		return math.Tanh, nil
	case ActSigmoid:
		return func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }, nil
	case ActLeakyReLU:
		return func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0.01 * v
		}, nil
	case ActIdentity:
		return func(v float64) float64 { return v }, nil
	}
	return nil, fmt.Errorf("unknown activation %q", a.Fn)
}

// applyElemwise maps dst[i] = f(src[i]) (src may alias dst), running the
// small case inline with no closure and chunk-parallelizing the rest.
// One home for the elementwise threshold keeps the activation paths'
// parallelization policy consistent.
func applyElemwise(dst, src []float64, f func(float64) float64) {
	if len(dst) < elemwiseParMin {
		for i := range dst {
			dst[i] = f(src[i])
		}
		return
	}
	parallel.ForChunked(len(dst), elemwiseParMin, func(i int) { dst[i] = f(src[i]) })
}

// elemwiseParMin is the element count below which elementwise maps run
// serially on the calling goroutine.
const elemwiseParMin = 4096

// Forward applies the nonlinearity elementwise. The training pass maps
// the input into a layer-owned arena; inference clones (the rank-2 hot
// path goes through forwardInto and the pooled arena instead).
func (a *Activation) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	f, err := a.fn()
	if err != nil {
		return nil, err
	}
	xc := x.Contiguous()
	var out *tensor.Tensor
	if train {
		out = a.fwdOut.like(xc)
	}
	if out == nil {
		out = xc.Clone()
		d := out.Data()
		applyElemwise(d, d, f)
	} else {
		applyElemwise(out.Data(), xc.Data(), f)
	}
	if train {
		a.lastIn = xc
		a.lastOut = out
	}
	return out, nil
}

// inferDims reports that the activation preserves rank-2 extents.
func (a *Activation) inferDims(x *tensor.Tensor) (int, int, bool) {
	if x.Rank() != 2 || !validActivation(a.Fn) {
		return 0, 0, false
	}
	return x.Dim(0), x.Dim(1), true
}

// forwardInto applies the nonlinearity from x into dst without
// allocating. dst may not alias a non-contiguous x.
func (a *Activation) forwardInto(dst, x *tensor.Tensor) error {
	f, err := a.fn()
	if err != nil {
		return err
	}
	if dst.Rank() != 2 || x.Rank() != 2 || dst.Dim(0) != x.Dim(0) || dst.Dim(1) != x.Dim(1) || !dst.IsContiguous() {
		return fmt.Errorf("activation dst wants contiguous %v, got %v", x.Shape(), dst.Shape())
	}
	applyElemwise(dst.Data(), x.Contiguous().Data(), f)
	return nil
}

// Backward multiplies the incoming gradient by the activation
// derivative, writing into a layer-owned arena instead of cloning.
func (a *Activation) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if a.lastOut == nil {
		return nil, fmt.Errorf("activation backward without cached forward")
	}
	gc := grad.Contiguous()
	g := a.dxBuf.like(gc)
	if g == nil {
		g = gc.Clone()
	} else if err := g.CopyFrom(gc); err != nil {
		return nil, err
	}
	gd := g.Data()
	od := a.lastOut.Data()
	id := a.lastIn.Data()
	switch a.Fn {
	case ActReLU:
		for i := range gd {
			if id[i] <= 0 {
				gd[i] = 0
			}
		}
	case ActTanh:
		for i := range gd {
			gd[i] *= 1 - od[i]*od[i]
		}
	case ActSigmoid:
		for i := range gd {
			gd[i] *= od[i] * (1 - od[i])
		}
	case ActLeakyReLU:
		for i := range gd {
			if id[i] <= 0 {
				gd[i] *= 0.01
			}
		}
	case ActIdentity:
	}
	a.lastOut, a.lastIn = nil, nil
	return g, nil
}

func (a *Activation) spec() layerSpec { return layerSpec{Kind: "act:" + a.Fn} }

// Dropout randomly zeroes activations during training with probability P,
// scaling survivors by 1/(1-P); inference is the identity.
type Dropout struct {
	P   float64
	rng *rand.Rand

	lastMask []float64
}

// NewDropout constructs a dropout layer drawing masks from the network's
// deterministic RNG.
func (n *Network) NewDropout(p float64) *Dropout {
	return &Dropout{P: p, rng: rand.New(rand.NewSource(n.rng.Int63()))}
}

// Kind identifies the layer.
func (d *Dropout) Kind() string { return fmt.Sprintf("Dropout(%.2f)", d.P) }

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }

// OutShape is the identity.
func (d *Dropout) OutShape(in []int) ([]int, error) {
	if d.P < 0 || d.P >= 1 {
		return nil, fmt.Errorf("dropout probability %g out of [0,1)", d.P)
	}
	return append([]int(nil), in...), nil
}

// Forward applies the mask during training; identity at inference.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.P == 0 {
		d.lastMask = nil
		return x, nil
	}
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(1))
	}
	out := x.Contiguous().Clone()
	data := out.Data()
	mask := make([]float64, len(data))
	keep := 1 - d.P
	inv := 1 / keep
	for i := range data {
		if d.rng.Float64() < keep {
			mask[i] = inv
			data[i] *= inv
		} else {
			data[i] = 0
		}
	}
	d.lastMask = mask
	return out, nil
}

// Backward applies the cached mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.lastMask == nil {
		return grad, nil
	}
	g := grad.Contiguous().Clone()
	gd := g.Data()
	if len(gd) != len(d.lastMask) {
		return nil, fmt.Errorf("dropout backward size mismatch: %d vs %d", len(gd), len(d.lastMask))
	}
	for i := range gd {
		gd[i] *= d.lastMask[i]
	}
	d.lastMask = nil
	return g, nil
}

func (d *Dropout) spec() layerSpec { return layerSpec{Kind: "dropout", Floats: []float64{d.P}} }

// Flatten collapses all sample dims into one: [B, d1, d2, ...] -> [B, D].
type Flatten struct {
	lastShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Kind identifies the layer.
func (f *Flatten) Kind() string { return "Flatten" }

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }

// OutShape collapses the sample dims.
func (f *Flatten) OutShape(in []int) ([]int, error) {
	return []int{tensor.NumElements(in)}, nil
}

// Forward reshapes to [batch, D].
func (f *Flatten) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("flatten wants rank >= 2, got %v", x.Shape())
	}
	if train {
		f.lastShape = x.Shape()
	}
	return x.Contiguous().Reshape(x.Dim(0), -1)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if f.lastShape == nil {
		return nil, fmt.Errorf("flatten backward without cached forward")
	}
	out, err := grad.Contiguous().Reshape(f.lastShape...)
	f.lastShape = nil
	return out, err
}

func (f *Flatten) spec() layerSpec { return layerSpec{Kind: "flatten"} }
