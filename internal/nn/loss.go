package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Loss computes a scalar objective and its gradient with respect to the
// prediction.
type Loss interface {
	// Value returns the mean loss over the batch.
	Value(pred, target *tensor.Tensor) (float64, error)
	// Grad returns dLoss/dPred, shaped like pred.
	Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error)
	Name() string
}

// lossGradInto is implemented by losses whose gradient can be written
// into a caller-provided tensor without allocating. The trainer uses it
// to keep the steady-state training step allocation-free, falling back
// to Grad for losses that do not implement it.
type lossGradInto interface {
	// GradInto writes dLoss/dPred into dst, which must be a contiguous
	// tensor shaped like pred.
	GradInto(dst, pred, target *tensor.Tensor) error
}

func checkGradDst(dst, pred *tensor.Tensor) error {
	if !tensor.SameShape(dst, pred) {
		return fmt.Errorf("nn: loss grad dst shape %v, want %v", dst.Shape(), pred.Shape())
	}
	if !dst.IsContiguous() {
		return fmt.Errorf("nn: loss grad dst must be contiguous")
	}
	return nil
}

// MSE is mean squared error, the training loss of the paper's regression
// surrogates.
type MSE struct{}

// Name identifies the loss.
func (MSE) Name() string { return "mse" }

// Value computes mean((pred-target)^2).
func (MSE) Value(pred, target *tensor.Tensor) (float64, error) {
	if err := checkSameShape(pred, target); err != nil {
		return 0, err
	}
	p, t := pred.Contiguous().Data(), target.Contiguous().Data()
	var s float64
	for i := range p {
		d := p[i] - t[i]
		s += d * d
	}
	return s / float64(len(p)), nil
}

// Grad computes 2*(pred-target)/n.
func (MSE) Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkSameShape(pred, target); err != nil {
		return nil, err
	}
	out := pred.Clone()
	if err := (MSE{}).GradInto(out, out, target); err != nil {
		return nil, err
	}
	return out, nil
}

// GradInto computes 2*(pred-target)/n into dst without allocating.
func (MSE) GradInto(dst, pred, target *tensor.Tensor) error {
	if err := checkSameShape(pred, target); err != nil {
		return err
	}
	if err := checkGradDst(dst, pred); err != nil {
		return err
	}
	pd, td, od := pred.Contiguous().Data(), target.Contiguous().Data(), dst.Data()
	inv := 2.0 / float64(len(od))
	for i := range od {
		od[i] = (pd[i] - td[i]) * inv
	}
	return nil
}

// WeightedMSE is mean squared error with a per-output-element weight,
// broadcast across the batch. Surrogates whose output channels live on
// very different scales (MiniWeather's density vs momentum vs potential
// temperature) use inverse-variance weights so small-scale channels are
// not drowned out of the loss.
type WeightedMSE struct {
	// Weights has one entry per sample element (the product of the
	// non-batch dims).
	Weights []float64
}

// InverseVarianceWeights builds per-element weights from per-block target
// standard deviations: blocks of blockLen consecutive elements share a
// weight 1/max(std, floor)^2, normalized to mean 1.
func InverseVarianceWeights(stds []float64, blockLen int, floor float64) []float64 {
	if floor <= 0 {
		floor = 1e-8
	}
	w := make([]float64, len(stds)*blockLen)
	var sum float64
	for b, sd := range stds {
		if sd < floor {
			sd = floor
		}
		v := 1 / (sd * sd)
		for i := 0; i < blockLen; i++ {
			w[b*blockLen+i] = v
		}
		sum += v * float64(blockLen)
	}
	if sum > 0 {
		scale := float64(len(w)) / sum
		for i := range w {
			w[i] *= scale
		}
	}
	return w
}

// Name identifies the loss.
func (WeightedMSE) Name() string { return "weighted-mse" }

func (l WeightedMSE) check(pred, target *tensor.Tensor) (batch, per int, err error) {
	if err := checkSameShape(pred, target); err != nil {
		return 0, 0, err
	}
	batch = pred.Dim(0)
	per = pred.Len() / batch
	if per != len(l.Weights) {
		return 0, 0, fmt.Errorf("nn: weighted mse has %d weights for %d sample elements", len(l.Weights), per)
	}
	return batch, per, nil
}

// Value computes mean(w_j * (pred-target)^2).
func (l WeightedMSE) Value(pred, target *tensor.Tensor) (float64, error) {
	_, per, err := l.check(pred, target)
	if err != nil {
		return 0, err
	}
	p, t := pred.Contiguous().Data(), target.Contiguous().Data()
	var s float64
	for i := range p {
		d := p[i] - t[i]
		s += l.Weights[i%per] * d * d
	}
	return s / float64(len(p)), nil
}

// Grad computes 2*w_j*(pred-target)/n.
func (l WeightedMSE) Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error) {
	out := pred.Clone()
	if err := l.GradInto(out, out, target); err != nil {
		return nil, err
	}
	return out, nil
}

// GradInto computes 2*w_j*(pred-target)/n into dst without allocating.
func (l WeightedMSE) GradInto(dst, pred, target *tensor.Tensor) error {
	_, per, err := l.check(pred, target)
	if err != nil {
		return err
	}
	if err := checkGradDst(dst, pred); err != nil {
		return err
	}
	pd, td, od := pred.Contiguous().Data(), target.Contiguous().Data(), dst.Data()
	inv := 2.0 / float64(len(od))
	for i := range od {
		od[i] = l.Weights[i%per] * (pd[i] - td[i]) * inv
	}
	return nil
}

// MAE is mean absolute error.
type MAE struct{}

// Name identifies the loss.
func (MAE) Name() string { return "mae" }

// Value computes mean(|pred-target|).
func (MAE) Value(pred, target *tensor.Tensor) (float64, error) {
	if err := checkSameShape(pred, target); err != nil {
		return 0, err
	}
	p, t := pred.Contiguous().Data(), target.Contiguous().Data()
	var s float64
	for i := range p {
		s += math.Abs(p[i] - t[i])
	}
	return s / float64(len(p)), nil
}

// Grad computes sign(pred-target)/n.
func (MAE) Grad(pred, target *tensor.Tensor) (*tensor.Tensor, error) {
	out := pred.Clone()
	if err := (MAE{}).GradInto(out, out, target); err != nil {
		return nil, err
	}
	return out, nil
}

// GradInto computes sign(pred-target)/n into dst without allocating.
func (MAE) GradInto(dst, pred, target *tensor.Tensor) error {
	if err := checkSameShape(pred, target); err != nil {
		return err
	}
	if err := checkGradDst(dst, pred); err != nil {
		return err
	}
	pd, td, od := pred.Contiguous().Data(), target.Contiguous().Data(), dst.Data()
	inv := 1.0 / float64(len(od))
	for i := range od {
		switch {
		case pd[i] > td[i]:
			od[i] = inv
		case pd[i] < td[i]:
			od[i] = -inv
		default:
			od[i] = 0
		}
	}
	return nil
}

func checkSameShape(a, b *tensor.Tensor) error {
	if !tensor.SameShape(a, b) {
		return fmt.Errorf("nn: loss shape mismatch %v vs %v", a.Shape(), b.Shape())
	}
	if a.Len() == 0 {
		return fmt.Errorf("nn: loss on empty tensors")
	}
	return nil
}
