//go:build !race

package nn

// raceEnabled reports whether the race detector is active; see the race
// build-tagged counterpart.
const raceEnabled = false
