package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Affine applies a fixed elementwise transform y = Scale*x + Shift. It is
// parameter-free (the constants are architecture, not weights) and serves
// as the input-normalization layer models prepend so the region can feed
// them raw application data (e.g. 0–255 pixels) — the model file stays
// self-contained, as a TorchScript archive's preprocessing would be.
type Affine struct {
	Scale, Shift float64
}

// NewAffine constructs a fixed affine layer.
func NewAffine(scale, shift float64) *Affine { return &Affine{Scale: scale, Shift: shift} }

// Kind identifies the layer.
func (a *Affine) Kind() string { return fmt.Sprintf("Affine(*%g%+g)", a.Scale, a.Shift) }

// Params returns nil: the transform is fixed.
func (a *Affine) Params() []*Param { return nil }

// OutShape is the identity.
func (a *Affine) OutShape(in []int) ([]int, error) {
	return append([]int(nil), in...), nil
}

// Forward applies the transform elementwise.
func (a *Affine) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out := x.Contiguous().Clone()
	d := out.Data()
	for i := range d {
		d[i] = a.Scale*d[i] + a.Shift
	}
	return out, nil
}

// Backward scales the gradient.
func (a *Affine) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	out := grad.Contiguous().Clone()
	d := out.Data()
	for i := range d {
		d[i] *= a.Scale
	}
	return out, nil
}

func (a *Affine) spec() layerSpec {
	return layerSpec{Kind: "affine", Floats: []float64{a.Scale, a.Shift}}
}

// ChannelAffine applies a fixed per-block transform to each sample:
// y[j] = Scales[j/BlockLen]*x[j] + Shifts[j/BlockLen] over the sample's
// contiguous elements. With BlockLen = H*W it normalizes (or denormalizes)
// the channels of a [batch, C, H, W] tensor — the standard conditioning
// fix when physical channels live on very different scales
// (MiniWeather's density vs momentum fields differ by ~400x).
type ChannelAffine struct {
	BlockLen int
	Scales   []float64
	Shifts   []float64
}

// NewChannelAffine constructs a per-block affine layer. shifts may be nil
// for a pure scaling.
func NewChannelAffine(blockLen int, scales, shifts []float64) *ChannelAffine {
	if shifts == nil {
		shifts = make([]float64, len(scales))
	}
	return &ChannelAffine{BlockLen: blockLen, Scales: scales, Shifts: shifts}
}

// Kind identifies the layer.
func (c *ChannelAffine) Kind() string {
	return fmt.Sprintf("ChannelAffine(%d blocks x %d)", len(c.Scales), c.BlockLen)
}

// Params returns nil: the transform is fixed.
func (c *ChannelAffine) Params() []*Param { return nil }

// OutShape validates the sample size against the block structure.
func (c *ChannelAffine) OutShape(in []int) ([]int, error) {
	if c.BlockLen <= 0 || len(c.Scales) == 0 || len(c.Scales) != len(c.Shifts) {
		return nil, fmt.Errorf("channel affine misconfigured: %d blocks x %d", len(c.Scales), c.BlockLen)
	}
	if n := tensor.NumElements(in); n != c.BlockLen*len(c.Scales) {
		return nil, fmt.Errorf("channel affine wants %d-element samples, got %v", c.BlockLen*len(c.Scales), in)
	}
	return append([]int(nil), in...), nil
}

// Forward applies the per-block transform.
func (c *ChannelAffine) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("channel affine wants rank >= 2 input, got %v", x.Shape())
	}
	per := x.Len() / x.Dim(0)
	if per != c.BlockLen*len(c.Scales) {
		return nil, fmt.Errorf("channel affine wants %d-element samples, got %d", c.BlockLen*len(c.Scales), per)
	}
	out := x.Contiguous().Clone()
	d := out.Data()
	for i := range d {
		b := (i % per) / c.BlockLen
		d[i] = c.Scales[b]*d[i] + c.Shifts[b]
	}
	return out, nil
}

// Backward scales the gradient per block.
func (c *ChannelAffine) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	out := grad.Contiguous().Clone()
	d := out.Data()
	per := out.Len() / out.Dim(0)
	for i := range d {
		b := (i % per) / c.BlockLen
		d[i] *= c.Scales[b]
	}
	return out, nil
}

func (c *ChannelAffine) spec() layerSpec {
	floats := make([]float64, 0, 2*len(c.Scales))
	floats = append(floats, c.Scales...)
	floats = append(floats, c.Shifts...)
	return layerSpec{Kind: "chanaffine", Ints: []int{c.BlockLen}, Floats: floats}
}
