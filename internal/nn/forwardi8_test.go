package nn

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// calibSlab draws a [rows, cols] calibration slab from the same
// distribution the accuracy checks evaluate on.
func calibSlab(seed int64, rows, cols int, spread float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, rows*cols)
	for i := range s {
		s[i] = rng.NormFloat64() * spread
	}
	return s
}

// meanRelL2 is the gate metric: mean over rows of ‖pred−ref‖₂ /
// max(‖ref‖₂, eps).
func meanRelL2(pred, ref []float64, rows, cols int) float64 {
	total := 0.0
	for r := 0; r < rows; r++ {
		var dn, rn float64
		for j := 0; j < cols; j++ {
			d := pred[r*cols+j] - ref[r*cols+j]
			dn += d * d
			rn += ref[r*cols+j] * ref[r*cols+j]
		}
		total += math.Sqrt(dn) / math.Max(math.Sqrt(rn), 1e-12)
	}
	return total / float64(rows)
}

func f64Forward(t testing.TB, net *Network, in []float64, rows, inDim int) []float64 {
	t.Helper()
	x, err := tensor.FromSlice(append([]float64(nil), in...), rows, inDim)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	return out.Contiguous().Data()
}

// TestForwardI8Accuracy: on the quickstart h16 MLP, the int8 path
// calibrated from in-distribution inputs must track the float64
// reference within a few percent mean relative L2 — the engine-level
// gate's default rtol with margin.
func TestForwardI8Accuracy(t *testing.T) {
	net := quickstartNet()
	calibX, err := tensor.FromSlice(calibSlab(21, 512, 5, 3), 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{QuantMaxAbs, QuantPercentile} {
		calib, err := CalibrateI8(net, calibX, CalibConfig{Mode: mode, Q: 0.001})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if calib.Segments() != 2 || calib.InDim != 5 || calib.OutDim != 1 {
			t.Fatalf("%s: calibrated %d segments %d->%d, want 2 segments 5->1",
				mode, calib.Segments(), calib.InDim, calib.OutDim)
		}
		f, err := NewForwardI8(net, calib)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		const rows = 257
		in := calibSlab(77, rows, 5, 3)
		ref := f64Forward(t, net, in, rows, 5)
		got := make([]float64, rows)
		if err := f.Forward(got, in, rows); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if e := meanRelL2(got, ref, rows, 1); !(e < 0.05) {
			t.Fatalf("%s: int8 mean relative L2 %g vs f64, want < 0.05", mode, e)
		}
	}
}

// TestForwardI8AllLayers covers every compilable layer kind — multiple
// dense segments, all four activations, affine and channel-affine tails
// (the per-column LUT path), and the inference-identity dropout.
func TestForwardI8AllLayers(t *testing.T) {
	net := NewNetwork(11)
	net.Add(
		net.NewDense(6, 12),
		NewActivation(ActLeakyReLU),
		net.NewDropout(0.3), // identity at inference
		net.NewDense(12, 8),
		NewActivation(ActSigmoid),
		NewChannelAffine(4, []float64{2, -3}, []float64{0.25, 0}),
		net.NewDense(8, 3),
		NewActivation(ActReLU),
	)
	calibX, err := tensor.FromSlice(calibSlab(5, 800, 6, 1), 800, 6)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := CalibrateI8(net, calibX, CalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if calib.Segments() != 3 {
		t.Fatalf("calibrated %d segments, want 3", calib.Segments())
	}
	f, err := NewForwardI8(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 33
	in := calibSlab(6, rows, 6, 1)
	ref := f64Forward(t, net, in, rows, 6)
	got := make([]float64, rows*3)
	if err := f.Forward(got, in, rows); err != nil {
		t.Fatal(err)
	}
	if e := meanRelL2(got, ref, rows, 3); !(e < 0.15) {
		t.Fatalf("int8 mean relative L2 %g vs f64 across 3 quantized segments, want < 0.15", e)
	}
}

// TestForwardI8Prelude: a standardization-wrapped MLP — per-feature
// ChannelAffine normalization in, denormalization out, raw wide-range
// features on very different scales — compiles with the elementwise
// prelude fused into input quantization. The int8 path must track the
// float64 reference, and the calibrated input bounds must be the
// post-prelude (normalized) range, not the raw feature range: the int8
// grid is spent on what the first dense layer actually sees.
func TestForwardI8Prelude(t *testing.T) {
	const inF, outF = 4, 2
	scales := []float64{100, 0.01, 7, 1}   // raw per-feature spreads
	shifts := []float64{50, -0.3, 0, -200} // raw per-feature offsets
	inScale := make([]float64, inF)
	inShift := make([]float64, inF)
	for j := range scales {
		inScale[j] = 1 / scales[j]
		inShift[j] = -shifts[j] / scales[j]
	}
	net := NewNetwork(31)
	net.Add(
		NewChannelAffine(1, inScale, inShift),
		net.NewDense(inF, 16),
		NewActivation(ActReLU),
		net.NewDense(16, outF),
		NewChannelAffine(1, []float64{3, 40}, []float64{-1, 250}),
	)
	raw := func(seed int64, rows int) []float64 {
		s := calibSlab(seed, rows, inF, 1)
		for i := range s {
			j := i % inF
			s[i] = s[i]*scales[j] + shifts[j]
		}
		return s
	}
	calibX, err := tensor.FromSlice(raw(41, 600), 600, inF)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := CalibrateI8(net, calibX, CalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if calib.Segments() != 2 {
		t.Fatalf("calibrated %d segments, want 2", calib.Segments())
	}
	if lo, hi := calib.Bounds[0].Lo, calib.Bounds[0].Hi; lo < -8 || hi > 8 {
		t.Fatalf("input bounds [%g, %g] look like raw features, want the normalized post-prelude range", lo, hi)
	}
	f, err := NewForwardI8(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 47
	in := raw(42, rows)
	ref := f64Forward(t, net, in, rows, inF)
	got := make([]float64, rows*outF)
	if err := f.Forward(got, in, rows); err != nil {
		t.Fatal(err)
	}
	if e := meanRelL2(got, ref, rows, outF); !(e < 0.05) {
		t.Fatalf("prelude int8 mean relative L2 %g vs f64, want < 0.05", e)
	}
}

// TestForwardI8Rejections pins the compile- and calibration-time
// refusals: unsupported layers, geometry and segment-count mismatches,
// and NaN-poisoned calibration data.
func TestForwardI8Rejections(t *testing.T) {
	conv := NewNetwork(3)
	conv.Add(conv.NewConv1D(2, 4, 3, 1), NewFlatten(), conv.NewDense(40, 2))
	convX, _ := tensor.FromSlice(make([]float64, 4*20), 4, 2, 10)
	if _, err := CalibrateI8(conv, convX, CalibConfig{}); err == nil {
		t.Fatal("conv model must fail int8 calibration")
	}

	net := quickstartNet()
	x, _ := tensor.FromSlice(calibSlab(1, 64, 5, 1), 64, 5)
	calib, err := CalibrateI8(net, x, CalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewForwardI8(net, nil); err == nil {
		t.Fatal("nil calibration must fail")
	}
	other := NewNetwork(2)
	other.Add(other.NewDense(5, 3))
	if _, err := NewForwardI8(other, calib); err == nil {
		t.Fatal("geometry mismatch must fail")
	}
	deeper := NewNetwork(2)
	deeper.Add(deeper.NewDense(5, 7), NewActivation(ActTanh), deeper.NewDense(7, 7), deeper.NewDense(7, 1))
	if _, err := NewForwardI8(deeper, calib); err == nil {
		t.Fatal("segment-count mismatch must fail")
	}

	poisoned := calibSlab(1, 64, 5, 1)
	poisoned[17] = math.NaN()
	px, _ := tensor.FromSlice(poisoned, 64, 5)
	if _, err := CalibrateI8(net, px, CalibConfig{}); err == nil {
		t.Fatal("NaN calibration data must fail the fit")
	}
	if _, err := CalibrateI8(net, x, CalibConfig{Mode: "nonsense"}); err == nil {
		t.Fatal("unknown mode must fail")
	}
	if _, err := CalibrateI8(net, x, CalibConfig{Mode: QuantPercentile, Q: 0.7}); err == nil {
		t.Fatal("out-of-range quantile must fail")
	}
}

// TestQuantSidecarRoundTrip: Save/Load must reproduce the calibration
// exactly (the ranges are raw float64 bits on disk), the header must
// open with the pinned magic, and corrupted sidecars must be refused.
func TestQuantSidecarRoundTrip(t *testing.T) {
	c := &QuantCalib{
		InDim: 5, OutDim: 1,
		Bounds:  []QuantRange{{-3.25, 3.5}, {-0.875, 0.9921875}},
		Preacts: []QuantRange{{-11.5, 7.75}, {-2.125, 2.25}},
		GateErr: 0.0123, GateRTol: 0.05,
	}
	path := filepath.Join(t.TempDir(), "m.gmod.quant")
	if err := c.SaveQuant(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadQuant(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.InDim != c.InDim || got.OutDim != c.OutDim ||
		got.GateErr != c.GateErr || got.GateRTol != c.GateRTol {
		t.Fatalf("round trip changed header: %+v vs %+v", got, c)
	}
	for i := range c.Bounds {
		if got.Bounds[i] != c.Bounds[i] || got.Preacts[i] != c.Preacts[i] {
			t.Fatalf("round trip changed range %d: %+v / %+v", i, got.Bounds[i], got.Preacts[i])
		}
	}
	if !got.GatePassed() {
		t.Fatal("recorded passing gate must survive the round trip")
	}

	// Golden header: the first 8 bytes are the pinned magic + version.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{0x51, 0x4e, 0x54, 0x38, 0x01, 0x00, 0x00, 0x00}; !bytes.Equal(raw[:8], want) {
		t.Fatalf("sidecar header %x, want %x (format drift)", raw[:8], want)
	}

	if _, err := DecodeQuant(bytes.NewReader(raw[:20])); err == nil {
		t.Fatal("truncated sidecar must fail")
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := DecodeQuant(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must fail")
	}
	// An inverted range is rejected at decode, not at first use.
	inv := &QuantCalib{InDim: 2, OutDim: 1,
		Bounds: []QuantRange{{5, -5}}, Preacts: []QuantRange{{0, 1}}, GateErr: 0.1, GateRTol: 0.2}
	var buf bytes.Buffer
	if err := inv.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeQuant(&buf); err == nil {
		t.Fatal("inverted range must fail decode")
	}
}

// TestQuantGateSemantics pins GatePassed across passing, failing, and
// NaN-stamped calibrations — the verdict LocalEngine keys off.
func TestQuantGateSemantics(t *testing.T) {
	cases := []struct {
		name     string
		err, tol float64
		pass     bool
	}{
		{"passing", 0.01, 0.05, true},
		{"exactly-at-tol", 0.05, 0.05, true},
		{"failing", 0.2, 0.05, false},
		{"nan-unstamped", math.NaN(), 0.05, false},
		{"inf", math.Inf(1), 0.05, false},
	}
	for _, tc := range cases {
		c := &QuantCalib{GateErr: tc.err, GateRTol: tc.tol}
		if got := c.GatePassed(); got != tc.pass {
			t.Fatalf("%s: GatePassed = %v, want %v", tc.name, got, tc.pass)
		}
	}
}

// TestForwardI8Concurrent: one compiled program, many goroutines. The
// pooled scratch must keep results identical to the serial run.
func TestForwardI8Concurrent(t *testing.T) {
	net := quickstartNet()
	x, _ := tensor.FromSlice(calibSlab(3, 256, 5, 2), 256, 5)
	calib, err := CalibrateI8(net, x, CalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewForwardI8(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 17
	mk := func(seed int64) []float64 { return calibSlab(seed, rows, 5, 2) }
	refs := make([][]float64, 8)
	for g := range refs {
		refs[g] = make([]float64, rows)
		if err := f.Forward(refs[g], mk(int64(g)), rows); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for iter := 0; iter < 8; iter++ {
		for g := range refs {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got := make([]float64, rows)
				if err := f.Forward(got, mk(int64(g)), rows); err != nil {
					errCh <- err
					return
				}
				for i := range got {
					if got[i] != refs[g][i] {
						errCh <- fmt.Errorf("goroutine %d row %d: %g != %g", g, i, got[i], refs[g][i])
						return
					}
				}
			}(g)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// BenchmarkForwardI8vsF32 is the acceptance benchmark: on the h16
// quickstart MLP the int8 path must beat the f32 path by ≥ 1.3x. Both
// run through their float64 engine seams, so the comparison includes
// each path's staging conversions — exactly what the serve hot path
// pays. The wider MLP shows the matmul-bound regime.
func BenchmarkForwardI8vsF32(b *testing.B) {
	cases := []struct {
		name   string
		widths []int
		rows   int
	}{
		{"h16/b64", []int{5, 16, 1}, 64},
		{"h16/b1024", []int{5, 16, 1}, 1024},
		{"h256x256/b256", []int{64, 256, 256, 8}, 256},
	}
	for _, tc := range cases {
		net := NewNetwork(7)
		for i := 0; i < len(tc.widths)-1; i++ {
			net.Add(net.NewDense(tc.widths[i], tc.widths[i+1]))
			if i < len(tc.widths)-2 {
				net.Add(NewActivation(ActTanh))
			}
		}
		inDim, outDim := tc.widths[0], tc.widths[len(tc.widths)-1]
		in := calibSlab(1, tc.rows, inDim, 1)
		x, _ := tensor.FromSlice(append([]float64(nil), in...), tc.rows, inDim)
		calib, err := CalibrateI8(net, x, CalibConfig{})
		if err != nil {
			b.Fatal(err)
		}
		f32, err := NewForward32(net)
		if err != nil {
			b.Fatal(err)
		}
		fi8, err := NewForwardI8(net, calib)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]float64, tc.rows*outDim)
		b.Run("f32/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f32.ForwardFloat64(out, in, tc.rows); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("i8/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fi8.Forward(out, in, tc.rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
