package nn

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func TestAffineForwardBackward(t *testing.T) {
	a := NewAffine(2, -1)
	x, _ := tensor.FromSlice([]float64{0, 1, 2, 3}, 2, 2)
	y, err := a.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 1, 3, 5}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("y[%d] = %g, want %g", i, y.Data()[i], w)
		}
	}
	g, err := a.Backward(tensor.Full(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Data() {
		if v != 2 {
			t.Fatalf("grad = %g, want 2", v)
		}
	}
}

func TestAffineInGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(5)
	net.Add(NewAffine(0.5, 1), net.NewDense(3, 4), NewActivation(ActTanh), net.NewDense(4, 2))
	numericalGradCheck(t, net, randTensor(rng, 3, 3), 1e-4)
}

func TestChannelAffineNormalizes(t *testing.T) {
	// Two channels of 3 elements: scale/shift each independently.
	c := NewChannelAffine(3, []float64{2, 10}, []float64{1, 0})
	x, _ := tensor.FromSlice([]float64{1, 1, 1, 2, 2, 2}, 1, 2, 3)
	y, err := c.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 3, 3, 20, 20, 20}
	for i, w := range want {
		if y.Contiguous().Data()[i] != w {
			t.Fatalf("y[%d] = %g, want %g", i, y.Contiguous().Data()[i], w)
		}
	}
}

func TestChannelAffineBackwardScales(t *testing.T) {
	c := NewChannelAffine(2, []float64{2, 4}, nil)
	g, err := c.Backward(tensor.Full(1, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	d := g.Data()
	// Per sample: first block scaled by 2, second by 4.
	if d[0] != 2 || d[1] != 2 || d[2] != 4 || d[3] != 4 {
		t.Fatalf("grads = %v", d[:4])
	}
}

func TestChannelAffineValidation(t *testing.T) {
	c := NewChannelAffine(3, []float64{1, 1}, nil)
	if _, err := c.OutShape([]int{5}); err == nil {
		t.Fatal("want size mismatch error")
	}
	if _, err := c.Forward(tensor.New(2, 5), false); err == nil {
		t.Fatal("want forward size mismatch error")
	}
	bad := &ChannelAffine{BlockLen: 0, Scales: []float64{1}, Shifts: []float64{0}}
	if _, err := bad.OutShape([]int{1}); err == nil {
		t.Fatal("want misconfiguration error")
	}
}

func TestChannelAffineGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(11)
	net.Add(
		NewChannelAffine(4, []float64{0.5, 2}, []float64{0.1, -0.1}),
		NewFlatten(),
		net.NewDense(8, 3),
	)
	numericalGradCheck(t, net, randTensor(rng, 2, 2, 2, 2), 1e-4)
}

func TestAffineLayersSaveLoad(t *testing.T) {
	net := NewNetwork(13)
	net.Add(
		NewAffine(1.0/255, -0.5),
		NewChannelAffine(4, []float64{1, 2, 3}, []float64{0.1, 0.2, 0.3}),
		NewFlatten(),
		net.NewDense(12, 2),
	)
	path := filepath.Join(t.TempDir(), "affine.gmod")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	x := randTensor(rng, 2, 3, 2, 2)
	y1, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("affine layers changed after reload")
		}
	}
}

func TestWeightedMSEMatchesMSEWithUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := randTensor(rng, 4, 6)
	q := randTensor(rng, 4, 6)
	w := WeightedMSE{Weights: []float64{1, 1, 1, 1, 1, 1}}
	v1, err := w.Value(p, q)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := MSE{}.Value(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-12 {
		t.Fatalf("unit-weighted MSE %g != MSE %g", v1, v2)
	}
	g1, _ := w.Grad(p, q)
	g2, _ := MSE{}.Grad(p, q)
	for i := range g1.Data() {
		if math.Abs(g1.Data()[i]-g2.Data()[i]) > 1e-12 {
			t.Fatal("unit-weighted gradient differs from MSE")
		}
	}
}

func TestWeightedMSEEmphasizesChannel(t *testing.T) {
	p, _ := tensor.FromSlice([]float64{1, 0}, 1, 2)
	q, _ := tensor.FromSlice([]float64{0, 1}, 1, 2)
	// Weight the first element 9x: its unit error dominates.
	w := WeightedMSE{Weights: []float64{9, 1}}
	v, err := w.Value(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-5) > 1e-12 { // (9*1 + 1*1)/2
		t.Fatalf("weighted value = %g, want 5", v)
	}
	if _, err := (WeightedMSE{Weights: []float64{1}}).Value(p, q); err == nil {
		t.Fatal("want weight-length mismatch error")
	}
}

func TestInverseVarianceWeights(t *testing.T) {
	w := InverseVarianceWeights([]float64{1, 2}, 2, 1e-9)
	if len(w) != 4 {
		t.Fatalf("len = %d", len(w))
	}
	// Smaller std gets the larger weight, blocks are constant, mean is 1.
	if !(w[0] > w[2]) || w[0] != w[1] || w[2] != w[3] {
		t.Fatalf("weights = %v", w)
	}
	mean := (w[0] + w[1] + w[2] + w[3]) / 4
	if math.Abs(mean-1) > 1e-12 {
		t.Fatalf("mean = %g, want 1", mean)
	}
	// Degenerate stds hit the floor instead of dividing by zero.
	w2 := InverseVarianceWeights([]float64{0, 1}, 1, 1e-3)
	if math.IsInf(w2[0], 0) || math.IsNaN(w2[0]) {
		t.Fatalf("floored weight = %g", w2[0])
	}
}

func TestWeightedMSETrainingBalancesChannels(t *testing.T) {
	// Two-output regression where output 0 is 100x smaller in scale.
	// Weighted training should recover it much better than its scale.
	rng := rand.New(rand.NewSource(23))
	n := 256
	x := randTensor(rng, n, 2)
	y := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		y.Set(0.01*(x.At(i, 0)+x.At(i, 1)), i, 0)
		y.Set(1.0*(x.At(i, 0)-x.At(i, 1)), i, 1)
	}
	ds, _ := NewDataset(x, y)
	channel0RMSE := func(loss Loss) float64 {
		net := NewNetwork(29)
		net.Add(net.NewDense(2, 16), NewActivation(ActTanh), net.NewDense(16, 2))
		if _, err := net.Fit(ds, nil, TrainConfig{
			Epochs: 150, BatchSize: 32, LR: 0.01, Seed: 4, Loss: loss,
		}); err != nil {
			t.Fatal(err)
		}
		pred, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		var se float64
		for i := 0; i < n; i++ {
			d := pred.At(i, 0) - y.At(i, 0)
			se += d * d
		}
		return math.Sqrt(se / float64(n))
	}
	weights := InverseVarianceWeights([]float64{0.01, 1}, 1, 1e-6)
	weighted := channel0RMSE(WeightedMSE{Weights: weights})
	unweighted := channel0RMSE(MSE{})
	// With fixed seeds this is deterministic: inverse-variance weighting
	// must fit the small channel at least as well as plain MSE.
	if weighted >= unweighted {
		t.Fatalf("weighting did not help the small channel: weighted %g vs plain %g", weighted, unweighted)
	}
}
