package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// shapedVsF64 runs net on a [rows, sample...] batch through both the
// float64 reference and the shaped f32 program and asserts agreement
// within single-precision tolerance.
func shapedVsF64(t *testing.T, net *Network, sample []int, rows int, seed int64) {
	t.Helper()
	f32, err := NewForward32Shaped(net, sample)
	if err != nil {
		t.Fatal(err)
	}
	if f32.InDim() != tensor.NumElements(sample) {
		t.Fatalf("InDim %d, want %d", f32.InDim(), tensor.NumElements(sample))
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]float64, rows*f32.InDim())
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	x, err := tensor.FromSlice(append([]float64(nil), in...), append([]int{rows}, sample...)...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	wd := want.Contiguous().Data()
	if len(wd) != rows*f32.OutDim() {
		t.Fatalf("OutDim %d does not match f64 output %v", f32.OutDim(), want.Shape())
	}
	got := make([]float64, len(wd))
	if err := f32.ForwardFloat64(got, in, rows); err != nil {
		t.Fatal(err)
	}
	for i, w := range wd {
		if diff := math.Abs(got[i] - w); diff > 1e-5*math.Abs(w)+1e-6 {
			t.Fatalf("element %d: f32 %.9g vs f64 %.9g (diff %.3g)", i, got[i], w, diff)
		}
	}
}

// TestForward32Shaped1D: the conv1d stack the f64 tests use — conv,
// activation, pool, flatten, dense — against the float64 reference.
func TestForward32Shaped1D(t *testing.T) {
	net := NewNetwork(17)
	net.Add(
		net.NewConv1D(2, 3, 3, 2), // [2, 11] -> [3, 5]
		NewActivation(ActTanh),
		NewMaxPool1D(2), // [3, 5] -> [3, 2]
		NewFlatten(),
		net.NewDense(6, 2),
	)
	shapedVsF64(t, net, []int{2, 11}, 9, 101)
}

// TestForward32Shaped2D: conv2d with a per-channel affine, pool, and a
// dense head — every shaped op kind in one program.
func TestForward32Shaped2D(t *testing.T) {
	net := NewNetwork(19)
	net.Add(
		net.NewConv2D(2, 3, 3, 2, 1), // [2, 9, 8] -> [3, 7, 7]
		NewChannelAffine(49, []float64{0.5, 2, -1}, []float64{0.1, 0, -0.2}),
		NewActivation(ActReLU),
		NewMaxPool2D(2), // [3, 7, 7] -> [3, 3, 3]
		NewFlatten(),
		net.NewDense(27, 4),
		NewActivation(ActSigmoid),
	)
	shapedVsF64(t, net, []int{2, 9, 8}, 7, 102)
}

// TestForward32ShapedVector: on a plain MLP and a vector sample shape,
// the shaped compiler agrees with what NewForward32 builds.
func TestForward32ShapedVector(t *testing.T) {
	net := quickstartNet()
	shapedVsF64(t, net, []int{5}, 13, 103)
}

// TestForward32ShapedRejects: unsupported layers, geometry mismatches,
// and degenerate sample shapes fail compilation instead of miscompiling.
func TestForward32ShapedRejects(t *testing.T) {
	body := NewNetwork(7)
	body.Add(NewActivation(ActTanh))
	res := NewNetwork(7)
	res.Add(NewResidual(body), NewFlatten(), res.NewDense(12, 2))
	conv := NewNetwork(7)
	conv.Add(conv.NewConv1D(2, 3, 3, 1), NewFlatten(), conv.NewDense(3*9, 2))
	cases := []struct {
		name   string
		net    *Network
		sample []int
	}{
		{"residual", res, []int{2, 6}},
		{"wrong channels", conv, []int{3, 11}},
		{"input shorter than kernel", conv, []int{2, 2}},
		{"dense width mismatch", conv, []int{2, 12}}, // lOut 10, flatten 30 != 27
		{"empty sample", conv, nil},
		{"zero dim", conv, []int{2, 0}},
		{"empty network", NewNetwork(1), []int{4}},
	}
	for _, tc := range cases {
		if _, err := NewForward32Shaped(tc.net, tc.sample); err == nil {
			t.Errorf("%s: compile must fail", tc.name)
		}
	}
}
