package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestOptimizerStateSurvivesFreshParamSlices: optimizer state is keyed
// by the Param identities, not the slice identity, so callers that
// rebuild the params slice every step (net.Params()) keep their state.
func TestOptimizerStateSurvivesFreshParamSlices(t *testing.T) {
	net := NewNetwork(1)
	d := net.NewDense(1, 1)
	net.Add(d)
	d.Weight.W.Data()[0] = 1
	opt := NewSGD(0.1, 0.9, 0)
	d.Weight.Grad.Data()[0] = 1
	if err := opt.Step(net.Params()); err != nil { // fresh slice #1
		t.Fatal(err)
	}
	d.Weight.Grad.Data()[0] = 1
	if err := opt.Step(net.Params()); err != nil { // fresh slice #2
		t.Fatal(err)
	}
	// With retained velocity: w = 1 - 0.1*1 - 0.1*(0.9+1) = 0.71.
	if got := d.Weight.W.Data()[0]; math.Abs(got-0.71) > 1e-12 {
		t.Fatalf("w = %g after two steps, want 0.71 (velocity lost across fresh slices?)", got)
	}
}

// TestSGDInterleavedModelsKeepState: one shared optimizer alternating
// between two networks must keep each parameter's velocity across the
// rebinds — the map-keyed semantics the slot layout preserves.
func TestSGDInterleavedModelsKeepState(t *testing.T) {
	mk := func() *Dense {
		net := NewNetwork(1)
		d := net.NewDense(1, 1)
		net.Add(d)
		d.Weight.W.Data()[0] = 1
		d.Bias.Grad.Data()[0] = 0
		return d
	}
	d1, d2 := mk(), mk()
	opt := NewSGD(0.1, 0.9, 0)
	step := func(d *Dense) {
		d.Weight.Grad.Data()[0] = 1
		if err := opt.Step([]*Param{d.Weight, d.Bias}); err != nil {
			t.Fatal(err)
		}
	}
	step(d1) // v1 = 1, w1 = 0.9
	step(d2) // rebind to d2's params
	step(d1) // rebind back: v1 must still be 1 -> v1 = 1.9, w1 = 0.71
	if got := d1.Weight.W.Data()[0]; math.Abs(got-0.71) > 1e-12 {
		t.Fatalf("w1 = %g after interleaved steps, want 0.71 (velocity lost on rebind?)", got)
	}
}

// TestAdamInterleavedMatchesMapSemantics replays an interleaved
// two-network stepping sequence through one shared Adam and checks the
// weights bit for bit against a reference implementation using the old
// map[*Param][]float64 state (shared step counter t, per-param moments).
func TestAdamInterleavedMatchesMapSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	mkPair := func() (a, b *Param) {
		a, b = newParam("a", 3), newParam("b", 2)
		for _, p := range []*Param{a, b} {
			w := p.W.Data()
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		return a, b
	}
	a1, b1 := mkPair()
	a2, b2 := mkPair()
	ref := map[*Param]*Param{}
	for _, pair := range [][2]*Param{{a1, b1}, {a2, b2}} {
		for _, p := range pair {
			cp := newParam(p.Name, p.W.Shape()...)
			cp.W.CopyFrom(p.W)
			ref[p] = cp
		}
	}

	opt := NewAdam(1e-2, 1e-3)
	refT := 0
	refM := map[*Param][]float64{}
	refV := map[*Param][]float64{}
	refStep := func(params []*Param) { // the pre-slot implementation
		refT++
		bc1 := 1 - math.Pow(opt.Beta1, float64(refT))
		bc2 := 1 - math.Pow(opt.Beta2, float64(refT))
		for _, p := range params {
			w, g := p.W.Data(), p.Grad.Data()
			m, ok := refM[p]
			if !ok {
				m = make([]float64, len(w))
				refM[p] = m
				refV[p] = make([]float64, len(w))
			}
			v := refV[p]
			for i := range w {
				m[i] = opt.Beta1*m[i] + (1-opt.Beta1)*g[i]
				v[i] = opt.Beta2*v[i] + (1-opt.Beta2)*g[i]*g[i]
				mh := m[i] / bc1
				vh := v[i] / bc2
				w[i] -= opt.LR * (mh/(math.Sqrt(vh)+opt.Eps) + opt.WeightDecay*w[i])
			}
		}
	}

	sets := [][]*Param{{a1, b1}, {a2, b2}, {a1, b1}, {a1, b1}, {a2, b2}}
	for stepIdx, set := range sets {
		for _, p := range set {
			g := p.Grad.Data()
			for i := range g {
				g[i] = rng.NormFloat64()
				ref[p].Grad.Data()[i] = g[i]
			}
		}
		if err := opt.Step(set); err != nil {
			t.Fatal(err)
		}
		refSet := make([]*Param, len(set))
		for i, p := range set {
			refSet[i] = ref[p]
		}
		refStep(refSet)
		for _, p := range set {
			got, want := p.W.Data(), ref[p].W.Data()
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d param %s[%d]: %g, reference %g", stepIdx, p.Name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOptimizerParallelPathMatchesSerial runs a parameter large enough
// to cross optParMin and checks the parallel element loop against a
// serial recomputation for both optimizers.
func TestOptimizerParallelPathMatchesSerial(t *testing.T) {
	const n = optParMin * 2
	rng := rand.New(rand.NewSource(303))
	mk := func() *Param {
		p := newParam("big", n)
		w, g := p.W.Data(), p.Grad.Data()
		for i := range w {
			w[i] = rng.NormFloat64()
			g[i] = rng.NormFloat64()
		}
		return p
	}
	pSGD := mk()
	wantSGD := make([]float64, n)
	vel := make([]float64, n)
	{
		w, g := pSGD.W.Data(), pSGD.Grad.Data()
		for i := range wantSGD {
			vel[i] = 0.9*vel[i] + g[i] + 1e-4*w[i]
			wantSGD[i] = w[i] - 0.05*vel[i]
		}
	}
	if err := NewSGD(0.05, 0.9, 1e-4).Step([]*Param{pSGD}); err != nil {
		t.Fatal(err)
	}
	for i, w := range pSGD.W.Data() {
		if w != wantSGD[i] {
			t.Fatalf("sgd parallel[%d] = %g, want %g", i, w, wantSGD[i])
		}
	}

	pAdam := mk()
	wantAdam := make([]float64, n)
	{
		// Betas as variables so the reference performs the same runtime
		// float arithmetic as the implementation (constant folding is
		// exact in Go and would differ in the last ulp).
		b1, b2 := 0.9, 0.999
		w, g := pAdam.W.Data(), pAdam.Grad.Data()
		bc1, bc2 := 1-math.Pow(b1, 1), 1-math.Pow(b2, 1)
		for i := range wantAdam {
			m := b1*0 + (1-b1)*g[i]
			v := b2*0 + (1-b2)*g[i]*g[i]
			wantAdam[i] = w[i] - 1e-3*((m/bc1)/(math.Sqrt(v/bc2)+1e-8)+1e-4*w[i])
		}
	}
	if err := NewAdam(1e-3, 1e-4).Step([]*Param{pAdam}); err != nil {
		t.Fatal(err)
	}
	for i, w := range pAdam.W.Data() {
		if w != wantAdam[i] {
			t.Fatalf("adam parallel[%d] = %g, want %g", i, w, wantAdam[i])
		}
	}
}
