package directive

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) Directive {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return d
}

func TestParsePaperFigure2Functor(t *testing.T) {
	// The ifnctr declaration from Figure 2 of the paper, including the
	// pragma prefix and line continuations. (The paper's listing drops
	// one closing parenthesis; this is the balanced form.)
	src := "#pragma approx tensor functor(ifnctr: \\\n" +
		"[i, j, 0:5] = ( ([i-1, j], [i+1, j], \\\n[i, j-1:j+2])))"
	d := mustParse(t, src)
	f, ok := d.(*FunctorDecl)
	if !ok {
		t.Fatalf("got %T, want *FunctorDecl", d)
	}
	if f.Name != "ifnctr" {
		t.Fatalf("name = %q", f.Name)
	}
	if len(f.LHS.Slices) != 3 {
		t.Fatalf("LHS rank = %d, want 3", len(f.LHS.Slices))
	}
	if len(f.RHS) != 3 {
		t.Fatalf("RHS slice count = %d, want 3", len(f.RHS))
	}
	syms := f.SymbolNames()
	if len(syms) != 2 || syms[0] != "i" || syms[1] != "j" {
		t.Fatalf("symbols = %v, want [i j]", syms)
	}
}

func TestParsePaperFigure2OutputFunctor(t *testing.T) {
	d := mustParse(t, "#pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))")
	f := d.(*FunctorDecl)
	if f.Name != "ofnctr" || len(f.RHS) != 1 {
		t.Fatalf("unexpected parse: %v", f)
	}
}

func TestParsePaperFigure2Maps(t *testing.T) {
	d := mustParse(t, "#pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))")
	m := d.(*MapDecl)
	if m.Dir != To || m.Functor != "ifnctr" {
		t.Fatalf("unexpected map: %v", m)
	}
	if len(m.Targets) != 1 || m.Targets[0].Array != "t" || len(m.Targets[0].Slices) != 2 {
		t.Fatalf("unexpected targets: %v", m.Targets)
	}
	d2 := mustParse(t, "#pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))")
	if d2.(*MapDecl).Dir != From {
		t.Fatal("expected from direction")
	}
}

func TestParsePaperFigure2ML(t *testing.T) {
	src := `#pragma approx ml(predicated:true) in(t) out(tnew) db("/path/data.h5") model("/path/model.pt")`
	d := mustParse(t, src)
	ml := d.(*MLDecl)
	if ml.Mode != Predicated {
		t.Fatalf("mode = %v", ml.Mode)
	}
	if ml.Cond != "true" {
		t.Fatalf("cond = %q", ml.Cond)
	}
	if len(ml.In) != 1 || ml.In[0] != "t" || len(ml.Out) != 1 || ml.Out[0] != "tnew" {
		t.Fatalf("in/out = %v / %v", ml.In, ml.Out)
	}
	if ml.DB != "/path/data.h5" || ml.Model != "/path/model.pt" {
		t.Fatalf("paths = %q %q", ml.DB, ml.Model)
	}
}

func TestParseMLModes(t *testing.T) {
	if mustParse(t, `ml(infer) in(x) out(y) model("m")`).(*MLDecl).Mode != Infer {
		t.Fatal("infer mode")
	}
	if mustParse(t, `ml(collect) in(x) out(y) db("d")`).(*MLDecl).Mode != Collect {
		t.Fatal("collect mode")
	}
	if _, err := Parse(`ml(transmogrify) in(x) out(y)`); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

func TestParseMLInOut(t *testing.T) {
	ml := mustParse(t, `ml(infer) inout(state) model("m.gmod")`).(*MLDecl)
	if len(ml.InOut) != 1 || ml.InOut[0] != "state" {
		t.Fatalf("inout = %v", ml.InOut)
	}
	ml2 := mustParse(t, `ml(collect) in(a, b, c) out(d, e) db("x")`).(*MLDecl)
	if len(ml2.In) != 3 || len(ml2.Out) != 2 {
		t.Fatalf("in/out = %v / %v", ml2.In, ml2.Out)
	}
}

func TestParseMLIfClause(t *testing.T) {
	ml := mustParse(t, `ml(infer) in(x) out(y) model("m") if(step % 2 == 0)`).(*MLDecl)
	if ml.If == "" {
		t.Fatal("if clause not captured")
	}
}

func TestParseMLDatabaseAlias(t *testing.T) {
	// Both db(...) and database(...) (Fig. 3 spelling) are accepted.
	a := mustParse(t, `ml(collect) in(x) out(y) db("p")`).(*MLDecl)
	b := mustParse(t, `ml(collect) in(x) out(y) database("p")`).(*MLDecl)
	if a.DB != b.DB {
		t.Fatalf("db alias mismatch: %q vs %q", a.DB, b.DB)
	}
}

func TestParseMLF32Clause(t *testing.T) {
	if ml := mustParse(t, `ml(infer) in(x) out(y) model("m")`).(*MLDecl); ml.F32 != nil {
		t.Fatalf("no f32 clause must leave F32 nil, got %v", *ml.F32)
	}
	on := mustParse(t, `ml(infer) in(x) out(y) model("m") f32(on)`).(*MLDecl)
	if on.F32 == nil || !*on.F32 {
		t.Fatalf("f32(on) = %v", on.F32)
	}
	off := mustParse(t, `ml(infer) in(x) out(y) model("m") f32(off)`).(*MLDecl)
	if off.F32 == nil || *off.F32 {
		t.Fatalf("f32(off) = %v", off.F32)
	}
	// String must render the clause so reparse round-trips (the
	// fuzz fixed-point property).
	reparsed := mustParse(t, on.String()).(*MLDecl)
	if reparsed.F32 == nil || !*reparsed.F32 {
		t.Fatalf("String() dropped f32: %q", on.String())
	}
}

func TestParseMLQuantClause(t *testing.T) {
	if ml := mustParse(t, `ml(infer) in(x) out(y) model("m")`).(*MLDecl); ml.Quant != "" {
		t.Fatalf("no quant clause must leave Quant empty, got %q", ml.Quant)
	}
	on := mustParse(t, `ml(infer) in(x) out(y) model("m") quant(int8)`).(*MLDecl)
	if on.Quant != "int8" {
		t.Fatalf("quant(int8) = %q", on.Quant)
	}
	off := mustParse(t, `ml(infer) in(x) out(y) model("m") quant(off)`).(*MLDecl)
	if off.Quant != "off" {
		t.Fatalf("quant(off) = %q", off.Quant)
	}
	// f32 and quant compose (precision request and quantization request
	// are independent knobs) and both survive the String round trip.
	both := mustParse(t, `ml(infer) in(x) out(y) model("m") f32(on) quant(int8)`).(*MLDecl)
	reparsed := mustParse(t, both.String()).(*MLDecl)
	if reparsed.Quant != "int8" || reparsed.F32 == nil || !*reparsed.F32 {
		t.Fatalf("String() dropped a clause: %q", both.String())
	}
}

func TestParseMLErrors(t *testing.T) {
	bad := []string{
		`ml(infer)`,                            // no in/out/inout
		`ml(infer) in(x) in(y) out(z)`,         // duplicate clause
		`ml(infer) in(x) out(y) bogus("z")`,    // unknown clause
		`ml(infer) in(x) out(y) model(m)`,      // model wants a string
		`ml(infer) in(x) out(y) f32(fast)`,     // f32 wants on|off
		`ml(infer) in(x) out(y) f32("on")`,     // ...as an ident, not a string
		`ml(infer) in(x) out(y) quant(int4)`,   // quant wants int8|off
		`ml(infer) in(x) out(y) quant("int8")`, // ...as an ident, not a string
		`ml(infer:cond in(x) out(y)`,           // unterminated
		`ml(infer) in() out(y)`,                // empty ident list
		`tensor functor(f: [i] = ([i])) junk`,  // trailing input
		`tensor map(sideways: f(x[0:N]))`,      // bad direction
		`tensor functor(f: [] = ([i]))`,        // empty LHS
		`tensor functor(f: [i] = ())`,          // empty RHS
		`tensor functor(f: [i] = ([i],[i,j]))`, // RHS rank mismatch
		`tensor frobnicate(f)`,                 // unknown tensor directive
		`vector functor(f: [i] = ([i]))`,       // unknown directive
		``,                                     // empty
		`#pragma omp parallel`,                 // wrong pragma
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestParseWithoutPrefix(t *testing.T) {
	// Directives work without the #pragma approx prefix, and with a bare
	// approx prefix.
	mustParse(t, "tensor functor(f: [i, 0:1] = ([i]))")
	mustParse(t, "approx tensor functor(f: [i, 0:1] = ([i]))")
}

func TestParseStridedSlices(t *testing.T) {
	f := mustParse(t, "tensor functor(f: [i, 0:6:2] = ([i*2], [i*2+1], [i+N/2]))").(*FunctorDecl)
	s := f.LHS.Slices[1]
	if s.IsPoint() || s.Step == nil {
		t.Fatal("expected stepped range")
	}
	start, _ := s.Start.Eval(nil)
	stop, _ := s.Stop.Eval(nil)
	step, _ := s.Step.Eval(nil)
	if start != 0 || stop != 6 || step != 2 {
		t.Fatalf("range = %d:%d:%d", start, stop, step)
	}
}

func TestExprEval(t *testing.T) {
	f := mustParse(t, "tensor functor(f: [i, 0:1] = ([3*(i+1)-N/2]))").(*FunctorDecl)
	e := f.RHS[0].Slices[0].Start
	v, err := e.Eval(Env{"i": 4, "N": 10})
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 { // 3*5 - 5
		t.Fatalf("eval = %d, want 10", v)
	}
	if _, err := e.Eval(Env{"i": 4}); err == nil {
		t.Fatal("want unbound symbol error for N")
	}
}

func TestExprDivModByZero(t *testing.T) {
	f := mustParse(t, "tensor functor(f: [i, 0:1] = ([i/K], [i%K]))").(*FunctorDecl)
	if _, err := f.RHS[0].Slices[0].Start.Eval(Env{"i": 1, "K": 0}); err == nil {
		t.Fatal("want division by zero error")
	}
	if _, err := f.RHS[1].Slices[0].Start.Eval(Env{"i": 1, "K": 0}); err == nil {
		t.Fatal("want modulo by zero error")
	}
}

func TestNegativeExpr(t *testing.T) {
	f := mustParse(t, "tensor functor(f: [i, 0:1] = ([-i+1]))").(*FunctorDecl)
	v, err := f.RHS[0].Slices[0].Start.Eval(Env{"i": 3})
	if err != nil {
		t.Fatal(err)
	}
	if v != -2 {
		t.Fatalf("eval = %d, want -2", v)
	}
}

func TestParseAll(t *testing.T) {
	src := `
// the Figure 2 program
#pragma approx tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
#pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
#pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
#pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
#pragma approx ml(predicated:true) in(t) out(tnew) db("/d.gh5") model("/m.gmod")
`
	ds, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("parsed %d directives, want 5", len(ds))
	}
	if _, ok := ds[0].(*FunctorDecl); !ok {
		t.Fatal("directive 0 should be a functor")
	}
	if _, ok := ds[4].(*MLDecl); !ok {
		t.Fatal("directive 4 should be an ml clause")
	}
}

func TestParseAllReportsLine(t *testing.T) {
	_, err := ParseAll("tensor functor(f: [i,0:1] = ([i]))\nnot a directive")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Parse(`tensor functor(f: [i@2] = ([i]))`); err == nil {
		t.Fatal("want error for illegal character")
	}
	if _, err := Parse(`ml(collect) in(x) out(y) db("unterminated`); err == nil {
		t.Fatal("want error for unterminated string")
	}
}

func TestStringEscapes(t *testing.T) {
	ml := mustParse(t, `ml(collect) in(x) out(y) db("a\"b")`).(*MLDecl)
	if ml.DB != `a"b` {
		t.Fatalf("escaped string = %q", ml.DB)
	}
}

// --- round-trip property tests ---

// genFunctor builds a random valid functor declaration.
func genFunctor(r *rand.Rand) *FunctorDecl {
	symbols := []string{"i", "j", "k"}[:1+r.Intn(3)]
	rank := len(symbols)
	nFeat := 1 + r.Intn(3)

	lhs := SliceSpec{}
	for _, s := range symbols {
		lhs.Slices = append(lhs.Slices, Slice{Start: SymRef{Name: s}})
	}
	featTotal := 1 + r.Intn(5)
	lhs.Slices = append(lhs.Slices, Slice{
		Start: IntLit{Value: 0},
		Stop:  IntLit{Value: featTotal * nFeat},
	})

	f := &FunctorDecl{Name: "f", LHS: lhs}
	for n := 0; n < nFeat; n++ {
		var ss SliceSpec
		for d := 0; d < rank; d++ {
			base := Expr(SymRef{Name: symbols[d]})
			if r.Intn(2) == 0 {
				base = BinExpr{Op: byte("+-"[r.Intn(2)]), L: base, R: IntLit{Value: r.Intn(3)}}
			}
			ss.Slices = append(ss.Slices, Slice{Start: base})
		}
		f.RHS = append(f.RHS, ss)
	}
	return f
}

// Property: parse(print(f)) == print-identical functor for generated
// declarations.
func TestPropFunctorRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := genFunctor(r)
		text := f.String()
		d, err := Parse(text)
		if err != nil {
			t.Logf("parse error on %q: %v", text, err)
			return false
		}
		return d.String() == text
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: parse(print(parse(x))) is stable for the paper's directives.
func TestPropPrintParseStable(t *testing.T) {
	sources := []string{
		"#pragma approx tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))",
		"#pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))",
		"#pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))",
		`#pragma approx ml(predicated:useModel) in(t) out(tnew) model("m.gmod") db("d.gh5")`,
		`#pragma approx ml(infer) inout(state) model("m.gmod")`,
		"#pragma approx tensor functor(g: [i, 0:4:2] = ([i*3-1], [i%7+N/2]))",
	}
	for _, src := range sources {
		d1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		d2, err := Parse(d1.String())
		if err != nil {
			t.Fatalf("Parse(print) on %q: %v\nprinted: %q", src, err, d1.String())
		}
		if d1.String() != d2.String() {
			t.Fatalf("not a fixed point:\n1: %s\n2: %s", d1, d2)
		}
	}
}

// Property: Symbols() returns exactly the identifiers present in the text.
func TestPropSymbolsComplete(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := genFunctor(r)
		want := map[string]bool{}
		for _, ss := range f.RHS {
			ss.Symbols(want)
		}
		f.LHS.Symbols(want)
		got := f.SymbolNames()
		if len(got) != len(want) {
			return false
		}
		for _, n := range got {
			if !want[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionAndModeStrings(t *testing.T) {
	if To.String() != "to" || From.String() != "from" {
		t.Fatal("direction strings")
	}
	if Infer.String() != "infer" || Collect.String() != "collect" || Predicated.String() != "predicated" {
		t.Fatal("mode strings")
	}
	if Mode(42).String() != "mode(42)" {
		t.Fatal("unknown mode string")
	}
}
