package directive

import (
	"strings"
	"testing"
)

func TestParseTrustVariance(t *testing.T) {
	ml := mustParse(t, `ml(infer) in(x) out(y) model("m") trust(var:0.5)`).(*MLDecl)
	if ml.Trust == nil || ml.Trust.MaxVariance != 0.5 || ml.Trust.Domain {
		t.Fatalf("trust = %+v", ml.Trust)
	}
}

func TestParseTrustDomain(t *testing.T) {
	ml := mustParse(t, `ml(infer) in(x) out(y) model("m") trust(domain:on)`).(*MLDecl)
	if ml.Trust == nil || ml.Trust.MaxVariance != 0 || !ml.Trust.Domain {
		t.Fatalf("trust = %+v", ml.Trust)
	}
}

func TestParseTrustCombined(t *testing.T) {
	ml := mustParse(t, `ml(infer) in(x) out(y) model("m") trust(var:1e-3, domain:on)`).(*MLDecl)
	if ml.Trust == nil || ml.Trust.MaxVariance != 1e-3 || !ml.Trust.Domain {
		t.Fatalf("trust = %+v", ml.Trust)
	}
	// Integer thresholds parse too.
	ml2 := mustParse(t, `ml(infer) in(x) out(y) model("m") trust(var:2)`).(*MLDecl)
	if ml2.Trust.MaxVariance != 2 {
		t.Fatalf("integer threshold = %g", ml2.Trust.MaxVariance)
	}
}

func TestParseTrustDomainOffWithVariance(t *testing.T) {
	// domain:off is accepted when the variance gate carries the clause;
	// the render normalizes the off selector away.
	ml := mustParse(t, `ml(infer) in(x) out(y) model("m") trust(var:0.5, domain:off)`).(*MLDecl)
	if ml.Trust.Domain {
		t.Fatal("domain:off parsed as on")
	}
	if s := ml.String(); !strings.Contains(s, "trust(var:0.5)") {
		t.Fatalf("render = %q, want normalized trust(var:0.5)", s)
	}
}

func TestParseTrustRoundTrip(t *testing.T) {
	for _, src := range []string{
		`ml(infer) in(x) out(y) model("m") trust(var:0.5)`,
		`ml(infer) in(x) out(y) model("m") trust(domain:on)`,
		`ml(infer) in(x) out(y) model("m") trust(var:0.001, domain:on)`,
	} {
		first := mustParse(t, src).String()
		second := mustParse(t, first).String()
		if first != second {
			t.Errorf("round trip of %q:\n first: %q\nsecond: %q", src, first, second)
		}
	}
}

func TestParseTrustErrors(t *testing.T) {
	bad := []string{
		`ml(infer) in(x) out(y) model("m") trust()`,                     // empty
		`ml(infer) in(x) out(y) model("m") trust(var:0)`,                // zero threshold
		`ml(infer) in(x) out(y) model("m") trust(var:-1)`,               // negative threshold
		`ml(infer) in(x) out(y) model("m") trust(domain:off)`,           // selects no gate
		`ml(infer) in(x) out(y) model("m") trust(domain:maybe)`,         // bad toggle
		`ml(infer) in(x) out(y) model("m") trust(var:0.5, var:0.5)`,     // duplicate selector
		`ml(infer) in(x) out(y) model("m") trust(confidence:0.5)`,       // unknown selector
		`ml(infer) in(x) out(y) model("m") trust(var)`,                  // missing value
		`ml(infer) in(x) out(y) model("m") trust(var:high)`,             // non-numeric value
		`ml(infer) in(x) out(y) model("m") trust(var:0.5) trust(var:1)`, // duplicate clause
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}
