package directive

import (
	"strings"
	"testing"
)

// TestParseModelURIForms is the table-driven grammar check for the
// model(...) reference: plain paths and well-formed http(s) URIs are
// accepted (with the URI decomposed into server base and model name),
// everything else is rejected with a diagnosable message.
func TestParseModelURIForms(t *testing.T) {
	cases := []struct {
		name string
		src  string // full ml directive
		// For accepted URIs: the expected SplitRemoteModel decomposition
		// of the parsed Model field ("" base means a plain path).
		wantModel string
		wantBase  string
		wantName  string
		wantErr   string // substring of the parse error; "" means accept
	}{
		{
			name:      "plain path",
			src:       `ml(infer) in(x) out(y) model("models/binomial.gmod")`,
			wantModel: "models/binomial.gmod",
		},
		{
			name:      "http URI",
			src:       `ml(infer) in(x) out(y) model("http://127.0.0.1:8080/binomial")`,
			wantModel: "http://127.0.0.1:8080/binomial",
			wantBase:  "http://127.0.0.1:8080",
			wantName:  "binomial",
		},
		{
			name:      "https URI with path prefix",
			src:       `ml(infer) in(x) out(y) model("https://serve.example.com/hpac/v2/pricer")`,
			wantModel: "https://serve.example.com/hpac/v2/pricer",
			wantBase:  "https://serve.example.com/hpac/v2",
			wantName:  "pricer",
		},
		{
			name:      "predicated with remote model",
			src:       `ml(predicated:useModel) in(x) out(y) model("http://host:9/m") db("d.gh5")`,
			wantModel: "http://host:9/m",
			wantBase:  "http://host:9",
			wantName:  "m",
		},
		{
			name:    "unsupported scheme",
			src:     `ml(infer) in(x) out(y) model("ftp://host/m")`,
			wantErr: "unsupported model URI scheme",
		},
		{
			name:    "redis scheme (SmartSim-style, not ours)",
			src:     `ml(infer) in(x) out(y) model("redis://host:6379/m")`,
			wantErr: "unsupported model URI scheme",
		},
		{
			name:    "no model name",
			src:     `ml(infer) in(x) out(y) model("http://host:8080")`,
			wantErr: "names no model",
		},
		{
			name:    "no model name trailing slash",
			src:     `ml(infer) in(x) out(y) model("http://host:8080/")`,
			wantErr: "names no model",
		},
		{
			name:    "no host",
			src:     `ml(infer) in(x) out(y) model("http:///m")`,
			wantErr: "no host",
		},
		{
			name:    "query refused",
			src:     `ml(infer) in(x) out(y) model("http://host/m?replica=2")`,
			wantErr: "query or fragment",
		},
		{
			name:    "fragment refused",
			src:     `ml(infer) in(x) out(y) model("http://host/m#frag")`,
			wantErr: "query or fragment",
		},
		{
			name:    "db s3 URI refused",
			src:     `ml(collect) in(x) out(y) db("s3://bucket/d.gh5")`,
			wantErr: "unsupported db URI scheme",
		},
		{
			name:    "model clause without string",
			src:     `ml(infer) in(x) out(y) model(http://host/m)`,
			wantErr: "expected string",
		},
		{
			name:    "db clause without string",
			src:     `ml(collect) in(x) out(y) db(42)`,
			wantErr: "expected string",
		},
		{
			name:    "model clause unterminated",
			src:     `ml(infer) in(x) out(y) model("m.gmod"`,
			wantErr: "expected ')'",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(tc.src)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Parse(%q): want error containing %q, got directive %v", tc.src, tc.wantErr, d)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Parse(%q): error %q does not contain %q", tc.src, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.src, err)
			}
			ml, ok := d.(*MLDecl)
			if !ok {
				t.Fatalf("Parse(%q): got %T, want *MLDecl", tc.src, d)
			}
			if ml.Model != tc.wantModel {
				t.Fatalf("Model = %q, want %q", ml.Model, tc.wantModel)
			}
			if tc.wantBase == "" {
				if IsRemoteModel(ml.Model) {
					t.Fatalf("plain path %q classified remote", ml.Model)
				}
				return
			}
			if !IsRemoteModel(ml.Model) {
				t.Fatalf("URI %q not classified remote", ml.Model)
			}
			base, name, err := SplitRemoteModel(ml.Model)
			if err != nil {
				t.Fatal(err)
			}
			if base != tc.wantBase || name != tc.wantName {
				t.Fatalf("SplitRemoteModel(%q) = (%q, %q), want (%q, %q)",
					ml.Model, base, name, tc.wantBase, tc.wantName)
			}
		})
	}
}

// TestParseDBURIForms is the table-driven grammar check for the
// db(...) reference, mirroring the model-URI table: plain paths and
// well-formed http(s) URIs are accepted (with the URI decomposed into
// server base and capture-database name), everything else is rejected
// with a diagnosable message.
func TestParseDBURIForms(t *testing.T) {
	cases := []struct {
		name string
		src  string // full ml directive
		// For accepted URIs: the expected SplitRemoteDB decomposition
		// of the parsed DB field ("" base means a plain path).
		wantDB   string
		wantBase string
		wantName string
		wantErr  string // substring of the parse error; "" means accept
	}{
		{
			name:   "plain path",
			src:    `ml(collect) in(x) out(y) db("data/binomial.gh5")`,
			wantDB: "data/binomial.gh5",
		},
		{
			name:     "http URI",
			src:      `ml(collect) in(x) out(y) db("http://127.0.0.1:8080/binomial")`,
			wantDB:   "http://127.0.0.1:8080/binomial",
			wantBase: "http://127.0.0.1:8080",
			wantName: "binomial",
		},
		{
			name:     "https URI with path prefix",
			src:      `ml(collect) in(x) out(y) db("https://head.example.com/hpac/v2/climate")`,
			wantDB:   "https://head.example.com/hpac/v2/climate",
			wantBase: "https://head.example.com/hpac/v2",
			wantName: "climate",
		},
		{
			name:     "predicated with remote db and remote model",
			src:      `ml(predicated:useModel) in(x) out(y) model("http://host:9/m") db("http://host:9/d")`,
			wantDB:   "http://host:9/d",
			wantBase: "http://host:9",
			wantName: "d",
		},
		{
			name:    "s3 scheme refused",
			src:     `ml(collect) in(x) out(y) db("s3://bucket/d.gh5")`,
			wantErr: "unsupported db URI scheme",
		},
		{
			name:    "redis scheme refused",
			src:     `ml(collect) in(x) out(y) db("redis://host:6379/d")`,
			wantErr: "unsupported db URI scheme",
		},
		{
			name:    "no database name",
			src:     `ml(collect) in(x) out(y) db("http://host:8080")`,
			wantErr: "names no database",
		},
		{
			name:    "no database name trailing slash",
			src:     `ml(collect) in(x) out(y) db("http://host:8080/")`,
			wantErr: "names no database",
		},
		{
			name:    "no host",
			src:     `ml(collect) in(x) out(y) db("http:///d")`,
			wantErr: "no host",
		},
		{
			name:    "query refused",
			src:     `ml(collect) in(x) out(y) db("http://host/d?shard=2")`,
			wantErr: "query or fragment",
		},
		{
			name:    "fragment refused",
			src:     `ml(collect) in(x) out(y) db("http://host/d#frag")`,
			wantErr: "query or fragment",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(tc.src)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Parse(%q): want error containing %q, got directive %v", tc.src, tc.wantErr, d)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Parse(%q): error %q does not contain %q", tc.src, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.src, err)
			}
			ml, ok := d.(*MLDecl)
			if !ok {
				t.Fatalf("Parse(%q): got %T, want *MLDecl", tc.src, d)
			}
			if ml.DB != tc.wantDB {
				t.Fatalf("DB = %q, want %q", ml.DB, tc.wantDB)
			}
			if tc.wantBase == "" {
				if IsRemoteDB(ml.DB) {
					t.Fatalf("plain path %q classified remote", ml.DB)
				}
				return
			}
			if !IsRemoteDB(ml.DB) {
				t.Fatalf("URI %q not classified remote", ml.DB)
			}
			base, name, err := SplitRemoteDB(ml.DB)
			if err != nil {
				t.Fatal(err)
			}
			if base != tc.wantBase || name != tc.wantName {
				t.Fatalf("SplitRemoteDB(%q) = (%q, %q), want (%q, %q)",
					ml.DB, base, name, tc.wantBase, tc.wantName)
			}
		})
	}
}

// TestValidateRefsDirect covers the validators' edges that cannot be
// reached through a quoted directive string.
func TestValidateRefsDirect(t *testing.T) {
	if err := ValidateModelRef(""); err != nil {
		t.Fatalf("empty model ref must stay legal (collection-phase idiom): %v", err)
	}
	if err := ValidateDBRef(""); err != nil {
		t.Fatalf("empty db ref must stay legal: %v", err)
	}
	if err := ValidateModelRef("dir/with://weird"); err == nil {
		t.Fatal("embedded scheme separator must be rejected")
	}
	if err := ValidateDBRef("dir/with://weird"); err == nil {
		t.Fatal("embedded scheme separator must be rejected in db refs")
	}
	if err := ValidateDBRef("http://host:8080/binomial"); err != nil {
		t.Fatalf("well-formed db URI must validate: %v", err)
	}
	if _, _, err := SplitRemoteModel("plain/path.gmod"); err == nil {
		t.Fatal("SplitRemoteModel must reject non-URIs")
	}
	if _, _, err := SplitRemoteDB("plain/path.gh5"); err == nil {
		t.Fatal("SplitRemoteDB must reject non-URIs")
	}
}
