package directive

import (
	"strings"
	"testing"
)

// fuzzSeeds are the corpus the fuzz targets start from: every directive
// shape the table tests exercise, the documented error cases, and a few
// near-miss mutations. The fuzzer mutates from here into the grammar's
// dark corners.
var fuzzSeeds = []string{
	// Valid directives, spanning every declaration kind and clause.
	"#pragma approx tensor functor(ifnctr: [i, j, 0:5] = ( ([i-1, j], [i+1, j], [i, j-1:j+2])))",
	"#pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))",
	"#pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))",
	"#pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))",
	`#pragma approx ml(predicated:true) in(t) out(tnew) db("/path/data.h5") model("/path/model.pt")`,
	`ml(infer) in(x) out(y) model("m")`,
	`ml(collect) in(x) out(y) db("d")`,
	`ml(infer) inout(state) model("m.gmod")`,
	`ml(collect) in(a, b, c) out(d, e) db("x")`,
	`ml(infer) in(x) out(y) model("m") if(step % 2 == 0)`,
	`ml(collect) in(x) out(y) database("p")`,
	`ml(collect) in(x) out(y) db("d") capture(frac:0.25)`,
	`ml(collect) in(x) out(y) db("d") capture(every:100)`,
	`ml(infer) in(x) out(y) model("m") trust(var:0.5)`,
	`ml(infer) in(x) out(y) model("m") trust(domain:on)`,
	`ml(infer) in(x) out(y) model("m") trust(var:1e-3, domain:on)`,
	`ml(infer) in(x) out(y) model("http://host:8080/toy") db("http://host:8080/cap")`,
	`ml(infer) in(x) out(y) model("m") f32(on)`,
	`ml(infer) in(x) out(y) model("m") quant(int8)`,
	`ml(infer) in(x) out(y) model("m") f32(on) quant(off)`,
	"tensor functor(f: [i, 0:6:2] = ([i*2], [i*2+1], [i+N/2]))",
	"tensor functor(f: [i, 0:1] = ([3*(i+1)-N/2]))",
	"approx tensor functor(f: [i, 0:1] = ([i]))",
	// Error cases — the fuzzer needs rejected shapes in the corpus too.
	`ml(infer)`,
	`ml(infer) in(x) in(y) out(z)`,
	`ml(infer) in(x) out(y) bogus("z")`,
	`ml(infer) in(x) out(y) model(m)`,
	`ml(infer:cond in(x) out(y)`,
	`ml(infer) in() out(y)`,
	`tensor functor(f: [i] = ([i])) junk`,
	`tensor map(sideways: f(x[0:N]))`,
	`tensor functor(f: [] = ([i]))`,
	`tensor functor(f: [i] = ())`,
	`tensor frobnicate(f)`,
	`ml(infer) in(x) out(y) model("m") trust()`,
	`ml(infer) in(x) out(y) model("m") trust(var:0)`,
	`ml(infer) in(x) out(y) model("m") trust(domain:off)`,
	`ml(infer) in(x) out(y) model("m") quant(int4)`,
	"",
	"#pragma omp parallel",
	"\\",
	"tensor functor(f: [i, 0:1] = ([i]))\x00",
}

// FuzzParseDirective asserts the parser's two safety properties on
// arbitrary input: it never panics, and accepted directives are stable
// under the String round trip — String() must reparse, and reparsing
// must be a fixed point (the second render equals the first). The first
// render may normalize (drop the pragma prefix, canonicalize spacing),
// which is why stability is asserted from the first render onward.
func FuzzParseDirective(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(src)
		if err != nil {
			return
		}
		rendered := d.String()
		d2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) accepted, but its render %q does not reparse: %v", src, rendered, err)
		}
		if again := d2.String(); again != rendered {
			t.Fatalf("String round trip is not a fixed point:\n first: %q\nsecond: %q", rendered, again)
		}
	})
}

// FuzzValidateDBRef asserts the reference validators never panic and
// stay consistent with the splitters: a db ref that validates and is
// remote must split cleanly into a base and a non-empty name, and a
// remote ref that fails validation must also fail to split. Model refs
// share the grammar, so they are checked in the same pass.
func FuzzValidateDBRef(f *testing.F) {
	for _, seed := range []string{
		"",
		"data/binomial.gh5",
		"/abs/path/data.h5",
		"http://host:8080/binomial",
		"https://host/serve/v2/pricer",
		"http://127.0.0.1:8137/cap",
		"http://host:8080/",
		"http://",
		"https://host/name?x=1",
		"https://host/name#frag",
		"s3://bucket/key",
		"redis://host/0",
		"http://host:8080//double//slash",
		"HTTP://HOST/NAME",
		"ht tp://host/x",
		"://host/x",
		"file:///etc/passwd",
		strings.Repeat("http://h/", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, ref string) {
		err := ValidateDBRef(ref)
		switch {
		case refScheme(ref) == "":
			// Scheme-less refs are local paths and always pass.
			if err != nil {
				t.Fatalf("ValidateDBRef(%q): scheme-less refs must pass, got %v", ref, err)
			}
		default:
			// Any ref carrying a scheme must validate exactly when it
			// splits into a (base, name) pair; non-http schemes refuse both
			// ways.
			base, name, serr := SplitRemoteDB(ref)
			if (err == nil) != (serr == nil) {
				t.Fatalf("ValidateDBRef(%q) = %v but SplitRemoteDB error = %v", ref, err, serr)
			}
			if serr == nil && (base == "" || name == "") {
				t.Fatalf("SplitRemoteDB(%q) = (%q, %q) with nil error", ref, base, name)
			}
			if !IsRemoteDB(ref) && err == nil {
				t.Fatalf("ValidateDBRef(%q) passed a non-http scheme", ref)
			}
		}
		// The model-ref validator shares the URI grammar; it must agree
		// with the db validator on every input.
		if merr := ValidateModelRef(ref); (merr == nil) != (err == nil) {
			t.Fatalf("ValidateModelRef(%q) = %v disagrees with ValidateDBRef = %v", ref, merr, err)
		}
	})
}
