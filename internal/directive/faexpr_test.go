package directive

import "testing"

// The mapped-memory production of the ml clause accepts inline functor
// applications (fa-exprs), the mechanism behind the paper's 4-directive
// annotations (Table II).

func TestParseMLWithInlineFunctorApplication(t *testing.T) {
	ml := mustParse(t,
		`ml(predicated:useModel) in(poses) out(energy_out(energies[0:NPOSES])) model("m") db("d")`,
	).(*MLDecl)
	if len(ml.In) != 1 || ml.In[0] != "poses" {
		t.Fatalf("in = %v", ml.In)
	}
	if len(ml.Out) != 0 || len(ml.OutApps) != 1 {
		t.Fatalf("out = %v, apps = %v", ml.Out, ml.OutApps)
	}
	app := ml.OutApps[0]
	if app.Functor != "energy_out" || len(app.Targets) != 1 || app.Targets[0].Array != "energies" {
		t.Fatalf("app = %+v", app)
	}
}

func TestParseMLMixedNamesAndApps(t *testing.T) {
	ml := mustParse(t,
		`ml(collect) in(a, f(b[0:N]), c) out(g(d[0:N], e[0:N])) db("x")`,
	).(*MLDecl)
	if len(ml.In) != 2 || ml.In[0] != "a" || ml.In[1] != "c" {
		t.Fatalf("in names = %v", ml.In)
	}
	if len(ml.InApps) != 1 || ml.InApps[0].Functor != "f" {
		t.Fatalf("in apps = %v", ml.InApps)
	}
	if len(ml.OutApps) != 1 || len(ml.OutApps[0].Targets) != 2 {
		t.Fatalf("out apps = %v", ml.OutApps)
	}
}

func TestParseMLInOutApp(t *testing.T) {
	ml := mustParse(t, `ml(infer) inout(cell(state[0:C, 0:H, 0:W])) model("m")`).(*MLDecl)
	if len(ml.InOutApps) != 1 || ml.InOutApps[0].Functor != "cell" {
		t.Fatalf("inout apps = %v", ml.InOutApps)
	}
	if len(ml.InOutApps[0].Targets[0].Slices) != 3 {
		t.Fatalf("target slices = %v", ml.InOutApps[0].Targets[0].Slices)
	}
}

func TestMLWithAppsPrintParseStable(t *testing.T) {
	sources := []string{
		`#pragma approx ml(predicated:useModel) in(poses) out(energy_out(energies[0:NPOSES])) model("m.gmod") db("d.gh5")`,
		`#pragma approx ml(collect) in(f(a[0:N]), b) out(c) db("d.gh5")`,
	}
	for _, src := range sources {
		d1 := mustParse(t, src)
		d2 := mustParse(t, d1.String())
		if d1.String() != d2.String() {
			t.Fatalf("not a fixed point:\n1: %s\n2: %s", d1, d2)
		}
	}
}

func TestParseMLAppErrors(t *testing.T) {
	bad := []string{
		`ml(infer) out(f(x[0:N]) model("m")`, // unbalanced app
		`ml(infer) out(f(x)) model("m")`,     // target without slices
		`ml(infer) out(f()) model("m")`,      // empty application
		`ml(infer) out(f(x[)) model("m")`,    // broken slice
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}
