// Package directive implements the HPAC-ML programming-model grammar from
// Figure 3 of the paper: the tensor functor declaration, the tensor map
// clause, and the approx ml clause. In the original system a Clang extension
// parses these as #pragma annotations; Go has no annotation mechanism, so
// the same grammar is parsed at run time from directive strings and lowered
// onto the runtime API (see DESIGN.md, substitution table).
package directive

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes of the directive language.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokColon   // :
	tokComma   // ,
	tokAssign  // =
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokPercent // %
	tokHash    // #
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of directive"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	case tokHash:
		return "'#'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the source, for error messages
}

// lexer converts a directive string into tokens. Line continuations
// (backslash-newline, as used in real pragmas) are treated as whitespace.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\\':
			// Pragma line continuation: skip the backslash and any
			// following newline/whitespace.
			l.pos++
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)):
			l.lexInt()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			kind, ok := punctKind(c)
			if !ok {
				return nil, fmt.Errorf("directive: unexpected character %q at offset %d", c, l.pos)
			}
			l.emit(kind, string(c), l.pos)
			l.pos++
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func punctKind(c byte) (tokenKind, bool) {
	switch c {
	case '(':
		return tokLParen, true
	case ')':
		return tokRParen, true
	case '[':
		return tokLBrack, true
	case ']':
		return tokRBrack, true
	case ':':
		return tokColon, true
	case ',':
		return tokComma, true
	case '=':
		return tokAssign, true
	case '+':
		return tokPlus, true
	case '-':
		return tokMinus, true
	case '*':
		return tokStar, true
	case '/':
		return tokSlash, true
	case '%':
		return tokPercent, true
	case '#':
		return tokHash, true
	}
	return tokEOF, false
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(tokIdent, l.src[start:l.pos], start)
}

// lexInt scans a number: an integer, or a float literal when a '.'
// fraction and/or an e/E exponent follows the integer part (as used by
// the capture(frac:F) and trust(var:V) clauses, whose %g rendering may
// emit scientific notation; slice expressions stay integer-only and
// reject floats in the parser). An 'e' not followed by an (optionally
// signed) digit is left alone as the next identifier.
func (l *lexer) lexInt() {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	isFloat := false
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && unicode.IsDigit(rune(l.src[l.pos+1])) {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		rest := l.src[l.pos+1:]
		if len(rest) > 0 && (rest[0] == '+' || rest[0] == '-') {
			rest = rest[1:]
		}
		if len(rest) > 0 && unicode.IsDigit(rune(rest[0])) {
			isFloat = true
			l.pos++ // e
			if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
				l.pos++
			}
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
		}
	}
	if isFloat {
		l.emit(tokFloat, l.src[start:l.pos], start)
		return
	}
	l.emit(tokInt, l.src[start:l.pos], start)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.emit(tokString, b.String(), start)
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("directive: unterminated string starting at offset %d", start)
}
