package directive

import (
	"strings"
	"testing"
)

// TestParseCaptureClause is the table-driven grammar check for the
// capture(...) sampling clause, mirroring the model/db URI tables:
// both policies parse with their values validated, malformed and
// out-of-range forms are rejected with a diagnosable message.
func TestParseCaptureClause(t *testing.T) {
	cases := []struct {
		name      string
		src       string // full ml directive
		wantEvery int
		wantFrac  float64
		wantNil   bool   // accepted, with no capture clause
		wantErr   string // substring of the parse error; "" means accept
	}{
		{
			name:    "no capture clause",
			src:     `ml(collect) in(x) out(y) db("d.gh5")`,
			wantNil: true,
		},
		{
			name:      "every N",
			src:       `ml(collect) in(x) out(y) db("d.gh5") capture(every:5)`,
			wantEvery: 5,
		},
		{
			name:      "every 1 (keep all, explicit)",
			src:       `ml(collect) in(x) out(y) db("d.gh5") capture(every:1)`,
			wantEvery: 1,
		},
		{
			name:     "frac float",
			src:      `ml(collect) in(x) out(y) db("d.gh5") capture(frac:0.25)`,
			wantFrac: 0.25,
		},
		{
			name:     "frac one",
			src:      `ml(collect) in(x) out(y) db("d.gh5") capture(frac:1)`,
			wantFrac: 1,
		},
		{
			name:      "capture with remote db and predicated mode",
			src:       `ml(predicated:useModel) in(x) out(y) model("m.gmod") db("http://host:8080/d") capture(every:10)`,
			wantEvery: 10,
		},
		{
			name:    "every zero rejected",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(every:0)`,
			wantErr: "wants N >= 1",
		},
		{
			name:    "negative every rejected",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(every:-3)`,
			wantErr: "expected integer",
		},
		{
			name:    "frac zero rejected",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(frac:0)`,
			wantErr: "wants 0 < F <= 1",
		},
		{
			name:    "frac above one rejected",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(frac:1.5)`,
			wantErr: "wants 0 < F <= 1",
		},
		{
			name:    "unknown policy",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(rate:5)`,
			wantErr: "unknown capture policy",
		},
		{
			name:    "missing colon",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(every 5)`,
			wantErr: "expected ':'",
		},
		{
			name:    "missing value",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(every:)`,
			wantErr: "expected integer",
		},
		{
			name:    "frac wants a number",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(frac:lots)`,
			wantErr: "wants a number",
		},
		{
			name:    "duplicate capture clause",
			src:     `ml(collect) in(x) out(y) db("d.gh5") capture(every:2) capture(every:3)`,
			wantErr: "duplicate clause",
		},
		{
			name:    "float leaks into slice expressions rejected",
			src:     `ml(collect) in(x) out(y) db("d.gh5") if(p)`,
			wantNil: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(tc.src)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Parse(%q): want error containing %q, got directive %v", tc.src, tc.wantErr, d)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Parse(%q): error %q does not contain %q", tc.src, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.src, err)
			}
			ml, ok := d.(*MLDecl)
			if !ok {
				t.Fatalf("Parse(%q): got %T, want *MLDecl", tc.src, d)
			}
			if tc.wantNil {
				if ml.Capture != nil {
					t.Fatalf("unexpected capture policy %v", ml.Capture)
				}
				return
			}
			if ml.Capture == nil {
				t.Fatalf("Parse(%q): no capture policy parsed", tc.src)
			}
			if ml.Capture.Every != tc.wantEvery || ml.Capture.Frac != tc.wantFrac {
				t.Fatalf("capture policy = %+v, want every %d frac %g", ml.Capture, tc.wantEvery, tc.wantFrac)
			}
			// The clause must round-trip through String back to an equal
			// parse, like every other directive form.
			d2, err := Parse(ml.String())
			if err != nil {
				t.Fatalf("re-parse of %q: %v", ml.String(), err)
			}
			ml2 := d2.(*MLDecl)
			if ml2.Capture == nil || *ml2.Capture != *ml.Capture {
				t.Fatalf("capture policy did not round-trip: %v -> %v", ml.Capture, ml2.Capture)
			}
		})
	}
}

// TestFloatTokensStayOutOfExpressions pins the lexer extension: float
// literals exist only for capture(frac:F); slice expressions still
// reject them.
func TestFloatTokensStayOutOfExpressions(t *testing.T) {
	_, err := Parse(`tensor map(to: f(x[0:1.5]))`)
	if err == nil {
		t.Fatal("float in a slice expression must be rejected")
	}
	if !strings.Contains(err.Error(), "expected") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}
