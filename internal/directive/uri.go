package directive

import (
	"fmt"
	"net/url"
	"strings"
)

// The model(...) clause of an ml directive names where the surrogate
// executes, not just a file: a plain path loads the model in-process
// (the local engine), while an http(s) URI selects remote execution
// against a running hpacml-serve instance. The grammar is
//
//	model-ref  := file-path | model-uri
//	model-uri  := ("http" | "https") "://" host [":" port] ["/" prefix]* "/" model-name
//
// where model-name is the URI's last path segment (the name the server
// registered the model under) and everything before it is the server
// base URL. Queries and fragments are rejected — the annotation stays a
// stable one-line contract, and per-deployment knobs belong to the
// runtime, not the pragma. The db(...) clause never accepts a URI:
// collection writes through the local append-only writer.

// refScheme extracts a URI scheme from a model/db reference, or "" when
// the reference is a plain file path. Only the unambiguous
// scheme://... form counts; Windows-style drive letters cannot occur in
// the directive grammar's quoted strings, and relative paths never
// contain "://".
func refScheme(ref string) string {
	i := strings.Index(ref, "://")
	if i <= 0 {
		return ""
	}
	return ref[:i]
}

// IsRemoteModel reports whether a model reference selects remote
// execution (an http or https URI).
func IsRemoteModel(ref string) bool {
	s := refScheme(ref)
	return s == "http" || s == "https"
}

// SplitRemoteModel decomposes a remote model URI into the server base
// URL and the registered model name (the last path segment):
//
//	http://host:8080/binomial          -> base http://host:8080,       name binomial
//	https://host/serve/v2/pricer      -> base https://host/serve/v2,  name pricer
//
// It rejects unsupported schemes, missing hosts, URIs that name no
// model, and queries/fragments.
func SplitRemoteModel(ref string) (base, name string, err error) {
	scheme := refScheme(ref)
	if scheme == "" {
		return "", "", fmt.Errorf("directive: model reference %q is not a URI", ref)
	}
	if scheme != "http" && scheme != "https" {
		return "", "", fmt.Errorf("directive: unsupported model URI scheme %q in %q (want http or https)", scheme, ref)
	}
	u, err := url.Parse(ref)
	if err != nil {
		return "", "", fmt.Errorf("directive: malformed model URI %q: %v", ref, err)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("directive: model URI %q has no host", ref)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", "", fmt.Errorf("directive: model URI %q must not carry a query or fragment", ref)
	}
	path := strings.Trim(u.Path, "/")
	if path == "" {
		return "", "", fmt.Errorf("directive: model URI %q names no model (want %s://host[:port]/model-name)", ref, scheme)
	}
	segs := strings.Split(path, "/")
	name = segs[len(segs)-1]
	base = scheme + "://" + u.Host
	if prefix := strings.Join(segs[:len(segs)-1], "/"); prefix != "" {
		base += "/" + prefix
	}
	return base, name, nil
}

// ValidateModelRef checks a model(...) clause value: empty strings and
// plain file paths always pass (an empty model() means "no model yet",
// the collection-phase idiom); anything carrying a scheme must be a
// well-formed http(s) model URI.
func ValidateModelRef(ref string) error {
	if refScheme(ref) == "" {
		return nil
	}
	_, _, err := SplitRemoteModel(ref)
	return err
}

// ValidateDBRef checks a db(...) clause value: the collection database
// is always a local file, so URIs are refused outright. Empty strings
// pass (no database configured).
func ValidateDBRef(ref string) error {
	if s := refScheme(ref); s != "" {
		return fmt.Errorf("directive: db() takes a file path, not a URI (got scheme %q in %q)", s, ref)
	}
	return nil
}
