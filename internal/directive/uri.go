package directive

import (
	"fmt"
	"net/url"
	"strings"
)

// The model(...) and db(...) clauses of an ml directive name where the
// surrogate executes and where captured training data lands, not just
// files: a plain path selects the in-process default (local model load,
// local append-only database), while an http(s) URI selects the
// distributed deployment (remote inference against a running
// hpacml-serve instance; remote capture ingest into a server-owned
// database). Both references share one grammar:
//
//	ref  := file-path | uri
//	uri  := ("http" | "https") "://" host [":" port] ["/" prefix]* "/" name
//
// where name is the URI's last path segment (the model or capture
// database registered on the server) and everything before it is the
// server base URL. Queries and fragments are rejected — the annotation
// stays a stable one-line contract, and per-deployment knobs belong to
// the runtime, not the pragma.

// refScheme extracts a URI scheme from a model/db reference, or "" when
// the reference is a plain file path. Only the unambiguous
// scheme://... form counts; Windows-style drive letters cannot occur in
// the directive grammar's quoted strings, and relative paths never
// contain "://".
func refScheme(ref string) string {
	i := strings.Index(ref, "://")
	if i <= 0 {
		return ""
	}
	return ref[:i]
}

// isRemoteRef reports whether a reference carries an http(s) scheme.
func isRemoteRef(ref string) bool {
	s := refScheme(ref)
	return s == "http" || s == "https"
}

// IsRemoteModel reports whether a model reference selects remote
// execution (an http or https URI).
func IsRemoteModel(ref string) bool { return isRemoteRef(ref) }

// IsRemoteDB reports whether a db reference selects remote capture
// ingest (an http or https URI).
func IsRemoteDB(ref string) bool { return isRemoteRef(ref) }

// splitRemote decomposes a remote reference into the server base URL
// and the registered name (the last path segment). what names the
// reference kind in diagnostics ("model" or "db"); thing names what the
// last segment identifies ("model" or "database").
func splitRemote(ref, what, thing string) (base, name string, err error) {
	scheme := refScheme(ref)
	if scheme == "" {
		return "", "", fmt.Errorf("directive: %s reference %q is not a URI", what, ref)
	}
	if scheme != "http" && scheme != "https" {
		return "", "", fmt.Errorf("directive: unsupported %s URI scheme %q in %q (want http or https)", what, scheme, ref)
	}
	u, err := url.Parse(ref)
	if err != nil {
		return "", "", fmt.Errorf("directive: malformed %s URI %q: %v", what, ref, err)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("directive: %s URI %q has no host", what, ref)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", "", fmt.Errorf("directive: %s URI %q must not carry a query or fragment", what, ref)
	}
	path := strings.Trim(u.Path, "/")
	if path == "" {
		return "", "", fmt.Errorf("directive: %s URI %q names no %s (want %s://host[:port]/%s-name)", what, ref, thing, scheme, thing)
	}
	segs := strings.Split(path, "/")
	name = segs[len(segs)-1]
	base = scheme + "://" + u.Host
	if prefix := strings.Join(segs[:len(segs)-1], "/"); prefix != "" {
		base += "/" + prefix
	}
	return base, name, nil
}

// SplitRemoteModel decomposes a remote model URI into the server base
// URL and the registered model name (the last path segment):
//
//	http://host:8080/binomial          -> base http://host:8080,       name binomial
//	https://host/serve/v2/pricer      -> base https://host/serve/v2,  name pricer
//
// It rejects unsupported schemes, missing hosts, URIs that name no
// model, and queries/fragments.
func SplitRemoteModel(ref string) (base, name string, err error) {
	return splitRemote(ref, "model", "model")
}

// SplitRemoteDB decomposes a remote db URI into the server base URL and
// the registered capture-database name (the last path segment), under
// the same grammar and restrictions as SplitRemoteModel:
//
//	http://host:8080/binomial -> base http://host:8080, name binomial
func SplitRemoteDB(ref string) (base, name string, err error) {
	return splitRemote(ref, "db", "database")
}

// ValidateModelRef checks a model(...) clause value: empty strings and
// plain file paths always pass (an empty model() means "no model yet",
// the collection-phase idiom); anything carrying a scheme must be a
// well-formed http(s) model URI.
func ValidateModelRef(ref string) error {
	if refScheme(ref) == "" {
		return nil
	}
	_, _, err := SplitRemoteModel(ref)
	return err
}

// ValidateDBRef checks a db(...) clause value: empty strings and plain
// file paths pass (local append-only collection, the default); anything
// carrying a scheme must be a well-formed http(s) db URI naming a
// capture database on a running hpacml-serve instance. Non-http
// schemes (s3, redis, ...) stay refused.
func ValidateDBRef(ref string) error {
	if refScheme(ref) == "" {
		return nil
	}
	_, _, err := SplitRemoteDB(ref)
	return err
}
