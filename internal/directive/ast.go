package directive

import (
	"fmt"
	"sort"
	"strings"
)

// Env supplies integer values for identifiers appearing in expressions.
// In concrete slice specifiers (tensor map clauses), identifiers refer to
// application integer variables (e.g. N, M); during functor application,
// the data bridge also binds the functor's symbolic constants (e.g. i, j)
// while sweeping the mapped ranges.
type Env map[string]int

// Expr is an integer expression tree: symbolic constants, integer literals,
// and arithmetic over them (the s-expr / c-expr productions of Fig. 3).
type Expr interface {
	// Eval computes the expression under env. Unbound identifiers
	// yield an error naming the missing symbol.
	Eval(env Env) (int, error)
	// Symbols appends the identifiers referenced by the expression.
	Symbols(into map[string]bool)
	fmt.Stringer
}

// IntLit is an integer literal.
type IntLit struct{ Value int }

// Eval returns the literal value.
func (e IntLit) Eval(Env) (int, error) { return e.Value, nil }

// Symbols adds nothing: literals reference no identifiers.
func (e IntLit) Symbols(map[string]bool) {}

func (e IntLit) String() string { return fmt.Sprintf("%d", e.Value) }

// SymRef references a symbolic constant (s-constant) or a declared integer
// variable; which one it is depends on the clause it appears in.
type SymRef struct{ Name string }

// Eval looks the identifier up in env.
func (e SymRef) Eval(env Env) (int, error) {
	v, ok := env[e.Name]
	if !ok {
		return 0, fmt.Errorf("directive: unbound symbol %q", e.Name)
	}
	return v, nil
}

// Symbols records the referenced identifier.
func (e SymRef) Symbols(into map[string]bool) { into[e.Name] = true }

func (e SymRef) String() string { return e.Name }

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   byte // one of + - * / %
	L, R Expr
}

// Eval evaluates both operands and applies the operator, rejecting division
// and modulo by zero.
func (e BinExpr) Eval(env Env) (int, error) {
	l, err := e.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := e.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("directive: division by zero in %s", e)
		}
		return l / r, nil
	case '%':
		if r == 0 {
			return 0, fmt.Errorf("directive: modulo by zero in %s", e)
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("directive: unknown operator %q", e.Op)
}

// Symbols collects identifiers from both operands.
func (e BinExpr) Symbols(into map[string]bool) {
	e.L.Symbols(into)
	e.R.Symbols(into)
}

func (e BinExpr) String() string {
	l, r := e.L.String(), e.R.String()
	if bl, ok := e.L.(BinExpr); ok && precedence(bl.Op) < precedence(e.Op) {
		l = "(" + l + ")"
	}
	if br, ok := e.R.(BinExpr); ok && precedence(br.Op) <= precedence(e.Op) {
		r = "(" + r + ")"
	}
	return fmt.Sprintf("%s%c%s", l, e.Op, r)
}

func precedence(op byte) int {
	switch op {
	case '*', '/', '%':
		return 2
	case '+', '-':
		return 1
	}
	return 0
}

// NegExpr is unary negation.
type NegExpr struct{ X Expr }

// Eval negates the operand's value.
func (e NegExpr) Eval(env Env) (int, error) {
	v, err := e.X.Eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

// Symbols collects identifiers from the operand.
func (e NegExpr) Symbols(into map[string]bool) { e.X.Symbols(into) }

func (e NegExpr) String() string {
	if _, ok := e.X.(BinExpr); ok {
		return "-(" + e.X.String() + ")"
	}
	return "-" + e.X.String()
}

// Slice is one s-slice / c-slice: a point access (Stop==nil) or a range
// Start:Stop[:Step]. Step==nil means step 1. All fields may reference
// symbolic constants.
type Slice struct {
	Start Expr
	Stop  Expr // nil for point access
	Step  Expr // nil for step 1
}

// IsPoint reports whether the slice selects a single element.
func (s Slice) IsPoint() bool { return s.Stop == nil }

func (s Slice) String() string {
	if s.IsPoint() {
		return s.Start.String()
	}
	out := s.Start.String() + ":" + s.Stop.String()
	if s.Step != nil {
		out += ":" + s.Step.String()
	}
	return out
}

// Symbols collects identifiers referenced by all slice components.
func (s Slice) Symbols(into map[string]bool) {
	s.Start.Symbols(into)
	if s.Stop != nil {
		s.Stop.Symbols(into)
	}
	if s.Step != nil {
		s.Step.Symbols(into)
	}
}

// SliceSpec is an ss-specifier: a bracketed, comma-separated list of slices
// describing one tensor-space or memory-space access pattern.
type SliceSpec struct {
	Slices []Slice
}

func (ss SliceSpec) String() string {
	parts := make([]string, len(ss.Slices))
	for i, s := range ss.Slices {
		parts[i] = s.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Symbols collects identifiers referenced anywhere in the specifier.
func (ss SliceSpec) Symbols(into map[string]bool) {
	for _, s := range ss.Slices {
		s.Symbols(into)
	}
}

// FunctorDecl is a parsed tensor functor directive:
//
//	#pragma approx tensor functor(name: LHS = (RHS1, RHS2, ...))
//
// The LHS declares the shape of one tensor entry in the tensor memory
// space; each RHS slice describes where the entry's features originate in
// the application memory space, relative to the symbolic constants.
type FunctorDecl struct {
	Name string
	LHS  SliceSpec
	RHS  []SliceSpec
}

// SymbolNames returns the sorted symbolic constants used by the functor
// (identifiers appearing in LHS or RHS expressions).
func (f *FunctorDecl) SymbolNames() []string {
	set := map[string]bool{}
	f.LHS.Symbols(set)
	for _, r := range f.RHS {
		r.Symbols(set)
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (f *FunctorDecl) String() string {
	rhs := make([]string, len(f.RHS))
	for i, r := range f.RHS {
		rhs[i] = r.String()
	}
	return fmt.Sprintf("#pragma approx tensor functor(%s: %s = (%s))",
		f.Name, f.LHS.String(), strings.Join(rhs, ", "))
}

// Direction says which way a tensor map moves data.
type Direction int

// Map directions: To moves application memory into the tensor memory space
// (gather); From moves tensor results back into application memory
// (scatter).
const (
	To Direction = iota
	From
)

func (d Direction) String() string {
	if d == From {
		return "from"
	}
	return "to"
}

// MapTarget names an application array and the concrete ranges over which
// the functor sweeps: array-ref '[' cs-specifier ']'.
type MapTarget struct {
	Array  string
	Slices []Slice
}

func (mt MapTarget) String() string {
	parts := make([]string, len(mt.Slices))
	for i, s := range mt.Slices {
		parts[i] = s.String()
	}
	return mt.Array + "[" + strings.Join(parts, ", ") + "]"
}

// MapDecl is a parsed tensor map directive:
//
//	#pragma approx tensor map(to|from: fnctr(t[1:N-1, 1:M-1], ...))
type MapDecl struct {
	Dir     Direction
	Functor string
	Targets []MapTarget
}

func (m *MapDecl) String() string {
	parts := make([]string, len(m.Targets))
	for i, t := range m.Targets {
		parts[i] = t.String()
	}
	return fmt.Sprintf("#pragma approx tensor map(%s: %s(%s))",
		m.Dir, m.Functor, strings.Join(parts, ", "))
}

// Mode is the ml-mode keyword of the approx ml clause.
type Mode int

// Execution-control modes. Infer replaces the region with model inference;
// Collect runs the accurate path and records region inputs/outputs;
// Predicated chooses between the two per invocation by evaluating a
// boolean condition at run time.
const (
	Infer Mode = iota
	Collect
	Predicated
)

func (m Mode) String() string {
	switch m {
	case Infer:
		return "infer"
	case Collect:
		return "collect"
	case Predicated:
		return "predicated"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// FunctorApp is an inline functor application inside an ml clause's
// mapped-memory list (the fa-expr production): it declares a tensor map
// without a separate tensor map directive, e.g.
//
//	ml(infer) in(poses) out(energy_out(energies[0:N])) ...
type FunctorApp struct {
	Functor string
	Targets []MapTarget
}

func (fa FunctorApp) String() string {
	parts := make([]string, len(fa.Targets))
	for i, t := range fa.Targets {
		parts[i] = t.String()
	}
	return fa.Functor + "(" + strings.Join(parts, ", ") + ")"
}

// CapturePolicy is a parsed capture(...) clause: the sampling policy
// applied to collection-mode invocations before they reach the capture
// sink. Exactly one selector is set:
//
//	capture(every:N)  — keep every N-th invocation (Every = N >= 1)
//	capture(frac:F)   — keep each invocation with probability F (0 < F <= 1)
//
// Long-running solvers use it to collect without drowning the training
// database in near-duplicate records.
type CapturePolicy struct {
	// Every keeps one invocation in every Every; 0 when frac-selected.
	Every int
	// Frac keeps each invocation independently with probability Frac;
	// 0 when every-selected.
	Frac float64
}

func (c CapturePolicy) String() string {
	if c.Every > 0 {
		return fmt.Sprintf("capture(every:%d)", c.Every)
	}
	return fmt.Sprintf("capture(frac:%g)", c.Frac)
}

// TrustPolicy is a parsed trust(...) clause: the per-row gating policy
// that decides which surrogate predictions a region may keep and which
// must be recomputed by the accurate path. Selectors compose (comma
// separated); at least one must be present:
//
//	trust(var:V)              — reject rows whose ensemble predictive
//	                            variance exceeds V (V > 0; needs an
//	                            ensemble engine to measure variance)
//	trust(domain:on)          — reject rows whose input falls outside
//	                            the fitted guardrail envelope
//	trust(var:V, domain:on)   — both gates; the domain gate wins when
//	                            a row trips both
//
// The clause is the annotation form of the runtime's FallbackEngine
// trust gate; WithTrust overrides it the same way WithModel overrides
// model().
type TrustPolicy struct {
	// MaxVariance is the variance gate's threshold; 0 when the clause
	// carries no var: selector.
	MaxVariance float64
	// Domain says whether the input-domain guardrail gate is on.
	Domain bool
}

func (t TrustPolicy) String() string {
	var parts []string
	if t.MaxVariance > 0 {
		parts = append(parts, fmt.Sprintf("var:%g", t.MaxVariance))
	}
	if t.Domain {
		parts = append(parts, "domain:on")
	}
	return "trust(" + strings.Join(parts, ", ") + ")"
}

// MLDecl is a parsed approx ml directive:
//
//	#pragma approx ml(mode[:cond]) in(a, b) out(c) inout(d) \
//	        model("m.gmod") db("d.gh5") capture(every:N) trust(var:V) \
//	        f32(on|off) if(cond)
//
// Each of in/out/inout accepts either plain array references (which must
// be covered by tensor map directives) or inline functor applications
// (fa-exprs, which create implicit maps). Cond and If hold the raw
// condition text; the runtime binds them to caller-supplied predicates (a
// compiler would have generated code for the expression — see DESIGN.md
// substitution table).
type MLDecl struct {
	Mode      Mode
	Cond      string // optional bool-expr after the mode keyword
	In        []string
	Out       []string
	InOut     []string
	InApps    []FunctorApp
	OutApps   []FunctorApp
	InOutApps []FunctorApp
	Model     string
	DB        string
	Capture   *CapturePolicy
	Trust     *TrustPolicy
	F32       *bool  // f32(on|off): single-precision inference; nil = runtime default
	Quant     string // quant(int8|off): quantized inference; "" = runtime default
	If        string
}

// quoteClause renders a model/db clause value as a directive string
// literal using the lexer's own escaping — only '\' and '"' are
// escaped, every other byte passes verbatim — so String output reparses
// to the identical value. Go's %q would emit multi-character escapes
// (\n, \xff) the lexer deliberately does not interpret.
func quoteClause(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' {
			b.WriteByte('\\')
			b.WriteByte(c)
		} else {
			b.WriteByte(s[i])
		}
	}
	b.WriteByte('"')
	return b.String()
}

func (m *MLDecl) String() string {
	var b strings.Builder
	b.WriteString("#pragma approx ml(")
	b.WriteString(m.Mode.String())
	if m.Cond != "" {
		b.WriteString(":" + m.Cond)
	}
	b.WriteString(")")
	writeList := func(kw string, items []string, apps []FunctorApp) {
		parts := append([]string(nil), items...)
		for _, a := range apps {
			parts = append(parts, a.String())
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, " %s(%s)", kw, strings.Join(parts, ", "))
		}
	}
	writeList("in", m.In, m.InApps)
	writeList("out", m.Out, m.OutApps)
	writeList("inout", m.InOut, m.InOutApps)
	if m.Model != "" {
		fmt.Fprintf(&b, " model(%s)", quoteClause(m.Model))
	}
	if m.DB != "" {
		fmt.Fprintf(&b, " db(%s)", quoteClause(m.DB))
	}
	if m.Capture != nil {
		b.WriteString(" " + m.Capture.String())
	}
	if m.Trust != nil {
		b.WriteString(" " + m.Trust.String())
	}
	if m.F32 != nil {
		if *m.F32 {
			b.WriteString(" f32(on)")
		} else {
			b.WriteString(" f32(off)")
		}
	}
	if m.Quant != "" {
		fmt.Fprintf(&b, " quant(%s)", m.Quant)
	}
	if m.If != "" {
		fmt.Fprintf(&b, " if(%s)", m.If)
	}
	return b.String()
}

// Directive is a parsed HPAC-ML directive: one of *FunctorDecl, *MapDecl,
// or *MLDecl.
type Directive interface {
	fmt.Stringer
	directive()
}

func (*FunctorDecl) directive() {}
func (*MapDecl) directive()     {}
func (*MLDecl) directive()      {}
