package directive

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one HPAC-ML directive. The "#pragma approx" prefix is
// optional, so both full pragma text and bare clause text are accepted:
//
//	#pragma approx tensor functor(f: [i,0:3] = ([i-1], [i], [i+1]))
//	tensor map(to: f(x[1:N-1]))
//	ml(predicated:useModel) in(x) out(y) model("m.gmod") db("d.gh5")
func Parse(src string) (Directive, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	d, err := p.parseDirective()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errorf("trailing input after directive")
	}
	return d, nil
}

// ParseAll parses a multi-line block of directives, one per line, ignoring
// blank lines and lines starting with "//". Pragma line continuations
// (trailing backslash) join lines first.
func ParseAll(src string) ([]Directive, error) {
	joined := strings.ReplaceAll(src, "\\\n", " ")
	var out []Directive
	for ln, line := range strings.Split(joined, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		d, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, d)
	}
	return out, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind) bool { return p.cur().kind == kind }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && p.cur().text == kw
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if !p.at(kind) {
		return token{}, p.errorf("expected %s, found %s %q", kind, p.cur().kind, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected keyword %q, found %q", kw, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("directive: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

func (p *parser) parseDirective() (Directive, error) {
	// Optional "#pragma approx" or "approx" prefix.
	if p.at(tokHash) {
		p.next()
		if err := p.expectKeyword("pragma"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("approx"); err != nil {
			return nil, err
		}
	} else if p.atKeyword("approx") {
		p.next()
	}
	switch {
	case p.atKeyword("tensor"):
		p.next()
		switch {
		case p.atKeyword("functor"):
			p.next()
			return p.parseFunctor()
		case p.atKeyword("map"):
			p.next()
			return p.parseMap()
		default:
			return nil, p.errorf("expected 'functor' or 'map' after 'tensor'")
		}
	case p.atKeyword("ml"):
		p.next()
		return p.parseML()
	default:
		return nil, p.errorf("expected 'tensor' or 'ml' directive")
	}
}

// parseFunctor parses functor(name: LHS = (RHS, ...)). Both the Fig. 2
// double-parenthesized form (( [..],[..] )) and the single form are
// accepted; the outer parentheses simply group the RHS tuple.
func (p *parser) parseFunctor() (*FunctorDecl, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	lhs, err := p.parseSliceSpec()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	// Optional extra grouping parenthesis, as written in the paper's
	// example: = ( ( [..], [..] ) ).
	extraParen := false
	if p.at(tokLParen) {
		extraParen = true
		p.next()
	}
	var rhs []SliceSpec
	for {
		ss, err := p.parseSliceSpec()
		if err != nil {
			return nil, err
		}
		rhs = append(rhs, ss)
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if extraParen {
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	f := &FunctorDecl{Name: name.text, LHS: lhs, RHS: rhs}
	if err := validateFunctor(f); err != nil {
		return nil, err
	}
	return f, nil
}

// validateFunctor performs the semantic checks Clang's Sema would do.
func validateFunctor(f *FunctorDecl) error {
	if len(f.LHS.Slices) == 0 {
		return fmt.Errorf("directive: functor %q has empty LHS", f.Name)
	}
	if len(f.RHS) == 0 {
		return fmt.Errorf("directive: functor %q has empty RHS", f.Name)
	}
	// Every RHS slice list must have the same rank: they all describe
	// accesses into the same mapped array sweep.
	rank := len(f.RHS[0].Slices)
	for _, r := range f.RHS[1:] {
		if len(r.Slices) != rank {
			return fmt.Errorf("directive: functor %q RHS ranks differ: %d vs %d",
				f.Name, rank, len(r.Slices))
		}
	}
	return nil
}

func (p *parser) parseMap() (*MapDecl, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	dirTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	var dir Direction
	switch dirTok.text {
	case "to":
		dir = To
	case "from":
		dir = From
	default:
		return nil, p.errorf("expected direction 'to' or 'from', found %q", dirTok.text)
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	fn, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var targets []MapTarget
	for {
		t, err := p.parseMapTarget()
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &MapDecl{Dir: dir, Functor: fn.text, Targets: targets}, nil
}

func (p *parser) parseMapTarget() (MapTarget, error) {
	arr, err := p.expect(tokIdent)
	if err != nil {
		return MapTarget{}, err
	}
	if _, err := p.expect(tokLBrack); err != nil {
		return MapTarget{}, err
	}
	var slices []Slice
	for {
		s, err := p.parseSlice()
		if err != nil {
			return MapTarget{}, err
		}
		slices = append(slices, s)
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRBrack); err != nil {
		return MapTarget{}, err
	}
	return MapTarget{Array: arr.text, Slices: slices}, nil
}

func (p *parser) parseML() (*MLDecl, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	modeTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	ml := &MLDecl{}
	switch modeTok.text {
	case "infer":
		ml.Mode = Infer
	case "collect":
		ml.Mode = Collect
	case "predicated":
		ml.Mode = Predicated
	default:
		return nil, p.errorf("unknown ml-mode %q (want infer, collect, or predicated)", modeTok.text)
	}
	if p.at(tokColon) {
		p.next()
		cond, err := p.parseRawUntilCloseParen()
		if err != nil {
			return nil, err
		}
		ml.Cond = cond
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for p.at(tokIdent) {
		kw := p.next().text
		if seen[kw] {
			return nil, p.errorf("duplicate clause %q in ml directive", kw)
		}
		seen[kw] = true
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		switch kw {
		case "in", "out", "inout":
			list, apps, err := p.parseMappedMemory()
			if err != nil {
				return nil, err
			}
			switch kw {
			case "in":
				ml.In, ml.InApps = list, apps
			case "out":
				ml.Out, ml.OutApps = list, apps
			case "inout":
				ml.InOut, ml.InOutApps = list, apps
			}
		case "model", "db", "database":
			s, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			if kw == "model" {
				if err := ValidateModelRef(s.text); err != nil {
					return nil, err
				}
				ml.Model = s.text
			} else {
				if err := ValidateDBRef(s.text); err != nil {
					return nil, err
				}
				ml.DB = s.text
			}
		case "capture":
			pol, err := p.parseCapturePolicy()
			if err != nil {
				return nil, err
			}
			ml.Capture = pol
		case "trust":
			pol, err := p.parseTrustPolicy()
			if err != nil {
				return nil, err
			}
			ml.Trust = pol
		case "f32":
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "on":
				on := true
				ml.F32 = &on
			case "off":
				off := false
				ml.F32 = &off
			default:
				return nil, p.errorf("f32 wants on or off, got %q", t.text)
			}
		case "quant":
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "int8", "off":
				ml.Quant = t.text
			default:
				return nil, p.errorf("quant wants int8 or off, got %q", t.text)
			}
		case "if":
			cond, err := p.parseRawUntilCloseParen()
			if err != nil {
				return nil, err
			}
			ml.If = cond
		default:
			return nil, p.errorf("unknown ml clause %q", kw)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	if len(ml.In) == 0 && len(ml.Out) == 0 && len(ml.InOut) == 0 &&
		len(ml.InApps) == 0 && len(ml.OutApps) == 0 && len(ml.InOutApps) == 0 {
		return nil, p.errorf("ml directive needs at least one of in/out/inout")
	}
	return ml, nil
}

// parseCapturePolicy parses the body of a capture(...) clause:
// "every" ":" int-lit, or "frac" ":" number in (0, 1].
func (p *parser) parseCapturePolicy() (*CapturePolicy, error) {
	kind, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	switch kind.text {
	case "every":
		t, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad integer %q: %v", t.text, err)
		}
		if n < 1 {
			return nil, p.errorf("capture(every:N) wants N >= 1, got %d", n)
		}
		return &CapturePolicy{Every: n}, nil
	case "frac":
		if !p.at(tokInt) && !p.at(tokFloat) {
			return nil, p.errorf("capture(frac:F) wants a number, found %s %q", p.cur().kind, p.cur().text)
		}
		t := p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad fraction %q: %v", t.text, err)
		}
		if f <= 0 || f > 1 {
			return nil, p.errorf("capture(frac:F) wants 0 < F <= 1, got %g", f)
		}
		return &CapturePolicy{Frac: f}, nil
	default:
		return nil, p.errorf("unknown capture policy %q (want every or frac)", kind.text)
	}
}

// parseTrustPolicy parses the body of a trust(...) clause: a comma-
// separated list of selectors, "var" ":" number > 0 and/or
// "domain" ":" ("on"|"off"), at least one required.
func (p *parser) parseTrustPolicy() (*TrustPolicy, error) {
	pol := &TrustPolicy{}
	seen := map[string]bool{}
	for {
		kind, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if seen[kind.text] {
			return nil, p.errorf("duplicate trust selector %q", kind.text)
		}
		seen[kind.text] = true
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		switch kind.text {
		case "var":
			if !p.at(tokInt) && !p.at(tokFloat) {
				return nil, p.errorf("trust(var:V) wants a number, found %s %q", p.cur().kind, p.cur().text)
			}
			t := p.next()
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad variance threshold %q: %v", t.text, err)
			}
			if v <= 0 {
				return nil, p.errorf("trust(var:V) wants V > 0, got %g", v)
			}
			pol.MaxVariance = v
		case "domain":
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "on":
				pol.Domain = true
			case "off":
				pol.Domain = false
			default:
				return nil, p.errorf("trust(domain:...) wants on or off, got %q", t.text)
			}
		default:
			return nil, p.errorf("unknown trust selector %q (want var or domain)", kind.text)
		}
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if pol.MaxVariance == 0 && !pol.Domain {
		return nil, p.errorf("trust(...) selects no gate (want var:V and/or domain:on)")
	}
	return pol, nil
}

// parseMappedMemory parses the mapped-memory production: a comma-separated
// mixture of plain array references and inline functor applications
// (fa-exprs, e.g. "ofnctr(tnew[1:N-1, 1:M-1])").
func (p *parser) parseMappedMemory() (names []string, apps []FunctorApp, err error) {
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, nil, err
		}
		if p.at(tokLParen) {
			p.next()
			var targets []MapTarget
			for {
				t, err := p.parseMapTarget()
				if err != nil {
					return nil, nil, err
				}
				targets = append(targets, t)
				if !p.at(tokComma) {
					break
				}
				p.next()
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, nil, err
			}
			apps = append(apps, FunctorApp{Functor: id.text, Targets: targets})
		} else {
			names = append(names, id.text)
		}
		if !p.at(tokComma) {
			return names, apps, nil
		}
		p.next()
	}
}

// parseRawUntilCloseParen consumes tokens up to (not including) the next
// unbalanced ')' and returns their concatenated text. Used for condition
// expressions, which the runtime evaluates via user-bound predicates.
func (p *parser) parseRawUntilCloseParen() (string, error) {
	depth := 0
	var parts []string
	for {
		t := p.cur()
		switch t.kind {
		case tokEOF:
			return "", p.errorf("unterminated condition expression")
		case tokLParen:
			depth++
		case tokRParen:
			if depth == 0 {
				return strings.Join(parts, ""), nil
			}
			depth--
		}
		if t.kind == tokString {
			// Re-render with the lexer's own escaping (not strconv.Quote,
			// whose \xNN escapes the lexer does not interpret), so the
			// reconstructed condition reparses to the identical value.
			parts = append(parts, quoteClause(t.text))
		} else {
			parts = append(parts, t.text)
		}
		p.next()
	}
}

func (p *parser) parseSliceSpec() (SliceSpec, error) {
	if _, err := p.expect(tokLBrack); err != nil {
		return SliceSpec{}, err
	}
	var slices []Slice
	for {
		s, err := p.parseSlice()
		if err != nil {
			return SliceSpec{}, err
		}
		slices = append(slices, s)
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRBrack); err != nil {
		return SliceSpec{}, err
	}
	return SliceSpec{Slices: slices}, nil
}

func (p *parser) parseSlice() (Slice, error) {
	start, err := p.parseExpr()
	if err != nil {
		return Slice{}, err
	}
	s := Slice{Start: start}
	if !p.at(tokColon) {
		return s, nil
	}
	p.next()
	stop, err := p.parseExpr()
	if err != nil {
		return Slice{}, err
	}
	s.Stop = stop
	if p.at(tokColon) {
		p.next()
		step, err := p.parseExpr()
		if err != nil {
			return Slice{}, err
		}
		s.Step = step
	}
	return s, nil
}

// parseExpr parses additive expressions: term (('+'|'-') term)*.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := byte('+')
		if p.at(tokMinus) {
			op = '-'
		}
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

// parseTerm parses multiplicative expressions: factor (('*'|'/'|'%') factor)*.
func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) || p.at(tokPercent) {
		var op byte
		switch p.cur().kind {
		case tokStar:
			op = '*'
		case tokSlash:
			op = '/'
		default:
			op = '%'
		}
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Expr, error) {
	switch {
	case p.at(tokMinus):
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return NegExpr{X: x}, nil
	case p.at(tokInt):
		t := p.next()
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad integer %q: %v", t.text, err)
		}
		return IntLit{Value: v}, nil
	case p.at(tokIdent):
		t := p.next()
		return SymRef{Name: t.text}, nil
	case p.at(tokLParen):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("expected expression, found %s %q", p.cur().kind, p.cur().text)
	}
}
