// Package tensor provides dense, strided, N-dimensional tensors over
// []float64 storage. It is the memory substrate shared by the HPAC-ML data
// bridge and the neural-network engine: tensors can alias application memory
// (zero-copy views) or own their storage.
//
// The design mirrors the slice/view machinery the paper's runtime builds on
// top of Torch: a Tensor is (data, offset, shape, strides). Views created by
// Slice, Narrow, Reshape (on contiguous tensors), and Transpose share
// storage; Contiguous and Clone materialize copies.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a strided view over a []float64 buffer. The zero value is an
// empty scalar-less tensor; use New, FromSlice, or Wrap to construct one.
type Tensor struct {
	data    []float64
	offset  int
	shape   []int
	strides []int
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := NumElements(shape)
	return &Tensor{
		data:    make([]float64, n),
		shape:   append([]int(nil), shape...),
		strides: contiguousStrides(shape),
	}
}

// FromSlice builds a tensor that owns a copy of data, interpreted with the
// given shape. It returns an error when the element count does not match.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	if n := NumElements(shape); n != len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elements, got %d", shape, n, len(data))
	}
	cp := append([]float64(nil), data...)
	return &Tensor{data: cp, shape: append([]int(nil), shape...), strides: contiguousStrides(shape)}, nil
}

// Wrap builds a zero-copy tensor view over existing application memory.
// Mutating the tensor mutates data and vice versa. This is the "tensor
// wrapping" primitive of the HPAC-ML data bridge: no copy occurs.
func Wrap(data []float64, shape ...int) (*Tensor, error) {
	if n := NumElements(shape); n > len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elements, buffer has %d", shape, n, len(data))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...), strides: contiguousStrides(shape)}, nil
}

// WrapStrided builds a view with explicit offset and strides over data.
// It validates that every reachable element lies inside the buffer.
func WrapStrided(data []float64, offset int, shape, strides []int) (*Tensor, error) {
	if len(shape) != len(strides) {
		return nil, fmt.Errorf("tensor: shape rank %d != strides rank %d", len(shape), len(strides))
	}
	lo, hi := offset, offset
	for i, s := range shape {
		if s < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", s, shape)
		}
		if s == 0 {
			lo, hi = 0, 0
			break
		}
		ext := (s - 1) * strides[i]
		if ext > 0 {
			hi += ext
		} else {
			lo += ext
		}
	}
	if lo < 0 || hi >= len(data) && NumElements(shape) > 0 {
		return nil, fmt.Errorf("tensor: view [%d,%d] out of bounds for buffer of %d", lo, hi, len(data))
	}
	return &Tensor{
		data:    data,
		offset:  offset,
		shape:   append([]int(nil), shape...),
		strides: append([]int(nil), strides...),
	}, nil
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{data: []float64{v}, shape: []int{}, strides: []int{}}
}

// NumElements returns the product of the dims in shape (1 for rank 0).
func NumElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

func contiguousStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= shape[i]
	}
	return strides
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Strides returns a copy of the tensor's strides (in elements).
func (t *Tensor) Strides() []int { return append([]int(nil), t.strides...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return NumElements(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// IsContiguous reports whether the elements are laid out in row-major order
// with no gaps, which permits zero-copy Reshape and direct Data access.
func (t *Tensor) IsContiguous() bool {
	acc := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		if t.shape[i] == 1 {
			continue // stride irrelevant for singleton dims
		}
		if t.strides[i] != acc {
			return false
		}
		acc *= t.shape[i]
	}
	return true
}

// Data returns the raw storage of a contiguous tensor starting at its
// offset, sized to exactly Len() elements. It panics for non-contiguous
// tensors; call Contiguous first.
func (t *Tensor) Data() []float64 {
	if !t.IsContiguous() {
		panic("tensor: Data on non-contiguous tensor; call Contiguous first")
	}
	return t.data[t.offset : t.offset+t.Len()]
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.flatIndex(idx)]
}

// Set writes v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.flatIndex(idx)] = v
}

func (t *Tensor) flatIndex(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	flat := t.offset
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", ix, t.shape[i], i))
		}
		flat += ix * t.strides[i]
	}
	return flat
}

// Slice returns a half-open view [start, stop) with the given step along
// dim. step must be positive. The view shares storage with t.
func (t *Tensor) Slice(dim, start, stop, step int) (*Tensor, error) {
	if dim < 0 || dim >= len(t.shape) {
		return nil, fmt.Errorf("tensor: slice dim %d out of range for rank %d", dim, len(t.shape))
	}
	if step <= 0 {
		return nil, fmt.Errorf("tensor: slice step must be positive, got %d", step)
	}
	if start < 0 || stop > t.shape[dim] || start > stop {
		return nil, fmt.Errorf("tensor: slice [%d:%d] out of range for dim of size %d", start, stop, t.shape[dim])
	}
	shape := append([]int(nil), t.shape...)
	strides := append([]int(nil), t.strides...)
	shape[dim] = (stop - start + step - 1) / step
	strides[dim] = t.strides[dim] * step
	return &Tensor{
		data:    t.data,
		offset:  t.offset + start*t.strides[dim],
		shape:   shape,
		strides: strides,
	}, nil
}

// Narrow is Slice with step 1.
func (t *Tensor) Narrow(dim, start, length int) (*Tensor, error) {
	return t.Slice(dim, start, start+length, 1)
}

// Index fixes dimension dim to position i, reducing the rank by one.
func (t *Tensor) Index(dim, i int) (*Tensor, error) {
	if dim < 0 || dim >= len(t.shape) {
		return nil, fmt.Errorf("tensor: index dim %d out of range for rank %d", dim, len(t.shape))
	}
	if i < 0 || i >= t.shape[dim] {
		return nil, fmt.Errorf("tensor: index %d out of range [0,%d)", i, t.shape[dim])
	}
	shape := make([]int, 0, len(t.shape)-1)
	strides := make([]int, 0, len(t.shape)-1)
	for d := range t.shape {
		if d == dim {
			continue
		}
		shape = append(shape, t.shape[d])
		strides = append(strides, t.strides[d])
	}
	return &Tensor{data: t.data, offset: t.offset + i*t.strides[dim], shape: shape, strides: strides}, nil
}

// Transpose swaps two dimensions without copying.
func (t *Tensor) Transpose(a, b int) (*Tensor, error) {
	if a < 0 || a >= len(t.shape) || b < 0 || b >= len(t.shape) {
		return nil, fmt.Errorf("tensor: transpose dims (%d,%d) out of range for rank %d", a, b, len(t.shape))
	}
	shape := append([]int(nil), t.shape...)
	strides := append([]int(nil), t.strides...)
	shape[a], shape[b] = shape[b], shape[a]
	strides[a], strides[b] = strides[b], strides[a]
	return &Tensor{data: t.data, offset: t.offset, shape: shape, strides: strides}, nil
}

// Reshape returns a view with a new shape. For contiguous tensors this is
// zero-copy; otherwise the tensor is materialized first. A single -1 entry
// is inferred from the element count.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				return nil, fmt.Errorf("tensor: multiple -1 dims in reshape %v", shape)
			}
			infer = i
		case d < 0:
			return nil, fmt.Errorf("tensor: negative dim %d in reshape %v", d, shape)
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || t.Len()%known != 0 {
			return nil, fmt.Errorf("tensor: cannot infer dim in reshape %v of %d elements", shape, t.Len())
		}
		shape[infer] = t.Len() / known
		known *= shape[infer]
	}
	if known != t.Len() {
		return nil, fmt.Errorf("tensor: reshape %v wants %d elements, tensor has %d", shape, known, t.Len())
	}
	src := t
	if !t.IsContiguous() {
		src = t.Contiguous()
	}
	return &Tensor{data: src.data, offset: src.offset, shape: shape, strides: contiguousStrides(shape)}, nil
}

// Flatten returns a rank-1 view (copying if non-contiguous).
func (t *Tensor) Flatten() *Tensor {
	r, err := t.Reshape(t.Len())
	if err != nil {
		panic("tensor: flatten: " + err.Error()) // cannot happen: Len always divides
	}
	return r
}

// Contiguous returns t itself when already contiguous, otherwise a freshly
// allocated row-major copy.
func (t *Tensor) Contiguous() *Tensor {
	if t.IsContiguous() {
		return t
	}
	out := New(t.shape...)
	t.iterate(func(flatDst int, src float64) {
		out.data[flatDst] = src
	})
	return out
}

// Clone always returns a freshly allocated row-major copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.shape...)
	t.iterate(func(flatDst int, src float64) {
		out.data[flatDst] = src
	})
	return out
}

// iterate walks elements in row-major logical order, calling fn with the
// destination flat index and the source value.
func (t *Tensor) iterate(fn func(flat int, v float64)) {
	n := t.Len()
	if n == 0 {
		return
	}
	if len(t.shape) == 0 {
		fn(0, t.data[t.offset])
		return
	}
	idx := make([]int, len(t.shape))
	src := t.offset
	for flat := 0; flat < n; flat++ {
		fn(flat, t.data[src])
		for d := len(t.shape) - 1; d >= 0; d-- {
			idx[d]++
			src += t.strides[d]
			if idx[d] < t.shape[d] {
				break
			}
			idx[d] = 0
			src -= t.shape[d] * t.strides[d]
		}
	}
}

// CopyFrom copies src's elements into t; shapes must match exactly.
func (t *Tensor) CopyFrom(src *Tensor) error {
	if !ShapeEqual(t.shape, src.shape) {
		return fmt.Errorf("tensor: copy shape mismatch %v vs %v", t.shape, src.shape)
	}
	// Fast path: both contiguous.
	if t.IsContiguous() && src.IsContiguous() {
		copy(t.data[t.offset:t.offset+t.Len()], src.data[src.offset:src.offset+src.Len()])
		return nil
	}
	dst := t
	src.iterate(func(flat int, v float64) {
		dst.setFlatLogical(flat, v)
	})
	return nil
}

// setFlatLogical writes v at the row-major logical position flat.
func (t *Tensor) setFlatLogical(flat int, v float64) {
	pos := t.offset
	rem := flat
	for d := 0; d < len(t.shape); d++ {
		size := 1
		for e := d + 1; e < len(t.shape); e++ {
			size *= t.shape[e]
		}
		pos += (rem / size) * t.strides[d]
		rem %= size
	}
	t.data[pos] = v
}

// CopyFlat copies src into dst in row-major logical order. The shapes may
// differ (e.g. [4,3,2] into [4,6]) but the element counts must match. This
// is the workhorse of the data bridge's tensor-composition step: it walks
// both tensors with incremental odometers, so strided views are traversed
// without materializing either side.
func CopyFlat(dst, src *Tensor) error {
	n := src.Len()
	if dst.Len() != n {
		return fmt.Errorf("tensor: CopyFlat element count mismatch: dst %d, src %d", dst.Len(), n)
	}
	if n == 0 {
		return nil
	}
	// Fast path: both contiguous.
	if dst.IsContiguous() && src.IsContiguous() {
		copy(dst.data[dst.offset:dst.offset+n], src.data[src.offset:src.offset+n])
		return nil
	}
	// Chunked path: both sides advance by `chunk` elements at a time,
	// where chunk divides both innermost unit-stride extents, so each
	// block is served by copy().
	chunk := gcd(innerRun(dst), innerRun(src))
	sIdx := make([]int, len(src.shape))
	dIdx := make([]int, len(dst.shape))
	sPos, dPos := src.offset, dst.offset
	if chunk > 1 {
		for i := 0; i < n; i += chunk {
			copy(dst.data[dPos:dPos+chunk], src.data[sPos:sPos+chunk])
			sPos = advanceBy(src, sIdx, sPos, chunk)
			dPos = advanceBy(dst, dIdx, dPos, chunk)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		dst.data[dPos] = src.data[sPos]
		sPos = advanceBy(src, sIdx, sPos, 1)
		dPos = advanceBy(dst, dIdx, dPos, 1)
	}
	return nil
}

// innerRun returns the extent of the innermost non-singleton dim when it
// has unit stride, else 1.
func innerRun(t *Tensor) int {
	for d := len(t.shape) - 1; d >= 0; d-- {
		if t.shape[d] == 1 {
			continue
		}
		if t.strides[d] == 1 {
			return t.shape[d]
		}
		return 1
	}
	return 1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 1 {
		return 1
	}
	return a
}

// advanceBy moves a row-major odometer forward by `chunk` elements along
// the innermost non-singleton dim, whose extent chunk must divide, and
// carries upward exactly.
func advanceBy(t *Tensor, idx []int, pos, chunk int) int {
	d := len(t.shape) - 1
	for d >= 0 && t.shape[d] == 1 {
		d--
	}
	if d < 0 {
		return pos
	}
	idx[d] += chunk
	pos += chunk * t.strides[d]
	if idx[d] < t.shape[d] {
		return pos
	}
	idx[d] = 0
	pos -= t.shape[d] * t.strides[d]
	for d--; d >= 0; d-- {
		idx[d]++
		pos += t.strides[d]
		if idx[d] < t.shape[d] {
			return pos
		}
		idx[d] = 0
		pos -= t.shape[d] * t.strides[d]
	}
	return pos
}

// SameShape reports whether two tensors have identical shapes. Unlike
// ShapeEqual(a.Shape(), b.Shape()) it copies neither shape, so hot-path
// validation (the loss functions, called every training step) stays
// allocation-free.
func SameShape(a, b *Tensor) bool {
	return ShapeEqual(a.shape, b.shape)
}

// ShapeEqual reports whether two shapes are identical.
func ShapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	if t.IsContiguous() {
		d := t.data[t.offset : t.offset+t.Len()]
		for i := range d {
			d[i] = v
		}
		return
	}
	t.applyInPlace(func(float64) float64 { return v })
}

// applyInPlace applies fn to every stored element of the view.
func (t *Tensor) applyInPlace(fn func(float64) float64) {
	n := t.Len()
	if n == 0 {
		return
	}
	if len(t.shape) == 0 {
		t.data[t.offset] = fn(t.data[t.offset])
		return
	}
	idx := make([]int, len(t.shape))
	pos := t.offset
	for flat := 0; flat < n; flat++ {
		t.data[pos] = fn(t.data[pos])
		for d := len(t.shape) - 1; d >= 0; d-- {
			idx[d]++
			pos += t.strides[d]
			if idx[d] < t.shape[d] {
				break
			}
			idx[d] = 0
			pos -= t.shape[d] * t.strides[d]
		}
	}
}

// Apply returns a new contiguous tensor with fn applied elementwise.
func (t *Tensor) Apply(fn func(float64) float64) *Tensor {
	out := t.Clone()
	d := out.Data()
	for i := range d {
		d[i] = fn(d[i])
	}
	return out
}

// AddInPlace adds other into t elementwise; shapes must match.
func (t *Tensor) AddInPlace(other *Tensor) error {
	return t.zipInPlace(other, func(a, b float64) float64 { return a + b })
}

// SubInPlace subtracts other from t elementwise.
func (t *Tensor) SubInPlace(other *Tensor) error {
	return t.zipInPlace(other, func(a, b float64) float64 { return a - b })
}

// MulInPlace multiplies t by other elementwise.
func (t *Tensor) MulInPlace(other *Tensor) error {
	return t.zipInPlace(other, func(a, b float64) float64 { return a * b })
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) {
	t.applyInPlace(func(v float64) float64 { return v * s })
}

func (t *Tensor) zipInPlace(other *Tensor, fn func(a, b float64) float64) error {
	if !ShapeEqual(t.shape, other.shape) {
		return fmt.Errorf("tensor: elementwise shape mismatch %v vs %v", t.shape, other.shape)
	}
	o := other.Contiguous()
	od := o.data[o.offset:]
	i := 0
	t.applyInPlace(func(v float64) float64 {
		r := fn(v, od[i])
		i++
		return r
	})
	return nil
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	t.iterate(func(_ int, v float64) { s += v })
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	n := t.Len()
	if n == 0 {
		return 0
	}
	return t.Sum() / float64(n)
}

// Max returns the maximum element; it panics on empty tensors.
func (t *Tensor) Max() float64 {
	if t.Len() == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := math.Inf(-1)
	t.iterate(func(_ int, v float64) {
		if v > m {
			m = v
		}
	})
	return m
}

// Min returns the minimum element; it panics on empty tensors.
func (t *Tensor) Min() float64 {
	if t.Len() == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := math.Inf(1)
	t.iterate(func(_ int, v float64) {
		if v < m {
			m = v
		}
	})
	return m
}

// Concat concatenates tensors along dim. All inputs must share rank and all
// non-dim extents. The result is freshly allocated and contiguous.
func Concat(dim int, ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: concat of zero tensors")
	}
	rank := ts[0].Rank()
	if dim < 0 || dim >= rank {
		return nil, fmt.Errorf("tensor: concat dim %d out of range for rank %d", dim, rank)
	}
	outShape := ts[0].Shape()
	outShape[dim] = 0
	for _, t := range ts {
		if t.Rank() != rank {
			return nil, fmt.Errorf("tensor: concat rank mismatch %d vs %d", t.Rank(), rank)
		}
		for d := 0; d < rank; d++ {
			if d != dim && t.shape[d] != ts[0].shape[d] {
				return nil, fmt.Errorf("tensor: concat extent mismatch in dim %d: %d vs %d", d, t.shape[d], ts[0].shape[d])
			}
		}
		outShape[dim] += t.shape[dim]
	}
	out := New(outShape...)
	at := 0
	for _, t := range ts {
		dst, err := out.Narrow(dim, at, t.shape[dim])
		if err != nil {
			return nil, err
		}
		if err := dst.CopyFrom(t); err != nil {
			return nil, err
		}
		at += t.shape[dim]
	}
	return out, nil
}

// Stack stacks tensors along a new leading dimension at position dim.
func Stack(dim int, ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: stack of zero tensors")
	}
	base := ts[0].Shape()
	for _, t := range ts {
		if !ShapeEqual(t.shape, ts[0].shape) {
			return nil, fmt.Errorf("tensor: stack shape mismatch %v vs %v", t.shape, ts[0].shape)
		}
	}
	if dim < 0 || dim > len(base) {
		return nil, fmt.Errorf("tensor: stack dim %d out of range for rank %d", dim, len(base))
	}
	newShape := make([]int, 0, len(base)+1)
	newShape = append(newShape, base[:dim]...)
	newShape = append(newShape, len(ts))
	newShape = append(newShape, base[dim:]...)
	out := New(newShape...)
	for i, t := range ts {
		slot, err := out.Index(dim, i)
		if err != nil {
			return nil, err
		}
		if err := slot.CopyFrom(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	const maxRender = 64
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if t.Len() <= maxRender {
		b.WriteString("{")
		first := true
		t.iterate(func(_ int, v float64) {
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "%g", v)
		})
		b.WriteString("}")
	} else {
		fmt.Fprintf(&b, "{… %d elements}", t.Len())
	}
	return b.String()
}
