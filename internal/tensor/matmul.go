package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// The MatMul kernel parallelizes across output-row ranges and adapts its
// loop order to the size of B. While B fits in the last-level cache, each
// output row is accumulated fully while resident in L1 and B's rows are
// streamed — panel blocking would only add C re-traffic. Once B outgrows
// the cache, the kernel switches to [matMulBlockK x matMulBlockJ] panels
// of B that stay cache-resident while applied to every row of the
// worker's range. Both orders accumulate each output element over k
// ascending, so the paths (and any row split across workers) are
// bit-identical.
const (
	// matMulPanelBytes approximates the last-level cache share available
	// to B; beyond it the kernel blocks B into panels.
	matMulPanelBytes = 8 << 20
	// matMulBlockK bounds the depth of a B panel.
	matMulBlockK = 256
	// matMulBlockJ bounds a panel's column window so one panel
	// (matMulBlockK x matMulBlockJ float64s, ~1 MB) fits in L2.
	matMulBlockJ = 512
	// matMulParFLOPs is the multiply-accumulate count below which the
	// goroutine fan-out costs more than it saves and the kernel runs
	// serially on the calling goroutine.
	matMulParFLOPs = 1 << 18
)

// MatMul computes a @ b for rank-2 tensors [m,k] x [k,n] -> [m,n] with a
// cache-aware kernel parallelized across row ranges.
func MatMul(a, b *Tensor) (*Tensor, error) {
	m, n, err := matMulDims(a, b)
	if err != nil {
		return nil, err
	}
	out := New(m, n)
	matMulKernel(out, a, b)
	return out, nil
}

// MatMulInto computes a @ b into dst, which must be a contiguous [m,n]
// tensor whose storage does not overlap a or b. dst's previous contents
// are overwritten, letting hot paths (the NN engine's dense layers, the
// batched region-inference staging) reuse one output buffer across calls
// instead of allocating per invocation.
func MatMulInto(dst, a, b *Tensor) error {
	m, n, err := matMulDims(a, b)
	if err != nil {
		return err
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmul dst shape %v, want [%d %d]", dst.shape, m, n)
	}
	if !dst.IsContiguous() {
		return fmt.Errorf("tensor: matmul dst must be contiguous")
	}
	matMulKernel(dst, a, b)
	return nil
}

func matMulDims(a, b *Tensor) (m, n int, err error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return 0, 0, fmt.Errorf("tensor: matmul wants rank-2 operands, got %d and %d", a.Rank(), b.Rank())
	}
	if a.shape[1] != b.shape[0] {
		return 0, 0, fmt.Errorf("tensor: matmul inner dims differ: %d vs %d", a.shape[1], b.shape[0])
	}
	return a.shape[0], b.shape[1], nil
}

// matMulKernel assumes shapes were validated and dst is contiguous.
func matMulKernel(dst, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	ac, bc := a.Contiguous(), b.Contiguous()
	ad := ac.data[ac.offset:]
	bd := bc.data[bc.offset:]
	od := dst.data[dst.offset : dst.offset+m*n]
	for i := range od {
		od[i] = 0
	}
	if m*k*n < matMulParFLOPs {
		matMulRows(ad, bd, od, k, n, 0, m)
		return
	}
	parallel.ForRange(m, func(lo, hi int) {
		matMulRows(ad, bd, od, k, n, lo, hi)
	})
}

// matMulRows accumulates output rows [lo, hi), choosing stream or panel
// order by the size of B.
func matMulRows(ad, bd, od []float64, k, n, lo, hi int) {
	if k*n*8 <= matMulPanelBytes {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := bd[kk*n : (kk+1)*n]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
		return
	}
	for k0 := 0; k0 < k; k0 += matMulBlockK {
		k1 := min(k0+matMulBlockK, k)
		for j0 := 0; j0 < n; j0 += matMulBlockJ {
			j1 := min(j0+matMulBlockJ, n)
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n+j0 : i*n+j1]
				for kk := k0; kk < k1; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := bd[kk*n+j0 : kk*n+j1]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}
