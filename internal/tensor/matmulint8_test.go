package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// matMulRefI8 is the naive integer reference: widen each int8 operand
// to int32 and accumulate in k-ascending order. Integer addition is
// associative, so the blocked kernel must reproduce this bit for bit on
// every shape and split.
func matMulRefI8(a, b []int8, m, k, n int) []int32 {
	out := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for kk := 0; kk < k; kk++ {
				s += int32(a[i*k+kk]) * int32(b[kk*n+j])
			}
			out[i*n+j] = s
		}
	}
	return out
}

func randSlabI8(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		if rng.Intn(8) != 0 { // zeros exercise the skip path
			s[i] = int8(rng.Intn(256) - 128)
		}
	}
	return s
}

// TestPropMatMulInt8MatchesReference checks the blocked, parallel int8
// kernel bitwise against the naive reference across shapes that cross
// the parallel-dispatch and panel-path thresholds, including saturating
// extremes (-128 everywhere maximizes accumulator magnitude).
func TestPropMatMulInt8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {1, 7, 3}, {5, 1, 4}, {3, 300, 2}}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	// One-byte elements stretch the stream path to k*n = 8M elements;
	// these cross the parallel threshold in stream order and the last
	// shape crosses into the panel path too.
	shapes = append(shapes, [3]int{70, 300, 64}, [3]int{900, 64, 64}, [3]int{2, 4200, 2100})
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randSlabI8(rng, m*k)
		b := randSlabI8(rng, k*n)
		dst := make([]int32, m*n)
		if err := MatMulInt8Into(dst, a, b, m, k, n); err != nil {
			t.Fatalf("[%d %d %d]: %v", m, k, n, err)
		}
		want := matMulRefI8(a, b, m, k, n)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("[%d %d %d] element %d: got %d, want %d (kernel must be bit-identical to the widening reference)",
					m, k, n, i, dst[i], want[i])
			}
		}
	}
}

// TestMatMulInt8Extremes pins the worst-case accumulator: every operand
// at -128 yields k * 16384 per element with no overflow at serving
// depths.
func TestMatMulInt8Extremes(t *testing.T) {
	m, k, n := 3, 1024, 5
	a := make([]int8, m*k)
	b := make([]int8, k*n)
	for i := range a {
		a[i] = -128
	}
	for i := range b {
		b[i] = -128
	}
	dst := make([]int32, m*n)
	if err := MatMulInt8Into(dst, a, b, m, k, n); err != nil {
		t.Fatal(err)
	}
	want := int32(k) * 16384
	for i, v := range dst {
		if v != want {
			t.Fatalf("element %d: got %d, want %d", i, v, want)
		}
	}
}

func TestMatMulInt8Errors(t *testing.T) {
	a, b := make([]int8, 6), make([]int8, 6)
	dst := make([]int32, 4)
	if err := MatMulInt8Into(dst, a, b, 2, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := MatMulInt8Into(dst, a, b, 2, 2, 2); err == nil {
		t.Fatal("operand size mismatch must fail")
	}
	if err := MatMulInt8Into(dst[:3], a, b, 2, 3, 2); err == nil {
		t.Fatal("dst size mismatch must fail")
	}
	if err := MatMulInt8Into(dst, a, b, -2, -3, -2); err == nil {
		t.Fatal("negative dims must fail")
	}
}

// BenchmarkMatMulInt8vs32 compares the int8 kernel against the f32 one
// on the same logical product: a quarter of the operand bytes moved per
// MAC is the bandwidth story behind the quantized serving path.
func BenchmarkMatMulInt8vs32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range [][3]int{{64, 16, 16}, {256, 256, 256}, {64, 1024, 1024}} {
		m, k, n := s[0], s[1], s[2]
		a32 := randSlab32(rng, m*k)
		b32 := randSlab32(rng, k*n)
		dst32 := make([]float32, m*n)
		a8 := randSlabI8(rng, m*k)
		b8 := randSlabI8(rng, k*n)
		dst8 := make([]int32, m*n)
		name := func(tag string) string {
			return fmt.Sprintf("%s/%dx%dx%d", tag, m, k, n)
		}
		b.Run(name("f32"), func(b *testing.B) {
			b.SetBytes(int64(2 * m * k * n))
			for i := 0; i < b.N; i++ {
				if err := MatMulInto32(dst32, a32, b32, m, k, n); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("i8"), func(b *testing.B) {
			b.SetBytes(int64(2 * m * k * n))
			for i := 0; i < b.N; i++ {
				if err := MatMulInt8Into(dst8, a8, b8, m, k, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
