package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// transARef computes aᵀb the slow, obviously correct way.
func transARef(a, b *Tensor) *Tensor {
	r, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for rr := 0; rr < r; rr++ {
				s += a.At(rr, i) * b.At(rr, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

// transBRef computes abᵀ the slow, obviously correct way.
func transBRef(a, b *Tensor) *Tensor {
	m, r, n := a.Dim(0), a.Dim(1), b.Dim(0)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for rr := 0; rr < r; rr++ {
				s += a.At(i, rr) * b.At(j, rr)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

// TestPropMatMulTransAMatchesReference covers random shapes plus shapes
// crossing the parallel-dispatch and panel-blocking thresholds.
func TestPropMatMulTransAMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	shapes := [][3]int{{1, 1, 1}, {7, 1, 3}, {1, 5, 4}, {300, 3, 2}}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	// Cross matMulParFLOPs and the panel path (r*n beyond matMulPanelBytes).
	shapes = append(shapes, [3]int{300, 70, 64}, [3]int{520, 9, 530}, [3]int{1100, 3, 1000})
	for _, s := range shapes {
		r, m, n := s[0], s[1], s[2]
		a := randTensor(rng, r, m)
		b := randTensor(rng, r, n)
		dst := Full(math.NaN(), m, n)
		if err := MatMulTransAInto(dst, a, b); err != nil {
			t.Fatalf("[%d %d %d]: %v", r, m, n, err)
		}
		want := transARef(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g, w := dst.At(i, j), want.At(i, j)
				if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("[%d %d %d] at (%d,%d): got %g, want %g", r, m, n, i, j, g, w)
				}
			}
		}
	}
}

// TestPropMatMulTransBMatchesReference covers random shapes plus shapes
// crossing the parallel-dispatch and panel-blocking thresholds.
func TestPropMatMulTransBMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shapes := [][3]int{{1, 1, 1}, {3, 7, 1}, {5, 1, 4}, {2, 300, 3}}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	shapes = append(shapes, [3]int{70, 300, 64}, [3]int{9, 530, 520}, [3]int{3, 1000, 1100})
	for _, s := range shapes {
		m, r, n := s[0], s[1], s[2]
		a := randTensor(rng, m, r)
		b := randTensor(rng, n, r)
		dst := Full(math.NaN(), m, n)
		if err := MatMulTransBInto(dst, a, b); err != nil {
			t.Fatalf("[%d %d %d]: %v", m, r, n, err)
		}
		want := transBRef(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g, w := dst.At(i, j), want.At(i, j)
				if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("[%d %d %d] at (%d,%d): got %g, want %g", m, r, n, i, j, g, w)
				}
			}
		}
	}
}

// TestTransKernelsMatchMatMulOfTranspose pins the kernels against the
// existing MatMul applied to materialized transposes: same math, two
// independent code paths.
func TestTransKernelsMatchMatMulOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randTensor(rng, 33, 17)
	b := randTensor(rng, 33, 21)
	at, err := a.Transpose(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := MatMul(at.Contiguous(), b)
	if err != nil {
		t.Fatal(err)
	}
	gotA := New(17, 21)
	if err := MatMulTransAInto(gotA, a, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		for j := 0; j < 21; j++ {
			if math.Abs(gotA.At(i, j)-wantA.At(i, j)) > 1e-12*(1+math.Abs(wantA.At(i, j))) {
				t.Fatalf("transA differs at (%d,%d)", i, j)
			}
		}
	}

	c := randTensor(rng, 21, 17)
	ct, err := c.Transpose(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := MatMul(a, ct.Contiguous())
	if err != nil {
		t.Fatal(err)
	}
	gotB := New(33, 21)
	if err := MatMulTransBInto(gotB, a, c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 33; i++ {
		for j := 0; j < 21; j++ {
			if math.Abs(gotB.At(i, j)-wantB.At(i, j)) > 1e-12*(1+math.Abs(wantB.At(i, j))) {
				t.Fatalf("transB differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatMulTransIntoErrors(t *testing.T) {
	a, b := New(6, 4), New(6, 3)
	if err := MatMulTransAInto(New(4, 4), a, b); err == nil {
		t.Fatal("want error for transA dst shape mismatch")
	}
	if err := MatMulTransAInto(New(4, 3), New(5, 4), b); err == nil {
		t.Fatal("want error for transA shared-dim mismatch")
	}
	if err := MatMulTransAInto(New(4, 3), New(6), b); err == nil {
		t.Fatal("want error for transA rank-1 operand")
	}
	badA, err := New(3, 4).Transpose(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := MatMulTransAInto(badA, a, b); err == nil {
		t.Fatal("want error for transA non-contiguous dst")
	}

	p, q := New(5, 4), New(3, 4)
	if err := MatMulTransBInto(New(5, 5), p, q); err == nil {
		t.Fatal("want error for transB dst shape mismatch")
	}
	if err := MatMulTransBInto(New(5, 3), p, New(3, 2)); err == nil {
		t.Fatal("want error for transB shared-dim mismatch")
	}
	if err := MatMulTransBInto(New(5, 3), New(4), q); err == nil {
		t.Fatal("want error for transB rank-1 operand")
	}
	badB, err := New(3, 5).Transpose(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := MatMulTransBInto(badB, p, q); err == nil {
		t.Fatal("want error for transB non-contiguous dst")
	}
}

// TestMatMulTransIntoZeroAlloc asserts the warm-kernel contract: with
// contiguous operands below the parallel threshold, neither transpose
// kernel allocates.
func TestMatMulTransIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	rng := rand.New(rand.NewSource(31))
	a := randTensor(rng, 24, 16)
	b := randTensor(rng, 24, 8)
	dstA := New(16, 8)
	if allocs := testing.AllocsPerRun(100, func() {
		if err := MatMulTransAInto(dstA, a, b); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm MatMulTransAInto allocates %.1f objects/call, want 0", allocs)
	}
	c := randTensor(rng, 8, 16)
	dstB := New(24, 8)
	if allocs := testing.AllocsPerRun(100, func() {
		if err := MatMulTransBInto(dstB, a, c); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm MatMulTransBInto allocates %.1f objects/call, want 0", allocs)
	}
}

// TestMatMulTransABitIdenticalAcrossRowSplits mirrors the MatMul
// invariant: any output-row split must reproduce the whole product bit
// for bit, since workers split dW's rows during training.
func TestMatMulTransABitIdenticalAcrossRowSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const r, m, n = 130, 96, 50
	a := randTensor(rng, r, m)
	b := randTensor(rng, r, n)
	whole := New(m, n)
	if err := MatMulTransAInto(whole, a, b); err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 7, 32} {
		for lo := 0; lo < m; lo += rows {
			hi := min(lo+rows, m)
			sub, err := a.Narrow(1, lo, hi-lo)
			if err != nil {
				t.Fatal(err)
			}
			part := New(hi-lo, n)
			if err := MatMulTransAInto(part, sub.Contiguous(), b); err != nil {
				t.Fatal(err)
			}
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					if part.At(i-lo, j) != whole.At(i, j) {
						t.Fatalf("rows=%d: row %d differs from whole product", rows, i)
					}
				}
			}
		}
	}
}

func BenchmarkMatMulTrans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{64, 256} {
		x := randTensor(rng, size, size)
		y := randTensor(rng, size, size)
		dst := New(size, size)
		b.Run(fmt.Sprintf("transA-n%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := MatMulTransAInto(dst, x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("transA-naive-n%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				xt, err := x.Transpose(0, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := MatMulInto(dst, xt.Contiguous(), y); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("transB-n%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := MatMulTransBInto(dst, x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
