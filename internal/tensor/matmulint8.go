package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// MatMulInt8Into computes a @ b into dst over flat row-major slabs of
// quantized integers: a is [m,k] int8, b is [k,n] int8, dst is [m,n]
// int32. Accumulation is exact — every product of two int8 values fits
// int16, and k products fit int32 for any k below 2^17, far beyond the
// layer widths the registry serves — so the kernel is bitwise
// deterministic regardless of blocking or parallel split, which is what
// the property tests pin down. It is the integer twin of MatMulInto32:
// same stream-vs-panel blocking, same parallelization across row
// ranges, same k-ascending order. Requantization (scales, zero-point
// correction) is the caller's business: nn.ForwardI8 folds it into a
// per-column multiplier applied to these raw accumulators. dst must not
// overlap a or b; its previous contents are overwritten.
func MatMulInt8Into(dst []int32, a, b []int8, m, k, n int) error {
	if m < 0 || k < 0 || n < 0 {
		return fmt.Errorf("tensor: matmul-i8 dims [%d %d %d] negative", m, k, n)
	}
	if len(a) != m*k || len(b) != k*n {
		return fmt.Errorf("tensor: matmul-i8 operands %d and %d elems, want [%d %d] x [%d %d]", len(a), len(b), m, k, k, n)
	}
	if len(dst) != m*n {
		return fmt.Errorf("tensor: matmul-i8 dst %d elems, want [%d %d]", len(dst), m, n)
	}
	for i := range dst {
		dst[i] = 0
	}
	if m*k*n < matMulParFLOPs {
		matMulRowsI8(a, b, dst, k, n, 0, m)
		return nil
	}
	parallel.ForRange(m, func(lo, hi int) {
		matMulRowsI8(a, b, dst, k, n, lo, hi)
	})
	return nil
}

// matMulRowsI8 accumulates output rows [lo, hi), choosing stream or
// panel order by the size of B — one-byte elements stretch the stream
// order to 8x the [k,n] footprint of the float64 kernel under the same
// matMulPanelBytes budget, and the i32 accumulator rows are the only
// 4-byte traffic. The inner loops run over contiguous rows with the
// scalar broadcast hoisted and widened once, the unit-stride
// multiply-accumulate shape the compiler keeps bounds-check-free.
func matMulRowsI8(ad, bd []int8, od []int32, k, n, lo, hi int) {
	if k*n <= matMulPanelBytes {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := int32(arow[kk])
				if av == 0 {
					continue
				}
				brow := bd[kk*n : (kk+1)*n]
				for j := range orow {
					orow[j] += av * int32(brow[j])
				}
			}
		}
		return
	}
	for k0 := 0; k0 < k; k0 += matMulBlockK {
		k1 := min(k0+matMulBlockK, k)
		for j0 := 0; j0 < n; j0 += matMulBlockJ {
			j1 := min(j0+matMulBlockJ, n)
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n+j0 : i*n+j1]
				for kk := k0; kk < k1; kk++ {
					av := int32(arow[kk])
					if av == 0 {
						continue
					}
					brow := bd[kk*n+j0 : kk*n+j1]
					for j := range orow {
						orow[j] += av * int32(brow[j])
					}
				}
			}
		}
	}
}
