package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// matMulRef is the naive triple-loop reference the blocked kernel must
// reproduce.
func matMulRef(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		switch rng.Intn(8) {
		case 0:
			d[i] = 0 // exercise the zero-skip path
		default:
			d[i] = rng.NormFloat64()
		}
	}
	return t
}

// TestPropMatMulMatchesReference checks the blocked, parallel kernel
// against the naive reference over random shapes, including shapes large
// enough to cross the block and parallel-dispatch thresholds.
func TestPropMatMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {1, 7, 3}, {5, 1, 4}, {3, 300, 2}}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	// Cross matMulParFLOPs, the k/j block boundaries, and the panel-path
	// threshold (k*n elements beyond matMulPanelBytes).
	shapes = append(shapes, [3]int{70, 300, 64}, [3]int{9, 520, 530}, [3]int{3, 1100, 1000})
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		got, err := MatMul(a, b)
		if err != nil {
			t.Fatalf("[%d %d %d]: %v", m, k, n, err)
		}
		want := matMulRef(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g, w := got.At(i, j), want.At(i, j)
				if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("[%d %d %d] at (%d,%d): got %g, want %g", m, k, n, i, j, g, w)
				}
			}
		}
	}
}

// TestMatMulBitIdenticalAcrossRowSplits verifies that computing a product
// whole gives bit-identical rows to computing any row subset: the batched
// inference path relies on this to match sequential execution exactly.
func TestMatMulBitIdenticalAcrossRowSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m, k, n = 96, 130, 50
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	whole, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 7, 32} {
		for lo := 0; lo < m; lo += rows {
			hi := min(lo+rows, m)
			sub, err := a.Narrow(0, lo, hi-lo)
			if err != nil {
				t.Fatal(err)
			}
			part, err := MatMul(sub, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					if part.At(i-lo, j) != whole.At(i, j) {
						t.Fatalf("rows=%d: row %d differs from whole product", rows, i)
					}
				}
			}
		}
	}
}

func TestMatMulStridedOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	at := randTensor(rng, 6, 9)
	a, err := at.Transpose(0, 1) // [9, 6], non-contiguous
	if err != nil {
		t.Fatal(err)
	}
	b := randTensor(rng, 6, 4)
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := matMulRef(a.Contiguous(), b)
	for i := 0; i < 9; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("strided matmul differs at (%d,%d)", i, j)
			}
		}
	}
}

// TestMatMulInto checks buffer reuse: a dst full of garbage must be fully
// overwritten, and back-to-back calls into the same dst must agree.
func TestMatMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randTensor(rng, 8, 12)
	b := randTensor(rng, 12, 5)
	dst := Full(math.NaN(), 8, 5)
	if err := MatMulInto(dst, a, b); err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			if dst.At(i, j) != want.At(i, j) {
				t.Fatalf("into result differs at (%d,%d): %g vs %g", i, j, dst.At(i, j), want.At(i, j))
			}
		}
	}
	// Second product into the same buffer.
	a2 := randTensor(rng, 8, 12)
	if err := MatMulInto(dst, a2, b); err != nil {
		t.Fatal(err)
	}
	want2, _ := MatMul(a2, b)
	if dst.At(3, 2) != want2.At(3, 2) {
		t.Fatal("dst not refreshed on reuse")
	}
}

func TestMatMulIntoErrors(t *testing.T) {
	a, b := New(3, 4), New(4, 2)
	if err := MatMulInto(New(3, 3), a, b); err == nil {
		t.Fatal("want error for dst shape mismatch")
	}
	bad, err := New(2, 3).Transpose(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := MatMulInto(bad, a, b); err == nil {
		t.Fatal("want error for non-contiguous dst")
	}
	if err := MatMulInto(New(3, 2), New(3), b); err == nil {
		t.Fatal("want error for rank-1 operand")
	}
	if err := MatMulInto(New(3, 2), New(3, 5), b); err == nil {
		t.Fatal("want error for inner-dim mismatch")
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{64, 256} {
		x := randTensor(rng, size, size)
		y := randTensor(rng, size, size)
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MatMul(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n%d-into", size), func(b *testing.B) {
			dst := New(size, size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := MatMulInto(dst, x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
