package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// MatMulInto32 computes a @ b into dst over flat row-major float32
// slabs: a is [m,k], b is [k,n], dst is [m,n]. It is the
// single-precision twin of MatMulInto — same stream-vs-panel blocking,
// same parallelization across row ranges, same k-ascending
// accumulation order — operating on raw slices because the float32
// path has no Tensor type: it exists for engines that keep weights
// converted once (nn.Forward32) and need the halved element size for
// bandwidth and SIMD width, not a second tensor algebra. dst must not
// overlap a or b; its previous contents are overwritten.
func MatMulInto32(dst, a, b []float32, m, k, n int) error {
	if m < 0 || k < 0 || n < 0 {
		return fmt.Errorf("tensor: matmul32 dims [%d %d %d] negative", m, k, n)
	}
	if len(a) != m*k || len(b) != k*n {
		return fmt.Errorf("tensor: matmul32 operands %d and %d floats, want [%d %d] x [%d %d]", len(a), len(b), m, k, k, n)
	}
	if len(dst) != m*n {
		return fmt.Errorf("tensor: matmul32 dst %d floats, want [%d %d]", len(dst), m, n)
	}
	for i := range dst {
		dst[i] = 0
	}
	if m*k*n < matMulParFLOPs {
		matMulRows32(a, b, dst, k, n, 0, m)
		return nil
	}
	parallel.ForRange(m, func(lo, hi int) {
		matMulRows32(a, b, dst, k, n, lo, hi)
	})
	return nil
}

// matMulRows32 accumulates output rows [lo, hi), choosing stream or
// panel order by the size of B — float32 elements halve B's footprint,
// so the stream order holds up to twice the [k,n] of the float64
// kernel under the same matMulPanelBytes budget. The flat inner loops
// over contiguous rows are what the compiler and the hardware
// prefetcher want: unit-stride multiply-accumulate with no bounds
// work, twice the elements per vector register as the f64 path.
func matMulRows32(ad, bd, od []float32, k, n, lo, hi int) {
	if k*n*4 <= matMulPanelBytes {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := bd[kk*n : (kk+1)*n]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
		return
	}
	for k0 := 0; k0 < k; k0 += matMulBlockK {
		k1 := min(k0+matMulBlockK, k)
		for j0 := 0; j0 < n; j0 += matMulBlockJ {
			j1 := min(j0+matMulBlockJ, n)
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n+j0 : i*n+j1]
				for kk := k0; kk < k1; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := bd[kk*n+j0 : kk*n+j1]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}
