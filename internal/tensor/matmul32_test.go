package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// matMulRef32 is the naive float32 reference: f32 storage, f32
// accumulation in k-ascending order — exactly what the blocked kernel
// computes per element, so comparison can be bitwise.
func matMulRef32(a, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a[i*k+kk] * b[kk*n+j]
			}
			out[i*n+j] = s
		}
	}
	return out
}

func randSlab32(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		if rng.Intn(8) != 0 { // zeros exercise the skip path
			s[i] = float32(rng.NormFloat64())
		}
	}
	return s
}

// TestPropMatMul32MatchesReference checks the blocked, parallel f32
// kernel bitwise against the naive f32 reference across shapes that
// cross the parallel-dispatch, block, and panel-path thresholds.
func TestPropMatMul32MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {1, 7, 3}, {5, 1, 4}, {3, 300, 2}}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	// f32 elements halve B's footprint, so crossing matMulPanelBytes
	// needs k*n > 2M elements.
	shapes = append(shapes, [3]int{70, 300, 64}, [3]int{9, 520, 530}, [3]int{3, 2100, 1100})
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randSlab32(rng, m*k)
		b := randSlab32(rng, k*n)
		dst := make([]float32, m*n)
		if err := MatMulInto32(dst, a, b, m, k, n); err != nil {
			t.Fatalf("[%d %d %d]: %v", m, k, n, err)
		}
		want := matMulRef32(a, b, m, k, n)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("[%d %d %d] element %d: got %g, want %g (kernel must be bit-identical to k-ascending reference)",
					m, k, n, i, dst[i], want[i])
			}
		}
	}
}

// TestMatMul32MatchesFloat64 bounds the precision loss against the f64
// kernel: same inputs rounded to f32 must agree within single-precision
// relative tolerance. This is the kernel-level half of the accuracy
// gate (nn's forward32 test covers the full network).
func TestMatMul32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 17, 64, 9
	a64 := randTensor(rng, m, k)
	b64 := randTensor(rng, k, n)
	a32 := make([]float32, m*k)
	for i, v := range a64.Data() {
		a32[i] = float32(v)
	}
	b32 := make([]float32, k*n)
	for i, v := range b64.Data() {
		b32[i] = float32(v)
	}
	want, err := MatMul(a64, b64)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, m*n)
	if err := MatMulInto32(dst, a32, b32, m, k, n); err != nil {
		t.Fatal(err)
	}
	for i, w := range want.Data() {
		if diff := math.Abs(float64(dst[i]) - w); diff > 1e-4*(1+math.Abs(w)) {
			t.Fatalf("element %d: f32 %g vs f64 %g", i, dst[i], w)
		}
	}
}

func TestMatMul32Errors(t *testing.T) {
	a, b, dst := make([]float32, 6), make([]float32, 6), make([]float32, 4)
	if err := MatMulInto32(dst, a, b, 2, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := MatMulInto32(dst, a, b, 2, 2, 2); err == nil {
		t.Fatal("operand size mismatch must fail")
	}
	if err := MatMulInto32(dst[:3], a, b, 2, 3, 2); err == nil {
		t.Fatal("dst size mismatch must fail")
	}
	if err := MatMulInto32(dst, a, b, -2, -3, -2); err == nil {
		t.Fatal("negative dims must fail")
	}
}

// BenchmarkMatMul32vs64 compares the two kernels on the same logical
// product. The f32 path moves half the bytes and packs twice the lanes
// per vector, so it must be measurably faster at every size.
func BenchmarkMatMul32vs64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range [][3]int{{64, 16, 16}, {256, 256, 256}, {64, 1024, 1024}} {
		m, k, n := s[0], s[1], s[2]
		a64 := randTensor(rng, m, k)
		b64 := randTensor(rng, k, n)
		dst64 := New(m, n)
		a32 := make([]float32, m*k)
		for i, v := range a64.Data() {
			a32[i] = float32(v)
		}
		b32 := make([]float32, k*n)
		for i, v := range b64.Data() {
			b32[i] = float32(v)
		}
		dst32 := make([]float32, m*n)
		name := func(bits int) string {
			return fmt.Sprintf("f%d/%dx%dx%d", bits, m, k, n)
		}
		b.Run(name(64), func(b *testing.B) {
			b.SetBytes(int64(2 * m * k * n))
			for i := 0; i < b.N; i++ {
				if err := MatMulInto(dst64, a64, b64); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name(32), func(b *testing.B) {
			b.SetBytes(int64(2 * m * k * n))
			for i := 0; i < b.N; i++ {
				if err := MatMulInto32(dst32, a32, b32, m, k, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
