package tensor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if !ShapeEqual(x.Shape(), []int{2, 3}) {
		t.Fatalf("shape = %v, want [2 3]", x.Shape())
	}
	if x.Len() != 6 {
		t.Fatalf("len = %d, want 6", x.Len())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if x.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %g, want 0", i, j, x.At(i, j))
			}
		}
	}
}

func TestFromSliceShapeMismatch(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("want error for 3 elements into shape [2 2]")
	}
}

func TestFromSliceCopies(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	x, err := FromSlice(src, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if x.At(0, 0) != 1 {
		t.Fatalf("FromSlice must copy; got aliasing")
	}
}

func TestWrapAliases(t *testing.T) {
	buf := []float64{1, 2, 3, 4, 5, 6}
	x, err := Wrap(buf, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x.Set(42, 1, 2)
	if buf[5] != 42 {
		t.Fatalf("Wrap must alias; buf[5] = %g", buf[5])
	}
	buf[0] = -7
	if x.At(0, 0) != -7 {
		t.Fatalf("Wrap must alias; At(0,0) = %g", x.At(0, 0))
	}
}

func TestWrapTooSmall(t *testing.T) {
	if _, err := Wrap(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("want error wrapping 5-element buffer as [2 3]")
	}
}

func TestWrapStridedBounds(t *testing.T) {
	buf := make([]float64, 10)
	if _, err := WrapStrided(buf, 0, []int{3}, []int{5}); err == nil {
		t.Fatal("want out-of-bounds error: max index 10")
	}
	if _, err := WrapStrided(buf, 9, []int{2}, []int{-10}); err == nil {
		t.Fatal("want out-of-bounds error: negative reach")
	}
	v, err := WrapStrided(buf, 9, []int{2}, []int{-9})
	if err != nil {
		t.Fatalf("valid negative stride rejected: %v", err)
	}
	buf[0], buf[9] = 1, 2
	if v.At(0) != 2 || v.At(1) != 1 {
		t.Fatalf("negative stride view wrong: %g %g", v.At(0), v.At(1))
	}
}

func TestSliceView(t *testing.T) {
	x := New(4, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			x.Set(float64(10*i+j), i, j)
		}
	}
	s, err := x.Slice(1, 1, 4, 2) // columns 1 and 3
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEqual(s.Shape(), []int{4, 2}) {
		t.Fatalf("slice shape = %v, want [4 2]", s.Shape())
	}
	if s.At(2, 0) != 21 || s.At(2, 1) != 23 {
		t.Fatalf("slice values wrong: %g %g", s.At(2, 0), s.At(2, 1))
	}
	s.Set(-1, 0, 0)
	if x.At(0, 1) != -1 {
		t.Fatal("slice must be a view")
	}
}

func TestSliceErrors(t *testing.T) {
	x := New(3, 3)
	cases := []struct {
		dim, start, stop, step int
	}{
		{5, 0, 1, 1},  // bad dim
		{0, 0, 4, 1},  // stop out of range
		{0, 2, 1, 1},  // reversed
		{0, 0, 3, 0},  // zero step
		{0, 0, 3, -1}, // negative step
		{0, -1, 2, 1}, // negative start
	}
	for _, c := range cases {
		if _, err := x.Slice(c.dim, c.start, c.stop, c.step); err == nil {
			t.Errorf("Slice(%d,%d,%d,%d): want error", c.dim, c.start, c.stop, c.step)
		}
	}
}

func TestIndexReducesRank(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7, 1, 2, 3)
	v, err := x.Index(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEqual(v.Shape(), []int{2, 4}) {
		t.Fatalf("shape = %v, want [2 4]", v.Shape())
	}
	if v.At(1, 3) != 7 {
		t.Fatalf("At(1,3) = %g, want 7", v.At(1, 3))
	}
}

func TestTransposeView(t *testing.T) {
	x := New(2, 3)
	x.Set(5, 0, 2)
	tr, err := x.Transpose(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEqual(tr.Shape(), []int{3, 2}) {
		t.Fatalf("shape = %v, want [3 2]", tr.Shape())
	}
	if tr.At(2, 0) != 5 {
		t.Fatalf("At(2,0) = %g, want 5", tr.At(2, 0))
	}
	if tr.IsContiguous() {
		t.Fatal("transposed non-square view should not be contiguous")
	}
}

func TestReshapeContiguousIsView(t *testing.T) {
	x := New(2, 6)
	r, err := x.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Set(9, 2, 3)
	if x.At(1, 5) != 9 {
		t.Fatal("reshape of contiguous tensor must share storage")
	}
}

func TestReshapeInferred(t *testing.T) {
	x := New(4, 6)
	r, err := x.Reshape(2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEqual(r.Shape(), []int{2, 12}) {
		t.Fatalf("shape = %v, want [2 12]", r.Shape())
	}
	if _, err := x.Reshape(-1, -1); err == nil {
		t.Fatal("want error for two inferred dims")
	}
	if _, err := x.Reshape(5, -1); err == nil {
		t.Fatal("want error when inference impossible")
	}
	if _, err := x.Reshape(7, 7); err == nil {
		t.Fatal("want element count mismatch error")
	}
}

func TestContiguousMaterializesViews(t *testing.T) {
	x := New(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			x.Set(float64(i*4+j), i, j)
		}
	}
	tr, _ := x.Transpose(0, 1)
	c := tr.Contiguous()
	if !c.IsContiguous() {
		t.Fatal("Contiguous result must be contiguous")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != tr.At(i, j) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Contiguous of an already-contiguous tensor returns the same view.
	if x.Contiguous() != x {
		t.Fatal("Contiguous of contiguous tensor should be identity")
	}
}

func TestCopyFromStrided(t *testing.T) {
	src := New(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			src.Set(float64(i*3+j+1), i, j)
		}
	}
	dstBase := New(4, 6)
	dst, _ := dstBase.Slice(0, 1, 3, 1)
	dst, _ = dst.Slice(1, 0, 6, 2)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if dstBase.At(1, 0) != 1 || dstBase.At(1, 2) != 2 || dstBase.At(2, 4) != 6 {
		t.Fatalf("strided copy wrong: %v", dstBase)
	}
}

func TestCopyFromShapeMismatch(t *testing.T) {
	if err := New(2, 2).CopyFrom(New(4)); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestCopyFlatRankChange(t *testing.T) {
	src := New(2, 3, 2)
	for i := 0; i < src.Len(); i++ {
		src.Data()[i] = float64(i)
	}
	dst := New(2, 6)
	if err := CopyFlat(dst, src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if dst.Data()[i] != float64(i) {
			t.Fatalf("element %d = %g, want %d", i, dst.Data()[i], i)
		}
	}
}

func TestCopyFlatStridedBothSides(t *testing.T) {
	base := make([]float64, 20)
	for i := range base {
		base[i] = float64(i)
	}
	src, err := WrapStrided(base, 1, []int{3, 2}, []int{6, 3}) // 1,4,7,10,13,16
	if err != nil {
		t.Fatal(err)
	}
	dstBase := New(3, 4)
	dst, _ := dstBase.Slice(1, 0, 4, 2) // [3,2] strided destination
	if err := CopyFlat(dst, src); err != nil {
		t.Fatal(err)
	}
	want := [][2]float64{{1, 4}, {7, 10}, {13, 16}}
	for i := 0; i < 3; i++ {
		if dstBase.At(i, 0) != want[i][0] || dstBase.At(i, 2) != want[i][1] {
			t.Fatalf("row %d: got (%g,%g), want %v", i, dstBase.At(i, 0), dstBase.At(i, 2), want[i])
		}
	}
}

func TestCopyFlatCountMismatch(t *testing.T) {
	if err := CopyFlat(New(3), New(4)); err == nil {
		t.Fatal("want element count mismatch error")
	}
}

func TestConcat(t *testing.T) {
	a := Full(1, 2, 2)
	b := Full(2, 2, 3)
	c, err := Concat(1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEqual(c.Shape(), []int{2, 5}) {
		t.Fatalf("shape = %v, want [2 5]", c.Shape())
	}
	if c.At(0, 1) != 1 || c.At(1, 4) != 2 {
		t.Fatal("concat contents wrong")
	}
}

func TestConcatErrors(t *testing.T) {
	if _, err := Concat(0); err == nil {
		t.Fatal("want error for empty concat")
	}
	if _, err := Concat(2, New(2, 2), New(2, 2)); err == nil {
		t.Fatal("want error for out-of-range dim")
	}
	if _, err := Concat(0, New(2, 2), New(2, 3)); err == nil {
		t.Fatal("want error for mismatched non-concat extent")
	}
	if _, err := Concat(0, New(2, 2), New(2)); err == nil {
		t.Fatal("want error for rank mismatch")
	}
}

func TestStack(t *testing.T) {
	a := Full(1, 3)
	b := Full(2, 3)
	s, err := Stack(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEqual(s.Shape(), []int{2, 3}) {
		t.Fatalf("shape = %v, want [2 3]", s.Shape())
	}
	if s.At(0, 0) != 1 || s.At(1, 2) != 2 {
		t.Fatal("stack contents wrong")
	}
	s2, err := Stack(1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ShapeEqual(s2.Shape(), []int{3, 2}) {
		t.Fatalf("shape = %v, want [3 2]", s2.Shape())
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("want inner-dim mismatch error")
	}
	if _, err := MatMul(New(2), New(2, 2)); err == nil {
		t.Fatal("want rank error")
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b, _ := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 44 {
		t.Fatalf("add: got %g, want 44", a.At(1, 1))
	}
	if err := a.SubInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 {
		t.Fatalf("sub: got %g, want 1", a.At(0, 0))
	}
	if err := a.MulInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 40 {
		t.Fatalf("mul: got %g, want 40", a.At(0, 1))
	}
	a.ScaleInPlace(0.5)
	if a.At(0, 1) != 20 {
		t.Fatalf("scale: got %g, want 20", a.At(0, 1))
	}
	if err := a.AddInPlace(New(3)); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestReductions(t *testing.T) {
	x, _ := FromSlice([]float64{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Fatalf("sum = %g, want 7", x.Sum())
	}
	if x.Mean() != 1.75 {
		t.Fatalf("mean = %g", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -1 {
		t.Fatalf("max/min = %g/%g", x.Max(), x.Min())
	}
	empty := New(0)
	if empty.Mean() != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestApplyAndFill(t *testing.T) {
	x := Full(2, 2, 2)
	y := x.Apply(func(v float64) float64 { return v * v })
	if y.At(1, 1) != 4 {
		t.Fatalf("apply: got %g, want 4", y.At(1, 1))
	}
	if x.At(0, 0) != 2 {
		t.Fatal("apply must not mutate the receiver")
	}
	// Fill through a strided view only touches the view.
	base := New(2, 4)
	v, _ := base.Slice(1, 0, 4, 2)
	v.Fill(5)
	if base.At(0, 0) != 5 || base.At(0, 2) != 5 {
		t.Fatal("fill missed view elements")
	}
	if base.At(0, 1) != 0 || base.At(0, 3) != 0 {
		t.Fatal("fill leaked outside the view")
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Len() != 1 {
		t.Fatalf("scalar rank/len = %d/%d", s.Rank(), s.Len())
	}
	if s.At() != 3.5 {
		t.Fatalf("At() = %g", s.At())
	}
	c := s.Clone()
	if c.At() != 3.5 {
		t.Fatal("clone of scalar wrong")
	}
}

func TestStringRendering(t *testing.T) {
	small, _ := FromSlice([]float64{1, 2}, 2)
	if got := small.String(); got != "Tensor[2]{1, 2}" {
		t.Fatalf("String() = %q", got)
	}
	big := New(100)
	if got := big.String(); got != "Tensor[100]{… 100 elements}" {
		t.Fatalf("String() = %q", got)
	}
}

// --- property-based tests ---

// randomShape produces small shapes with up to 4 dims.
func randomShape(r *rand.Rand) []int {
	rank := 1 + r.Intn(4)
	s := make([]int, rank)
	for i := range s {
		s[i] = 1 + r.Intn(4)
	}
	return s
}

// Property: Clone equals the original elementwise and does not alias
// (mutating the clone leaves the original unchanged).
func TestPropCloneEqualNoAlias(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := randomShape(r)
		x := New(shape...)
		d := x.Data()
		for i := range d {
			d[i] = r.NormFloat64()
		}
		c := x.Clone()
		if !reflect.DeepEqual(c.Data(), d) {
			return false
		}
		before := d[0]
		c.Data()[0] = before + 1
		return x.Data()[0] == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Reshape preserves row-major element order.
func TestPropReshapePreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := randomShape(r)
		x := New(shape...)
		for i := range x.Data() {
			x.Data()[i] = float64(i)
		}
		flat := x.Flatten()
		for i := 0; i < flat.Len(); i++ {
			if flat.At(i) != float64(i) {
				return false
			}
		}
		back, err := flat.Reshape(shape...)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Data(), x.Data())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Transpose twice is the identity view.
func TestPropDoubleTranspose(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := randomShape(r)
		if len(shape) < 2 {
			shape = append(shape, 2)
		}
		x := New(shape...)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
		}
		a, b := r.Intn(len(shape)), r.Intn(len(shape))
		t1, err := x.Transpose(a, b)
		if err != nil {
			return false
		}
		t2, err := t1.Transpose(a, b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(t2.Clone().Data(), x.Data())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Concat then Narrow recovers the parts.
func TestPropConcatNarrowRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(3)
		ca, cb := 1+r.Intn(4), 1+r.Intn(4)
		a, b := New(rows, ca), New(rows, cb)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = r.NormFloat64()
		}
		c, err := Concat(1, a, b)
		if err != nil {
			return false
		}
		pa, err := c.Narrow(1, 0, ca)
		if err != nil {
			return false
		}
		pb, err := c.Narrow(1, ca, cb)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(pa.Clone().Data(), a.Data()) &&
			reflect.DeepEqual(pb.Clone().Data(), b.Data())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul with the identity matrix is the identity.
func TestPropMatMulIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(5), 1+r.Intn(5)
		a := New(m, n)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		c, err := MatMul(a, id)
		if err != nil {
			return false
		}
		for i := range a.Data() {
			if math.Abs(c.Data()[i]-a.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CopyFlat(dst, src) followed by CopyFlat(src2, dst) restores
// the original values regardless of layout.
func TestPropCopyFlatRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := randomShape(r)
		n := NumElements(shape)
		src := New(shape...)
		for i := range src.Data() {
			src.Data()[i] = r.NormFloat64()
		}
		mid := New(n)
		if err := CopyFlat(mid, src); err != nil {
			return false
		}
		back := New(shape...)
		if err := CopyFlat(back, mid); err != nil {
			return false
		}
		return reflect.DeepEqual(back.Data(), src.Data())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
