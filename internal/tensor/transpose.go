package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// The transpose-aware kernels below compute AᵀB and ABᵀ without ever
// materializing a transposed copy: the "transposed" operand is read in
// place with the access pattern that keeps the inner loops streaming over
// contiguous memory. They exist for the training hot path, where a dense
// layer's backward pass is exactly dW = XᵀG and dX = GWᵀ. Like MatMul,
// every output element accumulates over the shared dimension ascending,
// so results are bit-identical across the serial/parallel and
// streamed/panel paths and across any output-row split.

// MatMulTransAInto computes aᵀ @ b into dst for a of shape [r, m] and b
// of shape [r, n]; dst must be a contiguous [m, n] tensor that does not
// overlap a or b. dst's previous contents are overwritten.
//
// a is read column-wise (the transposed access), but the kernel blocks
// the shared dimension so the touched panel of b stays cache-resident
// while each column strip of a is consumed.
func MatMulTransAInto(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("tensor: matmul-transA wants rank-2 operands, got %d and %d", a.Rank(), b.Rank())
	}
	if a.shape[0] != b.shape[0] {
		return fmt.Errorf("tensor: matmul-transA shared dims differ: %d vs %d", a.shape[0], b.shape[0])
	}
	r, m, n := a.shape[0], a.shape[1], b.shape[1]
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmul-transA dst shape %v, want [%d %d]", dst.shape, m, n)
	}
	if !dst.IsContiguous() {
		return fmt.Errorf("tensor: matmul-transA dst must be contiguous")
	}
	ac, bc := a.Contiguous(), b.Contiguous()
	ad := ac.data[ac.offset:]
	bd := bc.data[bc.offset:]
	od := dst.data[dst.offset : dst.offset+m*n]
	if r*m*n < matMulParFLOPs {
		matMulTransARows(ad, bd, od, r, m, n, 0, m)
		return nil
	}
	parallel.ForRange(m, func(lo, hi int) {
		matMulTransARows(ad, bd, od, r, m, n, lo, hi)
	})
	return nil
}

// matMulTransARows computes output rows [lo, hi) of aᵀb. Each output row
// i gathers column i of a against the rows of b; while b fits in cache
// the row is accumulated in one sweep, beyond that b is blocked into
// [matMulBlockK x matMulBlockJ] panels reused across the row range.
func matMulTransARows(ad, bd, od []float64, r, m, n, lo, hi int) {
	if r*n*8 <= matMulPanelBytes {
		for i := lo; i < hi; i++ {
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
			for rr := 0; rr < r; rr++ {
				av := ad[rr*m+i]
				if av == 0 {
					continue
				}
				brow := bd[rr*n : (rr+1)*n]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		orow := od[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
	}
	for r0 := 0; r0 < r; r0 += matMulBlockK {
		r1 := min(r0+matMulBlockK, r)
		for j0 := 0; j0 < n; j0 += matMulBlockJ {
			j1 := min(j0+matMulBlockJ, n)
			for i := lo; i < hi; i++ {
				orow := od[i*n+j0 : i*n+j1]
				for rr := r0; rr < r1; rr++ {
					av := ad[rr*m+i]
					if av == 0 {
						continue
					}
					brow := bd[rr*n+j0 : rr*n+j1]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MatMulTransBInto computes a @ bᵀ into dst for a of shape [m, r] and b
// of shape [n, r]; dst must be a contiguous [m, n] tensor that does not
// overlap a or b. dst's previous contents are overwritten.
//
// Every output element is a dot product of two contiguous rows, so both
// operands stream; for large b the kernel additionally blocks b's rows
// so a panel stays cache-resident across the worker's output rows.
func MatMulTransBInto(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("tensor: matmul-transB wants rank-2 operands, got %d and %d", a.Rank(), b.Rank())
	}
	if a.shape[1] != b.shape[1] {
		return fmt.Errorf("tensor: matmul-transB shared dims differ: %d vs %d", a.shape[1], b.shape[1])
	}
	m, r, n := a.shape[0], a.shape[1], b.shape[0]
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: matmul-transB dst shape %v, want [%d %d]", dst.shape, m, n)
	}
	if !dst.IsContiguous() {
		return fmt.Errorf("tensor: matmul-transB dst must be contiguous")
	}
	ac, bc := a.Contiguous(), b.Contiguous()
	ad := ac.data[ac.offset:]
	bd := bc.data[bc.offset:]
	od := dst.data[dst.offset : dst.offset+m*n]
	if m*r*n < matMulParFLOPs {
		matMulTransBRows(ad, bd, od, r, n, 0, m)
		return nil
	}
	parallel.ForRange(m, func(lo, hi int) {
		matMulTransBRows(ad, bd, od, r, n, lo, hi)
	})
	return nil
}

// matMulTransBRows computes output rows [lo, hi) of abᵀ as row-row dot
// products, blocking b's rows into cache-resident panels when b is large.
func matMulTransBRows(ad, bd, od []float64, r, n, lo, hi int) {
	if n*r*8 <= matMulPanelBytes {
		for i := lo; i < hi; i++ {
			arow := ad[i*r : (i+1)*r]
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				brow := bd[j*r : (j+1)*r]
				var s float64
				for rr, av := range arow {
					s += av * brow[rr]
				}
				orow[j] = s
			}
		}
		return
	}
	for j0 := 0; j0 < n; j0 += matMulBlockJ {
		j1 := min(j0+matMulBlockJ, n)
		for i := lo; i < hi; i++ {
			arow := ad[i*r : (i+1)*r]
			orow := od[i*n+j0 : i*n+j1]
			for j := j0; j < j1; j++ {
				brow := bd[j*r : (j+1)*r]
				var s float64
				for rr, av := range arow {
					s += av * brow[rr]
				}
				orow[j-j0] = s
			}
		}
	}
}
