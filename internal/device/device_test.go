package device

import (
	"sync/atomic"
	"testing"
)

func TestLaunch1DComputes(t *testing.T) {
	d := New("test")
	const n = 1000
	out := make([]float64, n)
	d.Launch1D("square", n, func(i int) { out[i] = float64(i * i) })
	for i := 0; i < n; i++ {
		if out[i] != float64(i*i) {
			t.Fatalf("out[%d] = %g", i, out[i])
		}
	}
	st := d.Stats()
	if len(st) != 1 || st[0].Name != "square" || st[0].Launches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLaunch2DCoversGrid(t *testing.T) {
	d := New("test")
	const nx, ny = 17, 13
	var hits [nx * ny]int32
	d.Launch2D("grid", nx, ny, func(x, y int) {
		atomic.AddInt32(&hits[y*nx+x], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("cell %d visited %d times", i, h)
		}
	}
}

func TestLaunchBlocksDisjoint(t *testing.T) {
	d := New("test")
	const n = 500
	var hits [n]int32
	d.LaunchBlocks("blocks", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestKernelTimingAccumulates(t *testing.T) {
	d := New("test")
	for i := 0; i < 3; i++ {
		d.Launch1D("k", 100, func(int) {})
	}
	st := d.Stats()
	if st[0].Launches != 3 {
		t.Fatalf("launches = %d", st[0].Launches)
	}
	if d.KernelTime("k") <= 0 {
		t.Fatal("kernel time not recorded")
	}
	if d.KernelTime("other") != 0 {
		t.Fatal("unknown kernel should report zero")
	}
}

func TestTransfers(t *testing.T) {
	d := New("test")
	host := []float64{1, 2, 3}
	dev := make([]float64, 3)
	if err := d.Upload(dev, host); err != nil {
		t.Fatal(err)
	}
	if dev[2] != 3 {
		t.Fatal("upload did not copy")
	}
	back := make([]float64, 3)
	if err := d.Download(back, dev); err != nil {
		t.Fatal(err)
	}
	if back[0] != 1 {
		t.Fatal("download did not copy")
	}
	in, out := d.TransferBytes()
	if in != 24 || out != 24 {
		t.Fatalf("transfer bytes = %d/%d", in, out)
	}
	if err := d.Upload(make([]float64, 2), host); err == nil {
		t.Fatal("want upload size mismatch error")
	}
	if err := d.Download(make([]float64, 2), dev); err == nil {
		t.Fatal("want download size mismatch error")
	}
}

func TestReset(t *testing.T) {
	d := New("test")
	d.Launch1D("k", 10, func(int) {})
	d.Upload(make([]float64, 1), []float64{1})
	d.Reset()
	if len(d.Stats()) != 0 {
		t.Fatal("stats not cleared")
	}
	in, out := d.TransferBytes()
	if in != 0 || out != 0 {
		t.Fatal("transfer accounting not cleared")
	}
}

func TestName(t *testing.T) {
	if New("a100").Name() != "a100" {
		t.Fatal("name")
	}
}
