// Package device is the kernel-execution substrate that stands in for the
// CUDA runtime of the paper's evaluation platform. Benchmarks express
// their accurate execution paths as 1-D/2-D kernel launches; the device
// runs them on a goroutine worker pool sized by GOMAXPROCS and records
// per-kernel timing, mirroring how the paper attributes time to GPU
// kernels versus the HPAC-ML runtime.
//
// Host/device transfers are modelled as accounted copies (Upload and
// Download), so end-to-end speedup measurements include "all required data
// transfers" exactly as the paper's methodology prescribes.
package device

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/parallel"
)

// Device is a virtual accelerator: a named worker pool with kernel timing.
// The zero value is not usable; call New.
type Device struct {
	name string

	mu       sync.Mutex
	kernels  map[string]*KernelStats
	bytesIn  int64
	bytesOut int64
	transfer time.Duration
}

// KernelStats accumulates launch counts and wall time per kernel name.
type KernelStats struct {
	Name     string
	Launches int
	Total    time.Duration
}

// New creates a device.
func New(name string) *Device {
	return &Device{name: name, kernels: make(map[string]*KernelStats)}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Launch1D runs kernel(i) for i in [0, n) across the worker pool and
// accounts the elapsed wall time to the kernel name.
func (d *Device) Launch1D(kernel string, n int, fn func(i int)) {
	start := time.Now()
	parallel.For(n, fn)
	d.record(kernel, time.Since(start))
}

// Launch2D runs kernel(x, y) over the nx×ny grid. The y dimension is the
// outer (block) dimension.
func (d *Device) Launch2D(kernel string, nx, ny int, fn func(x, y int)) {
	start := time.Now()
	parallel.For(ny, func(y int) {
		for x := 0; x < nx; x++ {
			fn(x, y)
		}
	})
	d.record(kernel, time.Since(start))
}

// LaunchBlocks runs fn once per contiguous index block covering [0, n),
// for kernels that carry per-block scratch state (shared-memory style).
func (d *Device) LaunchBlocks(kernel string, n int, fn func(lo, hi int)) {
	start := time.Now()
	parallel.ForRange(n, fn)
	d.record(kernel, time.Since(start))
}

func (d *Device) record(kernel string, dt time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ks := d.kernels[kernel]
	if ks == nil {
		ks = &KernelStats{Name: kernel}
		d.kernels[kernel] = ks
	}
	ks.Launches++
	ks.Total += dt
}

// Upload models a host-to-device copy of src into dst, accounting bytes
// and time.
func (d *Device) Upload(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("device: upload length mismatch %d vs %d", len(dst), len(src))
	}
	start := time.Now()
	copy(dst, src)
	d.mu.Lock()
	d.bytesIn += int64(len(src) * 8)
	d.transfer += time.Since(start)
	d.mu.Unlock()
	return nil
}

// Download models a device-to-host copy of src into dst.
func (d *Device) Download(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("device: download length mismatch %d vs %d", len(dst), len(src))
	}
	start := time.Now()
	copy(dst, src)
	d.mu.Lock()
	d.bytesOut += int64(len(src) * 8)
	d.transfer += time.Since(start)
	d.mu.Unlock()
	return nil
}

// Stats returns a copy of the per-kernel stats, sorted by name.
func (d *Device) Stats() []KernelStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]KernelStats, 0, len(d.kernels))
	for _, ks := range d.kernels {
		out = append(out, *ks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// KernelTime returns the cumulative time attributed to one kernel.
func (d *Device) KernelTime(kernel string) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ks := d.kernels[kernel]; ks != nil {
		return ks.Total
	}
	return 0
}

// TransferBytes reports total (in, out) transfer volume.
func (d *Device) TransferBytes() (in, out int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesIn, d.bytesOut
}

// Reset clears all accumulated statistics.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.kernels = make(map[string]*KernelStats)
	d.bytesIn, d.bytesOut, d.transfer = 0, 0, 0
}
