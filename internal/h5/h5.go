// Package h5 is the persistent-storage substrate standing in for HDF5 in
// the HPAC-ML runtime (the database() clause). It implements a hierarchical
// container format, .gh5: named groups holding named datasets of float64
// tensors, with crash-tolerant append — exactly the workflow data
// collection needs (one group per annotated region; datasets for inputs,
// outputs, and the region's execution time, appended once per region
// invocation).
//
// The format is log-structured: a fixed header followed by self-delimiting
// records. Appending never rewrites existing data; readers reconstruct the
// group/dataset hierarchy by scanning. Records belonging to the same
// dataset are concatenated along their first dimension on read, which
// yields the paper's layout: the outer dimension is the collection
// ensemble index, inner dimensions are the application's tensors.
package h5

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/tensor"
)

const (
	fileMagic   = 0x47483546 // "GH5F"
	fileVersion = 1
	recordMagic = 0x52454331 // "REC1"

	maxNameLen = 1 << 12
	maxRank    = 16
)

// Writer appends datasets to a .gh5 file. It is not safe for concurrent
// use; the HPAC-ML runtime serializes region invocations per database.
type Writer struct {
	f   *os.File
	buf *bufio.Writer
}

// Create truncates (or creates) path and writes a fresh header. The
// header is flushed immediately — not left in the write buffer — so a
// concurrent reader (a retrain snapshotting a database mid-ingest)
// that opens a freshly rotated shard sees a valid empty .gh5 file, not
// zero bytes.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("h5: create: %w", err)
	}
	w := &Writer{f: f, buf: bufio.NewWriterSize(f, 1<<16)}
	if err := writeU32(w.buf, fileMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := writeU32(w.buf, fileVersion); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.buf.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append opens path for appending, creating it with a header if absent.
// The existing content is validated up to its last complete record; a
// partial record left by a crash mid-append is truncated away first, so
// the new records remain readable after it.
func Append(path string) (*Writer, error) {
	w, _, err := AppendCount(path)
	return w, err
}

// AppendCount is Append, additionally reporting how many complete
// records the file already holds — what a sharded writer needs to
// resume rotation at the right point after a restart.
func AppendCount(path string) (*Writer, int, error) {
	st, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) || (err == nil && st.Size() == 0) {
		w, err := Create(path)
		return w, 0, err
	}
	if err != nil {
		return nil, 0, fmt.Errorf("h5: append: %w", err)
	}
	// Validate the header and find the end of the last complete record
	// before appending blindly.
	r, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("h5: append: %w", err)
	}
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic, err := readU32(cr)
	if err == nil {
		var version uint32
		version, err = readU32(cr)
		if err == nil && (magic != fileMagic || version != fileVersion) {
			err = fmt.Errorf("h5: %s is not a version-%d .gh5 file", path, fileVersion)
		}
	}
	if err != nil {
		r.Close()
		return nil, 0, err
	}
	goodEnd := cr.n
	count := 0
	for {
		if err := skimRecord(cr); err != nil {
			if err == io.EOF || errors.Is(err, errTruncated) {
				break
			}
			// A real I/O failure or corruption must not truncate: only a
			// tail provably cut short by a crash may be dropped.
			r.Close()
			return nil, 0, fmt.Errorf("h5: append: %s: %w", path, err)
		}
		goodEnd = cr.n
		count++
	}
	r.Close()
	if goodEnd < st.Size() {
		if err := os.Truncate(path, goodEnd); err != nil {
			return nil, 0, fmt.Errorf("h5: append: dropping partial tail record: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("h5: append: %w", err)
	}
	return &Writer{f: f, buf: bufio.NewWriterSize(f, 1<<16)}, count, nil
}

// countingReader tracks how many bytes have been consumed, so Append can
// locate the end of the last complete record.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Write appends one dataset record under group/name.
func (w *Writer) Write(group, name string, t *tensor.Tensor) error {
	if group == "" || name == "" {
		return fmt.Errorf("h5: empty group or dataset name")
	}
	if len(group) > maxNameLen || len(name) > maxNameLen {
		return fmt.Errorf("h5: group/dataset name too long")
	}
	ct := t.Contiguous()
	shape := ct.Shape()
	if len(shape) > maxRank {
		return fmt.Errorf("h5: rank %d exceeds maximum %d", len(shape), maxRank)
	}
	if err := writeU32(w.buf, recordMagic); err != nil {
		return err
	}
	if err := writeString(w.buf, group); err != nil {
		return err
	}
	if err := writeString(w.buf, name); err != nil {
		return err
	}
	if err := writeU32(w.buf, uint32(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := writeI64(w.buf, int64(d)); err != nil {
			return err
		}
	}
	for _, v := range ct.Data() {
		if err := writeF64(w.buf, v); err != nil {
			return err
		}
	}
	return nil
}

// WriteScalar appends a single value as a [1]-shaped dataset record.
func (w *Writer) WriteScalar(group, name string, v float64) error {
	t, err := tensor.FromSlice([]float64{v}, 1)
	if err != nil {
		return err
	}
	return w.Write(group, name, t)
}

// Flush forces buffered records to the OS.
func (w *Writer) Flush() error { return w.buf.Flush() }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// record is one dataset append as found in the file.
type record struct {
	group, name string
	shape       []int
	data        []float64
}

// File is a fully scanned .gh5 container.
type File struct {
	byGroup map[string]map[string][]*record
}

// errTruncated marks a record cut off by the end of the file — the shape
// a crash mid-append leaves behind. Readers treat it as a clean stop
// (every complete record before it is recovered); corruption inside the
// file (a bad record marker, implausible sizes) is still a hard error.
var errTruncated = errors.New("h5: truncated tail record")

// Open scans path and returns the reconstructed hierarchy. A file whose
// final record was cut short by a crash mid-append is not an error:
// scanning stops at the last complete record, which is the crash
// tolerance the log-structured format exists to provide.
func Open(path string) (*File, error) {
	out := &File{byGroup: make(map[string]map[string][]*record)}
	if err := out.scan(path); err != nil {
		return nil, err
	}
	return out, nil
}

// scan reads every complete record of one .gh5 file into the
// hierarchy, appending to whatever earlier scans loaded — the merge
// step OpenShards uses to present a shard set as one database.
func (f *File) scan(path string) error {
	src, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("h5: open: %w", err)
	}
	defer src.Close()
	r := bufio.NewReaderSize(src, 1<<16)
	magic, err := readU32(r)
	if err != nil {
		// A zero-byte (or header-truncated) file is what a writer that
		// just created the shard — or crashed mid-header — leaves behind.
		// Treat it as an empty shard, not corruption, so snapshot reads
		// taken while a ShardWriter is appending never fail on a file
		// whose header hasn't reached the OS yet. Real corruption (a full
		// header with the wrong magic) still errors below.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		return fmt.Errorf("h5: %s: missing header: %w", path, err)
	}
	if magic != fileMagic {
		return fmt.Errorf("h5: %s is not a version-%d .gh5 file", path, fileVersion)
	}
	version, err := readU32(r)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		return fmt.Errorf("h5: %s: missing version: %w", path, err)
	}
	if version != fileVersion {
		return fmt.Errorf("h5: %s is not a version-%d .gh5 file", path, fileVersion)
	}
	for {
		rec, err := readRecord(r)
		if err == io.EOF || errors.Is(err, errTruncated) {
			break
		}
		if err != nil {
			return fmt.Errorf("h5: %s: %w", path, err)
		}
		ds := f.byGroup[rec.group]
		if ds == nil {
			ds = make(map[string][]*record)
			f.byGroup[rec.group] = ds
		}
		ds[rec.name] = append(ds[rec.name], rec)
	}
	return nil
}

func readRecord(r io.Reader) (*record, error) { return decodeRecord(r, false) }

// skimRecord walks one record without materializing its payload — the
// cheap scan Append uses to find the end of the last complete record.
func skimRecord(r io.Reader) error {
	_, err := decodeRecord(r, true)
	return err
}

func decodeRecord(r io.Reader, skim bool) (*record, error) {
	magic, err := readU32(r)
	if err != nil {
		// Distinguish the three boundary cases: a clean end of file, a
		// marker cut mid-write by a crash (recoverable truncation), and a
		// genuine read failure (must not be mistaken for either — Append
		// would truncate good records after it).
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, recordErr(err)
		}
		return nil, fmt.Errorf("record marker read: %w", err)
	}
	if magic != recordMagic {
		return nil, fmt.Errorf("corrupt record marker %#x", magic)
	}
	group, err := readString(r)
	if err != nil {
		return nil, recordErr(err)
	}
	name, err := readString(r)
	if err != nil {
		return nil, recordErr(err)
	}
	rank, err := readU32(r)
	if err != nil {
		return nil, recordErr(err)
	}
	if rank > maxRank {
		return nil, fmt.Errorf("implausible rank %d", rank)
	}
	shape := make([]int, rank)
	count := 1
	for i := range shape {
		v, err := readI64(r)
		if err != nil {
			return nil, recordErr(err)
		}
		if v < 0 || v > 1<<28 {
			return nil, fmt.Errorf("implausible dimension %d", v)
		}
		shape[i] = int(v)
		count *= shape[i]
	}
	if skim {
		if _, err := io.CopyN(io.Discard, r, int64(count)*8); err != nil {
			return nil, recordErr(err)
		}
		return nil, nil
	}
	data := make([]float64, count)
	for i := range data {
		if data[i], err = readF64(r); err != nil {
			return nil, recordErr(err)
		}
	}
	return &record{group: group, name: name, shape: shape, data: data}, nil
}

// recordErr classifies a mid-record read failure: running out of file is
// a truncated tail (recoverable); anything else stays a hard error.
func recordErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", errTruncated, err)
	}
	return fmt.Errorf("broken record: %w", err)
}

// Groups lists group names in sorted order.
func (f *File) Groups() []string {
	out := make([]string, 0, len(f.byGroup))
	for g := range f.byGroup {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Datasets lists the dataset names in a group, sorted.
func (f *File) Datasets(group string) []string {
	ds := f.byGroup[group]
	out := make([]string, 0, len(ds))
	for n := range ds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumRecords returns how many times group/name was appended.
func (f *File) NumRecords(group, name string) int {
	return len(f.byGroup[group][name])
}

// Read concatenates every record of group/name along the first dimension,
// yielding the ensemble layout: [total rows, inner dims...]. Rank-0 and
// rank-1 records are treated as rows of a [n, ...] matrix.
func (f *File) Read(group, name string) (*tensor.Tensor, error) {
	recs := f.byGroup[group][name]
	if len(recs) == 0 {
		return nil, fmt.Errorf("h5: no dataset %q in group %q", name, group)
	}
	inner := recs[0].shape
	if len(inner) == 0 {
		inner = []int{1}
	}
	rows := 0
	for _, rec := range recs {
		s := rec.shape
		if len(s) == 0 {
			s = []int{1}
		}
		if len(s) != len(inner) {
			return nil, fmt.Errorf("h5: dataset %q/%q has mixed ranks", group, name)
		}
		for i := 1; i < len(s); i++ {
			if s[i] != inner[i] {
				return nil, fmt.Errorf("h5: dataset %q/%q has mixed inner shapes %v vs %v", group, name, s, inner)
			}
		}
		rows += s[0]
	}
	outShape := append([]int{rows}, inner[1:]...)
	out := tensor.New(outShape...)
	d := out.Data()
	at := 0
	for _, rec := range recs {
		copy(d[at:at+len(rec.data)], rec.data)
		at += len(rec.data)
	}
	return out, nil
}

// ReadRecords returns each append of group/name as its own tensor.
func (f *File) ReadRecords(group, name string) ([]*tensor.Tensor, error) {
	recs := f.byGroup[group][name]
	if len(recs) == 0 {
		return nil, fmt.Errorf("h5: no dataset %q in group %q", name, group)
	}
	out := make([]*tensor.Tensor, len(recs))
	for i, rec := range recs {
		t, err := tensor.FromSlice(rec.data, rec.shape...)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeI64(w io.Writer, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	_, err := w.Write(buf[:])
	return err
}

func writeF64(w io.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := w.Write(buf[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readI64(r io.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func readF64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
