package h5

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestOpenShardsDuringAppend is the retrain-snapshot contract: a reader
// calling OpenShards while a ShardWriter keeps appending must never see
// an error or a torn record — only a clean prefix of complete records.
// Record payloads are large enough (wider than the writer's 64 KiB
// buffer per few records) that bufio flush boundaries routinely land
// mid-record on disk, exercising the truncated-tail tolerance, and the
// rotation quota is small so reads also race shard creation (where a
// freshly created shard may hold only its header). Run under -race this
// doubles as the data-race check for the snapshot path.
func TestOpenShardsDuringAppend(t *testing.T) {
	const (
		dim     = 1200 // 9.6 KiB per record: buffer boundaries fall mid-record
		sets    = 40
		maxSets = 4 // rotate often so reads race fresh shards
	)
	base := filepath.Join(t.TempDir(), "live.gh5")
	sw, err := NewShardWriter(base, maxSets, SampleRecords)
	if err != nil {
		t.Fatal(err)
	}

	row := func(v float64) *tensor.Tensor {
		tt := tensor.New(1, dim)
		d := tt.Data()
		for i := range d {
			d[i] = v
		}
		return tt
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for s := 0; s < sets; s++ {
			w, err := sw.BeginSet()
			if err != nil {
				t.Errorf("BeginSet: %v", err)
				return
			}
			if err := AppendSample(w, "g", row(float64(s)), row(float64(s)+0.5), float64(s)); err != nil {
				t.Errorf("AppendSample: %v", err)
				return
			}
			// Flush at set boundaries like the capture sink does — but the
			// bufio buffer also spills mid-record on its own, so on-disk
			// state is NOT always set-aligned.
			if err := sw.Flush(); err != nil {
				t.Errorf("Flush: %v", err)
				return
			}
		}
	}()

	// Hammer snapshots until the writer finishes: every read must parse
	// cleanly and every visible row must hold exactly its set's value.
	check := func(f *File) {
		if len(f.Groups()) == 0 {
			return // nothing durable yet
		}
		nIn := f.NumRecords("g", "inputs")
		nOut := f.NumRecords("g", "outputs")
		// Inputs are written before outputs within a set, so a snapshot
		// may be at most one set ahead on inputs — never behind, never
		// more than one.
		if nOut > nIn || nIn-nOut > 1 {
			t.Fatalf("torn set: %d input records vs %d output records", nIn, nOut)
		}
		for name, off := range map[string]float64{"inputs": 0, "outputs": 0.5} {
			if f.NumRecords("g", name) == 0 {
				continue
			}
			tt, err := f.Read("g", name)
			if err != nil {
				t.Fatalf("Read %s: %v", name, err)
			}
			d := tt.Data()
			rows := tt.Shape()[0]
			for r := 0; r < rows; r++ {
				want := float64(r) + off
				for c := 0; c < dim; c++ {
					if got := d[r*dim+c]; got != want {
						t.Fatalf("%s row %d col %d: got %v want %v (torn record)", name, r, c, got, want)
					}
				}
			}
		}
	}
	for reading := true; reading; {
		select {
		case <-done:
			reading = false
		default:
		}
		f, err := OpenShards(base)
		if err != nil {
			t.Fatalf("OpenShards during append: %v", err)
		}
		check(f)
	}
	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	// The final snapshot sees every set, across every rotated shard.
	f, err := OpenShards(base)
	if err != nil {
		t.Fatal(err)
	}
	check(f)
	if got := f.NumRecords("g", "inputs"); got != sets {
		t.Fatalf("final inputs records = %d, want %d", got, sets)
	}
	if got := f.NumRecords("g", "outputs"); got != sets {
		t.Fatalf("final outputs records = %d, want %d", got, sets)
	}
	if sw.Shards() < sets/maxSets {
		t.Fatalf("expected rotation: %d shards for %d sets (quota %d)", sw.Shards(), sets, maxSets)
	}
}
