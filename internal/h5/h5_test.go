package h5

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "data.gh5")
}

func TestWriteReadSingleDataset(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err := w.Write("region", "inputs", x); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Read("region", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(got.Shape(), []int{2, 3}) {
		t.Fatalf("shape = %v", got.Shape())
	}
	if !reflect.DeepEqual(got.Data(), x.Data()) {
		t.Fatal("data mismatch")
	}
}

func TestAppendConcatenatesRows(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	a, _ := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b, _ := tensor.FromSlice([]float64{5, 6}, 1, 2)
	if err := w.Write("g", "d", a); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("g", "d", b); err != nil {
		t.Fatal(err)
	}
	w.Close()

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Read("g", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(got.Shape(), []int{3, 2}) {
		t.Fatalf("shape = %v, want [3 2]", got.Shape())
	}
	want := []float64{1, 2, 3, 4, 5, 6}
	if !reflect.DeepEqual(got.Data(), want) {
		t.Fatalf("data = %v", got.Data())
	}
	if f.NumRecords("g", "d") != 2 {
		t.Fatalf("records = %d", f.NumRecords("g", "d"))
	}
}

func TestAppendModeAcrossSessions(t *testing.T) {
	path := tmpPath(t)
	w1, _ := Create(path)
	x, _ := tensor.FromSlice([]float64{1}, 1, 1)
	if err := w1.Write("g", "d", x); err != nil {
		t.Fatal(err)
	}
	w1.Close()

	// A second collection session appends to the same database.
	w2, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := tensor.FromSlice([]float64{2}, 1, 1)
	if err := w2.Write("g", "d", y); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	f, _ := Open(path)
	got, err := f.Read("g", "d")
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != 2 || got.At(0, 0) != 1 || got.At(1, 0) != 2 {
		t.Fatalf("cross-session append wrong: %v", got)
	}
}

func TestAppendCreatesFreshFile(t *testing.T) {
	path := tmpPath(t)
	w, err := Append(path) // no existing file
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteScalar("g", "runtime_ns", 42); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, _ := Open(path)
	got, err := f.Read("g", "runtime_ns")
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0) != 42 {
		t.Fatalf("scalar = %g", got.At(0))
	}
}

func TestAppendRejectsForeignFile(t *testing.T) {
	path := tmpPath(t)
	if err := os.WriteFile(path, []byte("NOT A GH5 FILE AT ALL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(path); err == nil {
		t.Fatal("want error appending to foreign file")
	}
}

func TestMultipleGroupsAndDatasets(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	one, _ := tensor.FromSlice([]float64{1}, 1)
	for _, g := range []string{"regionB", "regionA"} {
		for _, d := range []string{"outputs", "inputs", "runtime_ns"} {
			if err := w.Write(g, d, one); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.Close()
	f, _ := Open(path)
	if got := f.Groups(); !reflect.DeepEqual(got, []string{"regionA", "regionB"}) {
		t.Fatalf("groups = %v", got)
	}
	if got := f.Datasets("regionA"); !reflect.DeepEqual(got, []string{"inputs", "outputs", "runtime_ns"}) {
		t.Fatalf("datasets = %v", got)
	}
	if got := f.Datasets("missing"); len(got) != 0 {
		t.Fatalf("datasets of missing group = %v", got)
	}
}

func TestReadMissingDataset(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	w.Close()
	f, _ := Open(path)
	if _, err := f.Read("g", "d"); err == nil {
		t.Fatal("want error for missing dataset")
	}
	if _, err := f.ReadRecords("g", "d"); err == nil {
		t.Fatal("want error for missing dataset records")
	}
}

func TestReadMixedShapesFails(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	a, _ := tensor.FromSlice([]float64{1, 2}, 1, 2)
	b, _ := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	w.Write("g", "d", a)
	w.Write("g", "d", b)
	w.Close()
	f, _ := Open(path)
	if _, err := f.Read("g", "d"); err == nil {
		t.Fatal("want error for mixed inner shapes")
	}
	// But per-record reads still work.
	recs, err := f.ReadRecords("g", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestOpenCorruptedFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gh5")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("want error for corrupted file")
	}
	if _, err := Open(filepath.Join(dir, "missing.gh5")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestOpenTruncatedRecord(t *testing.T) {
	// A record cut short by a crash mid-append is recoverable: Open
	// keeps every complete record before the cut (here, none) instead
	// of failing. truncate_test.go exercises the multi-record cases.
	path := tmpPath(t)
	w, _ := Create(path)
	x, _ := tensor.FromSlice([]float64{1, 2, 3, 4}, 4)
	w.Write("g", "d", x)
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.gh5")
	if err := os.WriteFile(trunc, full[:len(full)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(trunc)
	if err != nil {
		t.Fatalf("truncated tail must be recoverable, got %v", err)
	}
	if n := f.NumRecords("g", "d"); n != 0 {
		t.Fatalf("the only record was incomplete; recovered %d", n)
	}
}

func TestWriteValidation(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	defer w.Close()
	one, _ := tensor.FromSlice([]float64{1}, 1)
	if err := w.Write("", "d", one); err == nil {
		t.Fatal("want error for empty group")
	}
	if err := w.Write("g", "", one); err == nil {
		t.Fatal("want error for empty dataset name")
	}
}

func TestStridedTensorStoredContiguously(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	base := tensor.New(2, 4)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			base.Set(float64(i*4+j), i, j)
		}
	}
	view, _ := base.Slice(1, 0, 4, 2) // columns 0 and 2
	if err := w.Write("g", "d", view); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, _ := Open(path)
	got, _ := f.Read("g", "d")
	want := []float64{0, 2, 4, 6}
	if !reflect.DeepEqual(got.Data(), want) {
		t.Fatalf("strided write = %v, want %v", got.Data(), want)
	}
}

// Property: write/read round-trips preserve shape and data for random
// tensors, including multiple appends.
func TestPropRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(seed int64) bool {
		i++
		path := filepath.Join(dir, "prop", "f")
		os.MkdirAll(filepath.Dir(path), 0o755)
		path = path + string(rune('a'+i%26)) + ".gh5"
		r := rand.New(rand.NewSource(seed))
		w, err := Create(path)
		if err != nil {
			return false
		}
		rows, cols := 1+r.Intn(5), 1+r.Intn(5)
		appends := 1 + r.Intn(4)
		var all []float64
		for a := 0; a < appends; a++ {
			data := make([]float64, rows*cols)
			for j := range data {
				data[j] = r.NormFloat64()
			}
			all = append(all, data...)
			x, err := tensor.FromSlice(data, rows, cols)
			if err != nil {
				return false
			}
			if err := w.Write("g", "d", x); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		file, err := Open(path)
		if err != nil {
			return false
		}
		got, err := file.Read("g", "d")
		if err != nil {
			return false
		}
		if !tensor.ShapeEqual(got.Shape(), []int{rows * appends, cols}) {
			return false
		}
		return reflect.DeepEqual(got.Data(), all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
