package h5

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// writeRecords appends n [2,3] records to path under stencil/inputs,
// returning the file size after each complete record.
func writeRecords(t *testing.T, path string, n int) []int64 {
	t.Helper()
	w, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		rec := tensor.New(2, 3)
		for j := range rec.Data() {
			rec.Data()[j] = float64(i*10 + j)
		}
		if err := w.Write("stencil", "inputs", rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, st.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sizes
}

// TestTruncatedTailRecovery is the crash-tolerance contract of the
// package doc: a file cut off anywhere inside its final record still
// yields every complete record before the cut.
func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "full.gh5")
	sizes := writeRecords(t, base, 4)
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	// Cut points inside the last record: just after the previous record
	// (zero extra bytes), mid record-marker, mid name, mid shape, and mid
	// data payload.
	prevEnd := sizes[2]
	recLen := sizes[3] - prevEnd
	cuts := []int64{prevEnd, prevEnd + 2, prevEnd + 9, prevEnd + 17, sizes[3] - 11}
	for _, cut := range cuts {
		if cut < prevEnd || cut >= sizes[3] {
			t.Fatalf("bad cut %d (record spans %d..%d, len %d)", cut, prevEnd, sizes[3], recLen)
		}
		path := filepath.Join(dir, "cut.gh5")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		if got := f.NumRecords("stencil", "inputs"); got != 3 {
			t.Fatalf("cut at %d: recovered %d records, want 3", cut, got)
		}
		data, err := f.Read("stencil", "inputs")
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if data.Dim(0) != 6 || data.Data()[6] != 10 || data.Data()[17] != 25 {
			t.Fatalf("cut at %d: recovered rows corrupted: %v %v", cut, data.Shape(), data.Data())
		}
	}

	// Corruption (not truncation) must still fail loudly: flip a record
	// marker byte in the middle of the file.
	badPath := filepath.Join(dir, "corrupt.gh5")
	bad := append([]byte(nil), full...)
	bad[sizes[0]] ^= 0xff // first byte of record 2's marker
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badPath); err == nil {
		t.Fatal("corrupt marker mid-file must not open cleanly")
	}
}

// TestAppendAfterCrash: Append drops the partial tail record, so records
// appended after a crash remain readable alongside the survivors.
func TestAppendAfterCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.gh5")
	sizes := writeRecords(t, path, 3)

	// Crash mid-append: the last record loses its final 9 bytes.
	if err := os.Truncate(path, sizes[2]-9); err != nil {
		t.Fatal(err)
	}
	w, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != sizes[1] {
		t.Fatalf("partial tail not truncated: size %d, want %d", st.Size(), sizes[1])
	}
	rec := tensor.New(2, 3)
	rec.Fill(99)
	if err := w.Write("stencil", "inputs", rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.NumRecords("stencil", "inputs"); got != 3 {
		t.Fatalf("recovered+appended %d records, want 3", got)
	}
	data, err := f.Read("stencil", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	if data.Dim(0) != 6 || data.Data()[12] != 99 {
		t.Fatalf("appended record not readable: %v %v", data.Shape(), data.Data())
	}
}
