package h5

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/tensor"
)

// AppendSample appends one training sample's dataset set under group —
// the inputs/outputs/runtime_ns triple every capture producer (the
// runtime's local sink, the serve ingest registry) writes per region
// invocation. Keeping the set shape in one place is what lets shard
// rotation and recovery treat it as atomic.
func AppendSample(w *Writer, group string, inputs, outputs *tensor.Tensor, runtimeNS float64) error {
	if err := w.Write(group, "inputs", inputs); err != nil {
		return err
	}
	if err := w.Write(group, "outputs", outputs); err != nil {
		return err
	}
	return w.WriteScalar(group, "runtime_ns", runtimeNS)
}

// SampleRecords is how many raw .gh5 records one AppendSample writes —
// the shard writer's set size for capture databases.
const SampleRecords = 3

// Sharded databases split one logical .gh5 collection across a rotating
// set of files, so a long-running capture never grows a single
// unbounded file and concurrent producers (many ranks, one ingest
// server) can be merged by plain file-level concatenation. The layout
// is base-path-first:
//
//	data.gh5        shard 0 (the base path — a plain single-file
//	                database IS a one-shard set, so readers need no
//	                migration)
//	data.gh5.s0001  shard 1
//	data.gh5.s0002  shard 2, ...
//
// Shards are strictly ordered; OpenShards concatenates their records
// in shard order, which reproduces the append order of the original
// writes. Each shard is an ordinary crash-tolerant .gh5 file, so
// recovery (truncating a partial tail record) applies per shard.

// ShardPath returns the path of shard k of a base database path
// (k == 0 is the base path itself).
func ShardPath(base string, k int) string {
	if k == 0 {
		return base
	}
	return fmt.Sprintf("%s.s%04d", base, k)
}

// ShardPaths lists the existing shard files of base in shard order:
// the base path (when present) followed by consecutively numbered
// .sNNNN files. The scan stops at the first gap, so a deleted middle
// shard hides later ones rather than silently reordering records.
func ShardPaths(base string) []string {
	var out []string
	for k := 0; ; k++ {
		p := ShardPath(base, k)
		if _, err := os.Stat(p); err != nil {
			if k == 0 {
				continue
			}
			break
		}
		out = append(out, p)
	}
	return out
}

// OpenShards scans every shard of base and returns the merged
// hierarchy, records concatenated in shard order. A plain single-file
// database opens identically to Open. It is an error when no shard
// exists at all.
func OpenShards(base string) (*File, error) {
	paths := ShardPaths(base)
	if len(paths) == 0 {
		return nil, fmt.Errorf("h5: open: no database at %s", base)
	}
	out := &File{byGroup: make(map[string]map[string][]*record)}
	for _, p := range paths {
		if err := out.scan(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ShardWriter appends record sets to a sharded database, rotating to a
// fresh shard file when the current one reaches its set quota. A "set"
// is a group of records that must land in the same shard (one region
// invocation's inputs/outputs/runtime), so rotation never splits a
// training sample across files and a crash can truncate at most the
// final record of the final shard.
//
// Like Writer, a ShardWriter is not safe for concurrent use; the
// capture sink serializes all writes on its writer goroutine.
type ShardWriter struct {
	base string
	// maxSets is the rotation quota per shard (0 = never rotate).
	maxSets int
	// recsPerSet says how many raw records one set writes — used only
	// to translate an existing shard's record count back into sets when
	// resuming after a restart.
	recsPerSet int

	w      *Writer
	shard  int // index of the shard w appends to
	sets   int // sets already in the current shard
	shards int // shards this writer set spans (existing + created)
}

// NewShardWriter opens base for sharded appending. Existing shards are
// discovered and the last one is resumed (with crash recovery): when it
// still has room the writer continues filling it, otherwise the next
// rotation quota applies. maxSets <= 0 disables rotation, reproducing
// the single-file writer. recsPerSet <= 0 defaults to 1.
func NewShardWriter(base string, maxSets, recsPerSet int) (*ShardWriter, error) {
	if recsPerSet <= 0 {
		recsPerSet = 1
	}
	// Resume at the highest consecutively-numbered existing shard (the
	// base path, shard 0, is created on demand when nothing exists yet).
	last := 0
	for k := 1; ; k++ {
		if _, err := os.Stat(ShardPath(base, k)); err != nil {
			break
		}
		last = k
	}
	w, recs, err := AppendCount(ShardPath(base, last))
	if err != nil {
		return nil, err
	}
	return &ShardWriter{
		base:       base,
		maxSets:    maxSets,
		recsPerSet: recsPerSet,
		w:          w,
		shard:      last,
		sets:       (recs + recsPerSet - 1) / recsPerSet,
		shards:     last + 1,
	}, nil
}

// BeginSet returns the Writer the next record set must be written to,
// rotating to a fresh shard first when the current one has reached its
// quota. All of the set's records must be written before the next
// BeginSet call.
func (sw *ShardWriter) BeginSet() (*Writer, error) {
	if sw.maxSets > 0 && sw.sets >= sw.maxSets {
		// Flush-then-rotate: the finished shard must be durable before
		// records start landing in the next one, or a crash could lose a
		// middle shard's tail while a later shard survives. Either
		// rotation failure leaves no open shard — re-closing an
		// already-closed file on the next set would mask the real cause.
		if err := sw.w.Close(); err != nil {
			sw.w = nil
			return nil, fmt.Errorf("h5: shard %s: %w", ShardPath(sw.base, sw.shard), err)
		}
		sw.shard++
		w, _, err := AppendCount(ShardPath(sw.base, sw.shard))
		if err != nil {
			sw.w = nil
			return nil, err
		}
		sw.w = w
		sw.sets = 0
		sw.shards++
	}
	if sw.w == nil {
		return nil, errors.New("h5: shard writer has no open shard (previous rotation failed)")
	}
	sw.sets++
	return sw.w, nil
}

// Shards reports how many shard files the set spans so far.
func (sw *ShardWriter) Shards() int { return sw.shards }

// Base returns the base database path.
func (sw *ShardWriter) Base() string { return sw.base }

// Flush forces the current shard's buffered records to the OS.
func (sw *ShardWriter) Flush() error {
	if sw.w == nil {
		return nil
	}
	return sw.w.Flush()
}

// Close flushes and closes the current shard.
func (sw *ShardWriter) Close() error {
	if sw.w == nil {
		return nil
	}
	err := sw.w.Close()
	sw.w = nil
	return err
}
