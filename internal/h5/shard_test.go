package h5

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// writeSet appends one 3-record set (the capture shape) with a
// recognizable payload.
func writeSet(t *testing.T, sw *ShardWriter, group string, v float64) {
	t.Helper()
	w, err := sw.BeginSet()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := tensor.FromSlice([]float64{v, v + 1}, 1, 2)
	out, _ := tensor.FromSlice([]float64{-v}, 1, 1)
	if err := w.Write(group, "inputs", in); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(group, "outputs", out); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteScalar(group, "runtime_ns", v*10); err != nil {
		t.Fatal(err)
	}
}

func TestShardRotationAndMergedRead(t *testing.T) {
	base := filepath.Join(t.TempDir(), "d.gh5")
	sw, err := NewShardWriter(base, 2, 3) // rotate every 2 sets
	if err != nil {
		t.Fatal(err)
	}
	const sets = 7
	for i := 0; i < sets; i++ {
		writeSet(t, sw, "g", float64(i))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// 7 sets at 2 per shard -> 4 shards: base, .s0001 .. .s0003.
	paths := ShardPaths(base)
	if len(paths) != 4 {
		t.Fatalf("shard files = %v, want 4", paths)
	}
	if sw.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sw.Shards())
	}

	f, err := OpenShards(base)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.NumRecords("g", "inputs"); n != sets {
		t.Fatalf("merged inputs records = %d, want %d", n, sets)
	}
	// Merged read preserves the global append order across the shard
	// boundary.
	x, err := f.Read("g", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != sets || x.Dim(1) != 2 {
		t.Fatalf("merged inputs shape %v", x.Shape())
	}
	for i := 0; i < sets; i++ {
		if x.Data()[i*2] != float64(i) {
			t.Fatalf("row %d = %g, out of order", i, x.Data()[i*2])
		}
	}
}

func TestShardWriterResumesLastShard(t *testing.T) {
	base := filepath.Join(t.TempDir(), "d.gh5")
	sw, err := NewShardWriter(base, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // 2 sets in base, 1 in .s0001
		writeSet(t, sw, "g", float64(i))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the half-full .s0001 must be continued, then rotation
	// proceeds to .s0002.
	sw2, err := NewShardWriter(base, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		writeSet(t, sw2, "g", float64(i))
	}
	if err := sw2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(ShardPaths(base)); got != 3 {
		t.Fatalf("shard files after resume = %d, want 3", got)
	}
	f, err := OpenShards(base)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.NumRecords("g", "inputs"); n != 5 {
		t.Fatalf("records after resume = %d, want 5", n)
	}
}

func TestShardCrashRecoveryAcrossShards(t *testing.T) {
	base := filepath.Join(t.TempDir(), "d.gh5")
	sw, err := NewShardWriter(base, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // base full, .s0001 full
		writeSet(t, sw, "g", float64(i))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append on the last shard: chop bytes off its
	// tail, landing inside the final record.
	last := ShardPath(base, 1)
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-9); err != nil {
		t.Fatal(err)
	}

	// Reads recover every complete record; earlier shards are intact.
	f, err := OpenShards(base)
	if err != nil {
		t.Fatal(err)
	}
	got := f.NumRecords("g", "inputs")
	if got < 3 || got > 4 {
		t.Fatalf("recovered inputs records = %d, want 3 (torn tail dropped) or 4", got)
	}

	// Resuming the writer truncates the torn tail and keeps appending in
	// the same shard set.
	sw2, err := NewShardWriter(base, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	writeSet(t, sw2, "g", 99)
	if err := sw2.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenShards(base)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the torn record was, the new set is complete and the
	// database stays readable end to end.
	x, err := f2.Read("g", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	if x.Data()[(x.Dim(0)-1)*2] != 99 {
		t.Fatalf("last row = %g, want the post-recovery set", x.Data()[(x.Dim(0)-1)*2])
	}
}

func TestOpenShardsSingleFileCompatible(t *testing.T) {
	// A database written by the plain Writer reads identically through
	// OpenShards — a single file IS a one-shard set.
	path := filepath.Join(t.TempDir(), "plain.gh5")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := tensor.FromSlice([]float64{1, 2, 3}, 3)
	if err := w.Write("g", "d", one); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenShards(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRecords("g", "d") != 1 {
		t.Fatal("single-file database not readable through OpenShards")
	}
	if _, err := OpenShards(filepath.Join(t.TempDir(), "missing.gh5")); err == nil {
		t.Fatal("OpenShards on a missing database must error")
	}
}
