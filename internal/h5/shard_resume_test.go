package h5

import (
	"path/filepath"
	"testing"
)

// TestShardWriterResumesAfterEmptyFinalShard pins the restart edge a
// crash can leave behind: rotation creates the next shard file before
// any set lands in it, so a database can end in a valid, zero-record
// shard. Resuming must continue in that empty shard (not skip it, not
// re-rotate past it), the rotation quota must apply to it from zero,
// and the merged read must keep the global append order.
func TestShardWriterResumesAfterEmptyFinalShard(t *testing.T) {
	base := filepath.Join(t.TempDir(), "d.gh5")

	// Fill shard 0 to its quota, then crash right after rotation: shard
	// 1 exists but holds nothing.
	sw, err := NewShardWriter(base, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	writeSet(t, sw, "g", 0)
	writeSet(t, sw, "g", 1)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	empty, _, err := AppendCount(ShardPath(base, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Close(); err != nil {
		t.Fatal(err)
	}

	// The half-written set count of the empty shard must read as zero:
	// resuming continues in shard 1 with full quota remaining.
	sw2, err := NewShardWriter(base, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sw2.Shards() != 2 {
		t.Fatalf("resume sees %d shards, want 2", sw2.Shards())
	}
	writeSet(t, sw2, "g", 2)
	writeSet(t, sw2, "g", 3) // fills shard 1
	writeSet(t, sw2, "g", 4) // must rotate to shard 2
	if err := sw2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(ShardPaths(base)); got != 3 {
		t.Fatalf("shard files after resume = %d, want 3 (base, s0001, s0002)", got)
	}

	f, err := OpenShards(base)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Read("g", "inputs")
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != 5 {
		t.Fatalf("merged records = %d, want 5", x.Dim(0))
	}
	for i := 0; i < 5; i++ {
		if x.Data()[i*2] != float64(i) {
			t.Fatalf("row %d = %g: append order lost across the empty-shard resume", i, x.Data()[i*2])
		}
	}
}

// TestOpenShardsToleratesEmptyFinalShard pins the reader half of the
// same edge: a trailing zero-record shard contributes nothing but must
// not fail the merged open.
func TestOpenShardsToleratesEmptyFinalShard(t *testing.T) {
	base := filepath.Join(t.TempDir(), "d.gh5")
	sw, err := NewShardWriter(base, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	writeSet(t, sw, "g", 7)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	empty, _, err := AppendCount(ShardPath(base, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenShards(base)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.NumRecords("g", "inputs"); n != 1 {
		t.Fatalf("records = %d, want 1", n)
	}
}
