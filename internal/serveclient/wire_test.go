package serveclient_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/serveapi"
	"repro/internal/serveclient"
)

// wireCounts tracks which wire each hot-path request arrived on.
type wireCounts struct {
	frames atomic.Int64
	jsons  atomic.Int64
}

// dualStub speaks both wires on /v1/infer and /v1/capture, mimicking
// the real serve handler's negotiation: a frame Content-Type is decoded
// as a frame and /v1/infer answered in kind, everything else is JSON,
// error bodies always JSON. Models: "sum" doubles the row sum of a
// 2-wide row (400 on other widths, 429 when row[0] == -1), "quad" maps
// any row to [s, s+1, s+2, s+3].
// dualStub serves the stub on both wires; configure hooks run on the
// unstarted server (e.g. to install ConnState before the serve loop
// reads it).
func dualStub(t testing.TB, configure ...func(*httptest.Server)) (*httptest.Server, *wireCounts) {
	counts := &wireCounts{}
	infer := func(model string, row []float64) ([]float64, int) {
		s := 0.0
		for _, v := range row {
			s += v
		}
		switch model {
		case "sum":
			if len(row) != 2 {
				return nil, http.StatusBadRequest
			}
			if row[0] == -1 {
				return nil, http.StatusTooManyRequests
			}
			return []float64{2 * s}, http.StatusOK
		case "quad":
			return []float64{s, s + 1, s + 2, s + 3}, http.StatusOK
		}
		return nil, http.StatusNotFound
	}
	fail := func(w http.ResponseWriter, code int) {
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(serveapi.ErrorBody{Error: http.StatusText(code)})
	}
	// The stub's frame path pools its buffers like the real handler
	// does, so benchmark B/op reflects the server each wire actually
	// talks to (the httptest server allocates in-process).
	type stubScratch struct {
		body []byte
		in   []float64
		out  []float64
		enc  []byte
	}
	pool := sync.Pool{New: func() any { return new(stubScratch) }}
	readInto := func(r io.Reader, buf []byte) []byte {
		buf = buf[:0]
		for {
			if len(buf) == cap(buf) {
				buf = append(buf, 0)[:len(buf)]
			}
			n, err := r.Read(buf[len(buf):cap(buf)])
			buf = buf[:len(buf)+n]
			if err != nil {
				return buf
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == serveapi.ContentTypeFrame {
			counts.frames.Add(1)
			fs := pool.Get().(*stubScratch)
			defer pool.Put(fs)
			fs.body = readInto(r.Body, fs.body)
			f, err := serveapi.DecodeInferRequest(fs.body, fs.in)
			if err != nil {
				code := http.StatusBadRequest
				if errors.Is(err, serveapi.ErrFrameVersion) {
					code = http.StatusUnsupportedMediaType
				}
				fail(w, code)
				return
			}
			fs.in = f.Data
			fs.out = fs.out[:0]
			outCols := 0
			for i := 0; i < f.Rows; i++ {
				row, code := infer(f.Model, f.Data[i*f.Cols:(i+1)*f.Cols])
				if code != http.StatusOK {
					fail(w, code)
					return
				}
				fs.out = append(fs.out, row...)
				outCols = len(row)
			}
			fs.enc, err = serveapi.AppendInferResponse(fs.enc[:0], f.Dtype, f.Model, f.Rows, outCols, fs.out)
			if err != nil {
				fail(w, http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", serveapi.ContentTypeFrame)
			w.Write(fs.enc)
			return
		}
		counts.jsons.Add(1)
		var req serveapi.InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(w, http.StatusBadRequest)
			return
		}
		resp := serveapi.InferResponse{Model: req.Model}
		ins := req.Inputs
		if req.Input != nil {
			ins = [][]float64{req.Input}
		}
		for _, in := range ins {
			row, code := infer(req.Model, in)
			if code != http.StatusOK {
				fail(w, code)
				return
			}
			resp.Outputs = append(resp.Outputs, row)
		}
		if req.Input != nil {
			resp.Output, resp.Outputs = resp.Outputs[0], nil
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/v1/capture", func(w http.ResponseWriter, r *http.Request) {
		var db string
		var n int
		if r.Header.Get("Content-Type") == serveapi.ContentTypeFrame {
			counts.frames.Add(1)
			body, _ := io.ReadAll(r.Body)
			d, recs, err := serveapi.DecodeCaptureRequest(body)
			if err != nil {
				code := http.StatusBadRequest
				if errors.Is(err, serveapi.ErrFrameVersion) {
					code = http.StatusUnsupportedMediaType
				}
				fail(w, code)
				return
			}
			db, n = d, len(recs)
		} else {
			counts.jsons.Add(1)
			var req serveapi.CaptureRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				fail(w, http.StatusBadRequest)
				return
			}
			db, n = req.DB, len(req.Records)
		}
		if db != "d" {
			fail(w, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(serveapi.CaptureResponse{DB: db, Accepted: n})
	})
	ts := httptest.NewUnstartedServer(mux)
	for _, f := range configure {
		f(ts)
	}
	ts.Start()
	t.Cleanup(ts.Close)
	return ts, counts
}

func slab(rows, cols int) []float64 {
	s := make([]float64, rows*cols)
	for i := range s {
		s[i] = float64(i%13) - 4
	}
	return s
}

func TestClientBinaryRoundTrip(t *testing.T) {
	ts, counts := dualStub(t)
	c := serveclient.New(ts.URL, serveclient.WithWire(serveclient.WireBinary))
	ctx := context.Background()

	rows, cols := 3, 2
	in := slab(rows, cols)
	scratch := make([]float64, 16)
	out, outCols, err := c.InferMatrix(ctx, "sum", rows, cols, in, scratch)
	if err != nil || outCols != 1 || len(out) != rows {
		t.Fatalf("InferMatrix = %v, %d, %v", out, outCols, err)
	}
	for i := 0; i < rows; i++ {
		if want := 2 * (in[i*cols] + in[i*cols+1]); out[i] != want {
			t.Fatalf("row %d = %g, want %g", i, out[i], want)
		}
	}
	if &out[0] != &scratch[0] {
		t.Fatal("InferMatrix did not decode into the caller's scratch buffer")
	}

	// Single-shot Infer rides the binary wire too.
	one, err := c.Infer(ctx, "sum", []float64{3, 4})
	if err != nil || len(one) != 1 || one[0] != 14 {
		t.Fatalf("Infer = %v, %v", one, err)
	}

	recs := []serveapi.CaptureRecord{
		{Region: "r", InputShape: []int{1, 2}, Inputs: []float64{1, 2}, OutputShape: []int{1, 1}, Outputs: []float64{3}},
	}
	if n, err := c.Capture(ctx, "d", recs); err != nil || n != 1 {
		t.Fatalf("Capture = %d, %v", n, err)
	}

	if got := counts.jsons.Load(); got != 0 {
		t.Fatalf("binary client sent %d JSON hot-path requests", got)
	}
	if got := counts.frames.Load(); got != 3 {
		t.Fatalf("binary client sent %d frames, want 3", got)
	}
}

// TestClientBinaryI8Dtype: a client built with WithFrameDtype(DtypeI8)
// ships one-byte elements, the server answers in kind, and
// integer-valued inputs survive the round-clamp transport exactly.
func TestClientBinaryI8Dtype(t *testing.T) {
	ts, counts := dualStub(t)
	c := serveclient.New(ts.URL,
		serveclient.WithWire(serveclient.WireBinary),
		serveclient.WithFrameDtype(serveapi.DtypeI8))
	ctx := context.Background()

	rows, cols := 4, 2
	in := make([]float64, rows*cols)
	for i := range in {
		in[i] = float64(i - 4) // integer-valued: exact on the i8 wire
	}
	out, outCols, err := c.InferMatrix(ctx, "sum", rows, cols, in, nil)
	if err != nil || outCols != 1 || len(out) != rows {
		t.Fatalf("InferMatrix = %v, %d, %v", out, outCols, err)
	}
	for i := 0; i < rows; i++ {
		// The stub doubles the row sum; inputs and (integer) outputs
		// both fit i8, so the answer is exact despite the 1-byte wire.
		if want := 2 * (in[i*cols] + in[i*cols+1]); out[i] != want {
			t.Fatalf("row %d = %g, want %g", i, out[i], want)
		}
	}
	recs := []serveapi.CaptureRecord{
		{Region: "r", InputShape: []int{1, 2}, Inputs: []float64{5, -3}, OutputShape: []int{1, 1}, Outputs: []float64{4}},
	}
	if n, err := c.Capture(ctx, "d", recs); err != nil || n != 1 {
		t.Fatalf("Capture = %d, %v", n, err)
	}
	if got := counts.frames.Load(); got != 2 {
		t.Fatalf("i8 client sent %d frames, want 2", got)
	}
	if got := counts.jsons.Load(); got != 0 {
		t.Fatalf("i8 client sent %d JSON hot-path requests", got)
	}
}

// TestClientBinaryGenuine400StaysBinary: once a frame round-trip has
// succeeded, a 400 is a real caller error — surfaced, not misread as
// "server doesn't speak frames".
func TestClientBinaryGenuine400StaysBinary(t *testing.T) {
	ts, counts := dualStub(t)
	c := serveclient.New(ts.URL, serveclient.WithWire(serveclient.WireBinary))
	ctx := context.Background()

	if _, err := c.Infer(ctx, "sum", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Infer(ctx, "sum", []float64{1, 2, 3}) // wrong width: genuine 400
	var api *serveclient.APIError
	if !errors.As(err, &api) || api.Code != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if _, err := c.Infer(ctx, "sum", []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if counts.jsons.Load() != 0 || counts.frames.Load() != 3 {
		t.Fatalf("wire mix frames=%d jsons=%d, want 3/0", counts.frames.Load(), counts.jsons.Load())
	}
	// 429 classification survives the binary wire.
	if _, err := c.Infer(ctx, "sum", []float64{-1, 0}); !serveclient.Rejected(err) {
		t.Fatalf("want rejection, got %v", err)
	}
}

// oldServer mimics a pre-frame serve build: every hot-path body is fed
// to the JSON decoder, so a binary frame earns "bad JSON" and 400.
func oldServer(t *testing.T, frameStatus int) (*httptest.Server, *wireCounts) {
	counts := &wireCounts{}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == serveapi.ContentTypeFrame {
			counts.frames.Add(1)
			w.WriteHeader(frameStatus)
			json.NewEncoder(w).Encode(serveapi.ErrorBody{Error: "bad JSON"})
			return
		}
		counts.jsons.Add(1)
		var req serveapi.InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(serveapi.ErrorBody{Error: "bad JSON"})
			return
		}
		resp := serveapi.InferResponse{Model: req.Model}
		if req.Input != nil {
			resp.Output = []float64{42}
		} else {
			for range req.Inputs {
				resp.Outputs = append(resp.Outputs, []float64{42})
			}
		}
		json.NewEncoder(w).Encode(resp)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, counts
}

func TestClientFallsBackToJSON(t *testing.T) {
	// Both refusal shapes old servers produce: explicit 415 from a
	// frame-aware build of another version, and 400 "bad JSON" from a
	// pre-frame build. Either way the client must succeed via JSON and
	// stop sending frames once the downgrade is proven.
	for _, status := range []int{http.StatusUnsupportedMediaType, http.StatusBadRequest} {
		ts, counts := oldServer(t, status)
		c := serveclient.New(ts.URL, serveclient.WithWire(serveclient.WireBinary))
		ctx := context.Background()
		for i := 0; i < 3; i++ {
			out, err := c.Infer(ctx, "m", []float64{1, 2})
			if err != nil || out[0] != 42 {
				t.Fatalf("status %d call %d: %v, %v", status, i, out, err)
			}
		}
		if counts.frames.Load() != 1 {
			t.Fatalf("status %d: %d frame attempts, want 1 (fallback must latch)", status, counts.frames.Load())
		}
		if counts.jsons.Load() != 3 {
			t.Fatalf("status %d: %d JSON requests, want 3", status, counts.jsons.Load())
		}
	}
}

// TestClientReusesConnections is the satellite regression for body
// drain/close: across successes and every error shape, the client must
// keep using one pooled connection. A leaked (undrained or unclosed)
// body forces the transport to open a fresh connection and fails the
// count.
func TestClientReusesConnections(t *testing.T) {
	for _, wire := range []serveclient.Wire{serveclient.WireJSON, serveclient.WireBinary} {
		var conns atomic.Int64
		ts, _ := dualStub(t, func(ts *httptest.Server) {
			ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
				if s == http.StateNew {
					conns.Add(1)
				}
			}
		})
		c := serveclient.New(ts.URL, serveclient.WithWire(wire))
		ctx := context.Background()

		for i := 0; i < 5; i++ {
			if _, err := c.Infer(ctx, "sum", []float64{1, float64(i)}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Infer(ctx, "ghost", []float64{1, 2}); err == nil {
				t.Fatal("ghost model must fail")
			}
			if _, err := c.Infer(ctx, "sum", []float64{-1, 0}); !serveclient.Rejected(err) {
				t.Fatal("want rejection")
			}
			if _, err := c.Capture(ctx, "ghost", []serveapi.CaptureRecord{
				{Region: "r", InputShape: []int{1, 1}, Inputs: []float64{1}, OutputShape: []int{1, 1}, Outputs: []float64{2}},
			}); err == nil {
				t.Fatal("ghost db must fail")
			}
		}
		if got := conns.Load(); got != 1 {
			t.Fatalf("wire %s: %d connections for sequential requests, want 1 (body not drained/closed somewhere)", wire, got)
		}
	}
}

// BenchmarkWireJSONvsBinary measures one /v1/infer round trip over live
// HTTP on each wire: a [64, 16] request slab answered by a [64, 4]
// response. The binary frame must beat JSON by well over 2x on B/op —
// it skips per-value formatting entirely and reuses pooled buffers.
func BenchmarkWireJSONvsBinary(b *testing.B) {
	rows, cols := 64, 16
	in := slab(rows, cols)
	run := func(b *testing.B, wire serveclient.Wire) {
		ts, _ := dualStub(b)
		c := serveclient.New(ts.URL, serveclient.WithWire(wire))
		ctx := context.Background()
		scratch := make([]float64, rows*4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, outCols, err := c.InferMatrix(ctx, "quad", rows, cols, in, scratch)
			if err != nil || outCols != 4 {
				b.Fatalf("InferMatrix: %d cols, %v", outCols, err)
			}
			scratch = out
		}
	}
	b.Run("json", func(b *testing.B) { run(b, serveclient.WireJSON) })
	b.Run("binary", func(b *testing.B) { run(b, serveclient.WireBinary) })
}
