package serveclient_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serveapi"
	"repro/internal/serveclient"
)

// stubServe implements just enough of the serve wire protocol to
// exercise the client: a 2->1 "double-sum" model, 429s on a trigger
// input, and the registry/stats listings.
func stubServe(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	infer := func(in []float64) ([]float64, int) {
		if len(in) != 2 {
			return nil, http.StatusBadRequest
		}
		if in[0] == -1 {
			return nil, http.StatusTooManyRequests
		}
		return []float64{2 * (in[0] + in[1])}, http.StatusOK
	}
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		var req serveapi.InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Model != "sum" {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(serveapi.ErrorBody{Error: "unknown model"})
			return
		}
		resp := serveapi.InferResponse{Model: req.Model}
		if req.Input != nil {
			out, code := infer(req.Input)
			if code != http.StatusOK {
				w.WriteHeader(code)
				json.NewEncoder(w).Encode(serveapi.ErrorBody{Error: "refused"})
				return
			}
			resp.Output = out
		} else {
			for _, in := range req.Inputs {
				out, code := infer(in)
				if code != http.StatusOK {
					w.WriteHeader(code)
					json.NewEncoder(w).Encode(serveapi.ErrorBody{Error: "refused"})
					return
				}
				resp.Outputs = append(resp.Outputs, out)
			}
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/v1/capture", func(w http.ResponseWriter, r *http.Request) {
		var req serveapi.CaptureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.DB != "d" {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(serveapi.ErrorBody{Error: "unknown capture db"})
			return
		}
		json.NewEncoder(w).Encode(serveapi.CaptureResponse{DB: req.DB, Accepted: len(req.Records)})
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]serveapi.ModelInfo{{Name: "sum", InDim: 2, OutDim: 1}})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serveapi.StatsResponse{
			UptimeSec: 1,
			Models:    []serveapi.ModelSnapshot{{ModelInfo: serveapi.ModelInfo{Name: "sum"}, MeanBatch: 3.5}},
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestClientRoundTrips(t *testing.T) {
	ts := stubServe(t)
	c := serveclient.New(ts.URL + "/") // trailing slash tolerated
	ctx := context.Background()

	out, err := c.Infer(ctx, "sum", []float64{1, 2})
	if err != nil || len(out) != 1 || out[0] != 6 {
		t.Fatalf("Infer = %v, %v", out, err)
	}

	outs, err := c.InferBatch(ctx, "sum", [][]float64{{1, 1}, {2, 2}})
	if err != nil || len(outs) != 2 || outs[0][0] != 4 || outs[1][0] != 8 {
		t.Fatalf("InferBatch = %v, %v", outs, err)
	}
	if outs, err := c.InferBatch(ctx, "sum", nil); err != nil || outs != nil {
		t.Fatalf("empty InferBatch = %v, %v", outs, err)
	}

	info, err := c.Model(ctx, "")
	if err != nil || info.Name != "sum" || info.InDim != 2 {
		t.Fatalf("Model(\"\") = %+v, %v", info, err)
	}
	if _, err := c.Model(ctx, "nope"); err == nil {
		t.Fatal("Model(nope) should fail")
	}

	snap, err := c.ModelStats(ctx, "sum")
	if err != nil || snap.MeanBatch != 3.5 {
		t.Fatalf("ModelStats = %+v, %v", snap, err)
	}

	recs := []serveapi.CaptureRecord{
		{Region: "r", InputShape: []int{1, 2}, Inputs: []float64{1, 2}, OutputShape: []int{1, 1}, Outputs: []float64{3}},
		{Region: "r", InputShape: []int{1, 2}, Inputs: []float64{4, 5}, OutputShape: []int{1, 1}, Outputs: []float64{9}},
	}
	if n, err := c.Capture(ctx, "d", recs); err != nil || n != 2 {
		t.Fatalf("Capture = %d, %v", n, err)
	}
	if n, err := c.Capture(ctx, "d", nil); err != nil || n != 0 {
		t.Fatalf("empty Capture = %d, %v", n, err)
	}
	if _, err := c.Capture(ctx, "ghost", recs); err == nil {
		t.Fatal("Capture(ghost) should fail")
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}
}

func TestClientErrorMapping(t *testing.T) {
	ts := stubServe(t)
	c := serveclient.New(ts.URL)
	ctx := context.Background()

	// 429 → Rejected classification.
	_, err := c.Infer(ctx, "sum", []float64{-1, 0})
	if !serveclient.Rejected(err) {
		t.Fatalf("want rejection, got %v", err)
	}

	// 404 carries the server's message and code.
	_, err = c.Infer(ctx, "ghost", []float64{1, 2})
	var api *serveclient.APIError
	if !errors.As(err, &api) || api.Code != http.StatusNotFound {
		t.Fatalf("want 404 APIError, got %v", err)
	}
	if serveclient.Rejected(err) {
		t.Fatal("404 must not classify as rejection")
	}

	// Cancelled context surfaces as a transport error, not an APIError.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	_, err = c.Infer(cancelled, "sum", []float64{1, 2})
	if err == nil || errors.As(err, &api) {
		t.Fatalf("cancelled context: want transport error, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context should surface context.Canceled, got %v", err)
	}
}
